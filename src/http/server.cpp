#include "http/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "common/logging.h"
#include "common/strutil.h"

namespace ceems::http {

namespace {
constexpr std::size_t kReadChunk = 16 * 1024;
constexpr int kIdleTimeoutMs = 5000;

bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::string serialize_response(const Response& response, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    status_reason(response.status) + "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}
}  // namespace

Server::Server(ServerConfig config) : config_(std::move(config)) {}

Server::~Server() { stop(); }

void Server::handle(const std::string& path, Handler handler) {
  std::lock_guard lock(routes_mu_);
  exact_routes_.emplace_back(path, std::move(handler));
}

void Server::handle_prefix(const std::string& prefix, Handler handler) {
  std::lock_guard lock(routes_mu_);
  prefix_routes_.emplace_back(prefix, std::move(handler));
}

void Server::set_default_handler(Handler handler) {
  std::lock_guard lock(routes_mu_);
  default_handler_ = std::move(handler);
}

std::string Server::base_url() const {
  return "http://" + config_.bind_address + ":" + std::to_string(port_);
}

void Server::start() {
  if (running_.load()) return;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("http: socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw std::runtime_error("http: bad bind address " + config_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(listen_fd_);
    throw std::runtime_error("http: bind failed on " + config_.bind_address +
                             ":" + std::to_string(config_.port));
  }
  if (::listen(listen_fd_, 128) < 0) {
    ::close(listen_fd_);
    throw std::runtime_error("http: listen failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  workers_ = std::make_unique<common::ThreadPool>(config_.worker_threads,
                                                  "http-worker");
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  CEEMS_LOG_INFO("http") << "listening on " << base_url();
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (workers_) workers_->shutdown(/*drain=*/true);
  workers_.reset();
}

void Server::accept_loop() {
  while (running_.load()) {
    sockaddr_in peer_addr{};
    socklen_t peer_len = sizeof(peer_addr);
    int client_fd = ::accept(listen_fd_,
                             reinterpret_cast<sockaddr*>(&peer_addr),
                             &peer_len);
    if (client_fd < 0) {
      if (!running_.load()) return;
      continue;
    }
    char peer_buf[INET_ADDRSTRLEN] = {0};
    ::inet_ntop(AF_INET, &peer_addr.sin_addr, peer_buf, sizeof(peer_buf));
    std::string peer(peer_buf);

    if (config_.connection_filter && !config_.connection_filter(peer)) {
      ::close(client_fd);
      continue;
    }
    int one = 1;
    ::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    bool queued = workers_->submit(
        [this, client_fd, peer] { serve_connection(client_fd, peer); });
    if (!queued) ::close(client_fd);
  }
}

std::optional<Request> Server::read_request(int fd, std::string& buffer,
                                            bool& keep_alive) {
  // Read until we have the full header block.
  std::size_t header_end;
  for (;;) {
    header_end = buffer.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    if (buffer.size() > config_.max_body_bytes) return std::nullopt;
    pollfd pfd{fd, POLLIN, 0};
    int pr = ::poll(&pfd, 1, kIdleTimeoutMs);
    if (pr <= 0) return std::nullopt;
    char chunk[kReadChunk];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return std::nullopt;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }

  Request request;
  std::string_view head(buffer.data(), header_end);
  auto lines = common::split(head, '\n');
  if (lines.empty()) return std::nullopt;
  auto first = common::split_fields(lines[0]);
  if (first.size() < 2) return std::nullopt;
  request.method = first[0];
  request.target = first[1];
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = common::trim(lines[i]);
    std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string name(common::trim(line.substr(0, colon)));
    std::string value(common::trim(line.substr(colon + 1)));
    request.headers[name] = value;
  }

  std::size_t body_len = 0;
  if (auto cl = request.header("Content-Length")) {
    auto parsed = common::parse_int64(*cl);
    if (!parsed || *parsed < 0 ||
        static_cast<std::size_t>(*parsed) > config_.max_body_bytes)
      return std::nullopt;
    body_len = static_cast<std::size_t>(*parsed);
  }
  std::size_t body_start = header_end + 4;
  while (buffer.size() < body_start + body_len) {
    pollfd pfd{fd, POLLIN, 0};
    int pr = ::poll(&pfd, 1, kIdleTimeoutMs);
    if (pr <= 0) return std::nullopt;
    char chunk[kReadChunk];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return std::nullopt;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  request.body = buffer.substr(body_start, body_len);
  buffer.erase(0, body_start + body_len);

  auto connection = request.header("Connection");
  keep_alive = !(connection && common::to_lower(*connection) == "close");
  return request;
}

Response Server::dispatch(const Request& request) {
  if (config_.fault_hook) {
    // Chaos injection: a faulting server answers before any routing, the
    // way an overloaded or restarting backend would.
    auto fault = config_.fault_hook("http.server", request.path());
    if (fault.kind == faults::FaultKind::kHttpStatus) {
      return Response::text(fault.http_status, "injected fault");
    }
  }
  if (config_.basic_auth.enabled()) {
    auto auth = request.header("Authorization");
    auto creds = auth ? decode_basic_auth(*auth) : std::nullopt;
    if (!creds || creds->first != config_.basic_auth.username ||
        creds->second != config_.basic_auth.password) {
      return Response::unauthorized();
    }
  }
  std::string path = request.path();
  Handler handler;
  {
    std::lock_guard lock(routes_mu_);
    for (const auto& [route, h] : exact_routes_) {
      if (route == path) {
        handler = h;
        break;
      }
    }
    if (!handler) {
      for (const auto& [prefix, h] : prefix_routes_) {
        if (common::starts_with(path, prefix)) {
          handler = h;
          break;
        }
      }
    }
    if (!handler) handler = default_handler_;
  }
  if (!handler) return Response::not_found("no route for " + path);
  try {
    return handler(request);
  } catch (const std::exception& e) {
    CEEMS_LOG_ERROR("http") << "handler error on " << path << ": " << e.what();
    return Response::internal_error(e.what());
  }
}

void Server::serve_connection(int client_fd, const std::string& /*peer*/) {
  std::string buffer;
  bool keep_alive = true;
  while (running_.load() && keep_alive) {
    auto request = read_request(client_fd, buffer, keep_alive);
    if (!request) break;
    ++inflight_;
    Response response = dispatch(*request);
    ++requests_served_;
    --inflight_;
    if (!send_all(client_fd, serialize_response(response, keep_alive))) break;
  }
  ::close(client_fd);
}

}  // namespace ceems::http
