// Builds the per-node exporter from a simulated node: cgroup + node + RAPL
// + IPMI collectors, plus the DCGM/AMD-SMI-style GPU collectors and the
// job→GPU map on GPU nodes. The paper deploys the GPU exporter as a
// separate process next to the CEEMS exporter; both modes are supported
// (merged = one scrape target per node, separate = two).
#pragma once

#include <memory>

#include "exporter/exporter.h"
#include "node/node_sim.h"

namespace ceems::core {

// The scrape label that routes a node to its recording-rule group.
std::string nodegroup_of(const node::NodeSpec& spec);

// CEEMS exporter for the node (cgroup, node, RAPL, IPMI collectors; GPU
// map + GPU telemetry collectors included when `merge_gpu_exporter`).
std::unique_ptr<exporter::Exporter> make_ceems_exporter(
    const node::NodeSimPtr& node, common::ClockPtr clock,
    exporter::ExporterConfig config = {}, bool merge_gpu_exporter = true);

// Stand-alone DCGM/AMD-SMI-style exporter (separate deployment mode).
std::unique_ptr<exporter::Exporter> make_gpu_exporter(
    const node::NodeSimPtr& node, common::ClockPtr clock,
    exporter::ExporterConfig config = {});

}  // namespace ceems::core
