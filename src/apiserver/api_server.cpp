#include "apiserver/api_server.h"

#include <algorithm>

#include "apiserver/reports.h"

#include "common/strutil.h"

namespace ceems::apiserver {

using common::Json;
using common::JsonArray;
using common::JsonObject;
using reldb::AggFn;
using reldb::Predicate;
using reldb::Query;
using reldb::Value;

ApiServer::ApiServer(ApiServerConfig config, reldb::Database& db,
                     common::ClockPtr clock)
    : config_(std::move(config)),
      db_(db),
      clock_(std::move(clock)),
      server_(config_.http) {
  create_ceems_tables(db_);
  server_.handle("/api/v1/units", [this](const http::Request& r) {
    return handle_units(r);
  });
  server_.handle_prefix("/api/v1/units/", [this](const http::Request& r) {
    if (r.path() == "/api/v1/units/verify") return handle_verify(r);
    return handle_unit_detail(r);
  });
  server_.handle("/api/v1/usage", [this](const http::Request& r) {
    return handle_usage(r);
  });
  server_.handle("/api/v1/users", [this](const http::Request& r) {
    return handle_users(r);
  });
  server_.handle("/api/v1/projects", [this](const http::Request& r) {
    return handle_projects(r);
  });
  server_.handle("/api/v1/reports/efficiency",
                 [this](const http::Request& r) {
                   std::string user = current_user(r);
                   if (!is_admin(user))
                     return http::Response::forbidden("admin only");
                   auto report = build_efficiency_report(db_);
                   Json body = Json::object();
                   body["status"] = Json("success");
                   body["data"] = efficiency_report_to_json(report);
                   return http::Response::json(200, body.dump());
                 });
  server_.handle("/health", [](const http::Request&) {
    return http::Response::json(200, "{\"status\":\"ok\"}");
  });
}

ApiServer::~ApiServer() { stop(); }

void ApiServer::start() { server_.start(); }
void ApiServer::stop() { server_.stop(); }

std::string ApiServer::current_user(const http::Request& request) const {
  return request.header(kGrafanaUserHeader).value_or("");
}

bool ApiServer::verify_ownership(const std::string& user,
                                 const std::string& uuid) const {
  if (user.empty()) return false;
  if (is_admin(user)) return true;
  auto row = db_.get(kUnitsTable, Value(uuid));
  if (!row) return false;
  Unit unit = unit_from_row(*row);
  if (unit.user == user) return true;
  if (!config_.project_shared_visibility) return false;
  // Same-project visibility: does `user` own any unit in that project?
  Query query;
  query.where = {{"user", Predicate::Op::kEq, Value(user)},
                 {"project", Predicate::Op::kEq, Value(unit.project)}};
  query.limit = 1;
  return !db_.query(kUnitsTable, query).rows.empty();
}

namespace {

Json units_to_json(const reldb::ResultSet& result) {
  JsonArray array;
  for (const auto& row : result.rows) {
    array.push_back(unit_from_row(row).to_json());
  }
  JsonObject body;
  body["status"] = Json("success");
  body["data"] = Json(std::move(array));
  return Json(std::move(body));
}

}  // namespace

http::Response ApiServer::handle_units(const http::Request& request) const {
  std::string user = current_user(request);
  if (user.empty())
    return http::Response::forbidden("missing " +
                                     std::string(kGrafanaUserHeader));
  auto params = request.query_params();

  Query query;
  if (!is_admin(user)) {
    // Non-admins can list their own units, or a project's units if they
    // belong to it.
    auto project_it = params.find("project");
    if (project_it != params.end() && config_.project_shared_visibility) {
      Query membership;
      membership.where = {{"user", Predicate::Op::kEq, Value(user)},
                          {"project", Predicate::Op::kEq,
                           Value(project_it->second)}};
      membership.limit = 1;
      if (db_.query(kUnitsTable, membership).rows.empty())
        return http::Response::forbidden("not a member of project");
      query.where.push_back(
          {"project", Predicate::Op::kEq, Value(project_it->second)});
    } else {
      query.where.push_back({"user", Predicate::Op::kEq, Value(user)});
    }
  } else {
    if (auto it = params.find("user"); it != params.end())
      query.where.push_back({"user", Predicate::Op::kEq, Value(it->second)});
    if (auto it = params.find("project"); it != params.end())
      query.where.push_back(
          {"project", Predicate::Op::kEq, Value(it->second)});
  }
  if (auto it = params.find("state"); it != params.end())
    query.where.push_back({"state", Predicate::Op::kEq, Value(it->second)});
  if (auto it = params.find("cluster"); it != params.end())
    query.where.push_back({"cluster", Predicate::Op::kEq, Value(it->second)});
  if (auto it = params.find("resource_manager"); it != params.end())
    query.where.push_back(
        {"resource_manager", Predicate::Op::kEq, Value(it->second)});
  if (auto it = params.find("from"); it != params.end()) {
    if (auto from = common::parse_int64(it->second))
      query.where.push_back(
          {"started_at_ms", Predicate::Op::kGe, Value(*from)});
  }
  if (auto it = params.find("to"); it != params.end()) {
    if (auto to = common::parse_int64(it->second))
      query.where.push_back({"started_at_ms", Predicate::Op::kLt, Value(*to)});
  }
  query.order_by = "started_at_ms";
  query.descending = true;
  std::size_t offset = 0;
  if (auto it = params.find("offset"); it != params.end()) {
    offset = static_cast<std::size_t>(
        std::max<int64_t>(0, common::parse_int64(it->second).value_or(0)));
  }
  std::size_t limit = 0;
  if (auto it = params.find("limit"); it != params.end()) {
    limit = static_cast<std::size_t>(
        std::max<int64_t>(0, common::parse_int64(it->second).value_or(0)));
  }
  // Pagination happens after the ordered query (offset before limit).
  reldb::ResultSet result = db_.query(kUnitsTable, query);
  if (offset > 0) {
    result.rows.erase(result.rows.begin(),
                      result.rows.begin() +
                          static_cast<std::ptrdiff_t>(
                              std::min(offset, result.rows.size())));
  }
  if (limit > 0 && result.rows.size() > limit) result.rows.resize(limit);
  return http::Response::json(200, units_to_json(result).dump());
}

http::Response ApiServer::handle_unit_detail(
    const http::Request& request) const {
  std::string user = current_user(request);
  if (user.empty())
    return http::Response::forbidden("missing user header");
  std::string path = request.path();
  std::string uuid = path.substr(std::string("/api/v1/units/").size());
  auto row = db_.get(kUnitsTable, Value(uuid));
  if (!row) return http::Response::not_found("no unit " + uuid);
  if (!verify_ownership(user, uuid))
    return http::Response::forbidden("not the owner of unit " + uuid);
  JsonObject body;
  body["status"] = Json("success");
  body["data"] = unit_from_row(*row).to_json();
  return http::Response::json(200, Json(std::move(body)).dump());
}

http::Response ApiServer::handle_usage(const http::Request& request) const {
  std::string user = current_user(request);
  if (user.empty())
    return http::Response::forbidden("missing user header");
  auto params = request.query_params();
  std::string scope =
      params.count("scope") ? params.at("scope") : std::string("user");

  Query query;
  if (scope == "project") {
    query.group_by = {"project"};
  } else if (scope == "user") {
    query.group_by = {"user"};
  } else {
    return http::Response::bad_request("scope must be user or project");
  }
  if (!is_admin(user)) {
    query.where.push_back({"user", Predicate::Op::kEq, Value(user)});
  }
  if (auto it = params.find("from"); it != params.end()) {
    if (auto from = common::parse_int64(it->second))
      query.where.push_back(
          {"started_at_ms", Predicate::Op::kGe, Value(*from)});
  }
  if (auto it = params.find("to"); it != params.end()) {
    if (auto to = common::parse_int64(it->second))
      query.where.push_back({"started_at_ms", Predicate::Op::kLt, Value(*to)});
  }
  query.aggregates = {
      {AggFn::kCount, "", "num_units"},
      {AggFn::kSum, "total_cpu_time_seconds", "total_cpu_time_seconds"},
      {AggFn::kAvg, "avg_cpu_usage", "avg_cpu_usage"},
      {AggFn::kAvg, "avg_cpu_mem_bytes", "avg_cpu_mem_bytes"},
      {AggFn::kAvg, "avg_gpu_usage", "avg_gpu_usage"},
      {AggFn::kSum, "total_energy_joules", "total_energy_joules"},
      {AggFn::kSum, "total_emissions_grams", "total_emissions_grams"},
      {AggFn::kSum, "total_io_read_bytes", "total_io_read_bytes"},
  };

  reldb::ResultSet result = db_.query(kUnitsTable, query);
  JsonArray rows;
  for (const auto& row : result.rows) {
    JsonObject entry;
    for (std::size_t i = 0; i < result.columns.size(); ++i) {
      const Value& value = row[i];
      if (value.is_int()) entry[result.columns[i]] = Json(value.as_int());
      else if (value.is_real()) entry[result.columns[i]] = Json(value.as_real());
      else entry[result.columns[i]] = Json(value.as_text());
    }
    rows.push_back(Json(std::move(entry)));
  }
  JsonObject body;
  body["status"] = Json("success");
  body["data"] = Json(std::move(rows));
  return http::Response::json(200, Json(std::move(body)).dump());
}

http::Response ApiServer::handle_verify(const http::Request& request) const {
  std::string user = current_user(request);
  auto uuids = request.query_param_all("uuid");
  if (user.empty() || uuids.empty())
    return http::Response::bad_request("user header and uuid required");
  for (const auto& uuid : uuids) {
    if (!verify_ownership(user, uuid))
      return http::Response::forbidden("user " + user +
                                       " does not own unit " + uuid);
  }
  return http::Response::json(200, "{\"status\":\"success\"}");
}

http::Response ApiServer::handle_users(const http::Request& request) const {
  std::string user = current_user(request);
  if (!is_admin(user)) return http::Response::forbidden("admin only");
  Query query;
  query.group_by = {"user"};
  query.aggregates = {{AggFn::kCount, "", "num_units"}};
  reldb::ResultSet result = db_.query(kUnitsTable, query);
  JsonArray users;
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    users.push_back(Json(result.at(i, "user").as_text()));
  }
  JsonObject body;
  body["status"] = Json("success");
  body["data"] = Json(std::move(users));
  return http::Response::json(200, Json(std::move(body)).dump());
}

http::Response ApiServer::handle_projects(const http::Request& request) const {
  std::string user = current_user(request);
  if (!is_admin(user)) return http::Response::forbidden("admin only");
  Query query;
  query.group_by = {"project"};
  query.aggregates = {{AggFn::kCount, "", "num_units"}};
  reldb::ResultSet result = db_.query(kUnitsTable, query);
  JsonArray projects;
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    projects.push_back(Json(result.at(i, "project").as_text()));
  }
  JsonObject body;
  body["status"] = Json("success");
  body["data"] = Json(std::move(projects));
  return http::Response::json(200, Json(std::move(body)).dump());
}

}  // namespace ceems::apiserver
