#include "tsdb/query_cache.h"

#include <algorithm>
#include <functional>

namespace ceems::tsdb::promql {

namespace {
// At most this many stripes; each stripe wants at least 8 entries so
// small caches (the eviction-sensitive ones) keep exact LRU order.
constexpr std::size_t kMaxStripes = 8;
constexpr std::size_t kMinStripeEntries = 8;
}  // namespace

QueryCache::QueryCache(std::size_t capacity) : capacity_(capacity) {
  stripe_count_ = std::clamp<std::size_t>(capacity / kMinStripeEntries, 1,
                                          kMaxStripes);
  // Round up so the striped total never falls below the requested
  // capacity.
  stripe_capacity_ = (capacity + stripe_count_ - 1) / stripe_count_;
  stripes_ = std::make_unique<Stripe[]>(stripe_count_);
}

std::string QueryCacheKey::encode() const {
  return query + "\x1f" + std::to_string(start) + "\x1f" +
         std::to_string(end) + "\x1f" + std::to_string(step_ms);
}

QueryCache::Stripe& QueryCache::stripe_of(const std::string& encoded) const {
  return stripes_[std::hash<std::string>{}(encoded) % stripe_count_];
}

std::optional<std::vector<Series>> QueryCache::lookup(
    const QueryCacheKey& key, const std::vector<uint64_t>& versions) {
  std::string encoded = key.encode();
  Stripe& s = stripe_of(encoded);
  std::lock_guard lock(s.mu);
  auto it = s.by_key.find(encoded);
  if (it == s.by_key.end()) {
    ++s.stats.misses;
    return std::nullopt;
  }
  if (it->second->versions != versions) {
    s.lru.erase(it->second);
    s.by_key.erase(it);
    ++s.stats.invalidations;
    ++s.stats.misses;
    return std::nullopt;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  ++s.stats.hits;
  return it->second->result;
}

void QueryCache::insert(const QueryCacheKey& key,
                        std::vector<uint64_t> versions,
                        std::vector<Series> result) {
  if (capacity_ == 0) return;
  std::string encoded = key.encode();
  Stripe& s = stripe_of(encoded);
  std::lock_guard lock(s.mu);
  if (auto it = s.by_key.find(encoded); it != s.by_key.end()) {
    s.lru.erase(it->second);
    s.by_key.erase(it);
  }
  s.lru.push_front(Entry{encoded, std::move(versions), std::move(result)});
  s.by_key[encoded] = s.lru.begin();
  while (s.lru.size() > stripe_capacity_) {
    s.by_key.erase(s.lru.back().encoded_key);
    s.lru.pop_back();
    ++s.stats.evictions;
  }
}

QueryCacheStats QueryCache::stats() const {
  QueryCacheStats out;
  for (std::size_t i = 0; i < stripe_count_; ++i) {
    Stripe& s = stripes_[i];
    std::lock_guard lock(s.mu);
    out.hits += s.stats.hits;
    out.misses += s.stats.misses;
    out.invalidations += s.stats.invalidations;
    out.evictions += s.stats.evictions;
    out.size += s.lru.size();
  }
  return out;
}

void QueryCache::clear() {
  for (std::size_t i = 0; i < stripe_count_; ++i) {
    Stripe& s = stripes_[i];
    std::lock_guard lock(s.mu);
    s.lru.clear();
    s.by_key.clear();
  }
}

}  // namespace ceems::tsdb::promql
