// Symbol interning for label strings — the Prometheus symbol-table idea.
// Every distinct label name/value string is stored once per process in the
// global SymbolTable; label sets then travel as small vectors of 32-bit
// symbol ids (InternedLabels) with a precomputed fingerprint, making
// equality O(1)-ish (fingerprint compare + short id-vector compare) and
// per-sample label handling allocation-free after first sight.
//
// InternedLabels keeps the same canonical ordering (sorted by label *name
// string*) and the same FNV-1a fingerprint as Labels, so the two
// representations are interchangeable: converting back and forth is
// lossless and fingerprints agree bit-for-bit.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "metrics/labels.h"

namespace ceems::metrics {

// Process-wide thread-safe string interner. Symbol ids are dense, start at
// 0, and stay valid (with stable string storage) for the process lifetime;
// nothing is ever un-interned.
class SymbolTable {
 public:
  // The table shared by every metrics producer/consumer in the process.
  static SymbolTable& global();

  // Returns the id for `text`, inserting it on first sight.
  uint32_t intern(std::string_view text);
  // Lookup without insertion — nullopt when the string was never interned
  // (useful for matchers: an unknown value cannot match any series).
  std::optional<uint32_t> find(std::string_view text) const;
  // The string for an id. Views are backed by stable per-process storage
  // and remain valid forever; an out-of-range id returns an empty view.
  std::string_view text(uint32_t id) const;

  std::size_t size() const;
  // Approximate memory held by the table (string bytes + index overhead).
  std::size_t approx_bytes() const;

 private:
  mutable std::shared_mutex mu_;
  std::deque<std::string> strings_;  // id -> string; deque = stable refs
  std::unordered_map<std::string_view, uint32_t> ids_;  // views into strings_
  std::size_t string_bytes_ = 0;
};

// A label set as sorted (name, value) symbol-id pairs plus the precomputed
// 64-bit fingerprint of the equivalent Labels. Construction interns every
// string once; copies and comparisons afterwards never touch string bytes.
class InternedLabels {
 public:
  using SymbolPair = std::pair<uint32_t, uint32_t>;  // (name id, value id)

  InternedLabels() = default;
  // Implicit by design: lets Labels flow into Sample{...} literals and
  // other interned-label APIs without call-site churn.
  InternedLabels(const Labels& labels);  // NOLINT(google-explicit-constructor)
  // Test-only seam: same labels, forced fingerprint — used to exercise the
  // storage layer's fingerprint-collision chaining deterministically.
  InternedLabels(const Labels& labels, uint64_t fingerprint_override);

  // Symbol pairs sorted by label name string (same canonical order as
  // Labels::pairs()).
  const std::vector<SymbolPair>& pairs() const { return syms_; }
  std::size_t size() const { return syms_.size(); }
  bool empty() const { return syms_.empty(); }

  uint64_t fingerprint() const { return fingerprint_; }

  // Value for a label name, or nullopt. The view stays valid for the
  // process lifetime (symbol storage is never freed).
  std::optional<std::string_view> get(std::string_view name) const;
  // Convenience for the metric name label.
  std::string_view name() const;

  // Returns a copy with `name` set to `value` (replacing any existing),
  // interning both strings. The symbol overload skips the intern lookups
  // when the caller pre-interned (e.g. per-target scrape labels).
  InternedLabels with(std::string_view name, std::string_view value) const;
  InternedLabels with_symbols(uint32_t name_sym, uint32_t value_sym) const;

  // Materialises the equivalent Labels (allocates; API-boundary use only).
  Labels to_labels() const;

  bool operator==(const InternedLabels& other) const {
    return fingerprint_ == other.fingerprint_ && syms_ == other.syms_;
  }
  bool operator!=(const InternedLabels& other) const {
    return !(*this == other);
  }

 private:
  std::vector<SymbolPair> syms_;
  uint64_t fingerprint_ = kEmptyFingerprint;

  // FNV-1a offset basis — the fingerprint of an empty label set, matching
  // Labels::fingerprint().
  static constexpr uint64_t kEmptyFingerprint = 0xcbf29ce484222325ULL;

  void rebuild(const std::vector<SymbolPair>& syms);
};

struct InternedLabelsHash {
  std::size_t operator()(const InternedLabels& labels) const {
    return static_cast<std::size_t>(labels.fingerprint());
  }
};

}  // namespace ceems::metrics
