
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/labels.cpp" "src/metrics/CMakeFiles/ceems_metrics.dir/labels.cpp.o" "gcc" "src/metrics/CMakeFiles/ceems_metrics.dir/labels.cpp.o.d"
  "/root/repo/src/metrics/model.cpp" "src/metrics/CMakeFiles/ceems_metrics.dir/model.cpp.o" "gcc" "src/metrics/CMakeFiles/ceems_metrics.dir/model.cpp.o.d"
  "/root/repo/src/metrics/registry.cpp" "src/metrics/CMakeFiles/ceems_metrics.dir/registry.cpp.o" "gcc" "src/metrics/CMakeFiles/ceems_metrics.dir/registry.cpp.o.d"
  "/root/repo/src/metrics/text_format.cpp" "src/metrics/CMakeFiles/ceems_metrics.dir/text_format.cpp.o" "gcc" "src/metrics/CMakeFiles/ceems_metrics.dir/text_format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ceems_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
