# Empty compiler generated dependencies file for ceems_lb.
# This may be replaced when dependencies are built.
