#include "lb/load_balancer.h"

#include <limits>

#include "common/logging.h"

namespace ceems::lb {

LoadBalancer::LoadBalancer(LbConfig config,
                           std::vector<std::string> backend_urls,
                           common::ClockPtr clock)
    : config_(std::move(config)),
      clock_(std::move(clock)),
      server_(config_.http) {
  for (auto& url : backend_urls) {
    auto backend = std::make_unique<Backend>();
    backend->base_url = std::move(url);
    backends_.push_back(std::move(backend));
  }
  server_.handle_prefix("/api/v1/", [this](const http::Request& request) {
    return handle_proxy(request);
  });
  server_.handle("/health", [](const http::Request&) {
    return http::Response::json(200, "{\"status\":\"ok\"}");
  });
}

LoadBalancer::~LoadBalancer() { stop(); }

void LoadBalancer::start() { server_.start(); }
void LoadBalancer::stop() { server_.stop(); }

bool LoadBalancer::check_ownership(const std::string& user,
                                   const std::set<std::string>& uuids) {
  if (api_server_) {
    for (const auto& uuid : uuids) {
      if (!api_server_->verify_ownership(user, uuid)) return false;
    }
    return true;
  }
  if (config_.api_server_url.empty()) return false;
  // HTTP fallback (§II-C): ask the API server's verify endpoint.
  std::string url = config_.api_server_url + "/api/v1/units/verify?";
  bool first = true;
  for (const auto& uuid : uuids) {
    if (!first) url += "&";
    first = false;
    url += "uuid=" + http::url_encode(uuid);
  }
  http::Client client;
  http::HeaderMap headers;
  headers[apiserver::kGrafanaUserHeader] = user;
  auto result = client.get(url, headers);
  return result.ok && result.response.status == 200;
}

LoadBalancer::Backend* LoadBalancer::pick_backend() {
  if (backends_.empty()) return nullptr;
  if (config_.strategy == Strategy::kRoundRobin) {
    std::size_t index =
        round_robin_next_.fetch_add(1) % backends_.size();
    return backends_[index].get();
  }
  // Least connection.
  Backend* best = nullptr;
  int best_inflight = std::numeric_limits<int>::max();
  for (const auto& backend : backends_) {
    int inflight = backend->inflight.load();
    if (inflight < best_inflight) {
      best_inflight = inflight;
      best = backend.get();
    }
  }
  return best;
}

http::Response LoadBalancer::handle_proxy(const http::Request& request) {
  std::string user =
      request.header(apiserver::kGrafanaUserHeader).value_or("");
  if (user.empty()) {
    ++denied_;
    return http::Response::forbidden("missing X-Grafana-User header");
  }
  bool admin = config_.admin_users.count(user) > 0;

  // Introspect the PromQL query (query endpoints only; /api/v1/series uses
  // match[] selectors which go through the same code).
  std::string path = request.path();
  std::vector<std::string> queries;
  if (path == "/api/v1/query" || path == "/api/v1/query_range") {
    auto params = request.query_params();
    auto it = params.find("query");
    if (it != params.end()) queries.push_back(it->second);
  } else if (path == "/api/v1/series") {
    queries = request.query_param_all("match[]");
  }

  if (!admin) {
    if (queries.empty()) {
      ++denied_;
      return http::Response::forbidden("only query endpoints are allowed");
    }
    std::set<std::string> uuids;
    for (const auto& query : queries) {
      IntrospectResult result = introspect_query(query);
      if (!result.parse_ok) {
        ++denied_;
        return http::Response::bad_request("unparsable query: " +
                                           result.error);
      }
      if (result.has_unverifiable_selector) {
        ++denied_;
        return http::Response::forbidden(
            "query must pin uuid=\"...\" on every selector");
      }
      uuids.insert(result.uuids.begin(), result.uuids.end());
    }
    if (!check_ownership(user, uuids)) {
      ++denied_;
      return http::Response::forbidden("user " + user +
                                       " does not own the queried units");
    }
  }

  http::HeaderMap headers = request.headers;
  headers.erase("Host");
  headers.erase("Content-Length");
  headers.erase("Connection");

  // Failover: a backend that fails at the transport level is skipped and
  // the request retried on the next one, up to one full rotation.
  std::string last_error = "no backends configured";
  for (std::size_t attempt = 0; attempt < backends_.size(); ++attempt) {
    Backend* backend = pick_backend();
    if (!backend) break;
    ++backend->inflight;
    ++backend->requests;
    http::Client client;
    auto result = client.request(request.method,
                                 backend->base_url + request.target,
                                 request.body, headers);
    --backend->inflight;
    if (result.ok) return result.response;
    ++backend->failures;
    last_error = result.error;
  }
  return http::Response::json(
      502, "{\"status\":\"error\",\"error\":\"backends unreachable: " +
               last_error + "\"}");
}

std::vector<BackendStats> LoadBalancer::backend_stats() const {
  std::vector<BackendStats> out;
  for (const auto& backend : backends_) {
    BackendStats stats;
    stats.base_url = backend->base_url;
    stats.requests = backend->requests.load();
    stats.failures = backend->failures.load();
    stats.inflight = backend->inflight.load();
    out.push_back(std::move(stats));
  }
  return out;
}

}  // namespace ceems::lb
