#include "http/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/strutil.h"

namespace ceems::http {

namespace {

bool send_all(int fd, std::string_view data, int timeout_ms) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    pollfd pfd{fd, POLLOUT, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) return false;
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Client::Client(ClientConfig config) : config_(std::move(config)) {}

Client::~Client() {
  if (cached_fd_ >= 0) ::close(cached_fd_);
}

Client::Client(Client&& other) noexcept
    : config_(std::move(other.config_)),
      cached_fd_(other.cached_fd_),
      cached_endpoint_(std::move(other.cached_endpoint_)) {
  other.cached_fd_ = -1;
}

std::optional<Client::ParsedUrl> Client::parse_url(const std::string& url) {
  std::string_view rest = url;
  if (!common::starts_with(rest, "http://")) return std::nullopt;
  rest.remove_prefix(7);
  std::size_t slash = rest.find('/');
  std::string_view authority =
      slash == std::string_view::npos ? rest : rest.substr(0, slash);
  ParsedUrl parsed;
  parsed.target = slash == std::string_view::npos
                      ? "/"
                      : std::string(rest.substr(slash));
  std::size_t colon = authority.rfind(':');
  if (colon == std::string_view::npos) {
    parsed.host = std::string(authority);
    parsed.port = 80;
  } else {
    parsed.host = std::string(authority.substr(0, colon));
    auto port = common::parse_int64(authority.substr(colon + 1));
    if (!port || *port <= 0 || *port > 65535) return std::nullopt;
    parsed.port = static_cast<uint16_t>(*port);
  }
  if (parsed.host == "localhost") parsed.host = "127.0.0.1";
  return parsed;
}

int Client::connect_to(const ParsedUrl& url, std::string& error) {
  std::string endpoint = url.host + ":" + std::to_string(url.port);
  if (cached_fd_ >= 0 && cached_endpoint_ == endpoint) {
    int fd = cached_fd_;
    cached_fd_ = -1;
    return fd;
  }
  if (cached_fd_ >= 0) {
    ::close(cached_fd_);
    cached_fd_ = -1;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error = "socket() failed";
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(url.port);
  if (::inet_pton(AF_INET, url.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    error = "unresolvable host " + url.host + " (only IPv4 literals supported)";
    return -1;
  }
  // Non-blocking connect with timeout.
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    ::close(fd);
    error = "connect failed: " + std::string(std::strerror(errno));
    return -1;
  }
  if (rc < 0) {
    pollfd pfd{fd, POLLOUT, 0};
    if (::poll(&pfd, 1, config_.connect_timeout_ms) <= 0) {
      ::close(fd);
      error = "connect timeout to " + endpoint;
      return -1;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (so_error != 0) {
      ::close(fd);
      error = "connect failed: " + std::string(std::strerror(so_error));
      return -1;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  cached_endpoint_ = endpoint;
  return fd;
}

FetchResult Client::get(const std::string& url, const HeaderMap& headers) {
  return request("GET", url, "", headers);
}

FetchResult Client::post(const std::string& url, const std::string& body,
                         const std::string& content_type,
                         const HeaderMap& headers) {
  HeaderMap all = headers;
  all["Content-Type"] = content_type;
  return request("POST", url, body, all);
}

FetchResult Client::request(const std::string& method, const std::string& url,
                            const std::string& body, const HeaderMap& headers) {
  FetchResult result;
  auto parsed = parse_url(url);
  if (!parsed) {
    result.error = "bad url: " + url;
    return result;
  }
  int fd = connect_to(*parsed, result.error);
  if (fd < 0) return result;

  std::string wire = method + " " + parsed->target + " HTTP/1.1\r\n";
  wire += "Host: " + parsed->host + ":" + std::to_string(parsed->port) + "\r\n";
  for (const auto& [name, value] : headers) {
    wire += name + ": " + value + "\r\n";
  }
  if (config_.basic_auth.enabled() && headers.find("Authorization") == headers.end()) {
    wire += "Authorization: " +
            basic_auth_header(config_.basic_auth.username,
                              config_.basic_auth.password) +
            "\r\n";
  }
  wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  wire += "Connection: keep-alive\r\n\r\n";
  wire += body;

  if (!send_all(fd, wire, config_.io_timeout_ms)) {
    ::close(fd);
    result.error = "send failed";
    return result;
  }

  // Read headers.
  std::string buffer;
  std::size_t header_end;
  for (;;) {
    header_end = buffer.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, config_.io_timeout_ms) <= 0) {
      ::close(fd);
      result.error = "response header timeout";
      return result;
    }
    char chunk[16384];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      ::close(fd);
      result.error = "connection closed reading headers";
      return result;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }

  std::string_view head(buffer.data(), header_end);
  auto lines = common::split(head, '\n');
  auto status_fields = common::split_fields(lines.empty() ? "" : lines[0]);
  if (status_fields.size() < 2) {
    ::close(fd);
    result.error = "malformed status line";
    return result;
  }
  auto status = common::parse_int64(status_fields[1]);
  if (!status) {
    ::close(fd);
    result.error = "malformed status code";
    return result;
  }
  result.response.status = static_cast<int>(*status);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = common::trim(lines[i]);
    std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    result.response.headers[std::string(common::trim(line.substr(0, colon)))] =
        std::string(common::trim(line.substr(colon + 1)));
  }

  std::size_t body_len = 0;
  auto cl = result.response.headers.find("Content-Length");
  if (cl != result.response.headers.end()) {
    auto parsed_len = common::parse_int64(cl->second);
    if (!parsed_len || *parsed_len < 0) {
      ::close(fd);
      result.error = "bad content-length";
      return result;
    }
    body_len = static_cast<std::size_t>(*parsed_len);
  }
  std::size_t body_start = header_end + 4;
  while (buffer.size() < body_start + body_len) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, config_.io_timeout_ms) <= 0) {
      ::close(fd);
      result.error = "response body timeout";
      return result;
    }
    char chunk[16384];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      ::close(fd);
      result.error = "connection closed reading body";
      return result;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  result.response.body = buffer.substr(body_start, body_len);
  result.ok = true;

  auto connection = result.response.headers.find("Connection");
  bool keep = connection == result.response.headers.end() ||
              common::to_lower(connection->second) != "close";
  if (keep && buffer.size() == body_start + body_len) {
    cached_fd_ = fd;  // reuse for the next request to the same endpoint
  } else {
    ::close(fd);
  }
  return result;
}

}  // namespace ceems::http
