// CEEMS load balancer (§II-B.c): the missing access-control element of the
// Prometheus/Grafana pair. A reverse proxy in front of one or more
// Prometheus/Thanos backends that
//   1. identifies the requesting user from the X-Grafana-User header,
//   2. introspects the PromQL query for compute-unit uuids,
//   3. checks ownership — directly against the CEEMS DB when the DB is
//      reachable, otherwise via an HTTP round trip to the API server's
//      verify endpoint (both paths of §II-C),
//   4. on success, forwards to a backend picked by the configured strategy
//      (round-robin or least-connection) and relays the response.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "apiserver/api_server.h"
#include "http/client.h"
#include "http/server.h"
#include "lb/query_introspect.h"

namespace ceems::lb {

enum class Strategy { kRoundRobin, kLeastConnection };

struct LbConfig {
  http::ServerConfig http;
  Strategy strategy = Strategy::kRoundRobin;
  std::set<std::string> admin_users;
  // API-server verify endpoint, used when no direct DB handle is set.
  std::string api_server_url;
  // A backend that fails at the transport level is skipped for this long
  // before being probed again (circuit breaker). 0 disables the breaker.
  int64_t failover_cooldown_ms = 2000;
};

struct BackendStats {
  std::string base_url;
  uint64_t requests = 0;
  uint64_t failures = 0;
  int inflight = 0;
};

class LoadBalancer {
 public:
  LoadBalancer(LbConfig config, std::vector<std::string> backend_urls,
               common::ClockPtr clock);
  ~LoadBalancer();

  // Direct-DB ownership path (preferred per §II-C). When unset, the LB
  // calls the API server over HTTP.
  void set_api_server(const apiserver::ApiServer* api_server) {
    api_server_ = api_server;
  }

  void start();
  void stop();
  uint16_t port() const { return server_.port(); }
  std::string base_url() const { return server_.base_url(); }

  std::vector<BackendStats> backend_stats() const;
  uint64_t denied_total() const { return denied_.load(); }

  // Exposed for unit tests without sockets.
  http::Response handle_proxy(const http::Request& request);

 private:
  struct Backend {
    std::string base_url;
    std::atomic<int> inflight{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> failures{0};
    // Circuit breaker: skipped by pick_backend() until this timestamp.
    std::atomic<int64_t> down_until_ms{0};
  };

  bool check_ownership(const std::string& user,
                       const std::set<std::string>& uuids);
  Backend* pick_backend(common::TimestampMs now);

  LbConfig config_;
  common::ClockPtr clock_;
  http::Server server_;
  std::vector<std::unique_ptr<Backend>> backends_;
  std::atomic<std::size_t> round_robin_next_{0};
  std::atomic<uint64_t> denied_{0};
  const apiserver::ApiServer* api_server_ = nullptr;
};

}  // namespace ceems::lb
