# CMake generated Testfile for 
# Source directory: /root/repo/src/emissions
# Build directory: /root/repo/build/src/emissions
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
