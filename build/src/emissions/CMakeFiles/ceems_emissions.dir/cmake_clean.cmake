file(REMOVE_RECURSE
  "CMakeFiles/ceems_emissions.dir/electricity_maps.cpp.o"
  "CMakeFiles/ceems_emissions.dir/electricity_maps.cpp.o.d"
  "CMakeFiles/ceems_emissions.dir/owid.cpp.o"
  "CMakeFiles/ceems_emissions.dir/owid.cpp.o.d"
  "CMakeFiles/ceems_emissions.dir/provider.cpp.o"
  "CMakeFiles/ceems_emissions.dir/provider.cpp.o.d"
  "CMakeFiles/ceems_emissions.dir/rte.cpp.o"
  "CMakeFiles/ceems_emissions.dir/rte.cpp.o.d"
  "libceems_emissions.a"
  "libceems_emissions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceems_emissions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
