file(REMOVE_RECURSE
  "libceems_dashboard.a"
)
