# Empty compiler generated dependencies file for ceems_reldb.
# This may be replaced when dependencies are built.
