#include "exporter/exporter.h"

#include <chrono>

#include "metrics/text_format.h"

namespace ceems::exporter {

Exporter::Exporter(ExporterConfig config, common::ClockPtr clock)
    : config_(std::move(config)),
      clock_(std::move(clock)),
      server_(config_.http),
      registry_(std::make_shared<metrics::Registry>()) {
  scrapes_ = registry_->counter("ceems_exporter_scrapes_total",
                                "Scrape requests served.");
  last_duration_ = registry_->gauge(
      "ceems_exporter_last_scrape_duration_seconds",
      "Wall time of the most recent collector sweep.");
  if (config_.enable_self_metrics) {
    collectors_.push_back(std::make_shared<SelfCollector>(registry_));
  }
  server_.handle("/metrics", [this](const http::Request& request) {
    return handle_metrics(request);
  });
}

Exporter::~Exporter() { stop(); }

void Exporter::add_collector(CollectorPtr collector) {
  collectors_.push_back(std::move(collector));
}

void Exporter::start() { server_.start(); }
void Exporter::stop() { server_.stop(); }

std::string Exporter::render(common::TimestampMs now) {
  auto started = std::chrono::steady_clock::now();
  std::vector<metrics::MetricFamily> families;
  for (const auto& collector : collectors_) {
    auto collected = collector->collect(now);
    families.insert(families.end(),
                    std::make_move_iterator(collected.begin()),
                    std::make_move_iterator(collected.end()));
  }
  scrapes_->inc();
  last_duration_->set(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count());
  return metrics::encode_families(families);
}

http::Response Exporter::handle_metrics(const http::Request& /*request*/) {
  return http::Response::text(200, render(clock_->now_ms()),
                              "text/plain; version=0.0.4; charset=utf-8");
}

uint64_t Exporter::scrapes_total() const {
  return static_cast<uint64_t>(scrapes_->value());
}

}  // namespace ceems::exporter
