#include "slurm/cluster.h"

#include <stdexcept>

namespace ceems::slurm {

Cluster::Cluster(std::string name, common::ClockPtr clock, uint64_t seed)
    : name_(std::move(name)), clock_(std::move(clock)), seed_(seed) {}

void Cluster::add_partition(const std::string& partition,
                            const std::string& prefix, int count,
                            node::NodeSpec (*make_spec)(const std::string&)) {
  auto& bucket = partitions_[partition];
  for (int i = 0; i < count; ++i) {
    std::string hostname = prefix + std::to_string(i);
    if (nodes_by_name_.count(hostname))
      throw std::invalid_argument("duplicate hostname " + hostname);
    auto sim = std::make_shared<node::NodeSim>(
        make_spec(hostname), clock_,
        seed_ ^ (nodes_by_name_.size() * 0x9E3779B97F4A7C15ULL + 1));
    nodes_by_name_[hostname] = sim;
    bucket.push_back(sim);
  }
}

node::NodeSimPtr Cluster::node(const std::string& hostname) const {
  auto it = nodes_by_name_.find(hostname);
  return it == nodes_by_name_.end() ? nullptr : it->second;
}

const std::vector<node::NodeSimPtr>& Cluster::partition_nodes(
    const std::string& partition) const {
  static const std::vector<node::NodeSimPtr> kEmpty;
  auto it = partitions_.find(partition);
  return it == partitions_.end() ? kEmpty : it->second;
}

std::vector<std::string> Cluster::partitions() const {
  std::vector<std::string> names;
  names.reserve(partitions_.size());
  for (const auto& [name, nodes] : partitions_) names.push_back(name);
  return names;
}

std::vector<node::NodeSimPtr> Cluster::all_nodes() const {
  std::vector<node::NodeSimPtr> nodes;
  nodes.reserve(nodes_by_name_.size());
  for (const auto& [name, sim] : nodes_by_name_) nodes.push_back(sim);
  return nodes;
}

void Cluster::step_nodes(int64_t dt_ms) {
  for (auto& [name, sim] : nodes_by_name_) sim->step(dt_ms);
}

}  // namespace ceems::slurm
