# Empty compiler generated dependencies file for ceems_metrics.
# This may be replaced when dependencies are built.
