file(REMOVE_RECURSE
  "CMakeFiles/cli_ceems_api_server.dir/ceems_api_server.cpp.o"
  "CMakeFiles/cli_ceems_api_server.dir/ceems_api_server.cpp.o.d"
  "ceems_api_server"
  "ceems_api_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cli_ceems_api_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
