# Empty compiler generated dependencies file for ceems_http.
# This may be replaced when dependencies are built.
