file(REMOVE_RECURSE
  "CMakeFiles/bench_power_sources.dir/bench_power_sources.cpp.o"
  "CMakeFiles/bench_power_sources.dir/bench_power_sources.cpp.o.d"
  "bench_power_sources"
  "bench_power_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_power_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
