#include "core/config.h"

#include "common/strutil.h"
#include "common/yamlconf.h"

namespace ceems::core {

using common::Json;

namespace {

int64_t duration_of(const Json& node, const std::string& key,
                    int64_t fallback_ms) {
  auto value = node.get(key);
  if (!value) return fallback_ms;
  if (value->is_number()) return value->as_int() * 1000;  // bare seconds
  if (value->is_string()) {
    if (auto parsed = common::parse_duration_ms(value->as_string()))
      return *parsed;
  }
  return fallback_ms;
}

}  // namespace

SimSetupConfig load_sim_config(const Json& root) {
  SimSetupConfig config;
  auto section = root.get("simulation");
  if (!section || !section->is_object()) return config;
  config.cluster_scale =
      section->get_number("cluster_scale", config.cluster_scale);
  config.jobs_per_day = section->get_number("jobs_per_day",
                                            config.jobs_per_day);
  config.seed = static_cast<uint64_t>(section->get_int("seed", 42));
  config.sim_step_ms = duration_of(*section, "step", config.sim_step_ms);
  return config;
}

StackConfig load_stack_config(const Json& root) {
  StackConfig config;
  auto section = root.get("ceems");
  if (!section || !section->is_object()) return config;

  if (auto scrape = section->get("scrape"); scrape && scrape->is_object()) {
    config.scrape_interval_ms =
        duration_of(*scrape, "interval", config.scrape_interval_ms);
    config.http_exporter_count = static_cast<std::size_t>(scrape->get_int(
        "http_exporters", static_cast<int64_t>(config.http_exporter_count)));
    if (auto auth = scrape->get("basic_auth"); auth && auth->is_object()) {
      config.exporter_auth.username = auth->get_string("username");
      config.exporter_auth.password = auth->get_string("password");
    }
  }
  if (auto rules = section->get("rules"); rules && rules->is_object()) {
    config.rate_window = rules->get_string("rate_window", config.rate_window);
    config.include_equal_split_baseline =
        rules->get_bool("equal_split_baseline",
                        config.include_equal_split_baseline);
  }
  if (auto updater = section->get("updater");
      updater && updater->is_object()) {
    config.updater.interval_ms =
        duration_of(*updater, "interval", config.updater.interval_ms);
    config.updater.small_unit_cutoff_ms = duration_of(
        *updater, "small_unit_cutoff", config.updater.small_unit_cutoff_ms);
    config.db_wal_path = updater->get_string("db_path", config.db_wal_path);
  }
  if (auto longterm = section->get("longterm");
      longterm && longterm->is_object()) {
    config.longterm.downsample_after_ms = duration_of(
        *longterm, "downsample_after", config.longterm.downsample_after_ms);
    config.longterm.resolution_ms =
        duration_of(*longterm, "resolution", config.longterm.resolution_ms);
    config.longterm.retention_ms =
        duration_of(*longterm, "retention", config.longterm.retention_ms);
    // Explicit resolution ladder; when present it overrides the legacy
    // single-level resolution/retention pair.
    if (auto levels = longterm->get("levels"); levels && levels->is_array()) {
      for (const auto& level_node : levels->as_array()) {
        if (!level_node.is_object()) continue;
        tsdb::AggLevelConfig level;
        level.resolution_ms =
            duration_of(level_node, "resolution", level.resolution_ms);
        level.retention_ms =
            duration_of(level_node, "retention", level.retention_ms);
        config.longterm.levels.push_back(level);
      }
    }
  }
  if (auto lb = section->get("lb"); lb && lb->is_object()) {
    std::string strategy = lb->get_string("strategy", "round-robin");
    config.lb_strategy = strategy == "least-connection"
                             ? lb::Strategy::kLeastConnection
                             : lb::Strategy::kRoundRobin;
    config.query_backend_count = static_cast<std::size_t>(lb->get_int(
        "backends", static_cast<int64_t>(config.query_backend_count)));
    if (auto admins = lb->get("admins"); admins && admins->is_array()) {
      config.admin_users.clear();
      for (const auto& admin : admins->as_array()) {
        if (admin.is_string()) config.admin_users.insert(admin.as_string());
      }
    }
  }
  if (auto emissions = section->get("emissions");
      emissions && emissions->is_object()) {
    config.country_code =
        emissions->get_string("country", config.country_code);
    config.emission_provider =
        emissions->get_string("provider", config.emission_provider);
  }
  return config;
}

LoadedConfig parse_config_text(const std::string& yaml_text) {
  Json root = common::parse_yaml(yaml_text);
  return {load_sim_config(root), load_stack_config(root)};
}

std::string reference_config_yaml() {
  return R"(# CEEMS single-file configuration (every component reads its section).
simulation:
  cluster_scale: 0.02      # fraction of the 1400-node Jean-Zay deployment
  jobs_per_day: 3000
  seed: 42
  step: 10s

ceems:
  scrape:
    interval: 30s
    http_exporters: 8      # nodes with real HTTP exporters (rest: local transport)
  rules:
    rate_window: 2m
    equal_split_baseline: false
  updater:
    interval: 60s
    small_unit_cutoff: 0s  # >0 deletes TSDB series of shorter jobs
    db_path: ""            # empty = in-memory units DB
  longterm:
    downsample_after: 2h
    resolution: 5m
    retention: 0s          # 0 = keep forever
    # Optional multi-resolution ladder (overrides resolution/retention):
    # levels:
    #   - resolution: 5m
    #     retention: 30d
    #   - resolution: 1h
  lb:
    strategy: round-robin  # or least-connection
    backends: 2
    admins: [admin]
  emissions:
    country: FR
    provider: rte          # rte | emaps | owid
)";
}

}  // namespace ceems::core
