#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "simfs/cgroup.h"
#include "simfs/procfs.h"
#include "simfs/pseudo_fs.h"
#include "simfs/real_fs.h"

namespace ceems::simfs {
namespace {

TEST(PseudoFs, WriteReadRemove) {
  PseudoFs fs;
  fs.write("/proc/stat", "cpu 1 2 3\n");
  EXPECT_EQ(*fs.read("/proc/stat"), "cpu 1 2 3\n");
  EXPECT_TRUE(fs.exists("/proc/stat"));
  EXPECT_TRUE(fs.exists("/proc"));
  EXPECT_TRUE(fs.is_dir("/proc"));
  EXPECT_FALSE(fs.is_dir("/proc/stat"));
  fs.remove("/proc/stat");
  EXPECT_FALSE(fs.read("/proc/stat").has_value());
}

TEST(PseudoFs, PathNormalization) {
  PseudoFs fs;
  fs.write("//a///b/./c", "x");
  EXPECT_EQ(*fs.read("/a/b/c"), "x");
}

TEST(PseudoFs, ListDirImmediateChildren) {
  PseudoFs fs;
  fs.write("/cg/job_1/cpu.stat", "a");
  fs.write("/cg/job_1/memory.current", "b");
  fs.write("/cg/job_2/cpu.stat", "c");
  fs.write("/cg/top_file", "d");
  auto children = fs.list_dir("/cg");
  ASSERT_EQ(children.size(), 3u);
  EXPECT_EQ(children[0], "job_1");
  EXPECT_EQ(children[1], "job_2");
  EXPECT_EQ(children[2], "top_file");
}

TEST(PseudoFs, RemoveSubtree) {
  PseudoFs fs;
  fs.write("/cg/job_1/cpu.stat", "a");
  fs.write("/cg/job_1/memory.current", "b");
  fs.write("/cg/job_10/cpu.stat", "c");  // prefix sibling must survive
  fs.remove("/cg/job_1");
  EXPECT_FALSE(fs.exists("/cg/job_1"));
  EXPECT_TRUE(fs.exists("/cg/job_10/cpu.stat"));
}

TEST(PseudoFs, DynamicFilesGenerateOnRead) {
  PseudoFs fs;
  int counter = 0;
  fs.write_dynamic("/sys/dynamic", [&counter] {
    return std::to_string(++counter);
  });
  EXPECT_EQ(*fs.read("/sys/dynamic"), "1");
  EXPECT_EQ(*fs.read("/sys/dynamic"), "2");
}

TEST(PseudoFs, ParseFlatKeyed) {
  auto map = parse_flat_keyed("usage_usec 123\nuser_usec 100\nbad line x\n");
  EXPECT_EQ(map["usage_usec"], 123);
  EXPECT_EQ(map["user_usec"], 100);
  EXPECT_EQ(map.count("bad"), 0u);
}

// ---------- RealFs (against a staging directory) ----------

class RealFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "realfs_" + std::to_string(::getpid());
    std::filesystem::create_directories(root_ + "/proc");
    std::filesystem::create_directories(root_ + "/cg/job_1");
    write_file("/proc/stat", "cpu 100 0 50 850 0 0 0 0 0 0\nbtime 1700000000\n");
    write_file("/proc/meminfo", "MemTotal: 1000 kB\nMemFree: 600 kB\nMemAvailable: 700 kB\n");
    write_file("/cg/job_1/cpu.stat", "usage_usec 5\nuser_usec 4\nsystem_usec 1\n");
  }
  void TearDown() override { std::filesystem::remove_all(root_); }
  void write_file(const std::string& rel, const std::string& content) {
    std::ofstream out(root_ + rel);
    out << content;
  }
  std::string root_;
};

TEST_F(RealFsTest, ReadsRealFiles) {
  RealFs fs(root_);
  auto stat = read_proc_stat(fs);
  ASSERT_TRUE(stat.has_value());
  EXPECT_EQ(stat->aggregate.user, 100);
  EXPECT_EQ(stat->boot_time_sec, 1700000000);
  auto mem = read_meminfo(fs);
  ASSERT_TRUE(mem.has_value());
  EXPECT_EQ(mem->mem_total_kb, 1000);
}

TEST_F(RealFsTest, ListsAndReadsCgroups) {
  RealFs fs(root_);
  EXPECT_TRUE(fs.is_dir("/cg"));
  EXPECT_FALSE(fs.is_dir("/cg/job_1/cpu.stat"));
  auto children = list_child_cgroups(fs, "/cg");
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0], "job_1");
  auto stats = read_cgroup(fs, "/cg/job_1");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->cpu.usage_usec, 5);
}

TEST_F(RealFsTest, MissingPathsAreNullopt) {
  RealFs fs(root_);
  EXPECT_FALSE(fs.read("/nope").has_value());
  EXPECT_FALSE(fs.exists("/nope"));
  EXPECT_TRUE(fs.list_dir("/nope").empty());
}

TEST(RealFsHost, ReadsTheActualProc) {
  // The test host is Linux: /proc/stat must parse.
  RealFs fs;
  auto stat = read_proc_stat(fs);
  ASSERT_TRUE(stat.has_value());
  EXPECT_GT(stat->aggregate.total(), 0);
  EXPECT_GT(stat->cpus.size(), 0u);
}

// ---------- cgroup ----------

TEST(Cgroup, WriterCreatesKernelFormatFiles) {
  auto fs = std::make_shared<PseudoFs>();
  CgroupWriter writer(fs, std::string(kSlurmScope) + "/job_42");
  writer.update_cpu({5000000, 4000000, 1000000});
  writer.update_memory({1 << 20, 2 << 20, 4 << 20, 900000, 100000});
  writer.update_io({111, 222, 3, 4});
  writer.set_procs({4201, 4202});

  auto stats = read_cgroup(*fs, std::string(kSlurmScope) + "/job_42");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->cpu.usage_usec, 5000000);
  EXPECT_EQ(stats->cpu.user_usec, 4000000);
  EXPECT_EQ(stats->memory.current_bytes, 1 << 20);
  EXPECT_EQ(stats->memory.peak_bytes, 2 << 20);
  EXPECT_EQ(stats->memory.max_bytes, 4 << 20);
  EXPECT_EQ(stats->io.rbytes, 111);
  EXPECT_EQ(stats->io.wbytes, 222);
  ASSERT_EQ(stats->procs.size(), 2u);
  EXPECT_EQ(stats->procs[0], 4201);
}

TEST(Cgroup, MemoryMaxUnlimitedRendersAsMax) {
  auto fs = std::make_shared<PseudoFs>();
  CgroupWriter writer(fs, "/cg/j");
  CgroupMemoryStat memory;
  memory.max_bytes = -1;
  writer.update_memory(memory);
  EXPECT_EQ(*fs->read("/cg/j/memory.max"), "max\n");
  auto stats = read_cgroup(*fs, "/cg/j");
  EXPECT_EQ(stats->memory.max_bytes, -1);
}

TEST(Cgroup, ReadMissingReturnsNullopt) {
  PseudoFs fs;
  EXPECT_FALSE(read_cgroup(fs, "/cg/gone").has_value());
}

TEST(Cgroup, DestroyRemovesDirectory) {
  auto fs = std::make_shared<PseudoFs>();
  CgroupWriter writer(fs, std::string(kSlurmScope) + "/job_7");
  EXPECT_EQ(list_child_cgroups(*fs, kSlurmScope).size(), 1u);
  writer.destroy();
  EXPECT_TRUE(list_child_cgroups(*fs, kSlurmScope).empty());
}

TEST(Cgroup, ListChildCgroups) {
  auto fs = std::make_shared<PseudoFs>();
  CgroupWriter a(fs, std::string(kSlurmScope) + "/job_1");
  CgroupWriter b(fs, std::string(kSlurmScope) + "/job_2");
  auto children = list_child_cgroups(*fs, kSlurmScope);
  ASSERT_EQ(children.size(), 2u);
  EXPECT_EQ(children[0], "job_1");
}

// ---------- procfs ----------

TEST(Procfs, ProcStatRoundTrip) {
  PseudoFs fs;
  ProcStat stat;
  stat.cpus.resize(2);
  stat.cpus[0] = {100, 0, 50, 850, 10, 0, 0};
  stat.cpus[1] = {200, 5, 60, 700, 20, 5, 10};
  for (const auto& cpu : stat.cpus) {
    stat.aggregate.user += cpu.user;
    stat.aggregate.nice += cpu.nice;
    stat.aggregate.system += cpu.system;
    stat.aggregate.idle += cpu.idle;
    stat.aggregate.iowait += cpu.iowait;
    stat.aggregate.irq += cpu.irq;
    stat.aggregate.softirq += cpu.softirq;
  }
  stat.boot_time_sec = 1700000000;
  write_proc_stat(fs, stat);

  auto parsed = read_proc_stat(fs);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->aggregate.user, 300);
  EXPECT_EQ(parsed->cpus.size(), 2u);
  EXPECT_EQ(parsed->cpus[1].system, 60);
  EXPECT_EQ(parsed->boot_time_sec, 1700000000);
  EXPECT_EQ(parsed->aggregate.busy(),
            parsed->aggregate.total() - parsed->aggregate.idle -
                parsed->aggregate.iowait);
}

TEST(Procfs, MeminfoRoundTrip) {
  PseudoFs fs;
  MemInfo info{192 * 1024 * 1024, 100 * 1024 * 1024, 120 * 1024 * 1024,
               1024, 2048};
  write_meminfo(fs, info);
  auto parsed = read_meminfo(fs);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->mem_total_kb, info.mem_total_kb);
  EXPECT_EQ(parsed->mem_available_kb, info.mem_available_kb);
}

TEST(Procfs, MissingFilesReturnNullopt) {
  PseudoFs fs;
  EXPECT_FALSE(read_proc_stat(fs).has_value());
  EXPECT_FALSE(read_meminfo(fs).has_value());
}

}  // namespace
}  // namespace ceems::simfs
