file(REMOVE_RECURSE
  "CMakeFiles/openstack_cloud.dir/openstack_cloud.cpp.o"
  "CMakeFiles/openstack_cloud.dir/openstack_cloud.cpp.o.d"
  "openstack_cloud"
  "openstack_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openstack_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
