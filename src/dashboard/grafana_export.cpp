#include "dashboard/grafana_export.h"

#include <fstream>

namespace ceems::dashboard {

using common::Json;
using common::JsonArray;
using common::JsonObject;

namespace {

Json datasource_ref(const std::string& uid, const std::string& type) {
  JsonObject ref;
  ref["type"] = Json(type);
  ref["uid"] = Json(uid);
  return Json(std::move(ref));
}

Json grid(int x, int y, int w, int h) {
  JsonObject pos;
  pos["x"] = Json(static_cast<int64_t>(x));
  pos["y"] = Json(static_cast<int64_t>(y));
  pos["w"] = Json(static_cast<int64_t>(w));
  pos["h"] = Json(static_cast<int64_t>(h));
  return Json(std::move(pos));
}

Json prom_target(const std::string& expr, const std::string& legend,
                 const std::string& ds_uid) {
  JsonObject target;
  target["datasource"] = datasource_ref(ds_uid, "prometheus");
  target["expr"] = Json(expr);
  target["legendFormat"] = Json(legend);
  target["refId"] = Json("A");
  return Json(std::move(target));
}

Json timeseries_panel(int id, const std::string& title,
                      const std::string& expr, const std::string& legend,
                      const std::string& unit, const std::string& ds_uid,
                      int x, int y, int w = 12, int h = 8) {
  JsonObject panel;
  panel["id"] = Json(static_cast<int64_t>(id));
  panel["type"] = Json("timeseries");
  panel["title"] = Json(title);
  panel["datasource"] = datasource_ref(ds_uid, "prometheus");
  panel["gridPos"] = grid(x, y, w, h);
  JsonObject defaults;
  defaults["unit"] = Json(unit);
  JsonObject field_config;
  field_config["defaults"] = Json(std::move(defaults));
  panel["fieldConfig"] = Json(std::move(field_config));
  JsonArray targets;
  targets.push_back(prom_target(expr, legend, ds_uid));
  panel["targets"] = Json(std::move(targets));
  return Json(std::move(panel));
}

Json stat_panel(int id, const std::string& title, const std::string& expr,
                const std::string& unit, const std::string& ds_uid, int x,
                int y) {
  Json panel = timeseries_panel(id, title, expr, "", unit, ds_uid, x, y, 4, 5);
  panel["type"] = Json("stat");
  return panel;
}

Json dashboard_shell(const std::string& uid, const std::string& title,
                     JsonArray panels) {
  JsonObject dashboard;
  dashboard["uid"] = Json(uid);
  dashboard["title"] = Json(title);
  dashboard["schemaVersion"] = Json(static_cast<int64_t>(36));
  dashboard["style"] = Json("dark");
  dashboard["tags"] = Json(JsonArray{Json("ceems"), Json("energy")});
  dashboard["timezone"] = Json("browser");
  JsonObject time;
  time["from"] = Json("now-6h");
  time["to"] = Json("now");
  dashboard["time"] = Json(std::move(time));
  dashboard["panels"] = Json(std::move(panels));
  return Json(std::move(dashboard));
}

Json uuid_variable() {
  JsonObject variable;
  variable["name"] = Json("uuid");
  variable["label"] = Json("Job ID");
  variable["type"] = Json("textbox");
  JsonObject current;
  current["text"] = Json("");
  current["value"] = Json("");
  variable["current"] = Json(std::move(current));
  JsonObject templating;
  JsonArray list;
  list.push_back(Json(std::move(variable)));
  templating["list"] = Json(std::move(list));
  return Json(std::move(templating));
}

}  // namespace

Json user_dashboard_json(const std::string& prometheus_ds_uid,
                         const std::string& api_ds_uid) {
  JsonArray panels;
  // Fig. 2a stat tiles, driven by the API server data source (table-style
  // JSON API; in Grafana this uses the JSON API / Infinity plugin).
  panels.push_back(stat_panel(1, "Total energy (kWh)",
                              "/api/v1/usage?scope=user", "kwatth",
                              api_ds_uid, 0, 0));
  panels.push_back(stat_panel(2, "Total emissions (gCO2e)",
                              "/api/v1/usage?scope=user", "massg",
                              api_ds_uid, 4, 0));
  panels.push_back(stat_panel(3, "Avg CPU usage", "/api/v1/usage?scope=user",
                              "percentunit", api_ds_uid, 8, 0));
  panels.push_back(stat_panel(4, "Avg GPU usage", "/api/v1/usage?scope=user",
                              "percentunit", api_ds_uid, 12, 0));
  // Fig. 2b unit table.
  Json table = timeseries_panel(5, "Compute units", "/api/v1/units", "",
                                "none", api_ds_uid, 0, 5, 24, 12);
  table["type"] = Json("table");
  panels.push_back(std::move(table));
  Json dashboard = dashboard_shell("ceems-user", "CEEMS / User usage",
                                   std::move(panels));
  (void)prometheus_ds_uid;
  return dashboard;
}

Json job_dashboard_json(const std::string& prometheus_ds_uid) {
  JsonArray panels;
  panels.push_back(timeseries_panel(
      1, "CPU usage (cores)",
      "sum(rate(ceems_compute_unit_cpu_usage_seconds_total{uuid=\"$uuid\"}[2m]))",
      "cores", "none", prometheus_ds_uid, 0, 0));
  panels.push_back(timeseries_panel(
      2, "Memory",
      "sum(ceems_compute_unit_memory_current_bytes{uuid=\"$uuid\"})",
      "resident", "bytes", prometheus_ds_uid, 12, 0));
  panels.push_back(timeseries_panel(
      3, "Estimated power", "sum(ceems_job_power_watts{uuid=\"$uuid\"})",
      "watts", "watt", prometheus_ds_uid, 0, 8));
  panels.push_back(timeseries_panel(
      4, "GPU power", "sum(ceems_job_gpu_power_watts{uuid=\"$uuid\"})",
      "watts", "watt", prometheus_ds_uid, 12, 8));
  panels.push_back(timeseries_panel(
      5, "Emission rate",
      "sum(ceems_job_emissions_g_per_hour{uuid=\"$uuid\"})", "gCO2e/h",
      "none", prometheus_ds_uid, 0, 16));
  panels.push_back(timeseries_panel(
      6, "Network",
      "sum(rate(ceems_compute_unit_network_tx_bytes_total{uuid=\"$uuid\"}[2m]))"
      " + sum(rate(ceems_compute_unit_network_rx_bytes_total{uuid=\"$uuid\"}[2m]))",
      "bytes/s", "Bps", prometheus_ds_uid, 12, 16));
  Json dashboard = dashboard_shell("ceems-job", "CEEMS / Job detail",
                                   std::move(panels));
  dashboard["templating"] = uuid_variable();
  return dashboard;
}

Json operator_dashboard_json(const std::string& prometheus_ds_uid) {
  JsonArray panels;
  panels.push_back(timeseries_panel(
      1, "Cluster power (IPMI)", "sum(instance:ipmi_watts)", "total",
      "watt", prometheus_ds_uid, 0, 0));
  panels.push_back(timeseries_panel(
      2, "Attributed job power by node group",
      "sum by (nodegroup) (ceems_job_power_watts)", "{{nodegroup}}", "watt",
      prometheus_ds_uid, 12, 0));
  panels.push_back(timeseries_panel(
      3, "Targets down", "count(up == 0) or vector(0)", "down", "none",
      prometheus_ds_uid, 0, 8));
  panels.push_back(timeseries_panel(
      4, "Firing alerts", "count(ALERTS{alertstate=\"firing\"}) or vector(0)",
      "alerts", "none", prometheus_ds_uid, 12, 8));
  panels.push_back(timeseries_panel(
      5, "Emission factor", "avg(ceems_emissions_gCo2_kWh) by (provider)",
      "{{provider}}", "none", prometheus_ds_uid, 0, 16));
  panels.push_back(timeseries_panel(
      6, "Running compute units", "sum(ceems_compute_units)", "units",
      "none", prometheus_ds_uid, 12, 16));
  return dashboard_shell("ceems-operator", "CEEMS / Operator",
                         std::move(panels));
}

bool export_grafana_dashboards(const std::string& dir,
                               const std::string& prometheus_ds_uid,
                               const std::string& api_ds_uid) {
  struct Entry {
    const char* file;
    Json json;
  };
  Entry entries[] = {
      {"ceems-user.json", user_dashboard_json(prometheus_ds_uid, api_ds_uid)},
      {"ceems-job.json", job_dashboard_json(prometheus_ds_uid)},
      {"ceems-operator.json", operator_dashboard_json(prometheus_ds_uid)},
  };
  for (const auto& entry : entries) {
    std::ofstream out(dir + "/" + entry.file, std::ios::trunc);
    if (!out.good()) return false;
    out << entry.json.dump(2) << "\n";
    if (!out.good()) return false;
  }
  return true;
}

}  // namespace ceems::dashboard
