// Durability abstraction for the TSDB write-ahead log and snapshots: a
// flat directory of named files with an explicit buffered-append / sync
// split, so tests can crash the "machine" at any point and observe
// exactly what a real fsync-ordered filesystem would have preserved.
//
// The contract mirrors POSIX semantics without exposing fds:
//   * append() buffers bytes; they are NOT durable until sync(name).
//   * sync() makes every buffered byte of the file durable (fsync).
//   * replace() atomically installs full new content (write temp +
//     rename + dir fsync — the snapshot-install idiom): after it returns
//     a crash sees either the old content or the new, never a mix.
//   * read() returns durable content only — what a crash would keep.
//
// SimDurableDir is the in-memory implementation driving the WAL tests,
// the crash-recovery differential and the soak harness's crash_restart
// storm: crash() drops all unsynced bytes, modelling power loss, and
// truncate_durable() chops synced bytes to model a torn tail on disk.
// RealDurableDir maps the same interface onto a host directory.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ceems::simfs {

class DurableDir {
 public:
  virtual ~DurableDir() = default;

  // Buffered append to `name` (created empty on first append). The bytes
  // become durable only after a successful sync(name).
  virtual bool append(const std::string& name, std::string_view bytes) = 0;

  // Flushes every buffered byte of `name` to durable storage.
  virtual bool sync(const std::string& name) = 0;

  // Atomically replaces `name` with exactly `bytes`, durably. Discards
  // any buffered appends to the same name.
  virtual bool replace(const std::string& name, std::string_view bytes) = 0;

  // Durable content of `name`, or nullopt if it does not exist. Buffered
  // (unsynced) bytes are invisible — this is the post-crash view.
  virtual std::optional<std::string> read(const std::string& name) const = 0;

  // Names of all files with durable content, sorted.
  virtual std::vector<std::string> list() const = 0;

  // Removes the file durably. Removing a missing file succeeds.
  virtual bool remove(const std::string& name) = 0;

  // Durably truncates `name` to `size` bytes (torn-tail repair after a
  // partially-synced record is detected). Discards buffered appends.
  virtual bool truncate(const std::string& name, std::size_t size) = 0;
};

using DurableDirPtr = std::shared_ptr<DurableDir>;

class SimDurableDir final : public DurableDir {
 public:
  bool append(const std::string& name, std::string_view bytes) override;
  bool sync(const std::string& name) override;
  bool replace(const std::string& name, std::string_view bytes) override;
  std::optional<std::string> read(const std::string& name) const override;
  std::vector<std::string> list() const override;
  bool remove(const std::string& name) override;
  bool truncate(const std::string& name, std::size_t size) override;

  // Power loss: every unsynced byte vanishes; durable content survives.
  void crash();

  // Test seams for corruption injection.
  // Chops durable content (models a torn disk write inside a record).
  void truncate_durable(const std::string& name, std::size_t size);
  // Overwrites one durable byte in place (models bit rot / torn sector).
  void corrupt_durable(const std::string& name, std::size_t offset,
                       uint8_t value);

  std::size_t pending_bytes(const std::string& name) const;
  uint64_t sync_count() const;

 private:
  struct File {
    std::string durable;
    std::string pending;  // appended but not yet synced
  };
  mutable std::mutex mu_;
  std::unordered_map<std::string, File> files_;
  uint64_t syncs_ = 0;
};

// The same interface over a host directory (root must exist). append()
// holds bytes in memory until sync(), which writes + fsyncs; replace()
// writes a temp file, fsyncs, renames, fsyncs the directory.
class RealDurableDir final : public DurableDir {
 public:
  explicit RealDurableDir(std::string root);

  bool append(const std::string& name, std::string_view bytes) override;
  bool sync(const std::string& name) override;
  bool replace(const std::string& name, std::string_view bytes) override;
  std::optional<std::string> read(const std::string& name) const override;
  std::vector<std::string> list() const override;
  bool remove(const std::string& name) override;
  bool truncate(const std::string& name, std::size_t size) override;

 private:
  std::string path_of(const std::string& name) const;

  std::string root_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::string> pending_;
};

}  // namespace ceems::simfs
