#include <gtest/gtest.h>

#include <cmath>

#include "core/node_exporter_factory.h"
#include "exporter/rapl_collector.h"
#include "emissions/owid.h"
#include "emissions/rte.h"
#include "exporter/emissions_collector.h"
#include "exporter/exporter.h"
#include "http/client.h"
#include "metrics/text_format.h"
#include "node/node_sim.h"

namespace ceems::exporter {
namespace {

using common::make_sim_clock;

class ExporterTest : public ::testing::Test {
 protected:
  ExporterTest() : clock_(make_sim_clock(1000000)) {}

  node::NodeSimPtr make_node(node::NodeSpec (*spec)(const std::string&),
                             const std::string& hostname) {
    return std::make_shared<node::NodeSim>(spec(hostname), clock_, 11);
  }

  void place_job(node::NodeSim& sim, int64_t id, int cpus,
                 std::vector<int> gpus = {}) {
    node::WorkloadPlacement placement;
    placement.job_id = id;
    placement.user = "alice";
    placement.project = "prj1";
    placement.alloc_cpus = cpus;
    placement.memory_limit_bytes = 8LL << 30;
    placement.gpu_ordinals = std::move(gpus);
    node::WorkloadBehavior behavior;
    behavior.cpu_util_mean = 0.8;
    behavior.cpu_util_jitter = 0;
    behavior.gpu_util_mean = 0.7;
    behavior.gpu_util_jitter = 0;
    sim.add_workload(placement, behavior);
  }

  metrics::ParsedExposition scrape(Exporter& exporter) {
    return metrics::parse_exposition(exporter.render(clock_->now_ms()));
  }

  double find_value(const metrics::ParsedExposition& parsed,
                    const std::string& name,
                    std::initializer_list<metrics::Labels::Pair> pairs = {}) {
    metrics::Labels want(pairs);
    for (const auto& sample : parsed.samples) {
      if (sample.labels.name() != name) continue;
      bool match = true;
      for (const auto& [key, value] : want.pairs()) {
        if (sample.labels.get(key) != value) match = false;
      }
      if (match) return sample.value;
    }
    return std::nan("");
  }

  std::shared_ptr<common::SimClock> clock_;
};

TEST_F(ExporterTest, CgroupCollectorExportsComputeUnits) {
  auto node = make_node(node::make_intel_cpu_node, "n1");
  place_job(*node, 1001, 10);
  for (int i = 0; i < 10; ++i) node->step(1000);

  auto exporter = core::make_ceems_exporter(node, clock_);
  auto parsed = scrape(*exporter);

  double user_sec = find_value(
      parsed, "ceems_compute_unit_cpu_usage_seconds_total",
      {{"uuid", "1001"}, {"mode", "user"}});
  double system_sec = find_value(
      parsed, "ceems_compute_unit_cpu_usage_seconds_total",
      {{"uuid", "1001"}, {"mode", "system"}});
  // 0.8 × 10 cpus × 10 s = 80 cpu-seconds split user/system.
  EXPECT_NEAR(user_sec + system_sec, 80.0, 2.0);
  EXPECT_GT(find_value(parsed, "ceems_compute_unit_memory_current_bytes",
                       {{"uuid", "1001"}}),
            0.0);
  EXPECT_DOUBLE_EQ(find_value(parsed, "ceems_compute_units"), 1.0);
  // Manager label present (resource-manager agnosticism).
  EXPECT_DOUBLE_EQ(
      find_value(parsed, "ceems_compute_units", {{"manager", "slurm"}}), 1.0);
}

TEST_F(ExporterTest, NodeCollectorExportsProcView) {
  auto node = make_node(node::make_intel_cpu_node, "n1");
  place_job(*node, 1, 20);
  node->step(5000);
  auto exporter = core::make_ceems_exporter(node, clock_);
  auto parsed = scrape(*exporter);
  EXPECT_DOUBLE_EQ(find_value(parsed, "node_cpus"),
                   node->spec().total_cpus());
  EXPECT_GT(find_value(parsed, "node_cpu_seconds_total", {{"mode", "idle"}}),
            0.0);
  EXPECT_NEAR(find_value(parsed, "node_memory_MemTotal_bytes"),
              static_cast<double>(node->spec().memory_bytes), 1e6);
}

TEST_F(ExporterTest, RaplCollectorHealsCounterWrap) {
  auto fs = std::make_shared<simfs::PseudoFs>();
  // Hand-written powercap tree with a small wrap range.
  auto publish = [&](int64_t uj) {
    fs->write("/sys/class/powercap/intel-rapl:0/name", "package-0\n");
    fs->write("/sys/class/powercap/intel-rapl:0/energy_uj",
              std::to_string(uj) + "\n");
    fs->write("/sys/class/powercap/intel-rapl:0/max_energy_range_uj",
              "1000000\n");
  };
  RaplCollector collector(fs);
  publish(800000);
  collector.collect(0);
  publish(900000);  // +0.1 J
  collector.collect(0);
  publish(100000);  // wrap: +0.2 J
  auto families = collector.collect(0);
  ASSERT_FALSE(families.empty());
  // Software counter: 0.8 (initial) + 0.1 + 0.2 = 1.1 J, monotone.
  EXPECT_NEAR(families[0].metrics[0].value, 1.1, 1e-6);
}

TEST_F(ExporterTest, RaplDomainsFollowVendor) {
  auto intel = make_node(node::make_intel_cpu_node, "i1");
  intel->step(1000);
  auto amd = make_node(node::make_amd_cpu_node, "a1");
  amd->step(1000);

  auto intel_parsed = scrape(*core::make_ceems_exporter(intel, clock_));
  auto amd_parsed = scrape(*core::make_ceems_exporter(amd, clock_));
  EXPECT_FALSE(std::isnan(
      find_value(intel_parsed, "ceems_rapl_dram_joules_total")));
  EXPECT_TRUE(std::isnan(
      find_value(amd_parsed, "ceems_rapl_dram_joules_total")));
  EXPECT_FALSE(std::isnan(
      find_value(amd_parsed, "ceems_rapl_package_joules_total")));
}

TEST_F(ExporterTest, IpmiCollectorParsesDcmiOutput) {
  auto node = make_node(node::make_intel_cpu_node, "n1");
  node->step(1000);
  auto exporter = core::make_ceems_exporter(node, clock_);
  auto parsed = scrape(*exporter);
  double watts = find_value(parsed, "ceems_ipmi_dcmi_current_watts");
  // Idle Intel node: IPMI reading covers idle CPUs + DRAM + platform + PSU.
  EXPECT_GT(watts, 100);
  EXPECT_LT(watts, 400);
}

TEST_F(ExporterTest, GpuCollectorsEmitDcgmMetricsAndMap) {
  auto node = make_node(node::make_v100_node, "g1");
  place_job(*node, 2001, 8, {0, 2});
  node->step(1000);
  auto exporter = core::make_ceems_exporter(node, clock_);
  auto parsed = scrape(*exporter);

  EXPECT_NEAR(find_value(parsed, "DCGM_FI_DEV_GPU_UTIL", {{"gpu", "0"}}), 70,
              1.0);
  EXPECT_DOUBLE_EQ(find_value(parsed, "DCGM_FI_DEV_GPU_UTIL", {{"gpu", "1"}}),
                   0.0);
  // Binding map: uuid 2001 bound to ordinals 0 and 2 with device uuids.
  double flag0 = find_value(parsed, "ceems_compute_unit_gpu_index_flag",
                            {{"uuid", "2001"}, {"index", "0"}});
  double flag2 = find_value(parsed, "ceems_compute_unit_gpu_index_flag",
                            {{"uuid", "2001"}, {"index", "2"}});
  EXPECT_DOUBLE_EQ(flag0, 1.0);
  EXPECT_DOUBLE_EQ(flag2, 1.0);
  for (const auto& sample : parsed.samples) {
    if (sample.labels.name() == "ceems_compute_unit_gpu_index_flag") {
      EXPECT_EQ(sample.labels.get("gpu_uuid")->substr(0, 4), "GPU-");
    }
  }
}

TEST_F(ExporterTest, AmdGpuExporterPath) {
  auto node = make_node(node::make_mi250_node, "m1");
  place_job(*node, 3001, 16, {1});
  node->step(1000);
  auto exporter = core::make_ceems_exporter(node, clock_);
  auto parsed = scrape(*exporter);
  double microwatts = find_value(parsed, "amd_gpu_power", {{"gpu_id", "1"}});
  EXPECT_GT(microwatts, 45e6);  // above idle, in µW
  EXPECT_TRUE(std::isnan(find_value(parsed, "DCGM_FI_DEV_POWER_USAGE")));
}

TEST_F(ExporterTest, EmissionsCollectorExportsPerProvider) {
  Exporter exporter({}, clock_);
  std::vector<emissions::ProviderPtr> providers = {
      std::make_shared<emissions::RteProvider>(),
      std::make_shared<emissions::OwidProvider>()};
  exporter.add_collector(
      std::make_shared<EmissionsCollector>(providers, "FR"));
  auto parsed = metrics::parse_exposition(exporter.render(clock_->now_ms()));
  double rte = find_value(parsed, "ceems_emissions_gCo2_kWh",
                          {{"provider", "rte"}});
  double owid = find_value(parsed, "ceems_emissions_gCo2_kWh",
                           {{"provider", "owid"}});
  EXPECT_GT(rte, 10);
  EXPECT_DOUBLE_EQ(owid, 56);
}

TEST_F(ExporterTest, SelfMetricsReportRealProcess) {
  auto node = make_node(node::make_intel_cpu_node, "n1");
  ExporterConfig config;
  config.enable_self_metrics = true;
  auto exporter = core::make_ceems_exporter(node, clock_, config);
  exporter->render(clock_->now_ms());
  auto parsed = scrape(*exporter);
  // The test process certainly uses more than 1 MB and less than 10 GB.
  double rss = find_value(parsed, "process_resident_memory_bytes");
  EXPECT_GT(rss, 1e6);
  EXPECT_LT(rss, 10e9);
  EXPECT_GE(find_value(parsed, "process_cpu_seconds_total"), 0.0);
  EXPECT_DOUBLE_EQ(find_value(parsed, "ceems_exporter_scrapes_total"), 1.0);
}

TEST_F(ExporterTest, HttpEndpointServesExposition) {
  auto node = make_node(node::make_intel_cpu_node, "n1");
  place_job(*node, 1, 4);
  node->step(1000);
  auto exporter = core::make_ceems_exporter(node, clock_);
  exporter->start();
  http::Client client;
  auto result = client.get(exporter->metrics_url());
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.response.status, 200);
  EXPECT_NE(result.response.headers.find("Content-Type")->second.find(
                "text/plain"),
            std::string::npos);
  EXPECT_NO_THROW(metrics::parse_exposition(result.response.body));
  exporter->stop();
}

TEST_F(ExporterTest, SeparateGpuExporterMode) {
  auto node = make_node(node::make_v100_node, "g1");
  node->step(1000);
  auto ceems = core::make_ceems_exporter(node, clock_, {},
                                         /*merge_gpu_exporter=*/false);
  auto dcgm = core::make_gpu_exporter(node, clock_);
  auto ceems_parsed = scrape(*ceems);
  auto dcgm_parsed = scrape(*dcgm);
  EXPECT_TRUE(std::isnan(find_value(ceems_parsed, "DCGM_FI_DEV_POWER_USAGE")));
  EXPECT_FALSE(std::isnan(find_value(dcgm_parsed, "DCGM_FI_DEV_POWER_USAGE")));
  // The map still lives in the CEEMS exporter (it is CEEMS' job, §II-A.d).
  place_job(*node, 5, 4, {0});
  node->step(1000);
  auto parsed = scrape(*ceems);
  EXPECT_FALSE(
      std::isnan(find_value(parsed, "ceems_compute_unit_gpu_index_flag")));
}

TEST_F(ExporterTest, NodegroupClassification) {
  EXPECT_EQ(core::nodegroup_of(node::make_intel_cpu_node("a")), "intel-cpu");
  EXPECT_EQ(core::nodegroup_of(node::make_amd_cpu_node("a")), "amd-cpu");
  EXPECT_EQ(core::nodegroup_of(node::make_v100_node("a")), "gpu-incl");
  EXPECT_EQ(core::nodegroup_of(node::make_h100_node("a")), "gpu-incl");
  EXPECT_EQ(core::nodegroup_of(node::make_a100_node("a")), "gpu-excl");
}

}  // namespace
}  // namespace ceems::exporter
