#include "emissions/electricity_maps.h"

#include <algorithm>
#include <cmath>

namespace ceems::emissions {

namespace {
// Per-zone mix parameters: baseline intensity and diurnal swing amplitude.
struct ZoneModel {
  double base;
  double swing;
  double solar_dip;  // midday renewable dip (negative contribution)
};

const std::map<std::string, ZoneModel>& zone_models() {
  static const std::map<std::string, ZoneModel> models = {
      {"FR", {45, 18, 8}},   {"DE", {340, 90, 120}}, {"GB", {210, 60, 40}},
      {"ES", {150, 40, 70}}, {"IT", {300, 70, 60}},  {"PL", {610, 60, 30}},
      {"SE", {38, 8, 4}},    {"NO", {28, 5, 2}},     {"US", {350, 70, 50}},
      {"JP", {440, 60, 40}}, {"CN", {560, 50, 30}},  {"IN", {690, 60, 50}},
  };
  return models;
}
}  // namespace

ElectricityMapsProvider::ElectricityMapsProvider(common::ClockPtr clock,
                                                 EMapsConfig config)
    : clock_(std::move(clock)), config_(config) {}

std::optional<double> ElectricityMapsProvider::model_gco2_per_kwh(
    const std::string& zone, common::TimestampMs t_ms) {
  auto it = zone_models().find(zone);
  if (it == zone_models().end()) return std::nullopt;
  const ZoneModel& model = it->second;
  double t_hours = static_cast<double>(t_ms) / common::kMillisPerHour;
  double hour_of_day = std::fmod(t_hours, 24.0);
  double evening =
      model.swing * std::exp(-std::pow(hour_of_day - 19.0, 2) / 10.0);
  double solar =
      -model.solar_dip * std::exp(-std::pow(hour_of_day - 13.0, 2) / 9.0);
  double wobble = 0.04 * model.base *
                  std::sin(t_hours * 0.7 + static_cast<double>(zone[0]));
  return std::max(10.0, model.base + evening + solar + wobble);
}

std::optional<EmissionFactor> ElectricityMapsProvider::factor(
    const std::string& zone, common::TimestampMs t_ms) {
  {
    std::lock_guard lock(mu_);
    common::TimestampMs now = clock_->now_ms();
    // Rolling-hour quota.
    if (config_.max_requests_per_hour > 0) {
      auto cutoff = now - common::kMillisPerHour;
      request_log_.erase(
          std::remove_if(request_log_.begin(), request_log_.end(),
                         [&](common::TimestampMs t) { return t < cutoff; }),
          request_log_.end());
      if (static_cast<int>(request_log_.size()) >=
          config_.max_requests_per_hour) {
        ++requests_rejected_;
        return std::nullopt;  // HTTP 429 on the real API
      }
      request_log_.push_back(now);
    }
    ++requests_made_;
  }
  auto value = model_gco2_per_kwh(zone, t_ms);
  if (!value) return std::nullopt;
  return EmissionFactor{*value, "emaps", /*realtime=*/true};
}

uint64_t ElectricityMapsProvider::requests_made() const {
  std::lock_guard lock(mu_);
  return requests_made_;
}

uint64_t ElectricityMapsProvider::requests_rejected() const {
  std::lock_guard lock(mu_);
  return requests_rejected_;
}

std::optional<EmissionFactor> CachingProvider::factor(
    const std::string& zone, common::TimestampMs t_ms) {
  std::lock_guard lock(mu_);
  auto it = cache_.find(zone);
  if (it != cache_.end() && t_ms - it->second.fetched_ms < ttl_ms_) {
    ++cache_hits_;
    return it->second.factor;
  }
  auto fresh = inner_->factor(zone, t_ms);
  if (fresh) {
    cache_[zone] = {*fresh, t_ms};
    return fresh;
  }
  // Upstream unavailable: serve stale if we have anything (better a stale
  // factor than none — matches CEEMS behaviour).
  if (it != cache_.end()) {
    ++cache_hits_;
    return it->second.factor;
  }
  return std::nullopt;
}

}  // namespace ceems::emissions
