// CeemsStack — the full Fig. 1 architecture wired over a simulated
// cluster:
//
//   exporters (one per node) ──scrape──▶ hot TSDB ──replicate──▶ long-term
//        │                                  │ recording rules        store
//        └─ /metrics over HTTP or local     ▼                         │
//           transport                  cardinality cleanup            ▼
//                                                        Thanos-style query
//   SLURM dbd ──poll──▶ API server (units DB + aggregates)   API servers ×N
//                              ▲   │ direct-DB ownership          ▲
//                              │   ▼                              │
//   Grafana-style clients ──▶ CEEMS LB (access control + balancing)
//
// Driving modes mirror ScrapeManager's: pipeline_step()/update_api() for
// deterministic simulated-time runs, start()/stop() background loops for
// wall-clock demos.
#pragma once

#include <memory>
#include <vector>

#include "apiserver/api_server.h"
#include "apiserver/updater.h"
#include "core/node_exporter_factory.h"
#include "core/rules_library.h"
#include "emissions/electricity_maps.h"
#include "emissions/owid.h"
#include "emissions/rte.h"
#include "exporter/emissions_collector.h"
#include "faults/plan.h"
#include "lb/load_balancer.h"
#include "simfs/durable_dir.h"
#include "slurm/cluster_sim.h"
#include "tsdb/http_api.h"
#include "tsdb/longterm.h"
#include "tsdb/rules.h"
#include "tsdb/scrape.h"
#include "tsdb/wal.h"

namespace ceems::core {

struct StackConfig {
  int64_t scrape_interval_ms = 30 * common::kMillisPerSecond;
  std::string rate_window = "2m";
  // Nodes get real HTTP exporters up to this count; the rest use the local
  // transport (identical parse path, no listening socket) — see E4.
  std::size_t http_exporter_count = 8;
  std::size_t query_backend_count = 2;  // Thanos-style query replicas
  lb::Strategy lb_strategy = lb::Strategy::kRoundRobin;
  std::set<std::string> admin_users = {"admin"};
  std::string country_code = "FR";
  std::string emission_provider = "rte";
  apiserver::UpdaterConfig updater;
  tsdb::LongTermConfig longterm;
  bool include_equal_split_baseline = false;
  // §IV-roadmap rules: network power attributed by eBPF-measured traffic
  // share instead of the equal split of Eq. (1)'s last term.
  bool include_ebpf_network_rules = true;
  // Operational alerting rules (exporter down, power anomaly, ...).
  bool include_alert_rules = true;
  std::string db_wal_path;  // empty = in-memory DB
  // Durability for the hot TSDB: when set, every append is WAL-logged to
  // this directory before it is applied (group commit), and the stack
  // exposes checkpoint/recovery through durable_tsdb(). Empty = the hot
  // store is purely in-memory, zero write-path overhead.
  simfs::DurableDirPtr hot_durable_dir;
  tsdb::WalOptions hot_wal;
  http::BasicAuthConfig exporter_auth;  // applied to every exporter
  // Chaos: when set, the plan's hook is installed on every fault site the
  // stack owns — scrape fetches ("scrape.target"), exporter HTTP servers
  // ("http.server"), node pseudo-filesystems ("simfs.read"), emissions
  // providers ("emissions.provider") and the LB proxy path ("lb.backend").
  // Sites the plan leaves unconfigured behave exactly as without a plan.
  std::shared_ptr<faults::FaultPlan> fault_plan;
  // Extra scrape attempts per target per sweep (see ScrapeConfig::retries).
  int scrape_retries = 1;
};

class CeemsStack {
 public:
  CeemsStack(slurm::ClusterSim& sim, StackConfig config);
  ~CeemsStack();

  // --- deterministic pipeline (simulated time) ---
  // Scrapes all targets if a scrape is due, evaluates recording rules,
  // replicates to the long-term store and compacts. Call after sim steps.
  void pipeline_step();
  // Forces a scrape+rules pass regardless of the interval.
  void pipeline_step_forced();
  // Runs the API-server updater once (resource-manager poll + aggregates).
  apiserver::UpdateStats update_api();

  // --- servers (HTTP endpoints for LB / dashboards / examples) ---
  void start_servers();
  void stop_servers();

  // --- durability (present iff config.hot_durable_dir is set) ---
  tsdb::DurableTsdb* durable_tsdb() { return durable_.get(); }
  // Result of the initial open() — snapshot/replay counters for tests.
  const tsdb::DurableTsdb::OpenResult& last_open() const { return last_open_; }
  // In-place crash recovery: clears the hot store and rebuilds it from
  // the durable directory (snapshot + WAL replay). Every component
  // holding the StorePtr — scraper, rules, long-term sync — sees the
  // recovered state.
  tsdb::DurableTsdb::OpenResult recover_hot_store();

  // --- accessors ---
  tsdb::StorePtr hot_store() { return hot_store_; }
  std::shared_ptr<tsdb::LongTermStore> longterm() { return longterm_; }
  tsdb::ScrapeManager& scraper() { return *scraper_; }
  tsdb::RuleEngine& rules() { return *rules_; }
  reldb::Database& db() { return *db_; }
  apiserver::ApiServer& api_server() { return *api_server_; }
  apiserver::Updater& updater() { return *updater_; }
  lb::LoadBalancer& load_balancer() { return *lb_; }
  const StackConfig& config() const { return config_; }
  std::string lb_url() const { return lb_->base_url(); }
  std::string api_url() const { return api_server_->base_url(); }
  std::vector<std::string> query_backend_urls() const;

 private:
  slurm::ClusterSim& sim_;
  StackConfig config_;
  common::ClockPtr clock_;

  std::vector<std::unique_ptr<exporter::Exporter>> exporters_;
  std::unique_ptr<exporter::Exporter> emissions_exporter_;

  tsdb::StorePtr hot_store_;
  std::unique_ptr<tsdb::DurableTsdb> durable_;
  tsdb::DurableTsdb::OpenResult last_open_;
  std::unique_ptr<tsdb::ScrapeManager> scraper_;
  std::unique_ptr<tsdb::RuleEngine> rules_;
  std::shared_ptr<tsdb::LongTermStore> longterm_;

  // Thanos-style query frontends over the long-term store.
  struct QueryBackend {
    std::unique_ptr<http::Server> server;
    std::unique_ptr<tsdb::PromApi> api;
  };
  std::vector<QueryBackend> query_backends_;

  std::unique_ptr<reldb::Database> db_;
  std::unique_ptr<apiserver::ApiServer> api_server_;
  std::unique_ptr<apiserver::Updater> updater_;
  std::unique_ptr<lb::LoadBalancer> lb_;

  common::TimestampMs last_scrape_ms_ = -1;
  bool servers_running_ = false;
};

}  // namespace ceems::core
