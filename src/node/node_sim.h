// NodeSim — one simulated compute node. The resource-manager simulator
// places workloads on it; step() advances the "physics":
//   * per-job cgroup accounting files (cpu.stat, memory.current, io.stat)
//   * /proc/stat and /proc/meminfo
//   * RAPL energy counters (package [+ dram on Intel]) via the power model
//   * the BMC's IPMI-DCMI power reading at its slow refresh cadence
//   * GPU telemetry for bound devices
// and simultaneously keeps a ground-truth energy ledger per job (causal
// attribution from the power model), which experiment E2 compares against
// the paper's Eq. (1) estimate.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "node/gpu.h"
#include "node/ipmi.h"
#include "node/power_model.h"
#include "node/rapl.h"
#include "simfs/cgroup.h"
#include "simfs/procfs.h"

namespace ceems::node {

// Statistical shape of a workload's resource usage over its lifetime.
struct WorkloadBehavior {
  double cpu_util_mean = 0.9;     // of allocated CPUs
  double cpu_util_jitter = 0.05;  // stddev of per-step noise
  double memory_target_fraction = 0.6;  // of the memory limit, ramped into
  double memory_ramp_seconds = 60;
  double memory_activity = 0.5;   // hotness of resident pages, 0..1
  double gpu_util_mean = 0.0;
  double gpu_util_jitter = 0.05;
  double gpu_memory_fraction = 0.5;
  double io_read_bytes_per_sec = 0;
  double io_write_bytes_per_sec = 0;
  // Network traffic (observable only via the eBPF-style accounting of
  // §IV's future work — cgroups do not expose it).
  double net_tx_bytes_per_sec = 0;
  double net_rx_bytes_per_sec = 0;
  // Microarchitectural intensity for the perf-style counters (§IV):
  // instructions per cpu-second and the FLOP fraction of them.
  double instructions_per_cpu_sec = 2.0e9;
  double flop_fraction = 0.2;
  double cache_miss_rate = 0.01;  // misses per instruction
};

// Identity + placement of a workload on this node.
struct WorkloadPlacement {
  int64_t job_id = 0;
  std::string user;
  std::string project;
  int alloc_cpus = 1;
  int64_t memory_limit_bytes = 4LL << 30;
  std::vector<int> gpu_ordinals;
};

// Snapshot the exporter's job-metadata collector consumes (stands in for
// reading /proc/<pid>/environ and the cgroup devices list on a real node).
struct WorkloadInfo {
  WorkloadPlacement placement;
  std::string cgroup_path;
};

// Per-workload counters an eBPF program attached to the cgroup would
// maintain (§IV future work: "adding network and IO stats to CEEMS
// exporter using eBPF" and "performance metrics like FLOPS, caching ...
// from Linux's perf framework"). The simulator plays the role of the
// kernel-side BPF maps / perf counters; the exporter's collectors read
// this snapshot exactly as they would read the maps.
struct EbpfWorkloadStats {
  int64_t job_id = 0;
  int64_t net_tx_bytes = 0;
  int64_t net_rx_bytes = 0;
  int64_t net_tx_packets = 0;
  int64_t net_rx_packets = 0;
  int64_t instructions = 0;
  int64_t flops = 0;
  int64_t cache_misses = 0;
};

// Cumulative ground-truth energy attribution for one job on this node.
struct JobEnergyTruth {
  double cpu_j = 0;
  double dram_j = 0;
  double gpu_j = 0;
  double static_share_j = 0;
  double total_j() const { return cpu_j + dram_j + gpu_j + static_share_j; }
};

class NodeSim {
 public:
  NodeSim(NodeSpec spec, common::ClockPtr clock, uint64_t seed);

  const NodeSpec& spec() const { return model_.spec(); }
  const std::string& hostname() const { return spec().hostname; }
  simfs::PseudoFsPtr fs() const { return fs_; }
  IpmiDcmi& ipmi() { return ipmi_; }
  const GpuBank& gpus() const { return gpus_; }

  // Places a workload; creates its cgroup. Throws if the job id is already
  // present or GPU ordinals are out of range.
  void add_workload(const WorkloadPlacement& placement,
                    const WorkloadBehavior& behavior);
  // Removes the workload and destroys its cgroup. Ground truth is kept.
  void remove_workload(int64_t job_id);
  bool has_workload(int64_t job_id) const;
  std::vector<WorkloadInfo> workloads() const;

  // Advances accounting by dt_ms at the current behaviors. Typically driven
  // by the cluster-level simulator on a SimClock.
  void step(int64_t dt_ms);

  // eBPF/perf-style per-workload counters (see EbpfWorkloadStats).
  std::vector<EbpfWorkloadStats> ebpf_stats() const;

  // Ground truth (simulation-only; invisible to the monitoring stack).
  JobEnergyTruth job_energy_truth(int64_t job_id) const;
  std::map<int64_t, JobEnergyTruth> all_energy_truth() const;
  PowerBreakdown last_power() const;
  double lifetime_node_energy_j() const;

  // Allocated CPUs currently in use (for scheduler bookkeeping).
  int allocated_cpus() const;

 private:
  struct Workload {
    WorkloadPlacement placement;
    WorkloadBehavior behavior;
    std::unique_ptr<simfs::CgroupWriter> cgroup;
    common::Rng rng;
    double age_seconds = 0;
    simfs::CgroupCpuStat cpu_stat;
    simfs::CgroupMemoryStat memory_stat;
    simfs::CgroupIoStat io_stat;
    EbpfWorkloadStats ebpf;
    double current_cpu_util = 0;
    double current_gpu_util = 0;
  };

  void publish_procfs();

  mutable std::mutex mu_;
  PowerModel model_;
  common::ClockPtr clock_;
  simfs::PseudoFsPtr fs_;
  common::Rng rng_;
  RaplBank rapl_;
  IpmiDcmi ipmi_;
  GpuBank gpus_;

  std::map<int64_t, Workload> workloads_;
  std::map<int64_t, JobEnergyTruth> truth_;
  simfs::ProcStat proc_stat_;
  PowerBreakdown last_power_;
  double lifetime_energy_j_ = 0;
};

using NodeSimPtr = std::shared_ptr<NodeSim>;

}  // namespace ceems::node
