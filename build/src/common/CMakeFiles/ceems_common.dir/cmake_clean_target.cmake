file(REMOVE_RECURSE
  "libceems_common.a"
)
