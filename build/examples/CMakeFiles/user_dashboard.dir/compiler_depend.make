# Empty compiler generated dependencies file for user_dashboard.
# This may be replaced when dependencies are built.
