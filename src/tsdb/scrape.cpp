#include "tsdb/scrape.h"

#include "common/logging.h"
#include "metrics/text_format.h"

namespace ceems::tsdb {

ScrapeManager::ScrapeManager(StorePtr store, common::ClockPtr clock,
                             ScrapeConfig config)
    : store_(std::move(store)),
      clock_(std::move(clock)),
      config_(config) {}

ScrapeManager::~ScrapeManager() { stop(); }

void ScrapeManager::add_target(ScrapeTarget target) {
  auto state = std::make_unique<TargetState>();
  http::ClientConfig client_config;
  client_config.io_timeout_ms = config_.timeout_ms;
  client_config.connect_timeout_ms = config_.timeout_ms;
  client_config.basic_auth = target.auth;
  // HTTP transport retries live in the client (no clock: deterministic
  // sweeps retry without sleeping); local-transport retries are handled in
  // scrape_target.
  client_config.retry.max_retries = config_.retries;
  client_config.retry.initial_backoff_ms = 0;
  client_config.fault_hook = config_.fault_hook;
  state->target = std::move(target);
  state->client = std::make_unique<http::Client>(client_config);
  auto& table = metrics::SymbolTable::global();
  for (const auto& [name, value] : state->target.labels.pairs()) {
    state->target_syms.emplace_back(table.intern(name), table.intern(value));
  }
  state->up_labels = state->target.labels.with_name("up");
  state->duration_labels =
      state->target.labels.with_name("scrape_duration_seconds");
  state->retries_labels =
      state->target.labels.with_name("ceems_http_retries_total");
  auto instance = state->target.labels.get("instance");
  state->fault_key = instance ? std::string(*instance) : state->target.url;
  std::lock_guard lock(targets_mu_);
  targets_.push_back(std::move(state));
}

std::size_t ScrapeManager::target_count() const {
  std::lock_guard lock(targets_mu_);
  return targets_.size();
}

ScrapeManager::TargetSweep ScrapeManager::scrape_target(
    TargetState& state, common::TimestampMs now) {
  TargetSweep sweep;
  auto started = std::chrono::steady_clock::now();

  http::FetchResult result;
  if (state.target.local_fetch) {
    // The exposition body is produced exactly once per sweep, so exporter
    // state advances identically whether or not faults/retries occur —
    // the chaos suite's differential guard depends on this. Faults and
    // retries then replay against the cached body.
    std::string body = state.target.local_fetch();
    int attempts = 1 + std::max(0, config_.retries);
    for (int attempt = 0; attempt < attempts; ++attempt) {
      if (attempt > 0) {
        ++sweep.retries;
        ++state.local_retries;
      }
      result = {};
      faults::FaultDecision fault;
      if (config_.fault_hook) {
        fault = config_.fault_hook("scrape.target", state.fault_key);
      }
      if (fault.kind == faults::FaultKind::kTruncateBody) {
        // A truncated exposition could parse cleanly up to the cut; the
        // transport layer (Content-Length check in http::Client) rejects
        // it rather than silently ingesting a partial sample set.
        result.error = "truncated body (injected)";
      } else if (fault.kind == faults::FaultKind::kSlowResponse &&
                 fault.delay_ms < config_.timeout_ms) {
        result.response.body = body;  // late but within the timeout
        result.response.status = 200;
        result.ok = !body.empty();
        if (!result.ok) result.error = "local fetch returned no data";
      } else if (fault) {
        result.error = std::string("injected fault: ") +
                       faults::fault_kind_name(fault.kind);
      } else {
        result.response.body = body;
        result.response.status = 200;
        result.ok = !result.response.body.empty();
        if (!result.ok) result.error = "local fetch returned no data";
      }
      if (result.ok) break;
    }
  } else {
    uint64_t retries_before = state.client->stats().retries;
    result = state.client->get(state.target.url);
    sweep.retries += state.client->stats().retries - retries_before;
  }
  double duration_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();

  // Every outcome — success, failure, retry — lands in the store as data:
  // up, scrape_duration_seconds and the transport retry counter.
  auto append_synthetics = [&](double up) {
    store_->append(state.up_labels, now, up);
    store_->append(state.duration_labels, now, duration_sec);
    store_->append(state.retries_labels, now,
                   static_cast<double>(state.local_retries +
                                       state.client->stats().retries));
  };

  auto mark_failed = [&] {
    append_synthetics(0);
    ++state.consecutive_failures;
    if (config_.emit_stale_markers && !state.live_series.empty()) {
      for (const auto& [fp, labels] : state.live_series) {
        store_->append(labels, now, metrics::stale_marker());
      }
      sweep.stale_markers += state.live_series.size();
      state.live_series.clear();
    }
    sweep.ingested = -1;
  };

  if (!result.ok || result.response.status != 200) {
    mark_failed();
    return sweep;
  }

  try {
    auto parsed = metrics::parse_exposition(result.response.body);
    // Batch the whole scrape through append_all: samples are grouped by
    // storage shard so each per-shard lock is taken once per sweep rather
    // than once per sample. Samples arrive interned from the parser and
    // target labels were interned at registration, so the merge below is
    // pure symbol-id work — no label strings are copied per sample.
    std::vector<metrics::Sample> batch;
    batch.reserve(parsed.samples.size());
    std::unordered_map<uint64_t, metrics::InternedLabels> seen;
    seen.reserve(parsed.samples.size());
    for (auto& sample : parsed.samples) {
      metrics::InternedLabels labels = std::move(sample.labels);
      for (const auto& [name_sym, value_sym] : state.target_syms) {
        labels = labels.with_symbols(name_sym, value_sym);
      }
      common::TimestampMs t =
          config_.honor_timestamps && sample.timestamp_ms != 0
              ? sample.timestamp_ms
              : now;
      seen.emplace(labels.fingerprint(), labels);
      batch.push_back({std::move(labels), t, sample.value});
    }
    sweep.ingested = static_cast<int64_t>(store_->append_all(batch));
    // Series exposed last scrape but gone now ended between sweeps: mark
    // them stale so they vanish from queries at this sweep, not after the
    // lookback window drains (Prometheus' disappearing-series semantics).
    if (config_.emit_stale_markers) {
      for (const auto& [fp, labels] : state.live_series) {
        if (seen.find(fp) == seen.end()) {
          store_->append(labels, now, metrics::stale_marker());
          ++sweep.stale_markers;
        }
      }
    }
    state.live_series = std::move(seen);
    state.consecutive_failures = 0;
  } catch (const metrics::ExpositionParseError& e) {
    CEEMS_LOG_WARN("scrape") << state.target.url << ": " << e.what();
    mark_failed();
    return sweep;
  }
  append_synthetics(1);
  return sweep;
}

ScrapeStats ScrapeManager::scrape_all_once() {
  std::vector<TargetState*> snapshot;
  {
    std::lock_guard lock(targets_mu_);
    snapshot.reserve(targets_.size());
    for (auto& state : targets_) snapshot.push_back(state.get());
  }
  common::TimestampMs now = clock_->now_ms();

  ScrapeStats sweep;
  std::mutex sweep_mu;
  common::ThreadPool pool(
      std::min<std::size_t>(static_cast<std::size_t>(config_.parallelism),
                            std::max<std::size_t>(1, snapshot.size())),
      "scrape");
  for (TargetState* state : snapshot) {
    pool.submit([&, state] {
      TargetSweep result = scrape_target(*state, now);
      std::lock_guard lock(sweep_mu);
      ++sweep.scrapes_total;
      sweep.retries += result.retries;
      sweep.stale_markers += result.stale_markers;
      if (result.ingested < 0) {
        ++sweep.scrapes_failed;
      } else {
        sweep.samples_ingested += static_cast<uint64_t>(result.ingested);
      }
    });
  }
  pool.wait_idle();
  pool.shutdown();

  scrapes_total_ += sweep.scrapes_total;
  scrapes_failed_ += sweep.scrapes_failed;
  samples_ingested_ += sweep.samples_ingested;
  retries_ += sweep.retries;
  stale_markers_ += sweep.stale_markers;
  return sweep;
}

void ScrapeManager::start() {
  if (running_.exchange(true)) return;
  loop_thread_ = std::thread([this] {
    while (running_.load()) {
      common::TimestampMs next = clock_->now_ms() + config_.interval_ms;
      scrape_all_once();
      if (!clock_->sleep_until(next)) return;
      if (!running_.load()) return;
    }
  });
}

void ScrapeManager::stop() {
  if (!running_.exchange(false)) return;
  clock_->interrupt();
  if (loop_thread_.joinable()) loop_thread_.join();
}

ScrapeStats ScrapeManager::stats() const {
  ScrapeStats out;
  out.scrapes_total = scrapes_total_.load();
  out.scrapes_failed = scrapes_failed_.load();
  out.samples_ingested = samples_ingested_.load();
  out.retries = retries_.load();
  out.stale_markers = stale_markers_.load();
  return out;
}

}  // namespace ceems::tsdb
