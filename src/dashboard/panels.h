// Text panel renderers — the Grafana analogue's display side. Dashboards
// are rendered as unicode tables, stat rows and ASCII sparkline charts, so
// the Fig. 2 dashboards reproduce as terminal output in the examples.
#pragma once

#include <string>
#include <vector>

#include "tsdb/storage.h"

namespace ceems::dashboard {

// | col | col |  table with a title bar.
std::string render_table(const std::string& title,
                         const std::vector<std::string>& columns,
                         const std::vector<std::vector<std::string>>& rows);

// Row of big-number stat tiles (Fig. 2a style).
struct Stat {
  std::string label;
  std::string value;
};
std::string render_stats(const std::string& title,
                         const std::vector<Stat>& stats);

// ASCII time-series chart (Fig. 2c style): one braille-ish line per series.
struct ChartSeries {
  std::string name;
  std::vector<tsdb::SamplePoint> points;
};
std::string render_chart(const std::string& title,
                         const std::vector<ChartSeries>& series, int width = 72,
                         int height = 12);

// Human units.
std::string format_bytes(double bytes);
std::string format_joules(double joules);  // J / kJ / MJ / kWh
std::string format_co2(double grams);
std::string format_duration(int64_t millis);

}  // namespace ceems::dashboard
