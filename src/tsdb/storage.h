// Label-indexed in-memory time-series storage — the Prometheus TSDB
// analogue. Series are identified by their full label set; an inverted
// index (label name/value → series ids) accelerates matcher evaluation.
// Samples per series are kept time-ordered; out-of-order appends within a
// small tolerance are rejected like Prometheus does.
//
// Concurrency: the series map is sharded by label-set fingerprint into
// kShardCount lock-striped shards, each with its own shared_mutex and
// inverted index. Appends touch exactly one shard, so ingestion from many
// scrape threads scales with cores instead of serialising on one mutex.
// Reads take per-shard shared locks in sequence; a select() that overlaps
// a concurrent write may see the new sample in one shard but not another —
// the same head-block semantics Prometheus exposes to queriers. Every
// mutation bumps the owning shard's version counter, which the PromQL
// query-result cache uses for invalidation.
//
// The same Queryable interface is implemented by the long-term store, so
// the PromQL engine runs unchanged over either — mirroring how Thanos
// serves the Prometheus remote-read API.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "metrics/labels.h"
#include "metrics/model.h"

namespace ceems::tsdb {

using common::TimestampMs;
using metrics::LabelMatcher;
using metrics::Labels;

struct SamplePoint {
  TimestampMs t = 0;
  double v = 0;
};

struct Series {
  Labels labels;
  std::vector<SamplePoint> samples;  // time-ordered
};

// Anything the PromQL engine can query.
class Queryable {
 public:
  virtual ~Queryable() = default;
  // All series matching every matcher, restricted to samples in
  // [min_t, max_t] inclusive.
  virtual std::vector<Series> select(const std::vector<LabelMatcher>& matchers,
                                     TimestampMs min_t,
                                     TimestampMs max_t) const = 0;
  // Monotone change signature for query-result caching: one counter per
  // internal shard, bumped on every mutation of that shard. A cached
  // result is valid only while the signature it was computed under is
  // unchanged. Sources that cannot version themselves return {} and are
  // never cached.
  virtual std::vector<uint64_t> version_signature() const { return {}; }
};

struct StorageStats {
  std::size_t num_series = 0;
  std::size_t num_samples = 0;
  std::size_t approx_bytes = 0;
};

class TimeSeriesStore final : public Queryable {
 public:
  // Lock stripes; power of two so shard_of() is a mask.
  static constexpr std::size_t kShardCount = 16;

  // Appends one sample; creates the series on first sight. Returns false
  // (and drops the sample) if it is older than the series' newest sample.
  bool append(const Labels& labels, TimestampMs t, double v);
  // Bulk append of scrape output, grouped by shard so each shard lock is
  // taken once per batch. Returns the number of samples accepted.
  std::size_t append_all(const std::vector<metrics::Sample>& samples);

  std::vector<Series> select(const std::vector<LabelMatcher>& matchers,
                             TimestampMs min_t,
                             TimestampMs max_t) const override;

  std::vector<uint64_t> version_signature() const override;

  // Label values seen for a name (for API /api/v1/label/<n>/values).
  std::vector<std::string> label_values(const std::string& label_name) const;

  // Drops samples older than `cutoff` from all series; removes series that
  // become empty. Returns the number of samples dropped.
  std::size_t purge_before(TimestampMs cutoff);

  // Deletes whole matching series (the API server's cardinality cleanup of
  // §II-C: metrics of jobs shorter than the cutoff are removed wholesale).
  std::size_t delete_series(const std::vector<LabelMatcher>& matchers);

  StorageStats stats() const;

  // Newest sample timestamp across all series (sync cursor for long-term
  // replication), or nullopt when empty.
  std::optional<TimestampMs> max_time() const;

  // Series with samples at/after `since` (replication pull).
  std::vector<Series> series_since(TimestampMs since) const;

  // Durability: writes a compact binary snapshot of every series (the
  // Prometheus block-on-local-disk analogue of Fig. 1). Holds every shard
  // lock for the duration, so the snapshot is a consistent cut. Returns
  // false on IO error.
  bool snapshot_to(const std::string& path) const;
  // Loads a snapshot into this (empty or compatible) store; samples merge
  // through the normal append path. Returns samples restored, or nullopt
  // when the file is missing/corrupt (a torn header aborts cleanly).
  std::optional<std::size_t> restore_from(const std::string& path);

  static std::size_t shard_of(uint64_t fingerprint) {
    return static_cast<std::size_t>(fingerprint) & (kShardCount - 1);
  }

 private:
  struct SeriesData {
    Labels labels;
    std::vector<SamplePoint> samples;
  };

  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<uint64_t, SeriesData> series;  // by fingerprint
    // Inverted index: label name -> value -> fingerprints.
    std::map<std::string, std::map<std::string, std::set<uint64_t>>> index;
    std::size_t num_samples = 0;
    // Bumped on every mutation; read lock-free by version_signature().
    std::atomic<uint64_t> version{0};
  };

  // Appends into `shard`; caller holds the shard's exclusive lock.
  bool append_locked(Shard& shard, uint64_t fingerprint, const Labels& labels,
                     TimestampMs t, double v);

  // Returns ids of series in `shard` matching all matchers. Caller holds
  // at least a shared lock on the shard.
  static std::vector<uint64_t> match_ids(
      const Shard& shard, const std::vector<LabelMatcher>& matchers);

  std::array<Shard, kShardCount> shards_;
};

using StorePtr = std::shared_ptr<TimeSeriesStore>;

}  // namespace ceems::tsdb
