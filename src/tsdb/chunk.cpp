#include "tsdb/chunk.h"

#include <atomic>
#include <cstring>

namespace ceems::tsdb {

namespace {

// Counts every GorillaChunk::decode() call process-wide. Relaxed: readers
// only ever diff the counter around a quiesced section.
std::atomic<uint64_t> g_chunk_decodes{0};

}  // namespace

uint64_t chunk_decode_count() {
  return g_chunk_decodes.load(std::memory_order_relaxed);
}

namespace {

// MSB-first bit stream writer.
class BitWriter {
 public:
  void write_bit(uint32_t bit) {
    if (used_ == 0) {
      bytes_.push_back(0);
      used_ = 8;
    }
    --used_;
    if (bit) bytes_.back() |= static_cast<uint8_t>(1u << used_);
  }

  // Writes the low `count` bits of `value`, most significant first.
  void write_bits(uint64_t value, uint32_t count) {
    for (uint32_t i = count; i > 0; --i) {
      write_bit(static_cast<uint32_t>((value >> (i - 1)) & 1u));
    }
  }

  std::vector<uint8_t> take() { return std::move(bytes_); }

  void reserve(std::size_t bytes) { bytes_.reserve(bytes); }

 private:
  std::vector<uint8_t> bytes_;
  uint32_t used_ = 0;  // free bits remaining in bytes_.back()
};

// Bounds-checked MSB-first reader; read past the end flags an error
// instead of fabricating bits, which is what turns a truncated snapshot
// into a clean decode failure.
class BitReader {
 public:
  explicit BitReader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  uint32_t read_bit() {
    if (pos_ >= bytes_.size() * 8) {
      failed_ = true;
      return 0;
    }
    uint8_t byte = bytes_[pos_ >> 3];
    uint32_t bit = (byte >> (7 - (pos_ & 7))) & 1u;
    ++pos_;
    return bit;
  }

  uint64_t read_bits(uint32_t count) {
    uint64_t value = 0;
    for (uint32_t i = 0; i < count; ++i) {
      value = (value << 1) | read_bit();
    }
    return value;
  }

  bool failed() const { return failed_; }

 private:
  const std::vector<uint8_t>& bytes_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

uint64_t zigzag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t unzigzag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

uint64_t double_bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_double(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

int clz64(uint64_t v) { return v ? __builtin_clzll(v) : 64; }
int ctz64(uint64_t v) { return v ? __builtin_ctzll(v) : 64; }

// Delta-of-delta bucket coding (Gorilla §4.1.1, widened: the final bucket
// carries a full 64-bit zigzag delta so arbitrary ms timestamps survive):
//   '0'                  dod == 0
//   '10'  + 7-bit zz     |zz| fits 7 bits
//   '110' + 14-bit zz    fits 14 bits
//   '1110'+ 20-bit zz    fits 20 bits
//   '1111'+ 64-bit zz    anything else
void write_dod(BitWriter& w, int64_t dod) {
  uint64_t zz = zigzag(dod);
  if (dod == 0) {
    w.write_bit(0);
  } else if (zz < (1u << 7)) {
    w.write_bits(0b10, 2);
    w.write_bits(zz, 7);
  } else if (zz < (1u << 14)) {
    w.write_bits(0b110, 3);
    w.write_bits(zz, 14);
  } else if (zz < (1u << 20)) {
    w.write_bits(0b1110, 4);
    w.write_bits(zz, 20);
  } else {
    w.write_bits(0b1111, 4);
    w.write_bits(zz, 64);
  }
}

int64_t read_dod(BitReader& r) {
  if (r.read_bit() == 0) return 0;
  if (r.read_bit() == 0) return unzigzag(r.read_bits(7));
  if (r.read_bit() == 0) return unzigzag(r.read_bits(14));
  if (r.read_bit() == 0) return unzigzag(r.read_bits(20));
  return unzigzag(r.read_bits(64));
}

// XOR value coding (Gorilla §4.1.2):
//   '0'            value == previous
//   '10' + bits    xor fits the previous leading/length window
//   '11' + 5-bit leading + 6-bit (length-1) + bits   new window
struct XorState {
  uint64_t prev = 0;
  int leading = -1;  // <0: no window established yet
  int length = 0;
};

void write_value(BitWriter& w, XorState& st, double v) {
  uint64_t bits = double_bits(v);
  uint64_t x = bits ^ st.prev;
  st.prev = bits;
  if (x == 0) {
    w.write_bit(0);
    return;
  }
  int lead = clz64(x);
  if (lead > 31) lead = 31;  // 5-bit field
  int trail = ctz64(x);
  int length = 64 - lead - trail;
  if (st.leading >= 0 && lead >= st.leading &&
      64 - lead - length >= 64 - st.leading - st.length) {
    // Fits the established window: reuse it.
    w.write_bits(0b10, 2);
    w.write_bits(x >> (64 - st.leading - st.length), st.length);
  } else {
    w.write_bits(0b11, 2);
    w.write_bits(static_cast<uint64_t>(lead), 5);
    w.write_bits(static_cast<uint64_t>(length - 1), 6);
    w.write_bits(x >> trail, static_cast<uint32_t>(length));
    st.leading = lead;
    st.length = length;
  }
}

bool read_value(BitReader& r, XorState& st, double& out) {
  if (r.read_bit() == 0) {
    out = bits_double(st.prev);
    return !r.failed();
  }
  uint64_t x;
  if (r.read_bit() == 0) {
    if (st.leading < 0) return false;  // window reuse before any window
    x = r.read_bits(st.length) << (64 - st.leading - st.length);
  } else {
    st.leading = static_cast<int>(r.read_bits(5));
    st.length = static_cast<int>(r.read_bits(6)) + 1;
    if (st.leading + st.length > 64) return false;
    x = r.read_bits(st.length) << (64 - st.leading - st.length);
  }
  st.prev ^= x;
  out = bits_double(st.prev);
  return !r.failed();
}

}  // namespace

std::shared_ptr<const GorillaChunk> GorillaChunk::encode(
    const SamplePoint* samples, std::size_t count) {
  if (count == 0 || count > UINT32_MAX) return nullptr;
  BitWriter w;
  // One up-front buffer sized for a typical (≈3 bytes/sample) chunk keeps
  // the seal on the ingest hot path at a couple of allocations instead of
  // a realloc cascade; poorly-compressing data grows past it normally.
  w.reserve(16 + count * 3);
  XorState xs;
  // First sample: full 64-bit timestamp + full 64-bit value bits.
  w.write_bits(static_cast<uint64_t>(samples[0].t), 64);
  w.write_bits(double_bits(samples[0].v), 64);
  xs.prev = double_bits(samples[0].v);
  int64_t prev_t = samples[0].t;
  int64_t prev_delta = 0;
  for (std::size_t i = 1; i < count; ++i) {
    int64_t delta = samples[i].t - prev_t;
    write_dod(w, delta - prev_delta);
    prev_delta = delta;
    prev_t = samples[i].t;
    write_value(w, xs, samples[i].v);
  }
  return std::shared_ptr<const GorillaChunk>(
      new GorillaChunk(w.take(), static_cast<uint32_t>(count), samples[0].t,
                       samples[count - 1].t));
}

std::optional<std::vector<SamplePoint>> GorillaChunk::decode() const {
  g_chunk_decodes.fetch_add(1, std::memory_order_relaxed);
  if (count_ == 0) return std::nullopt;
  BitReader r(bytes_);
  XorState xs;
  std::vector<SamplePoint> out;
  out.reserve(count_);
  int64_t t = static_cast<int64_t>(r.read_bits(64));
  uint64_t vbits = r.read_bits(64);
  if (r.failed()) return std::nullopt;
  xs.prev = vbits;
  out.push_back({t, bits_double(vbits)});
  int64_t prev_delta = 0;
  for (uint32_t i = 1; i < count_; ++i) {
    int64_t dod = read_dod(r);
    prev_delta += dod;
    t += prev_delta;
    double v;
    if (!read_value(r, xs, v) || r.failed()) return std::nullopt;
    out.push_back({t, v});
  }
  return out;
}

std::shared_ptr<const GorillaChunk> GorillaChunk::from_parts(
    std::vector<uint8_t> bytes, uint32_t count, TimestampMs min_t,
    TimestampMs max_t) {
  if (count == 0) return nullptr;
  auto chunk = std::shared_ptr<const GorillaChunk>(
      new GorillaChunk(std::move(bytes), count, min_t, max_t));
  // Validate eagerly: the chunk must decode to exactly the advertised
  // sample run. Catches truncated byte streams and header/body mismatches.
  auto decoded = chunk->decode();
  if (!decoded || decoded->size() != count) return nullptr;
  if (decoded->front().t != min_t || decoded->back().t != max_t)
    return nullptr;
  for (std::size_t i = 1; i < decoded->size(); ++i) {
    if ((*decoded)[i].t <= (*decoded)[i - 1].t) return nullptr;
  }
  return chunk;
}

// ---------- aggregate chunks ----------

std::shared_ptr<const AggChunk> AggChunk::encode(const AggBucket* buckets,
                                                 std::size_t count) {
  if (count == 0 || count > UINT32_MAX) return nullptr;
  BitWriter w;
  // Six value columns, each XOR coded against its own predecessor. The
  // first write in each stream XORs against 0, which round-trips through
  // the generic window coding — no special first-value case needed.
  XorState sum_s, min_s, max_s, first_s, last_s, inc_s;
  // Bucket-end timestamps: first raw, then delta-of-delta. first_t/last_t
  // offsets from the bucket end and the sample count are themselves
  // delta coded — all three are constant under a regular cadence.
  w.write_bits(static_cast<uint64_t>(buckets[0].t), 64);
  int64_t prev_t = buckets[0].t;
  int64_t prev_delta = 0;
  int64_t prev_first_off = 0, prev_last_off = 0, prev_count = 0;
  int64_t prev_marker_off = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const AggBucket& b = buckets[i];
    if (i > 0) {
      int64_t delta = b.t - prev_t;
      write_dod(w, delta - prev_delta);
      prev_delta = delta;
      prev_t = b.t;
    }
    int64_t first_off = b.t - b.first_t;
    int64_t last_off = b.t - b.last_t;
    write_dod(w, first_off - prev_first_off);
    write_dod(w, last_off - prev_last_off);
    write_dod(w, static_cast<int64_t>(b.count) - prev_count);
    prev_first_off = first_off;
    prev_last_off = last_off;
    prev_count = static_cast<int64_t>(b.count);
    // Trailing staleness marker: one flag bit, offset delta-coded when set.
    if (b.marker_t != 0) {
      w.write_bit(1);
      int64_t marker_off = b.t - b.marker_t;
      write_dod(w, marker_off - prev_marker_off);
      prev_marker_off = marker_off;
    } else {
      w.write_bit(0);
    }
    write_value(w, sum_s, b.sum);
    write_value(w, min_s, b.min);
    write_value(w, max_s, b.max);
    write_value(w, first_s, b.first_v);
    write_value(w, last_s, b.last_v);
    write_value(w, inc_s, b.inc);
  }
  return std::shared_ptr<const AggChunk>(
      new AggChunk(w.take(), static_cast<uint32_t>(count), buckets[0].t,
                   buckets[count - 1].t));
}

std::optional<std::vector<AggBucket>> AggChunk::decode() const {
  g_chunk_decodes.fetch_add(1, std::memory_order_relaxed);
  if (count_ == 0) return std::nullopt;
  BitReader r(bytes_);
  XorState sum_s, min_s, max_s, first_s, last_s, inc_s;
  std::vector<AggBucket> out;
  out.reserve(count_);
  int64_t t = static_cast<int64_t>(r.read_bits(64));
  if (r.failed()) return std::nullopt;
  int64_t prev_delta = 0;
  int64_t prev_first_off = 0, prev_last_off = 0, prev_count = 0;
  int64_t prev_marker_off = 0;
  for (uint32_t i = 0; i < count_; ++i) {
    if (i > 0) {
      prev_delta += read_dod(r);
      t += prev_delta;
    }
    AggBucket b;
    b.t = t;
    prev_first_off += read_dod(r);
    prev_last_off += read_dod(r);
    prev_count += read_dod(r);
    if (prev_count < 0 || prev_count > UINT32_MAX) return std::nullopt;
    b.first_t = t - prev_first_off;
    b.last_t = t - prev_last_off;
    b.count = static_cast<uint32_t>(prev_count);
    if (r.read_bit()) {
      prev_marker_off += read_dod(r);
      b.marker_t = t - prev_marker_off;
    }
    if (!read_value(r, sum_s, b.sum) || !read_value(r, min_s, b.min) ||
        !read_value(r, max_s, b.max) || !read_value(r, first_s, b.first_v) ||
        !read_value(r, last_s, b.last_v) || !read_value(r, inc_s, b.inc) ||
        r.failed()) {
      return std::nullopt;
    }
    out.push_back(b);
  }
  return out;
}

bool AggChunkedSeries::append(const AggBucket& bucket) {
  if (total_ != 0 && bucket.t <= last_t_) return false;
  if (head_.size() >= kAggChunkBuckets) {
    if (auto chunk = AggChunk::encode(head_.data(), head_.size())) {
      sealed_.push_back(std::move(chunk));
      head_.clear();
    }
  }
  head_.push_back(bucket);
  last_t_ = bucket.t;
  ++total_;
  return true;
}

TimestampMs AggChunkedSeries::min_time() const {
  if (!sealed_.empty()) return sealed_.front()->min_time();
  if (!head_.empty()) return head_.front().t;
  return 0;
}

std::size_t AggChunkedSeries::approx_bytes() const {
  std::size_t bytes = 0;
  for (const auto& chunk : sealed_) {
    bytes += chunk->bytes().size() + sizeof(AggChunk);
  }
  bytes += head_.capacity() * sizeof(AggBucket);
  bytes += sealed_.capacity() * sizeof(AggChunkPtr);
  return bytes;
}

std::vector<AggBucket> AggChunkedSeries::buckets_between(
    TimestampMs min_end, TimestampMs max_end) const {
  std::vector<AggBucket> out;
  if (min_end > max_end) return out;
  for (const auto& chunk : sealed_) {
    if (chunk->max_time() < min_end || chunk->min_time() > max_end) continue;
    auto decoded = chunk->decode();
    if (!decoded) continue;
    if (chunk->min_time() >= min_end && chunk->max_time() <= max_end) {
      out.insert(out.end(), decoded->begin(), decoded->end());
      continue;
    }
    for (const auto& b : *decoded) {
      if (b.t >= min_end && b.t <= max_end) out.push_back(b);
    }
  }
  for (const auto& b : head_) {
    if (b.t >= min_end && b.t <= max_end) out.push_back(b);
  }
  return out;
}

std::size_t AggChunkedSeries::drop_before(TimestampMs cutoff) {
  std::size_t dropped = 0;
  std::vector<AggChunkPtr> kept;
  kept.reserve(sealed_.size());
  for (auto& chunk : sealed_) {
    if (chunk->max_time() < cutoff) {
      dropped += chunk->count();
      continue;
    }
    if (chunk->min_time() >= cutoff) {
      kept.push_back(std::move(chunk));
      continue;
    }
    auto decoded = chunk->decode();
    if (!decoded) {
      kept.push_back(std::move(chunk));
      continue;
    }
    std::vector<AggBucket> survivors;
    for (const auto& b : *decoded) {
      if (b.t >= cutoff) survivors.push_back(b);
    }
    dropped += decoded->size() - survivors.size();
    if (!survivors.empty()) {
      if (auto re = AggChunk::encode(survivors.data(), survivors.size()))
        kept.push_back(std::move(re));
    }
  }
  sealed_ = std::move(kept);
  std::size_t head_kept = 0;
  for (const auto& b : head_) {
    if (b.t >= cutoff) head_[head_kept++] = b;
  }
  dropped += head_.size() - head_kept;
  head_.resize(head_kept);
  total_ -= dropped;
  if (total_ == 0) last_t_ = 0;
  return dropped;
}

std::size_t SeriesView::sample_count() const {
  std::size_t n = 0;
  for (const auto& slice : slices) n += slice.count();
  return n;
}

std::vector<SamplePoint> SeriesView::samples() const {
  std::vector<SamplePoint> out;
  out.reserve(sample_count());
  for (const auto& slice : slices) {
    if (slice.chunk) {
      auto decoded = slice.chunk->decode();
      // Sealed chunks were validated at encode/restore time; decode cannot
      // fail here, but stay defensive rather than crash on a logic bug.
      if (decoded) out.insert(out.end(), decoded->begin(), decoded->end());
    } else {
      out.insert(out.end(), slice.points.begin(), slice.points.end());
    }
  }
  return out;
}

const std::vector<SamplePoint>& DecodedChunkCache::decode(
    const ChunkPtr& chunk) {
  auto it = decoded_.find(chunk.get());
  if (it != decoded_.end()) return it->second;
  auto samples = chunk->decode();
  // Sealed chunks are validated at encode/restore time; a failed decode
  // here is a logic bug — degrade to an empty run rather than crash.
  return decoded_
      .emplace(chunk.get(),
               samples ? std::move(*samples) : std::vector<SamplePoint>{})
      .first->second;
}

void DecodedChunkCache::adopt(const ChunkPtr& chunk,
                              std::vector<SamplePoint> samples) {
  decoded_.emplace(chunk.get(), std::move(samples));
}

std::vector<SamplePoint> SeriesView::samples(DecodedChunkCache& cache) const {
  std::vector<SamplePoint> out;
  out.reserve(sample_count());
  for (const auto& slice : slices) {
    if (slice.chunk) {
      const auto& decoded = cache.decode(slice.chunk);
      out.insert(out.end(), decoded.begin(), decoded.end());
    } else {
      out.insert(out.end(), slice.points.begin(), slice.points.end());
    }
  }
  return out;
}

std::optional<SamplePoint> SeriesView::last() const {
  for (auto it = slices.rbegin(); it != slices.rend(); ++it) {
    if (it->chunk) {
      auto decoded = it->chunk->decode();
      if (decoded && !decoded->empty()) return decoded->back();
    } else if (!it->points.empty()) {
      return it->points.back();
    }
  }
  return std::nullopt;
}

SeriesView SeriesView::owned(metrics::Labels labels,
                             std::vector<SamplePoint> samples) {
  SeriesView view{std::move(labels), {}};
  if (!samples.empty())
    view.slices.push_back(ChunkSlice{nullptr, std::move(samples)});
  return view;
}

AppendResult ChunkedSeries::append(TimestampMs t, double v) {
  if (total_ != 0) {
    if (t < last_t_) return AppendResult::kRejected;
    if (t == last_t_) {
      if (!head_.empty()) {
        // Common case: the newest sample is in the head (appends seal
        // only when a strictly newer sample arrives).
        head_.back().v = v;
        return AppendResult::kOverwrote;
      }
      // After adopt_sealed() the newest sample lives in the last sealed
      // chunk instead. Last-write-wins still holds: rewrite that chunk's
      // final sample and re-seal.
      if (sealed_.empty()) return AppendResult::kRejected;
      auto decoded = sealed_.back()->decode();
      if (!decoded || decoded->empty()) return AppendResult::kRejected;
      decoded->back().v = v;
      auto resealed = GorillaChunk::encode(decoded->data(), decoded->size());
      if (!resealed) return AppendResult::kRejected;
      sealed_.back() = std::move(resealed);
      return AppendResult::kOverwrote;
    }
  }
  if (head_.size() >= kChunkSamples) {
    if (auto chunk = GorillaChunk::encode(head_.data(), head_.size())) {
      sealed_.push_back(std::move(chunk));
      head_.clear();
    }
  }
  head_.push_back({t, v});
  last_t_ = t;
  ++total_;
  return AppendResult::kAppended;
}

TimestampMs ChunkedSeries::min_time() const {
  if (!sealed_.empty()) return sealed_.front()->min_time();
  if (!head_.empty()) return head_.front().t;
  return 0;
}

std::size_t ChunkedSeries::approx_bytes() const {
  std::size_t bytes = 0;
  for (const auto& chunk : sealed_) {
    bytes += chunk->bytes().size() + sizeof(GorillaChunk);
  }
  bytes += head_.capacity() * sizeof(SamplePoint);
  bytes += sealed_.capacity() * sizeof(ChunkPtr);
  return bytes;
}

std::vector<ChunkSlice> ChunkedSeries::slices_between(TimestampMs min_t,
                                                      TimestampMs max_t) const {
  std::vector<ChunkSlice> out;
  if (min_t > max_t) return out;
  for (const auto& chunk : sealed_) {
    if (chunk->max_time() < min_t || chunk->min_time() > max_t) continue;
    if (chunk->min_time() >= min_t && chunk->max_time() <= max_t) {
      out.push_back(ChunkSlice{chunk, {}});
      continue;
    }
    // Boundary chunk: decode and keep only in-range points, so the
    // caller's "view has zero samples" check means the same thing it
    // meant with raw vectors.
    auto decoded = chunk->decode();
    if (!decoded) continue;
    std::vector<SamplePoint> points;
    for (const auto& sp : *decoded) {
      if (sp.t >= min_t && sp.t <= max_t) points.push_back(sp);
    }
    if (!points.empty()) out.push_back(ChunkSlice{nullptr, std::move(points)});
  }
  std::vector<SamplePoint> head_points;
  for (const auto& sp : head_) {
    if (sp.t >= min_t && sp.t <= max_t) head_points.push_back(sp);
  }
  if (!head_points.empty())
    out.push_back(ChunkSlice{nullptr, std::move(head_points)});
  return out;
}

std::vector<SamplePoint> ChunkedSeries::samples_between(
    TimestampMs min_t, TimestampMs max_t) const {
  std::vector<SamplePoint> out;
  for (auto& slice : slices_between(min_t, max_t)) {
    if (slice.chunk) {
      auto decoded = slice.chunk->decode();
      if (decoded) out.insert(out.end(), decoded->begin(), decoded->end());
    } else {
      out.insert(out.end(), slice.points.begin(), slice.points.end());
    }
  }
  return out;
}

std::size_t ChunkedSeries::drop_before(TimestampMs cutoff) {
  std::size_t dropped = 0;
  std::vector<ChunkPtr> kept;
  kept.reserve(sealed_.size());
  for (auto& chunk : sealed_) {
    if (chunk->max_time() < cutoff) {
      dropped += chunk->count();
      continue;
    }
    if (chunk->min_time() >= cutoff) {
      kept.push_back(std::move(chunk));
      continue;
    }
    // Straddling chunk: re-encode only the surviving suffix.
    auto decoded = chunk->decode();
    if (!decoded) {
      kept.push_back(std::move(chunk));
      continue;
    }
    std::vector<SamplePoint> survivors;
    for (const auto& sp : *decoded) {
      if (sp.t >= cutoff) survivors.push_back(sp);
    }
    dropped += decoded->size() - survivors.size();
    if (!survivors.empty()) {
      if (auto re = GorillaChunk::encode(survivors.data(), survivors.size()))
        kept.push_back(std::move(re));
    }
  }
  sealed_ = std::move(kept);
  std::size_t head_kept = 0;
  for (const auto& sp : head_) {
    if (sp.t >= cutoff) head_[head_kept++] = sp;
  }
  dropped += head_.size() - head_kept;
  head_.resize(head_kept);
  total_ -= dropped;
  if (total_ == 0) last_t_ = 0;
  return dropped;
}

bool ChunkedSeries::adopt_sealed(ChunkPtr chunk) {
  if (!chunk) return false;
  if (total_ != 0 && chunk->min_time() <= last_t_) return false;
  if (!head_.empty()) {
    // Keep chunk order time-sorted: seal the current head first.
    if (auto sealed = GorillaChunk::encode(head_.data(), head_.size())) {
      sealed_.push_back(std::move(sealed));
      head_.clear();
    } else {
      return false;
    }
  }
  total_ += chunk->count();
  last_t_ = chunk->max_time();
  sealed_.push_back(std::move(chunk));
  return true;
}

}  // namespace ceems::tsdb
