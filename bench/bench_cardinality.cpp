// E10 — cardinality control (§II-C: "It is possible to configure the CEEMS
// API server to clean up TSDB by removing metrics of workloads that did
// not last more than the configured cutoff time. This helps in reducing
// the cardinality of metrics.").
//
// Runs the identical workload twice — cleanup off vs cleanup on (10-minute
// cutoff) — and reports hot-TSDB series/sample counts plus the query-time
// benefit on a matcher that must consider every series.
//
// Expected shape: with a heavy short-job mix, cleanup removes a large
// fraction of per-job series (roughly the short-job share of all jobs),
// and full-scan-ish queries get proportionally cheaper.
#include <benchmark/benchmark.h>

#include "common/logging.h"

#include <cstdio>

#include "core/stack.h"

using namespace ceems;

namespace {

struct Outcome {
  tsdb::StorageStats stats;
  std::size_t jobs_total = 0;
  std::size_t jobs_short = 0;
};

Outcome run_world(int64_t cutoff_ms, uint64_t seed,
                  std::unique_ptr<core::CeemsStack>* keep_stack = nullptr,
                  std::unique_ptr<slurm::ClusterSim>* keep_sim = nullptr,
                  std::shared_ptr<common::SimClock>* keep_clock = nullptr) {
  auto clock = common::make_sim_clock(1700000000000LL);
  slurm::JeanZayScale scale = slurm::JeanZayScale{}.scaled(0.005);
  auto gen = slurm::make_jean_zay_workload_config(scale, 12000);
  gen.seed = seed;
  auto sim = std::make_unique<slurm::ClusterSim>(
      clock, slurm::make_jean_zay_cluster(clock, scale, seed), gen, seed);
  core::StackConfig config;
  config.updater.small_unit_cutoff_ms = cutoff_ms;
  auto stack = std::make_unique<core::CeemsStack>(*sim, config);

  common::TimestampMs next = clock->now_ms();
  sim->run_for(3 * common::kMillisPerHour, 30000,
               [&](common::TimestampMs now) {
                 stack->pipeline_step();
                 if (now >= next) {
                   stack->update_api();
                   next = now + 60000;
                 }
               });
  stack->update_api();

  Outcome outcome;
  outcome.stats = stack->hot_store()->stats();
  for (const auto& job : sim->dbd().all_jobs()) {
    if (job.start_time_ms == 0 || !job.finished()) continue;
    ++outcome.jobs_total;
    if (job.end_time_ms - job.start_time_ms < 10 * common::kMillisPerMinute) {
      ++outcome.jobs_short;
    }
  }
  if (keep_stack) *keep_stack = std::move(stack);
  if (keep_sim) *keep_sim = std::move(sim);
  if (keep_clock) *keep_clock = clock;
  return outcome;
}

void BM_regex_query_no_cleanup(benchmark::State& state) {
  std::unique_ptr<core::CeemsStack> stack;
  std::unique_ptr<slurm::ClusterSim> sim;
  std::shared_ptr<common::SimClock> clock;
  run_world(0, 42, &stack, &sim, &clock);
  for (auto _ : state) {
    // Regex matchers bypass the equality index: cost scales with series
    // cardinality, the situation the paper's cleanup targets.
    auto result = stack->hot_store()->select(
        {{"uuid", metrics::LabelMatcher::Op::kRegexMatch, "1\\d\\d\\d"}}, 0,
        clock->now_ms());
    benchmark::DoNotOptimize(result);
  }
  state.counters["series"] =
      static_cast<double>(stack->hot_store()->stats().num_series);
}
BENCHMARK(BM_regex_query_no_cleanup)->Unit(benchmark::kMillisecond)->Iterations(5);

void BM_regex_query_with_cleanup(benchmark::State& state) {
  std::unique_ptr<core::CeemsStack> stack;
  std::unique_ptr<slurm::ClusterSim> sim;
  std::shared_ptr<common::SimClock> clock;
  run_world(10 * common::kMillisPerMinute, 42, &stack, &sim, &clock);
  for (auto _ : state) {
    auto result = stack->hot_store()->select(
        {{"uuid", metrics::LabelMatcher::Op::kRegexMatch, "1\\d\\d\\d"}}, 0,
        clock->now_ms());
    benchmark::DoNotOptimize(result);
  }
  state.counters["series"] =
      static_cast<double>(stack->hot_store()->stats().num_series);
}
BENCHMARK(BM_regex_query_with_cleanup)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

}  // namespace

int main(int argc, char** argv) {
  common::set_log_level(common::LogLevel::kError);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\nE10 — identical 3h workload (12k jobs/day nominal), hot "
              "TSDB after run\n");
  Outcome off = run_world(0, 42);
  Outcome on = run_world(10 * common::kMillisPerMinute, 42);
  std::printf("%-22s %10s %12s %10s\n", "cleanup", "series", "samples",
              "MiB");
  std::printf("%-22s %10zu %12zu %10.1f\n", "off", off.stats.num_series,
              off.stats.num_samples, off.stats.approx_bytes / 1048576.0);
  std::printf("%-22s %10zu %12zu %10.1f\n", "on (10m cutoff)",
              on.stats.num_series, on.stats.num_samples,
              on.stats.approx_bytes / 1048576.0);
  std::printf("\nshort jobs (<10m): %zu of %zu finished (%.0f%%); cleanup "
              "cut series by %.0f%%\n",
              off.jobs_short, off.jobs_total,
              100.0 * static_cast<double>(off.jobs_short) /
                  std::max<std::size_t>(1, off.jobs_total),
              100.0 * (1.0 - static_cast<double>(on.stats.num_series) /
                                 static_cast<double>(off.stats.num_series)));
  return 0;
}
