// Synthetic workload generator. Jean-Zay production traces are not
// redistributable, so the generator produces a statistically similar mix
// (documented substitution, DESIGN.md §1): Poisson arrivals, lognormal-ish
// durations, a power-law user activity distribution, and per-partition job
// classes (small/large CPU jobs, GPU training/inference jobs, IO-heavy
// jobs). The paper's headline churn — "daily job churn rate of around
// [thousands]" on 1400 nodes — is reproduced by setting jobs_per_day.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "slurm/job.h"

namespace ceems::slurm {

struct PartitionMix {
  std::string partition;
  double weight = 1.0;  // share of arrivals routed here
  bool has_gpus = false;
  int max_nodes_per_job = 4;
  int node_cpus = 40;        // CPUs per node in this partition
  int node_gpus = 0;
  int64_t node_memory_bytes = 192LL << 30;
};

struct WorkloadGenConfig {
  int num_users = 150;
  int num_projects = 30;
  double jobs_per_day = 3000;  // cluster-wide arrival rate
  double user_zipf_exponent = 1.1;
  uint64_t seed = 42;
  std::vector<PartitionMix> partitions;
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadGenConfig config);

  // Jobs arriving in the (dt_ms)-long step ending now. Poisson thinned.
  std::vector<JobRequest> arrivals(int64_t dt_ms);

  // One job drawn from the mix (deterministic stream).
  JobRequest sample();

  const WorkloadGenConfig& config() const { return config_; }

  // Retunes the arrival rate mid-run (soak churn storms). Only the
  // Poisson thinning changes; the per-job sampling streams are untouched,
  // so runs stay deterministic across rate changes made at deterministic
  // times.
  void set_jobs_per_day(double jobs_per_day) {
    config_.jobs_per_day = jobs_per_day;
  }
  std::string user_name(int index) const;
  std::string project_of(const std::string& user) const;

 private:
  int sample_user_index();

  WorkloadGenConfig config_;
  common::Rng rng_;
  std::vector<double> user_weights_cdf_;
  double total_partition_weight_ = 0;
};

}  // namespace ceems::slurm
