#include "common/strutil.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace ceems::common {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_fields(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    std::size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  return text;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::optional<int64_t> parse_int64(std::string_view text) {
  text = trim(text);
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   value);
  if (ec != std::errc() || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  if (text == "+Inf" || text == "Inf" || text == "inf")
    return std::numeric_limits<double>::infinity();
  if (text == "-Inf" || text == "-inf")
    return -std::numeric_limits<double>::infinity();
  if (text == "NaN" || text == "nan")
    return std::numeric_limits<double>::quiet_NaN();
  // std::from_chars for double is available in libstdc++ 11+.
  double value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   value);
  if (ec != std::errc() || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::string format_double(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  // %.17g round-trips but is ugly; try shorter precision first.
  char buf[64];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    double parsed = 0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == value) break;
  }
  return buf;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::optional<int64_t> parse_duration_ms(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  // Accept a sequence like "1h30m"; each component is <number><unit>.
  int64_t total = 0;
  std::size_t i = 0;
  bool saw_component = false;
  while (i < text.size()) {
    std::size_t num_start = i;
    while (i < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[i])) ||
            text[i] == '.'))
      ++i;
    if (i == num_start) return std::nullopt;
    auto value = parse_double(text.substr(num_start, i - num_start));
    if (!value) return std::nullopt;
    std::size_t unit_start = i;
    while (i < text.size() &&
           std::isalpha(static_cast<unsigned char>(text[i])))
      ++i;
    std::string_view unit = text.substr(unit_start, i - unit_start);
    double scale = 0;
    if (unit == "ms") scale = 1;
    else if (unit == "s") scale = 1000;
    else if (unit == "m") scale = 60 * 1000;
    else if (unit == "h") scale = 3600 * 1000;
    else if (unit == "d") scale = 24 * 3600 * 1000;
    else if (unit == "w") scale = 7 * 24 * 3600 * 1000;
    else if (unit == "y") scale = 365.0 * 24 * 3600 * 1000;
    else return std::nullopt;
    total += static_cast<int64_t>(*value * scale);
    saw_component = true;
  }
  if (!saw_component) return std::nullopt;
  return total;
}

std::string format_duration_ms(int64_t millis) {
  if (millis % (24 * 3600 * 1000) == 0 && millis != 0)
    return std::to_string(millis / (24 * 3600 * 1000)) + "d";
  if (millis % (3600 * 1000) == 0 && millis != 0)
    return std::to_string(millis / (3600 * 1000)) + "h";
  if (millis % (60 * 1000) == 0 && millis != 0)
    return std::to_string(millis / (60 * 1000)) + "m";
  if (millis % 1000 == 0) return std::to_string(millis / 1000) + "s";
  return std::to_string(millis) + "ms";
}

}  // namespace ceems::common
