// CEEMS load balancer (§II-B.c): the missing access-control element of the
// Prometheus/Grafana pair. A reverse proxy in front of one or more
// Prometheus/Thanos backends that
//   1. identifies the requesting user from the X-Grafana-User header,
//   2. introspects the PromQL query for compute-unit uuids,
//   3. checks ownership — directly against the CEEMS DB when the DB is
//      reachable, otherwise via an HTTP round trip to the API server's
//      verify endpoint (both paths of §II-C),
//   4. on success, forwards to a backend picked by the configured strategy
//      (round-robin or least-connection) and relays the response.
//
// Backend health is tracked with a per-backend circuit breaker
// (closed → open → half-open, DESIGN.md "Failure model"): transport
// failures trip the circuit after `circuit_failure_threshold` consecutive
// failures, an open circuit is skipped for `failover_cooldown_ms`, then a
// single half-open probe decides between closing and re-opening. When every
// circuit is open the LB answers 503 immediately — it never routes to a
// backend it knows is down, and never hangs.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "apiserver/api_server.h"
#include "faults/fault.h"
#include "http/client.h"
#include "http/server.h"
#include "lb/query_introspect.h"

namespace ceems::lb {

enum class Strategy { kRoundRobin, kLeastConnection };

enum class CircuitState { kClosed, kOpen, kHalfOpen };
const char* circuit_state_name(CircuitState state);

struct LbConfig {
  http::ServerConfig http;
  Strategy strategy = Strategy::kRoundRobin;
  std::set<std::string> admin_users;
  // API-server verify endpoint, used when no direct DB handle is set.
  std::string api_server_url;
  // Circuit breaker: after `circuit_failure_threshold` consecutive
  // transport failures a backend's circuit opens for
  // `failover_cooldown_ms`, then one half-open probe is allowed. Setting
  // either to 0 disables the breaker (every rotation probes every
  // backend).
  int64_t failover_cooldown_ms = 2000;
  int circuit_failure_threshold = 3;
  // Chaos injection on the proxy path (site "lb.backend", key = backend
  // base url); any fault is a transport failure. Empty in production.
  faults::FaultHook fault_hook;
};

struct BackendStats {
  std::string base_url;
  uint64_t requests = 0;
  uint64_t failures = 0;
  int inflight = 0;
  CircuitState circuit = CircuitState::kClosed;
  uint64_t circuit_opens = 0;
};

class LoadBalancer {
 public:
  LoadBalancer(LbConfig config, std::vector<std::string> backend_urls,
               common::ClockPtr clock);
  ~LoadBalancer();

  // Direct-DB ownership path (preferred per §II-C). When unset, the LB
  // calls the API server over HTTP.
  void set_api_server(const apiserver::ApiServer* api_server) {
    api_server_ = api_server;
  }

  void start();
  void stop();
  uint16_t port() const { return server_.port(); }
  std::string base_url() const { return server_.base_url(); }

  std::vector<BackendStats> backend_stats() const;
  uint64_t denied_total() const { return denied_.load(); }

  // Prometheus exposition of the LB's own health: per-backend circuit
  // state/opens/requests/failures plus denied_total. Served at /metrics.
  std::string render_metrics() const;

  // Exposed for unit tests without sockets.
  http::Response handle_proxy(const http::Request& request);

 private:
  struct Backend {
    std::string base_url;
    std::atomic<int> inflight{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> failures{0};
    // Circuit breaker state, guarded by mu.
    mutable std::mutex mu;
    CircuitState state = CircuitState::kClosed;
    int consecutive_failures = 0;
    common::TimestampMs open_until_ms = 0;
    uint64_t opens_total = 0;
    // At most one probe request flows through a half-open circuit.
    bool probe_inflight = false;
  };

  bool circuit_enabled() const {
    return config_.failover_cooldown_ms > 0 &&
           config_.circuit_failure_threshold > 0;
  }
  // True when the breaker would let a request through right now (const
  // peek used by pick_backend; the actual admission is try_acquire).
  bool selectable(const Backend& backend, common::TimestampMs now) const;
  // Admits one request: closed passes, an expired open circuit moves to
  // half-open and admits the probe, half-open admits only the first probe.
  bool try_acquire(Backend& backend, common::TimestampMs now);
  void on_result(Backend& backend, bool ok, common::TimestampMs now);

  bool check_ownership(const std::string& user,
                       const std::set<std::string>& uuids);
  Backend* pick_backend(common::TimestampMs now);

  LbConfig config_;
  common::ClockPtr clock_;
  http::Server server_;
  std::vector<std::unique_ptr<Backend>> backends_;
  std::atomic<std::size_t> round_robin_next_{0};
  std::atomic<uint64_t> denied_{0};
  const apiserver::ApiServer* api_server_ = nullptr;
};

}  // namespace ceems::lb
