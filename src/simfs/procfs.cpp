#include "simfs/procfs.h"

#include "common/strutil.h"

namespace ceems::simfs {

namespace {

std::string render_cpu_line(const std::string& name, const ProcCpuLine& cpu) {
  return name + " " + std::to_string(cpu.user) + " " +
         std::to_string(cpu.nice) + " " + std::to_string(cpu.system) + " " +
         std::to_string(cpu.idle) + " " + std::to_string(cpu.iowait) + " " +
         std::to_string(cpu.irq) + " " + std::to_string(cpu.softirq) + " 0 0 0\n";
}

std::optional<ProcCpuLine> parse_cpu_line(const std::vector<std::string>& f) {
  if (f.size() < 8) return std::nullopt;
  ProcCpuLine cpu;
  auto get = [&](std::size_t i) {
    return common::parse_int64(f[i]).value_or(0);
  };
  cpu.user = get(1);
  cpu.nice = get(2);
  cpu.system = get(3);
  cpu.idle = get(4);
  cpu.iowait = get(5);
  cpu.irq = get(6);
  cpu.softirq = get(7);
  return cpu;
}

}  // namespace

void write_proc_stat(PseudoFs& fs, const ProcStat& stat) {
  std::string content = render_cpu_line("cpu", stat.aggregate);
  for (std::size_t i = 0; i < stat.cpus.size(); ++i) {
    content += render_cpu_line("cpu" + std::to_string(i), stat.cpus[i]);
  }
  content += "btime " + std::to_string(stat.boot_time_sec) + "\n";
  fs.write("/proc/stat", std::move(content));
}

void write_meminfo(PseudoFs& fs, const MemInfo& info) {
  std::string content =
      "MemTotal:       " + std::to_string(info.mem_total_kb) + " kB\n" +
      "MemFree:        " + std::to_string(info.mem_free_kb) + " kB\n" +
      "MemAvailable:   " + std::to_string(info.mem_available_kb) + " kB\n" +
      "Buffers:        " + std::to_string(info.buffers_kb) + " kB\n" +
      "Cached:         " + std::to_string(info.cached_kb) + " kB\n";
  fs.write("/proc/meminfo", std::move(content));
}

std::optional<ProcStat> read_proc_stat(const Fs& fs) {
  auto content = fs.read("/proc/stat");
  if (!content) return std::nullopt;
  ProcStat stat;
  bool saw_aggregate = false;
  for (const auto& line : common::split(*content, '\n')) {
    auto fields = common::split_fields(line);
    if (fields.empty()) continue;
    if (fields[0] == "cpu") {
      if (auto cpu = parse_cpu_line(fields)) {
        stat.aggregate = *cpu;
        saw_aggregate = true;
      }
    } else if (common::starts_with(fields[0], "cpu")) {
      if (auto cpu = parse_cpu_line(fields)) stat.cpus.push_back(*cpu);
    } else if (fields[0] == "btime" && fields.size() >= 2) {
      stat.boot_time_sec = common::parse_int64(fields[1]).value_or(0);
    }
  }
  if (!saw_aggregate) return std::nullopt;
  return stat;
}

std::optional<MemInfo> read_meminfo(const Fs& fs) {
  auto content = fs.read("/proc/meminfo");
  if (!content) return std::nullopt;
  MemInfo info;
  for (const auto& line : common::split(*content, '\n')) {
    auto fields = common::split_fields(line);
    if (fields.size() < 2) continue;
    int64_t value = common::parse_int64(fields[1]).value_or(0);
    if (fields[0] == "MemTotal:") info.mem_total_kb = value;
    else if (fields[0] == "MemFree:") info.mem_free_kb = value;
    else if (fields[0] == "MemAvailable:") info.mem_available_kb = value;
    else if (fields[0] == "Buffers:") info.buffers_kb = value;
    else if (fields[0] == "Cached:") info.cached_kb = value;
  }
  if (info.mem_total_kb == 0) return std::nullopt;
  return info;
}

}  // namespace ceems::simfs
