// Grafana analogue, client side: a data-source client that queries the
// Prometheus API (through the CEEMS LB) and the CEEMS API server, always
// forwarding the signed-in user via the X-Grafana-User header — the exact
// convention the LB's access control depends on (§II-B.c,
// send_user_header in Grafana's config).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "http/client.h"
#include "tsdb/storage.h"

namespace ceems::dashboard {

struct QueryResult {
  bool ok = false;
  int http_status = 0;
  std::string error;
  // Instant queries: one (labels-as-json, value) pair per series.
  std::vector<std::pair<common::Json, double>> instant;
  // Range queries: series of (t_ms, value) points.
  struct RangeSeries {
    common::Json labels;
    std::vector<tsdb::SamplePoint> points;
  };
  std::vector<RangeSeries> range;
};

class GrafanaClient {
 public:
  GrafanaClient(std::string prometheus_url, std::string api_server_url,
                std::string user)
      : prometheus_url_(std::move(prometheus_url)),
        api_server_url_(std::move(api_server_url)),
        user_(std::move(user)) {}

  const std::string& user() const { return user_; }

  QueryResult instant_query(const std::string& query,
                            common::TimestampMs t_ms);
  QueryResult range_query(const std::string& query,
                          common::TimestampMs start_ms,
                          common::TimestampMs end_ms, int64_t step_ms);

  // GET against the CEEMS API server data source; returns parsed JSON body.
  std::optional<common::Json> api_get(const std::string& path_and_query);

 private:
  http::HeaderMap auth_headers() const;

  std::string prometheus_url_;
  std::string api_server_url_;
  std::string user_;
  http::Client client_;
};

}  // namespace ceems::dashboard
