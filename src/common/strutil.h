// Small string helpers shared across modules: splitting, trimming, numeric
// parsing with explicit failure, and printf-style formatting.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ceems::common {

std::vector<std::string> split(std::string_view text, char sep);
// Like split, but drops empty fields (useful for whitespace-separated
// pseudo-file content).
std::vector<std::string> split_fields(std::string_view text);
std::string_view trim(std::string_view text);
std::string to_lower(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

std::optional<int64_t> parse_int64(std::string_view text);
std::optional<double> parse_double(std::string_view text);

// Formats a double the way the Prometheus text format expects: shortest
// round-trippable representation, "+Inf"/"-Inf"/"NaN" specials.
std::string format_double(double value);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

// Parses a duration string such as "30s", "5m", "1h", "7d", "250ms" into
// milliseconds. Returns nullopt on bad syntax.
std::optional<int64_t> parse_duration_ms(std::string_view text);
std::string format_duration_ms(int64_t millis);

}  // namespace ceems::common
