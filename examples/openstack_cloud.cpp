// Resource-manager agnosticism (the paper's title claim, §IV future work):
// the same API server + unified units schema serving BOTH a SLURM cluster
// and an Openstack cloud, with per-manager rows distinguishable only by
// the resource_manager column.
//
// The Openstack side is fed through the OpenstackAdapter (Nova-style VM
// lifecycle events); the SLURM side runs the usual simulated batch cluster.
#include <cstdio>

#include "common/logging.h"
#include "core/stack.h"

using namespace ceems;

int main() {
  common::set_log_level(common::LogLevel::kError);
  auto clock = common::make_sim_clock(1700000000000LL);

  // --- SLURM side: a small batch cluster under full monitoring ---
  slurm::JeanZayScale scale = slurm::JeanZayScale{}.scaled(0.004);
  auto gen = slurm::make_jean_zay_workload_config(scale, 3000);
  slurm::ClusterSim sim(clock, slurm::make_jean_zay_cluster(clock, scale, 9),
                        gen, 9);
  core::CeemsStack stack(sim, {});

  // --- Openstack side: VM lifecycle events into the same DB ---
  auto nova = std::make_shared<apiserver::OpenstackAdapter>("cloud-west");
  apiserver::UpdaterConfig updater_config;
  apiserver::Updater cloud_updater(
      stack.db(), stack.longterm(), nullptr,
      {std::static_pointer_cast<apiserver::ResourceManagerAdapter>(nova)},
      clock, updater_config);

  common::TimestampMs t0 = clock->now_ms();
  nova->report_vm("vm-web-1", "carol", "cloudprj", 8, 16LL << 30, "ACTIVE",
                  t0, t0 + 60000, 0);
  nova->report_vm("vm-db-1", "carol", "cloudprj", 16, 64LL << 30, "ACTIVE",
                  t0, t0 + 120000, 0);
  nova->report_vm("vm-batch-1", "dave", "cloudprj", 32, 128LL << 30,
                  "SHUTOFF", t0, t0 + 60000, t0 + 30 * 60000);

  common::TimestampMs next_update = t0;
  sim.run_for(40 * common::kMillisPerMinute, 15000,
              [&](common::TimestampMs now) {
                stack.pipeline_step();
                if (now >= next_update) {
                  stack.update_api();       // SLURM adapter
                  cloud_updater.update_once();  // Openstack adapter
                  next_update = now + 60000;
                }
              });
  stack.update_api();
  cloud_updater.update_once();

  // --- one schema, two managers ---
  reldb::Query query;
  query.group_by = {"resource_manager"};
  query.aggregates = {{reldb::AggFn::kCount, "", "units"},
                      {reldb::AggFn::kSum, "num_cpus", "cpus"}};
  auto by_manager = stack.db().query(apiserver::kUnitsTable, query);
  std::printf("== one units table, several resource managers ==\n");
  for (std::size_t i = 0; i < by_manager.rows.size(); ++i) {
    std::printf("  %-10s units=%-4lld cpus=%lld\n",
                by_manager.at(i, "resource_manager").as_text().c_str(),
                (long long)by_manager.at(i, "units").as_int(),
                (long long)by_manager.at(i, "cpus").as_int());
  }

  // Per-manager drill-down via the same query machinery.
  reldb::Query vms;
  vms.where = {{"resource_manager", reldb::Predicate::Op::kEq,
                reldb::Value("openstack")}};
  auto result = stack.db().query(apiserver::kUnitsTable, vms);
  std::printf("\n-- openstack units --\n");
  for (const auto& row : result.rows) {
    auto unit = apiserver::unit_from_row(row);
    std::printf("  %-10s user=%-6s vcpus=%-3lld state=%s\n",
                unit.uuid.c_str(), unit.user.c_str(),
                (long long)unit.num_cpus, unit.state.c_str());
  }

  bool ok = by_manager.rows.size() == 2 && result.rows.size() == 3;
  std::printf("\nopenstack_cloud %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
