#include <gtest/gtest.h>

#include "core/node_exporter_factory.h"
#include "exporter/exporter.h"
#include "http/server.h"
#include "node/node_sim.h"
#include "tsdb/scrape.h"

namespace ceems::tsdb {
namespace {

using common::make_sim_clock;

class ScrapeTest : public ::testing::Test {
 protected:
  ScrapeTest()
      : clock_(make_sim_clock(1000000)),
        store_(std::make_shared<TimeSeriesStore>()) {}

  std::shared_ptr<common::SimClock> clock_;
  StorePtr store_;
};

TEST_F(ScrapeTest, HttpTargetIngestedWithTargetLabels) {
  http::Server server{http::ServerConfig{}};
  server.handle("/metrics", [](const http::Request&) {
    return http::Response::text(200,
                                "# TYPE m counter\nm{mode=\"user\"} 42\n");
  });
  server.start();

  ScrapeManager manager(store_, clock_);
  ScrapeTarget target;
  target.url = server.base_url() + "/metrics";
  target.labels = metrics::Labels{{"hostname", "n1"}};
  manager.add_target(std::move(target));

  ScrapeStats stats = manager.scrape_all_once();
  EXPECT_EQ(stats.scrapes_total, 1u);
  EXPECT_EQ(stats.scrapes_failed, 0u);
  EXPECT_EQ(stats.samples_ingested, 1u);

  auto series = store_->select({{"__name__", metrics::LabelMatcher::Op::kEq,
                                 "m"}},
                               0, clock_->now_ms());
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(*series[0].labels.get("hostname"), "n1");
  EXPECT_EQ(series[0].samples()[0].t, clock_->now_ms());

  auto up = store_->select({{"__name__", metrics::LabelMatcher::Op::kEq,
                             "up"}},
                           0, clock_->now_ms());
  ASSERT_EQ(up.size(), 1u);
  EXPECT_DOUBLE_EQ(up[0].samples()[0].v, 1);
  server.stop();
}

TEST_F(ScrapeTest, DeadTargetRecordsUpZero) {
  ScrapeManager manager(store_, clock_);
  ScrapeTarget target;
  target.url = "http://127.0.0.1:1/metrics";  // nothing listens
  target.labels = metrics::Labels{{"hostname", "dead"}};
  manager.add_target(std::move(target));

  ScrapeStats stats = manager.scrape_all_once();
  EXPECT_EQ(stats.scrapes_failed, 1u);
  auto up = store_->select({{"__name__", metrics::LabelMatcher::Op::kEq,
                             "up"}},
                           0, clock_->now_ms());
  ASSERT_EQ(up.size(), 1u);
  EXPECT_DOUBLE_EQ(up[0].samples()[0].v, 0);
}

TEST_F(ScrapeTest, MalformedExpositionIsScrapeFailure) {
  http::Server server{http::ServerConfig{}};
  server.handle("/metrics", [](const http::Request&) {
    return http::Response::text(200, "9bad{ 1\n");
  });
  server.start();
  ScrapeManager manager(store_, clock_);
  ScrapeTarget target;
  target.url = server.base_url() + "/metrics";
  manager.add_target(std::move(target));
  ScrapeStats stats = manager.scrape_all_once();
  EXPECT_EQ(stats.scrapes_failed, 1u);
  server.stop();
}

TEST_F(ScrapeTest, LocalTransportMatchesHttpPath) {
  ScrapeManager manager(store_, clock_);
  ScrapeTarget target;
  target.local_fetch = [] {
    return std::string("# TYPE g gauge\ng 7\n");
  };
  target.labels = metrics::Labels{{"hostname", "local1"}};
  manager.add_target(std::move(target));
  ScrapeStats stats = manager.scrape_all_once();
  EXPECT_EQ(stats.samples_ingested, 1u);
  auto series = store_->select({{"hostname", metrics::LabelMatcher::Op::kEq,
                                 "local1"}},
                               0, clock_->now_ms());
  EXPECT_EQ(series.size(), 3u);  // g + up + scrape_duration_seconds
}

TEST_F(ScrapeTest, LocalTransportEmptyIsFailure) {
  ScrapeManager manager(store_, clock_);
  ScrapeTarget target;
  target.local_fetch = [] { return std::string(); };
  manager.add_target(std::move(target));
  EXPECT_EQ(manager.scrape_all_once().scrapes_failed, 1u);
}

TEST_F(ScrapeTest, ManyTargetsScrapedInParallel) {
  ScrapeConfig config;
  config.parallelism = 8;
  ScrapeManager manager(store_, clock_, config);
  for (int i = 0; i < 50; ++i) {
    ScrapeTarget target;
    target.local_fetch = [i] {
      return "m{i=\"" + std::to_string(i) + "\"} " + std::to_string(i) + "\n";
    };
    target.labels = metrics::Labels{{"hostname", "n" + std::to_string(i)}};
    manager.add_target(std::move(target));
  }
  ScrapeStats stats = manager.scrape_all_once();
  EXPECT_EQ(stats.scrapes_total, 50u);
  EXPECT_EQ(stats.samples_ingested, 50u);
  EXPECT_EQ(store_->stats().num_series, 150u);
}

TEST_F(ScrapeTest, BasicAuthAgainstExporter) {
  auto node = std::make_shared<node::NodeSim>(
      node::make_intel_cpu_node("n1"), clock_, 1);
  exporter::ExporterConfig config;
  config.http.basic_auth = {"prom", "pw"};
  auto exp = core::make_ceems_exporter(node, clock_, config);
  exp->start();

  // Without credentials: 401 → scrape failure.
  {
    ScrapeManager manager(store_, clock_);
    ScrapeTarget target;
    target.url = exp->metrics_url();
    manager.add_target(std::move(target));
    EXPECT_EQ(manager.scrape_all_once().scrapes_failed, 1u);
  }
  // With credentials: success.
  {
    auto store = std::make_shared<TimeSeriesStore>();
    ScrapeManager manager(store, clock_);
    ScrapeTarget target;
    target.url = exp->metrics_url();
    target.auth = {"prom", "pw"};
    manager.add_target(std::move(target));
    ScrapeStats stats = manager.scrape_all_once();
    EXPECT_EQ(stats.scrapes_failed, 0u);
    EXPECT_GT(stats.samples_ingested, 10u);
  }
  exp->stop();
}

TEST_F(ScrapeTest, BackgroundLoopScrapesOnSimClock) {
  ScrapeConfig config;
  config.interval_ms = 30000;
  ScrapeManager manager(store_, clock_, config);
  ScrapeTarget target;
  target.local_fetch = [] { return std::string("g 1\n"); };
  manager.add_target(std::move(target));

  manager.start();
  for (int i = 0; i < 3; ++i) {
    while (clock_->sleeper_count() == 0) std::this_thread::yield();
    clock_->advance(30000);
  }
  manager.stop();
  EXPECT_GE(manager.stats().scrapes_total, 3u);
}

}  // namespace
}  // namespace ceems::tsdb
