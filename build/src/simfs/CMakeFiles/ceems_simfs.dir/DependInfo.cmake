
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simfs/cgroup.cpp" "src/simfs/CMakeFiles/ceems_simfs.dir/cgroup.cpp.o" "gcc" "src/simfs/CMakeFiles/ceems_simfs.dir/cgroup.cpp.o.d"
  "/root/repo/src/simfs/procfs.cpp" "src/simfs/CMakeFiles/ceems_simfs.dir/procfs.cpp.o" "gcc" "src/simfs/CMakeFiles/ceems_simfs.dir/procfs.cpp.o.d"
  "/root/repo/src/simfs/pseudo_fs.cpp" "src/simfs/CMakeFiles/ceems_simfs.dir/pseudo_fs.cpp.o" "gcc" "src/simfs/CMakeFiles/ceems_simfs.dir/pseudo_fs.cpp.o.d"
  "/root/repo/src/simfs/real_fs.cpp" "src/simfs/CMakeFiles/ceems_simfs.dir/real_fs.cpp.o" "gcc" "src/simfs/CMakeFiles/ceems_simfs.dir/real_fs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ceems_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
