#include "apiserver/updater.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.h"
#include "common/strutil.h"
#include "metrics/symbols.h"

namespace ceems::apiserver {

using tsdb::promql::Value;

Updater::Updater(reldb::Database& db,
                 std::shared_ptr<const tsdb::Queryable> tsdb,
                 tsdb::StorePtr hot_store_for_cleanup,
                 std::vector<AdapterPtr> adapters, common::ClockPtr clock,
                 UpdaterConfig config)
    : db_(db),
      tsdb_(std::move(tsdb)),
      hot_store_(std::move(hot_store_for_cleanup)),
      adapters_(std::move(adapters)),
      clock_(std::move(clock)),
      config_(config) {
  create_ceems_tables(db_);
}

void Updater::poll_managers(common::TimestampMs now, UpdateStats& stats) {
  for (const auto& adapter : adapters_) {
    for (Unit fresh : adapter->fetch_units_changed_since(last_poll_ms_)) {
      // Preserve existing aggregates: identity/state fields come from the
      // resource manager, metric columns from previous cycles.
      if (auto existing_row = db_.get(kUnitsTable, reldb::Value(fresh.uuid))) {
        Unit existing = unit_from_row(*existing_row);
        fresh.total_cpu_time_seconds = existing.total_cpu_time_seconds;
        fresh.avg_cpu_usage = existing.avg_cpu_usage;
        fresh.avg_cpu_mem_bytes = existing.avg_cpu_mem_bytes;
        fresh.avg_gpu_usage = existing.avg_gpu_usage;
        fresh.total_cpu_energy_joules = existing.total_cpu_energy_joules;
        fresh.total_gpu_energy_joules = existing.total_gpu_energy_joules;
        fresh.total_energy_joules = existing.total_energy_joules;
        fresh.total_emissions_grams = existing.total_emissions_grams;
        fresh.total_io_read_bytes = existing.total_io_read_bytes;
        fresh.total_io_write_bytes = existing.total_io_write_bytes;
        if (fresh.ended_at_ms != 0 && existing.ended_at_ms == 0) {
          newly_ended_.push_back(fresh);
        }
      } else if (fresh.ended_at_ms != 0) {
        // First sighting of an already-finished unit (it started and ended
        // within one poll interval) — still a cleanup candidate.
        newly_ended_.push_back(fresh);
      }
      if (fresh.started_at_ms != 0) {
        fresh.elapsed_ms = (fresh.ended_at_ms != 0 ? fresh.ended_at_ms : now) -
                           fresh.started_at_ms;
      }
      db_.upsert(kUnitsTable, unit_to_row(fresh));
      ++stats.units_upserted;
    }
  }
  last_poll_ms_ = now;
}

void Updater::update_aggregates(common::TimestampMs now, UpdateStats& stats) {
  // Aggregation instant: `now`, or the newest grid point at or before it
  // when windows are aligned. Alignment trades up to align_window_ms of
  // result freshness for ladder-served queries.
  common::TimestampMs at = now;
  if (config_.align_window_ms > 0) {
    at = tsdb::floor_div(now, config_.align_window_ms) *
         config_.align_window_ms;
  }
  if (last_agg_ms_ < 0) {
    last_agg_ms_ = at;
    return;  // first cycle: establish the window start
  }
  int64_t window_ms = at - last_agg_ms_;
  if (window_ms <= 0) return;
  double window_sec = static_cast<double>(window_ms) / 1000.0;
  std::string window = common::format_duration_ms(window_ms);

  // Batched per-uuid queries over the window. Every query groups by uuid
  // so one TSDB pass covers every running unit. Result maps are keyed by
  // the uuid's interned symbol id: seven queries per cycle over hundreds
  // of units would otherwise copy the same uuid strings into every map.
  auto& symtab = metrics::SymbolTable::global();
  auto vector_by_uuid = [&](const std::string& query)
      -> std::map<uint32_t, double> {
    std::map<uint32_t, double> out;
    try {
      Value value = engine_.eval(*tsdb_, query, at);
      if (value.kind != Value::Kind::kVector) return out;
      for (const auto& sample : value.vector) {
        auto uuid = sample.labels.get("uuid");
        if (uuid) out[symtab.intern(*uuid)] = sample.value;
      }
    } catch (const std::exception& e) {
      CEEMS_LOG_WARN("updater") << "query failed: " << e.what();
    }
    return out;
  };

  auto cpu_time = vector_by_uuid(
      "sum by (uuid) (increase(ceems_compute_unit_cpu_usage_seconds_total[" +
      window + "]))");
  auto mem_avg = vector_by_uuid(
      "avg by (uuid) (avg_over_time(ceems_compute_unit_memory_current_bytes[" +
      window + "]))");
  auto cpu_power = vector_by_uuid("sum by (uuid) (avg_over_time(" +
                                  config_.cpu_power_metric + "[" + window +
                                  "]))");
  auto gpu_power = vector_by_uuid("sum by (uuid) (avg_over_time(" +
                                  config_.gpu_power_metric + "[" + window +
                                  "]))");
  auto gpu_util = vector_by_uuid("avg by (uuid) (avg_over_time(" +
                                 config_.gpu_util_metric + "[" + window +
                                 "]))");
  auto io_read = vector_by_uuid(
      "sum by (uuid) (increase(ceems_compute_unit_io_read_bytes_total[" +
      window + "]))");
  auto io_write = vector_by_uuid(
      "sum by (uuid) (increase(ceems_compute_unit_io_write_bytes_total[" +
      window + "]))");

  // Cluster-wide emission factor for the window (scalar).
  double factor = 0;
  try {
    Value value = engine_.eval(
        *tsdb_,
        "avg(avg_over_time(" + config_.emission_metric + "{provider=\"" +
            config_.emission_provider + "\"}[" + window + "]))",
        at);
    if (value.kind == Value::Kind::kVector && !value.vector.empty()) {
      factor = value.vector[0].value;
    }
  } catch (const std::exception&) {
  }

  // Collect all uuids that have any activity this window.
  std::set<uint32_t> touched;
  for (const auto& [uuid, v] : cpu_time) touched.insert(uuid);
  for (const auto& [uuid, v] : cpu_power) touched.insert(uuid);
  for (const auto& [uuid, v] : gpu_power) touched.insert(uuid);

  for (uint32_t uuid_sym : touched) {
    // One string materialisation per active unit per cycle, for the DB key.
    std::string uuid(symtab.text(uuid_sym));
    auto row = db_.get(kUnitsTable, reldb::Value(uuid));
    if (!row) continue;  // metrics for a unit the manager hasn't reported yet
    Unit unit = unit_from_row(*row);

    double prev_elapsed_sec =
        std::max(0.0, static_cast<double>(unit.elapsed_ms) / 1000.0 -
                          window_sec);
    if (unit.started_at_ms != 0 && unit.ended_at_ms == 0) {
      unit.elapsed_ms = now - unit.started_at_ms;
    }
    double elapsed_sec = static_cast<double>(unit.elapsed_ms) / 1000.0;

    auto get = [uuid_sym](const std::map<uint32_t, double>& m) {
      auto it = m.find(uuid_sym);
      return it == m.end() ? 0.0 : it->second;
    };

    unit.total_cpu_time_seconds += get(cpu_time);
    if (elapsed_sec > 0 && unit.num_cpus > 0) {
      unit.avg_cpu_usage = unit.total_cpu_time_seconds /
                           (elapsed_sec * static_cast<double>(unit.num_cpus));
    }
    // Time-weighted running averages.
    auto fold_avg = [&](double old_avg, double window_value) {
      if (elapsed_sec <= 0) return window_value;
      double effective_window = std::min(window_sec, elapsed_sec);
      return (old_avg * prev_elapsed_sec + window_value * effective_window) /
             (prev_elapsed_sec + effective_window);
    };
    if (mem_avg.count(uuid_sym))
      unit.avg_cpu_mem_bytes = fold_avg(unit.avg_cpu_mem_bytes, get(mem_avg));
    if (gpu_util.count(uuid_sym))
      unit.avg_gpu_usage = fold_avg(unit.avg_gpu_usage, get(gpu_util));

    double cpu_energy_inc = get(cpu_power) * window_sec;
    double gpu_energy_inc = get(gpu_power) * window_sec;
    unit.total_cpu_energy_joules += cpu_energy_inc;
    unit.total_gpu_energy_joules += gpu_energy_inc;
    unit.total_energy_joules =
        unit.total_cpu_energy_joules + unit.total_gpu_energy_joules;
    unit.total_emissions_grams +=
        (cpu_energy_inc + gpu_energy_inc) / 3.6e6 * factor;
    unit.total_io_read_bytes += get(io_read);
    unit.total_io_write_bytes += get(io_write);

    db_.upsert(kUnitsTable, unit_to_row(unit));
    ++stats.units_aggregated;
  }
  last_agg_ms_ = at;
}

void Updater::cleanup_small_units(UpdateStats& stats) {
  if (config_.small_unit_cutoff_ms <= 0 || !hot_store_) {
    newly_ended_.clear();
    return;
  }
  for (const auto& unit : newly_ended_) {
    int64_t lifetime = unit.ended_at_ms - unit.started_at_ms;
    if (unit.started_at_ms == 0 || lifetime >= config_.small_unit_cutoff_ms)
      continue;
    stats.series_deleted += hot_store_->delete_series(
        {{"uuid", metrics::LabelMatcher::Op::kEq, unit.uuid}});
  }
  newly_ended_.clear();
}

UpdateStats Updater::update_once() {
  UpdateStats stats;
  common::TimestampMs now = clock_->now_ms();
  poll_managers(now, stats);
  update_aggregates(now, stats);
  cleanup_small_units(stats);
  return stats;
}

void Updater::start() {
  if (running_.exchange(true)) return;
  loop_thread_ = std::thread([this] {
    while (running_.load()) {
      common::TimestampMs next = clock_->now_ms() + config_.interval_ms;
      update_once();
      if (!clock_->sleep_until(next)) return;
    }
  });
}

void Updater::stop() {
  if (!running_.exchange(false)) return;
  clock_->interrupt();
  if (loop_thread_.joinable()) loop_thread_.join();
}

}  // namespace ceems::apiserver
