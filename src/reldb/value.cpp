#include "reldb/value.h"

#include <stdexcept>

#include "common/strutil.h"

namespace ceems::reldb {

int64_t Value::as_int() const {
  if (is_int()) return std::get<int64_t>(data);
  if (is_real()) return static_cast<int64_t>(std::get<double>(data));
  if (is_text()) return common::parse_int64(std::get<std::string>(data)).value_or(0);
  return 0;
}

double Value::as_real() const {
  if (is_real()) return std::get<double>(data);
  if (is_int()) return static_cast<double>(std::get<int64_t>(data));
  if (is_text())
    return common::parse_double(std::get<std::string>(data)).value_or(0);
  return 0;
}

const std::string& Value::as_text() const {
  static const std::string kEmpty;
  if (is_text()) return std::get<std::string>(data);
  return kEmpty;
}

namespace {
int type_rank(const Value& value) {
  if (value.is_null()) return 0;
  if (value.is_int() || value.is_real()) return 1;
  return 2;
}
}  // namespace

bool Value::operator<(const Value& other) const {
  int lhs_rank = type_rank(*this), rhs_rank = type_rank(other);
  if (lhs_rank != rhs_rank) return lhs_rank < rhs_rank;
  if (lhs_rank == 0) return false;
  if (lhs_rank == 1) return as_real() < other.as_real();
  return as_text() < other.as_text();
}

bool Value::operator==(const Value& other) const {
  int lhs_rank = type_rank(*this), rhs_rank = type_rank(other);
  if (lhs_rank != rhs_rank) return false;
  if (lhs_rank == 0) return true;
  if (lhs_rank == 1) return as_real() == other.as_real();
  return as_text() == other.as_text();
}

std::string Value::to_string() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(std::get<int64_t>(data));
  if (is_real()) return common::format_double(std::get<double>(data));
  return std::get<std::string>(data);
}

int Schema::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace ceems::reldb
