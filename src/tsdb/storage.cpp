#include "tsdb/storage.h"

#include <algorithm>
#include <fstream>
#include <mutex>

namespace ceems::tsdb {

bool TimeSeriesStore::append_locked(Shard& shard, uint64_t fingerprint,
                                    const Labels& labels, TimestampMs t,
                                    double v) {
  auto it = shard.series.find(fingerprint);
  if (it == shard.series.end()) {
    it = shard.series.emplace(fingerprint, SeriesData{labels, {}}).first;
    for (const auto& [name, value] : labels.pairs()) {
      shard.index[name][value].insert(fingerprint);
    }
  }
  SeriesData& data = it->second;
  if (!data.samples.empty() && t < data.samples.back().t) {
    return false;  // out-of-order; Prometheus rejects these too
  }
  if (!data.samples.empty() && t == data.samples.back().t) {
    data.samples.back().v = v;  // duplicate timestamp: last write wins
    return true;
  }
  data.samples.push_back({t, v});
  ++shard.num_samples;
  return true;
}

bool TimeSeriesStore::append(const Labels& labels, TimestampMs t, double v) {
  uint64_t fingerprint = labels.fingerprint();
  Shard& shard = shards_[shard_of(fingerprint)];
  std::unique_lock lock(shard.mu);
  bool accepted = append_locked(shard, fingerprint, labels, t, v);
  if (accepted) shard.version.fetch_add(1, std::memory_order_acq_rel);
  return accepted;
}

std::size_t TimeSeriesStore::append_all(
    const std::vector<metrics::Sample>& samples) {
  // Bucket by shard first so each shard lock is acquired once per batch.
  std::array<std::vector<std::pair<uint64_t, const metrics::Sample*>>,
             kShardCount>
      buckets;
  for (const auto& sample : samples) {
    uint64_t fingerprint = sample.labels.fingerprint();
    buckets[shard_of(fingerprint)].emplace_back(fingerprint, &sample);
  }
  std::size_t accepted = 0;
  for (std::size_t s = 0; s < kShardCount; ++s) {
    if (buckets[s].empty()) continue;
    Shard& shard = shards_[s];
    std::unique_lock lock(shard.mu);
    std::size_t shard_accepted = 0;
    for (const auto& [fingerprint, sample] : buckets[s]) {
      if (append_locked(shard, fingerprint, sample->labels,
                        sample->timestamp_ms, sample->value)) {
        ++shard_accepted;
      }
    }
    // One version bump per shard per batch is enough for cache
    // invalidation (entries compare signatures for equality).
    if (shard_accepted > 0)
      shard.version.fetch_add(1, std::memory_order_acq_rel);
    accepted += shard_accepted;
  }
  return accepted;
}

std::vector<uint64_t> TimeSeriesStore::match_ids(
    const Shard& shard, const std::vector<LabelMatcher>& matchers) {
  // Start from the most selective equality matcher via the inverted index,
  // then filter.
  std::optional<std::set<uint64_t>> candidates;
  for (const auto& matcher : matchers) {
    if (matcher.op != LabelMatcher::Op::kEq || matcher.value.empty()) continue;
    auto name_it = shard.index.find(matcher.name);
    if (name_it == shard.index.end()) return {};
    auto value_it = name_it->second.find(matcher.value);
    if (value_it == name_it->second.end()) return {};
    if (!candidates) {
      candidates = value_it->second;
    } else {
      std::set<uint64_t> intersection;
      std::set_intersection(
          candidates->begin(), candidates->end(), value_it->second.begin(),
          value_it->second.end(),
          std::inserter(intersection, intersection.begin()));
      candidates = std::move(intersection);
    }
    if (candidates->empty()) return {};
  }

  std::vector<uint64_t> out;
  auto check = [&](uint64_t id, const SeriesData& data) {
    for (const auto& matcher : matchers) {
      if (!matcher.matches(data.labels)) return;
    }
    out.push_back(id);
  };
  if (candidates) {
    for (uint64_t id : *candidates) {
      auto it = shard.series.find(id);
      if (it != shard.series.end()) check(id, it->second);
    }
  } else {
    for (const auto& [id, data] : shard.series) check(id, data);
  }
  return out;
}

std::vector<Series> TimeSeriesStore::select(
    const std::vector<LabelMatcher>& matchers, TimestampMs min_t,
    TimestampMs max_t) const {
  std::vector<Series> out;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    for (uint64_t id : match_ids(shard, matchers)) {
      const SeriesData& data = shard.series.at(id);
      auto begin = std::lower_bound(
          data.samples.begin(), data.samples.end(), min_t,
          [](const SamplePoint& s, TimestampMs t) { return s.t < t; });
      auto end = std::upper_bound(
          data.samples.begin(), data.samples.end(), max_t,
          [](TimestampMs t, const SamplePoint& s) { return t < s.t; });
      if (begin == end) continue;
      Series series;
      series.labels = data.labels;
      series.samples.assign(begin, end);
      out.push_back(std::move(series));
    }
  }
  // Deterministic output order.
  std::sort(out.begin(), out.end(), [](const Series& a, const Series& b) {
    return a.labels < b.labels;
  });
  return out;
}

std::vector<uint64_t> TimeSeriesStore::version_signature() const {
  std::vector<uint64_t> out;
  out.reserve(kShardCount);
  for (const Shard& shard : shards_) {
    out.push_back(shard.version.load(std::memory_order_acquire));
  }
  return out;
}

std::vector<std::string> TimeSeriesStore::label_values(
    const std::string& label_name) const {
  std::set<std::string> merged;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    auto it = shard.index.find(label_name);
    if (it == shard.index.end()) continue;
    for (const auto& [value, ids] : it->second) {
      if (!ids.empty()) merged.insert(value);
    }
  }
  return {merged.begin(), merged.end()};
}

std::size_t TimeSeriesStore::purge_before(TimestampMs cutoff) {
  std::size_t dropped = 0;
  for (Shard& shard : shards_) {
    std::unique_lock lock(shard.mu);
    std::size_t shard_dropped = 0;
    for (auto it = shard.series.begin(); it != shard.series.end();) {
      auto& samples = it->second.samples;
      auto keep_from = std::lower_bound(
          samples.begin(), samples.end(), cutoff,
          [](const SamplePoint& s, TimestampMs t) { return s.t < t; });
      shard_dropped += static_cast<std::size_t>(keep_from - samples.begin());
      samples.erase(samples.begin(), keep_from);
      if (samples.empty()) {
        for (const auto& [name, value] : it->second.labels.pairs()) {
          shard.index[name][value].erase(it->first);
        }
        it = shard.series.erase(it);
      } else {
        ++it;
      }
    }
    if (shard_dropped > 0) {
      shard.num_samples -= shard_dropped;
      shard.version.fetch_add(1, std::memory_order_acq_rel);
    }
    dropped += shard_dropped;
  }
  return dropped;
}

std::size_t TimeSeriesStore::delete_series(
    const std::vector<LabelMatcher>& matchers) {
  std::size_t deleted = 0;
  for (Shard& shard : shards_) {
    std::unique_lock lock(shard.mu);
    bool mutated = false;
    for (uint64_t id : match_ids(shard, matchers)) {
      auto it = shard.series.find(id);
      if (it == shard.series.end()) continue;
      shard.num_samples -= it->second.samples.size();
      for (const auto& [name, value] : it->second.labels.pairs()) {
        shard.index[name][value].erase(id);
      }
      shard.series.erase(it);
      ++deleted;
      mutated = true;
    }
    if (mutated) shard.version.fetch_add(1, std::memory_order_acq_rel);
  }
  return deleted;
}

StorageStats TimeSeriesStore::stats() const {
  StorageStats stats;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    stats.num_series += shard.series.size();
    stats.num_samples += shard.num_samples;
    stats.approx_bytes += shard.num_samples * sizeof(SamplePoint);
    for (const auto& [id, data] : shard.series) {
      for (const auto& [name, value] : data.labels.pairs()) {
        stats.approx_bytes += name.size() + value.size() + 2 * sizeof(void*);
      }
    }
  }
  return stats;
}

std::optional<TimestampMs> TimeSeriesStore::max_time() const {
  std::optional<TimestampMs> max_t;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    for (const auto& [id, data] : shard.series) {
      if (data.samples.empty()) continue;
      if (!max_t || data.samples.back().t > *max_t)
        max_t = data.samples.back().t;
    }
  }
  return max_t;
}

std::vector<Series> TimeSeriesStore::series_since(TimestampMs since) const {
  std::vector<Series> out;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    for (const auto& [id, data] : shard.series) {
      auto begin = std::lower_bound(
          data.samples.begin(), data.samples.end(), since,
          [](const SamplePoint& s, TimestampMs t) { return s.t < t; });
      if (begin == data.samples.end()) continue;
      Series series;
      series.labels = data.labels;
      series.samples.assign(begin, data.samples.end());
      out.push_back(std::move(series));
    }
  }
  return out;
}

namespace {

constexpr char kSnapshotMagic[] = "CEEMSTSDB1";

void put_u64(std::ostream& out, uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}
void put_f64(std::ostream& out, double value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}
void put_string(std::ostream& out, const std::string& text) {
  put_u64(out, text.size());
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
}
bool get_u64(std::istream& in, uint64_t& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  return in.good();
}
bool get_f64(std::istream& in, double& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  return in.good();
}
bool get_string(std::istream& in, std::string& text) {
  uint64_t size = 0;
  if (!get_u64(in, size) || size > (1u << 20)) return false;
  text.resize(size);
  in.read(text.data(), static_cast<std::streamsize>(size));
  return in.good();
}

}  // namespace

bool TimeSeriesStore::snapshot_to(const std::string& path) const {
  // Hold every shard lock (in index order, so concurrent snapshots cannot
  // deadlock) for a consistent cut across shards.
  std::vector<std::shared_lock<std::shared_mutex>> locks;
  locks.reserve(kShardCount);
  std::size_t num_series = 0;
  for (const Shard& shard : shards_) {
    locks.emplace_back(shard.mu);
    num_series += shard.series.size();
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) return false;
  out.write(kSnapshotMagic, sizeof(kSnapshotMagic) - 1);
  put_u64(out, num_series);
  for (const Shard& shard : shards_) {
    for (const auto& [id, data] : shard.series) {
      put_u64(out, data.labels.pairs().size());
      for (const auto& [name, value] : data.labels.pairs()) {
        put_string(out, name);
        put_string(out, value);
      }
      put_u64(out, data.samples.size());
      for (const auto& sample : data.samples) {
        put_u64(out, static_cast<uint64_t>(sample.t));
        put_f64(out, sample.v);
      }
    }
  }
  return out.good();
}

std::optional<std::size_t> TimeSeriesStore::restore_from(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  char magic[sizeof(kSnapshotMagic) - 1];
  in.read(magic, sizeof(magic));
  if (!in.good() ||
      std::string_view(magic, sizeof(magic)) != kSnapshotMagic) {
    return std::nullopt;
  }
  uint64_t num_series = 0;
  if (!get_u64(in, num_series)) return std::nullopt;
  std::size_t restored = 0;
  for (uint64_t s = 0; s < num_series; ++s) {
    uint64_t num_labels = 0;
    if (!get_u64(in, num_labels) || num_labels > 256) return std::nullopt;
    std::vector<Labels::Pair> pairs;
    for (uint64_t l = 0; l < num_labels; ++l) {
      std::string name, value;
      if (!get_string(in, name) || !get_string(in, value))
        return std::nullopt;
      pairs.emplace_back(std::move(name), std::move(value));
    }
    Labels labels(std::move(pairs));
    uint64_t num_samples = 0;
    if (!get_u64(in, num_samples)) return std::nullopt;
    for (uint64_t i = 0; i < num_samples; ++i) {
      uint64_t t = 0;
      double v = 0;
      if (!get_u64(in, t) || !get_f64(in, v)) return std::nullopt;
      if (append(labels, static_cast<TimestampMs>(t), v)) ++restored;
    }
  }
  return restored;
}

}  // namespace ceems::tsdb
