#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "metrics/labels.h"
#include "metrics/registry.h"
#include "metrics/symbols.h"
#include "metrics/text_format.h"

namespace ceems::metrics {
namespace {

// ---------- labels ----------

TEST(Labels, SortedAndDeduplicated) {
  Labels labels{{"z", "1"}, {"a", "2"}, {"z", "3"}};
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels.pairs()[0].first, "a");
  EXPECT_EQ(*labels.get("z"), "3");  // later duplicate wins
}

TEST(Labels, WithReplacesOrAdds) {
  Labels labels{{"a", "1"}};
  Labels with_b = labels.with("b", "2");
  EXPECT_EQ(*with_b.get("b"), "2");
  Labels replaced = with_b.with("a", "9");
  EXPECT_EQ(*replaced.get("a"), "9");
  EXPECT_EQ(*labels.get("a"), "1");  // original untouched
}

TEST(Labels, KeepOnlyAndDrop) {
  Labels labels{{"a", "1"}, {"b", "2"}, {"c", "3"}};
  EXPECT_EQ(labels.keep_only({"a", "c"}).size(), 2u);
  EXPECT_EQ(labels.drop({"b"}).size(), 2u);
  EXPECT_FALSE(labels.drop({"b"}).has("b"));
}

TEST(Labels, FingerprintDistinguishesBoundaries) {
  // {"ab","c"} vs {"a","bc"} must not collide.
  Labels first{{"x", "ab"}, {"y", "c"}};
  Labels second{{"x", "a"}, {"y", "bc"}};
  EXPECT_NE(first.fingerprint(), second.fingerprint());
}

TEST(Labels, FingerprintStable) {
  Labels labels{{"host", "n1"}, {"uuid", "42"}};
  EXPECT_EQ(labels.fingerprint(),
            (Labels{{"uuid", "42"}, {"host", "n1"}}).fingerprint());
}

TEST(Labels, NameHelpers) {
  Labels labels = Labels{{"a", "1"}}.with_name("up");
  EXPECT_EQ(labels.name(), "up");
  EXPECT_FALSE(labels.without_name().has(kMetricNameLabel));
}

TEST(LabelMatcher, EqAndNe) {
  Labels labels{{"mode", "idle"}};
  LabelMatcher eq{"mode", LabelMatcher::Op::kEq, "idle"};
  LabelMatcher ne{"mode", LabelMatcher::Op::kNe, "idle"};
  EXPECT_TRUE(eq.matches(labels));
  EXPECT_FALSE(ne.matches(labels));
  // Missing label: eq with empty value matches, ne with value matches.
  LabelMatcher missing_eq{"zone", LabelMatcher::Op::kEq, ""};
  EXPECT_TRUE(missing_eq.matches(labels));
  LabelMatcher missing_ne{"zone", LabelMatcher::Op::kNe, "x"};
  EXPECT_TRUE(missing_ne.matches(labels));
}

TEST(LabelMatcher, RegexAnchored) {
  Labels labels{{"job", "node123"}};
  LabelMatcher re{"job", LabelMatcher::Op::kRegexMatch, "node\\d+"};
  EXPECT_TRUE(re.matches(labels));
  LabelMatcher partial{"job", LabelMatcher::Op::kRegexMatch, "node"};
  EXPECT_FALSE(partial.matches(labels));  // anchored, must match fully
  LabelMatcher no_match{"job", LabelMatcher::Op::kRegexNoMatch, "web.*"};
  EXPECT_TRUE(no_match.matches(labels));
}

// ---------- model ----------

TEST(Model, MetricNameValidation) {
  EXPECT_TRUE(is_valid_metric_name("node_cpu_seconds_total"));
  EXPECT_TRUE(is_valid_metric_name("instance:rate:sum"));
  EXPECT_TRUE(is_valid_metric_name("_private"));
  EXPECT_FALSE(is_valid_metric_name("9leading"));
  EXPECT_FALSE(is_valid_metric_name("has-dash"));
  EXPECT_FALSE(is_valid_metric_name(""));
}

TEST(Model, LabelNameValidation) {
  EXPECT_TRUE(is_valid_label_name("mode"));
  EXPECT_FALSE(is_valid_label_name("with:colon"));
  EXPECT_FALSE(is_valid_label_name("1x"));
}

// ---------- text format ----------

TEST(TextFormat, EncodeBasic) {
  MetricFamily family{"up", "Target is up.", MetricType::kGauge, {}};
  family.add(Labels{{"instance", "n1"}}, 1);
  std::string text = encode_families({family});
  EXPECT_NE(text.find("# HELP up Target is up."), std::string::npos);
  EXPECT_NE(text.find("# TYPE up gauge"), std::string::npos);
  EXPECT_NE(text.find("up{instance=\"n1\"} 1"), std::string::npos);
}

TEST(TextFormat, EscapesLabelValues) {
  MetricFamily family{"m", "", MetricType::kUntyped, {}};
  family.add(Labels{{"path", "a\\b\"c\nd"}}, 1);
  std::string text = encode_families({family});
  EXPECT_NE(text.find(R"(path="a\\b\"c\nd")"), std::string::npos);
}

TEST(TextFormat, RoundTrip) {
  MetricFamily family{"ceems_compute_unit_cpu_usage_seconds_total",
                      "CPU time.",
                      MetricType::kCounter,
                      {}};
  family.add(Labels{{"uuid", "1001"}, {"mode", "user"}}, 123.5);
  family.add(Labels{{"uuid", "1001"}, {"mode", "system"}}, 21.25);

  ParsedExposition parsed = parse_exposition(encode_families({family}));
  ASSERT_EQ(parsed.samples.size(), 2u);
  EXPECT_EQ(parsed.samples[0].labels.name(),
            "ceems_compute_unit_cpu_usage_seconds_total");
  ASSERT_EQ(parsed.families.size(), 1u);
  EXPECT_EQ(parsed.families[0].type, MetricType::kCounter);
  EXPECT_EQ(parsed.families[0].help, "CPU time.");
}

TEST(TextFormat, ParseWithTimestamp) {
  auto parsed = parse_exposition("m{a=\"b\"} 4.5 1700000000000\n");
  ASSERT_EQ(parsed.samples.size(), 1u);
  EXPECT_EQ(parsed.samples[0].timestamp_ms, 1700000000000LL);
  EXPECT_DOUBLE_EQ(parsed.samples[0].value, 4.5);
}

TEST(TextFormat, ParseBareMetricNoLabels) {
  auto parsed = parse_exposition("node_load1 0.5\n");
  ASSERT_EQ(parsed.samples.size(), 1u);
  EXPECT_EQ(parsed.samples[0].labels.size(), 1u);  // just __name__
}

TEST(TextFormat, ParseSpecialValues) {
  auto parsed = parse_exposition("m 1\nn +Inf\no NaN\n");
  EXPECT_TRUE(std::isinf(parsed.samples[1].value));
  EXPECT_TRUE(std::isnan(parsed.samples[2].value));
}

TEST(TextFormat, MalformedLinesThrow) {
  EXPECT_THROW(parse_exposition("metric{a=\"b\"\n"), ExpositionParseError);
  EXPECT_THROW(parse_exposition("metric{a=b} 1\n"), ExpositionParseError);
  EXPECT_THROW(parse_exposition("metric abc\n"), ExpositionParseError);
  EXPECT_THROW(parse_exposition("9bad 1\n"), ExpositionParseError);
  EXPECT_THROW(parse_exposition("m\n"), ExpositionParseError);
}

TEST(TextFormat, UnknownCommentsIgnored) {
  auto parsed = parse_exposition("# EOF\n# random comment\nm 1\n");
  EXPECT_EQ(parsed.samples.size(), 1u);
}

TEST(TextFormat, EscapedLabelValueRoundTrip) {
  auto parsed = parse_exposition("m{p=\"a\\\\b\\\"c\\nd\"} 1\n");
  ASSERT_EQ(parsed.samples.size(), 1u);
  EXPECT_EQ(*parsed.samples[0].labels.get("p"), "a\\b\"c\nd");
}

TEST(TextFormat, EscapeUnescapeAreInverses) {
  for (const std::string& raw :
       {std::string("plain"), std::string("back\\slash"),
        std::string("quo\"te"), std::string("new\nline"),
        std::string("\\\"\n mixed \\n not-an-escape"), std::string(""),
        std::string("trailing\\")}) {
    EXPECT_EQ(unescape_label_value(escape_label_value(raw)), raw) << raw;
  }
  EXPECT_EQ(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
  EXPECT_EQ(unescape_label_value("a\\\\b\\\"c\\nd"), "a\\b\"c\nd");
}

TEST(TextFormat, EncodeParseRoundTripsEscapedValues) {
  MetricFamily family{"m", "help", MetricType::kGauge, {}};
  family.add(Labels{{"p", "a\\b\"c\nd"}}, 1.0);
  auto parsed = parse_exposition(encode_families({family}));
  ASSERT_EQ(parsed.samples.size(), 1u);
  EXPECT_EQ(*parsed.samples[0].labels.get("p"), "a\\b\"c\nd");
}

// ---------- symbol table / interned labels ----------

TEST(Symbols, InternIsIdempotentAndStable) {
  SymbolTable& table = SymbolTable::global();
  uint32_t a = table.intern("symbols_test_alpha");
  uint32_t b = table.intern("symbols_test_beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.intern("symbols_test_alpha"), a);
  EXPECT_EQ(table.text(a), "symbols_test_alpha");
  EXPECT_EQ(table.find("symbols_test_beta"), b);
  EXPECT_FALSE(table.find("symbols_test_never_interned").has_value());
}

TEST(Symbols, InternedLabelsMatchLabelsFingerprint) {
  Labels labels = Labels{{"hostname", "n1"}, {"uuid", "42"}}.with_name("m");
  InternedLabels interned(labels);
  EXPECT_EQ(interned.fingerprint(), labels.fingerprint());
  EXPECT_EQ(interned.size(), labels.size());
  EXPECT_EQ(interned.name(), "m");
  EXPECT_EQ(*interned.get("uuid"), "42");
  EXPECT_FALSE(interned.get("nope").has_value());
  // Round trip is lossless.
  EXPECT_EQ(interned.to_labels(), labels);
}

TEST(Symbols, WithKeepsCanonicalOrderAndFingerprint) {
  Labels base = Labels{{"b", "2"}};
  InternedLabels interned(base);
  InternedLabels extended = interned.with("a", "1").with("b", "3");
  Labels expected = Labels{{"a", "1"}, {"b", "3"}};
  EXPECT_EQ(extended.fingerprint(), expected.fingerprint());
  EXPECT_EQ(extended.to_labels(), expected);
}

TEST(Symbols, EqualityVerifiesSymbolsNotJustFingerprint) {
  Labels la = Labels{{"host", "a"}};
  Labels lb = Labels{{"host", "b"}};
  InternedLabels a(la, 0x1234);
  InternedLabels b(lb, 0x1234);  // forced fingerprint collision
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a, b);
  EXPECT_EQ(a, InternedLabels(la, 0x1234));
}

TEST(Symbols, MatcherWorksOnInternedLabels) {
  InternedLabels labels(Labels{{"hostname", "jzcpu12"}}.with_name("m"));
  LabelMatcher eq{"hostname", LabelMatcher::Op::kEq, "jzcpu12"};
  LabelMatcher ne{"hostname", LabelMatcher::Op::kNe, "other"};
  LabelMatcher re{"hostname", LabelMatcher::Op::kRegexMatch, "jzcpu\\d+"};
  LabelMatcher no{"hostname", LabelMatcher::Op::kRegexMatch, "jzcpu"};
  EXPECT_TRUE(eq.matches(labels));
  EXPECT_TRUE(ne.matches(labels));
  EXPECT_TRUE(re.matches(labels));
  EXPECT_FALSE(no.matches(labels));  // anchored
}

// ---------- registry ----------

TEST(Registry, CounterAccumulatesAndRejectsNegative) {
  Registry registry;
  auto counter = registry.counter("requests_total", "Total requests.");
  counter->inc();
  counter->inc(4.5);
  EXPECT_DOUBLE_EQ(counter->value(), 5.5);
  EXPECT_THROW(counter->inc(-1), std::invalid_argument);
}

TEST(Registry, SameNameAndLabelsSharesChild) {
  Registry registry;
  auto a = registry.counter("c", "h", Labels{{"x", "1"}});
  auto b = registry.counter("c", "h", Labels{{"x", "1"}});
  a->inc();
  EXPECT_DOUBLE_EQ(b->value(), 1.0);
  auto other = registry.counter("c", "h", Labels{{"x", "2"}});
  EXPECT_DOUBLE_EQ(other->value(), 0.0);
}

TEST(Registry, CollectIsSortedAndComplete) {
  Registry registry;
  registry.gauge("z_gauge", "z")->set(3);
  registry.counter("a_counter", "a")->inc();
  auto families = registry.collect();
  ASSERT_EQ(families.size(), 2u);
  EXPECT_EQ(families[0].name, "a_counter");
  EXPECT_EQ(families[0].type, MetricType::kCounter);
  EXPECT_EQ(families[1].name, "z_gauge");
  EXPECT_DOUBLE_EQ(families[1].metrics[0].value, 3.0);
}

TEST(Registry, InvalidNameThrows) {
  Registry registry;
  EXPECT_THROW(registry.counter("bad-name", "x"), std::invalid_argument);
}

}  // namespace
}  // namespace ceems::metrics
