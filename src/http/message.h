// HTTP request/response types shared by server and client, plus the
// wire-format parsing helpers. CEEMS speaks plain HTTP/1.1: the scrape
// manager GETs /metrics, the API server serves JSON, the LB reverse-proxies
// PromQL queries.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ceems::http {

// Case-insensitive header map, as HTTP requires.
struct CaseInsensitiveLess {
  bool operator()(const std::string& a, const std::string& b) const;
};
using HeaderMap = std::map<std::string, std::string, CaseInsensitiveLess>;

// Shared by server (verification) and client (credential injection).
struct BasicAuthConfig {
  std::string username;
  std::string password;
  bool enabled() const { return !username.empty(); }
};

struct Request {
  std::string method;
  std::string target;  // raw path + query, e.g. "/api/v1/query?query=up"
  HeaderMap headers;
  std::string body;

  // Path without the query string.
  std::string path() const;
  // Decoded query parameters (first value wins on duplicates).
  std::map<std::string, std::string> query_params() const;
  // All values for a repeated parameter (PromQL match[] style).
  std::vector<std::string> query_param_all(const std::string& key) const;
  std::optional<std::string> header(const std::string& name) const;
};

struct Response {
  int status = 200;
  HeaderMap headers;
  std::string body;

  static Response text(int status, std::string body,
                       std::string content_type = "text/plain; charset=utf-8");
  static Response json(int status, std::string body);
  static Response not_found(const std::string& what = "not found");
  static Response bad_request(const std::string& what);
  static Response unauthorized(const std::string& realm = "ceems");
  static Response forbidden(const std::string& what = "forbidden");
  static Response internal_error(const std::string& what);
};

std::string status_reason(int status);

// Percent-decoding / encoding for URLs and query strings.
std::string url_decode(std::string_view text);
std::string url_encode(std::string_view text);

// Basic-auth helpers. encode produces the full header value
// ("Basic dXNlcjpwYXNz"); decode returns user:password on success.
std::string basic_auth_header(const std::string& user,
                              const std::string& password);
std::optional<std::pair<std::string, std::string>> decode_basic_auth(
    const std::string& header_value);

std::string base64_encode(std::string_view data);
std::optional<std::string> base64_decode(std::string_view text);

}  // namespace ceems::http
