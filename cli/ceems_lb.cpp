// ceems_lb — standalone CEEMS load balancer: access-controlling reverse
// proxy in front of one or more Prometheus-compatible query backends,
// verifying compute-unit ownership against a CEEMS API server.
//
//   ceems_lb --backends URL[,URL...] --api-server URL
//            [--port N] [--strategy round-robin|least-connection]
//            [--admins a,b]
#include <csignal>
#include <cstdio>
#include <thread>

#include "cli/flags.h"
#include "common/logging.h"
#include "lb/load_balancer.h"

using namespace ceems;

namespace {
volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  cli::Flags flags(argc, argv,
                   "--backends URL[,URL...] --api-server URL [--port N] "
                   "[--strategy round-robin|least-connection] [--admins a,b]");
  common::set_log_level(common::LogLevel::kInfo);

  std::vector<std::string> backends;
  for (const auto& url : common::split(flags.get("backends"), ',')) {
    if (!url.empty()) backends.push_back(url);
  }
  if (backends.empty()) {
    flags.print_usage();
    return 1;
  }

  lb::LbConfig config;
  config.http.port = static_cast<uint16_t>(flags.get_int("port", 9030));
  config.api_server_url = flags.get("api-server");
  config.strategy = flags.get("strategy") == "least-connection"
                        ? lb::Strategy::kLeastConnection
                        : lb::Strategy::kRoundRobin;
  for (const auto& admin : common::split(flags.get("admins", "admin"), ',')) {
    if (!admin.empty()) config.admin_users.insert(admin);
  }

  auto clock = common::make_real_clock();
  lb::LoadBalancer balancer(config, backends, clock);
  balancer.start();
  std::fprintf(stderr, "lb on %s -> %zu backend(s), ownership via %s\n",
               balancer.base_url().c_str(), backends.size(),
               config.api_server_url.empty() ? "(none: admins only)"
                                             : config.api_server_url.c_str());

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (!g_stop) std::this_thread::sleep_for(std::chrono::seconds(1));
  for (const auto& backend : balancer.backend_stats()) {
    std::fprintf(stderr, "%s: %llu requests, %llu failures\n",
                 backend.base_url.c_str(),
                 (unsigned long long)backend.requests,
                 (unsigned long long)backend.failures);
  }
  balancer.stop();
  return 0;
}
