file(REMOVE_RECURSE
  "CMakeFiles/ceems_tsdb.dir/http_api.cpp.o"
  "CMakeFiles/ceems_tsdb.dir/http_api.cpp.o.d"
  "CMakeFiles/ceems_tsdb.dir/longterm.cpp.o"
  "CMakeFiles/ceems_tsdb.dir/longterm.cpp.o.d"
  "CMakeFiles/ceems_tsdb.dir/promql_eval.cpp.o"
  "CMakeFiles/ceems_tsdb.dir/promql_eval.cpp.o.d"
  "CMakeFiles/ceems_tsdb.dir/promql_lexer.cpp.o"
  "CMakeFiles/ceems_tsdb.dir/promql_lexer.cpp.o.d"
  "CMakeFiles/ceems_tsdb.dir/promql_parser.cpp.o"
  "CMakeFiles/ceems_tsdb.dir/promql_parser.cpp.o.d"
  "CMakeFiles/ceems_tsdb.dir/rules.cpp.o"
  "CMakeFiles/ceems_tsdb.dir/rules.cpp.o.d"
  "CMakeFiles/ceems_tsdb.dir/scrape.cpp.o"
  "CMakeFiles/ceems_tsdb.dir/scrape.cpp.o.d"
  "CMakeFiles/ceems_tsdb.dir/storage.cpp.o"
  "CMakeFiles/ceems_tsdb.dir/storage.cpp.o.d"
  "libceems_tsdb.a"
  "libceems_tsdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceems_tsdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
