# Empty compiler generated dependencies file for ceems_slurm.
# This may be replaced when dependencies are built.
