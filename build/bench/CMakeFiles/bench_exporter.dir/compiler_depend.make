# Empty compiler generated dependencies file for bench_exporter.
# This may be replaced when dependencies are built.
