#include "metrics/registry.h"

#include <algorithm>
#include <stdexcept>

namespace ceems::metrics {

void Counter::inc(double delta) {
  if (delta < 0) throw std::invalid_argument("counter cannot decrease");
  std::lock_guard lock(mu_);
  value_ += delta;
}

double Counter::value() const {
  std::lock_guard lock(mu_);
  return value_;
}

void Gauge::set(double value) {
  std::lock_guard lock(mu_);
  value_ = value;
}

void Gauge::add(double delta) {
  std::lock_guard lock(mu_);
  value_ += delta;
}

double Gauge::value() const {
  std::lock_guard lock(mu_);
  return value_;
}

std::shared_ptr<Counter> Registry::counter(const std::string& name,
                                           const std::string& help,
                                           const Labels& labels) {
  if (!is_valid_metric_name(name))
    throw std::invalid_argument("invalid metric name: " + name);
  std::lock_guard lock(mu_);
  Family& family = families_[name];
  if (family.help.empty()) {
    family.help = help;
    family.type = MetricType::kCounter;
  }
  auto& child = family.counters[labels];
  if (!child) child = std::make_shared<Counter>();
  return child;
}

std::shared_ptr<Gauge> Registry::gauge(const std::string& name,
                                       const std::string& help,
                                       const Labels& labels) {
  if (!is_valid_metric_name(name))
    throw std::invalid_argument("invalid metric name: " + name);
  std::lock_guard lock(mu_);
  Family& family = families_[name];
  if (family.help.empty()) {
    family.help = help;
    family.type = MetricType::kGauge;
  }
  auto& child = family.gauges[labels];
  if (!child) child = std::make_shared<Gauge>();
  return child;
}

std::vector<MetricFamily> Registry::collect() const {
  std::lock_guard lock(mu_);
  std::vector<MetricFamily> out;
  out.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    MetricFamily mf{name, family.help, family.type, {}};
    for (const auto& [labels, counter] : family.counters) {
      mf.add(labels.to_labels(), counter->value());
    }
    for (const auto& [labels, gauge] : family.gauges) {
      mf.add(labels.to_labels(), gauge->value());
    }
    // Deterministic order for tests/golden output.
    std::sort(mf.metrics.begin(), mf.metrics.end(),
              [](const Metric& a, const Metric& b) {
                return a.labels < b.labels;
              });
    out.push_back(std::move(mf));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricFamily& a, const MetricFamily& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace ceems::metrics
