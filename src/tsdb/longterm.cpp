#include "tsdb/longterm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "metrics/model.h"

namespace ceems::tsdb {

namespace {

bool matches_all(const std::vector<LabelMatcher>& matchers,
                 const Labels& labels) {
  for (const auto& matcher : matchers) {
    if (!matcher.matches(labels)) return false;
  }
  return true;
}

// A freshly-opened bucket: min/max start as NaN ("no non-NaN sample seen
// yet"), sum starts at 0 so the bucket fold is the same left fold the
// engine's sum_over_time runs.
AggBucket open_bucket(TimestampMs end) {
  AggBucket bucket;
  bucket.t = end;
  bucket.min = std::numeric_limits<double>::quiet_NaN();
  bucket.max = bucket.min;
  return bucket;
}

// Folds one raw sample into an open bucket. Mirrors the engine's window
// folds exactly (DESIGN.md §10): staleness markers touch only marker_t
// (range windows filter them before folding), sum is a left fold in time
// order, min/max keep the earliest strict extremum over non-NaN samples
// (NaN while none seen), and inc is the positive-delta fold
// counter_increase() computes over the bucket's sample pairs.
void fold_sample(AggBucket& bucket, TimestampMs t, double v) {
  if (metrics::is_stale_marker(v)) {
    bucket.marker_t = t;
    return;
  }
  bucket.marker_t = 0;
  if (bucket.count == 0) {
    bucket.first_t = t;
    bucket.first_v = v;
  } else {
    double delta = v - bucket.last_v;
    bucket.inc += delta >= 0 ? delta : v;
  }
  if (!std::isnan(v)) {
    if (std::isnan(bucket.min)) {
      bucket.min = v;
      bucket.max = v;
    } else {
      if (v < bucket.min) bucket.min = v;
      if (bucket.max < v) bucket.max = v;
    }
  }
  bucket.sum += v;
  bucket.last_t = t;
  bucket.last_v = v;
  ++bucket.count;
}

}  // namespace

LongTermStore::LongTermStore(LongTermConfig config)
    : config_(std::move(config)) {
  std::vector<AggLevelConfig> ladder = config_.levels;
  if (ladder.empty()) {
    ladder.push_back({config_.resolution_ms, config_.retention_ms});
  }
  ladder.erase(std::remove_if(
                   ladder.begin(), ladder.end(),
                   [](const AggLevelConfig& l) { return l.resolution_ms <= 0; }),
               ladder.end());
  std::sort(ladder.begin(), ladder.end(),
            [](const AggLevelConfig& a, const AggLevelConfig& b) {
              return a.resolution_ms < b.resolution_ms;
            });
  levels_.reserve(ladder.size());
  for (const auto& level_config : ladder) {
    AggLevel level;
    level.config = level_config;
    levels_.push_back(std::move(level));
  }
  select_stats_.level_hits.assign(levels_.size(), 0);
  select_stats_.level_points_scanned.assign(levels_.size(), 0);
}

std::size_t LongTermStore::sync_from(const TimeSeriesStore& hot) {
  std::lock_guard lock(mu_);
  std::size_t copied = 0;
  for (const auto& series : hot.series_since(sync_cursor_ + 1)) {
    for (const auto& sample : series.samples) {
      if (raw_.append(series.labels, sample.t, sample.v)) ++copied;
    }
  }
  if (auto max_t = raw_.max_time()) sync_cursor_ = *max_t;
  return copied;
}

TimestampMs LongTermStore::align_down_all_levels(TimestampMs t) const {
  // For a nested ladder (each coarser width a multiple of the finer ones)
  // one pass floors to the coarsest boundary and the loop exits after the
  // verification sweep; for non-nested widths it walks down to the nearest
  // common boundary.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& level : levels_) {
      const int64_t res = level.config.resolution_ms;
      TimestampMs aligned = floor_div(t, res) * res;
      if (aligned != t) {
        t = aligned;
        changed = true;
      }
    }
  }
  return t;
}

void LongTermStore::compact(common::TimestampMs now) {
  std::lock_guard lock(mu_);

  // 1. Advance each level's cursor to the newest bucket boundary the
  //    synced data has fully passed and fold the raw samples in between.
  //    The replication invariant (sync_from only ever observes timestamps
  //    beyond the sync cursor) is what makes a bucket whose end the cursor
  //    passed final: no sample at or before sync_cursor_ can arrive later.
  if (sync_cursor_ >= 0) {
    for (auto& level : levels_) {
      const int64_t res = level.config.resolution_ms;
      TimestampMs target = floor_div(sync_cursor_, res) * res;
      if (level.cursor_ms != INT64_MIN && target <= level.cursor_ms) continue;
      TimestampMs from =
          level.cursor_ms == INT64_MIN ? INT64_MIN : level.cursor_ms + 1;
      for (const auto& view : raw_.select({}, from, target)) {
        auto& series = level.series[view.labels];
        AggBucket bucket;
        bool open = false;
        for (const auto& sample : view.samples()) {
          TimestampMs end = agg_bucket_end(sample.t, res);
          if (open && end != bucket.t) {
            if (series.append(bucket)) ++level.num_buckets;
            open = false;
          }
          if (!open) {
            bucket = open_bucket(end);
            open = true;
          }
          fold_sample(bucket, sample.t, sample.v);
        }
        if (open && series.append(bucket)) ++level.num_buckets;
      }
      level.cursor_ms = target;
      ++level.version;
    }
  }

  // 2. Purge raw data past the downsample horizon, aligned down to a
  //    boundary every level has both reached and can represent — so the
  //    finest level's last-per-bucket synthesis seamlessly takes over as
  //    the history select() serves.
  TimestampMs boundary = now - config_.downsample_after_ms;
  for (const auto& level : levels_) {
    if (level.cursor_ms == INT64_MIN) {
      boundary = INT64_MIN;
      break;
    }
    boundary = std::min(boundary, level.cursor_ms);
  }
  if (boundary != INT64_MIN) boundary = align_down_all_levels(boundary);
  if (boundary != INT64_MIN &&
      (raw_purged_end_ == INT64_MIN || boundary > raw_purged_end_)) {
    raw_.purge_before(boundary + 1);  // keep only t > boundary: a sample at
                                      // exactly the boundary lives in the
                                      // bucket ending there, not in raw
    raw_purged_end_ = boundary;
  }

  // 3. Per-level retention: drop buckets whose end is older than the
  //    horizon. purged_end_ms only advances when something was actually
  //    dropped — an untouched empty span still has exact (vacuous)
  //    coverage.
  for (auto& level : levels_) {
    if (level.config.retention_ms <= 0) continue;
    TimestampMs keep_from = now - level.config.retention_ms;
    std::size_t dropped = 0;
    for (auto it = level.series.begin(); it != level.series.end();) {
      dropped += it->second.drop_before(keep_from);
      if (it->second.empty()) {
        it = level.series.erase(it);
      } else {
        ++it;
      }
    }
    if (dropped > 0) {
      level.num_buckets -= dropped;
      level.purged_end_ms = std::max(level.purged_end_ms, keep_from - 1);
      ++level.version;
    }
  }
}

std::vector<SeriesView> LongTermStore::select(
    const std::vector<LabelMatcher>& matchers, TimestampMs min_t,
    TimestampMs max_t) const {
  std::lock_guard lock(mu_);
  ++select_stats_.raw_selects;

  // History the raw side no longer covers, synthesised from the finest
  // aggregate level as one last-sample-per-bucket point each — the same
  // shape the old single-level downsample produced, including a trailing
  // staleness marker when the bucket ended with one.
  std::map<Labels, SeriesView> merged;
  if (!levels_.empty() && raw_purged_end_ != INT64_MIN && min_t <= max_t) {
    const AggLevel& finest = levels_.front();
    const int64_t res = finest.config.resolution_ms;
    TimestampMs hi_end = std::min(raw_purged_end_, agg_bucket_end(max_t, res));
    for (const auto& [labels, series] : finest.series) {
      if (!matches_all(matchers, labels)) continue;
      std::vector<SamplePoint> points;
      for (const auto& bucket : series.buckets_between(min_t, hi_end)) {
        SamplePoint point;
        if (bucket.marker_t != 0) {
          point = {bucket.marker_t, metrics::stale_marker()};
        } else if (bucket.count > 0) {
          point = {bucket.last_t, bucket.last_v};
        } else {
          continue;
        }
        if (point.t < min_t || point.t > max_t) continue;
        points.push_back(point);
      }
      if (points.empty()) continue;
      Labels key = labels;
      merged.emplace(std::move(key),
                     SeriesView::owned(labels, std::move(points)));
    }
  }

  std::vector<SeriesView> fine = raw_.select(matchers, min_t, max_t);

  // Merge per label set: synthesised history followed by the raw tail.
  // Keyed by the full label set, not its fingerprint — two distinct label
  // sets whose fingerprints collide must stay distinct series. Series
  // present on only one side keep their views. Straddling series are
  // spliced slice-wise: raw is only purged up to a boundary the ladder has
  // fully aggregated, so every raw slice is strictly newer than the
  // history's end and rides along still-compressed — no materialisation,
  // no decode. The decode-and-filter branch below only fires if that
  // invariant is ever broken.
  std::size_t spliced_count = 0;
  for (auto& view : fine) {
    auto it = merged.find(view.labels);
    if (it == merged.end()) {
      Labels key = view.labels;
      merged.emplace(std::move(key), std::move(view));
      continue;
    }
    ++spliced_count;
    SeriesView& dst = it->second;
    TimestampMs newest = dst.slices.back().max_time();
    dst.slices.reserve(dst.slices.size() + view.slices.size());
    for (auto& slice : view.slices) {
      if (slice.min_time() > newest) {
        newest = slice.max_time();
        dst.slices.push_back(std::move(slice));
        continue;
      }
      // Overlap: decode (if needed) and keep only strictly newer points.
      std::vector<SamplePoint> points;
      if (slice.chunk) {
        auto decoded = slice.chunk->decode();
        if (decoded) points = std::move(*decoded);
      } else {
        points = std::move(slice.points);
      }
      std::vector<SamplePoint> kept;
      for (const auto& sample : points) {
        if (sample.t > newest) kept.push_back(sample);
      }
      select_stats_.spliced_points_copied += kept.size();
      if (!kept.empty()) {
        newest = kept.back().t;
        dst.slices.push_back(ChunkSlice{nullptr, std::move(kept)});
      }
    }
  }
  select_stats_.spliced_views += spliced_count;
  select_stats_.chunk_backed_views += merged.size() - spliced_count;
  std::vector<SeriesView> out;
  out.reserve(merged.size());
  // Map iteration is ordered by labels, so output stays deterministic.
  for (auto& [key, view] : merged) {
    select_stats_.raw_points_scanned += view.sample_count();
    out.push_back(std::move(view));
  }
  return out;
}

std::vector<int64_t> LongTermStore::agg_resolutions() const {
  std::vector<int64_t> out;
  out.reserve(levels_.size());
  for (const auto& level : levels_) out.push_back(level.config.resolution_ms);
  return out;
}

std::optional<std::vector<AggSeriesView>> LongTermStore::select_agg(
    int64_t resolution_ms, const std::vector<LabelMatcher>& matchers,
    TimestampMs min_end, TimestampMs max_end) const {
  std::lock_guard lock(mu_);
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    const AggLevel& level = levels_[i];
    if (level.config.resolution_ms != resolution_ms) continue;
    // Exact coverage only: complete on the right (cursor has passed the
    // last requested bucket) and unpurged on the left.
    if (level.cursor_ms == INT64_MIN || max_end > level.cursor_ms ||
        min_end <= level.purged_end_ms) {
      break;
    }
    std::vector<AggSeriesView> out;
    std::size_t rows = 0;
    for (const auto& [labels, series] : level.series) {
      if (!matches_all(matchers, labels)) continue;
      auto buckets = series.buckets_between(min_end, max_end);
      if (buckets.empty()) continue;
      rows += buckets.size();
      out.push_back({labels, std::move(buckets)});
    }
    ++select_stats_.level_hits[i];
    select_stats_.level_points_scanned[i] += rows;
    return out;
  }
  ++select_stats_.agg_rejects;
  return std::nullopt;
}

LongTermSelectStats LongTermStore::select_stats() const {
  std::lock_guard lock(mu_);
  return select_stats_;
}

std::vector<uint64_t> LongTermStore::version_signature() const {
  std::vector<uint64_t> out = raw_.version_signature();
  std::lock_guard lock(mu_);
  out.reserve(out.size() + levels_.size());
  for (const auto& level : levels_) out.push_back(level.version);
  return out;
}

StorageStats LongTermStore::downsampled_stats() const {
  std::lock_guard lock(mu_);
  StorageStats out;
  for (const auto& level : levels_) {
    out.num_series = std::max(out.num_series, level.series.size());
    out.num_samples += level.num_buckets;
    for (const auto& [labels, series] : level.series) {
      out.approx_bytes += series.approx_bytes();
    }
  }
  return out;
}

StorageStats LongTermStore::stats() const {
  StorageStats raw = raw_.stats();
  StorageStats coarse = downsampled_stats();
  StorageStats out;
  out.num_series = std::max(raw.num_series, coarse.num_series);
  out.num_samples = raw.num_samples + coarse.num_samples;
  out.approx_bytes = raw.approx_bytes + coarse.approx_bytes;
  // The symbol table is process-global: take it once, don't sum it.
  out.symbol_bytes = raw.symbol_bytes;
  return out;
}

}  // namespace ceems::tsdb
