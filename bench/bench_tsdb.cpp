// TSDB microbenchmarks: ingestion throughput, selector evaluation, and the
// PromQL operations the CEEMS pipeline leans on (rate over a window, Eq. 1
// style group_left joins, sum by aggregation). These underpin E4's scaling
// headroom numbers.
//
// The *_mt benchmarks exercise the sharded store and the parallel range
// evaluator at 1/4/8 threads — the scaling evidence for the lock-striped
// design. Run without arguments the binary writes its results to
// BENCH_tsdb.json (JSON reporter) for the perf trajectory; any explicit
// --benchmark_out flag overrides that.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <set>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/threadpool.h"
#include "metrics/text_format.h"
#include "tsdb/longterm.h"
#include "tsdb/promql_eval.h"
#include "tsdb/scrape.h"

using namespace ceems;
using tsdb::TimeSeriesStore;

// Global allocation counter: every operator new in the binary bumps it, so
// steady-state ingest can be characterised as allocations-per-sample. The
// chunked head buffer should amortise to ~0 allocations per append.
static std::atomic<uint64_t> g_alloc_count{0};
static std::atomic<uint64_t> g_alloc_bytes{0};

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

// Builds a store with `hosts`×`series_per_host` series × `samples` each.
std::shared_ptr<TimeSeriesStore> make_store(int hosts, int series_per_host,
                                            int samples) {
  auto store = std::make_shared<TimeSeriesStore>();
  for (int h = 0; h < hosts; ++h) {
    for (int s = 0; s < series_per_host; ++s) {
      metrics::Labels labels =
          metrics::Labels{{"hostname", "n" + std::to_string(h)},
                          {"uuid", std::to_string(s)}}
              .with_name("m");
      for (int i = 0; i < samples; ++i) {
        store->append(labels, i * 30000, i * 10.0);
      }
    }
  }
  return store;
}

void BM_append(benchmark::State& state) {
  TimeSeriesStore store;
  common::Rng rng(1);
  std::vector<metrics::Labels> labels;
  for (int s = 0; s < 1000; ++s) {
    labels.push_back(metrics::Labels{{"uuid", std::to_string(s)}}
                         .with_name("m"));
  }
  int64_t t = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    store.append(labels[i % labels.size()], t, 1.0);
    if (++i % labels.size() == 0) t += 30000;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_append);

void BM_select_by_equality(benchmark::State& state) {
  auto store = make_store(static_cast<int>(state.range(0)), 20, 120);
  for (auto _ : state) {
    auto result = store->select(
        {{"hostname", metrics::LabelMatcher::Op::kEq, "n0"}}, 0,
        120 * 30000);
    benchmark::DoNotOptimize(result);
  }
  state.counters["total_series"] = static_cast<double>(state.range(0) * 20);
}
BENCHMARK(BM_select_by_equality)->Arg(10)->Arg(100)->Arg(1000);

void BM_rate_over_window(benchmark::State& state) {
  auto store = make_store(static_cast<int>(state.range(0)), 10, 120);
  tsdb::promql::Engine engine;
  auto expr = tsdb::promql::parse("sum by (hostname) (rate(m[2m]))");
  for (auto _ : state) {
    auto value = engine.eval(*store, expr, 120 * 30000);
    benchmark::DoNotOptimize(value);
  }
  state.counters["series"] = static_cast<double>(state.range(0) * 10);
}
BENCHMARK(BM_rate_over_window)->Arg(10)->Arg(100)->Arg(400);

void BM_group_left_join(benchmark::State& state) {
  // The Eq. 1 shape: per-uuid series joined onto per-host series.
  auto store = std::make_shared<TimeSeriesStore>();
  int hosts = static_cast<int>(state.range(0));
  for (int h = 0; h < hosts; ++h) {
    std::string host = "n" + std::to_string(h);
    store->append(metrics::Labels{{"hostname", host}}.with_name("node_w"),
                  30000, 300.0);
    for (int u = 0; u < 8; ++u) {
      store->append(metrics::Labels{{"hostname", host},
                                    {"uuid", std::to_string(u)}}
                        .with_name("job_share"),
                    30000, 0.125);
    }
  }
  tsdb::promql::Engine engine;
  auto expr = tsdb::promql::parse(
      "job_share * on(hostname) group_left() node_w");
  for (auto _ : state) {
    auto value = engine.eval(*store, expr, 30000);
    benchmark::DoNotOptimize(value);
  }
  state.counters["result_samples"] = static_cast<double>(hosts * 8);
}
BENCHMARK(BM_group_left_join)->Arg(10)->Arg(100)->Arg(1000);

void BM_range_query(benchmark::State& state) {
  auto store = make_store(20, 10, 240);  // 2 h of data
  tsdb::promql::Engine engine;
  auto expr = tsdb::promql::parse("sum by (hostname) (rate(m[2m]))");
  for (auto _ : state) {
    auto matrix = engine.eval_range(*store, expr, 0, 240 * 30000, 60000);
    benchmark::DoNotOptimize(matrix);
  }
}
BENCHMARK(BM_range_query);

// ---------- streaming range-query sweep (steps x window) ----------

// The decode-work claim behind the streaming evaluator, measured: the
// per-step path re-selects and re-decodes chunks at every step, so its
// decode count scales with steps x window; the streaming path selects the
// full span once and decodes each chunk at most once per query, so its
// count is flat in both. decodes_per_query makes that visible in
// BENCH_tsdb.json next to ns/op.
void run_range_query_sweep(benchmark::State& state, bool streaming) {
  auto store = make_store(10, 10, 480);  // 100 series x 4 h at 30 s
  int64_t steps = state.range(0);
  int64_t window_min = state.range(1);
  tsdb::promql::EngineOptions options;
  options.query_cache_capacity = 0;
  options.streaming_range = streaming;
  tsdb::promql::Engine engine(options);
  auto expr = tsdb::promql::parse("sum by (hostname) (rate(m[" +
                                  std::to_string(window_min) + "m]))");
  const int64_t end = 480 * 30000;
  const int64_t step_ms = end / steps;
  uint64_t decodes_before = tsdb::chunk_decode_count();
  for (auto _ : state) {
    auto matrix = engine.eval_range(*store, expr, 0, end, step_ms);
    benchmark::DoNotOptimize(matrix);
  }
  state.counters["decodes_per_query"] =
      static_cast<double>(tsdb::chunk_decode_count() - decodes_before) /
      static_cast<double>(state.iterations());
  state.counters["steps"] = static_cast<double>(steps);
  state.counters["window_min"] = static_cast<double>(window_min);
}

void BM_streaming_range_query(benchmark::State& state) {
  run_range_query_sweep(state, /*streaming=*/true);
}

void BM_perstep_range_query(benchmark::State& state) {
  run_range_query_sweep(state, /*streaming=*/false);
}

void range_sweep_args(benchmark::internal::Benchmark* bench) {
  for (int64_t steps : {60, 240}) {
    for (int64_t window_min : {1, 5, 15}) {
      bench->Args({steps, window_min});
    }
  }
}
BENCHMARK(BM_streaming_range_query)->Apply(range_sweep_args);
BENCHMARK(BM_perstep_range_query)->Apply(range_sweep_args);

// ---------- long-range aligned-window sweep (resolution ladder) ----------

// The points-scanned claim behind the resolution-aware planner, measured:
// a ladder-backed LongTermStore answers aligned whole-window aggregations
// from pre-aggregated bucket columns, so the rows it touches per query
// shrink by the cadence-to-resolution ratio (15 s raw → 5 m buckets = 20x,
// → 1 h buckets = 240x) instead of scanning every raw sample in the span.
// points_scanned_per_query carries the number into BENCH_tsdb.json per
// resolution level; tools/bench_guard.py diffs it against the committed
// baseline so a planner regression (silent raw fallback) fails CI.
constexpr int64_t kLongRangeCadenceMs = 15000;  // 15 s scrape
constexpr int kLongRangeSeries = 20;
constexpr int64_t kLongRangeSpanMs = 24 * 3600 * int64_t{1000};  // 24 h

std::shared_ptr<tsdb::LongTermStore> make_ladder_store() {
  tsdb::LongTermConfig config;
  // Keep raw forever so the planner-off baseline really scans raw samples.
  config.downsample_after_ms = 365 * 24 * 3600 * int64_t{1000};
  config.levels = {{5 * 60 * 1000, 0}, {60 * 60 * 1000, 0}};
  auto lt = std::make_shared<tsdb::LongTermStore>(config);
  TimeSeriesStore hot;
  for (int s = 0; s < kLongRangeSeries; ++s) {
    metrics::Labels labels =
        metrics::Labels{{"hostname", "n" + std::to_string(s % 4)},
                        {"uuid", std::to_string(s)}}
            .with_name("m");
    for (int64_t t = kLongRangeCadenceMs; t <= kLongRangeSpanMs;
         t += kLongRangeCadenceMs) {
      hot.append(labels, t, 100.0 + static_cast<double>((t / 15000) % 40));
    }
  }
  lt->sync_from(hot);
  lt->compact(kLongRangeSpanMs);
  return lt;
}

uint64_t ladder_points_scanned(const tsdb::LongTermStore& lt) {
  tsdb::LongTermSelectStats stats = lt.select_stats();
  uint64_t total = stats.raw_points_scanned;
  for (uint64_t points : stats.level_points_scanned) total += points;
  return total;
}

// Arg 0: resolution-aware planner on/off. Arg 1: window minutes — the step
// equals the window (report cadence), so 90 m windows land on the 5 m
// level (90 % 60 != 0) and 6 h windows on the 1 h level.
void BM_longrange_aligned_window(benchmark::State& state) {
  bool aware = state.range(0) != 0;
  int64_t window_min = state.range(1);
  auto lt = make_ladder_store();
  tsdb::promql::EngineOptions options;
  options.query_cache_capacity = 0;
  options.resolution_aware = aware;
  tsdb::promql::Engine engine(options);
  auto expr = tsdb::promql::parse("sum by (hostname) (avg_over_time(m[" +
                                  std::to_string(window_min) + "m]))");
  const int64_t window_ms = window_min * 60000;
  const int64_t start = kLongRangeSpanMs / 2;
  uint64_t points_before = ladder_points_scanned(*lt);
  for (auto _ : state) {
    auto matrix =
        engine.eval_range(*lt, expr, start, kLongRangeSpanMs, window_ms);
    benchmark::DoNotOptimize(matrix);
  }
  state.counters["points_scanned_per_query"] =
      static_cast<double>(ladder_points_scanned(*lt) - points_before) /
      static_cast<double>(state.iterations());
  state.counters["window_min"] = static_cast<double>(window_min);
  state.counters["resolution_aware"] = aware ? 1.0 : 0.0;
}

BENCHMARK(BM_longrange_aligned_window)
    ->Args({0, 90})
    ->Args({1, 90})
    ->Args({0, 360})
    ->Args({1, 360});

void BM_purge(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto store = make_store(50, 20, 120);
    state.ResumeTiming();
    benchmark::DoNotOptimize(store->purge_before(60 * 30000));
  }
}
BENCHMARK(BM_purge);

// ---------- concurrency benchmarks (sharded store) ----------

// Reference reproduction of the pre-sharding seed design: one shared_mutex
// in front of a single series map. Kept here (bench-only) so every
// BENCH_tsdb.json carries the single-lock baseline the sharded numbers are
// judged against, independent of which machine ran it.
class SingleLockStore {
 public:
  bool append(const metrics::Labels& labels, int64_t t, double v) {
    uint64_t fingerprint = labels.fingerprint();
    std::unique_lock lock(mu_);
    auto it = series_.find(fingerprint);
    if (it == series_.end()) {
      it = series_.emplace(fingerprint, Entry{labels, {}}).first;
    }
    Entry& entry = it->second;
    if (!entry.samples.empty() && t < entry.samples.back().t) return false;
    if (!entry.samples.empty() && t == entry.samples.back().t) {
      entry.samples.back().v = v;
      return true;
    }
    entry.samples.push_back({t, v});
    return true;
  }

 private:
  struct Entry {
    metrics::Labels labels;
    std::vector<tsdb::SamplePoint> samples;
  };
  std::shared_mutex mu_;
  std::unordered_map<uint64_t, Entry> series_;
};

// Same workload as BM_concurrent_ingest but through the single global
// lock — the seed's scaling curve.
void BM_concurrent_ingest_single_lock(benchmark::State& state) {
  static std::shared_ptr<SingleLockStore> store;
  if (state.thread_index() == 0) store = std::make_shared<SingleLockStore>();

  std::vector<metrics::Labels> labels;
  for (int s = 0; s < 256; ++s) {
    labels.push_back(
        metrics::Labels{{"thread", "t" + std::to_string(state.thread_index())},
                        {"uuid", std::to_string(s)}}
            .with_name("m"));
  }
  int64_t t = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    store->append(labels[i % labels.size()], t, 1.0);
    if (++i % labels.size() == 0) t += 30000;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  if (state.thread_index() == 0) store.reset();
}
BENCHMARK(BM_concurrent_ingest_single_lock)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Ingest throughput with N writer threads appending to disjoint series —
// the scrape-sweep shape: every exporter produces its own label sets.
// Aggregate items/s across threads is the number to watch: with the
// single-mutex seed it stayed flat from 1 to 8 threads; the sharded store
// must scale it ≥2x at 8 threads.
void BM_concurrent_ingest(benchmark::State& state) {
  static std::shared_ptr<TimeSeriesStore> store;
  if (state.thread_index() == 0) store = std::make_shared<TimeSeriesStore>();

  std::vector<metrics::Labels> labels;
  for (int s = 0; s < 256; ++s) {
    labels.push_back(
        metrics::Labels{{"thread", "t" + std::to_string(state.thread_index())},
                        {"uuid", std::to_string(s)}}
            .with_name("m"));
  }
  int64_t t = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    store->append(labels[i % labels.size()], t, 1.0);
    if (++i % labels.size() == 0) t += 30000;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  if (state.thread_index() == 0) store.reset();
}
BENCHMARK(BM_concurrent_ingest)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Batched scrape-style ingest: whole sweeps through append_all, which
// groups samples by shard and takes each shard lock once per batch.
void BM_concurrent_ingest_batched(benchmark::State& state) {
  static std::shared_ptr<TimeSeriesStore> store;
  if (state.thread_index() == 0) store = std::make_shared<TimeSeriesStore>();

  std::vector<metrics::Sample> batch;
  for (int s = 0; s < 256; ++s) {
    batch.push_back(
        {metrics::Labels{{"thread", "t" + std::to_string(state.thread_index())},
                         {"uuid", std::to_string(s)}}
             .with_name("m"),
         0, 1.0});
  }
  int64_t t = 0;
  for (auto _ : state) {
    t += 30000;
    for (auto& sample : batch) sample.timestamp_ms = t;
    benchmark::DoNotOptimize(store->append_all(batch));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch.size()));
  if (state.thread_index() == 0) store.reset();
}
BENCHMARK(BM_concurrent_ingest_batched)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Range-query evaluation with the step grid parallelised across an
// N-thread pool (arg = pool size; 1 = the serial path).
void BM_parallel_range_query(benchmark::State& state) {
  auto store = make_store(20, 10, 240);  // 2 h of data
  int threads = static_cast<int>(state.range(0));
  tsdb::promql::EngineOptions options;
  options.query_cache_capacity = 0;  // measure evaluation, not the cache
  if (threads > 1) {
    options.pool = std::make_shared<common::ThreadPool>(
        static_cast<std::size_t>(threads), "bench-eval");
  }
  tsdb::promql::Engine engine(options);
  auto expr = tsdb::promql::parse("sum by (hostname) (rate(m[2m]))");
  for (auto _ : state) {
    auto matrix = engine.eval_range(*store, expr, 0, 240 * 30000, 60000);
    benchmark::DoNotOptimize(matrix);
  }
  state.counters["eval_threads"] = threads;
}
BENCHMARK(BM_parallel_range_query)->Arg(1)->Arg(4)->Arg(8);

// Concurrent range queries against one store: the dashboard/LB fan-in
// shape. All threads share ONE engine — and therefore one versioned
// query cache — and the query mix includes regex selectors, so both
// lock-striped caches (query-result LRU, compiled-regex LRU) sit on the
// measured path under contention. The `qps` counter is the aggregate
// query rate across threads; it is what the striping buys back.
void BM_concurrent_range_queries(benchmark::State& state) {
  static std::shared_ptr<TimeSeriesStore> store;
  static std::unique_ptr<tsdb::promql::Engine> engine;
  if (state.thread_index() == 0) {
    store = make_store(20, 10, 240);
    tsdb::promql::EngineOptions options;
    options.query_cache_capacity = 64;
    engine = std::make_unique<tsdb::promql::Engine>(options);
  }
  // A dashboard-like panel set: every thread rotates through all of it,
  // offset by thread index so threads touch different cache stripes at
  // any instant.
  static const char* kQueries[] = {
      "sum by (hostname) (rate(m[2m]))",
      "sum by (hostname) (rate(m{hostname=~\"n1.*\"}[2m]))",
      "avg by (hostname) (m{hostname=~\"n[0-9]\",uuid=~\"[0-4]\"})",
      "sum(m)",
  };
  constexpr std::size_t kQueryCount = sizeof(kQueries) / sizeof(kQueries[0]);
  std::size_t i = static_cast<std::size_t>(state.thread_index());
  for (auto _ : state) {
    auto matrix = engine->eval_range(*store, kQueries[i++ % kQueryCount], 0,
                                     240 * 30000, 60000);
    benchmark::DoNotOptimize(matrix);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  if (state.thread_index() == 0) {
    engine.reset();
    store.reset();
  }
}
BENCHMARK(BM_concurrent_range_queries)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// ---------- storage-footprint benchmarks (chunked store) ----------

// A day-long regular scrape per series: the shape sealed Gorilla chunks
// are built for. Timed section is stats() (the accounting walk); the
// counters carry the storage-efficiency numbers.
void BM_storage_bytes_per_sample(benchmark::State& state) {
  int series = static_cast<int>(state.range(0));
  auto store = std::make_shared<TimeSeriesStore>();
  // Symbol footprint of THIS workload, costed with SymbolTable's own
  // per-entry accounting. The process-global table also holds whatever
  // strings earlier benchmarks in the process interned, so charging
  // stats.symbol_bytes here would make the counter depend on
  // --benchmark_filter (full run vs the CI smoke subset).
  std::set<std::string> distinct_symbols;
  for (int s = 0; s < series; ++s) {
    metrics::Labels labels =
        metrics::Labels{{"hostname", "n" + std::to_string(s % 16)},
                        {"uuid", std::to_string(s)}}
            .with_name("m");
    for (const auto& [name, value] : labels.pairs()) {
      distinct_symbols.insert(name);
      distinct_symbols.insert(value);
    }
    for (int i = 0; i < 2880; ++i) {  // 24 h at 30 s
      store->append(labels, int64_t{i} * 30000, 100.0 + (i % 60) * 0.5);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->stats());
  }
  auto stats = store->stats();
  std::size_t symbol_bytes =
      distinct_symbols.size() * (sizeof(std::string) +
                                 sizeof(std::string_view) + sizeof(uint32_t) +
                                 2 * sizeof(void*));
  for (const auto& sym : distinct_symbols) symbol_bytes += sym.size();
  double bytes_per_sample =
      static_cast<double>(stats.approx_bytes + symbol_bytes) /
      static_cast<double>(stats.num_samples);
  state.counters["bytes_per_sample"] = bytes_per_sample;
  state.counters["raw_bytes_per_sample"] =
      static_cast<double>(sizeof(tsdb::SamplePoint));
  state.counters["compression_ratio"] =
      static_cast<double>(sizeof(tsdb::SamplePoint)) / bytes_per_sample;
}
BENCHMARK(BM_storage_bytes_per_sample)->Arg(10)->Arg(100);

// Steady-state ingest allocations: once series exist and head buffers have
// grown, the Labels overload of append costs one small allocation (the
// interned symbol vector used as the lookup key); the sample itself lands
// in the pre-grown head buffer with no heap traffic.
void BM_ingest_allocations(benchmark::State& state) {
  TimeSeriesStore store;
  std::vector<metrics::Labels> labels;
  for (int s = 0; s < 256; ++s) {
    labels.push_back(metrics::Labels{{"uuid", std::to_string(s)}}
                         .with_name("m"));
  }
  // Warm: create the series and grow the head buffers once.
  for (int i = 0; i < 8; ++i) {
    for (std::size_t s = 0; s < labels.size(); ++s) {
      store.append(labels[s], int64_t{i} * 30000, 1.0);
    }
  }
  int64_t t = 8 * 30000;
  std::size_t i = 0;
  uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  for (auto _ : state) {
    store.append(labels[i % labels.size()], t, 1.0);
    if (++i % labels.size() == 0) t += 30000;
  }
  uint64_t allocs = g_alloc_count.load(std::memory_order_relaxed) -
                    allocs_before;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["allocs_per_sample"] =
      static_cast<double>(allocs) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_ingest_allocations);

// ---------------------------------------------------------------------------
// End-to-end scrape→append path: exposition text in, sealed chunks out.
// ---------------------------------------------------------------------------

// A realistic exporter body: `series` gauges across a handful of metric
// families, stable label blocks, values churning per wave so the chunk
// encoder sees real deltas. ~70 bytes/line, matching the CEEMS exporters.
std::string exposition_body(int target, int series, int wave) {
  std::string body;
  body.reserve(static_cast<std::size_t>(series) * 80);
  body += "# HELP ceems_job_power_watts per-job power draw\n";
  body += "# TYPE ceems_job_power_watts gauge\n";
  static const char* kFamilies[] = {
      "ceems_job_power_watts", "ceems_job_cpu_seconds_total",
      "ceems_job_memory_bytes", "ceems_job_gpu_util"};
  for (int s = 0; s < series; ++s) {
    body += kFamilies[s % 4];
    body += "{uuid=\"job-";
    body += std::to_string(target * 10000 + s / 4);
    body += "\",cgroup=\"slice";
    body += std::to_string(s % 7);
    body += "\"} ";
    body += std::to_string(100.0 * (target + 1) +
                           static_cast<double>((s * 13 + wave * 7) % 997));
    body += '\n';
  }
  return body;
}

struct ScrapeE2eFixture {
  static constexpr int kTargets = 8;
  static constexpr int kSeries = 400;
  static constexpr int kWaves = 16;

  std::vector<std::vector<std::string>> bodies;  // [target][wave]
  std::vector<metrics::Labels> target_labels;
  std::shared_ptr<std::atomic<int>> wave;

  ScrapeE2eFixture() : wave(std::make_shared<std::atomic<int>>(0)) {
    bodies.resize(kTargets);
    for (int t = 0; t < kTargets; ++t) {
      for (int w = 0; w < kWaves; ++w) {
        bodies[t].push_back(exposition_body(t, kSeries, w));
      }
      target_labels.push_back(
          metrics::Labels{{"instance", "bench-node-" + std::to_string(t)},
                          {"cluster", "bench"}});
    }
  }
};

// The production path: ScrapeManager's zero-copy parse (string_view line
// walk + per-target symbol-resolution cache) feeding append_refs. After
// warmup every line resolves through the cache — no label allocations,
// no symbol-table lookups — so the only steady-state heap traffic is the
// one body string per target per sweep and occasional chunk seals.
void BM_scrape_ingest_e2e(benchmark::State& state) {
  ScrapeE2eFixture fix;
  auto clock = common::make_sim_clock(0);
  auto store = std::make_shared<TimeSeriesStore>();
  tsdb::ScrapeConfig config;
  config.parallelism = 4;
  tsdb::ScrapeManager scraper(store, clock, config);
  for (int t = 0; t < ScrapeE2eFixture::kTargets; ++t) {
    tsdb::ScrapeTarget target;
    target.labels = fix.target_labels[t];
    auto bodies = &fix.bodies[static_cast<std::size_t>(t)];
    auto wave = fix.wave;
    target.local_fetch = [bodies, wave] {
      return (*bodies)[static_cast<std::size_t>(
          wave->load(std::memory_order_relaxed) % ScrapeE2eFixture::kWaves)];
    };
    scraper.add_target(std::move(target));
  }
  auto sweep = [&] {
    clock->advance(30000);
    fix.wave->fetch_add(1, std::memory_order_relaxed);
    return scraper.scrape_all_once();
  };
  // Warm: series caches, head buffers, sweep pool.
  for (int i = 0; i < 8; ++i) sweep();

  uint64_t samples = 0;
  uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  for (auto _ : state) {
    samples += sweep().samples_ingested;
  }
  uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  state.SetItemsProcessed(static_cast<int64_t>(samples));
  state.counters["samples_per_second"] = benchmark::Counter(
      static_cast<double>(samples), benchmark::Counter::kIsRate);
  state.counters["allocs_per_sample"] =
      samples ? static_cast<double>(allocs) / static_cast<double>(samples)
              : 0.0;
}
BENCHMARK(BM_scrape_ingest_e2e)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The pre-zero-copy ingest path, kept as the comparison baseline: strict
// parse_exposition into owned Samples, per-sample target-label merge,
// append_all. BM_scrape_ingest_e2e's samples_per_second over this one is
// the headline win of the cached-resolution write path.
void BM_scrape_ingest_e2e_legacy(benchmark::State& state) {
  ScrapeE2eFixture fix;
  auto store = std::make_shared<TimeSeriesStore>();
  auto& table = metrics::SymbolTable::global();
  std::vector<std::vector<metrics::InternedLabels::SymbolPair>> syms(
      ScrapeE2eFixture::kTargets);
  for (int t = 0; t < ScrapeE2eFixture::kTargets; ++t) {
    for (const auto& [name, value] : fix.target_labels[t].pairs()) {
      syms[t].emplace_back(table.intern(name), table.intern(value));
    }
  }
  auto sweep = [&](int64_t now, int wave) {
    uint64_t ingested = 0;
    for (int t = 0; t < ScrapeE2eFixture::kTargets; ++t) {
      auto parsed = metrics::parse_exposition(
          fix.bodies[t][wave % ScrapeE2eFixture::kWaves]);
      std::vector<metrics::Sample> batch;
      batch.reserve(parsed.samples.size());
      for (auto& sample : parsed.samples) {
        metrics::InternedLabels merged = std::move(sample.labels);
        for (const auto& [name_sym, value_sym] : syms[t]) {
          merged = merged.with_symbols(name_sym, value_sym);
        }
        batch.push_back({std::move(merged), now, sample.value});
      }
      ingested += store->append_all(batch);
    }
    return ingested;
  };
  int64_t now = 0;
  int wave = 0;
  for (int i = 0; i < 8; ++i) sweep(now += 30000, wave++);

  uint64_t samples = 0;
  for (auto _ : state) {
    samples += sweep(now += 30000, wave++);
  }
  state.SetItemsProcessed(static_cast<int64_t>(samples));
  state.counters["samples_per_second"] = benchmark::Counter(
      static_cast<double>(samples), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_scrape_ingest_e2e_legacy)->Unit(benchmark::kMillisecond);

// Hit path of the (query, start, end, step) result cache.
void BM_cached_range_query(benchmark::State& state) {
  auto store = make_store(20, 10, 240);
  tsdb::promql::EngineOptions options;
  options.query_cache_capacity = 16;
  tsdb::promql::Engine engine(options);
  const std::string query = "sum by (hostname) (rate(m[2m]))";
  engine.eval_range(*store, query, 0, 240 * 30000, 60000);  // warm
  for (auto _ : state) {
    auto matrix = engine.eval_range(*store, query, 0, 240 * 30000, 60000);
    benchmark::DoNotOptimize(matrix);
  }
  state.counters["hits"] =
      static_cast<double>(engine.cache_stats().hits);
}
BENCHMARK(BM_cached_range_query);

// Direct measurement of the storage-model numbers the chunked pipeline is
// judged on, written to BENCH_storage.json on every run (fast enough for
// the CI smoke job): bytes/sample vs the 16-byte raw baseline, batched
// ingest throughput, and steady-state allocations per append.
void write_storage_report() {
  using clock = std::chrono::steady_clock;

  // Footprint: 100 series × 24 h of regular 30 s gauge samples.
  auto store = std::make_shared<TimeSeriesStore>();
  std::vector<metrics::Labels> labels;
  for (int s = 0; s < 100; ++s) {
    labels.push_back(
        metrics::Labels{{"hostname", "n" + std::to_string(s % 16)},
                        {"uuid", std::to_string(s)}}
            .with_name("m"));
  }
  for (int i = 0; i < 2880; ++i) {
    for (const auto& l : labels) {
      store->append(l, int64_t{i} * 30000, 100.0 + (i % 60) * 0.5);
    }
  }
  auto stats = store->stats();
  // Per-store footprint plus the process-global symbol table, once.
  double bytes_per_sample =
      static_cast<double>(stats.approx_bytes + stats.symbol_bytes) /
      static_cast<double>(stats.num_samples);
  double raw = static_cast<double>(sizeof(tsdb::SamplePoint));

  // Ingest throughput: scrape-sweep batches through append_all.
  TimeSeriesStore ingest;
  std::vector<metrics::Sample> batch;
  for (int s = 0; s < 256; ++s) {
    batch.push_back(
        {metrics::Labels{{"uuid", std::to_string(s)}}.with_name("m"), 0,
         1.0});
  }
  constexpr int kSweeps = 2000;
  auto start = clock::now();
  for (int i = 0; i < kSweeps; ++i) {
    for (auto& sample : batch) sample.timestamp_ms = int64_t{i} * 30000;
    ingest.append_all(batch);
  }
  double seconds = std::chrono::duration<double>(clock::now() - start).count();
  double samples_per_sec = kSweeps * static_cast<double>(batch.size()) /
                           seconds;

  // Steady-state allocations per single-sample append.
  std::vector<metrics::Labels> hot;
  for (int s = 0; s < 64; ++s) {
    hot.push_back(metrics::Labels{{"uuid", "a" + std::to_string(s)}}
                      .with_name("hot"));
  }
  TimeSeriesStore alloc_store;
  for (int i = 0; i < 8; ++i) {
    for (const auto& l : hot) alloc_store.append(l, int64_t{i} * 30000, 1.0);
  }
  constexpr int kAllocRounds = 4000;
  uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 8; i < 8 + kAllocRounds; ++i) {
    for (const auto& l : hot) alloc_store.append(l, int64_t{i} * 30000, 1.0);
  }
  double allocs_per_sample =
      static_cast<double>(g_alloc_count.load(std::memory_order_relaxed) -
                          allocs_before) /
      (kAllocRounds * static_cast<double>(hot.size()));

  std::FILE* f = std::fopen("BENCH_storage.json", "w");
  if (!f) return;
  std::fprintf(
      f,
      "{\n"
      "  \"workload\": \"100 series x 2880 samples, 30s interval, sawtooth "
      "gauge\",\n"
      "  \"num_samples\": %zu,\n"
      "  \"approx_bytes\": %zu,\n"
      "  \"symbol_bytes\": %zu,\n"
      "  \"bytes_per_sample\": %.3f,\n"
      "  \"raw_bytes_per_sample\": %.1f,\n"
      "  \"reduction_factor\": %.2f,\n"
      "  \"ingest_samples_per_sec\": %.0f,\n"
      "  \"ingest_allocs_per_sample\": %.4f\n"
      "}\n",
      stats.num_samples, stats.approx_bytes, stats.symbol_bytes,
      bytes_per_sample, raw,
      raw / bytes_per_sample, samples_per_sec, allocs_per_sample);
  std::fclose(f);
  std::fprintf(stderr,
               "BENCH_storage.json: %.2f bytes/sample (%.1fx reduction), "
               "%.0f samples/s ingest, %.3f allocs/sample\n",
               bytes_per_sample, raw / bytes_per_sample, samples_per_sec,
               allocs_per_sample);
}

}  // namespace

// BENCHMARK_MAIN, plus a default JSON report to BENCH_tsdb.json so every
// run leaves a perf-trajectory artifact without extra flags.
int main(int argc, char** argv) {
  // The distro-packaged benchmark library is compiled without NDEBUG, so the
  // built-in library_build_type context field always reads "debug" no matter
  // how this binary was built. Re-emit the key from this translation unit's
  // point of view: custom context is serialized after the built-in fields,
  // so JSON consumers (last key wins) see the build type of the benchmark
  // binary itself — which is the thing that makes the numbers meaningful.
#ifdef NDEBUG
  benchmark::AddCustomContext("library_build_type", "release");
#else
  benchmark::AddCustomContext("library_build_type", "debug");
#endif
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_tsdb.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_storage_report();
  return 0;
}
