#include "exporter/node_collector.h"

namespace ceems::exporter {

using metrics::Labels;
using metrics::MetricFamily;
using metrics::MetricType;

std::vector<metrics::MetricFamily> NodeCollector::collect(
    common::TimestampMs /*now*/) {
  std::vector<MetricFamily> out;

  if (auto stat = simfs::read_proc_stat(*fs_)) {
    MetricFamily cpu{"node_cpu_seconds_total",
                     "Seconds the node CPUs spent in each mode.",
                     MetricType::kCounter,
                     {}};
    // USER_HZ = 100 jiffies per second.
    auto seconds = [](int64_t jiffies) {
      return static_cast<double>(jiffies) / 100.0;
    };
    cpu.add(Labels{{"mode", "user"}}, seconds(stat->aggregate.user));
    cpu.add(Labels{{"mode", "system"}}, seconds(stat->aggregate.system));
    cpu.add(Labels{{"mode", "idle"}}, seconds(stat->aggregate.idle));
    cpu.add(Labels{{"mode", "iowait"}}, seconds(stat->aggregate.iowait));
    out.push_back(std::move(cpu));

    MetricFamily cpus{"node_cpus",
                      "Logical CPUs on the node.",
                      MetricType::kGauge,
                      {}};
    cpus.add(Labels{}, static_cast<double>(stat->cpus.size()));
    out.push_back(std::move(cpus));

    MetricFamily boot{"node_boot_time_seconds",
                      "Unix time the node booted.",
                      MetricType::kGauge,
                      {}};
    boot.add(Labels{}, static_cast<double>(stat->boot_time_sec));
    out.push_back(std::move(boot));
  }

  if (auto mem = simfs::read_meminfo(*fs_)) {
    MetricFamily total{"node_memory_MemTotal_bytes",
                       "Total node memory.",
                       MetricType::kGauge,
                       {}};
    total.add(Labels{}, static_cast<double>(mem->mem_total_kb) * 1024.0);
    out.push_back(std::move(total));

    MetricFamily available{"node_memory_MemAvailable_bytes",
                           "Available node memory.",
                           MetricType::kGauge,
                           {}};
    available.add(Labels{},
                  static_cast<double>(mem->mem_available_kb) * 1024.0);
    out.push_back(std::move(available));

    MetricFamily free{"node_memory_MemFree_bytes",
                      "Free node memory.",
                      MetricType::kGauge,
                      {}};
    free.add(Labels{}, static_cast<double>(mem->mem_free_kb) * 1024.0);
    out.push_back(std::move(free));
  }
  return out;
}

}  // namespace ceems::exporter
