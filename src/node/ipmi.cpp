#include "node/ipmi.h"

#include <algorithm>
#include <cmath>

#include "common/strutil.h"

namespace ceems::node {

void IpmiDcmi::offer_power(double true_watts) {
  std::lock_guard lock(mu_);
  common::TimestampMs now = clock_->now_ms();
  if (last_update_ms_ >= 0 && now - last_update_ms_ < update_interval_ms_)
    return;  // BMC has not refreshed yet
  last_update_ms_ = now;
  int64_t watts = static_cast<int64_t>(std::llround(true_watts));
  if (samples_ == 0) {
    min_seen_ = max_seen_ = true_watts;
  } else {
    min_seen_ = std::min(min_seen_, true_watts);
    max_seen_ = std::max(max_seen_, true_watts);
  }
  sum_ += true_watts;
  ++samples_;
  current_.watts = watts;
  current_.min_watts = static_cast<int64_t>(std::llround(min_seen_));
  current_.max_watts = static_cast<int64_t>(std::llround(max_seen_));
  current_.avg_watts =
      static_cast<int64_t>(std::llround(sum_ / static_cast<double>(samples_)));
  current_.sample_time_ms = now;
}

DcmiPowerReading IpmiDcmi::read() const {
  std::lock_guard lock(mu_);
  ++total_reads_;
  if (last_update_ms_ >= 0 &&
      clock_->now_ms() - current_.sample_time_ms > 0) {
    ++cached_reads_;
  }
  return current_;
}

std::string format_dcmi_output(const DcmiPowerReading& reading) {
  return "    Instantaneous power reading:              " +
         std::to_string(reading.watts) +
         " Watts\n"
         "    Minimum during sampling period:           " +
         std::to_string(reading.min_watts) +
         " Watts\n"
         "    Maximum during sampling period:           " +
         std::to_string(reading.max_watts) +
         " Watts\n"
         "    Average power reading over sample period: " +
         std::to_string(reading.avg_watts) +
         " Watts\n"
         "    Power reading state is:                   activated\n";
}

DcmiPowerReading parse_dcmi_output(const std::string& text) {
  DcmiPowerReading reading;
  for (const auto& line : common::split(text, '\n')) {
    auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string key(common::trim(std::string_view(line).substr(0, colon)));
    auto fields = common::split_fields(line.substr(colon + 1));
    if (fields.empty()) continue;
    int64_t value = common::parse_int64(fields[0]).value_or(0);
    if (key == "Instantaneous power reading") reading.watts = value;
    else if (key == "Minimum during sampling period") reading.min_watts = value;
    else if (key == "Maximum during sampling period") reading.max_watts = value;
    else if (key == "Average power reading over sample period")
      reading.avg_watts = value;
  }
  return reading;
}

}  // namespace ceems::node
