file(REMOVE_RECURSE
  "CMakeFiles/ceems_dashboard.dir/ceems_dashboards.cpp.o"
  "CMakeFiles/ceems_dashboard.dir/ceems_dashboards.cpp.o.d"
  "CMakeFiles/ceems_dashboard.dir/grafana_client.cpp.o"
  "CMakeFiles/ceems_dashboard.dir/grafana_client.cpp.o.d"
  "CMakeFiles/ceems_dashboard.dir/grafana_export.cpp.o"
  "CMakeFiles/ceems_dashboard.dir/grafana_export.cpp.o.d"
  "CMakeFiles/ceems_dashboard.dir/panels.cpp.o"
  "CMakeFiles/ceems_dashboard.dir/panels.cpp.o.d"
  "libceems_dashboard.a"
  "libceems_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceems_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
