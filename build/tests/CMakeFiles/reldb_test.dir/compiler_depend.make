# Empty compiler generated dependencies file for reldb_test.
# This may be replaced when dependencies are built.
