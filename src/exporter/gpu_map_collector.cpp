#include "exporter/gpu_map_collector.h"

namespace ceems::exporter {

using metrics::Labels;
using metrics::MetricFamily;
using metrics::MetricType;

std::vector<metrics::MetricFamily> GpuMapCollector::collect(
    common::TimestampMs /*now*/) {
  MetricFamily flag{"ceems_compute_unit_gpu_index_flag",
                    "GPU ordinal bound to a compute unit (1 when bound).",
                    MetricType::kGauge,
                    {}};
  for (const auto& workload : source_()) {
    for (int ordinal : workload.placement.gpu_ordinals) {
      auto device = bank_.device(ordinal);
      Labels labels{
          {kUuidLabel, std::to_string(workload.placement.job_id)},
          {kManagerLabel, manager_},
          {"index", std::to_string(ordinal)},
          {"gpu_uuid", device ? device->uuid : ""}};
      flag.add(labels, 1);
    }
  }
  return {flag};
}

}  // namespace ceems::exporter
