file(REMOVE_RECURSE
  "CMakeFiles/bench_emissions.dir/bench_emissions.cpp.o"
  "CMakeFiles/bench_emissions.dir/bench_emissions.cpp.o.d"
  "bench_emissions"
  "bench_emissions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_emissions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
