# Empty dependencies file for bench_lb.
# This may be replaced when dependencies are built.
