file(REMOVE_RECURSE
  "CMakeFiles/jean_zay.dir/jean_zay.cpp.o"
  "CMakeFiles/jean_zay.dir/jean_zay.cpp.o.d"
  "jean_zay"
  "jean_zay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jean_zay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
