// Static emission factors per country, OWID-style (yearly averages from the
// Our World In Data CO2 explorer the paper cites). Values are lifecycle
// gCO2e/kWh for electricity generation, ~2023 vintage.
#pragma once

#include <map>

#include "emissions/provider.h"

namespace ceems::emissions {

class OwidProvider final : public Provider {
 public:
  OwidProvider();
  std::string name() const override { return "owid"; }
  std::optional<EmissionFactor> factor(const std::string& zone,
                                       common::TimestampMs t_ms) override;

  const std::map<std::string, double>& table() const { return factors_; }

 private:
  std::map<std::string, double> factors_;
};

}  // namespace ceems::emissions
