# Empty compiler generated dependencies file for bench_tsdb.
# This may be replaced when dependencies are built.
