// SoakRunner — executes one Scenario against a full CEEMS stack on a
// simulated fleet (DESIGN.md §11). The runner composes the existing
// machinery rather than reimplementing it: a Jean-Zay-shaped ClusterSim
// scaled to the scenario's node count, a CeemsStack in deterministic
// pipeline mode, a seeded FaultPlan for the flap / outage / LB storms, a
// misbehaving extra scrape target for the cardinality storm, and the
// workload generator's arrival rate for churn storms. Invariants
// (soak/invariants.h) are asserted at every checkpoint; the counters the
// run emits are deterministic functions of (scenario, seed), which is
// what lets tools/bench_guard.py gate BENCH_soak.json in CI.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "soak/invariants.h"
#include "soak/scenario.h"

namespace ceems::soak {

struct SoakOptions {
  // Checkpoint/storm log sink (nullptr = silent). The CLI tees this into
  // the CI failure artifact.
  std::FILE* log = nullptr;
};

// Everything a finished run reports. All counters are deterministic
// given (scenario, seed); wall-clock time appears nowhere.
struct SoakReport {
  Scenario scenario;
  int node_count = 0;
  bool ok = false;
  std::vector<std::string> violations;

  uint64_t samples_ingested = 0;
  uint64_t dropped_scrapes = 0;
  uint64_t stale_markers = 0;
  uint64_t scrape_retries = 0;
  uint64_t faults_injected = 0;
  uint64_t points_scanned = 0;  // by the canonical checkpoint queries
  uint64_t queries_run = 0;
  uint64_t query_points_p99 = 0;
  std::size_t peak_bytes = 0;
  std::size_t max_series = 0;
  uint64_t units_total = 0;
  uint64_t jobs_submitted = 0;
  uint64_t circuit_opens = 0;
  // crash_restart storm: power-cuts survived and WAL records replayed
  // across all of them (0 when the scenario has no crash_restart storm).
  uint64_t crash_restarts = 0;
  uint64_t wal_records_replayed = 0;

  // One-line replay command for this exact run.
  std::string replay_command() const;
};

class SoakRunner {
 public:
  explicit SoakRunner(Scenario scenario, SoakOptions options = {});

  // Builds the fleet, drives the scenario plus its recovery tail, and
  // returns the report. Safe to call once per runner.
  SoakReport run();

 private:
  Scenario scenario_;
  SoakOptions options_;
};

// BENCH_soak.json: google-benchmark-shaped JSON (context +
// benchmarks[].counters) so tools/bench_guard.py reads it exactly like
// BENCH_tsdb.json. One benchmark entry per report, named
// "soak/<scenario>/seed<seed>".
std::string bench_json(const std::vector<SoakReport>& reports);
bool write_bench_json(const std::string& path,
                      const std::vector<SoakReport>& reports);

}  // namespace ceems::soak
