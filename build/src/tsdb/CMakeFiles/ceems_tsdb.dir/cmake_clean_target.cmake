file(REMOVE_RECURSE
  "libceems_tsdb.a"
)
