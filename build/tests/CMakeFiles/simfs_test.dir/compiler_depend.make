# Empty compiler generated dependencies file for simfs_test.
# This may be replaced when dependencies are built.
