#include <gtest/gtest.h>

#include <thread>

#include "http/client.h"
#include "lb/load_balancer.h"
#include "lb/query_introspect.h"
#include "stack_fixture.h"

namespace ceems::lb {
namespace {

// ---------- query introspection ----------

TEST(Introspect, ExtractsUuidsFromSelectors) {
  auto result = introspect_query(
      "sum(rate(ceems_compute_unit_cpu_usage_seconds_total{uuid=\"123\"}[2m]))"
      " + ceems_job_power_watts{uuid=\"456\"}");
  EXPECT_TRUE(result.parse_ok);
  EXPECT_FALSE(result.has_unverifiable_selector);
  EXPECT_EQ(result.uuids, (std::set<std::string>{"123", "456"}));
}

TEST(Introspect, UuidlessSelectorIsUnverifiable) {
  auto result = introspect_query("sum(node_cpu_seconds_total)");
  EXPECT_TRUE(result.parse_ok);
  EXPECT_TRUE(result.has_unverifiable_selector);
}

TEST(Introspect, RegexUuidIsUnverifiable) {
  auto result = introspect_query("m{uuid=~\"12.*\"}");
  EXPECT_TRUE(result.has_unverifiable_selector);
  auto negated = introspect_query("m{uuid!=\"12\"}");
  EXPECT_TRUE(negated.has_unverifiable_selector);
}

TEST(Introspect, WalksAllExpressionShapes) {
  auto result = introspect_query(
      "topk(3, abs(m{uuid=\"1\"}) and (n{uuid=\"2\"} or vector(0)))");
  EXPECT_TRUE(result.parse_ok);
  EXPECT_TRUE(result.uuids.count("1"));
  EXPECT_TRUE(result.uuids.count("2"));
  // vector(0) has no selector, so nothing unverifiable from it; but the
  // full expression is fine since every *selector* pins a uuid.
  EXPECT_FALSE(result.has_unverifiable_selector);
}

TEST(Introspect, ParseFailureReported) {
  auto result = introspect_query("sum(((");
  EXPECT_FALSE(result.parse_ok);
  EXPECT_FALSE(result.error.empty());
}

// ---------- LB over a live mini-stack ----------

class LbTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ceems::testing::MiniStackOptions options;
    mini_ = new ceems::testing::MiniStack(options);
    mini_->run(20 * common::kMillisPerMinute);
    mini_->stack().start_servers();
  }
  static void TearDownTestSuite() {
    delete mini_;
    mini_ = nullptr;
  }

  http::Response query_via_lb(const std::string& user,
                              const std::string& query) {
    http::Client client;
    http::HeaderMap headers;
    if (!user.empty()) headers["X-Grafana-User"] = user;
    auto result = client.get(
        mini_->stack().lb_url() + "/api/v1/query?query=" +
            http::url_encode(query) + "&time=" +
            std::to_string(mini_->clock()->now_ms() / 1000),
        headers);
    EXPECT_TRUE(result.ok) << result.error;
    return result.response;
  }

  // (user, uuid) of some unit with data.
  static std::pair<std::string, std::string> some_unit() {
    for (const auto& job : mini_->sim().dbd().all_jobs()) {
      if (job.start_time_ms != 0) {
        return {job.request.user, std::to_string(job.job_id)};
      }
    }
    return {"user0", "0"};
  }

  static ceems::testing::MiniStack* mini_;
};

ceems::testing::MiniStack* LbTest::mini_ = nullptr;

TEST_F(LbTest, OwnerQueriesTheirUnit) {
  auto [user, uuid] = some_unit();
  auto response = query_via_lb(
      user, "ceems_compute_unit_memory_current_bytes{uuid=\"" + uuid + "\"}");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"status\":\"success\""), std::string::npos);
}

TEST_F(LbTest, StrangerDenied) {
  auto [user, uuid] = some_unit();
  auto response = query_via_lb(
      "mallory", "ceems_compute_unit_memory_current_bytes{uuid=\"" + uuid +
                     "\"}");
  EXPECT_EQ(response.status, 403);
  EXPECT_GT(mini_->stack().load_balancer().denied_total(), 0u);
}

TEST_F(LbTest, MissingUserHeaderDenied) {
  auto response = query_via_lb("", "up{uuid=\"1\"}");
  EXPECT_EQ(response.status, 403);
}

TEST_F(LbTest, UuidlessQueryDeniedForUsersAllowedForAdmins) {
  auto denied = query_via_lb("user0", "sum(node_cpu_seconds_total)");
  EXPECT_EQ(denied.status, 403);
  auto allowed = query_via_lb("admin", "sum(node_cpu_seconds_total)");
  EXPECT_EQ(allowed.status, 200);
}

TEST_F(LbTest, UnparsableQueryRejected) {
  auto response = query_via_lb("user0", "sum(((");
  EXPECT_EQ(response.status, 400);
}

TEST_F(LbTest, MixedOwnershipDenied) {
  auto [user, uuid] = some_unit();
  // Find a unit of a different user.
  std::string other_uuid;
  for (const auto& job : mini_->sim().dbd().all_jobs()) {
    if (job.start_time_ms != 0 && job.request.user != user) {
      other_uuid = std::to_string(job.job_id);
      break;
    }
  }
  ASSERT_FALSE(other_uuid.empty());
  auto response = query_via_lb(
      user, "m{uuid=\"" + uuid + "\"} + m{uuid=\"" + other_uuid + "\"}");
  EXPECT_EQ(response.status, 403);
}

TEST_F(LbTest, RangeQueryProxied) {
  auto [user, uuid] = some_unit();
  http::Client client;
  http::HeaderMap headers;
  headers["X-Grafana-User"] = user;
  common::TimestampMs now = mini_->clock()->now_ms();
  auto result = client.get(
      mini_->stack().lb_url() + "/api/v1/query_range?query=" +
          http::url_encode("ceems_compute_unit_memory_current_bytes{uuid=\"" +
                           uuid + "\"}") +
          "&start=" + std::to_string((now - 600000) / 1000) +
          "&end=" + std::to_string(now / 1000) + "&step=30s",
      headers);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.response.status, 200);
  EXPECT_NE(result.response.body.find("matrix"), std::string::npos);
}

TEST_F(LbTest, HttpFallbackOwnershipPath) {
  // An LB without the direct DB handle must round-trip to the API server.
  lb::LbConfig config;
  config.api_server_url = mini_->stack().api_url();
  config.admin_users = {"admin"};
  LoadBalancer lb(config, mini_->stack().query_backend_urls(),
                  mini_->clock());
  lb.start();

  auto [user, uuid] = some_unit();
  http::Client client;
  http::HeaderMap headers;
  headers["X-Grafana-User"] = user;
  auto granted = client.get(
      lb.base_url() + "/api/v1/query?query=" +
          http::url_encode("up{uuid=\"" + uuid + "\"}"),
      headers);
  ASSERT_TRUE(granted.ok);
  EXPECT_EQ(granted.response.status, 200);

  headers["X-Grafana-User"] = "mallory";
  auto denied = client.get(
      lb.base_url() + "/api/v1/query?query=" +
          http::url_encode("up{uuid=\"" + uuid + "\"}"),
      headers);
  ASSERT_TRUE(denied.ok);
  EXPECT_EQ(denied.response.status, 403);
  lb.stop();
}

TEST_F(LbTest, RoundRobinSpreadsBackends) {
  for (int i = 0; i < 10; ++i) {
    query_via_lb("admin", "vector(1)");
  }
  auto stats = mini_->stack().load_balancer().backend_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_GT(stats[0].requests, 0u);
  EXPECT_GT(stats[1].requests, 0u);
}

TEST(LbStandalone, FailsOverToHealthyBackend) {
  auto clock = common::make_sim_clock(0);
  http::Server healthy{http::ServerConfig{}};
  healthy.handle_prefix("/api/", [](const http::Request&) {
    return http::Response::json(200, "{\"who\":\"healthy\"}");
  });
  healthy.start();

  LbConfig config;
  config.admin_users = {"admin"};
  // First backend dead, second alive: every request must still succeed.
  LoadBalancer lb(config, {"http://127.0.0.1:1", healthy.base_url()}, clock);
  lb.start();
  http::Client client;
  http::HeaderMap headers;
  headers["X-Grafana-User"] = "admin";
  for (int i = 0; i < 6; ++i) {
    auto result =
        client.get(lb.base_url() + "/api/v1/query?query=vector(1)", headers);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.response.status, 200);
    EXPECT_NE(result.response.body.find("healthy"), std::string::npos);
  }
  auto stats = lb.backend_stats();
  EXPECT_GT(stats[0].failures, 0u);  // dead backend was tried and skipped
  lb.stop();
  healthy.stop();
}

TEST(LbStandalone, DeadBackendIs502) {
  auto clock = common::make_sim_clock(0);
  LbConfig config;
  config.admin_users = {"admin"};
  LoadBalancer lb(config, {"http://127.0.0.1:1"}, clock);
  lb.start();
  http::Client client;
  http::HeaderMap headers;
  headers["X-Grafana-User"] = "admin";
  auto result = client.get(lb.base_url() + "/api/v1/query?query=vector(1)",
                           headers);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.response.status, 502);
  EXPECT_EQ(lb.backend_stats()[0].failures, 1u);
  lb.stop();
}

// ---------- circuit breaker (handle_proxy, no sockets) ----------

http::Request admin_query() {
  http::Request request;
  request.method = "GET";
  request.target = "/api/v1/query?query=vector(1)";
  request.headers["X-Grafana-User"] = "admin";
  return request;
}

TEST(LbCircuit, OpensAfterThresholdRecoversAtCooldownBoundary) {
  auto clock = common::make_sim_clock(0);
  http::Server healthy{http::ServerConfig{}};
  healthy.handle_prefix("/api/", [](const http::Request&) {
    return http::Response::json(200, "{\"who\":\"healthy\"}");
  });
  healthy.start();

  bool down = true;
  LbConfig config;
  config.admin_users = {"admin"};
  config.circuit_failure_threshold = 3;
  config.failover_cooldown_ms = 2000;
  config.fault_hook = [&](std::string_view, std::string_view) {
    faults::FaultDecision fault;
    if (down) fault.kind = faults::FaultKind::kConnectTimeout;
    return fault;
  };
  LoadBalancer lb(config, {healthy.base_url()}, clock);

  // Three consecutive transport failures trip the circuit.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(lb.handle_proxy(admin_query()).status, 502);
  }
  auto stats = lb.backend_stats();
  EXPECT_EQ(stats[0].circuit, CircuitState::kOpen);
  EXPECT_EQ(stats[0].circuit_opens, 1u);

  // While open, requests are rejected with 503 without touching the
  // backend — including at cooldown_ms - 1.
  uint64_t requests_before = stats[0].requests;
  EXPECT_EQ(lb.handle_proxy(admin_query()).status, 503);
  clock->advance(1999);
  EXPECT_EQ(lb.handle_proxy(admin_query()).status, 503);
  EXPECT_EQ(lb.backend_stats()[0].requests, requests_before);

  // At exactly the boundary the half-open probe goes through; the backend
  // recovered, so the circuit closes again.
  clock->advance(1);
  down = false;
  EXPECT_EQ(lb.handle_proxy(admin_query()).status, 200);
  EXPECT_EQ(lb.backend_stats()[0].circuit, CircuitState::kClosed);

  healthy.stop();
}

TEST(LbCircuit, FailedHalfOpenProbeReopens) {
  auto clock = common::make_sim_clock(0);
  LbConfig config;
  config.admin_users = {"admin"};
  config.circuit_failure_threshold = 1;
  config.failover_cooldown_ms = 1000;
  config.fault_hook = [](std::string_view, std::string_view) {
    faults::FaultDecision fault;
    fault.kind = faults::FaultKind::kIoTimeout;
    return fault;
  };
  LoadBalancer lb(config, {"http://127.0.0.1:1"}, clock);

  EXPECT_EQ(lb.handle_proxy(admin_query()).status, 502);  // trips
  EXPECT_EQ(lb.handle_proxy(admin_query()).status, 503);  // open
  clock->advance(1000);
  EXPECT_EQ(lb.handle_proxy(admin_query()).status, 502);  // failed probe
  auto stats = lb.backend_stats();
  EXPECT_EQ(stats[0].circuit, CircuitState::kOpen);
  EXPECT_EQ(stats[0].circuit_opens, 2u);
  EXPECT_EQ(lb.handle_proxy(admin_query()).status, 503);  // open again
}

TEST(LbCircuit, AllBackendsDownIs503NotHang) {
  auto clock = common::make_sim_clock(0);
  LbConfig config;
  config.admin_users = {"admin"};
  config.circuit_failure_threshold = 1;
  config.failover_cooldown_ms = 60000;
  config.fault_hook = [](std::string_view, std::string_view) {
    faults::FaultDecision fault;
    fault.kind = faults::FaultKind::kConnectTimeout;
    return fault;
  };
  LoadBalancer lb(config, {"http://127.0.0.1:1", "http://127.0.0.1:2"},
                  clock);

  // First request probes (and trips) both circuits: 502 = probed and
  // failed.
  EXPECT_EQ(lb.handle_proxy(admin_query()).status, 502);
  auto stats = lb.backend_stats();
  uint64_t total_requests = stats[0].requests + stats[1].requests;
  EXPECT_EQ(total_requests, 2u);
  // With every circuit open, requests answer 503 immediately and no
  // backend is contacted.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(lb.handle_proxy(admin_query()).status, 503);
  }
  stats = lb.backend_stats();
  EXPECT_EQ(stats[0].requests + stats[1].requests, total_requests);
  EXPECT_EQ(stats[0].circuit, CircuitState::kOpen);
  EXPECT_EQ(stats[1].circuit, CircuitState::kOpen);
}

TEST(LbCircuit, MetricsExportCircuitState) {
  auto clock = common::make_sim_clock(0);
  LbConfig config;
  config.admin_users = {"admin"};
  config.circuit_failure_threshold = 1;
  config.fault_hook = [](std::string_view, std::string_view) {
    faults::FaultDecision fault;
    fault.kind = faults::FaultKind::kConnectTimeout;
    return fault;
  };
  LoadBalancer lb(config, {"http://127.0.0.1:1"}, clock);
  lb.handle_proxy(admin_query());
  std::string metrics = lb.render_metrics();
  EXPECT_NE(metrics.find("ceems_lb_backend_circuit_state{backend=\"http://"
                         "127.0.0.1:1\"} 1"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("ceems_lb_backend_circuit_opens_total"),
            std::string::npos);
  EXPECT_NE(metrics.find("ceems_lb_denied_total"), std::string::npos);
}

TEST(LbStandalone, LeastConnectionPrefersIdleBackend) {
  auto clock = common::make_sim_clock(0);
  // Backend A is slow; backend B fast. Under concurrency, least-connection
  // must route most requests to B.
  http::Server slow{http::ServerConfig{}};
  slow.handle_prefix("/api/", [](const http::Request&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return http::Response::json(200, "{\"who\":\"slow\"}");
  });
  http::Server fast{http::ServerConfig{}};
  fast.handle_prefix("/api/", [](const http::Request&) {
    return http::Response::json(200, "{\"who\":\"fast\"}");
  });
  slow.start();
  fast.start();

  LbConfig config;
  config.strategy = Strategy::kLeastConnection;
  config.admin_users = {"admin"};
  config.http.worker_threads = 8;
  LoadBalancer lb(config, {slow.base_url(), fast.base_url()}, clock);
  lb.start();

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      http::Client client;
      http::HeaderMap headers;
      headers["X-Grafana-User"] = "admin";
      for (int i = 0; i < 10; ++i) {
        client.get(lb.base_url() + "/api/v1/query?query=vector(1)", headers);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  auto stats = lb.backend_stats();
  uint64_t slow_requests = stats[0].requests;
  uint64_t fast_requests = stats[1].requests;
  EXPECT_EQ(slow_requests + fast_requests, 40u);
  EXPECT_GT(fast_requests, slow_requests);
  lb.stop();
  slow.stop();
  fast.stop();
}

}  // namespace
}  // namespace ceems::lb
