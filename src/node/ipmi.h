// IPMI-DCMI power reading simulation. On a real node the exporter shells
// out to `ipmitool dcmi power reading`; here the BMC is modelled directly.
// The properties the paper leans on are preserved:
//   - the reading covers the *whole node* (unlike RAPL), minus GPUs on the
//     second server type;
//   - the BMC refreshes slowly, so readings are stale up to
//     ipmi_update_interval_ms and quantized to whole watts;
//   - querying it too often is pointless (and on real BMCs, harmful) — the
//     simulated interface returns the cached sample between refreshes and
//     counts how many queries hit the cache (observable in tests/benches).
#pragma once

#include <cstdint>
#include <mutex>

#include "common/clock.h"
#include "node/spec.h"

namespace ceems::node {

struct DcmiPowerReading {
  int64_t watts = 0;            // "Instantaneous power reading"
  int64_t min_watts = 0;        // session minimum
  int64_t max_watts = 0;        // session maximum
  int64_t avg_watts = 0;        // session average
  common::TimestampMs sample_time_ms = 0;  // when the BMC sampled
};

class IpmiDcmi {
 public:
  IpmiDcmi(common::ClockPtr clock, int64_t update_interval_ms)
      : clock_(std::move(clock)), update_interval_ms_(update_interval_ms) {}

  // Called by NodeSim with the true instantaneous node power; the BMC picks
  // it up only when its refresh interval elapses.
  void offer_power(double true_watts);

  // What `ipmitool dcmi power reading` would print, as structured data.
  DcmiPowerReading read() const;

  uint64_t cached_reads() const { return cached_reads_; }
  uint64_t total_reads() const { return total_reads_; }

 private:
  common::ClockPtr clock_;
  int64_t update_interval_ms_;

  mutable std::mutex mu_;
  DcmiPowerReading current_{};
  double min_seen_ = 0, max_seen_ = 0, sum_ = 0;
  int64_t samples_ = 0;
  common::TimestampMs last_update_ms_ = -1;
  mutable uint64_t cached_reads_ = 0;
  mutable uint64_t total_reads_ = 0;
};

// Renders/parses the ipmitool output format so the exporter's IPMI
// collector exercises a realistic parsing path:
//   Instantaneous power reading:          213 Watts
//   Minimum during sampling period:       180 Watts
//   ...
std::string format_dcmi_output(const DcmiPowerReading& reading);
DcmiPowerReading parse_dcmi_output(const std::string& text);

}  // namespace ceems::node
