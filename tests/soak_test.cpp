// Tier-2 soak runs (labelled tier2 in CMake; only the soak-smoke CI job
// executes these — the regular build-test matrix runs `ctest -L tier1`).
//
// The acceptance run drives the builtin `full` scenario — job churn,
// cardinality explosion, scrape flapping, emissions-provider outage and
// an LB brown-out on a thousand-node fleet — and requires every hard
// invariant green. Override the sweep with
//   SOAK_SEEDS="7 8 9" SOAK_NODES=1000 ctest -L tier2
// On the first failure the test prints the one-line ceems_soak replay
// command for the exact (scenario, nodes, seed).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "soak/runner.h"
#include "soak/scenario.h"

namespace ceems::soak {
namespace {

std::vector<uint64_t> soak_seeds() {
  if (const char* env = std::getenv("SOAK_SEEDS")) {
    std::vector<uint64_t> seeds;
    std::istringstream in(env);
    uint64_t seed;
    while (in >> seed) seeds.push_back(seed);
    if (!seeds.empty()) return seeds;
  }
  return {7};
}

int soak_nodes(int fallback) {
  if (const char* env = std::getenv("SOAK_NODES")) {
    int nodes = std::atoi(env);
    if (nodes > 0) return nodes;
  }
  return fallback;
}

void print_replay_once(const SoakReport& report) {
  static bool printed = false;
  if (printed || !::testing::Test::HasFailure()) return;
  printed = true;
  std::fprintf(stderr, "[soak replay] %s\n", report.replay_command().c_str());
}

TEST(Soak, FullScenarioThousandNodesKeepsInvariants) {
  std::string error;
  auto parsed = parse_scenario_text(builtin_scenario_text("full"), &error);
  ASSERT_TRUE(parsed) << error;
  Scenario scenario = *parsed;
  scenario.nodes = soak_nodes(scenario.nodes);

  for (uint64_t seed : soak_seeds()) {
    SCOPED_TRACE("soak seed " + std::to_string(seed));
    scenario.seed = seed;
    SoakOptions options;
    options.log = stderr;
    SoakReport report = SoakRunner(scenario, options).run();

    EXPECT_TRUE(report.ok);
    for (const std::string& violation : report.violations)
      ADD_FAILURE() << violation;

    // The storm actually happened: tens of thousands of compute units
    // churned through the fleet, faults were injected and survived, the
    // breakers saw traffic, and the exporter explosion registered.
    EXPECT_GE(report.node_count, scenario.nodes * 9 / 10);
    if (scenario.nodes >= 1000) {
      EXPECT_GE(report.units_total, 10000u);
    }
    EXPECT_GT(report.samples_ingested, 0u);
    EXPECT_GT(report.faults_injected, 0u);
    EXPECT_GT(report.dropped_scrapes, 0u);
    EXPECT_GT(report.stale_markers, 0u);
    EXPECT_GT(report.max_series, 0u);
    EXPECT_GT(report.queries_run, 0u);

    print_replay_once(report);
  }
}

TEST(Soak, SmallScenarioIsDeterministic) {
  // The CI trend gate (BENCH_soak.json vs bench_guard) only works if the
  // counters are pure functions of (scenario, seed). Run one storm-heavy
  // scenario twice in-process and require identical counters.
  // peak_bytes is deliberately excluded: the process-global symbol table
  // outlives run 1, so run 2's early checkpoints see more interned
  // symbols — identical across *processes* (what CI compares), not across
  // back-to-back in-process runs.
  std::string error;
  auto parsed = parse_scenario_text(builtin_scenario_text("smoke"), &error);
  ASSERT_TRUE(parsed) << error;
  Scenario scenario = *parsed;
  scenario.nodes = 30;
  scenario.seed = 4242;

  SoakReport reports[2];
  for (SoakReport& report : reports) {
    report = SoakRunner(scenario).run();
    EXPECT_TRUE(report.ok);
    for (const std::string& violation : report.violations)
      ADD_FAILURE() << violation;
  }
  EXPECT_EQ(reports[0].samples_ingested, reports[1].samples_ingested);
  EXPECT_EQ(reports[0].dropped_scrapes, reports[1].dropped_scrapes);
  EXPECT_EQ(reports[0].stale_markers, reports[1].stale_markers);
  EXPECT_EQ(reports[0].scrape_retries, reports[1].scrape_retries);
  // faults_injected and circuit_opens are NOT compared: the lb.backend
  // fault streams are keyed by backend URL, and server ports are
  // ephemeral, so those two counters legitimately differ run to run.
  // They are informational in BENCH_soak.json, never gated — only the
  // counters asserted here are in bench_guard's GUARDED_COUNTERS.
  EXPECT_EQ(reports[0].points_scanned, reports[1].points_scanned);
  EXPECT_EQ(reports[0].query_points_p99, reports[1].query_points_p99);
  EXPECT_EQ(reports[0].max_series, reports[1].max_series);
  EXPECT_EQ(reports[0].units_total, reports[1].units_total);
  EXPECT_EQ(reports[0].jobs_submitted, reports[1].jobs_submitted);
  if (::testing::Test::HasFailure())
    std::fprintf(stderr, "[soak replay] %s\n",
                 reports[0].replay_command().c_str());
}

}  // namespace
}  // namespace ceems::soak
