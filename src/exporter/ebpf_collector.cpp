#include "exporter/ebpf_collector.h"

namespace ceems::exporter {

using metrics::Labels;
using metrics::MetricFamily;
using metrics::MetricType;

std::vector<metrics::MetricFamily> EbpfCollector::collect(
    common::TimestampMs /*now*/) {
  MetricFamily tx{"ceems_compute_unit_network_tx_bytes_total",
                  "Bytes transmitted by the compute unit (eBPF).",
                  MetricType::kCounter,
                  {}};
  MetricFamily rx{"ceems_compute_unit_network_rx_bytes_total",
                  "Bytes received by the compute unit (eBPF).",
                  MetricType::kCounter,
                  {}};
  MetricFamily tx_packets{"ceems_compute_unit_network_tx_packets_total",
                          "Packets transmitted by the compute unit (eBPF).",
                          MetricType::kCounter,
                          {}};
  MetricFamily rx_packets{"ceems_compute_unit_network_rx_packets_total",
                          "Packets received by the compute unit (eBPF).",
                          MetricType::kCounter,
                          {}};
  MetricFamily instructions{"ceems_compute_unit_perf_instructions_total",
                            "Instructions retired by the compute unit (perf).",
                            MetricType::kCounter,
                            {}};
  MetricFamily flops{"ceems_compute_unit_perf_flops_total",
                     "Floating-point operations by the compute unit (perf).",
                     MetricType::kCounter,
                     {}};
  MetricFamily cache_misses{
      "ceems_compute_unit_perf_cache_misses_total",
      "Last-level cache misses by the compute unit (perf).",
      MetricType::kCounter,
      {}};
  MetricFamily node_net{"node_network_transmit_bytes_total",
                        "Node NIC transmit bytes (all units).",
                        MetricType::kCounter,
                        {}};

  double node_tx = 0, node_rx = 0;
  for (const auto& stats : source_()) {
    Labels base{{kUuidLabel, std::to_string(stats.job_id)},
                {kManagerLabel, manager_}};
    tx.add(base, static_cast<double>(stats.net_tx_bytes));
    rx.add(base, static_cast<double>(stats.net_rx_bytes));
    tx_packets.add(base, static_cast<double>(stats.net_tx_packets));
    rx_packets.add(base, static_cast<double>(stats.net_rx_packets));
    instructions.add(base, static_cast<double>(stats.instructions));
    flops.add(base, static_cast<double>(stats.flops));
    cache_misses.add(base, static_cast<double>(stats.cache_misses));
    node_tx += static_cast<double>(stats.net_tx_bytes);
    node_rx += static_cast<double>(stats.net_rx_bytes);
  }
  node_net.add(Labels{{"device", "ib0"}}, node_tx);
  MetricFamily node_net_rx{"node_network_receive_bytes_total",
                           "Node NIC receive bytes (all units).",
                           MetricType::kCounter,
                           {}};
  node_net_rx.add(Labels{{"device", "ib0"}}, node_rx);

  return {tx,    rx,           tx_packets, rx_packets, instructions,
          flops, cache_misses, node_net,   node_net_rx};
}

}  // namespace ceems::exporter
