// Differential test: the chunked TimeSeriesStore against a deliberately
// naive uncompressed reference store. Both ingest identical workloads
// (the shapes tsdb_concurrency_test uses: regular scrape grids, jittered
// timestamps, duplicates, rejections, NaN/Inf values, purges); every
// select() and every PromQL eval_range() must then agree bit-for-bit.
// This is the acceptance gate for the Gorilla chunk pipeline: compression
// must be invisible to queries.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "tsdb/promql_eval.h"
#include "tsdb/storage.h"

namespace ceems::tsdb {
namespace {

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// Reference implementation: raw sample vectors, no interning, no chunks,
// no shards. Mirrors the store's append/select semantics exactly.
class FlatStore final : public Queryable {
 public:
  bool append(const Labels& labels, TimestampMs t, double v) {
    auto& samples = series_[labels];
    if (!samples.empty() && t < samples.back().t) return false;
    if (!samples.empty() && t == samples.back().t) {
      samples.back().v = v;
      return true;
    }
    samples.push_back({t, v});
    return true;
  }

  std::size_t purge_before(TimestampMs cutoff) {
    std::size_t dropped = 0;
    for (auto it = series_.begin(); it != series_.end();) {
      auto& samples = it->second;
      auto keep = std::lower_bound(
          samples.begin(), samples.end(), cutoff,
          [](const SamplePoint& s, TimestampMs t) { return s.t < t; });
      dropped += static_cast<std::size_t>(keep - samples.begin());
      samples.erase(samples.begin(), keep);
      it = samples.empty() ? series_.erase(it) : std::next(it);
    }
    return dropped;
  }

  std::vector<SeriesView> select(const std::vector<LabelMatcher>& matchers,
                                 TimestampMs min_t,
                                 TimestampMs max_t) const override {
    std::vector<SeriesView> out;
    for (const auto& [labels, samples] : series_) {
      bool matched = true;
      for (const auto& matcher : matchers) {
        if (!matcher.matches(labels)) {
          matched = false;
          break;
        }
      }
      if (!matched) continue;
      auto begin = std::lower_bound(
          samples.begin(), samples.end(), min_t,
          [](const SamplePoint& s, TimestampMs t) { return s.t < t; });
      auto end = std::upper_bound(
          samples.begin(), samples.end(), max_t,
          [](TimestampMs t, const SamplePoint& s) { return t < s.t; });
      if (begin == end) continue;
      out.push_back(
          SeriesView::owned(labels, std::vector<SamplePoint>(begin, end)));
    }
    // std::map iterates in label order — same order select() sorts into.
    return out;
  }

 private:
  std::map<Labels, std::vector<SamplePoint>> series_;
};

void expect_same_select(const Queryable& chunked, const Queryable& flat,
                        const std::vector<LabelMatcher>& matchers,
                        TimestampMs min_t, TimestampMs max_t,
                        const std::string& what) {
  auto a = chunked.select(matchers, min_t, max_t);
  auto b = flat.select(matchers, min_t, max_t);
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].labels, b[i].labels) << what;
    auto sa = a[i].samples();
    auto sb = b[i].samples();
    ASSERT_EQ(sa.size(), sb.size()) << what << " series " << i;
    for (std::size_t j = 0; j < sa.size(); ++j) {
      ASSERT_EQ(sa[j].t, sb[j].t) << what << " series " << i;
      ASSERT_TRUE(same_bits(sa[j].v, sb[j].v))
          << what << " series " << i << " sample " << j;
    }
  }
}

void expect_same_eval(const Queryable& chunked, const Queryable& flat,
                      const std::string& query, TimestampMs start,
                      TimestampMs end, int64_t step) {
  promql::EngineOptions options;
  options.query_cache_capacity = 0;
  promql::Engine engine(options);
  auto a = engine.eval_range(chunked, query, start, end, step);
  auto b = engine.eval_range(flat, query, start, end, step);
  ASSERT_EQ(a.size(), b.size()) << query;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].labels, b[i].labels) << query;
    ASSERT_EQ(a[i].samples.size(), b[i].samples.size()) << query;
    for (std::size_t j = 0; j < a[i].samples.size(); ++j) {
      ASSERT_EQ(a[i].samples[j].t, b[i].samples[j].t) << query;
      ASSERT_TRUE(same_bits(a[i].samples[j].v, b[i].samples[j].v))
          << query << " series " << i << " step " << j;
    }
  }
}

TEST(StorageEquivalence, RegularScrapeGridSelectsAndEvals) {
  // The ParallelRangeEvalMatchesSerialBitForBit workload: 72 series, 240
  // regular 30 s samples each — enough to seal two chunks per series.
  TimeSeriesStore chunked;
  FlatStore flat;
  for (int h = 0; h < 12; ++h) {
    for (int s = 0; s < 6; ++s) {
      auto labels = metrics::Labels{{"hostname", "n" + std::to_string(h)},
                                    {"uuid", std::to_string(s)}}
                        .with_name("m");
      for (int i = 0; i < 240; ++i) {
        double v = i * 7.0 + h * 0.25 + s * 0.125;
        ASSERT_TRUE(chunked.append(labels, i * 30000, v));
        ASSERT_TRUE(flat.append(labels, i * 30000, v));
      }
    }
  }

  expect_same_select(chunked, flat, {}, 0, 240 * 30000, "full range");
  expect_same_select(chunked, flat,
                     {{"hostname", LabelMatcher::Op::kEq, "n3"}}, 0,
                     240 * 30000, "by hostname");
  // Mid-chunk boundaries on both ends.
  expect_same_select(chunked, flat, {}, 37 * 30000 + 1, 203 * 30000 - 1,
                     "chunk-straddling range");
  // Range entirely inside one sealed chunk.
  expect_same_select(chunked, flat, {}, 10 * 30000, 20 * 30000,
                     "inside first chunk");
  // Empty intersection.
  expect_same_select(chunked, flat, {}, 241 * 30000, 300 * 30000,
                     "past the end");

  for (const std::string query :
       {"sum by (hostname) (rate(m[2m]))", "avg(m)", "m * 2",
        "topk(3, sum by (hostname) (m))",
        "avg_over_time(m[5m])"}) {
    expect_same_eval(chunked, flat, query, 0, 240 * 30000, 30000);
  }
}

TEST(StorageEquivalence, JitteredWorkloadWithRejectsAndSpecials) {
  // Adversarial ingest: jittered intervals, duplicate timestamps
  // (overwrite), stale timestamps (reject), NaN/Inf/-0.0 values. Both
  // stores must accept/reject identically and then agree on every query.
  TimeSeriesStore chunked;
  FlatStore flat;
  std::mt19937_64 rng(20240806);
  std::uniform_int_distribution<int64_t> jitter(-400, 400);
  std::uniform_real_distribution<double> value(0.0, 1e9);

  constexpr int kSeries = 8;
  std::vector<Labels> all_labels;
  std::vector<int64_t> cursor(kSeries, 1700000000000LL);
  for (int s = 0; s < kSeries; ++s) {
    all_labels.push_back(
        Labels{{"uuid", std::to_string(s)}}.with_name("jittered"));
  }
  for (int op = 0; op < 4000; ++op) {
    int s = static_cast<int>(rng() % kSeries);
    int64_t t;
    switch (rng() % 10) {
      case 0: t = cursor[s];  // duplicate: overwrite newest
        break;
      case 1: t = cursor[s] - 5000 - static_cast<int64_t>(rng() % 50000);
        break;  // stale: rejected
      default: t = cursor[s] + 30000 + jitter(rng);
    }
    double v;
    switch (rng() % 12) {
      case 0: v = std::numeric_limits<double>::quiet_NaN(); break;
      case 1: v = std::numeric_limits<double>::infinity(); break;
      case 2: v = -std::numeric_limits<double>::infinity(); break;
      case 3: v = -0.0; break;
      default: v = value(rng);
    }
    bool a = chunked.append(all_labels[s], t, v);
    bool b = flat.append(all_labels[s], t, v);
    ASSERT_EQ(a, b) << "op " << op;
    if (a && t > cursor[s]) cursor[s] = t;
  }

  int64_t max_t = *std::max_element(cursor.begin(), cursor.end());
  expect_same_select(chunked, flat, {}, 0, max_t + 1, "jittered full");
  expect_same_select(chunked, flat,
                     {{"uuid", LabelMatcher::Op::kRegexMatch, "[0-3]"}},
                     1700000000000LL + 3000000, max_t - 3000000,
                     "jittered regex mid-range");
  expect_same_eval(chunked, flat, "count_over_time(jittered[10m])",
                   1700000000000LL, max_t, 60000);
}

TEST(StorageEquivalence, PurgeKeepsStoresAligned) {
  // purge_before() lands mid-chunk, forcing the partial re-encode path;
  // the surviving data must stay identical to the reference.
  TimeSeriesStore chunked;
  FlatStore flat;
  for (int s = 0; s < 4; ++s) {
    auto labels = Labels{{"uuid", std::to_string(s)}}.with_name("ctr");
    for (int i = 0; i < 500; ++i) {
      double v = i * 1.5 + s;
      ASSERT_TRUE(chunked.append(labels, int64_t{i} * 1000, v));
      ASSERT_TRUE(flat.append(labels, int64_t{i} * 1000, v));
    }
  }
  for (TimestampMs cutoff : {57 * 1000LL, 130 * 1000LL, 499 * 1000LL}) {
    std::size_t a = chunked.purge_before(cutoff);
    std::size_t b = flat.purge_before(cutoff);
    EXPECT_EQ(a, b) << "cutoff " << cutoff;
    expect_same_select(chunked, flat, {}, 0, 500 * 1000,
                       "after purge " + std::to_string(cutoff));
    expect_same_eval(chunked, flat, "rate(ctr[2m])", cutoff, 500 * 1000,
                     15000);
  }
}

}  // namespace
}  // namespace ceems::tsdb
