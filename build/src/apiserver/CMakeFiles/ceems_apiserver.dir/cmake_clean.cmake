file(REMOVE_RECURSE
  "CMakeFiles/ceems_apiserver.dir/api_server.cpp.o"
  "CMakeFiles/ceems_apiserver.dir/api_server.cpp.o.d"
  "CMakeFiles/ceems_apiserver.dir/reports.cpp.o"
  "CMakeFiles/ceems_apiserver.dir/reports.cpp.o.d"
  "CMakeFiles/ceems_apiserver.dir/resource_manager.cpp.o"
  "CMakeFiles/ceems_apiserver.dir/resource_manager.cpp.o.d"
  "CMakeFiles/ceems_apiserver.dir/schema.cpp.o"
  "CMakeFiles/ceems_apiserver.dir/schema.cpp.o.d"
  "CMakeFiles/ceems_apiserver.dir/updater.cpp.o"
  "CMakeFiles/ceems_apiserver.dir/updater.cpp.o.d"
  "libceems_apiserver.a"
  "libceems_apiserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceems_apiserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
