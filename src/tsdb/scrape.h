// Scrape manager: periodically GETs /metrics from every target (the CEEMS
// exporters on compute nodes), parses the exposition text and ingests the
// samples — Prometheus' pull model. Each target gets the synthetic `up`,
// `scrape_duration_seconds` and `ceems_http_retries_total` series, so dead
// exporters and flaky transports are visible as data rather than as
// silence.
//
// Failure handling: a failed fetch is retried up to config.retries times
// within the sweep (HTTP targets additionally get the client's exponential
// backoff); when every attempt fails, `up` goes to 0 and a staleness
// marker (metrics::stale_marker()) is appended to every series the target
// exposed on its last good scrape, so queries stop seeing its stale
// samples immediately instead of for the full lookback window. Series
// that disappear from a healthy target's exposition between scrapes get
// the same marker — Prometheus' staleness semantics.
//
// Two driving modes:
//   * scrape_all_once(): synchronous parallel sweep — used by deterministic
//     tests and the simulated-time pipeline (scrape between sim steps);
//   * start()/stop(): background loop sleeping on the injected Clock.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/threadpool.h"
#include "faults/fault.h"
#include "http/client.h"
#include "tsdb/storage.h"

namespace ceems::tsdb {

struct ScrapeTarget {
  std::string url;        // http://host:port/metrics
  Labels labels;          // attached to every sample (instance, hostname...)
  http::BasicAuthConfig auth;
  // Local transport: when set, the scrape calls this instead of HTTP and
  // parses the returned exposition text. Used to drive 1400 simulated
  // exporters in one process (E4) without 1400 listening sockets; the
  // parse/ingest path is byte-identical to the HTTP path. An empty
  // returned string is treated as a failed scrape.
  std::function<std::string()> local_fetch;
};

struct ScrapeConfig {
  int64_t interval_ms = 30 * common::kMillisPerSecond;
  int parallelism = 8;
  int timeout_ms = 5000;
  // Honor timestamps in the exposition text; otherwise stamp at scrape time.
  bool honor_timestamps = false;
  // Extra fetch attempts per target per sweep after a failure. HTTP
  // targets retry inside http::Client (exponential backoff under a retry
  // budget); local-transport targets re-evaluate the fault path against
  // the already-fetched body, so exporter-side state advances exactly once
  // per sweep regardless of retries.
  int retries = 1;
  // Append staleness markers for vanished/failed series (see file header).
  bool emit_stale_markers = true;
  // Chaos injection on the fetch path (site "scrape.target", key =
  // instance label or url). Empty in production.
  faults::FaultHook fault_hook;
};

struct ScrapeStats {
  uint64_t scrapes_total = 0;
  uint64_t scrapes_failed = 0;
  uint64_t samples_ingested = 0;
  uint64_t retries = 0;
  uint64_t stale_markers = 0;
};

class ScrapeManager {
 public:
  ScrapeManager(StorePtr store, common::ClockPtr clock,
                ScrapeConfig config = {});
  ~ScrapeManager();

  void add_target(ScrapeTarget target);
  std::size_t target_count() const;

  // One synchronous sweep over all targets; returns per-sweep stats.
  ScrapeStats scrape_all_once();

  // Background loop at config.interval_ms.
  void start();
  void stop();

  ScrapeStats stats() const;

 private:
  struct TargetState {
    ScrapeTarget target;
    std::unique_ptr<http::Client> client;
    // Fault-stream key: the instance label when present, else the url.
    std::string fault_key;
    // Interned once at registration: the per-sweep hot loop merges target
    // labels into each sample by symbol id, and the synthetic up /
    // scrape_duration_seconds / ceems_http_retries_total label sets are
    // reused with their fingerprints precomputed.
    std::vector<metrics::InternedLabels::SymbolPair> target_syms;
    metrics::InternedLabels up_labels;
    metrics::InternedLabels duration_labels;
    metrics::InternedLabels retries_labels;
    // Per-target symbol-resolution cache — the heart of the zero-copy
    // parse path. Key: 64-bit FNV-1a of the raw series text (metric name
    // + label block, byte-for-byte as exposed), verified against the
    // stored raw bytes so a hash collision can never alias two series.
    // Value: the fully resolved label set (exposition labels interned
    // against the global SymbolTable, __name__ and target labels merged)
    // — built once per series lifetime, so a stable target's steady-state
    // scrape does zero symbol-table lookups and zero label allocations.
    // The `live` flag replaces the old per-sweep live_series map as the
    // staleness-marker diff basis; entries dead for kEvictSweeps sweeps
    // are evicted during the post-sweep scan. unordered_map reference
    // stability keeps SampleRef pointers valid while a batch is alive.
    // Touched only by the (single) sweep thread scraping this target.
    struct CachedSeries {
      std::string raw_key;
      metrics::InternedLabels labels;
      uint64_t last_seen = 0;  // sweep generation of last appearance
      bool live = false;       // exposed on the last successful scrape
    };
    std::unordered_map<uint64_t, CachedSeries> series_cache;
    // Stable backing for the (astronomically rare) line whose key hash
    // collides with a different cached series: parsed in full, appended
    // here, never cached. Cleared at the start of every sweep.
    std::deque<metrics::InternedLabels> overflow_labels;
    uint64_t sweep_gen = 0;
    // Reused per-sweep scratch batch; labels point into series_cache /
    // overflow_labels.
    std::vector<metrics::SampleRef> batch;
    // Scrape-level retry attempts (local transport); HTTP transport
    // retries are counted inside http::Client and added on export.
    uint64_t local_retries = 0;
    uint64_t consecutive_failures = 0;
  };

  // Sweeps a dead cache entry stays resident before eviction (cheap
  // re-resolution insurance for flapping series).
  static constexpr uint64_t kEvictSweeps = 8;

  struct TargetSweep {
    int64_t ingested = -1;  // samples ingested, or -1 on failure
    uint64_t retries = 0;
    uint64_t stale_markers = 0;
  };

  // Scrapes one target, applying retries and staleness markers.
  TargetSweep scrape_target(TargetState& state, common::TimestampMs now);

  // Zero-copy exposition parse: walks `body` line by line as
  // string_views, resolves each series through the target's cache and
  // fills state.batch. Throws metrics::ExpositionParseError on exactly
  // the inputs metrics::parse_exposition rejects.
  void parse_into_batch(TargetState& state, std::string_view body,
                        common::TimestampMs now);
  // Cache-miss path: full strict parse of the series part of a line
  // (name + label block), resolved against the symbol table and merged
  // with target labels. Sets *end_pos to one past the series text.
  metrics::InternedLabels resolve_series_strict(TargetState& state,
                                                std::string_view line,
                                                std::size_t name_len,
                                                std::size_t* end_pos);

  StorePtr store_;
  common::ClockPtr clock_;
  ScrapeConfig config_;

  mutable std::mutex targets_mu_;
  std::vector<std::unique_ptr<TargetState>> targets_;

  // Reused by scrape_all_once (single sweep driver at a time); sized
  // min(parallelism, targets) and rebuilt only when that width changes.
  std::unique_ptr<common::ThreadPool> sweep_pool_;
  std::size_t sweep_pool_width_ = 0;

  std::atomic<uint64_t> scrapes_total_{0};
  std::atomic<uint64_t> scrapes_failed_{0};
  std::atomic<uint64_t> samples_ingested_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> stale_markers_{0};

  std::atomic<bool> running_{false};
  std::thread loop_thread_;
};

}  // namespace ceems::tsdb
