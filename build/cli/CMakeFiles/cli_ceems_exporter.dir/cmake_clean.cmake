file(REMOVE_RECURSE
  "CMakeFiles/cli_ceems_exporter.dir/ceems_exporter.cpp.o"
  "CMakeFiles/cli_ceems_exporter.dir/ceems_exporter.cpp.o.d"
  "ceems_exporter"
  "ceems_exporter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cli_ceems_exporter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
