
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/slurm/cluster.cpp" "src/slurm/CMakeFiles/ceems_slurm.dir/cluster.cpp.o" "gcc" "src/slurm/CMakeFiles/ceems_slurm.dir/cluster.cpp.o.d"
  "/root/repo/src/slurm/cluster_sim.cpp" "src/slurm/CMakeFiles/ceems_slurm.dir/cluster_sim.cpp.o" "gcc" "src/slurm/CMakeFiles/ceems_slurm.dir/cluster_sim.cpp.o.d"
  "/root/repo/src/slurm/job.cpp" "src/slurm/CMakeFiles/ceems_slurm.dir/job.cpp.o" "gcc" "src/slurm/CMakeFiles/ceems_slurm.dir/job.cpp.o.d"
  "/root/repo/src/slurm/scheduler.cpp" "src/slurm/CMakeFiles/ceems_slurm.dir/scheduler.cpp.o" "gcc" "src/slurm/CMakeFiles/ceems_slurm.dir/scheduler.cpp.o.d"
  "/root/repo/src/slurm/slurmdbd.cpp" "src/slurm/CMakeFiles/ceems_slurm.dir/slurmdbd.cpp.o" "gcc" "src/slurm/CMakeFiles/ceems_slurm.dir/slurmdbd.cpp.o.d"
  "/root/repo/src/slurm/workload_gen.cpp" "src/slurm/CMakeFiles/ceems_slurm.dir/workload_gen.cpp.o" "gcc" "src/slurm/CMakeFiles/ceems_slurm.dir/workload_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ceems_common.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/ceems_node.dir/DependInfo.cmake"
  "/root/repo/build/src/simfs/CMakeFiles/ceems_simfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
