#include "soak/invariants.h"

#include <algorithm>

#include "common/strutil.h"
#include "metrics/model.h"
#include "tsdb/promql_eval.h"

namespace ceems::soak {
namespace {

using metrics::LabelMatcher;

// Checkpoint queries run uncached so every run scans the same points.
const tsdb::promql::Engine& invariant_engine() {
  static const tsdb::promql::Engine* engine = [] {
    tsdb::promql::EngineOptions options;
    options.query_cache_capacity = 0;
    return new tsdb::promql::Engine(options);
  }();
  return *engine;
}

}  // namespace

InvariantChecker::InvariantChecker(const Scenario& scenario, int node_count,
                                   std::size_t target_count)
    : scenario_(scenario),
      node_count_(node_count),
      target_count_(target_count) {
  bytes_ceiling_ = scenario.budgets.bytes_fixed +
                   scenario.budgets.bytes_per_node *
                       static_cast<std::size_t>(node_count);
  ingest_lag_budget_ms_ = scenario.budgets.ingest_lag_ms > 0
                              ? scenario.budgets.ingest_lag_ms
                              : 3 * scenario.scrape_interval_ms;
}

void InvariantChecker::violate(common::TimestampMs now,
                               const std::string& what) {
  violations_.push_back("[t=" + common::format_duration_ms(now) + "] " + what);
}

void InvariantChecker::at_checkpoint(core::CeemsStack& stack,
                                     common::TimestampMs now) {
  auto hot = stack.hot_store()->stats();
  auto longterm = stack.longterm()->stats();
  // symbol_bytes is process-wide and reported once, not per store.
  std::size_t total_bytes =
      hot.approx_bytes + longterm.approx_bytes + hot.symbol_bytes;
  peak_bytes_ = std::max(peak_bytes_, total_bytes);
  max_series_ = std::max(max_series_, hot.num_series);
  if (total_bytes > bytes_ceiling_) {
    violate(now, "memory ceiling: " + std::to_string(total_bytes) +
                     " bytes > " + std::to_string(bytes_ceiling_) +
                     " (hot=" + std::to_string(hot.approx_bytes) +
                     " longterm=" + std::to_string(longterm.approx_bytes) +
                     " symbols=" + std::to_string(hot.symbol_bytes) + ")");
  }

  auto newest = stack.hot_store()->max_time();
  if (!newest) {
    violate(now, "ingest lag: hot store is empty");
  } else if (now - *newest > ingest_lag_budget_ms_) {
    violate(now, "ingest lag: newest sample trails the clock by " +
                     common::format_duration_ms(now - *newest) + " > " +
                     common::format_duration_ms(ingest_lag_budget_ms_));
  }

  // Every scrape target must keep an `up` series — flapping turns up to
  // 0, it never silently removes the target from the store.
  auto ups = stack.hot_store()->select(
      {{"__name__", LabelMatcher::Op::kEq, "up"}},
      now - 2 * scenario_.scrape_interval_ms, now);
  if (ups.size() != target_count_) {
    violate(now, "up coverage: " + std::to_string(ups.size()) +
                     " up series in the last two sweeps, expected " +
                     std::to_string(target_count_));
  }
}

void InvariantChecker::record_query_points(uint64_t points) {
  query_points_.push_back(points);
}

void InvariantChecker::after_cardinality_storm(core::CeemsStack& stack,
                                               common::TimestampMs now) {
  auto& hot = *stack.hot_store();
  // The raw store must still hold the storm series (retention has not
  // caught up yet)...
  auto raw = hot.select({{"__name__", LabelMatcher::Op::kEq,
                          kStormMetricName}},
                        0, now);
  if (raw.empty()) {
    violate(now, "cardinality storm left no trace in the raw store "
                 "(storm exporter never scraped?)");
    return;
  }
  // ...yet every storm series must be invisible to instant queries: the
  // sweep after the storm ended stale-marked them all.
  auto value = invariant_engine().eval(hot, kStormMetricName, now);
  if (!value.vector.empty()) {
    violate(now, "staleness leak: " + std::to_string(value.vector.size()) +
                     " of " + std::to_string(raw.size()) + " " +
                     kStormMetricName +
                     " series still visible to instant queries after the "
                     "cardinality storm ended");
  }
}

void InvariantChecker::at_recovery_end(core::CeemsStack& stack,
                                       common::TimestampMs now,
                                       bool lb_running) {
  auto& hot = *stack.hot_store();

  // Every target recovered: a full complement of up series, all == 1.
  auto ups = invariant_engine().eval(hot, "up", now);
  std::size_t up_ok = 0;
  for (const auto& sample : ups.vector) {
    if (sample.value == 1.0) ++up_ok;
  }
  if (ups.vector.size() != target_count_ || up_ok != target_count_) {
    violate(now, "recovery: " + std::to_string(up_ok) + "/" +
                     std::to_string(ups.vector.size()) + " up series are 1, "
                     "expected all " + std::to_string(target_count_) +
                     " targets up");
  }

  // Live node series must be query-visible — a staleness marker leaked
  // onto a healthy node's series would drop it from the instant vector.
  auto power = invariant_engine().eval(hot, "ceems_ipmi_dcmi_current_watts",
                                       now);
  if (power.vector.size() != static_cast<std::size_t>(node_count_)) {
    violate(now, "staleness leak: " + std::to_string(power.vector.size()) +
                     "/" + std::to_string(node_count_) +
                     " nodes report IPMI power after recovery");
  }

  // Emissions providers back from the outage: the factor series carries a
  // fresh, non-stale sample.
  if (scenario_.outage) {
    auto factors = hot.select(
        {{"__name__", LabelMatcher::Op::kEq, "ceems_emissions_gCo2_kWh"}},
        now - 2 * scenario_.scrape_interval_ms, now);
    bool fresh = false;
    for (const auto& view : factors) {
      auto last = view.last();
      if (last && !metrics::is_stale_marker(last->v)) fresh = true;
    }
    if (!fresh) {
      violate(now, "emissions recovery: no fresh factor sample within two "
                   "sweeps of the run end");
    }
  }

  // LB circuit breakers re-closed, and the proxy path serves again.
  if (lb_running) {
    for (const auto& backend : stack.load_balancer().backend_stats()) {
      if (backend.circuit != lb::CircuitState::kClosed) {
        violate(now, "circuit breaker for " + backend.base_url +
                         " still " +
                         lb::circuit_state_name(backend.circuit) +
                         " after recovery (opened " +
                         std::to_string(backend.circuit_opens) + "x)");
      }
    }
    http::Request probe;
    probe.method = "GET";
    probe.target = "/api/v1/query?query=sum(up)";
    probe.headers["X-Grafana-User"] = "admin";
    auto response = stack.load_balancer().handle_proxy(probe);
    if (response.status != 200) {
      violate(now, "LB probe after recovery returned " +
                       std::to_string(response.status) + ", expected 200");
    }
  }
}

bool InvariantChecker::finish() {
  if (!query_points_.empty()) {
    std::vector<uint64_t> sorted = query_points_;
    std::sort(sorted.begin(), sorted.end());
    std::size_t index =
        (sorted.size() * 99 + 99) / 100;  // ceil(0.99 * n), 1-based
    query_points_p99_ = sorted[std::min(index, sorted.size()) - 1];
    if (query_points_p99_ > scenario_.budgets.query_points_p99) {
      violations_.push_back(
          "[end] query step budget: p99 points scanned per checkpoint "
          "query is " +
          std::to_string(query_points_p99_) + " > budget " +
          std::to_string(scenario_.budgets.query_points_p99));
    }
  }
  return violations_.empty();
}

}  // namespace ceems::soak
