// /proc/stat and /proc/meminfo in the kernel's text formats. The node
// simulator maintains them; the exporter's node collector parses them for
// whole-node CPU time and memory (the denominators of the paper's Eq. 1).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "simfs/pseudo_fs.h"

namespace ceems::simfs {

// Per-CPU jiffies by mode, mirroring one "cpuN ..." line. USER_HZ = 100.
struct ProcCpuLine {
  int64_t user = 0;
  int64_t nice = 0;
  int64_t system = 0;
  int64_t idle = 0;
  int64_t iowait = 0;
  int64_t irq = 0;
  int64_t softirq = 0;

  int64_t total() const {
    return user + nice + system + idle + iowait + irq + softirq;
  }
  int64_t busy() const { return total() - idle - iowait; }
};

struct ProcStat {
  ProcCpuLine aggregate;            // the "cpu" line
  std::vector<ProcCpuLine> cpus;    // "cpu0".."cpuN"
  int64_t boot_time_sec = 0;
};

struct MemInfo {
  int64_t mem_total_kb = 0;
  int64_t mem_free_kb = 0;
  int64_t mem_available_kb = 0;
  int64_t buffers_kb = 0;
  int64_t cached_kb = 0;
};

// Writer: renders the structures into /proc/stat and /proc/meminfo.
void write_proc_stat(PseudoFs& fs, const ProcStat& stat);
void write_meminfo(PseudoFs& fs, const MemInfo& info);

// Reader: parses the files back; nullopt if absent/malformed.
std::optional<ProcStat> read_proc_stat(const Fs& fs);
std::optional<MemInfo> read_meminfo(const Fs& fs);

}  // namespace ceems::simfs
