// E11 — RAPL vs IPMI-DCMI as energy sources (§II-A.b: RAPL counters are
// available "at microsecond granularity" while "the IPMI-DCMI command is
// not suitable to use at a high frequency").
//
// A node runs a square-wave workload (busy/idle bursts of period P). Both
// sources are scraped every 30 s, like the real exporter:
//   * RAPL: cumulative energy counter → the counter itself integrates the
//     bursts, so scraped deltas recover energy exactly regardless of P;
//   * IPMI: an instantaneous gauge, refreshed by the BMC only every 5 s
//     and sampled at scrape time → energy reconstructed as reading × 30 s
//     aliases badly once P approaches the scrape/refresh scale.
//
// Expected shape: RAPL energy error ≈ 0 for every period; IPMI error grows
// sharply as the burst period drops below ~2× the scrape interval. This is
// why CEEMS keeps both: IPMI for whole-node coverage, RAPL for fidelity —
// and Eq. 1 mixes them.
#include <benchmark/benchmark.h>

#include "common/logging.h"

#include <cmath>
#include <cstdio>

#include "node/ipmi.h"
#include "node/power_model.h"
#include "node/rapl.h"

using namespace ceems;

namespace {

struct SourceError {
  double rapl_energy_error_pct = 0;
  double ipmi_energy_error_pct = 0;
  double ipmi_power_rms_w = 0;
};

SourceError run_burst_experiment(int64_t burst_period_ms) {
  auto clock = common::make_sim_clock(0);
  node::NodeSpec spec = node::make_intel_cpu_node("n");
  node::PowerModel model(spec);
  auto fs = std::make_shared<simfs::PseudoFs>();
  node::RaplBank rapl(fs, spec);
  node::IpmiDcmi ipmi(clock, spec.ipmi_update_interval_ms);

  node::WorkloadUsage busy;
  busy.job_id = 1;
  busy.alloc_cpus = spec.total_cpus();
  busy.cpu_util = 1.0;
  busy.memory_bytes = spec.memory_bytes / 2;

  const int64_t sim_ms = common::kMillisPerHour;
  const int64_t dt_ms = 1000;
  const int64_t scrape_ms = 30000;

  double true_joules = 0;
  double ipmi_joules = 0;
  double ipmi_power_sq_err = 0;
  int scrapes = 0;
  double rapl_healed = 0;
  // Baseline RAPL reading at t=0, so the healed counter covers the full
  // window rather than starting at the first scrape.
  int64_t prev_raw = 0;

  for (int64_t t = 0; t < sim_ms; t += dt_ms) {
    bool on = (t % burst_period_ms) < burst_period_ms / 2;
    std::vector<node::WorkloadUsage> usages;
    if (on) usages.push_back(busy);
    node::PowerBreakdown power = model.node_power(usages);
    true_joules += power.node_dc_w * (dt_ms / 1000.0);
    rapl.integrate(power.cpu_pkg_w, power.dram_w, dt_ms);
    ipmi.offer_power(power.ipmi_w);
    clock->advance(dt_ms);

    if ((t + dt_ms) % scrape_ms == 0) {
      // Scrape both sources, as the exporter would.
      auto readings = node::read_rapl(*fs);
      int64_t total_uj = 0;
      for (const auto& reading : readings) {
        if (reading.domain.rfind("package", 0) == 0)
          total_uj += reading.energy_uj;
      }
      rapl_healed += node::rapl_joules_between(prev_raw, total_uj,
                                               2LL * 262143328850LL);
      prev_raw = total_uj;

      auto reading = ipmi.read();
      double watts = static_cast<double>(reading.watts) /
                     spec.psu_overhead_factor;  // back to DC
      ipmi_joules += watts * (scrape_ms / 1000.0);
      // Instantaneous comparison against the true current power.
      node::PowerBreakdown now_power = model.node_power(
          ((t + dt_ms) % burst_period_ms) < burst_period_ms / 2
              ? std::vector<node::WorkloadUsage>{busy}
              : std::vector<node::WorkloadUsage>{});
      double err = watts - now_power.node_dc_w;
      ipmi_power_sq_err += err * err;
      ++scrapes;
    }
  }
  // RAPL covers CPU+DRAM only; compare against the true CPU+DRAM energy.
  double true_cpu_dram = 0;
  {
    // Recompute: same loop, component-only integral.
    for (int64_t t = 0; t < sim_ms; t += dt_ms) {
      bool on = (t % burst_period_ms) < burst_period_ms / 2;
      std::vector<node::WorkloadUsage> usages;
      if (on) usages.push_back(busy);
      node::PowerBreakdown power = model.node_power(usages);
      true_cpu_dram += (power.cpu_pkg_w) * (dt_ms / 1000.0);
    }
  }
  // IPMI covers the whole node; compare to full true energy.
  SourceError out;
  out.rapl_energy_error_pct =
      100.0 * std::fabs(rapl_healed - true_cpu_dram) / true_cpu_dram;
  out.ipmi_energy_error_pct =
      100.0 * std::fabs(ipmi_joules - true_joules) / true_joules;
  out.ipmi_power_rms_w = std::sqrt(ipmi_power_sq_err / scrapes);
  return out;
}

void BM_rapl_sysfs_read(benchmark::State& state) {
  auto fs = std::make_shared<simfs::PseudoFs>();
  node::NodeSpec spec = node::make_intel_cpu_node("n");
  node::RaplBank rapl(fs, spec);
  rapl.integrate(200, 40, 1000);
  for (auto _ : state) {
    auto readings = node::read_rapl(*fs);
    benchmark::DoNotOptimize(readings);
  }
}
BENCHMARK(BM_rapl_sysfs_read);

void BM_ipmi_read(benchmark::State& state) {
  auto clock = common::make_sim_clock(0);
  node::IpmiDcmi ipmi(clock, 5000);
  ipmi.offer_power(320);
  for (auto _ : state) {
    std::string output = node::format_dcmi_output(ipmi.read());
    auto parsed = node::parse_dcmi_output(output);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_ipmi_read);

}  // namespace

int main(int argc, char** argv) {
  common::set_log_level(common::LogLevel::kError);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\nE11 — 1 h square-wave workload, 30 s scrapes, 5 s BMC "
              "refresh\n");
  std::printf("%-14s | %-18s | %-18s | %-14s\n", "burst period",
              "RAPL energy err %", "IPMI energy err %", "IPMI RMS (W)");
  // Periods deliberately include values incommensurate with the 30 s
  // scrape grid (45 s, 25 s): commensurate bursts average out by luck,
  // incommensurate ones expose the gauge-sampling alias.
  for (int64_t period_s : {3600, 600, 90, 45, 25}) {
    SourceError err = run_burst_experiment(period_s * 1000);
    std::printf("%-14s | %18.2f | %18.2f | %14.1f\n",
                (std::to_string(period_s) + " s").c_str(),
                err.rapl_energy_error_pct, err.ipmi_energy_error_pct,
                err.ipmi_power_rms_w);
  }
  std::printf("\ncounters integrate (RAPL exact at any burst rate); gauges "
              "alias (IPMI error explodes for fast bursts).\n");
  return 0;
}
