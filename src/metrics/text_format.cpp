#include "metrics/text_format.h"

#include <map>

#include "common/strutil.h"

namespace ceems::metrics {

using common::format_double;
using common::parse_double;
using common::parse_int64;
using common::split_fields;
using common::starts_with;
using common::trim;

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (value[i] == '\\' && i + 1 < value.size()) {
      char e = value[++i];
      if (e == 'n') out += '\n';
      else out += e;  // covers \\ and \" plus unknown escapes verbatim
    } else {
      out += value[i];
    }
  }
  return out;
}

std::string encode_families(const std::vector<MetricFamily>& families) {
  std::string out;
  for (const auto& family : families) {
    if (!family.help.empty()) {
      out += "# HELP ";
      out += family.name;
      out += ' ';
      out += family.help;
      out += '\n';
    }
    out += "# TYPE ";
    out += family.name;
    out += ' ';
    out += metric_type_name(family.type);
    out += '\n';
    for (const auto& metric : family.metrics) {
      out += family.name;
      if (!metric.labels.empty()) {
        out += '{';
        bool first = true;
        for (const auto& [name, value] : metric.labels.pairs()) {
          if (!first) out += ',';
          first = false;
          out += name;
          out += "=\"";
          out += escape_label_value(value);
          out += '"';
        }
        out += '}';
      }
      out += ' ';
      out += format_double(metric.value);
      if (metric.timestamp_ms != 0) {
        out += ' ';
        out += std::to_string(metric.timestamp_ms);
      }
      out += '\n';
    }
  }
  return out;
}

namespace {

// Parses the {a="b",c="d"} label block. `pos` points at '{' on entry and
// one past '}' on exit.
Labels parse_label_block(std::string_view line, std::size_t& pos) {
  std::vector<Labels::Pair> pairs;
  ++pos;  // consume '{'
  for (;;) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == ',')) ++pos;
    if (pos < line.size() && line[pos] == '}') {
      ++pos;
      return Labels(std::move(pairs));
    }
    std::size_t name_start = pos;
    while (pos < line.size() && line[pos] != '=') ++pos;
    if (pos >= line.size())
      throw ExpositionParseError("unterminated label block: " +
                                 std::string(line));
    std::string name(trim(line.substr(name_start, pos - name_start)));
    ++pos;  // '='
    if (pos >= line.size() || line[pos] != '"')
      throw ExpositionParseError("label value must be quoted: " +
                                 std::string(line));
    ++pos;  // '"'
    std::size_t value_start = pos;
    while (pos < line.size() && line[pos] != '"') {
      if (line[pos] == '\\' && pos + 1 < line.size()) pos += 2;
      else ++pos;
    }
    if (pos >= line.size())
      throw ExpositionParseError("unterminated label value: " +
                                 std::string(line));
    std::string value =
        unescape_label_value(line.substr(value_start, pos - value_start));
    ++pos;  // closing '"'
    if (!is_valid_label_name(name))
      throw ExpositionParseError("invalid label name '" + name + "'");
    pairs.emplace_back(std::move(name), std::move(value));
  }
}

}  // namespace

ParsedExposition parse_exposition(std::string_view text) {
  ParsedExposition result;
  std::map<std::string, std::size_t> family_index;

  auto family_for = [&](const std::string& name) -> MetricFamily& {
    auto it = family_index.find(name);
    if (it == family_index.end()) {
      it = family_index.emplace(name, result.families.size()).first;
      result.families.push_back(MetricFamily{name, "", MetricType::kUntyped, {}});
    }
    return result.families[it->second];
  };

  for (std::string_view raw : common::split(text, '\n')) {
    std::string_view line = trim(raw);
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# HELP name text" / "# TYPE name type"; other comments skipped.
      std::string_view rest = trim(line.substr(1));
      if (starts_with(rest, "HELP ")) {
        rest = trim(rest.substr(5));
        std::size_t space = rest.find(' ');
        std::string name(space == std::string_view::npos ? rest
                                                         : rest.substr(0, space));
        std::string help(space == std::string_view::npos
                             ? std::string_view{}
                             : trim(rest.substr(space + 1)));
        family_for(name).help = help;
      } else if (starts_with(rest, "TYPE ")) {
        auto fields = split_fields(rest.substr(5));
        if (fields.size() >= 2) {
          MetricType type = MetricType::kUntyped;
          if (fields[1] == "counter") type = MetricType::kCounter;
          else if (fields[1] == "gauge") type = MetricType::kGauge;
          family_for(fields[0]).type = type;
        }
      }
      continue;
    }

    // Sample line: name[{labels}] value [timestamp]
    std::size_t pos = 0;
    while (pos < line.size() && line[pos] != '{' && line[pos] != ' ' &&
           line[pos] != '\t')
      ++pos;
    std::string name(line.substr(0, pos));
    if (!is_valid_metric_name(name))
      throw ExpositionParseError("invalid metric name in line: " +
                                 std::string(line));
    Labels labels;
    if (pos < line.size() && line[pos] == '{')
      labels = parse_label_block(line, pos);
    auto fields = split_fields(line.substr(pos));
    if (fields.empty())
      throw ExpositionParseError("missing value in line: " + std::string(line));
    auto value = parse_double(fields[0]);
    if (!value)
      throw ExpositionParseError("bad sample value '" + fields[0] + "'");
    TimestampMs timestamp = 0;
    if (fields.size() >= 2) {
      auto ts = parse_int64(fields[1]);
      if (!ts)
        throw ExpositionParseError("bad timestamp '" + fields[1] + "'");
      timestamp = *ts;
    }

    MetricFamily& family = family_for(name);
    // Intern the label set once per line; after the first scrape of a
    // target every (name, value) string resolves to an existing symbol, so
    // steady-state parsing allocates no per-sample label strings.
    result.samples.push_back(
        Sample{InternedLabels(labels).with(kMetricNameLabel, name), timestamp,
               *value});
    family.metrics.push_back({std::move(labels), *value, timestamp});
  }
  return result;
}

}  // namespace ceems::metrics
