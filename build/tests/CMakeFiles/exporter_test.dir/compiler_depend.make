# Empty compiler generated dependencies file for exporter_test.
# This may be replaced when dependencies are built.
