file(REMOVE_RECURSE
  "CMakeFiles/ceems_common.dir/clock.cpp.o"
  "CMakeFiles/ceems_common.dir/clock.cpp.o.d"
  "CMakeFiles/ceems_common.dir/json.cpp.o"
  "CMakeFiles/ceems_common.dir/json.cpp.o.d"
  "CMakeFiles/ceems_common.dir/logging.cpp.o"
  "CMakeFiles/ceems_common.dir/logging.cpp.o.d"
  "CMakeFiles/ceems_common.dir/rng.cpp.o"
  "CMakeFiles/ceems_common.dir/rng.cpp.o.d"
  "CMakeFiles/ceems_common.dir/strutil.cpp.o"
  "CMakeFiles/ceems_common.dir/strutil.cpp.o.d"
  "CMakeFiles/ceems_common.dir/threadpool.cpp.o"
  "CMakeFiles/ceems_common.dir/threadpool.cpp.o.d"
  "CMakeFiles/ceems_common.dir/yamlconf.cpp.o"
  "CMakeFiles/ceems_common.dir/yamlconf.cpp.o.d"
  "libceems_common.a"
  "libceems_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceems_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
