// Blocking HTTP/1.1 client with optional connection reuse. Used by the
// scrape manager (GET /metrics against every node), the LB (proxying to
// Prometheus backends) and the API server (ownership checks).
#pragma once

#include <optional>
#include <string>

#include "http/message.h"

namespace ceems::http {

struct ClientConfig {
  int connect_timeout_ms = 2000;
  int io_timeout_ms = 5000;
  BasicAuthConfig basic_auth;
};

// Result of a request; `ok` is false on transport errors (connect refused,
// timeout, malformed response), with `error` describing the failure. HTTP
// error statuses are NOT transport errors.
struct FetchResult {
  bool ok = false;
  std::string error;
  Response response;
};

class Client {
 public:
  explicit Client(ClientConfig config = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;

  // url must be http://host:port/path?query
  FetchResult get(const std::string& url, const HeaderMap& headers = {});
  FetchResult post(const std::string& url, const std::string& body,
                   const std::string& content_type = "application/json",
                   const HeaderMap& headers = {});
  FetchResult request(const std::string& method, const std::string& url,
                      const std::string& body, const HeaderMap& headers);

 private:
  struct ParsedUrl {
    std::string host;
    uint16_t port = 80;
    std::string target;
  };
  static std::optional<ParsedUrl> parse_url(const std::string& url);
  int connect_to(const ParsedUrl& url, std::string& error);

  ClientConfig config_;
  // Kept-alive connection to the most recent host:port.
  int cached_fd_ = -1;
  std::string cached_endpoint_;
};

}  // namespace ceems::http
