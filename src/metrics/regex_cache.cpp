#include "metrics/regex_cache.h"

#include <list>
#include <mutex>
#include <unordered_map>

namespace ceems::metrics {

namespace {

// Bounded enough for every live dashboard/rule pattern, small enough that a
// hostile stream of unique patterns stays O(capacity) memory.
constexpr std::size_t kCapacity = 128;

struct Cache {
  std::mutex mu;
  // Most-recently-used at the front.
  std::list<std::string> lru;
  struct Entry {
    std::shared_ptr<const std::regex> regex;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, Entry> entries;
  RegexCacheStats stats;
};

Cache& cache() {
  static Cache* instance = new Cache();  // intentionally leaked
  return *instance;
}

}  // namespace

std::shared_ptr<const std::regex> compiled_anchored_regex(
    const std::string& pattern) {
  Cache& c = cache();
  {
    std::lock_guard lock(c.mu);
    auto it = c.entries.find(pattern);
    if (it != c.entries.end()) {
      ++c.stats.hits;
      c.lru.splice(c.lru.begin(), c.lru, it->second.lru_it);
      return it->second.regex;
    }
  }
  // Compile outside the lock: regex construction is the expensive part and
  // may throw std::regex_error, which must reach the caller uncached.
  auto compiled = std::make_shared<const std::regex>(
      "^(?:" + pattern + ")$", std::regex::ECMAScript);
  std::lock_guard lock(c.mu);
  auto it = c.entries.find(pattern);
  if (it != c.entries.end()) {
    // Raced with another thread compiling the same pattern; keep theirs.
    ++c.stats.hits;
    c.lru.splice(c.lru.begin(), c.lru, it->second.lru_it);
    return it->second.regex;
  }
  ++c.stats.misses;
  if (c.entries.size() >= kCapacity) {
    ++c.stats.evictions;
    c.entries.erase(c.lru.back());
    c.lru.pop_back();
  }
  c.lru.push_front(pattern);
  c.entries.emplace(pattern, Cache::Entry{compiled, c.lru.begin()});
  return compiled;
}

RegexCacheStats regex_cache_stats() {
  Cache& c = cache();
  std::lock_guard lock(c.mu);
  return c.stats;
}

}  // namespace ceems::metrics
