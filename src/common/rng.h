// Deterministic pseudo-random number generator for the cluster simulator.
// SplitMix64 core: tiny state, excellent statistical quality for simulation
// workloads, and — unlike std::mt19937 seeded from random_device — fully
// reproducible across runs, which the property tests depend on.
#pragma once

#include <cstdint>

namespace ceems::common {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed) {}

  uint64_t next_u64();

  // Uniform double in [0, 1).
  double next_double();

  // Uniform integer in [lo, hi] inclusive.
  int64_t uniform_int(int64_t lo, int64_t hi);

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Exponential with the given mean (inter-arrival times of job churn).
  double exponential(double mean);

  // Normal via Box-Muller.
  double normal(double mean, double stddev);

  // Bernoulli trial.
  bool chance(double probability);

  // Creates an independent child stream (for per-node/per-job RNGs).
  Rng fork();

 private:
  uint64_t state_;
  bool have_spare_ = false;
  double spare_ = 0;
};

}  // namespace ceems::common
