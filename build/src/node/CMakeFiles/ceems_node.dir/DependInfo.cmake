
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/node/gpu.cpp" "src/node/CMakeFiles/ceems_node.dir/gpu.cpp.o" "gcc" "src/node/CMakeFiles/ceems_node.dir/gpu.cpp.o.d"
  "/root/repo/src/node/ipmi.cpp" "src/node/CMakeFiles/ceems_node.dir/ipmi.cpp.o" "gcc" "src/node/CMakeFiles/ceems_node.dir/ipmi.cpp.o.d"
  "/root/repo/src/node/node_sim.cpp" "src/node/CMakeFiles/ceems_node.dir/node_sim.cpp.o" "gcc" "src/node/CMakeFiles/ceems_node.dir/node_sim.cpp.o.d"
  "/root/repo/src/node/power_model.cpp" "src/node/CMakeFiles/ceems_node.dir/power_model.cpp.o" "gcc" "src/node/CMakeFiles/ceems_node.dir/power_model.cpp.o.d"
  "/root/repo/src/node/rapl.cpp" "src/node/CMakeFiles/ceems_node.dir/rapl.cpp.o" "gcc" "src/node/CMakeFiles/ceems_node.dir/rapl.cpp.o.d"
  "/root/repo/src/node/spec.cpp" "src/node/CMakeFiles/ceems_node.dir/spec.cpp.o" "gcc" "src/node/CMakeFiles/ceems_node.dir/spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ceems_common.dir/DependInfo.cmake"
  "/root/repo/build/src/simfs/CMakeFiles/ceems_simfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
