file(REMOVE_RECURSE
  "CMakeFiles/ceems_node.dir/gpu.cpp.o"
  "CMakeFiles/ceems_node.dir/gpu.cpp.o.d"
  "CMakeFiles/ceems_node.dir/ipmi.cpp.o"
  "CMakeFiles/ceems_node.dir/ipmi.cpp.o.d"
  "CMakeFiles/ceems_node.dir/node_sim.cpp.o"
  "CMakeFiles/ceems_node.dir/node_sim.cpp.o.d"
  "CMakeFiles/ceems_node.dir/power_model.cpp.o"
  "CMakeFiles/ceems_node.dir/power_model.cpp.o.d"
  "CMakeFiles/ceems_node.dir/rapl.cpp.o"
  "CMakeFiles/ceems_node.dir/rapl.cpp.o.d"
  "CMakeFiles/ceems_node.dir/spec.cpp.o"
  "CMakeFiles/ceems_node.dir/spec.cpp.o.d"
  "libceems_node.a"
  "libceems_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceems_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
