file(REMOVE_RECURSE
  "CMakeFiles/ceems_reldb.dir/database.cpp.o"
  "CMakeFiles/ceems_reldb.dir/database.cpp.o.d"
  "CMakeFiles/ceems_reldb.dir/table.cpp.o"
  "CMakeFiles/ceems_reldb.dir/table.cpp.o.d"
  "CMakeFiles/ceems_reldb.dir/value.cpp.o"
  "CMakeFiles/ceems_reldb.dir/value.cpp.o.d"
  "CMakeFiles/ceems_reldb.dir/wal.cpp.o"
  "CMakeFiles/ceems_reldb.dir/wal.cpp.o.d"
  "libceems_reldb.a"
  "libceems_reldb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceems_reldb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
