#include "node/power_model.h"

#include <algorithm>
#include <cmath>

namespace ceems::node {

double PowerModel::node_cpu_util(
    const std::vector<WorkloadUsage>& workloads) const {
  double busy_cpus = 0;
  for (const auto& workload : workloads) {
    busy_cpus += workload.cpu_util * workload.alloc_cpus;
  }
  return std::clamp(busy_cpus / std::max(1, spec_.total_cpus()), 0.0, 1.0);
}

double PowerModel::cpu_dynamic_w(double node_util) const {
  // Slightly sublinear utilization→power curve, as measured on real Xeons
  // (SPECpower-style): P_dyn = range * util^0.9.
  double range = spec_.cpu_tdp_w() - spec_.cpu_idle_w();
  return range * std::pow(std::clamp(node_util, 0.0, 1.0), 0.9);
}

PowerBreakdown PowerModel::node_power(
    const std::vector<WorkloadUsage>& workloads) const {
  PowerBreakdown out;
  double util = node_cpu_util(workloads);
  out.cpu_pkg_w = spec_.cpu_idle_w() + cpu_dynamic_w(util);

  // DRAM power scales with resident bytes and their activity.
  double mem_active_fraction = 0;
  for (const auto& workload : workloads) {
    double resident = static_cast<double>(workload.memory_bytes) /
                      static_cast<double>(spec_.memory_bytes);
    mem_active_fraction += resident * std::max(0.1, workload.memory_activity);
  }
  mem_active_fraction = std::clamp(mem_active_fraction, 0.0, 1.0);
  out.dram_w = spec_.dram_idle_w +
               (spec_.dram_max_w - spec_.dram_idle_w) * mem_active_fraction;

  out.per_gpu_w.assign(spec_.gpus.size(), 0.0);
  for (std::size_t i = 0; i < spec_.gpus.size(); ++i) {
    out.per_gpu_w[i] = spec_.gpus[i].idle_power_w;
  }
  for (const auto& workload : workloads) {
    for (int ordinal : workload.gpu_ordinals) {
      if (ordinal < 0 || static_cast<std::size_t>(ordinal) >= spec_.gpus.size())
        continue;
      const GpuSpec& gpu = spec_.gpus[static_cast<std::size_t>(ordinal)];
      out.per_gpu_w[static_cast<std::size_t>(ordinal)] =
          gpu.idle_power_w +
          (gpu.max_power_w - gpu.idle_power_w) *
              std::clamp(workload.gpu_util, 0.0, 1.0);
    }
  }
  for (double w : out.per_gpu_w) out.gpus_w += w;

  out.platform_w = spec_.platform_static_w;
  out.node_dc_w = out.cpu_pkg_w + out.dram_w + out.gpus_w + out.platform_w;

  double ipmi_dc = out.cpu_pkg_w + out.dram_w + out.platform_w +
                   (spec_.ipmi_includes_gpu ? out.gpus_w : 0.0);
  out.ipmi_w = ipmi_dc * spec_.psu_overhead_factor;
  return out;
}

std::vector<JobPowerTruth> PowerModel::attribute(
    const std::vector<WorkloadUsage>& workloads) const {
  std::vector<JobPowerTruth> out;
  if (workloads.empty()) return out;

  double util = node_cpu_util(workloads);
  double cpu_dyn_total = cpu_dynamic_w(util);
  double busy_cpus = 0;
  int alloc_cpus_total = 0;
  for (const auto& workload : workloads) {
    busy_cpus += workload.cpu_util * workload.alloc_cpus;
    alloc_cpus_total += workload.alloc_cpus;
  }

  // Static pool: CPU idle + DRAM idle + platform + PSU overhead share of
  // those, charged by allocated-CPU fraction (a job that reserves half the
  // node is responsible for half its idle burn).
  double static_pool = spec_.cpu_idle_w() + spec_.dram_idle_w +
                       spec_.platform_static_w;
  double dram_dyn_total = 0;
  {
    PowerBreakdown pb = node_power(workloads);
    dram_dyn_total = pb.dram_w - spec_.dram_idle_w;
  }
  double mem_weight_total = 0;
  for (const auto& workload : workloads) {
    mem_weight_total += static_cast<double>(workload.memory_bytes) *
                        std::max(0.1, workload.memory_activity);
  }

  for (const auto& workload : workloads) {
    JobPowerTruth truth;
    truth.job_id = workload.job_id;
    if (busy_cpus > 0) {
      truth.cpu_w = cpu_dyn_total *
                    (workload.cpu_util * workload.alloc_cpus) / busy_cpus;
    }
    if (mem_weight_total > 0) {
      truth.dram_w = dram_dyn_total *
                     (static_cast<double>(workload.memory_bytes) *
                      std::max(0.1, workload.memory_activity)) /
                     mem_weight_total;
    }
    for (int ordinal : workload.gpu_ordinals) {
      if (ordinal < 0 || static_cast<std::size_t>(ordinal) >= spec_.gpus.size())
        continue;
      const GpuSpec& gpu = spec_.gpus[static_cast<std::size_t>(ordinal)];
      // Bound GPU: the job owns its whole draw, idle included — nobody else
      // can use it while bound.
      truth.gpu_w += gpu.idle_power_w +
                     (gpu.max_power_w - gpu.idle_power_w) *
                         std::clamp(workload.gpu_util, 0.0, 1.0);
    }
    if (alloc_cpus_total > 0) {
      truth.static_share_w =
          static_pool * workload.alloc_cpus / alloc_cpus_total;
    }
    out.push_back(truth);
  }
  return out;
}

}  // namespace ceems::node
