// Label-indexed in-memory time-series storage — the Prometheus TSDB
// analogue. Series are identified by their full label set; an inverted
// index (label name/value → series ids) accelerates matcher evaluation.
// Samples per series are kept time-ordered; out-of-order appends within a
// small tolerance are rejected like Prometheus does.
//
// The same Queryable interface is implemented by the long-term store, so
// the PromQL engine runs unchanged over either — mirroring how Thanos
// serves the Prometheus remote-read API.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "metrics/labels.h"
#include "metrics/model.h"

namespace ceems::tsdb {

using common::TimestampMs;
using metrics::LabelMatcher;
using metrics::Labels;

struct SamplePoint {
  TimestampMs t = 0;
  double v = 0;
};

struct Series {
  Labels labels;
  std::vector<SamplePoint> samples;  // time-ordered
};

// Anything the PromQL engine can query.
class Queryable {
 public:
  virtual ~Queryable() = default;
  // All series matching every matcher, restricted to samples in
  // [min_t, max_t] inclusive.
  virtual std::vector<Series> select(const std::vector<LabelMatcher>& matchers,
                                     TimestampMs min_t,
                                     TimestampMs max_t) const = 0;
};

struct StorageStats {
  std::size_t num_series = 0;
  std::size_t num_samples = 0;
  std::size_t approx_bytes = 0;
};

class TimeSeriesStore final : public Queryable {
 public:
  // Appends one sample; creates the series on first sight. Returns false
  // (and drops the sample) if it is older than the series' newest sample.
  bool append(const Labels& labels, TimestampMs t, double v);
  // Bulk append of scrape output.
  void append_all(const std::vector<metrics::Sample>& samples);

  std::vector<Series> select(const std::vector<LabelMatcher>& matchers,
                             TimestampMs min_t,
                             TimestampMs max_t) const override;

  // Label values seen for a name (for API /api/v1/label/<n>/values).
  std::vector<std::string> label_values(const std::string& label_name) const;

  // Drops samples older than `cutoff` from all series; removes series that
  // become empty. Returns the number of samples dropped.
  std::size_t purge_before(TimestampMs cutoff);

  // Deletes whole matching series (the API server's cardinality cleanup of
  // §II-C: metrics of jobs shorter than the cutoff are removed wholesale).
  std::size_t delete_series(const std::vector<LabelMatcher>& matchers);

  StorageStats stats() const;

  // Newest sample timestamp across all series (sync cursor for long-term
  // replication), or nullopt when empty.
  std::optional<TimestampMs> max_time() const;

  // Series with samples at/after `since` (replication pull).
  std::vector<Series> series_since(TimestampMs since) const;

  // Durability: writes a compact binary snapshot of every series (the
  // Prometheus block-on-local-disk analogue of Fig. 1). Returns false on
  // IO error.
  bool snapshot_to(const std::string& path) const;
  // Loads a snapshot into this (empty or compatible) store; samples merge
  // through the normal append path. Returns samples restored, or nullopt
  // when the file is missing/corrupt (a torn header aborts cleanly).
  std::optional<std::size_t> restore_from(const std::string& path);

 private:
  struct Stripe;  // forward: per-series storage

  struct SeriesData {
    Labels labels;
    std::vector<SamplePoint> samples;
  };

  // Returns ids of series matching all matchers. Caller holds mu_.
  std::vector<uint64_t> match_ids(
      const std::vector<LabelMatcher>& matchers) const;

  mutable std::shared_mutex mu_;
  std::unordered_map<uint64_t, SeriesData> series_;  // by fingerprint
  // Inverted index: label name -> value -> fingerprints.
  std::map<std::string, std::map<std::string, std::set<uint64_t>>> index_;
  std::size_t total_samples_ = 0;
};

using StorePtr = std::shared_ptr<TimeSeriesStore>;

}  // namespace ceems::tsdb
