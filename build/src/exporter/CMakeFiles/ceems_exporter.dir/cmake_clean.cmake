file(REMOVE_RECURSE
  "CMakeFiles/ceems_exporter.dir/cgroup_collector.cpp.o"
  "CMakeFiles/ceems_exporter.dir/cgroup_collector.cpp.o.d"
  "CMakeFiles/ceems_exporter.dir/collector.cpp.o"
  "CMakeFiles/ceems_exporter.dir/collector.cpp.o.d"
  "CMakeFiles/ceems_exporter.dir/ebpf_collector.cpp.o"
  "CMakeFiles/ceems_exporter.dir/ebpf_collector.cpp.o.d"
  "CMakeFiles/ceems_exporter.dir/emissions_collector.cpp.o"
  "CMakeFiles/ceems_exporter.dir/emissions_collector.cpp.o.d"
  "CMakeFiles/ceems_exporter.dir/exporter.cpp.o"
  "CMakeFiles/ceems_exporter.dir/exporter.cpp.o.d"
  "CMakeFiles/ceems_exporter.dir/gpu_collector.cpp.o"
  "CMakeFiles/ceems_exporter.dir/gpu_collector.cpp.o.d"
  "CMakeFiles/ceems_exporter.dir/gpu_map_collector.cpp.o"
  "CMakeFiles/ceems_exporter.dir/gpu_map_collector.cpp.o.d"
  "CMakeFiles/ceems_exporter.dir/ipmi_collector.cpp.o"
  "CMakeFiles/ceems_exporter.dir/ipmi_collector.cpp.o.d"
  "CMakeFiles/ceems_exporter.dir/node_collector.cpp.o"
  "CMakeFiles/ceems_exporter.dir/node_collector.cpp.o.d"
  "CMakeFiles/ceems_exporter.dir/rapl_collector.cpp.o"
  "CMakeFiles/ceems_exporter.dir/rapl_collector.cpp.o.d"
  "CMakeFiles/ceems_exporter.dir/self_collector.cpp.o"
  "CMakeFiles/ceems_exporter.dir/self_collector.cpp.o.d"
  "libceems_exporter.a"
  "libceems_exporter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceems_exporter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
