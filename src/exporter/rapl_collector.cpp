#include "exporter/rapl_collector.h"

#include "common/strutil.h"

namespace ceems::exporter {

using metrics::Labels;
using metrics::MetricFamily;
using metrics::MetricType;

std::vector<metrics::MetricFamily> RaplCollector::collect(
    common::TimestampMs /*now*/) {
  MetricFamily package{"ceems_rapl_package_joules_total",
                       "Cumulative package energy from RAPL.",
                       MetricType::kCounter,
                       {}};
  MetricFamily dram{"ceems_rapl_dram_joules_total",
                    "Cumulative DRAM energy from RAPL.",
                    MetricType::kCounter,
                    {}};

  for (const auto& reading : node::read_rapl(*fs_)) {
    std::string key = reading.domain + "/" + std::to_string(reading.index);
    DomainState& state = state_[key];
    if (state.last_uj >= 0) {
      state.joules_total += node::rapl_joules_between(
          state.last_uj, reading.energy_uj, reading.max_energy_range_uj);
    } else {
      state.joules_total = static_cast<double>(reading.energy_uj) * 1e-6;
    }
    state.last_uj = reading.energy_uj;

    Labels labels{{"index", std::to_string(reading.index)},
                  {"path", "intel-rapl:" + std::to_string(reading.index)}};
    if (common::starts_with(reading.domain, "package")) {
      package.add(labels, state.joules_total);
    } else if (reading.domain == "dram") {
      dram.add(labels, state.joules_total);
    }
  }

  std::vector<MetricFamily> out;
  if (!package.metrics.empty()) out.push_back(std::move(package));
  if (!dram.metrics.empty()) out.push_back(std::move(dram));
  return out;
}

}  // namespace ceems::exporter
