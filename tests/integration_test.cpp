// End-to-end tests of the Fig. 1 architecture: exporters → hot TSDB →
// recording rules → long-term store → API server → LB → dashboards, over a
// simulated Jean-Zay slice. This is experiment E3 in test form.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>

#include "core/config.h"
#include "stack_fixture.h"

namespace ceems::core {
namespace {

using metrics::LabelMatcher;

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ceems::testing::MiniStackOptions options;
    options.stack.include_equal_split_baseline = true;
    mini_ = new ceems::testing::MiniStack(options);
    mini_->run(30 * common::kMillisPerMinute);
  }
  static void TearDownTestSuite() {
    delete mini_;
    mini_ = nullptr;
  }
  static ceems::testing::MiniStack* mini_;
};

ceems::testing::MiniStack* PipelineTest::mini_ = nullptr;

TEST_F(PipelineTest, AllTargetsUp) {
  tsdb::promql::Engine engine;
  auto value = engine.eval(*mini_->stack().hot_store(), "sum(up)",
                           mini_->clock()->now_ms());
  ASSERT_EQ(value.vector.size(), 1u);
  // node targets + 1 emissions target, all healthy.
  EXPECT_DOUBLE_EQ(value.vector[0].value,
                   static_cast<double>(mini_->sim().cluster().node_count()) +
                       1);
}

TEST_F(PipelineTest, RecordingRulesProducedJobPower) {
  auto series = mini_->stack().hot_store()->select(
      {{"__name__", LabelMatcher::Op::kEq, "ceems_job_power_watts"}}, 0,
      mini_->clock()->now_ms());
  EXPECT_GT(series.size(), 5u);
  for (const auto& s : series) {
    EXPECT_TRUE(s.labels.has("uuid"));
    EXPECT_TRUE(s.labels.has("hostname"));
    for (const auto& sample : s.samples()) {
      EXPECT_GE(sample.v, 0.0);
      EXPECT_LT(sample.v, 4000.0);  // no job draws more than a node
    }
  }
}

TEST_F(PipelineTest, EnergyConservationPerNode) {
  // Sum of estimated job power on a node ≈ its IPMI reading (Eq. 1
  // attributes 100% of the BMC wattage: 0.9 split + 0.1 network).
  tsdb::promql::Engine engine;
  common::TimestampMs now = mini_->clock()->now_ms();
  auto per_node = engine.eval(
      *mini_->stack().hot_store(),
      "sum by (hostname) (ceems_job_power_watts)", now);
  auto ipmi = engine.eval(*mini_->stack().hot_store(),
                          "sum by (hostname) (instance:ipmi_watts)", now);
  std::map<std::string, double> ipmi_by_host;
  for (const auto& sample : ipmi.vector) {
    ipmi_by_host[std::string(*sample.labels.get("hostname"))] = sample.value;
  }
  int checked = 0;
  for (const auto& sample : per_node.vector) {
    std::string host(*sample.labels.get("hostname"));
    double ipmi_watts = ipmi_by_host[host];
    if (ipmi_watts <= 0) continue;
    // GPU-excl nodes legitimately attribute more than IPMI (GPU power rides
    // on a separate feed); everyone else stays at or below IPMI + noise.
    EXPECT_GT(sample.value, 0.03 * ipmi_watts) << host;
    ++checked;
  }
  EXPECT_GT(checked, 3);
}

TEST_F(PipelineTest, LongTermStoreServesSameData) {
  tsdb::promql::Engine engine;
  common::TimestampMs now = mini_->clock()->now_ms();
  auto hot = engine.eval(*mini_->stack().hot_store(), "sum(up)", now);
  auto lt = engine.eval(*mini_->stack().longterm(), "sum(up)", now);
  ASSERT_EQ(hot.vector.size(), 1u);
  ASSERT_EQ(lt.vector.size(), 1u);
  EXPECT_DOUBLE_EQ(hot.vector[0].value, lt.vector[0].value);
}

TEST_F(PipelineTest, EqualSplitBaselineAlsoRecorded) {
  auto series = mini_->stack().hot_store()->select(
      {{"__name__", LabelMatcher::Op::kEq,
        "ceems_job_power_watts_equalsplit"}},
      0, mini_->clock()->now_ms());
  EXPECT_GT(series.size(), 5u);
}

TEST_F(PipelineTest, EstimatesTrackGroundTruthEnergy) {
  // E2 in miniature: for finished single-node jobs, the Eq. 1 estimate in
  // the units DB is compared to the simulator's causal ground truth.
  //
  // Expected relationship (quantified fully by bench_estimation): Eq. 1
  // distributes the *entire* node power among resident jobs, so on
  // under-utilized nodes each job also absorbs the node's idle burn and
  // the estimate OVER-states causal consumption — ratios well above 1 on
  // nearly-empty nodes, approaching ~1.1 on packed ones. It should never
  // wildly under-state.
  int compared = 0;
  double ratio_sum = 0;
  for (const auto& job : mini_->sim().dbd().all_jobs()) {
    if (!job.finished() || job.hostnames.size() != 1) continue;
    if (job.end_time_ms - job.start_time_ms < 10 * 60 * 1000) continue;
    auto unit_row = mini_->stack().db().get(
        apiserver::kUnitsTable, reldb::Value(std::to_string(job.job_id)));
    if (!unit_row) continue;
    auto unit = apiserver::unit_from_row(*unit_row);
    if (unit.total_energy_joules <= 0) continue;
    auto truth = mini_->sim()
                     .cluster()
                     .node(job.hostnames[0])
                     ->job_energy_truth(job.job_id);
    if (truth.total_j() <= 0) continue;
    double ratio = unit.total_energy_joules / truth.total_j();
    EXPECT_GT(ratio, 0.5) << "job " << job.job_id;
    EXPECT_LT(ratio, 12.0) << "job " << job.job_id;
    ratio_sum += ratio;
    ++compared;
  }
  ASSERT_GT(compared, 3);
  double mean_ratio = ratio_sum / compared;
  EXPECT_GT(mean_ratio, 0.9);  // no systematic under-attribution
  EXPECT_LT(mean_ratio, 4.0);  // over-attribution bounded by idle share
}

TEST_F(PipelineTest, CardinalityGrowsWithJobsNotUnbounded) {
  auto stats = mini_->stack().hot_store()->stats();
  // Sanity bounds: series per node is a few dozen, plus per-job series.
  std::size_t nodes = mini_->sim().cluster().node_count();
  EXPECT_GT(stats.num_series, nodes * 10);
  EXPECT_LT(stats.num_series, nodes * 100 + 200 * 60);
}

// Failure injection: one exporter goes dark mid-run; `up` flips to 0, the
// shipped CeemsExporterDown alert fires after its `for` window, the rest
// of the pipeline keeps working, and recovery resolves the alert.
TEST(FailureInjection, ExporterOutageFiresAlertAndResolves) {
  auto clock = common::make_sim_clock(1000000);
  auto node = std::make_shared<node::NodeSim>(
      node::make_intel_cpu_node("flaky"), clock, 1);
  auto healthy = std::make_shared<node::NodeSim>(
      node::make_intel_cpu_node("steady"), clock, 2);
  auto exp_flaky = make_ceems_exporter(node, clock);
  auto exp_healthy = make_ceems_exporter(healthy, clock);

  auto store = std::make_shared<tsdb::TimeSeriesStore>();
  tsdb::ScrapeManager scraper(store, clock);
  std::atomic<bool> dark{false};
  {
    tsdb::ScrapeTarget target;
    target.labels = metrics::Labels{{"hostname", "flaky"},
                                    {"nodegroup", "intel-cpu"}};
    exporter::Exporter* raw = exp_flaky.get();
    target.local_fetch = [raw, &dark, clock]() -> std::string {
      if (dark.load()) return "";  // exporter unreachable
      return raw->render(clock->now_ms());
    };
    scraper.add_target(std::move(target));
  }
  {
    tsdb::ScrapeTarget target;
    target.labels = metrics::Labels{{"hostname", "steady"},
                                    {"nodegroup", "intel-cpu"}};
    exporter::Exporter* raw = exp_healthy.get();
    target.local_fetch = [raw, clock] { return raw->render(clock->now_ms()); };
    scraper.add_target(std::move(target));
  }

  tsdb::RuleEngine rules(store);
  for (auto& group : ceems_alert_rules()) rules.add_group(std::move(group));

  auto tick = [&] {
    node->step(30000);
    healthy->step(30000);
    clock->advance(30000);
    scraper.scrape_all_once();
    // Keep the EmissionFactorMissing alert quiet: this rig has no
    // emissions target, so feed the factor series directly.
    store->append(metrics::Labels{{"provider", "rte"}}.with_name(
                      "ceems_emissions_gCo2_kWh"),
                  clock->now_ms(), 50);
    return rules.evaluate_all(clock->now_ms());
  };

  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(tick().alerts_firing, 0u);
  }
  dark.store(true);
  tsdb::RuleEvalStats during{};
  for (int i = 0; i < 6; ++i) during = tick();
  EXPECT_EQ(during.alerts_firing, 1u);
  auto active = rules.active_alerts();
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0].name, "CeemsExporterDown");
  EXPECT_EQ(*active[0].labels.get("hostname"), "flaky");
  // The healthy node kept reporting throughout the outage.
  tsdb::promql::Engine engine;
  auto steady_up = engine.eval(
      *store, "up{hostname=\"steady\"}", clock->now_ms());
  ASSERT_EQ(steady_up.vector.size(), 1u);
  EXPECT_DOUBLE_EQ(steady_up.vector[0].value, 1);

  dark.store(false);
  tsdb::RuleEvalStats after{};
  for (int i = 0; i < 2; ++i) after = tick();
  EXPECT_EQ(after.alerts_firing, 0u);
  EXPECT_TRUE(rules.active_alerts().empty());
}

// Durability: a hot store snapshot restores into a fresh instance and the
// PromQL engine answers identically (the Fig. 1 "local disk" behaviour).
TEST(Durability, HotStoreSnapshotSurvivesRestart) {
  ceems::testing::MiniStack mini;
  mini.run(10 * common::kMillisPerMinute);
  std::string path = ::testing::TempDir() + "stack_snapshot.bin";
  ASSERT_TRUE(mini.stack().hot_store()->snapshot_to(path));

  auto restored = std::make_shared<tsdb::TimeSeriesStore>();
  auto count = restored->restore_from(path);
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(restored->stats().num_samples,
            mini.stack().hot_store()->stats().num_samples);
  tsdb::promql::Engine engine;
  common::TimestampMs now = mini.clock()->now_ms();
  auto before = engine.eval(*mini.stack().hot_store(), "sum(up)", now);
  auto after = engine.eval(*restored, "sum(up)", now);
  ASSERT_EQ(before.vector.size(), 1u);
  ASSERT_EQ(after.vector.size(), 1u);
  EXPECT_DOUBLE_EQ(before.vector[0].value, after.vector[0].value);
  std::remove(path.c_str());
}

// ---------- configuration ----------

TEST(Config, ReferenceYamlParses) {
  LoadedConfig loaded = parse_config_text(reference_config_yaml());
  EXPECT_DOUBLE_EQ(loaded.sim.cluster_scale, 0.02);
  EXPECT_EQ(loaded.stack.scrape_interval_ms, 30000);
  EXPECT_EQ(loaded.stack.rate_window, "2m");
  EXPECT_EQ(loaded.stack.updater.interval_ms, 60000);
  EXPECT_EQ(loaded.stack.longterm.downsample_after_ms,
            2 * common::kMillisPerHour);
  EXPECT_EQ(loaded.stack.lb_strategy, lb::Strategy::kRoundRobin);
  EXPECT_EQ(loaded.stack.admin_users, std::set<std::string>{"admin"});
  EXPECT_EQ(loaded.stack.country_code, "FR");
}

TEST(Config, OverridesApply) {
  LoadedConfig loaded = parse_config_text(
      "simulation:\n"
      "  cluster_scale: 0.1\n"
      "  jobs_per_day: 9000\n"
      "ceems:\n"
      "  scrape:\n"
      "    interval: 15s\n"
      "    basic_auth:\n"
      "      username: prom\n"
      "      password: pw\n"
      "  updater:\n"
      "    small_unit_cutoff: 5m\n"
      "  lb:\n"
      "    strategy: least-connection\n"
      "    admins: [root, ops]\n"
      "  emissions:\n"
      "    provider: emaps\n"
      "    country: DE\n");
  EXPECT_DOUBLE_EQ(loaded.sim.jobs_per_day, 9000);
  EXPECT_EQ(loaded.stack.scrape_interval_ms, 15000);
  EXPECT_EQ(loaded.stack.exporter_auth.username, "prom");
  EXPECT_EQ(loaded.stack.updater.small_unit_cutoff_ms,
            5 * common::kMillisPerMinute);
  EXPECT_EQ(loaded.stack.lb_strategy, lb::Strategy::kLeastConnection);
  EXPECT_EQ(loaded.stack.admin_users.size(), 2u);
  EXPECT_EQ(loaded.stack.emission_provider, "emaps");
  EXPECT_EQ(loaded.stack.country_code, "DE");
}

TEST(Config, LongTermResolutionLadderParses) {
  LoadedConfig loaded = parse_config_text(
      "ceems:\n"
      "  longterm:\n"
      "    downsample_after: 4h\n"
      "    levels:\n"
      "      - resolution: 5m\n"
      "        retention: 30d\n"
      "      - resolution: 1h\n");
  EXPECT_EQ(loaded.stack.longterm.downsample_after_ms,
            4 * common::kMillisPerHour);
  ASSERT_EQ(loaded.stack.longterm.levels.size(), 2u);
  EXPECT_EQ(loaded.stack.longterm.levels[0].resolution_ms,
            5 * common::kMillisPerMinute);
  EXPECT_EQ(loaded.stack.longterm.levels[0].retention_ms,
            30 * 24 * common::kMillisPerHour);
  EXPECT_EQ(loaded.stack.longterm.levels[1].resolution_ms,
            common::kMillisPerHour);
  EXPECT_EQ(loaded.stack.longterm.levels[1].retention_ms, 0);
}

TEST(Config, MissingSectionsKeepDefaults) {
  LoadedConfig loaded = parse_config_text("unrelated: 1\n");
  EXPECT_EQ(loaded.stack.scrape_interval_ms, 30000);
  EXPECT_DOUBLE_EQ(loaded.sim.cluster_scale, 0.02);
}

// ---------- HTTP exporters in the stack ----------

TEST(StackHttp, SubsetOfNodesServeRealHttp) {
  ceems::testing::MiniStackOptions options;
  options.cluster_scale = 0.003;
  ceems::testing::MiniStack mini(options);
  // Re-create with HTTP exporters enabled: build a separate stack here.
  core::StackConfig config;
  config.http_exporter_count = 2;
  core::CeemsStack stack(mini.sim(), config);
  mini.sim().run_for(2 * 60 * 1000, 10000, [&](common::TimestampMs) {
    stack.pipeline_step();
  });
  // Both transports landed series with `up` == 1.
  tsdb::promql::Engine engine;
  auto value = engine.eval(*stack.hot_store(), "sum(up)",
                           mini.clock()->now_ms());
  ASSERT_EQ(value.vector.size(), 1u);
  EXPECT_DOUBLE_EQ(
      value.vector[0].value,
      static_cast<double>(mini.sim().cluster().node_count()) + 1);
}

}  // namespace
}  // namespace ceems::core
