# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("metrics")
subdirs("http")
subdirs("simfs")
subdirs("node")
subdirs("slurm")
subdirs("emissions")
subdirs("tsdb")
subdirs("reldb")
subdirs("exporter")
subdirs("apiserver")
subdirs("lb")
subdirs("dashboard")
subdirs("core")
