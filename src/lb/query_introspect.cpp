#include "lb/query_introspect.h"

namespace ceems::lb {

namespace {

using tsdb::promql::Expr;
using tsdb::promql::ExprPtr;

void walk(const ExprPtr& expr, IntrospectResult& result) {
  if (!expr) return;
  switch (expr->kind) {
    case Expr::Kind::kVectorSelector:
    case Expr::Kind::kMatrixSelector: {
      bool found_uuid_eq = false;
      for (const auto& matcher : expr->matchers) {
        if (matcher.name == "uuid") {
          if (matcher.op == metrics::LabelMatcher::Op::kEq &&
              !matcher.value.empty()) {
            result.uuids.insert(matcher.value);
            found_uuid_eq = true;
          } else {
            // uuid!=, uuid=~ ... cannot be verified against ownership.
            result.has_unverifiable_selector = true;
          }
        }
      }
      if (!found_uuid_eq) result.has_unverifiable_selector = true;
      break;
    }
    case Expr::Kind::kBinary:
      walk(expr->lhs, result);
      walk(expr->rhs, result);
      break;
    case Expr::Kind::kUnary:
      walk(expr->lhs, result);
      break;
    case Expr::Kind::kAggregate:
      walk(expr->agg_expr, result);
      walk(expr->agg_param, result);
      break;
    case Expr::Kind::kCall:
      for (const auto& arg : expr->args) walk(arg, result);
      break;
    default:
      break;
  }
}

}  // namespace

IntrospectResult introspect_query(const std::string& query) {
  IntrospectResult result;
  try {
    ExprPtr expr = tsdb::promql::parse(query);
    result.parse_ok = true;
    walk(expr, result);
  } catch (const std::exception& e) {
    result.error = e.what();
  }
  return result;
}

}  // namespace ceems::lb
