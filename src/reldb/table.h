// Table with a primary key, optional secondary indexes and a small query
// API (predicates, grouping with aggregates, ordering, limits). Covers
// everything the CEEMS API server asks of SQLite.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "reldb/value.h"

namespace ceems::reldb {

// WHERE clause: conjunction of simple comparisons.
struct Predicate {
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe };
  std::string column;
  Op op = Op::kEq;
  Value value;
};

enum class AggFn { kCount, kSum, kAvg, kMin, kMax };

struct Aggregate {
  AggFn fn = AggFn::kCount;
  std::string column;  // ignored for kCount
  std::string as;      // output column name
};

struct Query {
  std::vector<Predicate> where;           // ANDed
  std::vector<std::string> select;        // empty = all columns
  std::vector<std::string> group_by;      // with aggregates
  std::vector<Aggregate> aggregates;
  std::string order_by;                   // output column name
  bool descending = false;
  std::size_t limit = 0;                  // 0 = unlimited
};

struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;

  int column_index(const std::string& name) const;
  // Typed access with bounds checks (throws std::out_of_range).
  const Value& at(std::size_t row, const std::string& column) const;
};

class Table {
 public:
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  std::size_t size() const { return rows_.size(); }

  // Insert fails (returns false) on duplicate primary key; upsert replaces.
  bool insert(Row row);
  void upsert(Row row);
  bool erase(const Value& primary_key);
  std::optional<Row> get(const Value& primary_key) const;

  // Adds a secondary index (speeds equality predicates on that column).
  void create_index(const std::string& column);

  ResultSet execute(const Query& query) const;

  // Full scan helper for callers wanting raw rows.
  void for_each(const std::function<void(const Row&)>& fn) const;

 private:
  bool row_matches(const Row& row, const std::vector<Predicate>& where) const;
  std::vector<const Row*> candidate_rows(
      const std::vector<Predicate>& where) const;

  Schema schema_;
  int pk_index_;
  std::map<Value, std::size_t> pk_map_;  // pk -> index into rows_
  std::vector<Row> rows_;                // dense; erased rows swapped out
  // column index -> value -> set of row positions
  std::map<int, std::map<Value, std::set<std::size_t>>> indexes_;
};

}  // namespace ceems::reldb
