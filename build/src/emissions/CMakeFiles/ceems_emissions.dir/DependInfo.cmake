
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/emissions/electricity_maps.cpp" "src/emissions/CMakeFiles/ceems_emissions.dir/electricity_maps.cpp.o" "gcc" "src/emissions/CMakeFiles/ceems_emissions.dir/electricity_maps.cpp.o.d"
  "/root/repo/src/emissions/owid.cpp" "src/emissions/CMakeFiles/ceems_emissions.dir/owid.cpp.o" "gcc" "src/emissions/CMakeFiles/ceems_emissions.dir/owid.cpp.o.d"
  "/root/repo/src/emissions/provider.cpp" "src/emissions/CMakeFiles/ceems_emissions.dir/provider.cpp.o" "gcc" "src/emissions/CMakeFiles/ceems_emissions.dir/provider.cpp.o.d"
  "/root/repo/src/emissions/rte.cpp" "src/emissions/CMakeFiles/ceems_emissions.dir/rte.cpp.o" "gcc" "src/emissions/CMakeFiles/ceems_emissions.dir/rte.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ceems_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
