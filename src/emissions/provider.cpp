#include "emissions/provider.h"

namespace ceems::emissions {

std::optional<EmissionFactor> ProviderChain::factor(const std::string& zone,
                                                    common::TimestampMs t_ms) {
  for (const auto& provider : providers_) {
    if (auto result = provider->factor(zone, t_ms)) return result;
  }
  return std::nullopt;
}

double emissions_grams(double joules, double gco2_per_kwh) {
  // 1 kWh = 3.6e6 J.
  return joules / 3.6e6 * gco2_per_kwh;
}

}  // namespace ceems::emissions
