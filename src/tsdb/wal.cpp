#include "tsdb/wal.h"

#include <algorithm>
#include <array>
#include <cstring>

namespace ceems::tsdb {
namespace {

using metrics::InternedLabels;
using metrics::Labels;
using metrics::SymbolTable;

// Segment header: magic + version byte + u64 sequence.
constexpr char kSegmentMagic[] = "CEEMSWAL";
constexpr std::size_t kMagicLen = sizeof(kSegmentMagic) - 1;
constexpr uint8_t kSegmentVersion = 1;
constexpr std::size_t kHeaderLen = kMagicLen + 1 + 8;

// Snapshot wrapper: magic + u64 WAL sequence floor + store snapshot v2.
constexpr char kSnapshotMagic[] = "CEEMSDUR1";
constexpr std::size_t kSnapshotMagicLen = sizeof(kSnapshotMagic) - 1;
constexpr char kSnapshotFile[] = "snapshot";

// CRC32 (IEEE, reflected polynomial) — the framing checksum.
std::array<uint32_t, 256> make_crc_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

uint32_t crc32(std::string_view bytes) {
  static const std::array<uint32_t, 256> table = make_crc_table();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char c : bytes) {
    crc = (crc >> 8) ^ table[(crc ^ c) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

void put_u32(std::string& out, uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_u64(std::string& out, uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_varint(std::string& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

void put_zigzag(std::string& out, int64_t v) {
  put_varint(out, (static_cast<uint64_t>(v) << 1) ^
                      static_cast<uint64_t>(v >> 63));
}

void put_str(std::string& out, std::string_view text) {
  put_varint(out, text.size());
  out.append(text.data(), text.size());
}

// Bounds-checked reader over a record payload; every getter returns
// false instead of reading past the end, so replaying a corrupt or
// truncated record can never crash.
struct Reader {
  const uint8_t* p;
  const uint8_t* end;

  explicit Reader(std::string_view bytes)
      : p(reinterpret_cast<const uint8_t*>(bytes.data())),
        end(p + bytes.size()) {}

  bool done() const { return p == end; }

  bool get_u8(uint8_t* out) {
    if (p == end) return false;
    *out = *p++;
    return true;
  }

  bool get_u64(uint64_t* out) {
    if (end - p < 8) return false;
    std::memcpy(out, p, 8);
    p += 8;
    return true;
  }

  bool get_varint(uint64_t* out) {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (p == end) return false;
      uint8_t byte = *p++;
      v |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if (!(byte & 0x80)) {
        *out = v;
        return true;
      }
    }
    return false;  // varint longer than 10 bytes: corrupt
  }

  bool get_zigzag(int64_t* out) {
    uint64_t raw = 0;
    if (!get_varint(&raw)) return false;
    *out = static_cast<int64_t>(raw >> 1) ^ -static_cast<int64_t>(raw & 1);
    return true;
  }

  bool get_str(std::string* out) {
    uint64_t len = 0;
    if (!get_varint(&len) || len > (1u << 20)) return false;
    if (static_cast<uint64_t>(end - p) < len) return false;
    out->assign(reinterpret_cast<const char*>(p),
                static_cast<std::size_t>(len));
    p += len;
    return true;
  }
};

bool read_header(std::string_view bytes, uint64_t* seq) {
  if (bytes.size() < kHeaderLen) return false;
  if (std::memcmp(bytes.data(), kSegmentMagic, kMagicLen) != 0) return false;
  if (static_cast<uint8_t>(bytes[kMagicLen]) != kSegmentVersion) return false;
  std::memcpy(seq, bytes.data() + kMagicLen + 1, 8);
  return true;
}

}  // namespace

Wal::Wal(simfs::DurableDirPtr dir, uint64_t start_seq, WalOptions options)
    : dir_(std::move(dir)), options_(options), seq_(start_seq) {
  std::lock_guard lock(mu_);
  open_segment_locked();
  dir_->sync(segment_);
  dirty_segments_.clear();
}

std::string Wal::segment_name(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%08llu.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

std::optional<uint64_t> Wal::parse_segment_name(std::string_view name) {
  constexpr std::string_view prefix = "wal-";
  constexpr std::string_view suffix = ".log";
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.substr(0, prefix.size()) != prefix) return std::nullopt;
  if (name.substr(name.size() - suffix.size()) != suffix) return std::nullopt;
  std::string_view digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  uint64_t seq = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  return seq;
}

void Wal::open_segment_locked() {
  segment_ = segment_name(seq_);
  frame_.clear();
  frame_.append(kSegmentMagic, kMagicLen);
  frame_.push_back(static_cast<char>(kSegmentVersion));
  put_u64(frame_, seq_);
  dir_->append(segment_, frame_);
  segment_bytes_ = frame_.size();
  dirty_segments_.push_back(segment_);
  ++stats_.segments;
  stats_.bytes += frame_.size();
}

uint64_t Wal::frame_and_append_locked() {
  if (segment_bytes_ >= options_.segment_bytes) {
    // Rotate; the old segment keeps its place in dirty_segments_ and is
    // synced by the next flush leader. The dictionary survives rotation —
    // it resets only at reset_to(), together with the segments that
    // carry its definitions.
    ++seq_;
    open_segment_locked();
  }
  frame_.clear();
  put_u32(frame_, static_cast<uint32_t>(payload_.size()));
  put_u32(frame_, crc32(payload_));
  frame_ += payload_;
  dir_->append(segment_, frame_);
  segment_bytes_ += frame_.size();
  if (dirty_segments_.empty() || dirty_segments_.back() != segment_) {
    dirty_segments_.push_back(segment_);
  }
  ++stats_.records;
  stats_.bytes += frame_.size();
  return ++next_lsn_;
}

bool Wal::flush_to(uint64_t lsn) {
  std::unique_lock lock(mu_);
  for (;;) {
    if (flushed_lsn_ >= lsn) return true;
    if (!flush_in_progress_) break;
    flush_cv_.wait(lock);
  }
  // Leader: flush everything appended so far, so every waiter whose LSN
  // is below `target` rides this one sync.
  flush_in_progress_ = true;
  uint64_t target = next_lsn_;
  std::vector<std::string> to_sync;
  to_sync.swap(dirty_segments_);
  lock.unlock();
  bool ok = true;
  for (const std::string& name : to_sync) {
    ok = dir_->sync(name) && ok;
  }
  lock.lock();
  flush_in_progress_ = false;
  if (flushed_lsn_ < target) flushed_lsn_ = target;
  ++stats_.groups;
  flush_cv_.notify_all();
  return ok;
}

bool Wal::log_batch(const metrics::SampleRef* samples, std::size_t count) {
  if (count == 0) return true;
  uint64_t lsn = 0;
  {
    std::lock_guard lock(mu_);
    SymbolTable& table = SymbolTable::global();
    defs_.clear();
    samples_buf_.clear();
    uint64_t num_defs = 0;
    int64_t prev_t = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const InternedLabels& labels = *samples[i].labels;
      auto [it, inserted] = dict_.try_emplace(labels, next_ref_);
      if (inserted) {
        ++next_ref_;
        ++num_defs;
        put_varint(defs_, it->second);
        put_varint(defs_, labels.size());
        for (const auto& [name_sym, value_sym] : labels.pairs()) {
          put_str(defs_, table.text(name_sym));
          put_str(defs_, table.text(value_sym));
        }
      }
      put_varint(samples_buf_, it->second);
      put_zigzag(samples_buf_, samples[i].timestamp_ms - prev_t);
      prev_t = samples[i].timestamp_ms;
      uint64_t bits = 0;
      std::memcpy(&bits, &samples[i].value, sizeof(bits));
      put_u64(samples_buf_, bits);
    }
    payload_.clear();
    payload_.push_back(static_cast<char>(kBatchRecord));
    put_varint(payload_, num_defs);
    payload_ += defs_;
    put_varint(payload_, count);
    payload_ += samples_buf_;
    lsn = frame_and_append_locked();
    ++stats_.batches;
    stats_.samples += count;
  }
  return flush_to(lsn);
}

bool Wal::log_purge(common::TimestampMs cutoff) {
  uint64_t lsn = 0;
  {
    std::lock_guard lock(mu_);
    payload_.clear();
    payload_.push_back(static_cast<char>(kPurgeRecord));
    put_zigzag(payload_, cutoff);
    lsn = frame_and_append_locked();
  }
  return flush_to(lsn);
}

bool Wal::log_delete(const std::vector<metrics::LabelMatcher>& matchers) {
  uint64_t lsn = 0;
  {
    std::lock_guard lock(mu_);
    payload_.clear();
    payload_.push_back(static_cast<char>(kDeleteRecord));
    put_varint(payload_, matchers.size());
    for (const auto& matcher : matchers) {
      payload_.push_back(static_cast<char>(matcher.op));
      put_str(payload_, matcher.name);
      put_str(payload_, matcher.value);
    }
    lsn = frame_and_append_locked();
  }
  return flush_to(lsn);
}

void Wal::reset_to(uint64_t new_seq) {
  std::lock_guard lock(mu_);
  for (const std::string& name : dir_->list()) {
    if (parse_segment_name(name)) dir_->remove(name);
  }
  dict_.clear();
  next_ref_ = 1;
  seq_ = new_seq;
  dirty_segments_.clear();
  open_segment_locked();
  dir_->sync(segment_);
  dirty_segments_.clear();
}

uint64_t Wal::current_seq() const {
  std::lock_guard lock(mu_);
  return seq_;
}

WalStats Wal::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

namespace {

// One decoded-and-validated batch, staged before any store mutation so a
// corrupt record never applies partially.
struct StagedBatch {
  // Definitions introduced by this record (ref → labels).
  std::vector<std::pair<uint64_t, InternedLabels>> defs;
  // (ref, t, value bits) in record order.
  struct Row {
    uint64_t ref;
    common::TimestampMs t;
    uint64_t bits;
  };
  std::vector<Row> rows;
};

// Decodes a kBatch body; refs must resolve against `dict` or this
// record's own defs. Returns false on any structural problem.
bool decode_batch(Reader& reader,
                  const std::unordered_map<uint64_t, InternedLabels>& dict,
                  StagedBatch* out) {
  uint64_t num_defs = 0;
  if (!reader.get_varint(&num_defs) || num_defs > (1u << 22)) return false;
  out->defs.reserve(static_cast<std::size_t>(num_defs));
  std::string name, value;
  for (uint64_t d = 0; d < num_defs; ++d) {
    uint64_t ref = 0, num_pairs = 0;
    if (!reader.get_varint(&ref) || !reader.get_varint(&num_pairs) ||
        num_pairs > 256) {
      return false;
    }
    std::vector<Labels::Pair> pairs;
    pairs.reserve(static_cast<std::size_t>(num_pairs));
    for (uint64_t l = 0; l < num_pairs; ++l) {
      if (!reader.get_str(&name) || !reader.get_str(&value)) return false;
      pairs.emplace_back(name, value);
    }
    out->defs.emplace_back(ref, InternedLabels(Labels(std::move(pairs))));
  }
  uint64_t num_samples = 0;
  if (!reader.get_varint(&num_samples) || num_samples > (1u << 24))
    return false;
  out->rows.reserve(static_cast<std::size_t>(num_samples));
  int64_t prev_t = 0;
  for (uint64_t i = 0; i < num_samples; ++i) {
    StagedBatch::Row row{};
    int64_t delta = 0;
    if (!reader.get_varint(&row.ref) || !reader.get_zigzag(&delta) ||
        !reader.get_u64(&row.bits)) {
      return false;
    }
    prev_t += delta;
    row.t = prev_t;
    bool resolvable = dict.count(row.ref) > 0;
    if (!resolvable) {
      for (const auto& [ref, labels] : out->defs) {
        if (ref == row.ref) {
          resolvable = true;
          break;
        }
      }
    }
    if (!resolvable) return false;
    out->rows.push_back(row);
  }
  return reader.done();
}

}  // namespace

WalReplayResult replay_wal(simfs::DurableDir& dir, uint64_t seq_floor,
                           TimeSeriesStore& store, bool repair_torn_tail) {
  WalReplayResult result;
  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const std::string& name : dir.list()) {
    auto seq = Wal::parse_segment_name(name);
    if (!seq) continue;
    result.max_seq = std::max(result.max_seq, *seq);
    if (*seq >= seq_floor) segments.emplace_back(*seq, name);
  }
  std::sort(segments.begin(), segments.end());

  std::unordered_map<uint64_t, InternedLabels> dict;
  std::vector<metrics::SampleRef> batch_refs;

  for (std::size_t i = 0; i < segments.size(); ++i) {
    const auto& [seq, name] = segments[i];
    const bool last_segment = (i + 1 == segments.size());
    auto bytes_opt = dir.read(name);
    if (!bytes_opt) continue;
    const std::string& bytes = *bytes_opt;
    ++result.segments_scanned;

    uint64_t header_seq = 0;
    if (!read_header(bytes, &header_seq) || header_seq != seq) {
      // A torn header can only be the newest segment (created last); a
      // bad header earlier in the sequence is real corruption. Either
      // way nothing after this point is trustworthy.
      if (last_segment) {
        result.torn_tail = true;
        result.discarded_bytes += bytes.size();
        if (repair_torn_tail) dir.remove(name);
      } else {
        result.error = "bad segment header in " + name;
      }
      return result;
    }

    std::size_t offset = kHeaderLen;
    while (offset < bytes.size()) {
      auto stop_here = [&](bool torn) {
        result.discarded_bytes += bytes.size() - offset;
        if (torn) {
          result.torn_tail = true;
          if (repair_torn_tail) dir.truncate(name, offset);
        }
      };
      if (bytes.size() - offset < 8) {
        stop_here(last_segment);
        if (!last_segment) result.error = "short frame header in " + name;
        return result;
      }
      uint32_t len = 0, crc = 0;
      std::memcpy(&len, bytes.data() + offset, 4);
      std::memcpy(&crc, bytes.data() + offset + 4, 4);
      if (len > Wal::kMaxPayloadBytes ||
          bytes.size() - offset - 8 < len) {
        stop_here(last_segment);
        if (!last_segment) result.error = "truncated record in " + name;
        return result;
      }
      std::string_view payload(bytes.data() + offset + 8, len);
      if (crc32(payload) != crc) {
        stop_here(last_segment);
        if (!last_segment) result.error = "crc mismatch in " + name;
        return result;
      }

      Reader reader(payload);
      uint8_t type = 0;
      bool valid = reader.get_u8(&type);
      if (valid) {
        switch (type) {
          case Wal::kBatchRecord: {
            StagedBatch staged;
            valid = decode_batch(reader, dict, &staged);
            if (valid) {
              for (auto& [ref, labels] : staged.defs) {
                dict[ref] = std::move(labels);
              }
              batch_refs.clear();
              batch_refs.reserve(staged.rows.size());
              for (const auto& row : staged.rows) {
                metrics::SampleRef ref;
                ref.labels = &dict.at(row.ref);
                ref.timestamp_ms = row.t;
                std::memcpy(&ref.value, &row.bits, sizeof(ref.value));
                batch_refs.push_back(ref);
              }
              result.samples_appended +=
                  store.append_refs(batch_refs.data(), batch_refs.size());
            }
            break;
          }
          case Wal::kPurgeRecord: {
            int64_t cutoff = 0;
            valid = reader.get_zigzag(&cutoff) && reader.done();
            if (valid) store.purge_before(cutoff);
            break;
          }
          case Wal::kDeleteRecord: {
            uint64_t num_matchers = 0;
            valid = reader.get_varint(&num_matchers) && num_matchers <= 64;
            std::vector<metrics::LabelMatcher> matchers;
            for (uint64_t m = 0; valid && m < num_matchers; ++m) {
              uint8_t op = 0;
              metrics::LabelMatcher matcher;
              valid = reader.get_u8(&op) && op <= 3 &&
                      reader.get_str(&matcher.name) &&
                      reader.get_str(&matcher.value);
              if (valid) {
                matcher.op = static_cast<metrics::LabelMatcher::Op>(op);
                matchers.push_back(std::move(matcher));
              }
            }
            valid = valid && reader.done();
            if (valid) store.delete_series(matchers);
            break;
          }
          default:
            valid = false;
        }
      }
      if (!valid) {
        // The frame passed its CRC but the body does not decode: treat
        // it exactly like a torn tail — stop before applying anything.
        stop_here(last_segment);
        if (!last_segment) result.error = "undecodable record in " + name;
        return result;
      }
      ++result.records_applied;
      offset += 8 + len;
    }
  }
  return result;
}

DurableTsdb::DurableTsdb(StorePtr store, simfs::DurableDirPtr dir,
                         WalOptions options)
    : store_(std::move(store)), dir_(std::move(dir)), options_(options) {}

DurableTsdb::~DurableTsdb() {
  if (store_) store_->set_wal(nullptr);
}

DurableTsdb::OpenResult DurableTsdb::open() {
  OpenResult result;
  store_->set_wal(nullptr);
  store_->clear();

  uint64_t seq_floor = 0;
  if (auto snap = dir_->read(kSnapshotFile)) {
    if (snap->size() >= kSnapshotMagicLen + 8 &&
        std::memcmp(snap->data(), kSnapshotMagic, kSnapshotMagicLen) == 0) {
      uint64_t floor = 0;
      std::memcpy(&floor, snap->data() + kSnapshotMagicLen, 8);
      std::string_view body(*snap);
      body.remove_prefix(kSnapshotMagicLen + 8);
      if (auto restored = store_->restore_from_bytes(body)) {
        result.snapshot_samples = *restored;
        seq_floor = floor;
      } else {
        result.replay.error = "snapshot failed to restore; replaying WAL "
                              "from the beginning";
      }
    } else {
      result.replay.error = "snapshot header invalid; replaying WAL from "
                            "the beginning";
    }
  }

  std::string pre_error = result.replay.error;
  result.replay = replay_wal(*dir_, seq_floor, *store_);
  if (result.replay.error.empty()) result.replay.error = pre_error;

  uint64_t next_seq = std::max(result.replay.max_seq + 1,
                               std::max<uint64_t>(seq_floor, 1));
  wal_ = std::make_shared<Wal>(dir_, next_seq, options_);
  store_->set_wal(wal_);
  return result;
}

bool DurableTsdb::checkpoint() {
  auto barrier = wal_->commit_barrier();
  // The new generation starts above every existing segment; replay will
  // skip anything older because the snapshot already contains it.
  uint64_t floor = wal_->current_seq() + 1;
  std::string snap;
  snap.append(kSnapshotMagic, kSnapshotMagicLen);
  put_u64(snap, floor);
  snap += store_->snapshot_bytes();
  if (!dir_->replace(kSnapshotFile, snap)) return false;
  wal_->reset_to(floor);
  ++checkpoints_;
  return true;
}

}  // namespace ceems::tsdb
