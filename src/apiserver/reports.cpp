#include "apiserver/reports.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace ceems::apiserver {

EfficiencyReport build_efficiency_report(const reldb::Database& db,
                                         const ReportThresholds& thresholds) {
  EfficiencyReport report;
  std::map<std::string, WasteByOwner> by_user, by_project;

  reldb::Query query;
  query.where = {{"elapsed_ms", reldb::Predicate::Op::kGe,
                  reldb::Value(thresholds.min_elapsed_ms)}};
  reldb::ResultSet units = db.query(kUnitsTable, query);
  for (const auto& row : units.rows) {
    Unit unit = unit_from_row(row);
    if (unit.started_at_ms == 0) continue;
    double elapsed_hours = static_cast<double>(unit.elapsed_ms) / 3.6e6;

    bool low_cpu = unit.num_cpus > 0 &&
                   unit.avg_cpu_usage < thresholds.low_cpu_usage;
    bool low_gpu = unit.num_gpus > 0 &&
                   unit.avg_gpu_usage < thresholds.low_gpu_usage;
    if (!low_cpu && !low_gpu) continue;

    InefficientUnit finding;
    finding.unit = unit;
    double unused_fraction =
        std::clamp(1.0 - unit.avg_cpu_usage, 0.0, 1.0);
    finding.wasted_cpu_hours = unused_fraction *
                               static_cast<double>(unit.num_cpus) *
                               elapsed_hours;
    finding.wasted_energy_joules = unit.total_energy_joules * unused_fraction;

    if (low_cpu) report.low_cpu_units.push_back(finding);
    if (low_gpu) report.low_gpu_units.push_back(finding);
    report.total_wasted_cpu_hours += finding.wasted_cpu_hours;

    for (auto* bucket : {&by_user, &by_project}) {
      const std::string& key =
          bucket == &by_user ? unit.user : unit.project;
      WasteByOwner& waste = (*bucket)[key];
      waste.owner = key;
      ++waste.flagged_units;
      waste.wasted_cpu_hours += finding.wasted_cpu_hours;
      waste.wasted_energy_joules += finding.wasted_energy_joules;
    }
  }

  auto by_waste = [](const InefficientUnit& a, const InefficientUnit& b) {
    return a.wasted_cpu_hours > b.wasted_cpu_hours;
  };
  std::sort(report.low_cpu_units.begin(), report.low_cpu_units.end(),
            by_waste);
  std::sort(report.low_gpu_units.begin(), report.low_gpu_units.end(),
            by_waste);
  if (report.low_cpu_units.size() > thresholds.max_findings)
    report.low_cpu_units.resize(thresholds.max_findings);
  if (report.low_gpu_units.size() > thresholds.max_findings)
    report.low_gpu_units.resize(thresholds.max_findings);

  for (auto* bucket : {&by_user, &by_project}) {
    auto& out = bucket == &by_user ? report.by_user : report.by_project;
    for (auto& [key, waste] : *bucket) out.push_back(waste);
    std::sort(out.begin(), out.end(),
              [](const WasteByOwner& a, const WasteByOwner& b) {
                return a.wasted_cpu_hours > b.wasted_cpu_hours;
              });
  }
  return report;
}

std::string render_efficiency_report(const EfficiencyReport& report,
                                     std::size_t top_n) {
  char line[256];
  std::string out = "== Efficiency report (operator view) ==\n";
  std::snprintf(line, sizeof(line),
                "total wasted allocation: %.1f cpu-hours across %zu flagged "
                "units\n\n",
                report.total_wasted_cpu_hours,
                report.low_cpu_units.size() + report.low_gpu_units.size());
  out += line;

  out += "-- least efficient units (CPU) --\n";
  for (std::size_t i = 0; i < report.low_cpu_units.size() && i < top_n; ++i) {
    const InefficientUnit& f = report.low_cpu_units[i];
    std::snprintf(line, sizeof(line),
                  "  %-8s %-8s cpus=%-4lld avg_cpu=%4.0f%%  wasted=%.1f "
                  "cpu-h\n",
                  f.unit.uuid.c_str(), f.unit.user.c_str(),
                  (long long)f.unit.num_cpus, f.unit.avg_cpu_usage * 100.0,
                  f.wasted_cpu_hours);
    out += line;
  }
  if (!report.low_gpu_units.empty()) {
    out += "-- least efficient units (GPU) --\n";
    for (std::size_t i = 0; i < report.low_gpu_units.size() && i < top_n;
         ++i) {
      const InefficientUnit& f = report.low_gpu_units[i];
      std::snprintf(line, sizeof(line),
                    "  %-8s %-8s gpus=%-3lld avg_gpu=%4.0f%%\n",
                    f.unit.uuid.c_str(), f.unit.user.c_str(),
                    (long long)f.unit.num_gpus,
                    f.unit.avg_gpu_usage * 100.0);
      out += line;
    }
  }
  out += "-- waste by user --\n";
  for (std::size_t i = 0; i < report.by_user.size() && i < top_n; ++i) {
    const WasteByOwner& waste = report.by_user[i];
    std::snprintf(line, sizeof(line),
                  "  %-10s units=%-4zu wasted=%.1f cpu-h (%.2f kWh "
                  "attributable)\n",
                  waste.owner.c_str(), waste.flagged_units,
                  waste.wasted_cpu_hours,
                  waste.wasted_energy_joules / 3.6e6);
    out += line;
  }
  return out;
}

common::Json efficiency_report_to_json(const EfficiencyReport& report,
                                       std::size_t top_n) {
  common::JsonObject body;
  body["total_wasted_cpu_hours"] =
      common::Json(report.total_wasted_cpu_hours);
  auto findings_to_json = [&](const std::vector<InefficientUnit>& findings) {
    common::JsonArray array;
    for (std::size_t i = 0; i < findings.size() && i < top_n; ++i) {
      common::JsonObject entry;
      entry["uuid"] = common::Json(findings[i].unit.uuid);
      entry["user"] = common::Json(findings[i].unit.user);
      entry["project"] = common::Json(findings[i].unit.project);
      entry["avg_cpu_usage"] = common::Json(findings[i].unit.avg_cpu_usage);
      entry["avg_gpu_usage"] = common::Json(findings[i].unit.avg_gpu_usage);
      entry["wasted_cpu_hours"] = common::Json(findings[i].wasted_cpu_hours);
      array.push_back(common::Json(std::move(entry)));
    }
    return common::Json(std::move(array));
  };
  body["low_cpu_units"] = findings_to_json(report.low_cpu_units);
  body["low_gpu_units"] = findings_to_json(report.low_gpu_units);
  common::JsonArray users;
  for (std::size_t i = 0; i < report.by_user.size() && i < top_n; ++i) {
    common::JsonObject entry;
    entry["user"] = common::Json(report.by_user[i].owner);
    entry["flagged_units"] =
        common::Json(static_cast<int64_t>(report.by_user[i].flagged_units));
    entry["wasted_cpu_hours"] =
        common::Json(report.by_user[i].wasted_cpu_hours);
    users.push_back(common::Json(std::move(entry)));
  }
  body["by_user"] = common::Json(std::move(users));
  return common::Json(std::move(body));
}

}  // namespace ceems::apiserver
