file(REMOVE_RECURSE
  "CMakeFiles/alerts_test.dir/alerts_test.cpp.o"
  "CMakeFiles/alerts_test.dir/alerts_test.cpp.o.d"
  "alerts_test"
  "alerts_test.pdb"
  "alerts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alerts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
