#include "tsdb/longterm.h"

#include <algorithm>
#include <map>

namespace ceems::tsdb {

LongTermStore::LongTermStore(LongTermConfig config) : config_(config) {}

std::size_t LongTermStore::sync_from(const TimeSeriesStore& hot) {
  std::lock_guard lock(mu_);
  std::size_t copied = 0;
  for (const auto& series : hot.series_since(sync_cursor_ + 1)) {
    for (const auto& sample : series.samples) {
      if (raw_.append(series.labels, sample.t, sample.v)) ++copied;
    }
  }
  if (auto max_t = raw_.max_time()) sync_cursor_ = *max_t;
  return copied;
}

void LongTermStore::compact(common::TimestampMs now) {
  std::lock_guard lock(mu_);
  TimestampMs cutoff = now - config_.downsample_after_ms;
  if (cutoff > downsample_cursor_) {
    // Bucketize everything in [downsample_cursor_, cutoff) into the coarse
    // resolution, keeping the last sample per bucket.
    for (const auto& series : raw_.select({}, downsample_cursor_, cutoff - 1)) {
      std::map<int64_t, SamplePoint> buckets;
      for (const auto& sample : series.samples) {
        buckets[sample.t / config_.resolution_ms] = sample;
      }
      for (const auto& [bucket, sample] : buckets) {
        downsampled_.append(series.labels, sample.t, sample.v);
      }
    }
    raw_.purge_before(cutoff);
    downsample_cursor_ = cutoff;
  }
  if (config_.retention_ms > 0) {
    downsampled_.purge_before(now - config_.retention_ms);
  }
}

std::vector<Series> LongTermStore::select(
    const std::vector<LabelMatcher>& matchers, TimestampMs min_t,
    TimestampMs max_t) const {
  std::lock_guard lock(mu_);
  std::vector<Series> coarse = downsampled_.select(matchers, min_t, max_t);
  std::vector<Series> fine = raw_.select(matchers, min_t, max_t);

  // Merge per label set: downsampled history followed by the raw tail.
  std::map<uint64_t, Series> merged;
  for (auto& series : coarse) {
    merged[series.labels.fingerprint()] = std::move(series);
  }
  for (auto& series : fine) {
    auto [it, inserted] =
        merged.emplace(series.labels.fingerprint(), Series{});
    if (inserted) {
      it->second = std::move(series);
      continue;
    }
    Series& target = it->second;
    for (auto& sample : series.samples) {
      if (target.samples.empty() || sample.t > target.samples.back().t) {
        target.samples.push_back(sample);
      }
    }
  }
  std::vector<Series> out;
  out.reserve(merged.size());
  for (auto& [key, series] : merged) out.push_back(std::move(series));
  std::sort(out.begin(), out.end(), [](const Series& a, const Series& b) {
    return a.labels < b.labels;
  });
  return out;
}

std::vector<uint64_t> LongTermStore::version_signature() const {
  std::vector<uint64_t> out = raw_.version_signature();
  std::vector<uint64_t> coarse = downsampled_.version_signature();
  out.insert(out.end(), coarse.begin(), coarse.end());
  return out;
}

StorageStats LongTermStore::stats() const {
  std::lock_guard lock(mu_);
  StorageStats raw = raw_.stats();
  StorageStats coarse = downsampled_.stats();
  StorageStats out;
  out.num_series = std::max(raw.num_series, coarse.num_series);
  out.num_samples = raw.num_samples + coarse.num_samples;
  out.approx_bytes = raw.approx_bytes + coarse.approx_bytes;
  return out;
}

}  // namespace ceems::tsdb
