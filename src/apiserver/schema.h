// Unified compute-unit schema (§II-B.b): the API server "serves as an
// abstraction layer for different resource managers by defining a unified
// DB schema to store compute units" — a SLURM job, an Openstack VM and a
// Kubernetes pod all become one `units` row keyed by (uuid, cluster).
#pragma once

#include <cstdint>
#include <string>

#include "common/json.h"
#include "reldb/database.h"

namespace ceems::apiserver {

struct Unit {
  std::string uuid;             // job id / VM uuid / pod uid
  std::string cluster;
  std::string resource_manager; // "slurm", "openstack", "k8s"
  std::string name;
  std::string user;
  std::string project;
  std::string partition;
  std::string state;
  int64_t created_at_ms = 0;    // submit
  int64_t started_at_ms = 0;
  int64_t ended_at_ms = 0;
  int64_t elapsed_ms = 0;
  int64_t num_nodes = 0;
  int64_t num_cpus = 0;         // total across nodes
  int64_t num_gpus = 0;

  // Aggregates maintained by the updater.
  double total_cpu_time_seconds = 0;
  double avg_cpu_usage = 0;          // fraction of allocated CPUs, 0..1
  double avg_cpu_mem_bytes = 0;
  double avg_gpu_usage = 0;          // fraction, 0..1
  double total_cpu_energy_joules = 0;
  double total_gpu_energy_joules = 0;
  double total_energy_joules = 0;
  double total_emissions_grams = 0;
  double total_io_read_bytes = 0;
  double total_io_write_bytes = 0;

  common::Json to_json() const;
};

// The canonical `units` table schema + row conversion.
reldb::Schema units_schema();
reldb::Row unit_to_row(const Unit& unit);
Unit unit_from_row(const reldb::Row& row);

// Creates the tables (`units`) and secondary indexes (user, project,
// state) in a fresh database; idempotent.
void create_ceems_tables(reldb::Database& db);

inline constexpr const char* kUnitsTable = "units";

}  // namespace ceems::apiserver
