// IPMI-DCMI collector (§II-A.b): runs the DCMI power-reading command and
// exports the whole-node wattage. The command is injected as a callable so
// the same parsing path serves the simulator (format_dcmi_output of the
// BMC model) and, on a real node, `ipmitool dcmi power reading` output.
#pragma once

#include <functional>

#include "exporter/collector.h"
#include "node/ipmi.h"

namespace ceems::exporter {

class IpmiCollector final : public Collector {
 public:
  using DcmiCommand = std::function<std::string()>;

  explicit IpmiCollector(DcmiCommand command) : command_(std::move(command)) {}

  std::string name() const override { return "ipmi"; }
  std::vector<metrics::MetricFamily> collect(common::TimestampMs now) override;

 private:
  DcmiCommand command_;
};

}  // namespace ceems::exporter
