// Write-ahead log for the hot TSDB — the durability half of the ingest
// path. Every mutation (sample batches from scrapers and the rule
// engine, retention purges, series deletions) is encoded as a
// length-prefixed CRC32-framed record and made durable through a
// simfs::DurableDir *before* it is applied to the in-memory store, so a
// crash at any byte offset loses at most the groups that never reached
// a sync.
//
// Framing. A segment file ("wal-<seq>.log") starts with an 8-byte magic
// + 1-byte version + 8-byte sequence header; each record after it is
//
//   u32 payload_len | u32 crc32(payload) | payload
//
// with payload = u8 record type + body. Batch bodies use a series
// dictionary (the Prometheus WAL idiom): the first record that carries
// a series emits a definition (ref + label strings), later records
// carry only the varint ref, a zigzag delta timestamp and the raw f64
// bits — a steady-state sample costs ~11 bytes and zero allocations.
// The dictionary lives for one WAL generation: it resets when the WAL
// is truncated after a checkpoint, and a fresh writer starts a fresh
// generation, so replay never sees a ref whose definition was dropped.
//
// Group commit. Writers append under a short mutex, then wait for their
// record's LSN to become durable; the first waiter becomes the flush
// leader and syncs everything appended so far, so N concurrent scrape
// batches coalesce into one fsync-equivalent. A shared "commit lock" is
// held across [log → apply]; the checkpoint takes it exclusively, so a
// snapshot is a consistent cut: everything logged is applied and vice
// versa.
//
// Recovery. replay_wal() scans segments in sequence order and stops at
// the first invalid frame (bad length, CRC mismatch, short read,
// undecodable body): a torn tail is detected, reported, and optionally
// truncated away — never partially applied. DurableTsdb ties it
// together: open() restores the snapshot, replays segments at or above
// the snapshot's sequence floor, and attaches a fresh WAL generation;
// checkpoint() installs snapshot v2 atomically and truncates the log.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "metrics/labels.h"
#include "metrics/model.h"
#include "metrics/symbols.h"
#include "simfs/durable_dir.h"
#include "tsdb/storage.h"

namespace ceems::tsdb {

struct WalOptions {
  // Rotate to a new segment once the current one exceeds this many bytes.
  std::size_t segment_bytes = 4u << 20;
};

struct WalStats {
  uint64_t records = 0;   // framed records appended
  uint64_t batches = 0;   // kBatch records
  uint64_t samples = 0;   // samples logged across all batches
  uint64_t groups = 0;    // durable flush groups (fsync-equivalents)
  uint64_t segments = 0;  // segments created by this writer
  uint64_t bytes = 0;     // framed bytes appended
};

class Wal {
 public:
  // Record payload types (first payload byte).
  static constexpr uint8_t kBatchRecord = 1;
  static constexpr uint8_t kPurgeRecord = 2;
  static constexpr uint8_t kDeleteRecord = 3;

  // Hard cap on one record's payload; anything larger on disk is treated
  // as corruption during replay.
  static constexpr std::size_t kMaxPayloadBytes = 1u << 26;

  // Starts a fresh generation: opens (and syncs) segment `start_seq`.
  Wal(simfs::DurableDirPtr dir, uint64_t start_seq, WalOptions options = {});

  // Commit ordering between writers and the checkpoint. Writers hold the
  // shared guard across [log_* → store apply]; checkpoint holds the
  // barrier across [snapshot → truncate], so it observes no half-applied
  // mutation and truncates no unapplied record.
  using CommitGuard = std::shared_lock<std::shared_mutex>;
  using Barrier = std::unique_lock<std::shared_mutex>;
  CommitGuard commit_shared() { return CommitGuard(commit_mu_); }
  Barrier commit_barrier() { return Barrier(commit_mu_); }

  // Logs a sample batch and returns once it is durable (group commit).
  // Caller holds a CommitGuard.
  bool log_batch(const metrics::SampleRef* samples, std::size_t count);
  bool log_purge(common::TimestampMs cutoff);
  bool log_delete(const std::vector<metrics::LabelMatcher>& matchers);

  // Deletes every segment and starts generation `new_seq` with an empty
  // series dictionary. Caller holds the Barrier and has already durably
  // installed a snapshot covering everything logged so far.
  void reset_to(uint64_t new_seq);

  // Sequence number of the segment currently being written.
  uint64_t current_seq() const;

  WalStats stats() const;

  static std::string segment_name(uint64_t seq);
  // Parses "wal-<seq>.log"; nullopt for other names.
  static std::optional<uint64_t> parse_segment_name(std::string_view name);

 private:
  // Opens segment seq_ (header append + sync). Caller holds mu_.
  void open_segment_locked();
  // Frames payload_ into the current segment (rotating first if full)
  // and returns the record's LSN. Caller holds mu_.
  uint64_t frame_and_append_locked();
  // Group commit: returns once flushed_lsn_ >= lsn.
  bool flush_to(uint64_t lsn);

  simfs::DurableDirPtr dir_;
  WalOptions options_;

  // Writers shared, checkpoint exclusive. Ordered before mu_.
  std::shared_mutex commit_mu_;

  mutable std::mutex mu_;
  std::condition_variable flush_cv_;
  uint64_t seq_ = 0;
  std::string segment_;            // current segment file name
  std::size_t segment_bytes_ = 0;  // bytes appended to current segment
  // Series → ref for the current generation. Keyed by full interned
  // label set (fingerprint-collision safe).
  std::unordered_map<metrics::InternedLabels, uint64_t,
                     metrics::InternedLabelsHash>
      dict_;
  uint64_t next_ref_ = 1;
  uint64_t next_lsn_ = 0;
  uint64_t flushed_lsn_ = 0;
  bool flush_in_progress_ = false;
  // Segments with appended-but-unsynced bytes; the flush leader drains it.
  std::vector<std::string> dirty_segments_;
  // Encode scratch, reused under mu_ so steady-state logging is
  // allocation-free.
  std::string payload_;
  std::string defs_;
  std::string samples_buf_;
  std::string frame_;
  WalStats stats_;
};

struct WalReplayResult {
  uint64_t records_applied = 0;
  uint64_t samples_appended = 0;  // accepted by the store
  uint64_t segments_scanned = 0;
  uint64_t max_seq = 0;  // highest segment sequence seen (0 when none)
  // A trailing invalid frame was found and everything from it on was
  // discarded — the expected signature of a crash mid-append.
  bool torn_tail = false;
  uint64_t discarded_bytes = 0;
  // Non-empty when replay stopped before the tail (corrupt interior
  // segment) — recovery still proceeds with the valid prefix.
  std::string error;
};

// Replays every segment with sequence >= seq_floor into `store`, which
// must NOT have a WAL attached (records would be re-logged). Records are
// fully decoded and validated before any sample is applied, so a corrupt
// record never applies partially. When repair_torn_tail is set, the
// invalid tail is durably truncated away so the next writer appends
// after the last valid record.
WalReplayResult replay_wal(simfs::DurableDir& dir, uint64_t seq_floor,
                           TimeSeriesStore& store,
                           bool repair_torn_tail = true);

// Snapshot + WAL lifecycle for one TimeSeriesStore. The snapshot file
// ("snapshot") wraps the store's v2 snapshot with the WAL sequence floor
// it covers; segments below the floor are already folded into the
// snapshot and are never replayed.
class DurableTsdb {
 public:
  struct OpenResult {
    std::size_t snapshot_samples = 0;  // restored from the snapshot file
    WalReplayResult replay;
  };

  DurableTsdb(StorePtr store, simfs::DurableDirPtr dir,
              WalOptions options = {});
  ~DurableTsdb();

  // Clears the store, restores the snapshot, replays the WAL (repairing
  // a torn tail) and attaches a fresh WAL generation. Call exactly once,
  // before any writes; also serves in-place crash recovery on a live
  // StorePtr — readers holding the same shared_ptr see the recovered
  // state.
  OpenResult open();

  // Consistent cut: atomically installs a snapshot of the current store
  // state and truncates the WAL. Concurrent writers block for the
  // duration (commit barrier). Returns false if the snapshot could not
  // be installed (the WAL is then left untouched — no data loss).
  bool checkpoint();

  Wal& wal() { return *wal_; }
  uint64_t checkpoints() const { return checkpoints_; }

 private:
  StorePtr store_;
  simfs::DurableDirPtr dir_;
  WalOptions options_;
  std::shared_ptr<Wal> wal_;
  uint64_t checkpoints_ = 0;
};

}  // namespace ceems::tsdb
