#include "slurm/scheduler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ceems::slurm {

Scheduler::Scheduler(Cluster& cluster, SlurmDbd& dbd, uint64_t seed,
                     SchedulerConfig config)
    : cluster_(cluster), dbd_(dbd), rng_(seed), config_(config) {
  for (const auto& sim : cluster_.all_nodes()) {
    NodeFree free;
    free.cpus = sim->spec().total_cpus();
    free.memory_bytes = sim->spec().memory_bytes;
    for (std::size_t i = 0; i < sim->spec().gpus.size(); ++i) {
      free.gpu_ordinals.insert(static_cast<int>(i));
    }
    free_[sim->hostname()] = free;
  }
}

int64_t Scheduler::submit(const JobRequest& request) {
  const auto& nodes = cluster_.partition_nodes(request.partition);
  if (nodes.empty())
    throw std::invalid_argument("unknown partition " + request.partition);
  // Reject jobs that can never fit.
  int fitting_nodes = 0;
  for (const auto& sim : nodes) {
    if (sim->spec().total_cpus() >= request.cpus_per_node &&
        sim->spec().memory_bytes >= request.memory_per_node_bytes &&
        static_cast<int>(sim->spec().gpus.size()) >= request.gpus_per_node)
      ++fitting_nodes;
  }
  if (fitting_nodes < request.num_nodes)
    throw std::invalid_argument("request can never be satisfied by partition " +
                                request.partition);

  Job job;
  job.job_id = next_job_id_++;
  job.request = request;
  job.state = JobState::kPending;
  job.submit_time_ms = cluster_.clock()->now_ms();
  queue_.push_back(job);
  dbd_.upsert(job);
  return job.job_id;
}

bool Scheduler::cancel(int64_t job_id) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->job_id == job_id) {
      it->state = JobState::kCancelled;
      it->end_time_ms = cluster_.clock()->now_ms();
      dbd_.upsert(*it);
      queue_.erase(it);
      return true;
    }
  }
  auto it = running_.find(job_id);
  if (it != running_.end()) {
    finish_job(it->second, JobState::kCancelled);
    running_.erase(it);
    return true;
  }
  return false;
}

bool Scheduler::try_place(const JobRequest& request,
                          std::vector<std::string>& hostnames,
                          std::vector<std::vector<int>>& gpus) {
  hostnames.clear();
  gpus.clear();
  for (const auto& sim : cluster_.partition_nodes(request.partition)) {
    NodeFree& free = free_.at(sim->hostname());
    if (free.cpus < request.cpus_per_node) continue;
    if (free.memory_bytes < request.memory_per_node_bytes) continue;
    if (static_cast<int>(free.gpu_ordinals.size()) < request.gpus_per_node)
      continue;
    hostnames.push_back(sim->hostname());
    std::vector<int> bound;
    auto it = free.gpu_ordinals.begin();
    for (int g = 0; g < request.gpus_per_node; ++g) bound.push_back(*it++);
    gpus.push_back(std::move(bound));
    if (static_cast<int>(hostnames.size()) == request.num_nodes) break;
  }
  if (static_cast<int>(hostnames.size()) < request.num_nodes) return false;

  // Commit the reservation.
  for (std::size_t i = 0; i < hostnames.size(); ++i) {
    NodeFree& free = free_.at(hostnames[i]);
    free.cpus -= request.cpus_per_node;
    free.memory_bytes -= request.memory_per_node_bytes;
    for (int ordinal : gpus[i]) free.gpu_ordinals.erase(ordinal);
  }
  return true;
}

void Scheduler::start_job(Job& job) {
  common::TimestampMs now = cluster_.clock()->now_ms();
  job.state = JobState::kRunning;
  job.start_time_ms = now;

  RunningJob running;
  // Sample the outcome at start: failures end early, timeouts hit the
  // walltime wall.
  int64_t true_duration = job.request.true_duration_ms;
  JobState final_state = JobState::kCompleted;
  if (rng_.chance(job.request.failure_probability)) {
    final_state = JobState::kFailed;
    true_duration = static_cast<int64_t>(
        static_cast<double>(true_duration) * rng_.uniform(0.05, 0.8));
  }
  if (true_duration >= job.request.walltime_limit_ms) {
    final_state = JobState::kTimeout;
    true_duration = job.request.walltime_limit_ms;
  }
  running.planned_end_ms = now + std::max<int64_t>(true_duration, 1);
  running.final_state = final_state;

  for (std::size_t i = 0; i < job.hostnames.size(); ++i) {
    node::WorkloadPlacement placement;
    placement.job_id = job.job_id;
    placement.user = job.request.user;
    placement.project = job.request.account;
    placement.alloc_cpus = job.request.cpus_per_node;
    placement.memory_limit_bytes = job.request.memory_per_node_bytes;
    placement.gpu_ordinals = job.gpu_ordinals_per_node[i];
    cluster_.node(job.hostnames[i])
        ->add_workload(placement, job.request.behavior);
  }
  running.job = job;
  running_.emplace(job.job_id, std::move(running));
  dbd_.upsert(job);
}

void Scheduler::finish_job(RunningJob& running, JobState state) {
  Job& job = running.job;
  job.state = state;
  job.end_time_ms = cluster_.clock()->now_ms();
  // Fairshare: charge the user the job's allocated cpu-seconds.
  double cpu_seconds = static_cast<double>(job.request.cpus_per_node) *
                       static_cast<double>(job.hostnames.size()) *
                       static_cast<double>(job.end_time_ms -
                                           job.start_time_ms) /
                       1000.0;
  usage_cpu_seconds_[job.request.user] += cpu_seconds;
  job.exit_code = state == JobState::kCompleted ? 0 : 1;
  for (std::size_t i = 0; i < job.hostnames.size(); ++i) {
    cluster_.node(job.hostnames[i])->remove_workload(job.job_id);
    NodeFree& free = free_.at(job.hostnames[i]);
    free.cpus += job.request.cpus_per_node;
    free.memory_bytes += job.request.memory_per_node_bytes;
    for (int ordinal : job.gpu_ordinals_per_node[i])
      free.gpu_ordinals.insert(ordinal);
  }
  dbd_.upsert(job);
}

common::TimestampMs Scheduler::earliest_start_estimate(
    const JobRequest& request) const {
  // Walk planned job ends in time order, releasing resources until the
  // request fits. Conservative but cheap.
  std::map<std::string, NodeFree> free = free_;
  std::vector<const RunningJob*> by_end;
  by_end.reserve(running_.size());
  for (const auto& [id, running] : running_) by_end.push_back(&running);
  std::sort(by_end.begin(), by_end.end(),
            [](const RunningJob* a, const RunningJob* b) {
              return a->planned_end_ms < b->planned_end_ms;
            });

  auto fits = [&]() {
    int found = 0;
    for (const auto& sim : cluster_.partition_nodes(request.partition)) {
      const NodeFree& nf = free.at(sim->hostname());
      if (nf.cpus >= request.cpus_per_node &&
          nf.memory_bytes >= request.memory_per_node_bytes &&
          static_cast<int>(nf.gpu_ordinals.size()) >= request.gpus_per_node) {
        if (++found == request.num_nodes) return true;
      }
    }
    return false;
  };

  if (fits()) return cluster_.clock()->now_ms();
  for (const RunningJob* running : by_end) {
    const Job& job = running->job;
    for (std::size_t i = 0; i < job.hostnames.size(); ++i) {
      NodeFree& nf = free.at(job.hostnames[i]);
      nf.cpus += job.request.cpus_per_node;
      nf.memory_bytes += job.request.memory_per_node_bytes;
      for (int ordinal : job.gpu_ordinals_per_node[i])
        nf.gpu_ordinals.insert(ordinal);
    }
    if (fits()) return running->planned_end_ms;
  }
  return cluster_.clock()->now_ms() + common::kMillisPerDay * 365;
}

void Scheduler::apply_fairshare_order() {
  common::TimestampMs now = cluster_.clock()->now_ms();
  if (last_decay_ms_ >= 0 && now > last_decay_ms_ &&
      config_.usage_halflife_ms > 0) {
    double factor = std::pow(
        0.5, static_cast<double>(now - last_decay_ms_) /
                 static_cast<double>(config_.usage_halflife_ms));
    for (auto& [user, usage] : usage_cpu_seconds_) usage *= factor;
  }
  last_decay_ms_ = now;
  // Higher fairshare factor (lower decayed usage) schedules first; ties
  // fall back to submission order (stable sort on a FCFS-ordered deque).
  std::stable_sort(queue_.begin(), queue_.end(),
                   [this](const Job& a, const Job& b) {
                     auto usage_of = [this](const std::string& user) {
                       auto it = usage_cpu_seconds_.find(user);
                       return it == usage_cpu_seconds_.end() ? 0.0
                                                             : it->second;
                     };
                     return usage_of(a.request.user) <
                            usage_of(b.request.user);
                   });
}

double Scheduler::user_usage(const std::string& user) const {
  auto it = usage_cpu_seconds_.find(user);
  return it == usage_cpu_seconds_.end() ? 0.0 : it->second;
}

void Scheduler::step() {
  common::TimestampMs now = cluster_.clock()->now_ms();
  if (config_.fairshare) apply_fairshare_order();

  // 1. Finish due jobs.
  for (auto it = running_.begin(); it != running_.end();) {
    if (it->second.planned_end_ms <= now) {
      finish_job(it->second, it->second.final_state);
      it = running_.erase(it);
    } else {
      ++it;
    }
  }

  // 2. FCFS head + EASY backfill.
  common::TimestampMs head_reservation = 0;
  bool head_blocked = false;
  for (auto it = queue_.begin(); it != queue_.end();) {
    Job& job = *it;
    std::vector<std::string> hostnames;
    std::vector<std::vector<int>> gpus;
    if (try_place(job.request, hostnames, gpus)) {
      // Backfill rule: a non-head job may start only if it finishes before
      // the head job's reserved start.
      if (head_blocked) {
        int64_t max_duration = std::min(job.request.walltime_limit_ms,
                                        job.request.true_duration_ms);
        if (now + max_duration > head_reservation) {
          // Would delay the head job: release the tentative reservation.
          for (std::size_t i = 0; i < hostnames.size(); ++i) {
            NodeFree& free = free_.at(hostnames[i]);
            free.cpus += job.request.cpus_per_node;
            free.memory_bytes += job.request.memory_per_node_bytes;
            for (int ordinal : gpus[i]) free.gpu_ordinals.insert(ordinal);
          }
          ++it;
          continue;
        }
      }
      job.hostnames = std::move(hostnames);
      job.gpu_ordinals_per_node = std::move(gpus);
      start_job(job);
      it = queue_.erase(it);
    } else {
      if (!head_blocked) {
        head_blocked = true;
        head_reservation = earliest_start_estimate(job.request);
      }
      ++it;
    }
  }
}

int Scheduler::free_cpus(const std::string& partition) const {
  int total = 0;
  for (const auto& sim : cluster_.partition_nodes(partition)) {
    total += free_.at(sim->hostname()).cpus;
  }
  return total;
}

}  // namespace ceems::slurm
