#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "dashboard/ceems_dashboards.h"
#include "dashboard/grafana_export.h"
#include "stack_fixture.h"
#include "tsdb/promql_ast.h"

namespace ceems::dashboard {
namespace {

// ---------- panel renderers (pure) ----------

TEST(Panels, TableAlignsColumns) {
  std::string out = render_table("Jobs", {"id", "state"},
                                 {{"1", "RUNNING"}, {"123456", "DONE"}});
  EXPECT_NE(out.find("== Jobs"), std::string::npos);
  EXPECT_NE(out.find("| id     | state   |"), std::string::npos);
  EXPECT_NE(out.find("| 123456 | DONE    |"), std::string::npos);
}

TEST(Panels, StatsRow) {
  std::string out = render_stats("Usage", {{"Energy", "12 kWh"},
                                           {"Emissions", "0.6 kg"}});
  EXPECT_NE(out.find("12 kWh"), std::string::npos);
  EXPECT_NE(out.find("Emissions"), std::string::npos);
}

TEST(Panels, ChartPlotsSeries) {
  std::vector<ChartSeries> series(1);
  series[0].name = "watts";
  for (int i = 0; i <= 20; ++i) {
    series[0].points.push_back({i * 1000, 100.0 + i});
  }
  std::string out = render_chart("Power", series, 40, 8);
  EXPECT_NE(out.find("== Power"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("watts"), std::string::npos);
}

TEST(Panels, ChartHandlesEmptyAndFlat) {
  EXPECT_NE(render_chart("E", {}, 40, 8).find("(no data)"),
            std::string::npos);
  std::vector<ChartSeries> flat(1);
  flat[0].points = {{0, 5}, {1000, 5}};
  EXPECT_NO_THROW(render_chart("F", flat, 40, 8));
}

TEST(Panels, HumanUnits) {
  EXPECT_EQ(format_bytes(1536.0 * 1024), "1.5 MiB");
  EXPECT_EQ(format_joules(7.2e6), "2.00 kWh");
  EXPECT_EQ(format_joules(500), "500 J");
  EXPECT_EQ(format_co2(1500), "1.50 kgCO2e");
  EXPECT_EQ(format_duration(3 * 3600 * 1000 + 20 * 60 * 1000), "3h 20m");
}

// ---------- Grafana provisioning JSON ----------

TEST(GrafanaExport, DashboardsAreValidGrafanaJson) {
  common::Json job = job_dashboard_json("ds-uid");
  EXPECT_EQ(job.get_string("uid"), "ceems-job");
  EXPECT_EQ(job.get_int("schemaVersion"), 36);
  const auto& panels = job.at("panels").as_array();
  ASSERT_GE(panels.size(), 4u);
  // Every panel targets the data source and carries a PromQL expr.
  for (const auto& panel : panels) {
    const auto& targets = panel.at("targets").as_array();
    ASSERT_EQ(targets.size(), 1u);
    EXPECT_EQ(targets[0].at("datasource").get_string("uid"), "ds-uid");
    EXPECT_FALSE(targets[0].get_string("expr").empty());
    EXPECT_TRUE(panel.get("gridPos").has_value());
  }
  // The $uuid template variable exists.
  EXPECT_EQ(job.at("templating").at("list").as_array()[0].get_string("name"),
            "uuid");
  // Panel queries parse as PromQL after substituting the variable.
  for (const auto& panel : panels) {
    std::string expr = panel.at("targets").as_array()[0].get_string("expr");
    std::size_t pos;
    while ((pos = expr.find("$uuid")) != std::string::npos) {
      expr.replace(pos, 5, "123");
    }
    EXPECT_NO_THROW(tsdb::promql::parse(expr)) << expr;
  }
}

TEST(GrafanaExport, OperatorQueriesParse) {
  common::Json dashboard = operator_dashboard_json("p");
  for (const auto& panel : dashboard.at("panels").as_array()) {
    std::string expr = panel.at("targets").as_array()[0].get_string("expr");
    EXPECT_NO_THROW(tsdb::promql::parse(expr)) << expr;
  }
}

TEST(GrafanaExport, WritesProvisioningFiles) {
  std::string dir = ::testing::TempDir() + "grafana_export";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(export_grafana_dashboards(dir));
  for (const char* file :
       {"ceems-user.json", "ceems-job.json", "ceems-operator.json"}) {
    std::ifstream in(dir + "/" + file);
    ASSERT_TRUE(in.good()) << file;
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_NO_THROW(common::Json::parse(content)) << file;
  }
  std::filesystem::remove_all(dir);
}

// ---------- Fig. 2 dashboards over a live stack ----------

class DashboardTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mini_ = new ceems::testing::MiniStack();
    mini_->run(30 * common::kMillisPerMinute);
    mini_->stack().start_servers();
  }
  static void TearDownTestSuite() {
    delete mini_;
    mini_ = nullptr;
  }

  static std::pair<std::string, std::string> user_with_energy() {
    reldb::Query query;
    auto result = mini_->stack().db().query(apiserver::kUnitsTable, query);
    for (const auto& row : result.rows) {
      auto unit = apiserver::unit_from_row(row);
      if (unit.total_energy_joules > 0) return {unit.user, unit.uuid};
    }
    return {"user0", "0"};
  }

  GrafanaClient client_for(const std::string& user) {
    return GrafanaClient(mini_->stack().lb_url(), mini_->stack().api_url(),
                         user);
  }

  static ceems::testing::MiniStack* mini_;
};

ceems::testing::MiniStack* DashboardTest::mini_ = nullptr;

TEST_F(DashboardTest, Fig2aAggregateUsage) {
  auto [user, uuid] = user_with_energy();
  GrafanaClient client = client_for(user);
  std::string panel = render_user_aggregate_dashboard(
      client, 0, mini_->clock()->now_ms());
  EXPECT_NE(panel.find("Aggregate usage of " + user), std::string::npos);
  EXPECT_NE(panel.find("Total energy"), std::string::npos);
  EXPECT_NE(panel.find("Total emissions"), std::string::npos);
  EXPECT_EQ(panel.find("unavailable"), std::string::npos);
}

TEST_F(DashboardTest, Fig2bJobList) {
  auto [user, uuid] = user_with_energy();
  GrafanaClient client = client_for(user);
  std::string panel =
      render_user_job_list(client, 0, mini_->clock()->now_ms());
  EXPECT_NE(panel.find("Compute units of " + user), std::string::npos);
  EXPECT_NE(panel.find("JobID"), std::string::npos);
  EXPECT_NE(panel.find("Energy"), std::string::npos);
  EXPECT_NE(panel.find(uuid), std::string::npos);
}

TEST_F(DashboardTest, Fig2cJobTimeseriesThroughLb) {
  auto [user, uuid] = user_with_energy();
  GrafanaClient client = client_for(user);
  common::TimestampMs now = mini_->clock()->now_ms();
  std::string panel = render_job_timeseries(client, uuid,
                                            now - 20 * 60 * 1000, now, 60000);
  EXPECT_NE(panel.find("CPU usage"), std::string::npos);
  EXPECT_EQ(panel.find("denied"), std::string::npos);
}

TEST_F(DashboardTest, Fig2cDeniedForStranger) {
  auto [user, uuid] = user_with_energy();
  GrafanaClient stranger = client_for("not_" + user);
  common::TimestampMs now = mini_->clock()->now_ms();
  std::string panel = render_job_timeseries(stranger, uuid, now - 600000, now,
                                            60000);
  EXPECT_NE(panel.find("denied or failed"), std::string::npos);
}

TEST_F(DashboardTest, InstantQueryThroughClient) {
  GrafanaClient admin = client_for("admin");
  auto result = admin.instant_query("sum(up)", mini_->clock()->now_ms());
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.instant.size(), 1u);
  // All targets up: nodes + emissions.
  EXPECT_GT(result.instant[0].second,
            static_cast<double>(mini_->sim().cluster().node_count()) - 1);
}

}  // namespace
}  // namespace ceems::dashboard
