// Prometheus-compatible HTTP query API (/api/v1/query, /api/v1/query_range,
// /api/v1/series, /api/v1/labels...). The CEEMS load balancer proxies these
// endpoints, Grafana-style dashboards query them, and the API server's
// aggregate updater uses them — so the JSON wire format matches Prometheus:
//   {"status":"success","data":{"resultType":"vector","result":[
//       {"metric":{...},"value":[<unix sec>,"<value>"]}]}}
#pragma once

#include <memory>

#include "common/clock.h"
#include "common/json.h"
#include "http/server.h"
#include "tsdb/promql_eval.h"
#include "tsdb/storage.h"

namespace ceems::tsdb {

class PromApi {
 public:
  PromApi(std::shared_ptr<const Queryable> source, common::ClockPtr clock,
          promql::EngineOptions options = {});

  // Registers /api/v1/* and /-/healthy on the server.
  void attach(http::Server& server);

  http::Response handle_query(const http::Request& request) const;
  http::Response handle_query_range(const http::Request& request) const;
  http::Response handle_series(const http::Request& request) const;

 private:
  std::shared_ptr<const Queryable> source_;
  common::ClockPtr clock_;
  promql::Engine engine_;
};

// Renders a PromQL Value / range result to the Prometheus response JSON.
common::Json value_to_json(const promql::Value& value);
common::Json matrix_to_json(const std::vector<Series>& matrix);

// Parses a ?time= / ?start= parameter: unix seconds (possibly fractional)
// or RFC3339 is NOT supported — the whole stack uses unix seconds.
std::optional<common::TimestampMs> parse_time_param(const std::string& text);

}  // namespace ceems::tsdb
