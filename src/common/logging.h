// Minimal leveled, thread-safe logger. Components log through this instead
// of std::cerr so tests can raise the threshold and keep output quiet.
#pragma once

#include <sstream>
#include <string>

namespace ceems::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& component,
                 const std::string& message);

// Stream-style helper: LogStream(kInfo, "tsdb") << "loaded " << n;
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream() {
    if (level_ >= log_level()) log_message(level_, component_, out_.str());
  }
  template <typename T>
  LogStream& operator<<(const T& value) {
    if (level_ >= log_level()) out_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream out_;
};

#define CEEMS_LOG_DEBUG(component) \
  ::ceems::common::LogStream(::ceems::common::LogLevel::kDebug, component)
#define CEEMS_LOG_INFO(component) \
  ::ceems::common::LogStream(::ceems::common::LogLevel::kInfo, component)
#define CEEMS_LOG_WARN(component) \
  ::ceems::common::LogStream(::ceems::common::LogLevel::kWarn, component)
#define CEEMS_LOG_ERROR(component) \
  ::ceems::common::LogStream(::ceems::common::LogLevel::kError, component)

}  // namespace ceems::common
