// Emission-factor providers (§II-A.c). The factor — grams of CO2-equivalent
// per kWh — depends on the momentary energy mix, so CEEMS combines a static
// historical source (OWID) with real-time sources (RTE for France,
// Electricity Maps for many zones). Real-time providers are simulated with
// deterministic diurnal/seasonal mix models since the live APIs are not
// reachable offline (DESIGN.md substitution table); the chain/caching/rate-
// limit code paths are the real thing.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "faults/fault.h"

namespace ceems::emissions {

struct EmissionFactor {
  double gco2_per_kwh = 0;
  std::string provider;   // "owid", "rte", "emaps"
  bool realtime = false;  // static yearly average vs live mix
};

class Provider {
 public:
  virtual ~Provider() = default;
  virtual std::string name() const = 0;
  // Factor for an ISO-3166 alpha-2 zone ("FR", "DE", ...) at time t.
  // nullopt when the zone is unknown or the provider is unavailable
  // (rate-limited, simulated outage).
  virtual std::optional<EmissionFactor> factor(
      const std::string& zone, common::TimestampMs t_ms) = 0;
};

using ProviderPtr = std::shared_ptr<Provider>;

// First-available-wins chain, real-time providers first, OWID as fallback —
// the composition the paper describes. When every provider declines
// (outage, rate limit), the chain serves the zone's last successfully
// fetched factor for up to `lkg_ttl_ms` — a power grid's mix drifts
// slowly, so a bounded-age factor beats a gap in the emissions series.
// Past the TTL the chain goes dark rather than serve arbitrarily old data.
class ProviderChain final : public Provider {
 public:
  explicit ProviderChain(std::vector<ProviderPtr> providers,
                         int64_t lkg_ttl_ms = 0)
      : providers_(std::move(providers)), lkg_ttl_ms_(lkg_ttl_ms) {}
  std::string name() const override { return "chain"; }
  std::optional<EmissionFactor> factor(const std::string& zone,
                                       common::TimestampMs t_ms) override;

  // Times a factor was served from the last-known-good cache.
  uint64_t lkg_served() const;

 private:
  struct LastKnownGood {
    EmissionFactor factor;
    common::TimestampMs fetched_ms = 0;
  };
  std::vector<ProviderPtr> providers_;
  int64_t lkg_ttl_ms_;
  mutable std::mutex mu_;
  std::map<std::string, LastKnownGood> last_known_good_;
  uint64_t lkg_served_ = 0;
};

// Chaos wrapper: consults a FaultHook (site "emissions.provider", key
// "<provider>/<zone>") before delegating; any fault models the provider's
// API being dark (outage, 429, timeout) and yields nullopt — exactly the
// signal the chain/caching layers recover from.
class FaultInjectedProvider final : public Provider {
 public:
  FaultInjectedProvider(ProviderPtr inner, faults::FaultHook hook)
      : inner_(std::move(inner)), hook_(std::move(hook)) {}

  std::string name() const override { return inner_->name(); }
  std::optional<EmissionFactor> factor(const std::string& zone,
                                       common::TimestampMs t_ms) override;

  uint64_t faults_injected() const { return faults_injected_; }

 private:
  ProviderPtr inner_;
  faults::FaultHook hook_;
  std::atomic<uint64_t> faults_injected_{0};
};

// grams CO2e for `joules` at `gco2_per_kwh`.
double emissions_grams(double joules, double gco2_per_kwh);

}  // namespace ceems::emissions
