// Ground-truth power model of a simulated node. This is the "physics" the
// monitoring stack observes only indirectly (through RAPL counters, the BMC
// and GPU telemetry). Because the model also attributes power to individual
// jobs causally, it provides the ground truth against which the paper's
// Eq. (1) estimation is evaluated (experiment E2 in DESIGN.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "node/spec.h"

namespace ceems::node {

// Instantaneous utilization of one workload on the node.
struct WorkloadUsage {
  int64_t job_id = 0;
  int alloc_cpus = 0;          // CPUs allocated to the job
  double cpu_util = 0;         // average utilization of *allocated* CPUs, 0..1
  int64_t memory_bytes = 0;    // resident memory
  double memory_activity = 0;  // fraction of accesses that are "hot", 0..1
  std::vector<int> gpu_ordinals;
  double gpu_util = 0;         // utilization of the bound GPUs, 0..1
  int64_t gpu_memory_bytes = 0;
};

// Component power breakdown at one instant.
struct PowerBreakdown {
  double cpu_pkg_w = 0;    // sum over sockets (RAPL package domain)
  double dram_w = 0;       // RAPL dram domain
  double gpus_w = 0;       // sum over GPUs
  double platform_w = 0;   // static board power
  double node_dc_w = 0;    // cpu + dram + gpus + platform
  double ipmi_w = 0;       // what the BMC reports (PSU overhead applied,
                           // GPUs excluded on the second server type)
  std::vector<double> per_gpu_w;
};

// Causal attribution of node power to one job (ground truth).
struct JobPowerTruth {
  int64_t job_id = 0;
  double cpu_w = 0;       // dynamic CPU power caused by the job
  double dram_w = 0;      // dynamic DRAM power caused by the job
  double gpu_w = 0;       // power of the job's bound GPUs above idle
  double static_share_w = 0;  // share of idle/static power by allocation
  double total_w() const { return cpu_w + dram_w + gpu_w + static_share_w; }
};

class PowerModel {
 public:
  explicit PowerModel(NodeSpec spec) : spec_(std::move(spec)) {}

  const NodeSpec& spec() const { return spec_; }

  // Node-level component powers for a set of concurrent workloads.
  // `gpu_utils`/`gpu_mem` are per-physical-GPU aggregates derived from the
  // workloads by the caller (NodeSim).
  PowerBreakdown node_power(const std::vector<WorkloadUsage>& workloads) const;

  // Ground-truth causal attribution. Static power (CPU idle, DRAM refresh,
  // platform, GPU idle of *bound* GPUs) is charged by allocated-CPU share;
  // dynamic power follows the job's own activity.
  std::vector<JobPowerTruth> attribute(
      const std::vector<WorkloadUsage>& workloads) const;

  // Utilization of the whole node's CPUs implied by the workloads, 0..1.
  double node_cpu_util(const std::vector<WorkloadUsage>& workloads) const;

 private:
  double cpu_dynamic_w(double node_util) const;
  NodeSpec spec_;
};

}  // namespace ceems::node
