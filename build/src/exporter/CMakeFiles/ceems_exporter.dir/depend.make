# Empty dependencies file for ceems_exporter.
# This may be replaced when dependencies are built.
