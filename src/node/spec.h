// Hardware description of a simulated compute node. The presets model the
// Jean-Zay node families named in the paper: Intel and AMD CPU nodes, and
// GPU nodes carrying V100 / A100 / H100 accelerators — including the two
// GPU-server variants whose BMCs do or do not include GPU power in the
// IPMI-DCMI reading (§III-A), and the RAPL asymmetry (Intel exposes a DRAM
// domain, AMD only a package domain).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ceems::node {

enum class CpuVendor { kIntel, kAmd };
enum class GpuVendor { kNvidia, kAmd };

struct GpuSpec {
  std::string model;  // "V100", "A100", "H100", "MI250"
  GpuVendor vendor = GpuVendor::kNvidia;
  double max_power_w = 300;
  double idle_power_w = 25;
  int64_t memory_bytes = 32LL << 30;
};

struct NodeSpec {
  std::string hostname;
  CpuVendor cpu_vendor = CpuVendor::kIntel;
  int sockets = 2;
  int cores_per_socket = 20;
  int threads_per_core = 1;
  int64_t memory_bytes = 192LL << 30;

  // Power model parameters (per node unless noted).
  double cpu_idle_w_per_socket = 35;   // package power at 0% utilization
  double cpu_tdp_w_per_socket = 150;   // package power at 100% utilization
  double dram_idle_w = 10;             // DRAM background (refresh)
  double dram_max_w = 40;              // DRAM at 100% active memory
  double platform_static_w = 60;       // fans, VRs, NIC, BMC, board
  double psu_overhead_factor = 1.08;   // AC/DC conversion loss seen by IPMI

  std::vector<GpuSpec> gpus;

  // RAPL: Intel exposes package + dram domains, AMD only package (§III-A).
  bool rapl_has_dram() const { return cpu_vendor == CpuVendor::kIntel; }

  // The two GPU server types (§III-A): whether the BMC's DCMI reading
  // includes GPU power.
  bool ipmi_includes_gpu = true;
  // BMC sampling: DCMI "is not suitable to use at a high frequency".
  int64_t ipmi_update_interval_ms = 5000;

  int total_cpus() const { return sockets * cores_per_socket * threads_per_core; }
  double cpu_idle_w() const { return cpu_idle_w_per_socket * sockets; }
  double cpu_tdp_w() const { return cpu_tdp_w_per_socket * sockets; }
};

// Jean-Zay-style node presets.
NodeSpec make_intel_cpu_node(const std::string& hostname);
NodeSpec make_amd_cpu_node(const std::string& hostname);
// four V100-32GB, BMC includes GPU power.
NodeSpec make_v100_node(const std::string& hostname);
// eight A100-80GB, BMC does NOT include GPU power (second server type).
NodeSpec make_a100_node(const std::string& hostname);
// four H100-80GB, BMC includes GPU power.
NodeSpec make_h100_node(const std::string& hostname);
// four MI250 (AMD GPU + AMD CPU) node for the ROCm/AMD-SMI path.
NodeSpec make_mi250_node(const std::string& hostname);

GpuSpec make_gpu_spec(const std::string& model);

}  // namespace ceems::node
