file(REMOVE_RECURSE
  "CMakeFiles/cli_ceems_lb.dir/ceems_lb.cpp.o"
  "CMakeFiles/cli_ceems_lb.dir/ceems_lb.cpp.o.d"
  "ceems_lb"
  "ceems_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cli_ceems_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
