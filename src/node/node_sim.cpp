#include "node/node_sim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ceems::node {

namespace {
// USER_HZ: jiffies per second in /proc/stat.
constexpr double kJiffiesPerMs = 0.1;
}  // namespace

NodeSim::NodeSim(NodeSpec spec, common::ClockPtr clock, uint64_t seed)
    : model_(std::move(spec)),
      clock_(std::move(clock)),
      fs_(std::make_shared<simfs::PseudoFs>()),
      rng_(seed),
      rapl_(fs_, model_.spec()),
      ipmi_(clock_, model_.spec().ipmi_update_interval_ms),
      gpus_(model_.spec(), model_.spec().hostname) {
  proc_stat_.cpus.resize(static_cast<std::size_t>(model_.spec().total_cpus()));
  proc_stat_.boot_time_sec = clock_->now_ms() / 1000;
  publish_procfs();
  // Prime the BMC with idle power so the first scrape sees a reading.
  last_power_ = model_.node_power({});
  ipmi_.offer_power(last_power_.ipmi_w);
}

void NodeSim::add_workload(const WorkloadPlacement& placement,
                           const WorkloadBehavior& behavior) {
  std::lock_guard lock(mu_);
  if (workloads_.count(placement.job_id))
    throw std::invalid_argument("job " + std::to_string(placement.job_id) +
                                " already on node " + hostname());
  for (int ordinal : placement.gpu_ordinals) {
    if (ordinal < 0 ||
        static_cast<std::size_t>(ordinal) >= model_.spec().gpus.size())
      throw std::invalid_argument("gpu ordinal out of range");
  }
  Workload workload;
  workload.placement = placement;
  workload.behavior = behavior;
  std::string path = std::string(simfs::kSlurmScope) + "/job_" +
                     std::to_string(placement.job_id);
  workload.cgroup = std::make_unique<simfs::CgroupWriter>(fs_, path);
  workload.memory_stat.max_bytes = placement.memory_limit_bytes;
  workload.cgroup->update_memory(workload.memory_stat);
  workload.cgroup->set_procs({placement.job_id * 100 + 1});
  workload.rng = rng_.fork();
  workloads_.emplace(placement.job_id, std::move(workload));
}

void NodeSim::remove_workload(int64_t job_id) {
  std::lock_guard lock(mu_);
  auto it = workloads_.find(job_id);
  if (it == workloads_.end()) return;
  it->second.cgroup->destroy();
  workloads_.erase(it);
}

bool NodeSim::has_workload(int64_t job_id) const {
  std::lock_guard lock(mu_);
  return workloads_.count(job_id) > 0;
}

std::vector<WorkloadInfo> NodeSim::workloads() const {
  std::lock_guard lock(mu_);
  std::vector<WorkloadInfo> out;
  out.reserve(workloads_.size());
  for (const auto& [id, workload] : workloads_) {
    out.push_back({workload.placement, workload.cgroup->path()});
  }
  return out;
}

int NodeSim::allocated_cpus() const {
  std::lock_guard lock(mu_);
  int total = 0;
  for (const auto& [id, workload] : workloads_) {
    total += workload.placement.alloc_cpus;
  }
  return total;
}

void NodeSim::step(int64_t dt_ms) {
  std::lock_guard lock(mu_);
  double dt_sec = static_cast<double>(dt_ms) / 1000.0;

  // 1. Sample each workload's utilization for this step and update its
  // cgroup accounting.
  std::vector<WorkloadUsage> usages;
  usages.reserve(workloads_.size());
  for (auto& [id, workload] : workloads_) {
    workload.age_seconds += dt_sec;
    const WorkloadBehavior& behavior = workload.behavior;

    double cpu_util = std::clamp(
        workload.rng.normal(behavior.cpu_util_mean, behavior.cpu_util_jitter),
        0.0, 1.0);
    double gpu_util =
        workload.placement.gpu_ordinals.empty()
            ? 0.0
            : std::clamp(workload.rng.normal(behavior.gpu_util_mean,
                                             behavior.gpu_util_jitter),
                         0.0, 1.0);
    workload.current_cpu_util = cpu_util;
    workload.current_gpu_util = gpu_util;

    // cgroup cpu accounting: usage_usec integrates util × allocated CPUs.
    int64_t cpu_delta_usec = static_cast<int64_t>(
        cpu_util * workload.placement.alloc_cpus * dt_sec * 1e6);
    workload.cpu_stat.usage_usec += cpu_delta_usec;
    workload.cpu_stat.user_usec += cpu_delta_usec * 85 / 100;
    workload.cpu_stat.system_usec += cpu_delta_usec * 15 / 100;
    workload.cgroup->update_cpu(workload.cpu_stat);

    // Memory ramps toward its target over memory_ramp_seconds.
    double target = behavior.memory_target_fraction *
                    static_cast<double>(workload.placement.memory_limit_bytes);
    double ramp =
        behavior.memory_ramp_seconds <= 0
            ? 1.0
            : std::min(1.0, workload.age_seconds / behavior.memory_ramp_seconds);
    workload.memory_stat.current_bytes = static_cast<int64_t>(target * ramp);
    workload.memory_stat.peak_bytes = std::max(
        workload.memory_stat.peak_bytes, workload.memory_stat.current_bytes);
    workload.memory_stat.anon_bytes =
        workload.memory_stat.current_bytes * 9 / 10;
    workload.memory_stat.file_bytes =
        workload.memory_stat.current_bytes / 10;
    workload.cgroup->update_memory(workload.memory_stat);

    workload.io_stat.rbytes += static_cast<int64_t>(
        behavior.io_read_bytes_per_sec * dt_sec);
    workload.io_stat.wbytes += static_cast<int64_t>(
        behavior.io_write_bytes_per_sec * dt_sec);
    workload.io_stat.rios += static_cast<int64_t>(
        behavior.io_read_bytes_per_sec * dt_sec / 65536);
    workload.io_stat.wios += static_cast<int64_t>(
        behavior.io_write_bytes_per_sec * dt_sec / 65536);
    workload.cgroup->update_io(workload.io_stat);

    // eBPF/perf counters (§IV future work): network volume follows the
    // behavior rates; instruction-level counters follow actual CPU time.
    workload.ebpf.job_id = id;
    workload.ebpf.net_tx_bytes +=
        static_cast<int64_t>(behavior.net_tx_bytes_per_sec * dt_sec);
    workload.ebpf.net_rx_bytes +=
        static_cast<int64_t>(behavior.net_rx_bytes_per_sec * dt_sec);
    workload.ebpf.net_tx_packets += static_cast<int64_t>(
        behavior.net_tx_bytes_per_sec * dt_sec / 1400);  // ~MTU
    workload.ebpf.net_rx_packets += static_cast<int64_t>(
        behavior.net_rx_bytes_per_sec * dt_sec / 1400);
    double cpu_seconds = cpu_util * workload.placement.alloc_cpus * dt_sec;
    int64_t instructions = static_cast<int64_t>(
        cpu_seconds * behavior.instructions_per_cpu_sec);
    workload.ebpf.instructions += instructions;
    workload.ebpf.flops += static_cast<int64_t>(
        static_cast<double>(instructions) * behavior.flop_fraction);
    workload.ebpf.cache_misses += static_cast<int64_t>(
        static_cast<double>(instructions) * behavior.cache_miss_rate);

    WorkloadUsage usage;
    usage.job_id = id;
    usage.alloc_cpus = workload.placement.alloc_cpus;
    usage.cpu_util = cpu_util;
    usage.memory_bytes = workload.memory_stat.current_bytes;
    usage.memory_activity = behavior.memory_activity;
    usage.gpu_ordinals = workload.placement.gpu_ordinals;
    usage.gpu_util = gpu_util;
    usage.gpu_memory_bytes = static_cast<int64_t>(
        behavior.gpu_memory_fraction *
        (workload.placement.gpu_ordinals.empty()
             ? 0.0
             : static_cast<double>(
                   model_.spec()
                       .gpus[static_cast<std::size_t>(
                           workload.placement.gpu_ordinals[0])]
                       .memory_bytes)));
    usages.push_back(std::move(usage));
  }

  // 2. Power model: node components, RAPL integration, BMC refresh, GPUs.
  last_power_ = model_.node_power(usages);
  rapl_.integrate(last_power_.cpu_pkg_w, last_power_.dram_w, dt_ms);
  ipmi_.offer_power(last_power_.ipmi_w);
  lifetime_energy_j_ += last_power_.node_dc_w * dt_sec;

  std::vector<double> per_gpu_util(model_.spec().gpus.size(), 0.0);
  std::vector<int64_t> per_gpu_mem(model_.spec().gpus.size(), 0);
  for (const auto& usage : usages) {
    for (int ordinal : usage.gpu_ordinals) {
      per_gpu_util[static_cast<std::size_t>(ordinal)] = usage.gpu_util;
      per_gpu_mem[static_cast<std::size_t>(ordinal)] = usage.gpu_memory_bytes;
    }
  }
  gpus_.update(last_power_.per_gpu_w, per_gpu_util, per_gpu_mem, dt_ms);

  // 3. /proc/stat: whole-node jiffies. Busy time spreads across CPUs in
  // allocation order; the remainder idles.
  double busy_cpus = 0;
  for (const auto& usage : usages) busy_cpus += usage.cpu_util * usage.alloc_cpus;
  double total_jiffies = static_cast<double>(dt_ms) * kJiffiesPerMs;
  int ncpus = model_.spec().total_cpus();
  double remaining_busy = busy_cpus;
  for (int i = 0; i < ncpus; ++i) {
    double share = std::clamp(remaining_busy, 0.0, 1.0);
    remaining_busy -= share;
    auto& line = proc_stat_.cpus[static_cast<std::size_t>(i)];
    int64_t busy_j = static_cast<int64_t>(total_jiffies * share);
    line.user += busy_j * 85 / 100;
    line.system += busy_j - busy_j * 85 / 100;
    line.idle += static_cast<int64_t>(total_jiffies) - busy_j;
  }
  proc_stat_.aggregate = {};
  for (const auto& line : proc_stat_.cpus) {
    proc_stat_.aggregate.user += line.user;
    proc_stat_.aggregate.nice += line.nice;
    proc_stat_.aggregate.system += line.system;
    proc_stat_.aggregate.idle += line.idle;
    proc_stat_.aggregate.iowait += line.iowait;
    proc_stat_.aggregate.irq += line.irq;
    proc_stat_.aggregate.softirq += line.softirq;
  }
  publish_procfs();

  // 4. Ground-truth ledger.
  for (const auto& truth : model_.attribute(usages)) {
    JobEnergyTruth& ledger = truth_[truth.job_id];
    ledger.cpu_j += truth.cpu_w * dt_sec;
    ledger.dram_j += truth.dram_w * dt_sec;
    ledger.gpu_j += truth.gpu_w * dt_sec;
    ledger.static_share_j += truth.static_share_w * dt_sec;
  }
}

void NodeSim::publish_procfs() {
  simfs::write_proc_stat(*fs_, proc_stat_);
  int64_t used_bytes = 0;
  for (const auto& [id, workload] : workloads_) {
    used_bytes += workload.memory_stat.current_bytes;
  }
  simfs::MemInfo info;
  info.mem_total_kb = model_.spec().memory_bytes / 1024;
  int64_t os_overhead_kb = 2 * 1024 * 1024;  // ~2 GiB for OS + page cache
  info.mem_free_kb = std::max<int64_t>(
      0, info.mem_total_kb - used_bytes / 1024 - os_overhead_kb);
  info.mem_available_kb = info.mem_free_kb + os_overhead_kb / 2;
  info.buffers_kb = os_overhead_kb / 4;
  info.cached_kb = os_overhead_kb / 2;
  simfs::write_meminfo(*fs_, info);
}

std::vector<EbpfWorkloadStats> NodeSim::ebpf_stats() const {
  std::lock_guard lock(mu_);
  std::vector<EbpfWorkloadStats> out;
  out.reserve(workloads_.size());
  for (const auto& [id, workload] : workloads_) {
    out.push_back(workload.ebpf);
  }
  return out;
}

JobEnergyTruth NodeSim::job_energy_truth(int64_t job_id) const {
  std::lock_guard lock(mu_);
  auto it = truth_.find(job_id);
  return it == truth_.end() ? JobEnergyTruth{} : it->second;
}

std::map<int64_t, JobEnergyTruth> NodeSim::all_energy_truth() const {
  std::lock_guard lock(mu_);
  return truth_;
}

PowerBreakdown NodeSim::last_power() const {
  std::lock_guard lock(mu_);
  return last_power_;
}

double NodeSim::lifetime_node_energy_j() const {
  std::lock_guard lock(mu_);
  return lifetime_energy_j_;
}

}  // namespace ceems::node
