# Empty compiler generated dependencies file for cli_ceems_stack.
# This may be replaced when dependencies are built.
