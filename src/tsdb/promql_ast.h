// PromQL-subset AST. The subset is chosen so that every recording rule the
// paper's deployment uses (the etc/prometheus examples, Eq. 1 power
// estimation, emissions conversion) can be written verbatim:
//   selectors with matchers / offset / range, arithmetic and comparison
//   binary operators with on/ignoring + group_left/group_right matching,
//   set operators (and/or/unless), aggregations with by/without (sum, avg,
//   min, max, count, stddev, topk, bottomk, quantile), rate/increase and
//   *_over_time functions, label_replace, clamp, abs/ceil/floor/round,
//   vector/scalar/time.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "metrics/labels.h"

namespace ceems::tsdb::promql {

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

// How a binary operator pairs up series from both sides.
struct VectorMatching {
  bool is_on = false;  // on(labels) vs ignoring(labels)
  std::vector<std::string> labels;
  enum class Group { kNone, kLeft, kRight } group = Group::kNone;
  std::vector<std::string> include;  // group_left(include...) extra labels
};

struct Expr {
  enum class Kind {
    kNumber,
    kString,
    kVectorSelector,
    kMatrixSelector,
    kCall,
    kBinary,
    kAggregate,
    kUnary,
  };
  Kind kind = Kind::kNumber;

  // kNumber
  double number = 0;
  // kString
  std::string string_value;

  // kVectorSelector / kMatrixSelector
  std::string metric_name;
  std::vector<metrics::LabelMatcher> matchers;
  int64_t offset_ms = 0;
  int64_t range_ms = 0;  // matrix only

  // kCall
  std::string func;
  std::vector<ExprPtr> args;

  // kBinary / kUnary
  std::string op;
  ExprPtr lhs, rhs;  // unary uses lhs only
  bool bool_modifier = false;
  VectorMatching matching;

  // kAggregate
  std::string agg_op;
  ExprPtr agg_expr;
  ExprPtr agg_param;  // topk/bottomk/quantile parameter
  bool agg_by = false;       // by vs without (when grouping non-empty)
  bool agg_grouped = false;  // whether by/without clause present
  std::vector<std::string> grouping;

  std::string to_string() const;
};

ExprPtr make_number(double value);

class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Parses a PromQL expression. Throws ParseError.
ExprPtr parse(std::string_view input);

}  // namespace ceems::tsdb::promql
