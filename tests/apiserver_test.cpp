#include <gtest/gtest.h>

#include "apiserver/api_server.h"
#include "apiserver/reports.h"
#include "apiserver/resource_manager.h"
#include "apiserver/updater.h"
#include "http/client.h"
#include "stack_fixture.h"

namespace ceems::apiserver {
namespace {

using common::Json;

// ---------- schema ----------

TEST(Schema, UnitRowRoundTrip) {
  Unit unit;
  unit.uuid = "1234";
  unit.cluster = "jz";
  unit.resource_manager = "slurm";
  unit.user = "alice";
  unit.project = "prj1";
  unit.state = "RUNNING";
  unit.started_at_ms = 1000;
  unit.num_cpus = 40;
  unit.total_energy_joules = 1234.5;
  Unit back = unit_from_row(unit_to_row(unit));
  EXPECT_EQ(back.uuid, unit.uuid);
  EXPECT_EQ(back.user, unit.user);
  EXPECT_EQ(back.num_cpus, 40);
  EXPECT_DOUBLE_EQ(back.total_energy_joules, 1234.5);
  Json json = unit.to_json();
  EXPECT_EQ(json.get_string("uuid"), "1234");
  EXPECT_DOUBLE_EQ(json.get_number("total_energy_joules"), 1234.5);
}

// ---------- adapters ----------

TEST(Adapters, SlurmJobMapsToUnit) {
  slurm::Job job;
  job.job_id = 77;
  job.request.name = "train";
  job.request.user = "bob";
  job.request.account = "prj2";
  job.request.partition = "gpu_p4";
  job.request.num_nodes = 2;
  job.request.cpus_per_node = 16;
  job.request.gpus_per_node = 4;
  job.state = slurm::JobState::kRunning;
  job.submit_time_ms = 500;
  job.start_time_ms = 1000;
  Unit unit = SlurmAdapter::to_unit(job, "jean-zay");
  EXPECT_EQ(unit.uuid, "77");
  EXPECT_EQ(unit.resource_manager, "slurm");
  EXPECT_EQ(unit.state, "RUNNING");
  EXPECT_EQ(unit.num_cpus, 32);
  EXPECT_EQ(unit.num_gpus, 8);
}

TEST(Adapters, OpenstackPlugsIntoSameSchema) {
  OpenstackAdapter nova("cloud1");
  nova.report_vm("vm-abc", "carol", "prj3", 8, 16LL << 30, "ACTIVE", 100, 200,
                 0);
  auto units = nova.fetch_units_changed_since(0);
  ASSERT_EQ(units.size(), 1u);
  EXPECT_EQ(units[0].resource_manager, "openstack");
  EXPECT_EQ(units[0].uuid, "vm-abc");
  // Round-trips through the same DB schema.
  reldb::Database db;
  create_ceems_tables(db);
  db.upsert(kUnitsTable, unit_to_row(units[0]));
  EXPECT_EQ(unit_from_row(*db.get(kUnitsTable, reldb::Value("vm-abc"))).user,
            "carol");
  EXPECT_TRUE(nova.fetch_units_changed_since(300).empty());
}

TEST(Adapters, K8sPodsPlugIntoSameSchema) {
  K8sAdapter kube("k8s-prod");
  kube.report_pod("pod-uid-1", "training-job-0", "ml-sa", "ml-team", 3.5,
                  8LL << 30, 1, "Running", 100, 200, 0);
  kube.report_pod("pod-uid-2", "web-0", "web-sa", "web-team", 0.5,
                  1LL << 30, 0, "Succeeded", 100, 150, 900);
  auto units = kube.fetch_units_changed_since(0);
  ASSERT_EQ(units.size(), 2u);
  EXPECT_EQ(units[0].resource_manager, "k8s");
  EXPECT_EQ(units[0].project, "ml-team");  // namespace = project
  EXPECT_EQ(units[0].num_cpus, 4);         // 3.5 cores rounds up
  EXPECT_EQ(units[0].num_gpus, 1);

  // All three managers coexist in one table.
  reldb::Database db;
  create_ceems_tables(db);
  for (const auto& unit : units) db.upsert(kUnitsTable, unit_to_row(unit));
  OpenstackAdapter nova("cloud");
  nova.report_vm("vm-1", "u", "p", 4, 8LL << 30, "ACTIVE", 1, 2, 0);
  for (const auto& unit : nova.fetch_units_changed_since(0)) {
    db.upsert(kUnitsTable, unit_to_row(unit));
  }
  reldb::Query query;
  query.group_by = {"resource_manager"};
  query.aggregates = {{reldb::AggFn::kCount, "", "n"}};
  EXPECT_EQ(db.query(kUnitsTable, query).rows.size(), 2u);
  // Incremental poll only returns new events.
  EXPECT_TRUE(kube.fetch_units_changed_since(901).empty());
  kube.report_pod("pod-uid-1", "training-job-0", "ml-sa", "ml-team", 3.5,
                  8LL << 30, 1, "Succeeded", 100, 200, 950);
  EXPECT_EQ(kube.fetch_units_changed_since(901).size(), 1u);
}

// ---------- updater window alignment ----------

// With align_window_ms set, the updater's batched aggregate queries snap
// to the grid, so a long-term store's resolution-aware planner serves
// them from the aggregate ladder — asserted via the per-level hit
// counters — while the folded unit aggregates stay plausible.
TEST(UpdaterAlignment, AggregateQueriesHitResolutionLadder) {
  constexpr int64_t kFiveMin = 5 * common::kMillisPerMinute;
  constexpr common::TimestampMs kEnd = 40 * common::kMillisPerMinute;

  tsdb::TimeSeriesStore hot;
  auto power = metrics::Labels{{"uuid", "vm-1"}}
                   .with_name("ceems_job_power_watts");
  auto cpu = metrics::Labels{{"uuid", "vm-1"}}
                 .with_name("ceems_compute_unit_cpu_usage_seconds_total");
  for (common::TimestampMs t = 0; t <= kEnd; t += 30000) {
    hot.append(power, t, 200);
    hot.append(cpu, t, static_cast<double>(t) / 1000.0);  // 1 cpu-sec/sec
  }
  tsdb::LongTermConfig lt_config;
  lt_config.downsample_after_ms = 365LL * 24 * common::kMillisPerHour;
  lt_config.levels = {{kFiveMin, 0}};
  auto lt = std::make_shared<tsdb::LongTermStore>(lt_config);
  lt->sync_from(hot);
  lt->compact(kEnd);

  reldb::Database db;
  auto nova = std::make_shared<OpenstackAdapter>("cloud");
  nova->report_vm("vm-1", "alice", "p1", 4, 8LL << 30, "ACTIVE", 0, 0, 0);
  auto clock = common::make_sim_clock(0);
  UpdaterConfig config;
  config.align_window_ms = kFiveMin;
  Updater updater(db, lt, nullptr, {nova}, clock, config);

  clock->set(10 * common::kMillisPerMinute + 13000);  // off-grid on purpose
  updater.update_once();  // first cycle pins last_agg to the 10m gridline
  auto hits_before = lt->select_stats();
  clock->set(35 * common::kMillisPerMinute + 7000);
  UpdateStats stats = updater.update_once();  // 25m window ending at 35m
  auto hits_after = lt->select_stats();

  EXPECT_EQ(stats.units_aggregated, 1u);
  uint64_t before_total = 0, after_total = 0;
  for (uint64_t h : hits_before.level_hits) before_total += h;
  for (uint64_t h : hits_after.level_hits) after_total += h;
  EXPECT_GT(after_total, before_total)
      << "aligned updater queries must be served from the aggregate ladder";

  auto row = db.get(kUnitsTable, reldb::Value(std::string("vm-1")));
  ASSERT_TRUE(row.has_value());
  Unit unit = unit_from_row(*row);
  // 200 W over the 25 min aligned window.
  EXPECT_NEAR(unit.total_cpu_energy_joules, 200.0 * 25 * 60, 1.0);
  EXPECT_NEAR(unit.total_cpu_time_seconds, 25.0 * 60, 30.0);
}

// ---------- updater + HTTP API over a live mini-stack ----------

class ApiServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ceems::testing::MiniStackOptions options;
    options.stack.updater.interval_ms = 60000;
    mini_ = new ceems::testing::MiniStack(options);
    mini_->run(30 * common::kMillisPerMinute);
    mini_->stack().start_servers();
  }
  static void TearDownTestSuite() {
    delete mini_;
    mini_ = nullptr;
  }

  Json api_get(const std::string& path, const std::string& user) {
    http::Client client;
    http::HeaderMap headers;
    if (!user.empty()) headers[kGrafanaUserHeader] = user;
    auto result = client.get(mini_->stack().api_url() + path, headers);
    EXPECT_TRUE(result.ok) << result.error;
    last_status_ = result.response.status;
    return result.response.body.empty() ? Json()
                                        : Json::parse(result.response.body);
  }

  // A user with at least one finished unit in the DB.
  static std::string some_user() {
    reldb::Query query;
    query.limit = 200;
    auto result = mini_->stack().db().query(kUnitsTable, query);
    for (std::size_t i = 0; i < result.rows.size(); ++i) {
      Unit unit = unit_from_row(result.rows[i]);
      if (unit.total_energy_joules > 0) return unit.user;
    }
    return "user0";
  }

  static ceems::testing::MiniStack* mini_;
  int last_status_ = 0;
};

ceems::testing::MiniStack* ApiServerTest::mini_ = nullptr;

TEST_F(ApiServerTest, UpdaterPopulatedUnitsFromSlurm) {
  EXPECT_GT(mini_->stack().db().table_size(kUnitsTable), 20u);
  // Every slurmdbd job that started is present.
  for (const auto& job : mini_->sim().dbd().all_jobs()) {
    if (job.start_time_ms == 0) continue;
    auto row = mini_->stack().db().get(kUnitsTable,
                                       reldb::Value(std::to_string(job.job_id)));
    EXPECT_TRUE(row.has_value()) << job.job_id;
  }
}

TEST_F(ApiServerTest, AggregatesAreFilledAndPlausible) {
  reldb::Query query;
  auto result = mini_->stack().db().query(kUnitsTable, query);
  std::size_t with_energy = 0;
  for (const auto& row : result.rows) {
    Unit unit = unit_from_row(row);
    if (unit.total_energy_joules <= 0) continue;
    ++with_energy;
    // avg cpu usage is a fraction.
    EXPECT_GE(unit.avg_cpu_usage, 0.0);
    EXPECT_LE(unit.avg_cpu_usage, 1.5);
    // Energy is positive and bounded by node TDP × elapsed (loose sanity).
    double elapsed_sec = static_cast<double>(unit.elapsed_ms) / 1000.0;
    EXPECT_LT(unit.total_energy_joules,
              5000.0 * std::max(elapsed_sec, 60.0) * unit.num_nodes);
    if (unit.total_energy_joules > 0 && unit.total_emissions_grams > 0) {
      // Emissions consistent with a French grid factor (15..120 g/kWh).
      double gco2_per_kwh =
          unit.total_emissions_grams / (unit.total_energy_joules / 3.6e6);
      EXPECT_GT(gco2_per_kwh, 10);
      EXPECT_LT(gco2_per_kwh, 150);
    }
  }
  EXPECT_GT(with_energy, 10u);
}

TEST_F(ApiServerTest, GpuJobsGetGpuEnergy) {
  reldb::Query query;
  auto result = mini_->stack().db().query(kUnitsTable, query);
  bool saw_gpu_energy = false;
  for (const auto& row : result.rows) {
    Unit unit = unit_from_row(row);
    if (unit.num_gpus > 0 && unit.total_gpu_energy_joules > 0) {
      saw_gpu_energy = true;
      EXPECT_GT(unit.avg_gpu_usage, 0.0);
    }
    if (unit.num_gpus == 0) {
      EXPECT_DOUBLE_EQ(unit.total_gpu_energy_joules, 0.0);
    }
  }
  EXPECT_TRUE(saw_gpu_energy);
}

TEST_F(ApiServerTest, UnitsEndpointScopedToUser) {
  std::string user = some_user();
  Json body = api_get("/api/v1/units", user);
  EXPECT_EQ(body.get_string("status"), "success");
  ASSERT_GT(body.at("data").size(), 0u);
  for (const auto& unit : body.at("data").as_array()) {
    EXPECT_EQ(unit.get_string("user"), user);
  }
}

TEST_F(ApiServerTest, MissingUserHeaderForbidden) {
  api_get("/api/v1/units", "");
  EXPECT_EQ(last_status_, 403);
}

TEST_F(ApiServerTest, AdminSeesEverythingAndFilters) {
  Json all = api_get("/api/v1/units", "admin");
  Json filtered = api_get("/api/v1/units?user=" + some_user(), "admin");
  EXPECT_GT(all.at("data").size(), filtered.at("data").size());
  Json limited = api_get("/api/v1/units?limit=3", "admin");
  EXPECT_LE(limited.at("data").size(), 3u);
}

TEST_F(ApiServerTest, UnitDetailEnforcesOwnership) {
  std::string user = some_user();
  Json body = api_get("/api/v1/units", user);
  std::string uuid = body.at("data").as_array()[0].get_string("uuid");

  api_get("/api/v1/units/" + uuid, user);
  EXPECT_EQ(last_status_, 200);
  api_get("/api/v1/units/" + uuid, "definitely_not_" + user);
  EXPECT_EQ(last_status_, 403);
  api_get("/api/v1/units/99999999", user);
  EXPECT_EQ(last_status_, 404);
}

TEST_F(ApiServerTest, VerifyEndpoint) {
  std::string user = some_user();
  Json body = api_get("/api/v1/units", user);
  std::string uuid = body.at("data").as_array()[0].get_string("uuid");
  api_get("/api/v1/units/verify?uuid=" + uuid, user);
  EXPECT_EQ(last_status_, 200);
  api_get("/api/v1/units/verify?uuid=" + uuid, "stranger_xyz");
  EXPECT_EQ(last_status_, 403);
  api_get("/api/v1/units/verify", user);
  EXPECT_EQ(last_status_, 400);
}

TEST_F(ApiServerTest, UsageRollupPerUserAndProject) {
  Json users = api_get("/api/v1/usage?scope=user", "admin");
  EXPECT_GT(users.at("data").size(), 3u);
  double total_energy = 0;
  for (const auto& row : users.at("data").as_array()) {
    total_energy += row.get_number("total_energy_joules");
    EXPECT_GT(row.get_int("num_units"), 0);
  }
  EXPECT_GT(total_energy, 0);

  Json projects = api_get("/api/v1/usage?scope=project", "admin");
  double project_energy = 0;
  for (const auto& row : projects.at("data").as_array()) {
    project_energy += row.get_number("total_energy_joules");
  }
  // Conservation across groupings.
  EXPECT_NEAR(project_energy, total_energy, 1e-6 * std::max(1.0, total_energy));

  api_get("/api/v1/usage?scope=bogus", "admin");
  EXPECT_EQ(last_status_, 400);
}

TEST_F(ApiServerTest, NonAdminUsageOnlySelf) {
  std::string user = some_user();
  Json body = api_get("/api/v1/usage?scope=user", user);
  ASSERT_EQ(body.at("data").size(), 1u);
  EXPECT_EQ(body.at("data").as_array()[0].get_string("user"), user);
}

TEST_F(ApiServerTest, UsersAndProjectsAdminOnly) {
  api_get("/api/v1/users", some_user());
  EXPECT_EQ(last_status_, 403);
  Json users = api_get("/api/v1/users", "admin");
  EXPECT_EQ(last_status_, 200);
  EXPECT_GT(users.at("data").size(), 0u);
  Json projects = api_get("/api/v1/projects", "admin");
  EXPECT_GT(projects.at("data").size(), 0u);
}

TEST_F(ApiServerTest, ProjectVisibilityForMembers) {
  // Find two users in the same project.
  reldb::Query query;
  auto result = mini_->stack().db().query(kUnitsTable, query);
  std::map<std::string, std::set<std::string>> project_users;
  for (const auto& row : result.rows) {
    Unit unit = unit_from_row(row);
    project_users[unit.project].insert(unit.user);
  }
  for (const auto& [project, users] : project_users) {
    if (users.size() < 2) continue;
    auto it = users.begin();
    std::string member = *it++;
    Json body = api_get("/api/v1/units?project=" + project, member);
    EXPECT_EQ(last_status_, 200);
    EXPECT_GT(body.at("data").size(), 0u);
    // A non-member is rejected.
    api_get("/api/v1/units?project=" + project, "stranger_abc");
    EXPECT_EQ(last_status_, 403);
    return;
  }
  GTEST_SKIP() << "no project with two users in this run";
}

TEST_F(ApiServerTest, PaginationAndClusterFilter) {
  Json all = api_get("/api/v1/units", "admin");
  std::size_t total = all.at("data").size();
  ASSERT_GT(total, 4u);

  Json first = api_get("/api/v1/units?limit=2", "admin");
  Json second = api_get("/api/v1/units?limit=2&offset=2", "admin");
  ASSERT_EQ(first.at("data").size(), 2u);
  ASSERT_EQ(second.at("data").size(), 2u);
  // Pages are disjoint and follow the global ordering.
  EXPECT_EQ(first.at("data").as_array()[0].get_string("uuid"),
            all.at("data").as_array()[0].get_string("uuid"));
  EXPECT_EQ(second.at("data").as_array()[0].get_string("uuid"),
            all.at("data").as_array()[2].get_string("uuid"));
  // Offset past the end: empty page, not an error.
  Json past = api_get("/api/v1/units?offset=99999", "admin");
  EXPECT_EQ(last_status_, 200);
  EXPECT_EQ(past.at("data").size(), 0u);

  // Cluster filter: everything is on the jean-zay sim cluster.
  Json matching = api_get("/api/v1/units?cluster=jean-zay", "admin");
  EXPECT_EQ(matching.at("data").size(), total);
  Json none = api_get("/api/v1/units?cluster=nope", "admin");
  EXPECT_EQ(none.at("data").size(), 0u);
  Json by_manager = api_get("/api/v1/units?resource_manager=slurm", "admin");
  EXPECT_EQ(by_manager.at("data").size(), total);
}

TEST_F(ApiServerTest, EfficiencyReportFlagsIdleUnits) {
  // Inject two synthetic finished units: one busy, one nearly idle.
  Unit busy;
  busy.uuid = "900001";
  busy.user = "efficient";
  busy.project = "prjX";
  busy.state = "COMPLETED";
  busy.started_at_ms = 1;
  busy.ended_at_ms = 1 + 2 * common::kMillisPerHour;
  busy.elapsed_ms = 2 * common::kMillisPerHour;
  busy.num_cpus = 40;
  busy.avg_cpu_usage = 0.95;
  Unit idle = busy;
  idle.uuid = "900002";
  idle.user = "wasteful";
  idle.avg_cpu_usage = 0.05;
  idle.total_energy_joules = 1e6;
  mini_->stack().db().upsert(kUnitsTable, unit_to_row(busy));
  mini_->stack().db().upsert(kUnitsTable, unit_to_row(idle));

  auto report = build_efficiency_report(mini_->stack().db());
  bool flagged_idle = false, flagged_busy = false;
  for (const auto& finding : report.low_cpu_units) {
    if (finding.unit.uuid == "900002") {
      flagged_idle = true;
      // 95% of 40 cpus × 2 h wasted.
      EXPECT_NEAR(finding.wasted_cpu_hours, 0.95 * 40 * 2, 0.5);
      EXPECT_NEAR(finding.wasted_energy_joules, 0.95e6, 1e4);
    }
    if (finding.unit.uuid == "900001") flagged_busy = true;
  }
  EXPECT_TRUE(flagged_idle);
  EXPECT_FALSE(flagged_busy);
  // "wasteful" ranks above everyone in the user ranking.
  ASSERT_FALSE(report.by_user.empty());
  EXPECT_EQ(report.by_user[0].owner, "wasteful");

  // Rendering works and mentions the culprit.
  std::string text = render_efficiency_report(report);
  EXPECT_NE(text.find("wasteful"), std::string::npos);

  // HTTP endpoint: admin only.
  api_get("/api/v1/reports/efficiency", some_user());
  EXPECT_EQ(last_status_, 403);
  Json body = api_get("/api/v1/reports/efficiency", "admin");
  EXPECT_EQ(last_status_, 200);
  EXPECT_GT(body.at("data").get_number("total_wasted_cpu_hours"), 70.0);
  // Clean up the synthetic rows so other tests see consistent data.
  mini_->stack().db().erase(kUnitsTable, reldb::Value("900001"));
  mini_->stack().db().erase(kUnitsTable, reldb::Value("900002"));
}

TEST_F(ApiServerTest, CleanupDeletesShortJobSeries) {
  // Separate stack with an aggressive cutoff.
  ceems::testing::MiniStackOptions options;
  options.stack.updater.small_unit_cutoff_ms = 15 * common::kMillisPerMinute;
  options.seed = 7;
  ceems::testing::MiniStack mini(options);
  mini.run(40 * common::kMillisPerMinute);

  // Find a finished short job and check its series are gone from the hot
  // store while longer jobs' series remain.
  auto& hot = *mini.stack().hot_store();
  bool checked_short = false;
  for (const auto& job : mini.sim().dbd().all_jobs()) {
    if (!job.finished() || job.start_time_ms == 0) continue;
    int64_t lifetime = job.end_time_ms - job.start_time_ms;
    auto series = hot.select(
        {{"uuid", metrics::LabelMatcher::Op::kEq, std::to_string(job.job_id)}},
        0, mini.clock()->now_ms());
    if (lifetime < 15 * common::kMillisPerMinute) {
      EXPECT_TRUE(series.empty()) << "job " << job.job_id;
      checked_short = true;
    }
  }
  EXPECT_TRUE(checked_short);
}

}  // namespace
}  // namespace ceems::apiserver
