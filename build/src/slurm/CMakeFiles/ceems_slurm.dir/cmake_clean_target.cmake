file(REMOVE_RECURSE
  "libceems_slurm.a"
)
