// E9 — the CEEMS load balancer (§II-B.c): cost of the access-control
// introspection, end-to-end proxy overhead versus querying the backend
// directly, and the round-robin vs least-connection strategies under a
// skewed backend (the case least-connection exists for).
//
// Expected shape: introspection is microseconds; the proxy adds one local
// HTTP hop (~a few hundred µs); under a slow+fast backend pair,
// least-connection completes a fixed workload measurably faster than
// round-robin by steering around the slow backend.
#include <benchmark/benchmark.h>

#include "common/logging.h"

#include <chrono>
#include <cstdio>
#include <thread>

#include "http/client.h"
#include "lb/load_balancer.h"
#include "tsdb/http_api.h"
#include "tsdb/storage.h"

using namespace ceems;

namespace {

void BM_query_introspection(benchmark::State& state) {
  std::string query =
      "sum by (hostname) (rate(ceems_compute_unit_cpu_usage_seconds_total{"
      "uuid=\"123456\"}[2m])) * on(hostname) group_left() "
      "instance:cpu_budget_watts + ceems_job_gpu_power_watts{uuid=\"123456\"}";
  for (auto _ : state) {
    auto result = lb::introspect_query(query);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_query_introspection);

// Shared backend serving a small PromQL corpus.
struct Backend {
  std::shared_ptr<tsdb::TimeSeriesStore> store;
  std::unique_ptr<http::Server> server;
  std::unique_ptr<tsdb::PromApi> api;

  explicit Backend(common::ClockPtr clock) {
    store = std::make_shared<tsdb::TimeSeriesStore>();
    for (int u = 0; u < 50; ++u) {
      auto labels = metrics::Labels{{"uuid", std::to_string(u)}}
                        .with_name("ceems_job_power_watts");
      for (int i = 0; i < 60; ++i) {
        store->append(labels, 1700000000000LL + i * 30000, 100.0 + u);
      }
    }
    server = std::make_unique<http::Server>(http::ServerConfig{});
    api = std::make_unique<tsdb::PromApi>(store, clock);
    api->attach(*server);
    server->start();
  }
};

void BM_direct_backend_query(benchmark::State& state) {
  auto clock = common::make_sim_clock(1700000000000LL + 60 * 30000);
  Backend backend(clock);
  http::Client client;
  std::string url = backend.server->base_url() +
                    "/api/v1/query?query=" +
                    http::url_encode("ceems_job_power_watts{uuid=\"7\"}");
  for (auto _ : state) {
    auto result = client.get(url);
    if (!result.ok) {
      state.SkipWithError("backend query failed");
      break;
    }
    benchmark::DoNotOptimize(result.response.body);
  }
  backend.server->stop();
}
BENCHMARK(BM_direct_backend_query)->Unit(benchmark::kMicrosecond);

void BM_via_lb_admin(benchmark::State& state) {
  auto clock = common::make_sim_clock(1700000000000LL + 60 * 30000);
  Backend backend(clock);
  lb::LbConfig config;
  config.admin_users = {"admin"};
  lb::LoadBalancer balancer(config, {backend.server->base_url()}, clock);
  balancer.start();
  http::Client client;
  http::HeaderMap headers;
  headers["X-Grafana-User"] = "admin";
  std::string url = balancer.base_url() +
                    "/api/v1/query?query=" +
                    http::url_encode("ceems_job_power_watts{uuid=\"7\"}");
  for (auto _ : state) {
    auto result = client.get(url, headers);
    if (!result.ok || result.response.status != 200) {
      state.SkipWithError("lb query failed");
      break;
    }
    benchmark::DoNotOptimize(result.response.body);
  }
  balancer.stop();
  backend.server->stop();
}
BENCHMARK(BM_via_lb_admin)->Unit(benchmark::kMicrosecond);

// Strategy comparison under a skewed backend pair: fixed workload of 80
// concurrent-ish requests, wall time reported.
double run_strategy(lb::Strategy strategy) {
  auto clock = common::make_sim_clock(0);
  http::ServerConfig slow_config;
  slow_config.worker_threads = 4;
  http::Server slow(slow_config);
  slow.handle_prefix("/api/", [](const http::Request&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return http::Response::json(200, "{}");
  });
  http::Server fast(slow_config);
  fast.handle_prefix("/api/", [](const http::Request&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return http::Response::json(200, "{}");
  });
  slow.start();
  fast.start();

  lb::LbConfig config;
  config.strategy = strategy;
  config.admin_users = {"admin"};
  config.http.worker_threads = 8;
  lb::LoadBalancer balancer(config, {slow.base_url(), fast.base_url()}, clock);
  balancer.start();

  auto started = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&] {
      http::Client client;
      http::HeaderMap headers;
      headers["X-Grafana-User"] = "admin";
      for (int i = 0; i < 10; ++i) {
        client.get(balancer.base_url() + "/api/v1/query?query=vector(1)",
                   headers);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  balancer.stop();
  slow.stop();
  fast.stop();
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  common::set_log_level(common::LogLevel::kError);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\nE9 — 80 requests, 8 clients, slow(20ms)+fast(1ms) backends\n");
  double rr = run_strategy(lb::Strategy::kRoundRobin);
  double lc = run_strategy(lb::Strategy::kLeastConnection);
  std::printf("  round-robin:      %.3f s\n", rr);
  std::printf("  least-connection: %.3f s  (%.2fx faster)\n", lc, rr / lc);
  return 0;
}
