#include "simfs/durable_dir.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

namespace ceems::simfs {

bool SimDurableDir::append(const std::string& name, std::string_view bytes) {
  std::lock_guard lock(mu_);
  files_[name].pending.append(bytes.data(), bytes.size());
  return true;
}

bool SimDurableDir::sync(const std::string& name) {
  std::lock_guard lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return false;
  it->second.durable += it->second.pending;
  it->second.pending.clear();
  ++syncs_;
  return true;
}

bool SimDurableDir::replace(const std::string& name, std::string_view bytes) {
  std::lock_guard lock(mu_);
  File& file = files_[name];
  file.durable.assign(bytes.data(), bytes.size());
  file.pending.clear();
  ++syncs_;
  return true;
}

std::optional<std::string> SimDurableDir::read(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = files_.find(name);
  // A file that has only ever seen unsynced appends does not exist
  // durably: a crash before the first sync leaves nothing behind.
  if (it == files_.end() || (it->second.durable.empty() &&
                             !it->second.pending.empty()))
    return std::nullopt;
  return it->second.durable;
}

std::vector<std::string> SimDurableDir::list() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, file] : files_) {
    if (!file.durable.empty() || file.pending.empty()) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

bool SimDurableDir::remove(const std::string& name) {
  std::lock_guard lock(mu_);
  files_.erase(name);
  return true;
}

bool SimDurableDir::truncate(const std::string& name, std::size_t size) {
  std::lock_guard lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return false;
  if (it->second.durable.size() > size) it->second.durable.resize(size);
  it->second.pending.clear();
  return true;
}

void SimDurableDir::crash() {
  std::lock_guard lock(mu_);
  for (auto it = files_.begin(); it != files_.end();) {
    it->second.pending.clear();
    // Files never synced vanish entirely.
    if (it->second.durable.empty()) it = files_.erase(it);
    else ++it;
  }
}

void SimDurableDir::truncate_durable(const std::string& name,
                                     std::size_t size) {
  std::lock_guard lock(mu_);
  auto it = files_.find(name);
  if (it != files_.end() && it->second.durable.size() > size)
    it->second.durable.resize(size);
}

void SimDurableDir::corrupt_durable(const std::string& name,
                                    std::size_t offset, uint8_t value) {
  std::lock_guard lock(mu_);
  auto it = files_.find(name);
  if (it != files_.end() && offset < it->second.durable.size())
    it->second.durable[offset] = static_cast<char>(value);
}

std::size_t SimDurableDir::pending_bytes(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = files_.find(name);
  return it == files_.end() ? 0 : it->second.pending.size();
}

uint64_t SimDurableDir::sync_count() const {
  std::lock_guard lock(mu_);
  return syncs_;
}

RealDurableDir::RealDurableDir(std::string root) : root_(std::move(root)) {
  std::error_code ec;
  std::filesystem::create_directories(root_, ec);
}

std::string RealDurableDir::path_of(const std::string& name) const {
  return root_ + "/" + name;
}

bool RealDurableDir::append(const std::string& name, std::string_view bytes) {
  std::lock_guard lock(mu_);
  pending_[name].append(bytes.data(), bytes.size());
  return true;
}

bool RealDurableDir::sync(const std::string& name) {
  std::string bytes;
  {
    std::lock_guard lock(mu_);
    auto it = pending_.find(name);
    if (it == pending_.end()) return true;
    bytes = std::move(it->second);
    it->second.clear();
  }
  int fd = ::open(path_of(name).c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return false;
  const char* data = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    ssize_t n = ::write(fd, data, left);
    if (n <= 0) {
      ::close(fd);
      return false;
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

bool RealDurableDir::replace(const std::string& name, std::string_view bytes) {
  {
    std::lock_guard lock(mu_);
    pending_.erase(name);
  }
  std::string tmp = path_of(name) + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const char* data = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    ssize_t n = ::write(fd, data, left);
    if (n <= 0) {
      ::close(fd);
      return false;
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  bool ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) return false;
  if (std::rename(tmp.c_str(), path_of(name).c_str()) != 0) return false;
  int dfd = ::open(root_.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

std::optional<std::string> RealDurableDir::read(const std::string& name) const {
  std::ifstream in(path_of(name), std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return content;
}

std::vector<std::string> RealDurableDir::list() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(root_, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp") continue;
    names.push_back(std::move(name));
  }
  std::sort(names.begin(), names.end());
  return names;
}

bool RealDurableDir::remove(const std::string& name) {
  {
    std::lock_guard lock(mu_);
    pending_.erase(name);
  }
  std::error_code ec;
  std::filesystem::remove(path_of(name), ec);
  return !ec;
}

bool RealDurableDir::truncate(const std::string& name, std::size_t size) {
  {
    std::lock_guard lock(mu_);
    pending_.erase(name);
  }
  std::error_code ec;
  std::filesystem::resize_file(path_of(name), size, ec);
  return !ec;
}

}  // namespace ceems::simfs
