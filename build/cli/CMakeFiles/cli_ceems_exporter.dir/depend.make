# Empty dependencies file for cli_ceems_exporter.
# This may be replaced when dependencies are built.
