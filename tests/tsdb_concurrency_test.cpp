// Concurrency coverage for the sharded TSDB: multi-threaded ingestion with
// simultaneous range queries. Asserts the two properties the aggregation
// tier depends on at fleet scale: no accepted sample is lost, and readers
// always observe time-ordered, monotone counter series (a query racing a
// write may see a prefix of a series, never a torn or reordered one).
// These tests are the workload the CI ThreadSanitizer job gates on.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "tsdb/promql_eval.h"
#include "tsdb/storage.h"

using namespace ceems;
using tsdb::TimeSeriesStore;

namespace {

metrics::Labels worker_series(int worker, int series) {
  return metrics::Labels{{"worker", "w" + std::to_string(worker)},
                         {"uuid", std::to_string(series)}}
      .with_name("ctr");
}

TEST(TsdbConcurrency, ParallelIngestLosesNoSamples) {
  constexpr int kWorkers = 8;
  constexpr int kSeriesPerWorker = 16;
  constexpr int kSamplesPerSeries = 200;

  TimeSeriesStore store;
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&store, w] {
      for (int i = 0; i < kSamplesPerSeries; ++i) {
        for (int s = 0; s < kSeriesPerWorker; ++s) {
          ASSERT_TRUE(
              store.append(worker_series(w, s), i * 1000, i * 10.0));
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();

  auto stats = store.stats();
  EXPECT_EQ(stats.num_series,
            static_cast<std::size_t>(kWorkers * kSeriesPerWorker));
  EXPECT_EQ(stats.num_samples, static_cast<std::size_t>(
                                   kWorkers * kSeriesPerWorker *
                                   kSamplesPerSeries));
  // Every series is complete and time-ordered.
  for (int w = 0; w < kWorkers; ++w) {
    for (int s = 0; s < kSeriesPerWorker; ++s) {
      auto result = store.select(
          {{"worker", metrics::LabelMatcher::Op::kEq, "w" + std::to_string(w)},
           {"uuid", metrics::LabelMatcher::Op::kEq, std::to_string(s)}},
          0, kSamplesPerSeries * 1000);
      ASSERT_EQ(result.size(), 1u);
      ASSERT_EQ(result[0].samples().size(),
                static_cast<std::size_t>(kSamplesPerSeries));
      for (std::size_t i = 1; i < result[0].samples().size(); ++i) {
        EXPECT_LT(result[0].samples()[i - 1].t, result[0].samples()[i].t);
      }
    }
  }
}

TEST(TsdbConcurrency, QueriesDuringIngestSeeMonotonicCounters) {
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kSeriesPerWriter = 8;
  constexpr int kSamplesPerSeries = 300;

  TimeSeriesStore store;
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&store, w] {
      for (int i = 0; i < kSamplesPerSeries; ++i) {
        for (int s = 0; s < kSeriesPerWriter; ++s) {
          store.append(worker_series(w, s), i * 1000, i * 10.0);
        }
      }
    });
  }

  // Readers hammer full-range selects and PromQL range queries while the
  // writers run. Counters only ever increase, so any torn read would show
  // up as a non-monotone series.
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      tsdb::promql::Engine engine;
      while (!done.load(std::memory_order_acquire)) {
        auto series = store.select(
            {{"__name__", metrics::LabelMatcher::Op::kEq, "ctr"}}, 0,
            kSamplesPerSeries * 1000);
        for (const auto& s : series) {
          for (std::size_t i = 1; i < s.samples().size(); ++i) {
            ASSERT_LT(s.samples()[i - 1].t, s.samples()[i].t);
            ASSERT_LE(s.samples()[i - 1].v, s.samples()[i].v);
          }
        }
        auto matrix = engine.eval_range(
            store, "sum by (worker) (ctr)", 0, kSamplesPerSeries * 1000,
            10 * 1000);
        for (const auto& s : matrix) {
          for (std::size_t i = 1; i < s.samples.size(); ++i) {
            ASSERT_LT(s.samples[i - 1].t, s.samples[i].t);
          }
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (auto& writer : writers) writer.join();
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  EXPECT_GT(reads.load(), 0u);

  // Once writers are quiesced, nothing was lost.
  auto stats = store.stats();
  EXPECT_EQ(stats.num_samples, static_cast<std::size_t>(
                                   kWriters * kSeriesPerWriter *
                                   kSamplesPerSeries));
}

TEST(TsdbConcurrency, PurgeAndDeleteRaceAppends) {
  constexpr int kWriters = 4;
  constexpr int kIterations = 200;

  TimeSeriesStore store;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&store, w] {
      for (int i = 0; i < kIterations; ++i) {
        store.append(worker_series(w, i % 4), i * 1000, i);
      }
    });
  }
  std::thread maintenance([&store] {
    for (int i = 0; i < 50; ++i) {
      store.purge_before(i * 500);
      store.delete_series(
          {{"worker", metrics::LabelMatcher::Op::kEq, "w0"}});
      store.label_values("worker");
      store.stats();
      store.max_time();
    }
  });
  for (auto& writer : writers) writer.join();
  maintenance.join();
  // Post-condition is only internal consistency: every surviving series is
  // time-ordered.
  for (const auto& series : store.series_since(0)) {
    for (std::size_t i = 1; i < series.samples.size(); ++i) {
      EXPECT_LT(series.samples[i - 1].t, series.samples[i].t);
    }
  }
}

TEST(TsdbConcurrency, ParallelRangeEvalMatchesSerialBitForBit) {
  TimeSeriesStore store;
  for (int h = 0; h < 12; ++h) {
    for (int s = 0; s < 6; ++s) {
      auto labels = metrics::Labels{{"hostname", "n" + std::to_string(h)},
                                    {"uuid", std::to_string(s)}}
                        .with_name("m");
      for (int i = 0; i < 240; ++i) {
        store.append(labels, i * 30000, i * 7.0 + h * 0.25 + s * 0.125);
      }
    }
  }

  tsdb::promql::EngineOptions serial_options;
  serial_options.query_cache_capacity = 0;
  tsdb::promql::Engine serial(serial_options);

  tsdb::promql::EngineOptions parallel_options;
  parallel_options.query_cache_capacity = 0;
  parallel_options.pool = std::make_shared<common::ThreadPool>(8, "eval");
  tsdb::promql::Engine parallel(parallel_options);

  for (const std::string query :
       {"sum by (hostname) (rate(m[2m]))", "avg(m)", "m * 2",
        "topk(3, sum by (hostname) (m))"}) {
    auto expected = serial.eval_range(store, query, 0, 240 * 30000, 30000);
    auto actual = parallel.eval_range(store, query, 0, 240 * 30000, 30000);
    ASSERT_EQ(expected.size(), actual.size()) << query;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].labels, actual[i].labels) << query;
      ASSERT_EQ(expected[i].samples.size(), actual[i].samples.size())
          << query;
      for (std::size_t j = 0; j < expected[i].samples.size(); ++j) {
        EXPECT_EQ(expected[i].samples[j].t, actual[i].samples[j].t) << query;
        // Bit-identical, not approximately equal.
        EXPECT_EQ(expected[i].samples[j].v, actual[i].samples[j].v) << query;
      }
    }
  }
}

TEST(TsdbConcurrency, QueryCacheHitsAndShardInvalidation) {
  auto store = std::make_shared<TimeSeriesStore>();
  auto labels = metrics::Labels{{"uuid", "1"}}.with_name("m");
  for (int i = 0; i < 100; ++i) store->append(labels, i * 1000, i);

  tsdb::promql::EngineOptions options;
  options.query_cache_capacity = 8;
  tsdb::promql::Engine engine(options);

  auto first = engine.eval_range(*store, "m", 0, 99 * 1000, 1000);
  auto second = engine.eval_range(*store, "m", 0, 99 * 1000, 1000);
  auto stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  ASSERT_EQ(first.size(), second.size());
  ASSERT_EQ(first[0].samples.size(), second[0].samples.size());

  // A write to the owning shard invalidates the entry...
  store->append(labels, 200 * 1000, 200);
  auto third = engine.eval_range(*store, "m", 0, 99 * 1000, 1000);
  stats = engine.cache_stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.misses, 2u);
  ASSERT_EQ(third.size(), first.size());

  // ...and the refreshed entry serves hits again.
  engine.eval_range(*store, "m", 0, 99 * 1000, 1000);
  EXPECT_EQ(engine.cache_stats().hits, 2u);
}

TEST(TsdbConcurrency, CacheCapacityEvictsLru) {
  auto store = std::make_shared<TimeSeriesStore>();
  auto labels = metrics::Labels{{"uuid", "1"}}.with_name("m");
  for (int i = 0; i < 10; ++i) store->append(labels, i * 1000, i);

  tsdb::promql::EngineOptions options;
  options.query_cache_capacity = 2;
  tsdb::promql::Engine engine(options);
  engine.eval_range(*store, "m", 0, 9000, 1000);
  engine.eval_range(*store, "m * 2", 0, 9000, 1000);
  engine.eval_range(*store, "m * 3", 0, 9000, 1000);  // evicts "m"
  auto stats = engine.cache_stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);
  engine.eval_range(*store, "m", 0, 9000, 1000);  // miss again
  EXPECT_EQ(engine.cache_stats().misses, 4u);
}

TEST(TsdbConcurrency, ConcurrentCachedQueriesDuringWrites) {
  auto store = std::make_shared<TimeSeriesStore>();
  for (int s = 0; s < 32; ++s) {
    auto labels = metrics::Labels{{"uuid", std::to_string(s)}}.with_name("m");
    for (int i = 0; i < 50; ++i) store->append(labels, i * 1000, i);
  }

  tsdb::promql::EngineOptions options;
  options.query_cache_capacity = 32;
  options.pool = std::make_shared<common::ThreadPool>(4, "eval");
  tsdb::promql::Engine engine(options);

  std::atomic<bool> done{false};
  std::thread writer([&] {
    auto labels = metrics::Labels{{"uuid", "w"}}.with_name("m");
    for (int i = 0; i < 500; ++i) store->append(labels, i * 1000, i);
    done.store(true, std::memory_order_release);
  });
  std::vector<std::thread> queriers;
  for (int q = 0; q < 4; ++q) {
    queriers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        auto matrix =
            engine.eval_range(*store, "sum(m)", 0, 49 * 1000, 1000);
        ASSERT_EQ(matrix.size(), 1u);
        // Sums over monotone counters must themselves be monotone.
        for (std::size_t i = 1; i < matrix[0].samples.size(); ++i) {
          ASSERT_LE(matrix[0].samples[i - 1].v, matrix[0].samples[i].v);
        }
      }
    });
  }
  writer.join();
  for (auto& querier : queriers) querier.join();
}

}  // namespace
