#include "soak/scenario.h"

#include <cmath>
#include <map>
#include <sstream>

#include "common/strutil.h"

namespace ceems::soak {
namespace {

using common::parse_double;
using common::parse_duration_ms;
using common::parse_int64;

// "192k" / "64M" / "1G" / plain bytes.
std::optional<std::size_t> parse_bytes(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::size_t multiplier = 1;
  char suffix = text.back();
  if (suffix == 'k' || suffix == 'K') {
    multiplier = 1u << 10;
  } else if (suffix == 'M') {
    multiplier = 1u << 20;
  } else if (suffix == 'G') {
    multiplier = 1u << 30;
  }
  if (multiplier != 1) text.remove_suffix(1);
  auto value = parse_int64(text);
  if (!value || *value < 0) return std::nullopt;
  return static_cast<std::size_t>(*value) * multiplier;
}

std::string format_bytes(std::size_t bytes) {
  if (bytes != 0 && bytes % (1u << 30) == 0)
    return std::to_string(bytes >> 30) + "G";
  if (bytes != 0 && bytes % (1u << 20) == 0)
    return std::to_string(bytes >> 20) + "M";
  if (bytes != 0 && bytes % (1u << 10) == 0)
    return std::to_string(bytes >> 10) + "k";
  return std::to_string(bytes);
}

// Storm windows are written "from 10m for 5m"; extra key/value pairs
// follow. Consumes tokens[i...]; returns false on syntax errors.
bool parse_window(const std::vector<std::string>& tokens, std::size_t* i,
                  StormWindow* window, std::string* error) {
  if (*i + 3 >= tokens.size() || tokens[*i] != "from" ||
      tokens[*i + 2] != "for") {
    *error = "expected 'from <start> for <length>'";
    return false;
  }
  auto start = parse_duration_ms(tokens[*i + 1]);
  auto length = parse_duration_ms(tokens[*i + 3]);
  if (!start || !length || *length <= 0) {
    *error = "bad storm window durations";
    return false;
  }
  window->start_ms = *start;
  window->end_ms = *start + *length;
  *i += 4;
  return true;
}

// Remaining tokens as key/value pairs ("series 5000 churn 4").
std::optional<std::map<std::string, std::string>> parse_kv(
    const std::vector<std::string>& tokens, std::size_t i,
    std::string* error) {
  std::map<std::string, std::string> kv;
  for (; i < tokens.size(); i += 2) {
    if (i + 1 >= tokens.size()) {
      *error = "dangling key '" + tokens[i] + "'";
      return std::nullopt;
    }
    kv[tokens[i]] = tokens[i + 1];
  }
  return kv;
}

}  // namespace

double Scenario::effective_jobs_per_day() const {
  if (jobs_per_day > 0) return jobs_per_day;
  // MiniStack runs ~6 nodes at 4000 jobs/day; ~700/day/node keeps the
  // same churn density at any fleet size.
  return 700.0 * nodes;
}

int64_t Scenario::last_storm_end_ms() const {
  int64_t end = 0;
  if (cardinality) end = std::max(end, cardinality->window.end_ms);
  if (flap) end = std::max(end, flap->window.end_ms);
  if (churn) end = std::max(end, churn->window.end_ms);
  if (outage) end = std::max(end, outage->window.end_ms);
  if (lb) end = std::max(end, lb->window.end_ms);
  if (crash_restart) end = std::max(end, crash_restart->window.end_ms);
  return end;
}

std::optional<Scenario> parse_scenario_text(const std::string& text,
                                            std::string* error) {
  Scenario scenario;
  std::string local_error;
  if (!error) error = &local_error;
  int line_no = 0;
  std::istringstream in(text);
  std::string line;
  auto fail = [&](const std::string& what) {
    *error = "line " + std::to_string(line_no) + ": " + what;
    return std::nullopt;
  };
  while (std::getline(in, line)) {
    ++line_no;
    auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::vector<std::string> tokens = common::split_fields(line);
    if (tokens.empty()) continue;
    const std::string& key = tokens[0];

    auto want = [&](std::size_t n) { return tokens.size() == n + 1; };
    if (key == "scenario" && want(1)) {
      scenario.name = tokens[1];
    } else if (key == "nodes" && want(1)) {
      auto v = parse_int64(tokens[1]);
      if (!v || *v <= 0) return fail("bad node count");
      scenario.nodes = static_cast<int>(*v);
    } else if (key == "seed" && want(1)) {
      auto v = parse_int64(tokens[1]);
      if (!v || *v < 0) return fail("bad seed");
      scenario.seed = static_cast<uint64_t>(*v);
    } else if (key == "jobs_per_day" && want(1)) {
      auto v = parse_double(tokens[1]);
      if (!v || *v < 0) return fail("bad jobs_per_day");
      scenario.jobs_per_day = *v;
    } else if ((key == "duration" || key == "step" || key == "scrape_interval" ||
                key == "checkpoint_every" || key == "hot_retention" ||
                key == "recovery") &&
               want(1)) {
      auto v = parse_duration_ms(tokens[1]);
      if (!v || *v < 0) return fail("bad duration '" + tokens[1] + "'");
      if (key == "duration") scenario.duration_ms = *v;
      else if (key == "step") scenario.step_ms = *v;
      else if (key == "scrape_interval") scenario.scrape_interval_ms = *v;
      else if (key == "checkpoint_every") scenario.checkpoint_every_ms = *v;
      else if (key == "hot_retention") scenario.hot_retention_ms = *v;
      else scenario.recovery_ms = *v;
    } else if (key == "budget" && tokens.size() == 3) {
      const std::string& which = tokens[1];
      if (which == "bytes_fixed" || which == "bytes_per_node") {
        auto v = parse_bytes(tokens[2]);
        if (!v) return fail("bad byte budget '" + tokens[2] + "'");
        (which == "bytes_fixed" ? scenario.budgets.bytes_fixed
                                : scenario.budgets.bytes_per_node) = *v;
      } else if (which == "ingest_lag") {
        auto v = parse_duration_ms(tokens[2]);
        if (!v) return fail("bad ingest_lag");
        scenario.budgets.ingest_lag_ms = *v;
      } else if (which == "query_points_p99") {
        auto v = parse_int64(tokens[2]);
        if (!v || *v <= 0) return fail("bad query_points_p99");
        scenario.budgets.query_points_p99 = static_cast<uint64_t>(*v);
      } else {
        return fail("unknown budget '" + which + "'");
      }
    } else if (key == "storm" || key == "outage") {
      if (tokens.size() < 2) return fail("storm needs a kind");
      const std::string& kind = tokens[1];
      StormWindow window;
      std::size_t i = 2;
      std::string window_error;
      if (!parse_window(tokens, &i, &window, &window_error))
        return fail(window_error);
      auto kv = parse_kv(tokens, i, &window_error);
      if (!kv) return fail(window_error);
      if (kind == "cardinality") {
        CardinalityStorm storm;
        storm.window = window;
        if (auto it = kv->find("series"); it != kv->end())
          storm.series = static_cast<int>(parse_int64(it->second).value_or(0));
        if (auto it = kv->find("churn"); it != kv->end())
          storm.churn_sweeps =
              static_cast<int>(parse_int64(it->second).value_or(0));
        if (storm.series <= 0 || storm.churn_sweeps <= 0)
          return fail("cardinality storm needs series > 0 and churn > 0");
        scenario.cardinality = storm;
      } else if (kind == "flap") {
        FlapStorm storm;
        storm.window = window;
        if (auto it = kv->find("fraction"); it != kv->end())
          storm.fraction = parse_double(it->second).value_or(-1);
        if (storm.fraction < 0 || storm.fraction > 1)
          return fail("flap fraction must be in [0,1]");
        scenario.flap = storm;
      } else if (kind == "churn") {
        ChurnStorm storm;
        storm.window = window;
        if (auto it = kv->find("factor"); it != kv->end())
          storm.factor = parse_double(it->second).value_or(0);
        if (storm.factor <= 0) return fail("churn factor must be > 0");
        scenario.churn = storm;
      } else if (kind == "emissions") {
        EmissionsOutage outage;
        outage.window = window;
        scenario.outage = outage;
      } else if (kind == "lb") {
        LbStorm storm;
        storm.window = window;
        if (auto it = kv->find("fraction"); it != kv->end())
          storm.flap_fraction = parse_double(it->second).value_or(-1);
        if (storm.flap_fraction < 0 || storm.flap_fraction > 1)
          return fail("lb fraction must be in [0,1]");
        scenario.lb = storm;
      } else if (kind == "crash_restart") {
        CrashRestartStorm storm;
        storm.window = window;
        if (auto it = kv->find("every"); it != kv->end())
          storm.every_ms = parse_duration_ms(it->second).value_or(0);
        if (storm.every_ms <= 0)
          return fail("crash_restart needs every > 0");
        scenario.crash_restart = storm;
      } else {
        return fail("unknown storm kind '" + kind + "'");
      }
    } else {
      return fail("unknown directive '" + key + "'");
    }
  }
  if (scenario.duration_ms <= 0 || scenario.step_ms <= 0)
    return fail("duration and step must be positive");
  if (scenario.last_storm_end_ms() > scenario.duration_ms)
    return fail("a storm window extends past the scenario duration");
  return scenario;
}

std::string to_text(const Scenario& s) {
  std::ostringstream out;
  auto window = [](const StormWindow& w) {
    return "from " + common::format_duration_ms(w.start_ms) + " for " +
           common::format_duration_ms(w.end_ms - w.start_ms);
  };
  out << "scenario " << s.name << "\n";
  out << "nodes " << s.nodes << "\n";
  out << "duration " << common::format_duration_ms(s.duration_ms) << "\n";
  out << "step " << common::format_duration_ms(s.step_ms) << "\n";
  out << "scrape_interval " << common::format_duration_ms(s.scrape_interval_ms)
      << "\n";
  if (s.jobs_per_day > 0) out << "jobs_per_day " << s.jobs_per_day << "\n";
  out << "seed " << s.seed << "\n";
  out << "checkpoint_every "
      << common::format_duration_ms(s.checkpoint_every_ms) << "\n";
  out << "hot_retention " << common::format_duration_ms(s.hot_retention_ms)
      << "\n";
  out << "recovery " << common::format_duration_ms(s.recovery_ms) << "\n";
  out << "budget bytes_fixed " << format_bytes(s.budgets.bytes_fixed) << "\n";
  out << "budget bytes_per_node " << format_bytes(s.budgets.bytes_per_node)
      << "\n";
  if (s.budgets.ingest_lag_ms > 0)
    out << "budget ingest_lag "
        << common::format_duration_ms(s.budgets.ingest_lag_ms) << "\n";
  out << "budget query_points_p99 " << s.budgets.query_points_p99 << "\n";
  if (s.flap)
    out << "storm flap " << window(s.flap->window) << " fraction "
        << s.flap->fraction << "\n";
  if (s.cardinality)
    out << "storm cardinality " << window(s.cardinality->window) << " series "
        << s.cardinality->series << " churn " << s.cardinality->churn_sweeps
        << "\n";
  if (s.churn)
    out << "storm churn " << window(s.churn->window) << " factor "
        << s.churn->factor << "\n";
  if (s.outage) out << "outage emissions " << window(s.outage->window) << "\n";
  if (s.lb)
    out << "storm lb " << window(s.lb->window) << " fraction "
        << s.lb->flap_fraction << "\n";
  if (s.crash_restart)
    out << "storm crash_restart " << window(s.crash_restart->window)
        << " every " << common::format_duration_ms(s.crash_restart->every_ms)
        << "\n";
  return out.str();
}

namespace {

// Builtin scenarios. Timings are written against the scenario's own
// duration, so overriding --nodes/--seed from the CLI never invalidates
// the windows.
const struct {
  const char* name;
  const char* text;
} kBuiltins[] = {
    {"smoke",
     // The CI trend-gate scenario: every storm kind packed into 12
     // simulated minutes at 100 nodes, plus a 3-minute recovery tail.
     // Counters recorded from this scenario (BENCH_soak.json) are gated
     // by tools/bench_guard.py.
     "scenario smoke\n"
     "nodes 100\n"
     "duration 12m\n"
     "scrape_interval 30s\n"
     "checkpoint_every 2m\n"
     "hot_retention 10m\n"
     "recovery 3m\n"
     "budget query_points_p99 120000\n"
     "storm flap from 2m for 6m fraction 0.2\n"
     "storm cardinality from 3m for 4m series 1500 churn 3\n"
     "storm churn from 4m for 4m factor 4\n"
     "outage emissions from 5m for 4m\n"
     "storm lb from 6m for 3m\n"},
    {"churn",
     "scenario churn\n"
     "nodes 1000\n"
     "duration 30m\n"
     "checkpoint_every 5m\n"
     "hot_retention 25m\n"
     "recovery 5m\n"
     "budget bytes_per_node 384k\n"
     "storm churn from 5m for 15m factor 6\n"},
    {"cardinality",
     "scenario cardinality\n"
     "nodes 1000\n"
     "duration 30m\n"
     "checkpoint_every 5m\n"
     "hot_retention 25m\n"
     "recovery 5m\n"
     "budget bytes_per_node 384k\n"
     "storm cardinality from 5m for 15m series 5000 churn 4\n"},
    {"outage",
     "scenario outage\n"
     "nodes 1000\n"
     "duration 30m\n"
     "checkpoint_every 5m\n"
     "hot_retention 25m\n"
     "recovery 5m\n"
     "budget bytes_per_node 384k\n"
     "storm flap from 4m for 16m fraction 0.25\n"
     "outage emissions from 8m for 12m\n"
     "storm lb from 10m for 8m\n"},
    {"crash",
     // Durability scenario: the hot TSDB loses power every few minutes —
     // including during a flap storm and a churn burst — and is WAL-
     // recovered in place. Lossless recovery is asserted at every crash
     // (series/sample counts and canonical queries identical), on top of
     // the usual budget/recovery invariants.
     "scenario crash\n"
     "nodes 200\n"
     "duration 24m\n"
     "scrape_interval 30s\n"
     "checkpoint_every 4m\n"
     "hot_retention 20m\n"
     "recovery 4m\n"
     "storm flap from 4m for 10m fraction 0.2\n"
     "storm churn from 6m for 10m factor 3\n"
     "storm crash_restart from 3m for 18m every 4m\n"},
    {"full",
     // The acceptance scenario: churn + cardinality storm + provider
     // outage + flapping + LB brown-out on one thousand-node fleet. The
     // byte budget is ~30% above the measured steady-state peak (~310 MB
     // at 1000 nodes): tight enough to catch a broken retention purge or
     // a cardinality leak, loose enough not to gate on allocator noise.
     "scenario full\n"
     "nodes 1000\n"
     "duration 35m\n"
     "scrape_interval 30s\n"
     "checkpoint_every 5m\n"
     "hot_retention 25m\n"
     "recovery 5m\n"
     "budget bytes_per_node 384k\n"
     "storm flap from 4m for 18m fraction 0.2\n"
     "storm cardinality from 8m for 10m series 5000 churn 4\n"
     "storm churn from 10m for 10m factor 4\n"
     "outage emissions from 12m for 10m\n"
     "storm lb from 16m for 8m\n"},
};

}  // namespace

std::vector<std::string> builtin_scenario_names() {
  std::vector<std::string> names;
  for (const auto& builtin : kBuiltins) names.push_back(builtin.name);
  return names;
}

std::string builtin_scenario_text(const std::string& name) {
  for (const auto& builtin : kBuiltins) {
    if (name == builtin.name) return builtin.text;
  }
  return "";
}

}  // namespace ceems::soak
