#include "tsdb/promql_eval.h"

#include <algorithm>
#include <cmath>
#include <ctime>
#include <map>
#include <regex>
#include <unordered_map>
#include <unordered_set>

#include "metrics/regex_cache.h"

namespace ceems::tsdb::promql {

namespace {

using metrics::kMetricNameLabel;

// ---------- selector evaluation ----------

std::vector<metrics::LabelMatcher> full_matchers(const Expr& expr) {
  std::vector<metrics::LabelMatcher> matchers = expr.matchers;
  if (!expr.metric_name.empty()) {
    matchers.push_back({std::string(kMetricNameLabel),
                        metrics::LabelMatcher::Op::kEq, expr.metric_name});
  }
  return matchers;
}

InstantVector eval_vector_selector(const Queryable& source, const Expr& expr,
                                   TimestampMs t, int64_t lookback_ms) {
  TimestampMs at = t - expr.offset_ms;
  auto views = source.select(full_matchers(expr), at - lookback_ms, at);
  InstantVector out;
  out.reserve(views.size());
  for (const auto& view : views) {
    // last() decodes at most one chunk; an instant selector never pays for
    // materialising the whole lookback window. A staleness marker as the
    // newest sample means the series ended: it drops out of the vector
    // now, not when the lookback window drains.
    if (auto last = view.last()) {
      if (metrics::is_stale_marker(last->v)) continue;
      out.push_back({view.labels, last->v});
    }
  }
  return out;
}

std::vector<Series> eval_matrix_selector(const Queryable& source,
                                         const Expr& expr, TimestampMs t) {
  TimestampMs at = t - expr.offset_ms;
  // Range selectors are left-open: (t-range, t]. Range functions walk the
  // full window, so views materialise here — the API boundary. Staleness
  // markers are boundaries, not observations: they are filtered out so
  // rate()/avg_over_time() never fold a marker NaN into a window.
  auto views = source.select(full_matchers(expr), at - expr.range_ms + 1, at);
  std::vector<Series> out;
  out.reserve(views.size());
  for (const auto& view : views) {
    Series series = view.materialize();
    series.samples.erase(
        std::remove_if(series.samples.begin(), series.samples.end(),
                       [](const SamplePoint& sample) {
                         return metrics::is_stale_marker(sample.v);
                       }),
        series.samples.end());
    if (!series.samples.empty()) out.push_back(std::move(series));
  }
  return out;
}

// ---------- range-vector functions ----------

double counter_increase(const SamplePoint* samples, std::size_t count) {
  // Sum of positive deltas; a drop is a counter reset (new epoch adds from
  // zero), matching Prometheus' reset handling.
  double total = 0;
  for (std::size_t i = 1; i < count; ++i) {
    double delta = samples[i].v - samples[i - 1].v;
    total += delta >= 0 ? delta : samples[i].v;
  }
  return total;
}

// func: name of the *_over_time / rate family function. Takes a pointer
// range so the streaming evaluator can fold a window of a prepared series
// in place, without copying it out first.
bool eval_range_function(const std::string& func, const SamplePoint* samples,
                         std::size_t count, double& result) {
  if (count == 0) return false;
  if (func == "last_over_time") {
    result = samples[count - 1].v;
    return true;
  }
  if (func == "count_over_time") {
    result = static_cast<double>(count);
    return true;
  }
  if (func == "sum_over_time" || func == "avg_over_time") {
    double sum = 0;
    for (std::size_t i = 0; i < count; ++i) sum += samples[i].v;
    result = func[0] == 's' ? sum : sum / static_cast<double>(count);
    return true;
  }
  if (func == "min_over_time" || func == "max_over_time") {
    double best = samples[0].v;
    for (std::size_t i = 0; i < count; ++i) {
      best = func[1] == 'i' ? std::min(best, samples[i].v)
                            : std::max(best, samples[i].v);
    }
    result = best;
    return true;
  }
  if (func == "stddev_over_time") {
    double mean = 0;
    for (std::size_t i = 0; i < count; ++i) mean += samples[i].v;
    mean /= static_cast<double>(count);
    double var = 0;
    for (std::size_t i = 0; i < count; ++i) {
      var += (samples[i].v - mean) * (samples[i].v - mean);
    }
    result = std::sqrt(var / static_cast<double>(count));
    return true;
  }
  // Functions below need at least two samples.
  if (count < 2) return false;
  double span_sec =
      static_cast<double>(samples[count - 1].t - samples[0].t) / 1000.0;
  if (func == "rate") {
    if (span_sec <= 0) return false;
    result = counter_increase(samples, count) / span_sec;
    return true;
  }
  if (func == "increase") {
    result = counter_increase(samples, count);
    return true;
  }
  if (func == "delta") {
    result = samples[count - 1].v - samples[0].v;
    return true;
  }
  if (func == "deriv") {
    if (span_sec <= 0) return false;
    // Least-squares slope/intercept over the window, like Prometheus.
    double n = static_cast<double>(count);
    double sum_t = 0, sum_v = 0, sum_tv = 0, sum_tt = 0;
    double t0 = static_cast<double>(samples[0].t) / 1000.0;
    for (std::size_t i = 0; i < count; ++i) {
      double t = static_cast<double>(samples[i].t) / 1000.0 - t0;
      sum_t += t;
      sum_v += samples[i].v;
      sum_tv += t * samples[i].v;
      sum_tt += t * t;
    }
    double denom = n * sum_tt - sum_t * sum_t;
    if (denom == 0) return false;
    result = (n * sum_tv - sum_t * sum_v) / denom;  // slope for deriv
    return true;
  }
  if (func == "irate" || func == "idelta") {
    const SamplePoint& a = samples[count - 2];
    const SamplePoint& b = samples[count - 1];
    double dt_sec = static_cast<double>(b.t - a.t) / 1000.0;
    if (func == "idelta") {
      result = b.v - a.v;
      return true;
    }
    if (dt_sec <= 0) return false;
    double delta = b.v - a.v;
    if (delta < 0) delta = b.v;  // reset
    result = delta / dt_sec;
    return true;
  }
  if (func == "resets") {
    int resets = 0;
    for (std::size_t i = 1; i < count; ++i) {
      if (samples[i].v < samples[i - 1].v) ++resets;
    }
    result = resets;
    return true;
  }
  if (func == "changes") {
    int changes = 0;
    for (std::size_t i = 1; i < count; ++i) {
      if (samples[i].v != samples[i - 1].v) ++changes;
    }
    result = changes;
    return true;
  }
  return false;
}

bool is_range_function(const std::string& func) {
  static const std::vector<std::string> kFuncs = {
      "rate",          "irate",          "increase",       "delta",
      "idelta",        "deriv",          "resets",         "changes",
      "avg_over_time", "sum_over_time",  "min_over_time",  "max_over_time",
      "count_over_time", "last_over_time", "stddev_over_time"};
  return std::find(kFuncs.begin(), kFuncs.end(), func) != kFuncs.end();
}

// ---------- resolution-aware planning ----------
//
// The window functions the aggregate-bucket columns can answer *exactly*
// when the window tiles whole buckets: count/min/max reproduce the raw
// fold bit for bit unconditionally, sum/avg/rate/increase reproduce it
// under exact arithmetic (partial sums regroup the same terms — see
// DESIGN.md §10 for the per-function argument). Everything else falls
// back to raw samples.
bool is_agg_plannable_function(const std::string& func) {
  return func == "sum_over_time" || func == "avg_over_time" ||
         func == "min_over_time" || func == "max_over_time" ||
         func == "count_over_time" || func == "rate" || func == "increase";
}

// Folds one window's worth of aggregate buckets — the bucket analogue of
// eval_range_function over raw samples. `buckets` are the (time-ordered)
// buckets whose end lies inside the window; count-0 rows (marker-only
// buckets) contribute nothing, exactly like the raw path where markers
// are filtered before the window fold.
bool eval_agg_window(const std::string& func, const AggBucket* buckets,
                     std::size_t n, double& result) {
  uint64_t total = 0;
  const AggBucket* first = nullptr;
  const AggBucket* last = nullptr;
  for (std::size_t i = 0; i < n; ++i) {
    if (buckets[i].count == 0) continue;
    total += buckets[i].count;
    if (!first) first = &buckets[i];
    last = &buckets[i];
  }
  if (total == 0) return false;
  if (func == "count_over_time") {
    result = static_cast<double>(total);
    return true;
  }
  if (func == "sum_over_time" || func == "avg_over_time") {
    double acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (buckets[i].count > 0) acc += buckets[i].sum;
    }
    result = func[0] == 's' ? acc : acc / static_cast<double>(total);
    return true;
  }
  if (func == "min_over_time" || func == "max_over_time") {
    // The raw fold sticks on a NaN first sample; the window's first sample
    // is the first nonempty bucket's first sample.
    if (std::isnan(first->first_v)) {
      result = first->first_v;
      return true;
    }
    bool is_min = func[1] == 'i';
    double best = 0;
    bool seen = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (buckets[i].count == 0) continue;
      double candidate = is_min ? buckets[i].min : buckets[i].max;
      if (std::isnan(candidate)) continue;  // bucket had no non-NaN sample
      if (!seen) {
        best = candidate;
        seen = true;
      } else if (is_min ? candidate < best : best < candidate) {
        best = candidate;
      }
    }
    // `first->first_v` is non-NaN, so its bucket min/max is too.
    result = best;
    return true;
  }
  if (func == "rate" || func == "increase") {
    if (total < 2) return false;
    // Within-bucket increases plus the reset-aware delta across each pair
    // of adjacent nonempty buckets — the same positive-delta terms the
    // raw counter_increase fold adds, regrouped.
    double acc = 0;
    const AggBucket* prev = nullptr;
    for (std::size_t i = 0; i < n; ++i) {
      if (buckets[i].count == 0) continue;
      if (prev) {
        double delta = buckets[i].first_v - prev->last_v;
        acc += delta >= 0 ? delta : buckets[i].first_v;
      }
      acc += buckets[i].inc;
      prev = &buckets[i];
    }
    if (func == "increase") {
      result = acc;
      return true;
    }
    double span_sec = static_cast<double>(last->last_t - first->first_t) / 1000.0;
    if (span_sec <= 0) return false;
    result = acc / span_sec;
    return true;
  }
  return false;
}

// ---------- binary operators ----------

bool is_comparison(const std::string& op) {
  return op == "==" || op == "!=" || op == "<" || op == ">" || op == "<=" ||
         op == ">=";
}

bool is_set_op(const std::string& op) {
  return op == "and" || op == "or" || op == "unless";
}

double scalar_binop(const std::string& op, double lhs, double rhs) {
  if (op == "+") return lhs + rhs;
  if (op == "-") return lhs - rhs;
  if (op == "*") return lhs * rhs;
  if (op == "/") return rhs == 0 ? (lhs == 0 ? std::nan("") : (lhs > 0 ? INFINITY : -INFINITY)) : lhs / rhs;
  if (op == "%") return std::fmod(lhs, rhs);
  if (op == "^") return std::pow(lhs, rhs);
  if (op == "==") return lhs == rhs ? 1 : 0;
  if (op == "!=") return lhs != rhs ? 1 : 0;
  if (op == "<") return lhs < rhs ? 1 : 0;
  if (op == ">") return lhs > rhs ? 1 : 0;
  if (op == "<=") return lhs <= rhs ? 1 : 0;
  if (op == ">=") return lhs >= rhs ? 1 : 0;
  throw EvalError("unknown operator " + op);
}

// Signature labels used to pair series across a binary op.
Labels match_signature(const Labels& labels, const VectorMatching& matching) {
  if (matching.is_on) return labels.keep_only(matching.labels);
  std::vector<std::string> drop = matching.labels;
  drop.push_back(std::string(kMetricNameLabel));
  return labels.drop(drop);
}

InstantVector vector_scalar_op(const std::string& op, bool bool_modifier,
                               const InstantVector& vector, double scalar,
                               bool scalar_on_left) {
  InstantVector out;
  for (const auto& sample : vector) {
    double lhs = scalar_on_left ? scalar : sample.value;
    double rhs = scalar_on_left ? sample.value : scalar;
    double value = scalar_binop(op, lhs, rhs);
    if (is_comparison(op) && !bool_modifier) {
      if (value == 0) continue;  // filter semantics
      out.push_back({sample.labels, sample.value});
    } else {
      Labels labels = is_comparison(op) && bool_modifier
                          ? sample.labels.without_name()
                          : sample.labels.without_name();
      out.push_back({labels, value});
    }
  }
  return out;
}

InstantVector vector_vector_op(const Expr& expr, const InstantVector& lhs,
                               const InstantVector& rhs) {
  const VectorMatching& matching = expr.matching;
  InstantVector out;

  if (is_set_op(expr.op)) {
    std::unordered_map<uint64_t, const VectorSample*> rhs_by_sig;
    for (const auto& sample : rhs) {
      rhs_by_sig[match_signature(sample.labels, matching).fingerprint()] =
          &sample;
    }
    if (expr.op == "and") {
      for (const auto& sample : lhs) {
        if (rhs_by_sig.count(
                match_signature(sample.labels, matching).fingerprint()))
          out.push_back(sample);
      }
    } else if (expr.op == "unless") {
      for (const auto& sample : lhs) {
        if (!rhs_by_sig.count(
                match_signature(sample.labels, matching).fingerprint()))
          out.push_back(sample);
      }
    } else {  // or
      std::unordered_map<uint64_t, bool> lhs_sigs;
      for (const auto& sample : lhs) {
        lhs_sigs[match_signature(sample.labels, matching).fingerprint()] = true;
        out.push_back(sample);
      }
      for (const auto& sample : rhs) {
        if (!lhs_sigs.count(
                match_signature(sample.labels, matching).fingerprint()))
          out.push_back(sample);
      }
    }
    return out;
  }

  // Arithmetic/comparison. group_right swaps roles so we only implement
  // many-to-one with "many" on the left.
  const InstantVector& many =
      matching.group == VectorMatching::Group::kRight ? rhs : lhs;
  const InstantVector& one =
      matching.group == VectorMatching::Group::kRight ? lhs : rhs;
  bool swapped = matching.group == VectorMatching::Group::kRight;
  bool grouped = matching.group != VectorMatching::Group::kNone;

  std::unordered_map<uint64_t, const VectorSample*> one_by_sig;
  for (const auto& sample : one) {
    uint64_t sig = match_signature(sample.labels, matching).fingerprint();
    if (one_by_sig.count(sig))
      throw EvalError("many-to-many matching in binary expression: " +
                      expr.to_string());
    one_by_sig[sig] = &sample;
  }

  std::unordered_map<uint64_t, int> result_seen;
  for (const auto& sample : many) {
    Labels signature = match_signature(sample.labels, matching);
    auto it = one_by_sig.find(signature.fingerprint());
    if (it == one_by_sig.end()) continue;
    double lhs_value = swapped ? it->second->value : sample.value;
    double rhs_value = swapped ? sample.value : it->second->value;
    double value = scalar_binop(expr.op, lhs_value, rhs_value);

    Labels result_labels;
    if (is_comparison(expr.op) && !expr.bool_modifier) {
      if (value == 0) continue;
      result_labels = sample.labels;  // filter keeps original labels
      value = sample.value;
    } else if (grouped) {
      result_labels = sample.labels.without_name();
      for (const auto& include : matching.include) {
        if (auto v = it->second->labels.get(include))
          result_labels = result_labels.with(include, *v);
      }
    } else {
      result_labels = signature;
    }
    // One-to-one: each signature may only be produced once.
    if (!grouped) {
      if (result_seen[signature.fingerprint()]++)
        throw EvalError("multiple matches for one-to-one vector match: " +
                        expr.to_string());
    }
    out.push_back({std::move(result_labels), value});
  }
  return out;
}

// ---------- aggregations ----------

InstantVector eval_aggregate(const Expr& expr, const InstantVector& input,
                             double param) {
  struct Group {
    Labels labels;
    std::vector<double> values;
    std::vector<const VectorSample*> samples;
  };
  std::map<uint64_t, Group> groups;
  for (const auto& sample : input) {
    Labels group_labels;
    if (expr.agg_grouped) {
      group_labels = expr.agg_by
                         ? sample.labels.keep_only(expr.grouping)
                         : sample.labels.drop(expr.grouping).without_name();
    }  // else: aggregate everything into a single empty-label group
    uint64_t key = group_labels.fingerprint();
    Group& group = groups[key];
    group.labels = std::move(group_labels);
    group.values.push_back(sample.value);
    group.samples.push_back(&sample);
  }

  InstantVector out;
  for (auto& [key, group] : groups) {
    const std::string& op = expr.agg_op;
    if (op == "topk" || op == "bottomk") {
      int k = std::max(0, static_cast<int>(param));
      std::vector<std::size_t> order(group.values.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return op == "topk" ? group.values[a] > group.values[b]
                            : group.values[a] < group.values[b];
      });
      for (int i = 0; i < k && i < static_cast<int>(order.size()); ++i) {
        out.push_back(*group.samples[order[static_cast<std::size_t>(i)]]);
      }
      continue;
    }
    double result = 0;
    if (op == "sum") {
      for (double v : group.values) result += v;
    } else if (op == "avg") {
      for (double v : group.values) result += v;
      result /= static_cast<double>(group.values.size());
    } else if (op == "min") {
      result = *std::min_element(group.values.begin(), group.values.end());
    } else if (op == "max") {
      result = *std::max_element(group.values.begin(), group.values.end());
    } else if (op == "count") {
      result = static_cast<double>(group.values.size());
    } else if (op == "group") {
      result = 1;
    } else if (op == "stddev") {
      double mean = 0;
      for (double v : group.values) mean += v;
      mean /= static_cast<double>(group.values.size());
      double var = 0;
      for (double v : group.values) var += (v - mean) * (v - mean);
      result = std::sqrt(var / static_cast<double>(group.values.size()));
    } else if (op == "quantile") {
      std::vector<double> sorted = group.values;
      std::sort(sorted.begin(), sorted.end());
      double q = std::clamp(param, 0.0, 1.0);
      double rank = q * static_cast<double>(sorted.size() - 1);
      std::size_t lo = static_cast<std::size_t>(std::floor(rank));
      std::size_t hi = std::min(sorted.size() - 1, lo + 1);
      result = sorted[lo] + (rank - std::floor(rank)) * (sorted[hi] - sorted[lo]);
    } else {
      throw EvalError("unknown aggregator " + op);
    }
    out.push_back({group.labels, result});
  }
  return out;
}

// ---------- evaluator core ----------

// Per-instant recursive evaluator. The selector entry points are virtual:
// RangeEvaluator overrides them to read from pre-selected, pre-decoded
// per-series arrays instead of hitting the Queryable per step, leaving
// every other semantic (binops, aggregations, functions) shared — which is
// what makes the two paths bit-identical by construction.
class Evaluator {
 public:
  // resolution_aware enables the aggregate-ladder fast path for covered
  // range-function calls (instant queries). The per-step range oracle
  // constructs its evaluators with it off, so oracle results always come
  // from raw samples.
  Evaluator(const Queryable& source, TimestampMs t, int64_t lookback_ms,
            bool resolution_aware = false)
      : source_(source),
        t_(t),
        lookback_ms_(lookback_ms),
        resolution_aware_(resolution_aware) {}
  virtual ~Evaluator() = default;

  // Moves the evaluation instant; streaming cursors require calls with
  // non-decreasing t on any one evaluator instance.
  void set_time(TimestampMs t) { t_ = t; }

  Value eval(const ExprPtr& expr) {
    switch (expr->kind) {
      case Expr::Kind::kNumber: {
        Value value;
        value.kind = Value::Kind::kScalar;
        value.scalar = expr->number;
        return value;
      }
      case Expr::Kind::kString: {
        Value value;
        value.kind = Value::Kind::kString;
        value.string_value = expr->string_value;
        return value;
      }
      case Expr::Kind::kVectorSelector: {
        Value value;
        value.kind = Value::Kind::kVector;
        value.vector = vector_selector(*expr);
        return value;
      }
      case Expr::Kind::kMatrixSelector: {
        Value value;
        value.kind = Value::Kind::kMatrix;
        value.matrix = matrix_selector(*expr);
        return value;
      }
      case Expr::Kind::kUnary: {
        Value inner = eval(expr->lhs);
        double sign = expr->op == "-" ? -1.0 : 1.0;
        if (inner.kind == Value::Kind::kScalar) {
          inner.scalar *= sign;
        } else if (inner.kind == Value::Kind::kVector) {
          for (auto& sample : inner.vector) {
            sample.value *= sign;
            sample.labels = sample.labels.without_name();
          }
        } else {
          throw EvalError("unary operator on non-numeric operand");
        }
        return inner;
      }
      case Expr::Kind::kBinary:
        return eval_binary(expr);
      case Expr::Kind::kAggregate:
        return eval_aggregate_expr(expr);
      case Expr::Kind::kCall:
        return eval_call(expr);
    }
    throw EvalError("unreachable expression kind");
  }

 protected:
  // Selector hooks, overridden by the streaming RangeEvaluator.
  virtual InstantVector vector_selector(const Expr& expr) {
    return eval_vector_selector(source_, expr, t_, lookback_ms_);
  }
  virtual std::vector<Series> matrix_selector(const Expr& expr) {
    return eval_matrix_selector(source_, expr, t_);
  }
  // Incremental fast path for a range function applied directly to a
  // matrix selector. Returns false to fall through to the generic
  // materialise-and-fold path. The base implementation serves covered,
  // bucket-aligned windows from the source's aggregate ladder (the
  // instant-query analogue of the streaming planner); RangeEvaluator
  // overrides it with prepared raw arrays and per-query aggregate plans.
  virtual bool range_call(const std::string& func, const Expr& call,
                          InstantVector& out) {
    if (!resolution_aware_ || !is_agg_plannable_function(func)) return false;
    const Expr& matrix = *call.args[0];
    if (matrix.range_ms <= 0) return false;
    std::vector<int64_t> resolutions = source_.agg_resolutions();
    TimestampMs at = t_ - matrix.offset_ms;
    for (auto it = resolutions.rbegin(); it != resolutions.rend(); ++it) {
      const int64_t res = *it;
      if (res <= 0 || matrix.range_ms % res != 0 || floor_mod(at, res) != 0) {
        continue;
      }
      // Window (at-range, at] tiles buckets ending in [at-range+res, at].
      auto views = source_.select_agg(res, full_matchers(matrix),
                                      at - matrix.range_ms + res, at);
      if (!views) continue;  // incomplete coverage: try a finer level
      out.reserve(views->size());
      for (const auto& view : *views) {
        double result = 0;
        if (eval_agg_window(func, view.buckets.data(), view.buckets.size(),
                            result)) {
          out.push_back({view.labels.without_name(), result});
        }
      }
      return true;
    }
    return false;
  }

  TimestampMs time() const { return t_; }
  int64_t lookback_ms() const { return lookback_ms_; }

 private:
  Value eval_binary(const ExprPtr& expr) {
    Value lhs = eval(expr->lhs);
    Value rhs = eval(expr->rhs);
    Value out;
    if (lhs.kind == Value::Kind::kScalar && rhs.kind == Value::Kind::kScalar) {
      out.kind = Value::Kind::kScalar;
      out.scalar = scalar_binop(expr->op, lhs.scalar, rhs.scalar);
      return out;
    }
    out.kind = Value::Kind::kVector;
    if (lhs.kind == Value::Kind::kVector && rhs.kind == Value::Kind::kScalar) {
      out.vector = vector_scalar_op(expr->op, expr->bool_modifier, lhs.vector,
                                    rhs.scalar, /*scalar_on_left=*/false);
    } else if (lhs.kind == Value::Kind::kScalar &&
               rhs.kind == Value::Kind::kVector) {
      out.vector = vector_scalar_op(expr->op, expr->bool_modifier, rhs.vector,
                                    lhs.scalar, /*scalar_on_left=*/true);
    } else if (lhs.kind == Value::Kind::kVector &&
               rhs.kind == Value::Kind::kVector) {
      out.vector = vector_vector_op(*expr, lhs.vector, rhs.vector);
    } else {
      throw EvalError("unsupported operand types for " + expr->op);
    }
    return out;
  }

  Value eval_aggregate_expr(const ExprPtr& expr) {
    Value input = eval(expr->agg_expr);
    if (input.kind != Value::Kind::kVector)
      throw EvalError("aggregation over non-vector");
    double param = 0;
    if (expr->agg_param) {
      Value p = eval(expr->agg_param);
      if (p.kind != Value::Kind::kScalar)
        throw EvalError("aggregation parameter must be scalar");
      param = p.scalar;
    }
    Value out;
    out.kind = Value::Kind::kVector;
    out.vector = eval_aggregate(*expr, input.vector, param);
    return out;
  }

  Value eval_call(const ExprPtr& expr) {
    const std::string& func = expr->func;
    Value out;

    if (is_range_function(func)) {
      if (expr->args.size() != 1)
        throw EvalError(func + " expects one range-vector argument");
      if (expr->args[0]->kind == Expr::Kind::kMatrixSelector) {
        InstantVector streamed;
        if (range_call(func, *expr, streamed)) {
          out.kind = Value::Kind::kVector;
          out.vector = std::move(streamed);
          return out;
        }
      }
      Value arg = eval(expr->args[0]);
      if (arg.kind != Value::Kind::kMatrix)
        throw EvalError(func + " expects a range vector (selector[duration])");
      out.kind = Value::Kind::kVector;
      for (const auto& series : arg.matrix) {
        double result = 0;
        if (eval_range_function(func, series.samples.data(),
                                series.samples.size(), result)) {
          out.vector.push_back({series.labels.without_name(), result});
        }
      }
      return out;
    }

    if (func == "time") {
      out.kind = Value::Kind::kScalar;
      out.scalar = static_cast<double>(t_) / 1000.0;
      return out;
    }
    if (func == "predict_linear") {
      // predict_linear(range_vector, t_seconds): least-squares projection
      // t_seconds past the evaluation time.
      if (expr->args.size() != 2)
        throw EvalError("predict_linear expects (range vector, scalar)");
      Value matrix = eval(expr->args[0]);
      if (matrix.kind != Value::Kind::kMatrix)
        throw EvalError("predict_linear expects a range vector");
      double ahead_sec = eval_arg_scalar(expr, 1).scalar;
      out.kind = Value::Kind::kVector;
      for (const auto& series : matrix.matrix) {
        if (series.samples.size() < 2) continue;
        double n = static_cast<double>(series.samples.size());
        double sum_t = 0, sum_v = 0, sum_tv = 0, sum_tt = 0;
        // Origin at the evaluation time so the intercept is "value now".
        for (const auto& sample : series.samples) {
          double t = static_cast<double>(sample.t - t_) / 1000.0;
          sum_t += t;
          sum_v += sample.v;
          sum_tv += t * sample.v;
          sum_tt += t * t;
        }
        double denom = n * sum_tt - sum_t * sum_t;
        if (denom == 0) continue;
        double slope = (n * sum_tv - sum_t * sum_v) / denom;
        double intercept = (sum_v - slope * sum_t) / n;
        out.vector.push_back({series.labels.without_name(),
                              intercept + slope * ahead_sec});
      }
      return out;
    }
    if (func == "sort" || func == "sort_desc") {
      Value arg = eval_arg_vector(expr, 0);
      out.kind = Value::Kind::kVector;
      out.vector = std::move(arg.vector);
      bool descending = func == "sort_desc";
      std::stable_sort(out.vector.begin(), out.vector.end(),
                       [descending](const VectorSample& a,
                                    const VectorSample& b) {
                         return descending ? a.value > b.value
                                           : a.value < b.value;
                       });
      return out;
    }
    if (func == "hour" || func == "day_of_week" || func == "day_of_month" ||
        func == "month") {
      // Calendar functions over UTC timestamps. With no argument they use
      // the evaluation time (as vector(time())).
      Value arg;
      if (expr->args.empty()) {
        arg.kind = Value::Kind::kVector;
        arg.vector.push_back({Labels{}, static_cast<double>(t_) / 1000.0});
      } else {
        arg = eval_arg_vector(expr, 0);
      }
      out.kind = Value::Kind::kVector;
      for (const auto& sample : arg.vector) {
        std::time_t seconds = static_cast<std::time_t>(sample.value);
        std::tm utc{};
        gmtime_r(&seconds, &utc);
        double value = 0;
        if (func == "hour") value = utc.tm_hour;
        else if (func == "day_of_week") value = utc.tm_wday;
        else if (func == "day_of_month") value = utc.tm_mday;
        else value = utc.tm_mon + 1;
        out.vector.push_back({sample.labels.without_name(), value});
      }
      return out;
    }
    if (func == "vector") {
      Value arg = eval_arg_scalar(expr, 0);
      out.kind = Value::Kind::kVector;
      out.vector.push_back({Labels{}, arg.scalar});
      return out;
    }
    if (func == "scalar") {
      Value arg = eval_arg_vector(expr, 0);
      out.kind = Value::Kind::kScalar;
      out.scalar = arg.vector.size() == 1 ? arg.vector[0].value
                                          : std::nan("");
      return out;
    }
    if (func == "absent") {
      Value arg = eval_arg_vector(expr, 0);
      out.kind = Value::Kind::kVector;
      if (arg.vector.empty()) out.vector.push_back({Labels{}, 1});
      return out;
    }
    if (func == "label_replace") {
      if (expr->args.size() != 5)
        throw EvalError("label_replace expects 5 arguments");
      Value arg = eval_arg_vector(expr, 0);
      std::string dst = eval_string(expr, 1);
      std::string replacement = eval_string(expr, 2);
      std::string src = eval_string(expr, 3);
      std::string pattern = eval_string(expr, 4);
      // Cached compile: label_replace re-evaluates at every range step.
      auto re = metrics::compiled_anchored_regex(pattern);
      out.kind = Value::Kind::kVector;
      for (auto sample : arg.vector) {
        std::string source_value(sample.labels.get(src).value_or(""));
        std::smatch match;
        if (std::regex_match(source_value, match, *re)) {
          std::string value = match.format(replacement);
          sample.labels = sample.labels.with(dst, value);
        }
        out.vector.push_back(std::move(sample));
      }
      return out;
    }
    if (func == "label_join") {
      if (expr->args.size() < 4)
        throw EvalError("label_join expects >= 4 arguments");
      Value arg = eval_arg_vector(expr, 0);
      std::string dst = eval_string(expr, 1);
      std::string sep = eval_string(expr, 2);
      out.kind = Value::Kind::kVector;
      for (auto sample : arg.vector) {
        std::string joined;
        for (std::size_t i = 3; i < expr->args.size(); ++i) {
          if (i > 3) joined += sep;
          joined += sample.labels.get(eval_string(expr, i)).value_or("");
        }
        sample.labels = sample.labels.with(dst, joined);
        out.vector.push_back(std::move(sample));
      }
      return out;
    }

    // Simple math on instant vectors.
    auto unary_math = [&](double (*fn)(double)) {
      Value arg = eval_arg_vector(expr, 0);
      out.kind = Value::Kind::kVector;
      for (const auto& sample : arg.vector) {
        out.vector.push_back({sample.labels.without_name(), fn(sample.value)});
      }
      return out;
    };
    if (func == "round") {
      // round(v) or round(v, to_nearest).
      Value arg = eval_arg_vector(expr, 0);
      double nearest =
          expr->args.size() > 1 ? eval_arg_scalar(expr, 1).scalar : 1.0;
      if (nearest == 0) throw EvalError("round: to_nearest must be nonzero");
      out.kind = Value::Kind::kVector;
      for (const auto& sample : arg.vector) {
        out.vector.push_back({sample.labels.without_name(),
                              std::round(sample.value / nearest) * nearest});
      }
      return out;
    }
    if (func == "abs") return unary_math(+[](double v) { return std::fabs(v); });
    if (func == "ceil") return unary_math(+[](double v) { return std::ceil(v); });
    if (func == "floor") return unary_math(+[](double v) { return std::floor(v); });
    if (func == "sqrt") return unary_math(+[](double v) { return std::sqrt(v); });
    if (func == "exp") return unary_math(+[](double v) { return std::exp(v); });
    if (func == "ln") return unary_math(+[](double v) { return std::log(v); });

    if (func == "clamp_min" || func == "clamp_max" || func == "clamp") {
      Value arg = eval_arg_vector(expr, 0);
      double lo = func == "clamp_max" ? -INFINITY
                                      : eval_arg_scalar(expr, 1).scalar;
      double hi = func == "clamp_min"
                      ? INFINITY
                      : eval_arg_scalar(expr, func == "clamp" ? 2 : 1).scalar;
      out.kind = Value::Kind::kVector;
      for (const auto& sample : arg.vector) {
        out.vector.push_back(
            {sample.labels.without_name(), std::clamp(sample.value, lo, hi)});
      }
      return out;
    }
    throw EvalError("unknown function " + func);
  }

  Value eval_arg_scalar(const ExprPtr& expr, std::size_t index) {
    if (index >= expr->args.size())
      throw EvalError(expr->func + ": missing argument");
    Value value = eval(expr->args[index]);
    if (value.kind != Value::Kind::kScalar)
      throw EvalError(expr->func + ": argument must be scalar");
    return value;
  }

  Value eval_arg_vector(const ExprPtr& expr, std::size_t index) {
    if (index >= expr->args.size())
      throw EvalError(expr->func + ": missing argument");
    Value value = eval(expr->args[index]);
    if (value.kind != Value::Kind::kVector)
      throw EvalError(expr->func + ": argument must be an instant vector");
    return value;
  }

  std::string eval_string(const ExprPtr& expr, std::size_t index) {
    if (index >= expr->args.size())
      throw EvalError(expr->func + ": missing argument");
    Value value = eval(expr->args[index]);
    if (value.kind != Value::Kind::kString)
      throw EvalError(expr->func + ": argument must be a string");
    return value.string_value;
  }

  const Queryable& source_;
  TimestampMs t_;
  int64_t lookback_ms_;
  bool resolution_aware_;
};

// ---------- streaming range evaluation ----------
//
// A range query evaluates the same expression at every step; the per-step
// path re-runs each selector's select() and re-decodes the same sealed
// chunks at every one of them — O(steps × window) decode work. The
// streaming path instead prepares each selector ONCE for the whole query:
// one full-span select(), every distinct chunk decoded at most once (via a
// per-query DecodedChunkCache shared across selectors), flattened into one
// time-ordered array per series. Evaluation then slides monotonic cursors
// over those arrays and computes window functions incrementally. Every
// arithmetic fold either extends a left-fold (bit-identical to folding
// from scratch) or refolds from the window start, so results match the
// per-step oracle bit for bit.

void collect_selectors(const ExprPtr& expr, std::vector<const Expr*>& out) {
  if (!expr) return;
  if (expr->kind == Expr::Kind::kVectorSelector ||
      expr->kind == Expr::Kind::kMatrixSelector) {
    out.push_back(expr.get());
  }
  collect_selectors(expr->lhs, out);
  collect_selectors(expr->rhs, out);
  collect_selectors(expr->agg_expr, out);
  collect_selectors(expr->agg_param, out);
  for (const auto& arg : expr->args) collect_selectors(arg, out);
}

// Calls of a plannable window function applied directly to a matrix
// selector — the only shape the aggregate ladder can serve. A matrix
// selector consumed any other way (bare, predict_linear, an uncovered
// function) always reads raw samples.
void collect_plannable_calls(const ExprPtr& expr,
                             std::vector<const Expr*>& out) {
  if (!expr) return;
  if (expr->kind == Expr::Kind::kCall && expr->args.size() == 1 &&
      expr->args[0]->kind == Expr::Kind::kMatrixSelector &&
      is_agg_plannable_function(expr->func)) {
    out.push_back(expr.get());
  }
  collect_plannable_calls(expr->lhs, out);
  collect_plannable_calls(expr->rhs, out);
  collect_plannable_calls(expr->agg_expr, out);
  collect_plannable_calls(expr->agg_param, out);
  for (const auto& arg : expr->args) collect_plannable_calls(arg, out);
}

struct PreparedSeries {
  Labels labels;
  // Full-span, time-ordered. Matrix selectors store the series with
  // staleness markers already filtered out (mirroring
  // eval_matrix_selector); vector selectors keep markers, because a marker
  // as the newest in-window sample is what drops the series at a step.
  std::vector<SamplePoint> samples;
};

struct PreparedSelector {
  const Expr* node = nullptr;
  // In select() order, i.e. sorted by labels — the order the per-step
  // selector emits series in.
  std::vector<PreparedSeries> series;
};

// A matrix selector the planner bound to an aggregate level for the whole
// query: every step's window folds bucket rows from these views instead
// of raw samples.
struct PreparedAggPlan {
  int64_t resolution_ms = 0;
  std::vector<AggSeriesView> series;  // sorted by labels, like select()
};

class RangeEvalContext {
 public:
  RangeEvalContext(const Queryable& source, const ExprPtr& root,
                   TimestampMs start, TimestampMs end, int64_t step_ms,
                   int64_t lookback_ms, common::ThreadPool* pool,
                   bool resolution_aware) {
    std::vector<const Expr*> nodes;
    collect_selectors(root, nodes);

    // Phase 0: resolution planning. For each covered call whose window
    // grid aligns to a level's bucket boundaries — (start-offset) on a
    // boundary, step and range whole multiples of the bucket width, so
    // every step's window tiles whole buckets — bind the coarsest level
    // that covers the query's full bucket span exactly. Anything
    // unaligned or uncovered keeps the raw path, bit-identical to the
    // planner-off evaluation.
    if (resolution_aware && step_ms > 0 && end >= start) {
      std::vector<const Expr*> calls;
      collect_plannable_calls(root, calls);
      std::vector<int64_t> resolutions =
          calls.empty() ? std::vector<int64_t>{} : source.agg_resolutions();
      TimestampMs last_step = start + ((end - start) / step_ms) * step_ms;
      for (const Expr* call : calls) {
        const Expr* matrix = call->args[0].get();
        if (matrix->range_ms <= 0 || agg_plans_.count(matrix)) continue;
        TimestampMs first_at = start - matrix->offset_ms;
        for (auto it = resolutions.rbegin(); it != resolutions.rend(); ++it) {
          const int64_t res = *it;
          if (res <= 0 || matrix->range_ms % res != 0 ||
              step_ms % res != 0 || floor_mod(first_at, res) != 0) {
            continue;
          }
          auto agg_views = source.select_agg(
              res, full_matchers(*matrix), first_at - matrix->range_ms + res,
              last_step - matrix->offset_ms);
          if (!agg_views) continue;  // incomplete coverage: try finer
          agg_plans_.emplace(matrix,
                             PreparedAggPlan{res, std::move(*agg_views)});
          break;
        }
      }
    }

    // Phase 1: one full-span select per selector node (skipped for nodes
    // the planner bound to a level — that is the points-scanned win). The
    // span is the union of every step's window, so each step's view of
    // the data is a sub-range of what we hold.
    std::vector<std::vector<SeriesView>> views(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const Expr* node = nodes[i];
      if (agg_plans_.count(node)) continue;
      TimestampMs hi = end - node->offset_ms;
      TimestampMs lo = node->kind == Expr::Kind::kMatrixSelector
                           ? start - node->offset_ms - node->range_ms + 1
                           : start - node->offset_ms - lookback_ms;
      views[i] = source.select(full_matchers(*node), lo, hi);
    }

    // Phase 2: decode each distinct chunk exactly once. With a pool the
    // decodes fan out across it (chunk order is fixed first, so the result
    // is deterministic either way).
    std::vector<ChunkPtr> unique;
    std::unordered_set<const GorillaChunk*> seen;
    for (const auto& selector_views : views) {
      for (const auto& view : selector_views) {
        for (const auto& slice : view.slices) {
          if (slice.chunk && seen.insert(slice.chunk.get()).second) {
            unique.push_back(slice.chunk);
          }
        }
      }
    }
    if (pool && pool->size() >= 2 && unique.size() > 1) {
      std::vector<std::vector<SamplePoint>> decoded(unique.size());
      std::vector<std::function<void()>> tasks;
      tasks.reserve(unique.size());
      for (std::size_t i = 0; i < unique.size(); ++i) {
        tasks.push_back([&unique, &decoded, i] {
          if (auto samples = unique[i]->decode())
            decoded[i] = std::move(*samples);
        });
      }
      pool->run_all(std::move(tasks));
      for (std::size_t i = 0; i < unique.size(); ++i) {
        cache_.adopt(unique[i], std::move(decoded[i]));
      }
    }

    // Phase 3: flatten each series into one contiguous array (serial;
    // chunks not pre-decoded above decode here, still once each).
    selectors_.reserve(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      PreparedSelector selector;
      selector.node = nodes[i];
      bool is_matrix = nodes[i]->kind == Expr::Kind::kMatrixSelector;
      selector.series.reserve(views[i].size());
      for (const auto& view : views[i]) {
        PreparedSeries prepared{view.labels, view.samples(cache_)};
        if (is_matrix) {
          prepared.samples.erase(
              std::remove_if(prepared.samples.begin(), prepared.samples.end(),
                             [](const SamplePoint& sample) {
                               return metrics::is_stale_marker(sample.v);
                             }),
              prepared.samples.end());
        }
        selector.series.push_back(std::move(prepared));
      }
      index_.emplace(nodes[i], selectors_.size());
      selectors_.push_back(std::move(selector));
    }
    cache_.clear();  // arrays hold the data now; drop the duplicate copy
  }

  const PreparedSelector& selector(const Expr* node) const {
    return selectors_[index_.at(node)];
  }

  // The aggregate plan bound to a matrix-selector node, or nullptr when
  // the node evaluates from raw samples.
  const PreparedAggPlan* agg_plan(const Expr* node) const {
    auto it = agg_plans_.find(node);
    return it == agg_plans_.end() ? nullptr : &it->second;
  }

 private:
  std::vector<PreparedSelector> selectors_;
  std::unordered_map<const Expr*, std::size_t> index_;
  std::unordered_map<const Expr*, PreparedAggPlan> agg_plans_;
  DecodedChunkCache cache_;
};

// Evaluates steps against a shared RangeEvalContext. Each instance keeps
// its own cursor state, so parallel step-chunks each run their own
// evaluator over the same immutable prepared arrays. Cursors only ever
// advance; every window is a pure function of (lo, hi) indices, so a
// cursor joining mid-range computes the same windows the serial sweep
// does.
class RangeEvaluator final : public Evaluator {
 public:
  RangeEvaluator(const Queryable& source, const RangeEvalContext& ctx,
                 TimestampMs t, int64_t lookback_ms)
      : Evaluator(source, t, lookback_ms), ctx_(ctx) {}

 protected:
  InstantVector vector_selector(const Expr& expr) override {
    const PreparedSelector& selector = ctx_.selector(&expr);
    auto& cursor = instant_cursors_[&expr];
    cursor.resize(selector.series.size(), 0);
    TimestampMs at = time() - expr.offset_ms;
    InstantVector out;
    out.reserve(selector.series.size());
    for (std::size_t i = 0; i < selector.series.size(); ++i) {
      const auto& samples = selector.series[i].samples;
      std::size_t& idx = cursor[i];  // count of samples with t <= at
      while (idx < samples.size() && samples[idx].t <= at) ++idx;
      if (idx == 0) continue;
      const SamplePoint& newest = samples[idx - 1];
      if (newest.t < at - lookback_ms()) continue;  // outside lookback
      if (metrics::is_stale_marker(newest.v)) continue;  // series ended
      out.push_back({selector.series[i].labels, newest.v});
    }
    return out;
  }

  std::vector<Series> matrix_selector(const Expr& expr) override {
    // Generic consumers of a range vector (predict_linear, or a range
    // function we have no incremental form for) get a materialised copy of
    // the current window — sliced from the prepared array, never from a
    // fresh decode.
    const PreparedSelector& selector = ctx_.selector(&expr);
    auto& cursor = window_cursors_[&expr];
    cursor.resize(selector.series.size());
    TimestampMs at = time() - expr.offset_ms;
    std::vector<Series> out;
    out.reserve(selector.series.size());
    for (std::size_t i = 0; i < selector.series.size(); ++i) {
      const auto& samples = selector.series[i].samples;
      WindowCursor& window = cursor[i];
      window.advance(samples, at, expr.range_ms);
      if (window.lo == window.hi) continue;
      out.push_back({selector.series[i].labels,
                     {samples.begin() + static_cast<std::ptrdiff_t>(window.lo),
                      samples.begin() + static_cast<std::ptrdiff_t>(window.hi)}});
    }
    return out;
  }

  bool range_call(const std::string& func, const Expr& call,
                  InstantVector& out) override {
    const Expr& matrix = *call.args[0];
    if (const PreparedAggPlan* plan = ctx_.agg_plan(&matrix)) {
      // Planned call: fold bucket rows. The plan is only ever bound when
      // every step window tiles whole buckets, so the bucket cursor is
      // the raw WindowCursor one level up.
      auto& cursors = agg_cursors_[&call];
      cursors.resize(plan->series.size());
      TimestampMs at = time() - matrix.offset_ms;
      out.reserve(plan->series.size());
      for (std::size_t i = 0; i < plan->series.size(); ++i) {
        const auto& buckets = plan->series[i].buckets;
        AggCursor& cursor = cursors[i];
        while (cursor.hi < buckets.size() && buckets[cursor.hi].t <= at) {
          ++cursor.hi;
        }
        while (cursor.lo < cursor.hi &&
               buckets[cursor.lo].t <= at - matrix.range_ms) {
          ++cursor.lo;
        }
        double result = 0;
        if (cursor.lo < cursor.hi &&
            eval_agg_window(func, buckets.data() + cursor.lo,
                            cursor.hi - cursor.lo, result)) {
          out.push_back({plan->series[i].labels.without_name(), result});
        }
      }
      return true;
    }
    const PreparedSelector& selector = ctx_.selector(&matrix);
    auto& states = call_states_[&call];
    states.resize(selector.series.size());
    TimestampMs at = time() - matrix.offset_ms;
    out.reserve(selector.series.size());
    for (std::size_t i = 0; i < selector.series.size(); ++i) {
      const auto& samples = selector.series[i].samples;
      SeriesWindowState& st = states[i];
      st.window.advance(samples, at, matrix.range_ms);
      double result = 0;
      if (eval_windowed(func, samples, st, result)) {
        out.push_back({selector.series[i].labels.without_name(), result});
      }
    }
    return true;
  }

 private:
  // Half-open window [lo, hi) of samples with at-range < t <= at. Both
  // bounds only move forward (steps are evaluated in increasing t).
  struct WindowCursor {
    std::size_t lo = 0, hi = 0;
    void advance(const std::vector<SamplePoint>& samples, TimestampMs at,
                 int64_t range_ms) {
      while (hi < samples.size() && samples[hi].t <= at) ++hi;
      while (lo < hi && samples[lo].t <= at - range_ms) ++lo;
    }
  };

  // Incremental aggregation state for one series under one range-function
  // call. `acc` holds a left-fold over [anchor, folded): extending the
  // fold at the end reproduces the from-scratch fold bit for bit; when the
  // window start moves past the anchor, the fold restarts (float folds are
  // not invertible without changing bit patterns). The deque holds indices
  // of non-NaN window samples, best-at-front, for min/max.
  struct SeriesWindowState {
    WindowCursor window;
    std::size_t anchor = static_cast<std::size_t>(-1);
    std::size_t folded = 0;
    double acc = 0;
    std::vector<std::size_t> deque;  // monotonic; front at deque_begin
    std::size_t deque_begin = 0;
    std::size_t pushed = 0;  // samples [0, pushed) offered to the deque
  };

  bool eval_windowed(const std::string& func,
                     const std::vector<SamplePoint>& samples,
                     SeriesWindowState& st, double& result) {
    const std::size_t lo = st.window.lo, hi = st.window.hi;
    const std::size_t n = hi - lo;
    if (n == 0) return false;
    if (func == "count_over_time") {
      result = static_cast<double>(n);
      return true;
    }
    if (func == "last_over_time") {
      result = samples[hi - 1].v;
      return true;
    }
    if (func == "sum_over_time" || func == "avg_over_time") {
      if (st.anchor != lo) {
        st.anchor = lo;
        st.folded = lo;
        st.acc = 0;
      }
      for (; st.folded < hi; ++st.folded) st.acc += samples[st.folded].v;
      result = func[0] == 's' ? st.acc : st.acc / static_cast<double>(n);
      return true;
    }
    if (func == "min_over_time" || func == "max_over_time") {
      bool is_min = func[1] == 'i';
      // The fold `best = min(best, v)` ignores NaN except when the first
      // window sample is NaN (then NaN sticks); the deque reproduces both
      // rules, including earliest-index tie-breaking via strict pops.
      if (st.pushed < lo) st.pushed = lo;
      for (; st.pushed < hi; ++st.pushed) {
        double v = samples[st.pushed].v;
        if (std::isnan(v)) continue;
        while (st.deque.size() > st.deque_begin) {
          double back = samples[st.deque.back()].v;
          if (is_min ? v < back : back < v) {
            st.deque.pop_back();
          } else {
            break;
          }
        }
        st.deque.push_back(st.pushed);
      }
      while (st.deque_begin < st.deque.size() &&
             st.deque[st.deque_begin] < lo) {
        ++st.deque_begin;
      }
      // Compact occasionally so the vector-backed deque stays O(window).
      if (st.deque_begin > 64 && st.deque_begin * 2 > st.deque.size()) {
        st.deque.erase(st.deque.begin(),
                       st.deque.begin() +
                           static_cast<std::ptrdiff_t>(st.deque_begin));
        st.deque_begin = 0;
      }
      if (std::isnan(samples[lo].v)) {
        result = samples[lo].v;  // fold would have stuck on this NaN
      } else {
        result = samples[st.deque[st.deque_begin]].v;
      }
      return true;
    }
    if (func == "rate" || func == "increase") {
      if (n < 2) return false;
      if (st.anchor != lo) {
        st.anchor = lo;
        st.folded = lo + 1;  // next pair index: pairs are (k-1, k)
        st.acc = 0;
      }
      for (; st.folded < hi; ++st.folded) {
        double delta = samples[st.folded].v - samples[st.folded - 1].v;
        st.acc += delta >= 0 ? delta : samples[st.folded].v;
      }
      if (func == "increase") {
        result = st.acc;
        return true;
      }
      double span_sec =
          static_cast<double>(samples[hi - 1].t - samples[lo].t) / 1000.0;
      if (span_sec <= 0) return false;
      result = st.acc / span_sec;
      return true;
    }
    if (func == "delta") {
      if (n < 2) return false;
      result = samples[hi - 1].v - samples[lo].v;
      return true;
    }
    // irate/idelta are O(1) on the window tail; stddev/deriv/resets/
    // changes refold the window in place — already decoded, no copies.
    return eval_range_function(func, samples.data() + lo, n, result);
  }

  // Per-series cursor over a planned call's bucket-end timestamps; same
  // monotone two-pointer sweep as WindowCursor, but over bucket rows.
  struct AggCursor {
    std::size_t lo = 0;
    std::size_t hi = 0;
  };

  const RangeEvalContext& ctx_;
  std::unordered_map<const Expr*, std::vector<std::size_t>> instant_cursors_;
  std::unordered_map<const Expr*, std::vector<WindowCursor>> window_cursors_;
  std::unordered_map<const Expr*, std::vector<SeriesWindowState>> call_states_;
  std::unordered_map<const Expr*, std::vector<AggCursor>> agg_cursors_;
};

// Folds one step's Value into the fingerprint-keyed accumulator shared by
// the serial and streaming range paths.
void accumulate_step(std::map<uint64_t, Series>& by_labels, Value&& value,
                     TimestampMs t) {
  if (value.kind == Value::Kind::kScalar) {
    Series& series = by_labels[Labels{}.fingerprint()];
    series.samples.push_back({t, value.scalar});
    return;
  }
  if (value.kind != Value::Kind::kVector)
    throw EvalError("range query must evaluate to vector or scalar");
  for (const auto& sample : value.vector) {
    Series& series = by_labels[sample.labels.fingerprint()];
    series.labels = sample.labels;
    series.samples.push_back({t, sample.value});
  }
}

// Runs eval_steps over [start, end], chunking the step grid across the
// pool when it pays off; chunk results merge in step order, so the output
// is bit-identical to the serial sweep.
std::map<uint64_t, Series> run_steps_chunked(
    common::ThreadPool* pool, int64_t min_parallel_steps, TimestampMs start,
    TimestampMs end, int64_t step_ms,
    const std::function<std::map<uint64_t, Series>(TimestampMs, TimestampMs)>&
        eval_steps) {
  const int64_t num_steps = end < start ? 0 : (end - start) / step_ms + 1;
  if (!pool || pool->size() < 2 || num_steps < min_parallel_steps) {
    return eval_steps(start, end);
  }
  const int64_t num_chunks =
      std::min<int64_t>(num_steps, static_cast<int64_t>(pool->size()) * 4);
  const int64_t steps_per_chunk = (num_steps + num_chunks - 1) / num_chunks;
  std::vector<std::map<uint64_t, Series>> partials(
      static_cast<std::size_t>(num_chunks));
  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<std::size_t>(num_chunks));
  for (int64_t c = 0; c < num_chunks; ++c) {
    int64_t first_step = c * steps_per_chunk;
    if (first_step >= num_steps) break;
    int64_t last_step =
        std::min(num_steps - 1, first_step + steps_per_chunk - 1);
    TimestampMs chunk_start = start + first_step * step_ms;
    TimestampMs chunk_end = start + last_step * step_ms;
    tasks.push_back([&eval_steps, &partials, c, chunk_start, chunk_end] {
      partials[static_cast<std::size_t>(c)] =
          eval_steps(chunk_start, chunk_end);
    });
  }
  pool->run_all(std::move(tasks));
  std::map<uint64_t, Series> by_labels;
  for (auto& partial : partials) {
    for (auto& [key, series] : partial) {
      Series& dst = by_labels[key];
      if (dst.samples.empty()) {
        dst = std::move(series);
      } else {
        dst.samples.insert(dst.samples.end(), series.samples.begin(),
                           series.samples.end());
      }
    }
  }
  return by_labels;
}

}  // namespace

Value Engine::eval(const Queryable& source, const ExprPtr& expr,
                   TimestampMs t) const {
  return Evaluator(source, t, options_.lookback_ms,
                   options_.resolution_aware)
      .eval(expr);
}

Value Engine::eval(const Queryable& source, const std::string& expr,
                   TimestampMs t) const {
  return eval(source, parse(expr), t);
}

std::map<uint64_t, Series> Engine::eval_range_steps(
    const Queryable& source, const ExprPtr& expr, TimestampMs start,
    TimestampMs end, int64_t step_ms) const {
  std::map<uint64_t, Series> by_labels;
  // Oracle purity: the per-step path always evaluates raw, independent of
  // resolution_aware, so it stays the differential reference for both the
  // streaming and the planned paths.
  Evaluator evaluator(source, start, options_.lookback_ms);
  for (TimestampMs t = start; t <= end; t += step_ms) {
    evaluator.set_time(t);
    accumulate_step(by_labels, evaluator.eval(expr), t);
  }
  return by_labels;
}

std::vector<Series> Engine::eval_range(const Queryable& source,
                                       const ExprPtr& expr, TimestampMs start,
                                       TimestampMs end, int64_t step_ms) const {
  if (step_ms <= 0) throw EvalError("step must be positive");
  common::ThreadPool* pool = options_.pool.get();

  std::map<uint64_t, Series> by_labels;
  if (options_.streaming_range) {
    // Streaming path: prepare every selector once (one select, one decode
    // per chunk), then sweep step cursors — serial or chunked across the
    // pool; either way each chunk's evaluator slides over the same shared
    // immutable arrays.
    RangeEvalContext ctx(source, expr, start, end, step_ms,
                         options_.lookback_ms, pool,
                         options_.resolution_aware);
    auto eval_steps = [&](TimestampMs from,
                          TimestampMs to) -> std::map<uint64_t, Series> {
      std::map<uint64_t, Series> partial;
      RangeEvaluator evaluator(source, ctx, from, options_.lookback_ms);
      for (TimestampMs t = from; t <= to; t += step_ms) {
        evaluator.set_time(t);
        accumulate_step(partial, evaluator.eval(expr), t);
      }
      return partial;
    };
    by_labels = run_steps_chunked(pool, options_.min_parallel_steps, start,
                                  end, step_ms, eval_steps);
  } else {
    // Per-step oracle path: full selector evaluation at every step.
    auto eval_steps = [&](TimestampMs from,
                          TimestampMs to) -> std::map<uint64_t, Series> {
      return eval_range_steps(source, expr, from, to, step_ms);
    };
    by_labels = run_steps_chunked(pool, options_.min_parallel_steps, start,
                                  end, step_ms, eval_steps);
  }

  std::vector<Series> out;
  out.reserve(by_labels.size());
  for (auto& [key, series] : by_labels) out.push_back(std::move(series));
  std::sort(out.begin(), out.end(), [](const Series& a, const Series& b) {
    return a.labels < b.labels;
  });
  return out;
}

std::vector<Series> Engine::eval_range(const Queryable& source,
                                       const std::string& expr,
                                       TimestampMs start, TimestampMs end,
                                       int64_t step_ms) const {
  if (cache_) {
    // The signature is read *before* evaluation: a write landing during
    // the evaluation bumps its shard counter, so the entry we store below
    // fails its next validation instead of serving a stale mix.
    std::vector<uint64_t> versions = source.version_signature();
    if (!versions.empty()) {
      QueryCacheKey key{expr, start, end, step_ms};
      if (auto hit = cache_->lookup(key, versions)) return std::move(*hit);
      auto result = eval_range(source, parse(expr), start, end, step_ms);
      cache_->insert(key, std::move(versions), result);
      return result;
    }
  }
  return eval_range(source, parse(expr), start, end, step_ms);
}

QueryCacheStats Engine::cache_stats() const {
  return cache_ ? cache_->stats() : QueryCacheStats{};
}

}  // namespace ceems::tsdb::promql
