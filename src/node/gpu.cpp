#include "node/gpu.h"

#include <cstdio>

namespace ceems::node {

std::string make_gpu_uuid(const std::string& hostname, int ordinal) {
  // FNV-1a over hostname + ordinal, rendered as 16 hex digits.
  uint64_t hash = 0xcbf29ce484222325ULL;
  auto mix = [&hash](char c) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  };
  for (char c : hostname) mix(c);
  mix(static_cast<char>('0' + ordinal));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "GPU-%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

GpuBank::GpuBank(const NodeSpec& spec, const std::string& hostname) {
  for (std::size_t i = 0; i < spec.gpus.size(); ++i) {
    GpuTelemetry device;
    device.ordinal = static_cast<int>(i);
    device.uuid = make_gpu_uuid(hostname, device.ordinal);
    device.model = spec.gpus[i].model;
    device.vendor = spec.gpus[i].vendor;
    device.power_w = spec.gpus[i].idle_power_w;
    device.memory_total_bytes = spec.gpus[i].memory_bytes;
    devices_.push_back(std::move(device));
  }
}

void GpuBank::update(const std::vector<double>& per_gpu_w,
                     const std::vector<double>& per_gpu_util,
                     const std::vector<int64_t>& per_gpu_mem_bytes,
                     int64_t dt_ms) {
  std::lock_guard lock(mu_);
  double seconds = static_cast<double>(dt_ms) / 1000.0;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (i < per_gpu_w.size()) {
      devices_[i].power_w = per_gpu_w[i];
      devices_[i].lifetime_energy_j += per_gpu_w[i] * seconds;
    }
    if (i < per_gpu_util.size()) devices_[i].utilization = per_gpu_util[i];
    if (i < per_gpu_mem_bytes.size())
      devices_[i].memory_used_bytes = per_gpu_mem_bytes[i];
  }
}

std::vector<GpuTelemetry> GpuBank::snapshot() const {
  std::lock_guard lock(mu_);
  return devices_;
}

std::optional<GpuTelemetry> GpuBank::device(int ordinal) const {
  std::lock_guard lock(mu_);
  if (ordinal < 0 || static_cast<std::size_t>(ordinal) >= devices_.size())
    return std::nullopt;
  return devices_[static_cast<std::size_t>(ordinal)];
}

}  // namespace ceems::node
