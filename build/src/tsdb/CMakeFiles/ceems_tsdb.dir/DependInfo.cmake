
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tsdb/http_api.cpp" "src/tsdb/CMakeFiles/ceems_tsdb.dir/http_api.cpp.o" "gcc" "src/tsdb/CMakeFiles/ceems_tsdb.dir/http_api.cpp.o.d"
  "/root/repo/src/tsdb/longterm.cpp" "src/tsdb/CMakeFiles/ceems_tsdb.dir/longterm.cpp.o" "gcc" "src/tsdb/CMakeFiles/ceems_tsdb.dir/longterm.cpp.o.d"
  "/root/repo/src/tsdb/promql_eval.cpp" "src/tsdb/CMakeFiles/ceems_tsdb.dir/promql_eval.cpp.o" "gcc" "src/tsdb/CMakeFiles/ceems_tsdb.dir/promql_eval.cpp.o.d"
  "/root/repo/src/tsdb/promql_lexer.cpp" "src/tsdb/CMakeFiles/ceems_tsdb.dir/promql_lexer.cpp.o" "gcc" "src/tsdb/CMakeFiles/ceems_tsdb.dir/promql_lexer.cpp.o.d"
  "/root/repo/src/tsdb/promql_parser.cpp" "src/tsdb/CMakeFiles/ceems_tsdb.dir/promql_parser.cpp.o" "gcc" "src/tsdb/CMakeFiles/ceems_tsdb.dir/promql_parser.cpp.o.d"
  "/root/repo/src/tsdb/rules.cpp" "src/tsdb/CMakeFiles/ceems_tsdb.dir/rules.cpp.o" "gcc" "src/tsdb/CMakeFiles/ceems_tsdb.dir/rules.cpp.o.d"
  "/root/repo/src/tsdb/scrape.cpp" "src/tsdb/CMakeFiles/ceems_tsdb.dir/scrape.cpp.o" "gcc" "src/tsdb/CMakeFiles/ceems_tsdb.dir/scrape.cpp.o.d"
  "/root/repo/src/tsdb/storage.cpp" "src/tsdb/CMakeFiles/ceems_tsdb.dir/storage.cpp.o" "gcc" "src/tsdb/CMakeFiles/ceems_tsdb.dir/storage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ceems_common.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ceems_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/ceems_http.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
