#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <random>

#include "metrics/symbols.h"
#include "tsdb/storage.h"

namespace ceems::tsdb {
namespace {

Labels series_labels(const std::string& name, const std::string& host) {
  return Labels{{"hostname", host}}.with_name(name);
}

TEST(Storage, AppendAndSelect) {
  TimeSeriesStore store;
  store.append(series_labels("up", "n1"), 1000, 1);
  store.append(series_labels("up", "n1"), 2000, 0);
  store.append(series_labels("up", "n2"), 1000, 1);

  auto all = store.select(
      {{"__name__", LabelMatcher::Op::kEq, "up"}}, 0, 10000);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].samples().size(), 2u);

  auto one = store.select({{"__name__", LabelMatcher::Op::kEq, "up"},
                           {"hostname", LabelMatcher::Op::kEq, "n2"}},
                          0, 10000);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(*one[0].labels.get("hostname"), "n2");
}

TEST(Storage, TimeRangeFiltering) {
  TimeSeriesStore store;
  for (int i = 0; i < 10; ++i) {
    store.append(series_labels("m", "n1"), i * 1000, i);
  }
  auto result = store.select({}, 3000, 6000);
  ASSERT_EQ(result.size(), 1u);
  ASSERT_EQ(result[0].samples().size(), 4u);  // 3,4,5,6 inclusive
  EXPECT_EQ(result[0].samples().front().t, 3000);
  EXPECT_EQ(result[0].samples().back().t, 6000);
}

TEST(Storage, OutOfOrderRejected) {
  TimeSeriesStore store;
  EXPECT_TRUE(store.append(series_labels("m", "n1"), 2000, 1));
  EXPECT_FALSE(store.append(series_labels("m", "n1"), 1000, 2));
  EXPECT_EQ(store.stats().num_samples, 1u);
}

TEST(Storage, DuplicateTimestampLastWins) {
  TimeSeriesStore store;
  store.append(series_labels("m", "n1"), 1000, 1);
  store.append(series_labels("m", "n1"), 1000, 9);
  auto result = store.select({}, 0, 2000);
  EXPECT_DOUBLE_EQ(result[0].samples()[0].v, 9);
  EXPECT_EQ(store.stats().num_samples, 1u);
}

TEST(Storage, NegativeMatcherNeedsFullScan) {
  TimeSeriesStore store;
  store.append(series_labels("m", "n1"), 1000, 1);
  store.append(series_labels("m", "n2"), 1000, 2);
  auto result = store.select({{"hostname", LabelMatcher::Op::kNe, "n1"}},
                             0, 2000);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(*result[0].labels.get("hostname"), "n2");
}

TEST(Storage, RegexMatcher) {
  TimeSeriesStore store;
  store.append(series_labels("m", "jzcpu1"), 1000, 1);
  store.append(series_labels("m", "jzgpu1"), 1000, 2);
  auto result = store.select(
      {{"hostname", LabelMatcher::Op::kRegexMatch, "jzcpu\\d+"}}, 0, 2000);
  ASSERT_EQ(result.size(), 1u);
}

TEST(Storage, PurgeBeforeDropsSamplesAndEmptySeries) {
  TimeSeriesStore store;
  for (int i = 0; i < 10; ++i) {
    store.append(series_labels("old", "n1"), i * 1000, i);
  }
  store.append(series_labels("fresh", "n1"), 20000, 1);
  std::size_t dropped = store.purge_before(15000);
  EXPECT_EQ(dropped, 10u);
  EXPECT_EQ(store.stats().num_series, 1u);
  // Purged series no longer matches.
  EXPECT_TRUE(store.select({{"__name__", LabelMatcher::Op::kEq, "old"}}, 0,
                           30000)
                  .empty());
}

TEST(Storage, DeleteSeriesByMatcher) {
  TimeSeriesStore store;
  store.append(Labels{{"uuid", "1"}}.with_name("m"), 1000, 1);
  store.append(Labels{{"uuid", "2"}}.with_name("m"), 1000, 1);
  store.append(Labels{{"uuid", "1"}}.with_name("n"), 1000, 1);
  std::size_t deleted =
      store.delete_series({{"uuid", LabelMatcher::Op::kEq, "1"}});
  EXPECT_EQ(deleted, 2u);
  EXPECT_EQ(store.stats().num_series, 1u);
}

TEST(Storage, LabelValues) {
  TimeSeriesStore store;
  store.append(series_labels("m", "n2"), 1000, 1);
  store.append(series_labels("m", "n1"), 1000, 1);
  auto values = store.label_values("hostname");
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], "n1");  // sorted
  EXPECT_TRUE(store.label_values("nope").empty());
}

TEST(Storage, SeriesSinceForReplication) {
  TimeSeriesStore store;
  store.append(series_labels("m", "n1"), 1000, 1);
  store.append(series_labels("m", "n1"), 2000, 2);
  store.append(series_labels("m", "n2"), 3000, 3);
  auto fresh = store.series_since(1500);
  std::size_t samples = 0;
  for (const auto& series : fresh) samples += series.samples.size();
  EXPECT_EQ(samples, 2u);
  EXPECT_EQ(store.max_time(), 3000);
}

TEST(Storage, EmptyStoreBehaviour) {
  TimeSeriesStore store;
  EXPECT_TRUE(store.select({}, 0, 1000).empty());
  EXPECT_FALSE(store.max_time().has_value());
  EXPECT_EQ(store.purge_before(100), 0u);
  EXPECT_EQ(store.stats().num_series, 0u);
}

TEST(Storage, SnapshotRoundTrip) {
  std::string path = ::testing::TempDir() + "tsdb_snapshot_test.bin";
  TimeSeriesStore store;
  for (int s = 0; s < 20; ++s) {
    Labels labels = Labels{{"uuid", std::to_string(s)},
                           {"hostname", "n" + std::to_string(s % 3)}}
                        .with_name("m");
    for (int i = 0; i < 50; ++i) {
      store.append(labels, i * 30000, s * 1000.0 + i);
    }
  }
  ASSERT_TRUE(store.snapshot_to(path));

  TimeSeriesStore restored;
  auto count = restored.restore_from(path);
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(*count, 20u * 50u);
  EXPECT_EQ(restored.stats().num_series, store.stats().num_series);
  auto original = store.select({}, 0, 50 * 30000);
  auto copy = restored.select({}, 0, 50 * 30000);
  ASSERT_EQ(original.size(), copy.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(original[i].labels, copy[i].labels);
    ASSERT_EQ(original[i].samples().size(), copy[i].samples().size());
    EXPECT_DOUBLE_EQ(original[i].samples().back().v, copy[i].samples().back().v);
  }
  std::remove(path.c_str());
}

TEST(Storage, SnapshotRestoreRejectsCorruptFile) {
  std::string path = ::testing::TempDir() + "tsdb_snapshot_corrupt.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTASNAPSHOT garbage";
  }
  TimeSeriesStore store;
  EXPECT_FALSE(store.restore_from(path).has_value());
  EXPECT_FALSE(store.restore_from("/nonexistent/file").has_value());

  // Truncated valid snapshot: clean abort, no crash.
  TimeSeriesStore source;
  source.append(Labels{{"a", "b"}}.with_name("m"), 1000, 1);
  source.snapshot_to(path);
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size() - 6));
  out.close();
  TimeSeriesStore truncated;
  EXPECT_FALSE(truncated.restore_from(path).has_value());
  std::remove(path.c_str());
}

TEST(Storage, StatsTrackCardinality) {
  TimeSeriesStore store;
  for (int s = 0; s < 100; ++s) {
    Labels labels = Labels{{"uuid", std::to_string(s)}}.with_name("m");
    for (int i = 0; i < 10; ++i) store.append(labels, i * 1000, i);
  }
  StorageStats stats = store.stats();
  EXPECT_EQ(stats.num_series, 100u);
  EXPECT_EQ(stats.num_samples, 1000u);
  EXPECT_GT(stats.approx_bytes, 0u);
  // The process-global symbol table is reported separately, not folded
  // into approx_bytes: another store in the same process sees the same
  // shared value, so summing approx_bytes across stores stays correct.
  EXPECT_GT(stats.symbol_bytes, 0u);
  TimeSeriesStore other;
  other.append(Labels{{"uuid", "0"}}.with_name("m"), 0, 1);
  EXPECT_EQ(other.stats().symbol_bytes, store.stats().symbol_bytes);
  EXPECT_LT(other.stats().approx_bytes, stats.approx_bytes);
}

TEST(Storage, SealedChunksCompressRegularSeries) {
  // A realistic scrape shape: fixed 30 s interval, slowly-moving gauge.
  // Once chunks seal, the footprint must drop well below the raw
  // 16 bytes/sample representation (the ISSUE acceptance bar is >=4x).
  TimeSeriesStore store;
  constexpr int kSeries = 10;
  constexpr int kSamples = 1000;
  for (int s = 0; s < kSeries; ++s) {
    Labels labels = Labels{{"uuid", std::to_string(s)}}.with_name("g");
    for (int i = 0; i < kSamples; ++i) {
      store.append(labels, 1700000000000LL + int64_t{i} * 30000,
                   100.0 + (i % 5));
    }
  }
  StorageStats stats = store.stats();
  EXPECT_EQ(stats.num_samples, static_cast<std::size_t>(kSeries * kSamples));
  // Sample payload only (strip the label/symbol overhead shared with any
  // representation): count sealed bytes + head via the ratio bound.
  EXPECT_LT(stats.approx_bytes,
            stats.num_samples * sizeof(SamplePoint) / 4);
}

TEST(Storage, FingerprintCollisionsDoNotAliasSeries) {
  // Force two distinct label sets onto one fingerprint via the test-only
  // override constructor; the store must chain them into distinct series.
  TimeSeriesStore store;
  constexpr uint64_t kFp = 0xdeadbeefcafef00dULL;
  metrics::InternedLabels a(Labels{{"host", "a"}}.with_name("m"), kFp);
  metrics::InternedLabels b(Labels{{"host", "b"}}.with_name("m"), kFp);
  EXPECT_TRUE(store.append(a, 1000, 1));
  EXPECT_TRUE(store.append(b, 1000, 2));
  EXPECT_TRUE(store.append(a, 2000, 3));

  StorageStats stats = store.stats();
  EXPECT_EQ(stats.num_series, 2u);
  EXPECT_EQ(stats.num_samples, 3u);

  auto only_a =
      store.select({{"host", LabelMatcher::Op::kEq, "a"}}, 0, 10000);
  ASSERT_EQ(only_a.size(), 1u);
  EXPECT_EQ(only_a[0].samples().size(), 2u);
  EXPECT_DOUBLE_EQ(only_a[0].samples().back().v, 3);

  auto only_b =
      store.select({{"host", LabelMatcher::Op::kEq, "b"}}, 0, 10000);
  ASSERT_EQ(only_b.size(), 1u);
  EXPECT_DOUBLE_EQ(only_b[0].samples()[0].v, 2);

  // Deleting one colliding series must not take the other with it.
  EXPECT_EQ(store.delete_series({{"host", LabelMatcher::Op::kEq, "a"}}), 1u);
  EXPECT_EQ(store.stats().num_series, 1u);
  EXPECT_EQ(
      store.select({{"host", LabelMatcher::Op::kEq, "b"}}, 0, 10000).size(),
      1u);
}

TEST(Storage, SnapshotV1FormatStillRestores) {
  // Hand-crafted legacy "CEEMSTSDB1" raw-sample snapshot: the chunked
  // store must keep reading snapshots written before the format bump.
  std::string path = ::testing::TempDir() + "tsdb_snapshot_v1.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    auto put_u64 = [&](uint64_t v) {
      out.write(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    auto put_f64 = [&](double v) {
      out.write(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    auto put_str = [&](const std::string& s) {
      put_u64(s.size());
      out.write(s.data(), static_cast<std::streamsize>(s.size()));
    };
    out.write("CEEMSTSDB1", 10);
    put_u64(1);  // num_series
    put_u64(2);  // num_labels
    put_str("__name__");
    put_str("m");
    put_str("hostname");
    put_str("n1");
    put_u64(3);  // num_samples
    for (int i = 0; i < 3; ++i) {
      put_u64(static_cast<uint64_t>(1000 * (i + 1)));
      put_f64(1.5 * (i + 1));
    }
  }
  TimeSeriesStore store;
  auto count = store.restore_from(path);
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(*count, 3u);
  auto result =
      store.select({{"hostname", LabelMatcher::Op::kEq, "n1"}}, 0, 10000);
  ASSERT_EQ(result.size(), 1u);
  auto samples = result[0].samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[2].t, 3000);
  EXPECT_DOUBLE_EQ(samples[2].v, 4.5);
  std::remove(path.c_str());
}

TEST(Storage, SnapshotSealedChunksSurviveRoundTrip) {
  // Enough samples that sealed chunks exist: the v2 round trip must
  // reproduce every sample bit-for-bit through the compressed path.
  std::string path = ::testing::TempDir() + "tsdb_snapshot_chunked.bin";
  TimeSeriesStore store;
  Labels labels = Labels{{"uuid", "1"}}.with_name("m");
  constexpr int kSamples = 300;  // 2 sealed chunks + head
  for (int i = 0; i < kSamples; ++i) {
    store.append(labels, int64_t{i} * 30000, i * 0.25);
  }
  ASSERT_TRUE(store.snapshot_to(path));
  TimeSeriesStore restored;
  auto count = restored.restore_from(path);
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(*count, static_cast<std::size_t>(kSamples));
  auto original = store.select({}, 0, kSamples * 30000)[0].samples();
  auto copy = restored.select({}, 0, kSamples * 30000)[0].samples();
  ASSERT_EQ(original.size(), copy.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(original[i].t, copy[i].t);
    EXPECT_EQ(std::memcmp(&original[i].v, &copy[i].v, sizeof(double)), 0);
  }
  std::remove(path.c_str());
}

TEST(Storage, SnapshotV2RejectsTruncatedChunk) {
  std::string path = ::testing::TempDir() + "tsdb_snapshot_v2_trunc.bin";
  TimeSeriesStore store;
  Labels labels = Labels{{"uuid", "1"}}.with_name("m");
  for (int i = 0; i < 200; ++i) {
    store.append(labels, int64_t{i} * 30000, i);
  }
  ASSERT_TRUE(store.snapshot_to(path));
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  // Cut deep enough to land inside the sealed chunk payload (the head
  // region at the tail is 80 samples * 16 bytes + its count field).
  std::size_t cut = 80 * 16 + 8 + 40;
  ASSERT_GT(content.size(), cut);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size() - cut));
  out.close();
  TimeSeriesStore truncated;
  EXPECT_FALSE(truncated.restore_from(path).has_value());
  std::remove(path.c_str());
}

TEST(Storage, SnapshotV2EmptyHeadRestoresAndMergesSafely) {
  // A v2 snapshot whose head section is empty: after restore the newest
  // sample lives in a sealed chunk, not the head. A second restore of the
  // same file replays the chunk's boundary timestamp against that empty
  // head, and a post-restore duplicate-timestamp append must overwrite
  // via chunk re-seal — both used to hit head_.back() on an empty vector.
  std::string path = ::testing::TempDir() + "tsdb_snapshot_v2_nohead.bin";
  std::vector<SamplePoint> samples;
  for (int i = 0; i < 120; ++i) {
    samples.push_back({int64_t{i} * 30000, i * 0.5});
  }
  auto chunk = GorillaChunk::encode(samples.data(), samples.size());
  ASSERT_NE(chunk, nullptr);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    auto put_u64 = [&](uint64_t v) {
      out.write(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    auto put_str = [&](const std::string& s) {
      put_u64(s.size());
      out.write(s.data(), static_cast<std::streamsize>(s.size()));
    };
    out.write("CEEMSTSDB2", 10);
    put_u64(1);  // num_series
    put_u64(2);  // num_labels
    put_str("__name__");
    put_str("m");
    put_str("uuid");
    put_str("1");
    put_u64(1);  // num_sealed
    put_u64(chunk->count());
    put_u64(static_cast<uint64_t>(chunk->min_time()));
    put_u64(static_cast<uint64_t>(chunk->max_time()));
    put_u64(chunk->bytes().size());
    out.write(reinterpret_cast<const char*>(chunk->bytes().data()),
              static_cast<std::streamsize>(chunk->bytes().size()));
    put_u64(0);  // num_head: empty
  }
  TimeSeriesStore store;
  auto first = store.restore_from(path);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 120u);
  // Second restore merges: every chunk sample is a duplicate, the last
  // one with t == last_t_ while the head is empty.
  auto second = store.restore_from(path);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, 0u);
  EXPECT_EQ(store.stats().num_samples, 120u);

  // Duplicate-timestamp append straight after restore: last write wins.
  Labels labels = Labels{{"uuid", "1"}}.with_name("m");
  EXPECT_TRUE(store.append(labels, samples.back().t, 99.0));
  auto result = store.select({}, 0, 10000000);
  ASSERT_EQ(result.size(), 1u);
  auto got = result[0].samples();
  ASSERT_EQ(got.size(), 120u);
  EXPECT_EQ(got.back().t, samples.back().t);
  EXPECT_DOUBLE_EQ(got.back().v, 99.0);
  std::remove(path.c_str());
}

TEST(Storage, CorruptSnapshotLeavesStoreUnmodified) {
  // Mid-file corruption (truncated inside a later series) must reject the
  // snapshot without applying the earlier, well-formed series: restore
  // stages the whole parse before committing anything to the shards.
  std::string path = ::testing::TempDir() + "tsdb_snapshot_partial.bin";
  TimeSeriesStore source;
  for (int s = 0; s < 8; ++s) {
    Labels labels = Labels{{"uuid", std::to_string(s)}}.with_name("m");
    for (int i = 0; i < 5; ++i) source.append(labels, i * 1000, i);
  }
  ASSERT_TRUE(source.snapshot_to(path));
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  // Cut into the last series' head samples: everything before it parses.
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size() - 10));
  out.close();

  TimeSeriesStore store;
  EXPECT_FALSE(store.restore_from(path).has_value());
  EXPECT_EQ(store.stats().num_series, 0u);
  EXPECT_EQ(store.stats().num_samples, 0u);
  EXPECT_TRUE(store.select({}, 0, 100000).empty());

  // A pre-populated store is equally untouched by a failed restore.
  store.append(Labels{{"uuid", "9"}}.with_name("m"), 500, 7);
  EXPECT_FALSE(store.restore_from(path).has_value());
  EXPECT_EQ(store.stats().num_series, 1u);
  EXPECT_EQ(store.stats().num_samples, 1u);
  std::remove(path.c_str());
}

// ---------- Gorilla chunk codec ----------

double bits_to_double(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

TEST(ChunkCodec, RoundTripRegularSeries) {
  std::vector<SamplePoint> samples;
  for (int i = 0; i < 120; ++i) {
    samples.push_back({1700000000000LL + int64_t{i} * 30000, 42.0});
  }
  auto chunk = GorillaChunk::encode(samples.data(), samples.size());
  ASSERT_NE(chunk, nullptr);
  // Constant value + constant interval is the codec's best case: about
  // two bits per sample after the first.
  EXPECT_LT(chunk->bytes().size(), 16u + 120u / 2);
  auto decoded = chunk->decode();
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ((*decoded)[i].t, samples[i].t);
    EXPECT_TRUE(same_bits((*decoded)[i].v, samples[i].v));
  }
}

TEST(ChunkCodec, RoundTripPropertyJitterResetsAndSpecials) {
  // Property: for arbitrary time-ordered input — jittered scrape
  // intervals, counter resets, NaN payloads, infinities, negative zero —
  // decode(encode(x)) == x bit-for-bit.
  for (uint64_t seed : {1ULL, 7ULL, 42ULL, 1337ULL, 99991ULL}) {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int64_t> jitter(-500, 500);
    std::uniform_real_distribution<double> delta(0.0, 1000.0);
    std::vector<SamplePoint> samples;
    int64_t t = 1700000000000LL;
    double counter = 0;
    int n = 2 + static_cast<int>(rng() % 400);
    for (int i = 0; i < n; ++i) {
      t += 30000 + jitter(rng);
      if (rng() % 64 == 0) t += 3600000;  // scrape gap
      double v;
      switch (rng() % 16) {
        case 0: counter = 0; v = counter; break;  // counter reset
        case 1: v = std::numeric_limits<double>::quiet_NaN(); break;
        case 2: v = bits_to_double(0x7ff8deadbeef0001ULL); break;  // payload
        case 3: v = std::numeric_limits<double>::infinity(); break;
        case 4: v = -std::numeric_limits<double>::infinity(); break;
        case 5: v = -0.0; break;
        default: counter += delta(rng); v = counter;
      }
      samples.push_back({t, v});
    }
    auto chunk = GorillaChunk::encode(samples.data(), samples.size());
    ASSERT_NE(chunk, nullptr) << "seed " << seed;
    EXPECT_EQ(chunk->count(), samples.size());
    EXPECT_EQ(chunk->min_time(), samples.front().t);
    EXPECT_EQ(chunk->max_time(), samples.back().t);
    auto decoded = chunk->decode();
    ASSERT_TRUE(decoded.has_value()) << "seed " << seed;
    ASSERT_EQ(decoded->size(), samples.size()) << "seed " << seed;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      ASSERT_EQ((*decoded)[i].t, samples[i].t) << "seed " << seed;
      ASSERT_TRUE(same_bits((*decoded)[i].v, samples[i].v))
          << "seed " << seed << " sample " << i;
    }
  }
}

TEST(ChunkCodec, DuplicateTimestampAfterAdoptSealedResealsChunk) {
  // adopt_sealed() leaves the head empty with the newest sample inside
  // the last sealed chunk; a duplicate-timestamp append must re-seal that
  // chunk (last write wins) instead of touching the empty head.
  std::vector<SamplePoint> samples;
  for (int i = 0; i < 120; ++i) {
    samples.push_back({int64_t{i} * 1000, i * 1.0});
  }
  ChunkedSeries series;
  ASSERT_TRUE(
      series.adopt_sealed(GorillaChunk::encode(samples.data(), samples.size())));
  ASSERT_TRUE(series.head().empty());
  EXPECT_EQ(series.append(119000, 42.5), AppendResult::kOverwrote);
  EXPECT_EQ(series.num_samples(), 120u);
  auto all = series.samples_between(0, 200000);
  ASSERT_EQ(all.size(), 120u);
  EXPECT_EQ(all.back().t, 119000);
  EXPECT_DOUBLE_EQ(all.back().v, 42.5);
  // Ordering rules are unchanged around the rewrite.
  EXPECT_EQ(series.append(118000, 1.0), AppendResult::kRejected);
  EXPECT_EQ(series.append(120000, 7.0), AppendResult::kAppended);
  EXPECT_EQ(series.num_samples(), 121u);
}

TEST(ChunkCodec, FromPartsValidatesHeaderAgainstPayload) {
  std::vector<SamplePoint> samples;
  for (int i = 0; i < 50; ++i) {
    samples.push_back({int64_t{i} * 1000, i * 1.0});
  }
  auto chunk = GorillaChunk::encode(samples.data(), samples.size());
  ASSERT_NE(chunk, nullptr);
  auto bytes = chunk->bytes();

  // Pristine parts reconstruct.
  EXPECT_NE(GorillaChunk::from_parts(bytes, 50, 0, 49000), nullptr);
  // Header lies about the sample count / time range.
  EXPECT_EQ(GorillaChunk::from_parts(bytes, 51, 0, 49000), nullptr);
  EXPECT_EQ(GorillaChunk::from_parts(bytes, 50, 0, 48000), nullptr);
  EXPECT_EQ(GorillaChunk::from_parts(bytes, 50, 1000, 49000), nullptr);
  // Truncated payload runs out of bits.
  auto truncated = bytes;
  truncated.resize(truncated.size() / 2);
  EXPECT_EQ(GorillaChunk::from_parts(truncated, 50, 0, 49000), nullptr);
}

// ---------- aggregate chunks ----------

uint64_t value_bits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

void expect_buckets_equal(const std::vector<AggBucket>& expected,
                          const std::vector<AggBucket>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE("bucket " + std::to_string(i));
    EXPECT_EQ(expected[i].t, actual[i].t);
    EXPECT_EQ(expected[i].count, actual[i].count);
    EXPECT_EQ(value_bits(expected[i].sum), value_bits(actual[i].sum));
    EXPECT_EQ(value_bits(expected[i].min), value_bits(actual[i].min));
    EXPECT_EQ(value_bits(expected[i].max), value_bits(actual[i].max));
    EXPECT_EQ(value_bits(expected[i].first_v), value_bits(actual[i].first_v));
    EXPECT_EQ(value_bits(expected[i].last_v), value_bits(actual[i].last_v));
    EXPECT_EQ(value_bits(expected[i].inc), value_bits(actual[i].inc));
    EXPECT_EQ(expected[i].first_t, actual[i].first_t);
    EXPECT_EQ(expected[i].last_t, actual[i].last_t);
    EXPECT_EQ(expected[i].marker_t, actual[i].marker_t);
  }
}

TEST(AggChunkCodec, RoundTripIsBitLossless) {
  constexpr int64_t kRes = 5 * 60 * 1000;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> value(0, 500);
  std::uniform_int_distribution<int64_t> jitter(0, 20000);
  std::vector<AggBucket> buckets;
  for (int i = 1; i <= 100; ++i) {
    AggBucket b;
    b.t = int64_t{i} * kRes;
    b.count = 10;
    b.sum = value(rng);
    b.min = value(rng);
    b.max = b.min + value(rng);
    b.first_v = value(rng);
    b.last_v = value(rng);
    b.inc = value(rng);
    b.first_t = b.t - kRes + 1 + jitter(rng);
    b.last_t = b.t - jitter(rng);
    if (i % 7 == 0) b.marker_t = b.last_t;  // resolved-series buckets
    buckets.push_back(b);
  }
  auto chunk = AggChunk::encode(buckets.data(), buckets.size());
  ASSERT_NE(chunk, nullptr);
  EXPECT_EQ(chunk->count(), 100u);
  EXPECT_EQ(chunk->min_time(), kRes);
  EXPECT_EQ(chunk->max_time(), 100 * kRes);
  auto decoded = chunk->decode();
  ASSERT_TRUE(decoded.has_value());
  expect_buckets_equal(buckets, *decoded);
}

TEST(AggChunkCodec, HandlesSpecialValuesAndMarkerOnlyBuckets) {
  std::vector<AggBucket> buckets;
  AggBucket nan_bucket;  // all-NaN bucket: min/max have no non-NaN sample
  nan_bucket.t = 300000;
  nan_bucket.count = 2;
  nan_bucket.sum = std::nan("");
  nan_bucket.min = std::nan("");
  nan_bucket.max = std::nan("");
  nan_bucket.first_v = std::nan("");
  nan_bucket.last_v = std::nan("");
  nan_bucket.first_t = 30000;
  nan_bucket.last_t = 250000;
  buckets.push_back(nan_bucket);
  AggBucket marker_only;  // count == 0: the bucket held only markers
  marker_only.t = 600000;
  marker_only.min = std::nan("");
  marker_only.max = std::nan("");
  marker_only.marker_t = 420000;
  buckets.push_back(marker_only);
  AggBucket extremes;
  extremes.t = 900000;
  extremes.count = 3;
  extremes.sum = -0.0;
  extremes.min = -std::numeric_limits<double>::infinity();
  extremes.max = std::numeric_limits<double>::infinity();
  extremes.first_v = std::numeric_limits<double>::denorm_min();
  extremes.last_v = -1e308;
  extremes.inc = 0;
  extremes.first_t = 600001;
  extremes.last_t = 900000;
  buckets.push_back(extremes);

  auto chunk = AggChunk::encode(buckets.data(), buckets.size());
  ASSERT_NE(chunk, nullptr);
  auto decoded = chunk->decode();
  ASSERT_TRUE(decoded.has_value());
  expect_buckets_equal(buckets, *decoded);
}

TEST(AggChunkCodec, RegularCadenceCompressesWell) {
  // Under a fixed scrape cadence the t/first_t/last_t/count columns go to
  // ~zero bits per bucket after the first few; a plain struct dump is
  // 11 columns x 8 bytes. Expect at least 4x against that.
  constexpr int64_t kRes = 5 * 60 * 1000;
  std::vector<AggBucket> buckets;
  for (int i = 1; i <= 120; ++i) {
    AggBucket b;
    b.t = int64_t{i} * kRes;
    b.count = 10;
    b.sum = 1000;
    b.min = 90;
    b.max = 110;
    b.first_v = 95;
    b.last_v = 105;
    b.inc = 0;
    b.first_t = b.t - kRes + 30000;
    b.last_t = b.t;
    buckets.push_back(b);
  }
  auto chunk = AggChunk::encode(buckets.data(), buckets.size());
  ASSERT_NE(chunk, nullptr);
  EXPECT_LT(chunk->bytes().size(), buckets.size() * sizeof(AggBucket) / 4);
}

TEST(AggChunkedSeries, AppendSealAndFilter) {
  constexpr int64_t kRes = 60000;
  AggChunkedSeries series;
  EXPECT_TRUE(series.empty());
  for (int i = 1; i <= 300; ++i) {  // > 2 sealed chunks of 120
    AggBucket b;
    b.t = int64_t{i} * kRes;
    b.count = 1;
    b.sum = b.first_v = b.last_v = b.min = b.max = i;
    b.first_t = b.last_t = b.t;
    ASSERT_TRUE(series.append(b));
  }
  EXPECT_EQ(series.num_buckets(), 300u);
  EXPECT_EQ(series.sealed().size(), 2u);
  EXPECT_EQ(series.min_time(), kRes);
  EXPECT_EQ(series.max_time(), 300 * kRes);

  // Stale or duplicate buckets are rejected.
  AggBucket dup;
  dup.t = 300 * kRes;
  EXPECT_FALSE(series.append(dup));

  // Range filter spans the sealed/head boundary.
  auto mid = series.buckets_between(119 * kRes, 242 * kRes);
  ASSERT_EQ(mid.size(), 124u);
  EXPECT_EQ(mid.front().t, 119 * kRes);
  EXPECT_EQ(mid.back().t, 242 * kRes);
  for (std::size_t i = 1; i < mid.size(); ++i) {
    EXPECT_EQ(mid[i].t - mid[i - 1].t, kRes);
  }
}

TEST(AggChunkedSeries, DropBeforeRespectsChunkBoundaries) {
  constexpr int64_t kRes = 60000;
  AggChunkedSeries series;
  for (int i = 1; i <= 300; ++i) {
    AggBucket b;
    b.t = int64_t{i} * kRes;
    b.count = 1;
    b.sum = i;
    b.first_t = b.last_t = b.t;
    series.append(b);
  }
  // Cutoff inside the second sealed chunk: chunk 1 drops whole, chunk 2
  // re-seals filtered.
  EXPECT_EQ(series.drop_before(130 * kRes), 129u);
  EXPECT_EQ(series.num_buckets(), 171u);
  EXPECT_EQ(series.min_time(), 130 * kRes);
  auto rest = series.buckets_between(0, 400 * kRes);
  ASSERT_EQ(rest.size(), 171u);
  EXPECT_EQ(rest.front().t, 130 * kRes);
  EXPECT_EQ(rest.front().sum, 130.0);

  // Appending continues above the cut.
  AggBucket next;
  next.t = 301 * kRes;
  next.count = 1;
  next.first_t = next.last_t = next.t;
  EXPECT_TRUE(series.append(next));

  // Dropping everything resets the series for fresh appends.
  EXPECT_EQ(series.drop_before(1000 * kRes), 172u);
  EXPECT_TRUE(series.empty());
  AggBucket fresh;
  fresh.t = kRes;
  fresh.count = 1;
  fresh.first_t = fresh.last_t = fresh.t;
  EXPECT_TRUE(series.append(fresh));
}

}  // namespace
}  // namespace ceems::tsdb
