// Core sample / metric-family model shared by the exporter (producer side)
// and the TSDB (consumer side).
#pragma once

#include <string>
#include <vector>

#include "common/clock.h"
#include "metrics/labels.h"
#include "metrics/symbols.h"

namespace ceems::metrics {

using common::TimestampMs;

enum class MetricType { kCounter, kGauge, kUntyped };

std::string_view metric_type_name(MetricType type);

// One (labels, timestamp, value) observation. Labels are interned: on the
// scrape→storage hot path a sample carries symbol ids plus a precomputed
// fingerprint, so batching/sharding/series lookup never re-hash strings.
struct Sample {
  InternedLabels labels;
  TimestampMs timestamp_ms = 0;
  double value = 0;
};

// Non-owning sample for batch appends on the zero-copy scrape path: the
// label set lives in a per-target series cache (tsdb/scrape.h) whose
// entries are stable for the duration of the batch, so a scrape's worth
// of samples is a flat vector of {pointer, t, v} — no per-sample label
// vector copies.
struct SampleRef {
  const InternedLabels* labels = nullptr;
  TimestampMs timestamp_ms = 0;
  double value = 0;
};

// One metric within a family: label set (without __name__) plus value.
struct Metric {
  Labels labels;  // family name excluded
  double value = 0;
  // Optional explicit timestamp; 0 means "stamped at scrape time".
  TimestampMs timestamp_ms = 0;
};

// A named group of metrics sharing HELP/TYPE metadata, mirroring one
// exposition-format block.
struct MetricFamily {
  std::string name;
  std::string help;
  MetricType type = MetricType::kUntyped;
  std::vector<Metric> metrics;

  void add(Labels labels, double value, TimestampMs timestamp_ms = 0) {
    metrics.push_back({std::move(labels), value, timestamp_ms});
  }
};

// Validates metric / label names per the Prometheus data model.
bool is_valid_metric_name(std::string_view name);
bool is_valid_label_name(std::string_view name);

// Prometheus staleness marker: a quiet NaN with a reserved payload,
// appended to a series when its target fails to scrape or the series
// disappears from the exposition. The PromQL evaluator treats a marker as
// "series ended here" instead of serving the previous sample for the full
// lookback window. The payload survives Gorilla XOR coding bit-exactly
// (chunk.h), so markers round-trip through storage and snapshots.
inline constexpr uint64_t kStaleNaNBits = 0x7FF0000000000002ULL;
double stale_marker();
bool is_stale_marker(double value);

}  // namespace ceems::metrics
