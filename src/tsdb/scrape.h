// Scrape manager: periodically GETs /metrics from every target (the CEEMS
// exporters on compute nodes), parses the exposition text and ingests the
// samples — Prometheus' pull model. Each target gets the synthetic `up`
// and `scrape_duration_seconds` series, so dead exporters are visible as
// data rather than as silence.
//
// Two driving modes:
//   * scrape_all_once(): synchronous parallel sweep — used by deterministic
//     tests and the simulated-time pipeline (scrape between sim steps);
//   * start()/stop(): background loop sleeping on the injected Clock.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/threadpool.h"
#include "http/client.h"
#include "tsdb/storage.h"

namespace ceems::tsdb {

struct ScrapeTarget {
  std::string url;        // http://host:port/metrics
  Labels labels;          // attached to every sample (instance, hostname...)
  http::BasicAuthConfig auth;
  // Local transport: when set, the scrape calls this instead of HTTP and
  // parses the returned exposition text. Used to drive 1400 simulated
  // exporters in one process (E4) without 1400 listening sockets; the
  // parse/ingest path is byte-identical to the HTTP path. An empty
  // returned string is treated as a failed scrape.
  std::function<std::string()> local_fetch;
};

struct ScrapeConfig {
  int64_t interval_ms = 30 * common::kMillisPerSecond;
  int parallelism = 8;
  int timeout_ms = 5000;
  // Honor timestamps in the exposition text; otherwise stamp at scrape time.
  bool honor_timestamps = false;
};

struct ScrapeStats {
  uint64_t scrapes_total = 0;
  uint64_t scrapes_failed = 0;
  uint64_t samples_ingested = 0;
};

class ScrapeManager {
 public:
  ScrapeManager(StorePtr store, common::ClockPtr clock,
                ScrapeConfig config = {});
  ~ScrapeManager();

  void add_target(ScrapeTarget target);
  std::size_t target_count() const;

  // One synchronous sweep over all targets; returns per-sweep stats.
  ScrapeStats scrape_all_once();

  // Background loop at config.interval_ms.
  void start();
  void stop();

  ScrapeStats stats() const;

 private:
  struct TargetState {
    ScrapeTarget target;
    std::unique_ptr<http::Client> client;
    // Interned once at registration: the per-sweep hot loop merges target
    // labels into each sample by symbol id, and the synthetic up /
    // scrape_duration_seconds label sets are reused with their
    // fingerprints precomputed.
    std::vector<metrics::InternedLabels::SymbolPair> target_syms;
    metrics::InternedLabels up_labels;
    metrics::InternedLabels duration_labels;
  };

  // Scrapes one target; returns samples ingested or -1 on failure.
  int64_t scrape_target(TargetState& state, common::TimestampMs now);

  StorePtr store_;
  common::ClockPtr clock_;
  ScrapeConfig config_;

  mutable std::mutex targets_mu_;
  std::vector<std::unique_ptr<TargetState>> targets_;

  std::atomic<uint64_t> scrapes_total_{0};
  std::atomic<uint64_t> scrapes_failed_{0};
  std::atomic<uint64_t> samples_ingested_{0};

  std::atomic<bool> running_{false};
  std::thread loop_thread_;
};

}  // namespace ceems::tsdb
