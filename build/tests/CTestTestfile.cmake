# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/http_test[1]_include.cmake")
include("/root/repo/build/tests/simfs_test[1]_include.cmake")
include("/root/repo/build/tests/ebpf_test[1]_include.cmake")
include("/root/repo/build/tests/alerts_test[1]_include.cmake")
include("/root/repo/build/tests/node_test[1]_include.cmake")
include("/root/repo/build/tests/slurm_test[1]_include.cmake")
include("/root/repo/build/tests/emissions_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/promql_test[1]_include.cmake")
include("/root/repo/build/tests/scrape_test[1]_include.cmake")
include("/root/repo/build/tests/rules_test[1]_include.cmake")
include("/root/repo/build/tests/longterm_test[1]_include.cmake")
include("/root/repo/build/tests/reldb_test[1]_include.cmake")
include("/root/repo/build/tests/exporter_test[1]_include.cmake")
include("/root/repo/build/tests/apiserver_test[1]_include.cmake")
include("/root/repo/build/tests/lb_test[1]_include.cmake")
include("/root/repo/build/tests/dashboard_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
