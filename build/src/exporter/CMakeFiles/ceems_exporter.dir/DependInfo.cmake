
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exporter/cgroup_collector.cpp" "src/exporter/CMakeFiles/ceems_exporter.dir/cgroup_collector.cpp.o" "gcc" "src/exporter/CMakeFiles/ceems_exporter.dir/cgroup_collector.cpp.o.d"
  "/root/repo/src/exporter/collector.cpp" "src/exporter/CMakeFiles/ceems_exporter.dir/collector.cpp.o" "gcc" "src/exporter/CMakeFiles/ceems_exporter.dir/collector.cpp.o.d"
  "/root/repo/src/exporter/ebpf_collector.cpp" "src/exporter/CMakeFiles/ceems_exporter.dir/ebpf_collector.cpp.o" "gcc" "src/exporter/CMakeFiles/ceems_exporter.dir/ebpf_collector.cpp.o.d"
  "/root/repo/src/exporter/emissions_collector.cpp" "src/exporter/CMakeFiles/ceems_exporter.dir/emissions_collector.cpp.o" "gcc" "src/exporter/CMakeFiles/ceems_exporter.dir/emissions_collector.cpp.o.d"
  "/root/repo/src/exporter/exporter.cpp" "src/exporter/CMakeFiles/ceems_exporter.dir/exporter.cpp.o" "gcc" "src/exporter/CMakeFiles/ceems_exporter.dir/exporter.cpp.o.d"
  "/root/repo/src/exporter/gpu_collector.cpp" "src/exporter/CMakeFiles/ceems_exporter.dir/gpu_collector.cpp.o" "gcc" "src/exporter/CMakeFiles/ceems_exporter.dir/gpu_collector.cpp.o.d"
  "/root/repo/src/exporter/gpu_map_collector.cpp" "src/exporter/CMakeFiles/ceems_exporter.dir/gpu_map_collector.cpp.o" "gcc" "src/exporter/CMakeFiles/ceems_exporter.dir/gpu_map_collector.cpp.o.d"
  "/root/repo/src/exporter/ipmi_collector.cpp" "src/exporter/CMakeFiles/ceems_exporter.dir/ipmi_collector.cpp.o" "gcc" "src/exporter/CMakeFiles/ceems_exporter.dir/ipmi_collector.cpp.o.d"
  "/root/repo/src/exporter/node_collector.cpp" "src/exporter/CMakeFiles/ceems_exporter.dir/node_collector.cpp.o" "gcc" "src/exporter/CMakeFiles/ceems_exporter.dir/node_collector.cpp.o.d"
  "/root/repo/src/exporter/rapl_collector.cpp" "src/exporter/CMakeFiles/ceems_exporter.dir/rapl_collector.cpp.o" "gcc" "src/exporter/CMakeFiles/ceems_exporter.dir/rapl_collector.cpp.o.d"
  "/root/repo/src/exporter/self_collector.cpp" "src/exporter/CMakeFiles/ceems_exporter.dir/self_collector.cpp.o" "gcc" "src/exporter/CMakeFiles/ceems_exporter.dir/self_collector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ceems_common.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ceems_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/ceems_http.dir/DependInfo.cmake"
  "/root/repo/build/src/simfs/CMakeFiles/ceems_simfs.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/ceems_node.dir/DependInfo.cmake"
  "/root/repo/build/src/emissions/CMakeFiles/ceems_emissions.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
