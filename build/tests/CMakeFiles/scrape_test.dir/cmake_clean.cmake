file(REMOVE_RECURSE
  "CMakeFiles/scrape_test.dir/scrape_test.cpp.o"
  "CMakeFiles/scrape_test.dir/scrape_test.cpp.o.d"
  "scrape_test"
  "scrape_test.pdb"
  "scrape_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
