// Long-term store — the Thanos analogue of Fig. 1. The hot TSDB keeps raw
// high-resolution samples on "local disk"; this store replicates them,
// downsamples data older than a configurable horizon to a coarser
// resolution (keeping the last sample per bucket, which is exact for
// counters), and enforces the long retention the API server's aggregate
// queries need. It implements Queryable by merging its downsampled history
// with the raw tail, so the PromQL engine and the HTTP API work unchanged
// on top of it.
#pragma once

#include <memory>
#include <mutex>

#include "tsdb/storage.h"

namespace ceems::tsdb {

struct LongTermConfig {
  // Raw samples older than this get downsampled on the next compaction.
  int64_t downsample_after_ms = 2 * common::kMillisPerHour;
  // Bucket width of downsampled data.
  int64_t resolution_ms = 5 * common::kMillisPerMinute;
  // Total retention of downsampled history (0 = infinite).
  int64_t retention_ms = 0;
};

// Counters for how select() served its views: straddling series are
// spliced slice-wise (raw chunks stay compressed), everything else passes
// through untouched. spliced_points_copied counts samples that had to be
// decoded and filtered because a raw slice overlapped the downsampled
// history — zero under the compaction invariant, so a nonzero value flags
// a horizon bug.
struct LongTermSelectStats {
  uint64_t chunk_backed_views = 0;
  uint64_t spliced_views = 0;
  uint64_t spliced_points_copied = 0;
};

class LongTermStore final : public Queryable {
 public:
  explicit LongTermStore(LongTermConfig config = {});

  // Pulls new samples from the hot store (everything newer than the last
  // sync cursor). Returns samples copied.
  std::size_t sync_from(const TimeSeriesStore& hot);

  // Downsamples data older than the horizon and applies retention.
  void compact(common::TimestampMs now);

  std::vector<SeriesView> select(const std::vector<LabelMatcher>& matchers,
                                 TimestampMs min_t,
                                 TimestampMs max_t) const override;

  // Concatenated raw + downsampled shard versions, so query-result cache
  // entries over this store invalidate when either side mutates.
  std::vector<uint64_t> version_signature() const override;

  StorageStats stats() const;
  StorageStats raw_stats() const { return raw_.stats(); }
  StorageStats downsampled_stats() const { return downsampled_.stats(); }
  LongTermSelectStats select_stats() const;

 private:
  LongTermConfig config_;
  mutable std::mutex mu_;
  TimeSeriesStore raw_;
  TimeSeriesStore downsampled_;
  TimestampMs sync_cursor_ = -1;
  TimestampMs downsample_cursor_ = 0;  // raw data before this is gone
  mutable LongTermSelectStats select_stats_;  // guarded by mu_
};

}  // namespace ceems::tsdb
