// Blocking HTTP/1.1 client with optional connection reuse. Used by the
// scrape manager (GET /metrics against every node), the LB (proxying to
// Prometheus backends) and the API server (ownership checks).
//
// Failure handling: every request can be retried with exponential backoff
// and jitter under a cumulative backoff budget (RetryConfig). Transport
// errors always qualify; 429/5xx responses qualify when
// retry.retry_on_status is set. Backoff sleeps on the injected clock —
// with no clock, retries are immediate, which is what the deterministic
// simulated-time pipeline uses.
#pragma once

#include <atomic>
#include <optional>
#include <string>

#include "common/clock.h"
#include "common/rng.h"
#include "faults/fault.h"
#include "http/message.h"

namespace ceems::http {

struct RetryConfig {
  int max_retries = 0;            // extra attempts after the first
  int initial_backoff_ms = 200;   // doubled (by multiplier) per retry
  double backoff_multiplier = 2.0;
  double jitter = 0.2;            // backoff randomized by +/- this fraction
  int64_t retry_budget_ms = 10000;  // cumulative backoff cap per request
  // Retry 429/5xx responses, not just transport errors.
  bool retry_on_status = true;

  static bool retryable_status(int status) {
    return status == 429 || status == 500 || status == 502 ||
           status == 503 || status == 504;
  }
};

struct ClientConfig {
  int connect_timeout_ms = 2000;
  int io_timeout_ms = 5000;
  BasicAuthConfig basic_auth;
  RetryConfig retry;
  // Backoff sleeps run on this clock; nullptr retries without sleeping.
  common::ClockPtr clock;
  // Chaos injection (faults/fault.h); empty in production.
  faults::FaultHook fault_hook;
};

// Result of a request; `ok` is false on transport errors (connect refused,
// timeout, malformed response, truncated body), with `error` describing
// the failure. HTTP error statuses are NOT transport errors.
struct FetchResult {
  bool ok = false;
  std::string error;
  Response response;
  int attempts = 1;  // 1 + retries spent on this request
};

// Counters across the client's lifetime (observable as the
// ceems_http_retries_total self-metric on scrape targets).
struct ClientStats {
  uint64_t requests = 0;
  uint64_t retries = 0;
  uint64_t faults_injected = 0;
};

class Client {
 public:
  explicit Client(ClientConfig config = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;

  // url must be http://host:port/path?query
  FetchResult get(const std::string& url, const HeaderMap& headers = {});
  FetchResult post(const std::string& url, const std::string& body,
                   const std::string& content_type = "application/json",
                   const HeaderMap& headers = {});
  // Retrying wrapper around request_once().
  FetchResult request(const std::string& method, const std::string& url,
                      const std::string& body, const HeaderMap& headers);

  ClientStats stats() const;

 private:
  struct ParsedUrl {
    std::string host;
    uint16_t port = 80;
    std::string target;
  };
  static std::optional<ParsedUrl> parse_url(const std::string& url);
  int connect_to(const ParsedUrl& url, std::string& error);
  // One attempt, no retries.
  FetchResult request_once(const std::string& method, const std::string& url,
                           const std::string& body, const HeaderMap& headers);

  ClientConfig config_;
  // Kept-alive connection to the most recent host:port.
  int cached_fd_ = -1;
  std::string cached_endpoint_;
  // Deterministic backoff jitter (no random_device: reproducible tests).
  common::Rng jitter_rng_{0xCEE5C1E27ULL};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> faults_injected_{0};
};

}  // namespace ceems::http
