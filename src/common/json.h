// Minimal JSON value model, parser and serializer. The CEEMS API server and
// load balancer speak JSON over HTTP; this is the only JSON implementation
// in the repo (no external dependency).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace ceems::common {

class Json;
using JsonArray = std::vector<Json>;
// std::map keeps object keys sorted, which makes serialized output
// deterministic — handy for golden tests.
using JsonObject = std::map<std::string, Json>;

class JsonParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(int value) : type_(Type::kNumber), number_(value) {}
  Json(int64_t value) : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  Json(uint64_t value) : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  Json(double value) : type_(Type::kNumber), number_(value) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}
  Json(JsonArray value)
      : type_(Type::kArray), array_(std::make_shared<JsonArray>(std::move(value))) {}
  Json(JsonObject value)
      : type_(Type::kObject),
        object_(std::make_shared<JsonObject>(std::move(value))) {}

  static Json array() { return Json(JsonArray{}); }
  static Json object() { return Json(JsonObject{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { check(Type::kBool); return bool_; }
  double as_number() const { check(Type::kNumber); return number_; }
  int64_t as_int() const { check(Type::kNumber); return static_cast<int64_t>(number_); }
  const std::string& as_string() const { check(Type::kString); return string_; }
  const JsonArray& as_array() const { check(Type::kArray); return *array_; }
  JsonArray& as_array() { check(Type::kArray); return *array_; }
  const JsonObject& as_object() const { check(Type::kObject); return *object_; }
  JsonObject& as_object() { check(Type::kObject); return *object_; }

  // Object accessors. at() throws on a missing key; get() returns nullopt.
  const Json& at(const std::string& key) const;
  std::optional<Json> get(const std::string& key) const;
  Json& operator[](const std::string& key);
  void push_back(Json value);
  std::size_t size() const;

  // Convenience typed getters with defaults, for config-style access.
  std::string get_string(const std::string& key, std::string fallback = "") const;
  double get_number(const std::string& key, double fallback = 0) const;
  int64_t get_int(const std::string& key, int64_t fallback = 0) const;
  bool get_bool(const std::string& key, bool fallback = false) const;

  std::string dump(int indent = -1) const;
  static Json parse(std::string_view text);  // throws JsonParseError

  bool operator==(const Json& other) const;

 private:
  void check(Type expected) const {
    if (type_ != expected) throw std::runtime_error("json: wrong type access");
  }
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

std::string json_escape(std::string_view text);

}  // namespace ceems::common
