file(REMOVE_RECURSE
  "libceems_node.a"
)
