file(REMOVE_RECURSE
  "CMakeFiles/bench_exporter.dir/bench_exporter.cpp.o"
  "CMakeFiles/bench_exporter.dir/bench_exporter.cpp.o.d"
  "bench_exporter"
  "bench_exporter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exporter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
