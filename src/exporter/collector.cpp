#include "exporter/collector.h"

// Interface-only translation unit (keeps the vtable anchored here).
namespace ceems::exporter {}
