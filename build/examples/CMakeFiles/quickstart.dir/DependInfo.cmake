
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ceems_core.dir/DependInfo.cmake"
  "/root/repo/build/src/exporter/CMakeFiles/ceems_exporter.dir/DependInfo.cmake"
  "/root/repo/build/src/lb/CMakeFiles/ceems_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/apiserver/CMakeFiles/ceems_apiserver.dir/DependInfo.cmake"
  "/root/repo/build/src/slurm/CMakeFiles/ceems_slurm.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/ceems_node.dir/DependInfo.cmake"
  "/root/repo/build/src/simfs/CMakeFiles/ceems_simfs.dir/DependInfo.cmake"
  "/root/repo/build/src/emissions/CMakeFiles/ceems_emissions.dir/DependInfo.cmake"
  "/root/repo/build/src/reldb/CMakeFiles/ceems_reldb.dir/DependInfo.cmake"
  "/root/repo/build/src/dashboard/CMakeFiles/ceems_dashboard.dir/DependInfo.cmake"
  "/root/repo/build/src/tsdb/CMakeFiles/ceems_tsdb.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ceems_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/ceems_http.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ceems_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
