// Differential suite for the streaming range evaluator: every PromQL
// function evaluated over randomised series — staleness markers, counter
// resets, NaN values, irregular scrape intervals, series that appear and
// disappear mid-range — through both the streaming path and the per-step
// oracle, asserting bit-identical Values across serial/pooled execution
// and hot-store/long-term sources. Plus the decode-count regression: a
// streaming range query decodes each overlapping chunk at most once.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/threadpool.h"
#include "metrics/model.h"
#include "tsdb/longterm.h"
#include "tsdb/promql_eval.h"
#include "tsdb/storage.h"

namespace ceems::tsdb {
namespace {

using metrics::Labels;
using promql::Engine;
using promql::EngineOptions;

uint64_t bits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

// ---------- randomised fixture data ----------

constexpr int64_t kStep = 15000;  // 15 s nominal scrape interval
constexpr TimestampMs kDataEnd = 120 * 60 * 1000;  // 2 h of data

// Random gauges and counters with enough samples per series to span
// multiple sealed chunks (120 samples/chunk; ~480 samples per series
// here). Gauges take NaN excursions and staleness markers; counters reset.
// Some series start late or end early, so selectors see series appear and
// disappear across the range.
std::shared_ptr<TimeSeriesStore> make_random_store(uint64_t seed) {
  common::Rng rng(seed);
  auto store = std::make_shared<TimeSeriesStore>();
  for (int h = 0; h < 3; ++h) {
    for (int s = 0; s < 4; ++s) {
      Labels gauge_labels = Labels{{"hostname", "n" + std::to_string(h)},
                                   {"uuid", std::to_string(s)}}
                                .with_name("power_watts");
      Labels counter_labels = Labels{{"hostname", "n" + std::to_string(h)},
                                     {"uuid", std::to_string(s)}}
                                  .with_name("energy_joules_total");
      TimestampMs start = rng.chance(0.25)
                              ? rng.uniform_int(0, kDataEnd / 3)
                              : 0;
      TimestampMs stop = rng.chance(0.25)
                             ? rng.uniform_int(2 * kDataEnd / 3, kDataEnd)
                             : kDataEnd;
      double gauge = rng.uniform(50, 300);
      double counter = 0;
      for (TimestampMs t = start; t <= stop;) {
        gauge += rng.normal(0, 5);
        double gauge_value = gauge;
        if (rng.chance(0.01)) gauge_value = std::nan("");
        if (rng.chance(0.01)) gauge_value = metrics::stale_marker();
        store->append(gauge_labels, t, gauge_value);

        counter += rng.uniform(0, 40);
        if (rng.chance(0.01)) counter = rng.uniform(0, 10);  // reset
        double counter_value =
            rng.chance(0.005) ? metrics::stale_marker() : counter;
        store->append(counter_labels, t, counter_value);

        // Irregular interval: jitter plus occasional scrape gaps.
        t += kStep + rng.uniform_int(-2000, 2000);
        if (rng.chance(0.03)) t += kStep * rng.uniform_int(2, 8);
      }
    }
  }
  return store;
}

// Long-term store built from the hot store, compacted so roughly the
// first half is downsampled — plenty of series straddle the horizon.
std::shared_ptr<LongTermStore> make_longterm(const TimeSeriesStore& hot) {
  LongTermConfig config;
  config.downsample_after_ms = kDataEnd / 2;
  config.resolution_ms = 5 * 60 * 1000;
  auto lt = std::make_shared<LongTermStore>(config);
  lt->sync_from(hot);
  lt->compact(kDataEnd);
  return lt;
}

// The query corpus: every range function, selectors (with offset, regex
// matchers, stale-sensitive instant lookups), aggregations, binary ops,
// and the call zoo the evaluator supports.
std::vector<std::string> query_corpus() {
  std::vector<std::string> queries = {
      "power_watts",
      "power_watts{hostname=\"n1\"}",
      "power_watts{hostname=~\"n[01]\"}",
      "power_watts offset 10m",
      "sum(power_watts)",
      "sum by (hostname) (power_watts)",
      "avg by (hostname) (power_watts)",
      "topk(3, power_watts)",
      "quantile(0.9, power_watts)",
      "power_watts > 150",
      "power_watts * 2 + 1",
      "power_watts / on(hostname, uuid) energy_joules_total",
      "sum by (hostname) (rate(energy_joules_total[2m]))",
      "label_replace(power_watts, \"node\", \"$1\", \"hostname\", "
      "\"n(.*)\")",
      "predict_linear(power_watts[5m], 600)",
      "absent(power_watts{hostname=\"nope\"})",
      "clamp(power_watts, 100, 200)",
      "scalar(sum(power_watts)) * 2",
      "-power_watts",
  };
  const char* range_funcs[] = {
      "rate",          "irate",           "increase",
      "delta",         "idelta",          "deriv",
      "resets",        "changes",         "avg_over_time",
      "sum_over_time", "min_over_time",   "max_over_time",
      "count_over_time", "last_over_time", "stddev_over_time"};
  for (const char* func : range_funcs) {
    queries.push_back(std::string(func) + "(power_watts[2m])");
    queries.push_back(std::string(func) + "(energy_joules_total[4m])");
    queries.push_back("sum by (hostname) (" + std::string(func) +
                      "(power_watts[90s]))");
    queries.push_back(std::string(func) +
                      "(power_watts[3m] offset 5m)");
  }
  return queries;
}

void expect_bit_identical(const std::vector<Series>& oracle,
                          const std::vector<Series>& streaming,
                          const std::string& query) {
  SCOPED_TRACE("query: " + query);
  ASSERT_EQ(oracle.size(), streaming.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    SCOPED_TRACE("series " + std::to_string(i) + ": " +
                 oracle[i].labels.to_string());
    ASSERT_EQ(oracle[i].labels, streaming[i].labels);
    ASSERT_EQ(oracle[i].samples.size(), streaming[i].samples.size());
    for (std::size_t k = 0; k < oracle[i].samples.size(); ++k) {
      ASSERT_EQ(oracle[i].samples[k].t, streaming[i].samples[k].t)
          << "sample " << k;
      ASSERT_EQ(bits(oracle[i].samples[k].v), bits(streaming[i].samples[k].v))
          << "sample " << k << ": oracle " << oracle[i].samples[k].v
          << " vs streaming " << streaming[i].samples[k].v;
    }
  }
}

Engine make_engine(bool streaming, std::shared_ptr<common::ThreadPool> pool) {
  EngineOptions options;
  options.streaming_range = streaming;
  options.pool = std::move(pool);
  options.min_parallel_steps = 4;  // force the chunked path in pooled runs
  options.query_cache_capacity = 0;
  return Engine(options);
}

void run_corpus(const Queryable& source) {
  auto pool = std::make_shared<common::ThreadPool>(4, "diff-eval");
  Engine oracle_serial = make_engine(false, nullptr);
  Engine stream_serial = make_engine(true, nullptr);
  Engine stream_pooled = make_engine(true, pool);
  Engine oracle_pooled = make_engine(false, pool);

  constexpr TimestampMs kStart = 60 * 1000;
  constexpr int64_t kQueryStep = 47 * 1000;  // off-grid on purpose
  for (const std::string& query : query_corpus()) {
    auto expr = promql::parse(query);
    auto oracle = oracle_serial.eval_range(source, expr, kStart, kDataEnd,
                                           kQueryStep);
    auto streaming = stream_serial.eval_range(source, expr, kStart, kDataEnd,
                                              kQueryStep);
    expect_bit_identical(oracle, streaming, query + " [serial]");
    auto streaming_mt = stream_pooled.eval_range(source, expr, kStart,
                                                 kDataEnd, kQueryStep);
    expect_bit_identical(oracle, streaming_mt, query + " [pooled stream]");
    auto oracle_mt = oracle_pooled.eval_range(source, expr, kStart, kDataEnd,
                                              kQueryStep);
    expect_bit_identical(oracle, oracle_mt, query + " [pooled oracle]");
  }
}

TEST(PromqlDifferential, HotStoreAllFunctions) {
  for (uint64_t seed : {11u, 42u, 1337u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto store = make_random_store(seed);
    run_corpus(*store);
  }
}

TEST(PromqlDifferential, LongTermStoreAllFunctions) {
  for (uint64_t seed : {7u, 99u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto store = make_random_store(seed);
    auto lt = make_longterm(*store);
    run_corpus(*lt);
  }
}

// A stale marker as the newest sample must drop the series from instant
// selectors on both paths — checked explicitly at the step grid around the
// marker, not just via the random sweep.
TEST(PromqlDifferential, StalenessEndsSeries) {
  auto store = std::make_shared<TimeSeriesStore>();
  Labels labels = Labels{{"hostname", "n0"}}.with_name("m");
  for (int i = 0; i < 200; ++i) {
    double v = i == 150 ? metrics::stale_marker() : i * 1.0;
    store->append(labels, int64_t{i} * kStep, v);
  }
  Engine oracle = make_engine(false, nullptr);
  Engine streaming = make_engine(true, nullptr);
  auto expr = promql::parse("m");
  auto a = oracle.eval_range(*store, expr, 0, 200 * kStep, kStep);
  auto b = streaming.eval_range(*store, expr, 0, 200 * kStep, kStep);
  expect_bit_identical(a, b, "staleness instant");
  // The marker step itself must be absent.
  ASSERT_EQ(a.size(), 1u);
  for (const auto& sample : a[0].samples) {
    EXPECT_NE(sample.t, int64_t{150} * kStep);
  }

  auto rate_expr = promql::parse("rate(m[2m])");
  auto ra = oracle.eval_range(*store, rate_expr, 0, 200 * kStep, kStep);
  auto rb = streaming.eval_range(*store, rate_expr, 0, 200 * kStep, kStep);
  expect_bit_identical(ra, rb, "staleness rate");
}

// ---------- decode-count regression ----------

// Each sealed chunk overlapping a streaming range query decodes at most
// once; the per-step oracle re-decodes per step and must sit far above
// that. This is the O(steps x window) -> O(samples) claim, measured.
TEST(PromqlDecodeCount, AtMostOncePerRangeQuery) {
  auto store = std::make_shared<TimeSeriesStore>();
  constexpr int kSeries = 8;
  constexpr int kSamples = 600;  // 5 sealed chunks per series
  for (int s = 0; s < kSeries; ++s) {
    Labels labels = Labels{{"uuid", std::to_string(s)}}.with_name("m");
    for (int i = 0; i < kSamples; ++i) {
      store->append(labels, int64_t{i} * kStep, i * 1.0);
    }
  }
  std::size_t sealed_chunks = 0;
  for (const auto& view :
       store->select({}, 0, int64_t{kSamples} * kStep)) {
    for (const auto& slice : view.slices) {
      if (slice.chunk) ++sealed_chunks;
    }
  }
  ASSERT_GE(sealed_chunks, kSeries * 4u);

  auto expr = promql::parse("sum(rate(m[5m]))");
  constexpr TimestampMs kEnd = int64_t{kSamples} * kStep;

  Engine streaming = make_engine(true, nullptr);
  uint64_t before = chunk_decode_count();
  auto result = streaming.eval_range(*store, expr, 0, kEnd, kStep);
  uint64_t streaming_decodes = chunk_decode_count() - before;
  ASSERT_FALSE(result.empty());
  // One select() pass may decode the two boundary chunks per series inside
  // the store, then the query decodes each distinct chunk at most once.
  EXPECT_LE(streaming_decodes, sealed_chunks + 2 * kSeries);

  Engine oracle = make_engine(false, nullptr);
  before = chunk_decode_count();
  auto oracle_result = oracle.eval_range(*store, expr, 0, kEnd, kStep);
  uint64_t oracle_decodes = chunk_decode_count() - before;
  expect_bit_identical(oracle_result, result, "decode-count query");

  // The headline: >= 5x fewer decodes than the per-step evaluator.
  EXPECT_GE(oracle_decodes, 5 * std::max<uint64_t>(streaming_decodes, 1));
}

// Pooled streaming must hold the same decode bound: the parallel prefill
// decodes each distinct chunk once, and step-chunk evaluators share the
// prepared arrays without touching chunks again.
TEST(PromqlDecodeCount, PooledStreamingSameBound) {
  auto store = std::make_shared<TimeSeriesStore>();
  for (int s = 0; s < 4; ++s) {
    Labels labels = Labels{{"uuid", std::to_string(s)}}.with_name("m");
    for (int i = 0; i < 600; ++i) {
      store->append(labels, int64_t{i} * kStep, i * 1.0);
    }
  }
  std::size_t sealed_chunks = 0;
  for (const auto& view : store->select({}, 0, int64_t{600} * kStep)) {
    for (const auto& slice : view.slices) {
      if (slice.chunk) ++sealed_chunks;
    }
  }
  auto pool = std::make_shared<common::ThreadPool>(4, "decode-test");
  Engine streaming = make_engine(true, pool);
  auto expr = promql::parse("avg_over_time(m[10m])");
  uint64_t before = chunk_decode_count();
  auto result =
      streaming.eval_range(*store, expr, 0, int64_t{600} * kStep, kStep);
  uint64_t decodes = chunk_decode_count() - before;
  ASSERT_FALSE(result.empty());
  EXPECT_LE(decodes, sealed_chunks + 2 * 4);
}

}  // namespace
}  // namespace ceems::tsdb
