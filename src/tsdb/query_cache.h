// Bounded LRU cache for PromQL range-query results, keyed on
// (query text, start, end, step). Every entry records the source's
// version signature (per-shard write counters) at evaluation time; a
// lookup whose current signature differs sees the entry dropped — i.e. a
// write to any storage shard invalidates the results computed over it.
// The signature is captured *before* evaluation, so a write racing the
// evaluation leaves a stale signature behind and the entry self-evicts on
// its next lookup; the cache can serve stale data only never.
//
// The cache is lock-striped: a key lives in the stripe its hash selects,
// so concurrent query threads hitting different keys take different
// mutexes instead of serializing on one global lock. Stripe count scales
// with capacity (capacity/8, capped at 8) so small caches keep exact
// global LRU order; striped caches evict LRU per stripe, which
// approximates global LRU with the usual striping error bound.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "tsdb/storage.h"

namespace ceems::tsdb::promql {

struct QueryCacheKey {
  std::string query;
  TimestampMs start = 0;
  TimestampMs end = 0;
  int64_t step_ms = 0;

  bool operator==(const QueryCacheKey& other) const {
    return query == other.query && start == other.start &&
           end == other.end && step_ms == other.step_ms;
  }
  // Canonical string form used as the hash-map key.
  std::string encode() const;
};

struct QueryCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidations = 0;  // entries dropped on signature mismatch
  uint64_t evictions = 0;      // entries dropped by LRU capacity
  std::size_t size = 0;        // current entry count
};

class QueryCache {
 public:
  explicit QueryCache(std::size_t capacity);

  // Returns the cached matrix when present and its recorded version
  // signature equals `versions`; a mismatched entry is dropped.
  std::optional<std::vector<Series>> lookup(
      const QueryCacheKey& key, const std::vector<uint64_t>& versions);

  // Stores (replacing any entry for `key`) and evicts LRU past capacity.
  void insert(const QueryCacheKey& key, std::vector<uint64_t> versions,
              std::vector<Series> result);

  QueryCacheStats stats() const;
  void clear();

 private:
  struct Entry {
    std::string encoded_key;
    std::vector<uint64_t> versions;
    std::vector<Series> result;
  };

  struct Stripe {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> by_key;
    QueryCacheStats stats;
  };

  Stripe& stripe_of(const std::string& encoded) const;

  std::size_t capacity_;
  std::size_t stripe_count_ = 1;
  std::size_t stripe_capacity_ = 0;
  std::unique_ptr<Stripe[]> stripes_;
};

}  // namespace ceems::tsdb::promql
