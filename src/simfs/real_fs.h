// RealFs — the Fs interface over the actual host filesystem. Lets every
// collector written against the simulator read the real /proc, /sys and
// /sys/fs/cgroup of the machine: the CLI exporter (cli/ceems_exporter)
// uses it to serve genuine host metrics.
#pragma once

#include "simfs/pseudo_fs.h"

namespace ceems::simfs {

class RealFs final : public Fs {
 public:
  // Optional prefix prepended to every path (chroot-style; tests point it
  // at a staging directory).
  explicit RealFs(std::string root = "");

  std::optional<std::string> read(const std::string& path) const override;
  bool exists(const std::string& path) const override;
  bool is_dir(const std::string& path) const override;
  std::vector<std::string> list_dir(const std::string& path) const override;

 private:
  std::string resolve(const std::string& path) const;
  std::string root_;
};

}  // namespace ceems::simfs
