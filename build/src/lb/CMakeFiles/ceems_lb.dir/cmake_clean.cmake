file(REMOVE_RECURSE
  "CMakeFiles/ceems_lb.dir/load_balancer.cpp.o"
  "CMakeFiles/ceems_lb.dir/load_balancer.cpp.o.d"
  "CMakeFiles/ceems_lb.dir/query_introspect.cpp.o"
  "CMakeFiles/ceems_lb.dir/query_introspect.cpp.o.d"
  "libceems_lb.a"
  "libceems_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceems_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
