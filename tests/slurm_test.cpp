#include <gtest/gtest.h>

#include "slurm/cluster_sim.h"

namespace ceems::slurm {
namespace {

using common::make_sim_clock;

JobRequest basic_request(const std::string& user, int nodes, int cpus,
                         int64_t duration_ms) {
  JobRequest request;
  request.name = "test";
  request.user = user;
  request.account = "prj0";
  request.partition = "cpu";
  request.num_nodes = nodes;
  request.cpus_per_node = cpus;
  request.memory_per_node_bytes = 4LL << 30;
  request.true_duration_ms = duration_ms;
  request.walltime_limit_ms = duration_ms * 2;
  request.failure_probability = 0;
  request.behavior.cpu_util_jitter = 0;
  return request;
}

class SchedulerTest : public ::testing::Test {
 protected:
  // Start the clock away from 0: timestamp 0 is the "never happened"
  // sentinel in accounting records.
  SchedulerTest()
      : clock_(make_sim_clock(1000000)), cluster_("test", clock_, 1) {
    cluster_.add_partition("cpu", "c", 2, node::make_intel_cpu_node);
    scheduler_ = std::make_unique<Scheduler>(cluster_, dbd_, 99);
  }

  void tick(int64_t dt_ms) {
    scheduler_->step();
    cluster_.step_nodes(dt_ms);
    clock_->advance(dt_ms);
  }

  std::shared_ptr<common::SimClock> clock_;
  Cluster cluster_;
  SlurmDbd dbd_;
  std::unique_ptr<Scheduler> scheduler_;
};

TEST_F(SchedulerTest, JobLifecycle) {
  int64_t id = scheduler_->submit(basic_request("alice", 1, 10, 60000));
  EXPECT_EQ(dbd_.job(id)->state, JobState::kPending);

  tick(1000);
  EXPECT_EQ(dbd_.job(id)->state, JobState::kRunning);
  EXPECT_EQ(scheduler_->running_count(), 1u);
  // The workload exists on the assigned node.
  Job job = *dbd_.job(id);
  ASSERT_EQ(job.hostnames.size(), 1u);
  EXPECT_TRUE(cluster_.node(job.hostnames[0])->has_workload(id));

  for (int i = 0; i < 70; ++i) tick(1000);
  EXPECT_EQ(dbd_.job(id)->state, JobState::kCompleted);
  EXPECT_FALSE(cluster_.node(job.hostnames[0])->has_workload(id));
  EXPECT_GT(dbd_.job(id)->end_time_ms, dbd_.job(id)->start_time_ms);
}

TEST_F(SchedulerTest, NeverOversubscribesCpus) {
  // Each node has 40 CPUs; submit many 12-cpu jobs.
  for (int i = 0; i < 12; ++i) {
    scheduler_->submit(basic_request("bob", 1, 12, 600000));
  }
  tick(1000);
  for (const auto& node : cluster_.all_nodes()) {
    EXPECT_LE(node->allocated_cpus(), node->spec().total_cpus());
  }
  // 2 nodes × floor(40/12)=3 jobs run; the rest queue.
  EXPECT_EQ(scheduler_->running_count(), 6u);
  EXPECT_EQ(scheduler_->pending_count(), 6u);
}

TEST_F(SchedulerTest, QueuedJobsStartWhenResourcesFree) {
  for (int i = 0; i < 12; ++i) {
    scheduler_->submit(basic_request("bob", 1, 12, 30000));
  }
  for (int i = 0; i < 120; ++i) tick(1000);
  EXPECT_EQ(dbd_.count_in_state(JobState::kCompleted), 12u);
}

TEST_F(SchedulerTest, MultiNodeJobGetsDistinctHosts) {
  int64_t id = scheduler_->submit(basic_request("carol", 2, 40, 60000));
  tick(1000);
  Job job = *dbd_.job(id);
  ASSERT_EQ(job.hostnames.size(), 2u);
  EXPECT_NE(job.hostnames[0], job.hostnames[1]);
  for (const auto& hostname : job.hostnames) {
    EXPECT_TRUE(cluster_.node(hostname)->has_workload(id));
  }
}

TEST_F(SchedulerTest, OversizedRequestRejected) {
  EXPECT_THROW(scheduler_->submit(basic_request("dave", 3, 40, 1000)),
               std::invalid_argument);  // only 2 nodes exist
  EXPECT_THROW(scheduler_->submit(basic_request("dave", 1, 100, 1000)),
               std::invalid_argument);  // 100 cpus > 40
  JobRequest bad_partition = basic_request("dave", 1, 1, 1000);
  bad_partition.partition = "nope";
  EXPECT_THROW(scheduler_->submit(bad_partition), std::invalid_argument);
}

TEST_F(SchedulerTest, CancelPendingAndRunning) {
  int64_t running = scheduler_->submit(basic_request("eve", 2, 40, 600000));
  tick(1000);
  // Fills both nodes; next job queues.
  int64_t pending = scheduler_->submit(basic_request("eve", 1, 40, 600000));
  tick(1000);
  EXPECT_EQ(dbd_.job(pending)->state, JobState::kPending);

  EXPECT_TRUE(scheduler_->cancel(pending));
  EXPECT_EQ(dbd_.job(pending)->state, JobState::kCancelled);
  EXPECT_TRUE(scheduler_->cancel(running));
  EXPECT_EQ(dbd_.job(running)->state, JobState::kCancelled);
  EXPECT_FALSE(scheduler_->cancel(99999));
  tick(1000);
  EXPECT_EQ(scheduler_->running_count(), 0u);
}

TEST_F(SchedulerTest, TimeoutWhenWalltimeExceeded) {
  JobRequest request = basic_request("frank", 1, 4, 100000);
  request.walltime_limit_ms = 50000;  // wall < true duration
  int64_t id = scheduler_->submit(request);
  for (int i = 0; i < 60; ++i) tick(1000);
  EXPECT_EQ(dbd_.job(id)->state, JobState::kTimeout);
  // Ran until the walltime wall, not the true duration.
  EXPECT_NEAR(static_cast<double>(dbd_.job(id)->elapsed_ms(0)), 50000.0,
              2000.0);
}

TEST_F(SchedulerTest, BackfillFillsBehindBlockedHead) {
  // Fill both nodes with a long job.
  scheduler_->submit(basic_request("head", 2, 40, 300000));
  tick(1000);
  // Head of queue needs both nodes -> blocked.
  int64_t blocked = scheduler_->submit(basic_request("head", 2, 40, 300000));
  // Short small job can backfill (fits in leftover? nodes are full).
  tick(1000);
  EXPECT_EQ(dbd_.job(blocked)->state, JobState::kPending);
  EXPECT_EQ(scheduler_->running_count(), 1u);
}

TEST_F(SchedulerTest, GpuBindingExclusive) {
  Cluster gpu_cluster("gpu", clock_, 2);
  gpu_cluster.add_partition("gpu", "g", 1, node::make_v100_node);
  SlurmDbd dbd;
  Scheduler scheduler(gpu_cluster, dbd, 5);

  JobRequest request = basic_request("gina", 1, 8, 600000);
  request.partition = "gpu";
  request.gpus_per_node = 2;
  int64_t first = scheduler.submit(request);
  int64_t second = scheduler.submit(request);
  scheduler.step();

  Job job_a = *dbd.job(first);
  Job job_b = *dbd.job(second);
  ASSERT_EQ(job_a.gpu_ordinals_per_node[0].size(), 2u);
  ASSERT_EQ(job_b.gpu_ordinals_per_node[0].size(), 2u);
  // All four V100s bound, no overlap.
  std::set<int> bound;
  for (int g : job_a.gpu_ordinals_per_node[0]) bound.insert(g);
  for (int g : job_b.gpu_ordinals_per_node[0]) bound.insert(g);
  EXPECT_EQ(bound.size(), 4u);

  // A third 2-GPU job must wait.
  scheduler.submit(request);
  scheduler.step();
  EXPECT_EQ(scheduler.pending_count(), 1u);
}

TEST(Fairshare, LightUserJumpsAheadOfHeavyUser) {
  auto clock = make_sim_clock(1000000);
  Cluster cluster("fs", clock, 1);
  cluster.add_partition("cpu", "c", 1, node::make_intel_cpu_node);  // 40 cpus
  SlurmDbd dbd;
  SchedulerConfig config;
  config.fairshare = true;
  Scheduler scheduler(cluster, dbd, 7, config);

  auto tick = [&](int64_t dt_ms) {
    scheduler.step();
    cluster.step_nodes(dt_ms);
    clock->advance(dt_ms);
  };

  // Heavy user burns the whole node for a while, accruing usage.
  int64_t warmup = scheduler.submit(basic_request("heavy", 1, 40, 600000));
  for (int i = 0; i < 650; ++i) tick(1000);
  ASSERT_EQ(dbd.job(warmup)->state, JobState::kCompleted);
  EXPECT_GT(scheduler.user_usage("heavy"), 10000.0);
  EXPECT_DOUBLE_EQ(scheduler.user_usage("light"), 0.0);

  // Node full again; heavy submits more work FIRST, then light.
  scheduler.submit(basic_request("blocker", 1, 40, 120000));
  tick(1000);
  int64_t heavy_pending = scheduler.submit(
      basic_request("heavy", 1, 40, 60000));
  int64_t light_pending = scheduler.submit(
      basic_request("light", 1, 40, 60000));
  // When the blocker ends, fairshare must start light's job despite heavy
  // submitting earlier.
  for (int i = 0; i < 180; ++i) tick(1000);
  Job heavy_job = *dbd.job(heavy_pending);
  Job light_job = *dbd.job(light_pending);
  ASSERT_NE(light_job.start_time_ms, 0);
  EXPECT_LT(light_job.start_time_ms, heavy_job.start_time_ms == 0
                                         ? INT64_MAX
                                         : heavy_job.start_time_ms);
}

TEST(Fairshare, UsageDecaysWithHalflife) {
  auto clock = make_sim_clock(1000000);
  Cluster cluster("fs", clock, 1);
  cluster.add_partition("cpu", "c", 1, node::make_intel_cpu_node);
  SlurmDbd dbd;
  SchedulerConfig config;
  config.fairshare = true;
  config.usage_halflife_ms = common::kMillisPerHour;
  Scheduler scheduler(cluster, dbd, 7, config);

  scheduler.submit(basic_request("u", 1, 40, 60000));
  for (int i = 0; i < 70; ++i) {
    scheduler.step();
    cluster.step_nodes(1000);
    clock->advance(1000);
  }
  double usage_after_job = scheduler.user_usage("u");
  ASSERT_GT(usage_after_job, 0.0);
  // One halflife later the charge has roughly halved.
  clock->advance(common::kMillisPerHour);
  scheduler.step();
  EXPECT_NEAR(scheduler.user_usage("u"), usage_after_job / 2,
              usage_after_job * 0.03);
}

TEST(Fairshare, DisabledKeepsFcfsOrder) {
  auto clock = make_sim_clock(1000000);
  Cluster cluster("fs", clock, 1);
  cluster.add_partition("cpu", "c", 1, node::make_intel_cpu_node);
  SlurmDbd dbd;
  Scheduler scheduler(cluster, dbd, 7);  // fairshare off

  int64_t warmup = scheduler.submit(basic_request("heavy", 1, 40, 60000));
  for (int i = 0; i < 70; ++i) {
    scheduler.step();
    cluster.step_nodes(1000);
    clock->advance(1000);
  }
  ASSERT_EQ(dbd.job(warmup)->state, JobState::kCompleted);

  scheduler.submit(basic_request("blocker", 1, 40, 120000));
  scheduler.step();
  int64_t heavy_pending =
      scheduler.submit(basic_request("heavy", 1, 40, 60000));
  int64_t light_pending =
      scheduler.submit(basic_request("light", 1, 40, 60000));
  for (int i = 0; i < 180; ++i) {
    scheduler.step();
    cluster.step_nodes(1000);
    clock->advance(1000);
  }
  // FCFS: heavy (submitted first) runs before light.
  ASSERT_NE(dbd.job(heavy_pending)->start_time_ms, 0);
  EXPECT_LT(dbd.job(heavy_pending)->start_time_ms,
            dbd.job(light_pending)->start_time_ms == 0
                ? INT64_MAX
                : dbd.job(light_pending)->start_time_ms);
}

// ---------- dbd ----------

TEST(SlurmDbd, ActiveBetweenWindowQueries) {
  SlurmDbd dbd;
  Job job;
  job.job_id = 1;
  job.submit_time_ms = 100;
  job.start_time_ms = 1000;
  job.end_time_ms = 2000;
  dbd.upsert(job);
  job.job_id = 2;
  job.start_time_ms = 5000;
  job.end_time_ms = 0;  // still running
  dbd.upsert(job);

  EXPECT_EQ(dbd.jobs_active_between(0, 500).size(), 0u);   // not started
  EXPECT_EQ(dbd.jobs_active_between(1500, 1600).size(), 1u);
  EXPECT_EQ(dbd.jobs_active_between(2000, 3000).size(), 0u);  // 1 ended at 2000
  EXPECT_EQ(dbd.jobs_active_between(6000, 7000).size(), 1u);  // running job
  EXPECT_EQ(dbd.jobs_active_between(900, 6000).size(), 2u);
}

TEST(SlurmDbd, ChangedSinceTracksUpdates) {
  SlurmDbd dbd;
  Job job;
  job.job_id = 1;
  job.submit_time_ms = 100;
  dbd.upsert(job);
  EXPECT_EQ(dbd.jobs_changed_since(0).size(), 1u);
  EXPECT_EQ(dbd.jobs_changed_since(101).size(), 0u);
  job.start_time_ms = 500;
  dbd.upsert(job);
  EXPECT_EQ(dbd.jobs_changed_since(101).size(), 1u);
}

// ---------- workload generator ----------

TEST(WorkloadGen, ArrivalRateMatchesConfig) {
  WorkloadGenConfig config;
  config.jobs_per_day = 2400;  // 100/hour
  config.partitions = {{"cpu", 1.0, false, 4, 40, 0, 192LL << 30}};
  WorkloadGenerator generator(config);
  std::size_t total = 0;
  // 10 hours of 30 s steps.
  for (int i = 0; i < 1200; ++i) {
    total += generator.arrivals(30000).size();
  }
  EXPECT_NEAR(static_cast<double>(total), 1000.0, 120.0);
}

TEST(WorkloadGen, RequestsAreSatisfiable) {
  WorkloadGenConfig config;
  config.partitions = {{"cpu", 1.0, false, 4, 40, 0, 192LL << 30},
                       {"gpu", 1.0, true, 1, 40, 4, 384LL << 30}};
  WorkloadGenerator generator(config);
  for (int i = 0; i < 500; ++i) {
    JobRequest request = generator.sample();
    EXPECT_GT(request.true_duration_ms, 0);
    EXPECT_GE(request.walltime_limit_ms, request.true_duration_ms);
    EXPECT_GE(request.cpus_per_node, 1);
    if (request.partition == "cpu") {
      EXPECT_LE(request.cpus_per_node, 40);
      EXPECT_EQ(request.gpus_per_node, 0);
    } else {
      EXPECT_LE(request.gpus_per_node, 4);
      EXPECT_GE(request.gpus_per_node, 1);
      EXPECT_EQ(request.num_nodes, 1);
    }
    EXPECT_FALSE(request.user.empty());
    EXPECT_EQ(generator.project_of(request.user), request.account);
  }
}

TEST(WorkloadGen, UserActivityIsSkewed) {
  WorkloadGenConfig config;
  config.num_users = 50;
  config.partitions = {{"cpu", 1.0, false, 4, 40, 0, 192LL << 30}};
  WorkloadGenerator generator(config);
  std::map<std::string, int> counts;
  for (int i = 0; i < 2000; ++i) counts[generator.sample().user]++;
  // Zipf: the most active user should dominate the median user.
  EXPECT_GT(counts["user0"], 200);
}

// ---------- cluster sim ----------

TEST(ClusterSim, JeanZayScaleCounts) {
  JeanZayScale full;
  EXPECT_EQ(full.total_nodes(), 1400);
  JeanZayScale tiny = full.scaled(0.01);
  EXPECT_GE(tiny.total_nodes(), 5);  // every family keeps >= 1 node
  EXPECT_LE(tiny.total_nodes(), 20);
}

TEST(ClusterSim, RunsAndChurnsJobs) {
  auto clock = make_sim_clock(0);
  JeanZayScale scale = JeanZayScale{}.scaled(0.01);
  auto cluster = make_jean_zay_cluster(clock, scale, 3);
  auto gen_config = make_jean_zay_workload_config(scale, 2000);
  gen_config.seed = 3;
  ClusterSim sim(clock, std::move(cluster), gen_config, 3);

  sim.run_for(2 * common::kMillisPerHour, 10 * common::kMillisPerSecond);
  EXPECT_GT(sim.jobs_submitted(), 100u);
  EXPECT_GT(sim.dbd().count_in_state(JobState::kCompleted) +
                sim.dbd().count_in_state(JobState::kRunning) +
                sim.dbd().count_in_state(JobState::kFailed) +
                sim.dbd().count_in_state(JobState::kTimeout),
            50u);
}

TEST(ClusterSim, StepCallbackSeesMonotonicTime) {
  auto clock = make_sim_clock(0);
  JeanZayScale scale = JeanZayScale{}.scaled(0.005);
  ClusterSim sim(clock, make_jean_zay_cluster(clock, scale, 1),
                 make_jean_zay_workload_config(scale, 500), 1);
  common::TimestampMs last = -1;
  sim.run_for(10 * common::kMillisPerMinute, 30000,
              [&](common::TimestampMs now) {
                EXPECT_GT(now, last);
                last = now;
              });
  EXPECT_EQ(last, 10 * common::kMillisPerMinute);
}

}  // namespace
}  // namespace ceems::slurm
