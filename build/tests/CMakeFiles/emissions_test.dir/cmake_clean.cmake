file(REMOVE_RECURSE
  "CMakeFiles/emissions_test.dir/emissions_test.cpp.o"
  "CMakeFiles/emissions_test.dir/emissions_test.cpp.o.d"
  "emissions_test"
  "emissions_test.pdb"
  "emissions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emissions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
