#include "tsdb/query_cache.h"

namespace ceems::tsdb::promql {

std::string QueryCacheKey::encode() const {
  return query + "\x1f" + std::to_string(start) + "\x1f" +
         std::to_string(end) + "\x1f" + std::to_string(step_ms);
}

std::optional<std::vector<Series>> QueryCache::lookup(
    const QueryCacheKey& key, const std::vector<uint64_t>& versions) {
  std::string encoded = key.encode();
  std::lock_guard lock(mu_);
  auto it = by_key_.find(encoded);
  if (it == by_key_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (it->second->versions != versions) {
    lru_.erase(it->second);
    by_key_.erase(it);
    ++stats_.invalidations;
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->result;
}

void QueryCache::insert(const QueryCacheKey& key,
                        std::vector<uint64_t> versions,
                        std::vector<Series> result) {
  if (capacity_ == 0) return;
  std::string encoded = key.encode();
  std::lock_guard lock(mu_);
  if (auto it = by_key_.find(encoded); it != by_key_.end()) {
    lru_.erase(it->second);
    by_key_.erase(it);
  }
  lru_.push_front(Entry{encoded, std::move(versions), std::move(result)});
  by_key_[encoded] = lru_.begin();
  while (lru_.size() > capacity_) {
    by_key_.erase(lru_.back().encoded_key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

QueryCacheStats QueryCache::stats() const {
  std::lock_guard lock(mu_);
  QueryCacheStats out = stats_;
  out.size = lru_.size();
  return out;
}

void QueryCache::clear() {
  std::lock_guard lock(mu_);
  lru_.clear();
  by_key_.clear();
}

}  // namespace ceems::tsdb::promql
