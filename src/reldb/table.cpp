#include "reldb/table.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace ceems::reldb {

int ResultSet::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return static_cast<int>(i);
  }
  return -1;
}

const Value& ResultSet::at(std::size_t row, const std::string& column) const {
  int index = column_index(column);
  if (index < 0) throw std::out_of_range("no column " + column);
  return rows.at(row).at(static_cast<std::size_t>(index));
}

Table::Table(Schema schema) : schema_(std::move(schema)) {
  pk_index_ = schema_.column_index(schema_.primary_key);
  if (pk_index_ < 0)
    throw std::invalid_argument("primary key column '" + schema_.primary_key +
                                "' not in schema");
}

bool Table::insert(Row row) {
  if (row.size() != schema_.columns.size())
    throw std::invalid_argument("row width mismatch");
  const Value& pk = row[static_cast<std::size_t>(pk_index_)];
  if (pk_map_.count(pk)) return false;
  std::size_t position = rows_.size();
  pk_map_[pk] = position;
  for (auto& [column, index] : indexes_) {
    index[row[static_cast<std::size_t>(column)]].insert(position);
  }
  rows_.push_back(std::move(row));
  return true;
}

void Table::upsert(Row row) {
  if (row.size() != schema_.columns.size())
    throw std::invalid_argument("row width mismatch");
  const Value& pk = row[static_cast<std::size_t>(pk_index_)];
  auto it = pk_map_.find(pk);
  if (it == pk_map_.end()) {
    insert(std::move(row));
    return;
  }
  std::size_t position = it->second;
  for (auto& [column, index] : indexes_) {
    index[rows_[position][static_cast<std::size_t>(column)]].erase(position);
    index[row[static_cast<std::size_t>(column)]].insert(position);
  }
  rows_[position] = std::move(row);
}

bool Table::erase(const Value& primary_key) {
  auto it = pk_map_.find(primary_key);
  if (it == pk_map_.end()) return false;
  std::size_t position = it->second;
  std::size_t last = rows_.size() - 1;
  // Unindex the victim.
  for (auto& [column, index] : indexes_) {
    index[rows_[position][static_cast<std::size_t>(column)]].erase(position);
  }
  pk_map_.erase(it);
  if (position != last) {
    // Move the last row into the hole; fix its bookkeeping.
    for (auto& [column, index] : indexes_) {
      index[rows_[last][static_cast<std::size_t>(column)]].erase(last);
      index[rows_[last][static_cast<std::size_t>(column)]].insert(position);
    }
    pk_map_[rows_[last][static_cast<std::size_t>(pk_index_)]] = position;
    rows_[position] = std::move(rows_[last]);
  }
  rows_.pop_back();
  return true;
}

std::optional<Row> Table::get(const Value& primary_key) const {
  auto it = pk_map_.find(primary_key);
  if (it == pk_map_.end()) return std::nullopt;
  return rows_[it->second];
}

void Table::create_index(const std::string& column) {
  int index = schema_.column_index(column);
  if (index < 0) throw std::invalid_argument("no column " + column);
  auto& bucket = indexes_[index];
  bucket.clear();
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    bucket[rows_[i][static_cast<std::size_t>(index)]].insert(i);
  }
}

bool Table::row_matches(const Row& row,
                        const std::vector<Predicate>& where) const {
  for (const auto& predicate : where) {
    int column = schema_.column_index(predicate.column);
    if (column < 0) return false;
    const Value& value = row[static_cast<std::size_t>(column)];
    bool ok = false;
    switch (predicate.op) {
      case Predicate::Op::kEq: ok = value == predicate.value; break;
      case Predicate::Op::kNe: ok = !(value == predicate.value); break;
      case Predicate::Op::kLt: ok = value < predicate.value; break;
      case Predicate::Op::kLe: ok = !(predicate.value < value); break;
      case Predicate::Op::kGt: ok = predicate.value < value; break;
      case Predicate::Op::kGe: ok = !(value < predicate.value); break;
    }
    if (!ok) return false;
  }
  return true;
}

std::vector<const Row*> Table::candidate_rows(
    const std::vector<Predicate>& where) const {
  // Use a secondary index for the first indexed equality predicate.
  for (const auto& predicate : where) {
    if (predicate.op != Predicate::Op::kEq) continue;
    int column = schema_.column_index(predicate.column);
    auto index_it = indexes_.find(column);
    if (index_it == indexes_.end()) continue;
    std::vector<const Row*> out;
    auto value_it = index_it->second.find(predicate.value);
    if (value_it == index_it->second.end()) return out;
    for (std::size_t position : value_it->second) {
      out.push_back(&rows_[position]);
    }
    return out;
  }
  std::vector<const Row*> out;
  out.reserve(rows_.size());
  for (const auto& row : rows_) out.push_back(&row);
  return out;
}

ResultSet Table::execute(const Query& query) const {
  std::vector<const Row*> matched;
  for (const Row* row : candidate_rows(query.where)) {
    if (row_matches(*row, query.where)) matched.push_back(row);
  }

  ResultSet result;
  if (!query.group_by.empty() || !query.aggregates.empty()) {
    // Grouped aggregation.
    std::vector<int> group_columns;
    for (const auto& name : query.group_by) {
      int index = schema_.column_index(name);
      if (index < 0) throw std::invalid_argument("no column " + name);
      group_columns.push_back(index);
      result.columns.push_back(name);
    }
    for (const auto& aggregate : query.aggregates) {
      result.columns.push_back(aggregate.as.empty() ? aggregate.column
                                                    : aggregate.as);
    }

    struct GroupState {
      Row key;
      std::vector<double> sums;
      std::vector<double> mins;
      std::vector<double> maxs;
      std::size_t count = 0;
    };
    std::map<Row, GroupState> groups;
    for (const Row* row : matched) {
      Row key;
      for (int column : group_columns)
        key.push_back((*row)[static_cast<std::size_t>(column)]);
      GroupState& group = groups[key];
      if (group.count == 0) {
        group.key = key;
        group.sums.assign(query.aggregates.size(), 0);
        group.mins.assign(query.aggregates.size(),
                          std::numeric_limits<double>::infinity());
        group.maxs.assign(query.aggregates.size(),
                          -std::numeric_limits<double>::infinity());
      }
      ++group.count;
      for (std::size_t a = 0; a < query.aggregates.size(); ++a) {
        const Aggregate& aggregate = query.aggregates[a];
        if (aggregate.fn == AggFn::kCount) continue;
        int column = schema_.column_index(aggregate.column);
        if (column < 0)
          throw std::invalid_argument("no column " + aggregate.column);
        double value = (*row)[static_cast<std::size_t>(column)].as_real();
        group.sums[a] += value;
        group.mins[a] = std::min(group.mins[a], value);
        group.maxs[a] = std::max(group.maxs[a], value);
      }
    }
    for (auto& [key, group] : groups) {
      Row out = group.key;
      for (std::size_t a = 0; a < query.aggregates.size(); ++a) {
        switch (query.aggregates[a].fn) {
          case AggFn::kCount:
            out.push_back(Value(static_cast<int64_t>(group.count)));
            break;
          case AggFn::kSum: out.push_back(Value(group.sums[a])); break;
          case AggFn::kAvg:
            out.push_back(
                Value(group.sums[a] / static_cast<double>(group.count)));
            break;
          case AggFn::kMin: out.push_back(Value(group.mins[a])); break;
          case AggFn::kMax: out.push_back(Value(group.maxs[a])); break;
        }
      }
      result.rows.push_back(std::move(out));
    }
  } else {
    // Plain projection.
    std::vector<int> projection;
    if (query.select.empty()) {
      for (std::size_t i = 0; i < schema_.columns.size(); ++i) {
        projection.push_back(static_cast<int>(i));
        result.columns.push_back(schema_.columns[i].name);
      }
    } else {
      for (const auto& name : query.select) {
        int index = schema_.column_index(name);
        if (index < 0) throw std::invalid_argument("no column " + name);
        projection.push_back(index);
        result.columns.push_back(name);
      }
    }
    for (const Row* row : matched) {
      Row out;
      out.reserve(projection.size());
      for (int column : projection)
        out.push_back((*row)[static_cast<std::size_t>(column)]);
      result.rows.push_back(std::move(out));
    }
  }

  if (!query.order_by.empty()) {
    int index = result.column_index(query.order_by);
    if (index < 0) throw std::invalid_argument("no column " + query.order_by);
    std::stable_sort(result.rows.begin(), result.rows.end(),
                     [&](const Row& a, const Row& b) {
                       const Value& lhs = a[static_cast<std::size_t>(index)];
                       const Value& rhs = b[static_cast<std::size_t>(index)];
                       return query.descending ? rhs < lhs : lhs < rhs;
                     });
  }
  if (query.limit > 0 && result.rows.size() > query.limit) {
    result.rows.resize(query.limit);
  }
  return result;
}

void Table::for_each(const std::function<void(const Row&)>& fn) const {
  for (const auto& row : rows_) fn(row);
}

}  // namespace ceems::reldb
