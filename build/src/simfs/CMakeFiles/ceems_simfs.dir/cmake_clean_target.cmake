file(REMOVE_RECURSE
  "libceems_simfs.a"
)
