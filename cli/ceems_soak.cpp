// ceems_soak — drives one soak Scenario (DESIGN.md §11) against a full
// simulated CEEMS deployment and gates on its hard invariants.
//
//   ceems_soak [--scenario NAME | --file SCENARIO.soak]
//              [--nodes N] [--seed S | --seeds "S1 S2 ..."]
//              [--duration 30m] [--out BENCH_soak.json] [--log FILE]
//              [--list] [--print]
//
// Exit status 0 only when every seed's run kept every invariant green.
// On a red run the violations and a one-line replay command are printed,
// which is also what the soak-smoke CI job uploads as its failure
// artifact (alongside --log).
#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/flags.h"
#include "common/strutil.h"
#include "soak/runner.h"

using namespace ceems;

int main(int argc, char** argv) {
  cli::Flags flags(argc, argv,
                   "[--scenario NAME|--file F] [--nodes N] [--seed S|--seeds "
                   "\"S1 S2 ...\"] [--duration D] [--out JSON] [--log FILE] "
                   "[--list] [--print]");

  if (flags.get_bool("list")) {
    for (const std::string& name : soak::builtin_scenario_names())
      std::printf("%s\n", name.c_str());
    return 0;
  }

  std::string text;
  std::string file = flags.get("file");
  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  } else {
    std::string name = flags.get("scenario", "smoke");
    text = soak::builtin_scenario_text(name);
    if (text.empty()) {
      std::fprintf(stderr, "unknown scenario '%s' (see --list)\n",
                   name.c_str());
      return 2;
    }
  }

  std::string error;
  auto parsed = soak::parse_scenario_text(text, &error);
  if (!parsed) {
    std::fprintf(stderr, "scenario parse error: %s\n", error.c_str());
    return 2;
  }
  soak::Scenario scenario = *parsed;

  if (int64_t nodes = flags.get_int("nodes", 0); nodes > 0)
    scenario.nodes = static_cast<int>(nodes);
  if (std::string duration = flags.get("duration"); !duration.empty()) {
    auto parsed_ms = common::parse_duration_ms(duration);
    if (!parsed_ms) {
      std::fprintf(stderr, "bad --duration '%s'\n", duration.c_str());
      return 2;
    }
    scenario.duration_ms = *parsed_ms;
  }

  std::vector<uint64_t> seeds;
  if (std::string list = flags.get("seeds"); !list.empty()) {
    for (const std::string& field : common::split_fields(list))
      seeds.push_back(
          static_cast<uint64_t>(common::parse_int64(field).value_or(0)));
  } else {
    seeds.push_back(
        static_cast<uint64_t>(flags.get_int("seed", scenario.seed)));
  }

  if (flags.get_bool("print")) {
    std::fputs(soak::to_text(scenario).c_str(), stdout);
    return 0;
  }

  std::FILE* log = stderr;
  std::string log_path = flags.get("log");
  if (!log_path.empty()) {
    log = std::fopen(log_path.c_str(), "w");
    if (!log) {
      std::fprintf(stderr, "cannot open %s for writing\n", log_path.c_str());
      return 2;
    }
  }

  std::vector<soak::SoakReport> reports;
  bool all_ok = true;
  for (uint64_t seed : seeds) {
    scenario.seed = seed;
    soak::SoakOptions options;
    options.log = log;
    soak::SoakRunner runner(scenario, options);
    soak::SoakReport report = runner.run();
    std::printf(
        "%s seed %llu: %s  nodes=%d units=%llu samples=%llu "
        "peak_bytes=%zu max_series=%zu dropped=%llu p99_points=%llu\n",
        scenario.name.c_str(), (unsigned long long)seed,
        report.ok ? "OK" : "FAIL", report.node_count,
        (unsigned long long)report.units_total,
        (unsigned long long)report.samples_ingested, report.peak_bytes,
        report.max_series, (unsigned long long)report.dropped_scrapes,
        (unsigned long long)report.query_points_p99);
    if (!report.ok) {
      all_ok = false;
      for (const std::string& violation : report.violations)
        std::printf("  VIOLATION %s\n", violation.c_str());
      std::printf("  replay: %s\n", report.replay_command().c_str());
    }
    reports.push_back(std::move(report));
  }

  std::string out = flags.get("out");
  if (!out.empty()) {
    if (!soak::write_bench_json(out, reports)) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      if (log != stderr) std::fclose(log);
      return 2;
    }
    std::fprintf(stderr, "wrote %s (%zu runs)\n", out.c_str(),
                 reports.size());
  }
  if (log != stderr) std::fclose(log);
  return all_ok ? 0 : 1;
}
