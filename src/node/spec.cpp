#include "node/spec.h"

#include <stdexcept>

namespace ceems::node {

GpuSpec make_gpu_spec(const std::string& model) {
  if (model == "V100")
    return GpuSpec{"V100", GpuVendor::kNvidia, 300, 25, 32LL << 30};
  if (model == "A100")
    return GpuSpec{"A100", GpuVendor::kNvidia, 400, 40, 80LL << 30};
  if (model == "H100")
    return GpuSpec{"H100", GpuVendor::kNvidia, 700, 60, 80LL << 30};
  if (model == "MI250")
    return GpuSpec{"MI250", GpuVendor::kAmd, 500, 45, 128LL << 30};
  throw std::invalid_argument("unknown GPU model: " + model);
}

NodeSpec make_intel_cpu_node(const std::string& hostname) {
  NodeSpec spec;
  spec.hostname = hostname;
  spec.cpu_vendor = CpuVendor::kIntel;
  spec.sockets = 2;
  spec.cores_per_socket = 20;  // Cascade Lake 6248-style
  spec.memory_bytes = 192LL << 30;
  spec.cpu_idle_w_per_socket = 35;
  spec.cpu_tdp_w_per_socket = 150;
  spec.dram_idle_w = 12;
  spec.dram_max_w = 45;
  spec.platform_static_w = 55;
  return spec;
}

NodeSpec make_amd_cpu_node(const std::string& hostname) {
  NodeSpec spec;
  spec.hostname = hostname;
  spec.cpu_vendor = CpuVendor::kAmd;
  spec.sockets = 2;
  spec.cores_per_socket = 64;  // EPYC Milan-style
  spec.memory_bytes = 256LL << 30;
  spec.cpu_idle_w_per_socket = 45;
  spec.cpu_tdp_w_per_socket = 280;
  spec.dram_idle_w = 15;
  spec.dram_max_w = 55;
  spec.platform_static_w = 60;
  return spec;
}

NodeSpec make_v100_node(const std::string& hostname) {
  NodeSpec spec = make_intel_cpu_node(hostname);
  spec.gpus = {make_gpu_spec("V100"), make_gpu_spec("V100"),
               make_gpu_spec("V100"), make_gpu_spec("V100")};
  spec.memory_bytes = 384LL << 30;
  spec.platform_static_w = 80;
  spec.ipmi_includes_gpu = true;
  return spec;
}

NodeSpec make_a100_node(const std::string& hostname) {
  NodeSpec spec = make_amd_cpu_node(hostname);
  spec.gpus.assign(8, make_gpu_spec("A100"));
  spec.memory_bytes = 512LL << 30;
  spec.platform_static_w = 110;
  // Second server type of §III-A: GPUs powered off a separate shelf, so the
  // BMC reading excludes them.
  spec.ipmi_includes_gpu = false;
  return spec;
}

NodeSpec make_h100_node(const std::string& hostname) {
  NodeSpec spec = make_intel_cpu_node(hostname);
  spec.cores_per_socket = 24;
  spec.gpus = {make_gpu_spec("H100"), make_gpu_spec("H100"),
               make_gpu_spec("H100"), make_gpu_spec("H100")};
  spec.memory_bytes = 512LL << 30;
  spec.platform_static_w = 100;
  spec.ipmi_includes_gpu = true;
  return spec;
}

NodeSpec make_mi250_node(const std::string& hostname) {
  NodeSpec spec = make_amd_cpu_node(hostname);
  spec.gpus.assign(4, make_gpu_spec("MI250"));
  spec.memory_bytes = 512LL << 30;
  spec.platform_static_w = 95;
  spec.ipmi_includes_gpu = true;
  return spec;
}

}  // namespace ceems::node
