#include "common/json.h"

#include <cmath>
#include <cstdio>

#include "common/strutil.h"

namespace ceems::common {

const Json& Json::at(const std::string& key) const {
  check(Type::kObject);
  auto it = object_->find(key);
  if (it == object_->end())
    throw std::runtime_error("json: missing key '" + key + "'");
  return it->second;
}

std::optional<Json> Json::get(const std::string& key) const {
  if (type_ != Type::kObject) return std::nullopt;
  auto it = object_->find(key);
  if (it == object_->end()) return std::nullopt;
  return it->second;
}

Json& Json::operator[](const std::string& key) {
  check(Type::kObject);
  return (*object_)[key];
}

void Json::push_back(Json value) {
  check(Type::kArray);
  array_->push_back(std::move(value));
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_->size();
  if (type_ == Type::kObject) return object_->size();
  return 0;
}

std::string Json::get_string(const std::string& key, std::string fallback) const {
  auto value = get(key);
  if (!value || !value->is_string()) return fallback;
  return value->as_string();
}

double Json::get_number(const std::string& key, double fallback) const {
  auto value = get(key);
  if (!value || !value->is_number()) return fallback;
  return value->as_number();
}

int64_t Json::get_int(const std::string& key, int64_t fallback) const {
  auto value = get(key);
  if (!value || !value->is_number()) return fallback;
  return value->as_int();
}

bool Json::get_bool(const std::string& key, bool fallback) const {
  auto value = get(key);
  if (!value || !value->is_bool()) return fallback;
  return value->as_bool();
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return number_ == other.number_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return *array_ == *other.array_;
    case Type::kObject: return *object_ == *other.object_;
  }
  return false;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent >= 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: {
      if (std::isnan(number_) || std::isinf(number_)) {
        out += "null";  // JSON has no NaN/Inf.
      } else if (number_ == std::floor(number_) &&
                 std::fabs(number_) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(number_));
        out += buf;
      } else {
        out += format_double(number_);
      }
      break;
    }
    case Type::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const auto& item : *array_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        item.dump_to(out, indent, depth + 1);
      }
      if (!array_->empty()) newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : *object_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        out += '"';
        out += json_escape(key);
        out += "\":";
        if (indent >= 0) out += ' ';
        value.dump_to(out, indent, depth + 1);
      }
      if (!object_->empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Json parse() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) {
    throw JsonParseError("json parse error at offset " +
                         std::to_string(pos_) + ": " + message);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json(parse_string());
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (consume_literal("null")) return Json(nullptr);
    return parse_number();
  }

  Json parse_object() {
    expect('{');
    JsonObject object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(object));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      object[std::move(key)] = parse_value();
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Json(std::move(object));
      }
      fail("expected ',' or '}'");
    }
  }

  Json parse_array() {
    expect('[');
    JsonArray array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(array));
    }
    for (;;) {
      array.push_back(parse_value());
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Json(std::move(array));
      }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad hex digit");
            }
            // Encode as UTF-8 (BMP only; surrogate pairs unsupported).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("bad escape character");
        }
      } else {
        out += c;
      }
    }
  }

  Json parse_number() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    auto value = parse_double(text_.substr(start, pos_ - start));
    if (!value) fail("bad number");
    return Json(*value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return JsonParser(text).parse(); }

}  // namespace ceems::common
