// Differential suite for the streaming range evaluator: every PromQL
// function evaluated over randomised series — staleness markers, counter
// resets, NaN values, irregular scrape intervals, series that appear and
// disappear mid-range — through both the streaming path and the per-step
// oracle, asserting bit-identical Values across serial/pooled execution
// and hot-store/long-term sources. Plus the decode-count regression: a
// streaming range query decodes each overlapping chunk at most once.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/threadpool.h"
#include "metrics/model.h"
#include "tsdb/longterm.h"
#include "tsdb/promql_eval.h"
#include "tsdb/storage.h"

namespace ceems::tsdb {
namespace {

using metrics::Labels;
using promql::Engine;
using promql::EngineOptions;

uint64_t bits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

// ---------- randomised fixture data ----------

constexpr int64_t kStep = 15000;  // 15 s nominal scrape interval
constexpr TimestampMs kDataEnd = 120 * 60 * 1000;  // 2 h of data

// Random gauges and counters with enough samples per series to span
// multiple sealed chunks (120 samples/chunk; ~480 samples per series
// here). Gauges take NaN excursions and staleness markers; counters reset.
// Some series start late or end early, so selectors see series appear and
// disappear across the range.
std::shared_ptr<TimeSeriesStore> make_random_store(uint64_t seed) {
  common::Rng rng(seed);
  auto store = std::make_shared<TimeSeriesStore>();
  for (int h = 0; h < 3; ++h) {
    for (int s = 0; s < 4; ++s) {
      Labels gauge_labels = Labels{{"hostname", "n" + std::to_string(h)},
                                   {"uuid", std::to_string(s)}}
                                .with_name("power_watts");
      Labels counter_labels = Labels{{"hostname", "n" + std::to_string(h)},
                                     {"uuid", std::to_string(s)}}
                                  .with_name("energy_joules_total");
      TimestampMs start = rng.chance(0.25)
                              ? rng.uniform_int(0, kDataEnd / 3)
                              : 0;
      TimestampMs stop = rng.chance(0.25)
                             ? rng.uniform_int(2 * kDataEnd / 3, kDataEnd)
                             : kDataEnd;
      double gauge = rng.uniform(50, 300);
      double counter = 0;
      for (TimestampMs t = start; t <= stop;) {
        gauge += rng.normal(0, 5);
        double gauge_value = gauge;
        if (rng.chance(0.01)) gauge_value = std::nan("");
        if (rng.chance(0.01)) gauge_value = metrics::stale_marker();
        store->append(gauge_labels, t, gauge_value);

        counter += rng.uniform(0, 40);
        if (rng.chance(0.01)) counter = rng.uniform(0, 10);  // reset
        double counter_value =
            rng.chance(0.005) ? metrics::stale_marker() : counter;
        store->append(counter_labels, t, counter_value);

        // Irregular interval: jitter plus occasional scrape gaps.
        t += kStep + rng.uniform_int(-2000, 2000);
        if (rng.chance(0.03)) t += kStep * rng.uniform_int(2, 8);
      }
    }
  }
  return store;
}

// Long-term store built from the hot store, compacted so roughly the
// first half is downsampled — plenty of series straddle the horizon.
std::shared_ptr<LongTermStore> make_longterm(const TimeSeriesStore& hot) {
  LongTermConfig config;
  config.downsample_after_ms = kDataEnd / 2;
  config.resolution_ms = 5 * 60 * 1000;
  auto lt = std::make_shared<LongTermStore>(config);
  lt->sync_from(hot);
  lt->compact(kDataEnd);
  return lt;
}

// The query corpus: every range function, selectors (with offset, regex
// matchers, stale-sensitive instant lookups), aggregations, binary ops,
// and the call zoo the evaluator supports.
std::vector<std::string> query_corpus() {
  std::vector<std::string> queries = {
      "power_watts",
      "power_watts{hostname=\"n1\"}",
      "power_watts{hostname=~\"n[01]\"}",
      "power_watts offset 10m",
      "sum(power_watts)",
      "sum by (hostname) (power_watts)",
      "avg by (hostname) (power_watts)",
      "topk(3, power_watts)",
      "quantile(0.9, power_watts)",
      "power_watts > 150",
      "power_watts * 2 + 1",
      "power_watts / on(hostname, uuid) energy_joules_total",
      "sum by (hostname) (rate(energy_joules_total[2m]))",
      "label_replace(power_watts, \"node\", \"$1\", \"hostname\", "
      "\"n(.*)\")",
      "predict_linear(power_watts[5m], 600)",
      "absent(power_watts{hostname=\"nope\"})",
      "clamp(power_watts, 100, 200)",
      "scalar(sum(power_watts)) * 2",
      "-power_watts",
  };
  const char* range_funcs[] = {
      "rate",          "irate",           "increase",
      "delta",         "idelta",          "deriv",
      "resets",        "changes",         "avg_over_time",
      "sum_over_time", "min_over_time",   "max_over_time",
      "count_over_time", "last_over_time", "stddev_over_time"};
  for (const char* func : range_funcs) {
    queries.push_back(std::string(func) + "(power_watts[2m])");
    queries.push_back(std::string(func) + "(energy_joules_total[4m])");
    queries.push_back("sum by (hostname) (" + std::string(func) +
                      "(power_watts[90s]))");
    queries.push_back(std::string(func) +
                      "(power_watts[3m] offset 5m)");
  }
  return queries;
}

void expect_bit_identical(const std::vector<Series>& oracle,
                          const std::vector<Series>& streaming,
                          const std::string& query) {
  SCOPED_TRACE("query: " + query);
  ASSERT_EQ(oracle.size(), streaming.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    SCOPED_TRACE("series " + std::to_string(i) + ": " +
                 oracle[i].labels.to_string());
    ASSERT_EQ(oracle[i].labels, streaming[i].labels);
    ASSERT_EQ(oracle[i].samples.size(), streaming[i].samples.size());
    for (std::size_t k = 0; k < oracle[i].samples.size(); ++k) {
      ASSERT_EQ(oracle[i].samples[k].t, streaming[i].samples[k].t)
          << "sample " << k;
      ASSERT_EQ(bits(oracle[i].samples[k].v), bits(streaming[i].samples[k].v))
          << "sample " << k << ": oracle " << oracle[i].samples[k].v
          << " vs streaming " << streaming[i].samples[k].v;
    }
  }
}

Engine make_engine(bool streaming, std::shared_ptr<common::ThreadPool> pool) {
  EngineOptions options;
  options.streaming_range = streaming;
  options.pool = std::move(pool);
  options.min_parallel_steps = 4;  // force the chunked path in pooled runs
  options.query_cache_capacity = 0;
  return Engine(options);
}

void run_corpus(const Queryable& source) {
  auto pool = std::make_shared<common::ThreadPool>(4, "diff-eval");
  Engine oracle_serial = make_engine(false, nullptr);
  Engine stream_serial = make_engine(true, nullptr);
  Engine stream_pooled = make_engine(true, pool);
  Engine oracle_pooled = make_engine(false, pool);

  constexpr TimestampMs kStart = 60 * 1000;
  constexpr int64_t kQueryStep = 47 * 1000;  // off-grid on purpose
  for (const std::string& query : query_corpus()) {
    auto expr = promql::parse(query);
    auto oracle = oracle_serial.eval_range(source, expr, kStart, kDataEnd,
                                           kQueryStep);
    auto streaming = stream_serial.eval_range(source, expr, kStart, kDataEnd,
                                              kQueryStep);
    expect_bit_identical(oracle, streaming, query + " [serial]");
    auto streaming_mt = stream_pooled.eval_range(source, expr, kStart,
                                                 kDataEnd, kQueryStep);
    expect_bit_identical(oracle, streaming_mt, query + " [pooled stream]");
    auto oracle_mt = oracle_pooled.eval_range(source, expr, kStart, kDataEnd,
                                              kQueryStep);
    expect_bit_identical(oracle, oracle_mt, query + " [pooled oracle]");
  }
}

TEST(PromqlDifferential, HotStoreAllFunctions) {
  for (uint64_t seed : {11u, 42u, 1337u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto store = make_random_store(seed);
    run_corpus(*store);
  }
}

TEST(PromqlDifferential, LongTermStoreAllFunctions) {
  for (uint64_t seed : {7u, 99u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto store = make_random_store(seed);
    auto lt = make_longterm(*store);
    run_corpus(*lt);
  }
}

// A stale marker as the newest sample must drop the series from instant
// selectors on both paths — checked explicitly at the step grid around the
// marker, not just via the random sweep.
TEST(PromqlDifferential, StalenessEndsSeries) {
  auto store = std::make_shared<TimeSeriesStore>();
  Labels labels = Labels{{"hostname", "n0"}}.with_name("m");
  for (int i = 0; i < 200; ++i) {
    double v = i == 150 ? metrics::stale_marker() : i * 1.0;
    store->append(labels, int64_t{i} * kStep, v);
  }
  Engine oracle = make_engine(false, nullptr);
  Engine streaming = make_engine(true, nullptr);
  auto expr = promql::parse("m");
  auto a = oracle.eval_range(*store, expr, 0, 200 * kStep, kStep);
  auto b = streaming.eval_range(*store, expr, 0, 200 * kStep, kStep);
  expect_bit_identical(a, b, "staleness instant");
  // The marker step itself must be absent.
  ASSERT_EQ(a.size(), 1u);
  for (const auto& sample : a[0].samples) {
    EXPECT_NE(sample.t, int64_t{150} * kStep);
  }

  auto rate_expr = promql::parse("rate(m[2m])");
  auto ra = oracle.eval_range(*store, rate_expr, 0, 200 * kStep, kStep);
  auto rb = streaming.eval_range(*store, rate_expr, 0, 200 * kStep, kStep);
  expect_bit_identical(ra, rb, "staleness rate");
}

// ---------- resolution-aware planner differential ----------

// Integer-valued random fixture for planner bit-identity: with integer
// sample values every partial sum the aggregate buckets regroup is exact
// (doubles are exact integers far below 2^53), so the planned fold and
// the raw fold agree bit for bit, not merely approximately. Staleness
// markers, counter resets, irregular scrape intervals and late/early
// series all stay in; NaN excursions are left out because NaN propagation
// is not associative at the bit level. The last sample lands exactly on
// kDataEnd so every ladder level's cursor reaches the end of the grid.
std::shared_ptr<TimeSeriesStore> make_integer_store(uint64_t seed) {
  common::Rng rng(seed);
  auto store = std::make_shared<TimeSeriesStore>();
  for (int h = 0; h < 3; ++h) {
    for (int s = 0; s < 3; ++s) {
      Labels gauge_labels = Labels{{"hostname", "n" + std::to_string(h)},
                                   {"uuid", std::to_string(s)}}
                                .with_name("power_watts");
      Labels counter_labels = Labels{{"hostname", "n" + std::to_string(h)},
                                     {"uuid", std::to_string(s)}}
                                  .with_name("energy_joules_total");
      TimestampMs start =
          rng.chance(0.25) ? rng.uniform_int(0, kDataEnd / 3) : 0;
      double counter = 0;
      TimestampMs t = start;
      while (true) {
        double gauge_value = static_cast<double>(rng.uniform_int(50, 300));
        if (rng.chance(0.01)) gauge_value = metrics::stale_marker();
        store->append(gauge_labels, t, gauge_value);

        counter += static_cast<double>(rng.uniform_int(0, 40));
        if (rng.chance(0.01)) counter = 1;  // reset
        double counter_value =
            rng.chance(0.005) ? metrics::stale_marker() : counter;
        store->append(counter_labels, t, counter_value);
        if (t >= kDataEnd) break;
        t += kStep + rng.uniform_int(-2000, 2000);
        if (rng.chance(0.03)) t += kStep * rng.uniform_int(2, 8);
        if (t > kDataEnd) t = kDataEnd;  // pin the grid end
      }
    }
  }
  return store;
}

// Two-level ladder (5m -> 1h) with raw kept forever, so the raw paths stay
// meaningful oracles over the whole range even after compaction.
std::shared_ptr<LongTermStore> make_ladder_store(const TimeSeriesStore& hot) {
  LongTermConfig config;
  config.downsample_after_ms = 365LL * 24 * 60 * 60 * 1000;
  config.levels = {{5 * 60 * 1000, 0}, {60 * 60 * 1000, 0}};
  auto lt = std::make_shared<LongTermStore>(config);
  lt->sync_from(hot);
  lt->compact(kDataEnd);
  return lt;
}

uint64_t total_level_hits(const LongTermStore& lt) {
  uint64_t total = 0;
  for (uint64_t hits : lt.select_stats().level_hits) total += hits;
  return total;
}

// Every plannable window function, aligned and unaligned: bit-identical
// results planner-on vs planner-off, with the level-hit counters proving
// aligned queries were served from the ladder and unaligned ones fell
// back to raw.
TEST(PromqlDifferential, ResolutionAwarePlannerBitIdentical) {
  const char* funcs[] = {"sum_over_time", "avg_over_time",  "min_over_time",
                         "max_over_time", "count_over_time", "rate",
                         "increase"};
  EngineOptions on_options;
  on_options.query_cache_capacity = 0;
  Engine planner_on(on_options);
  EngineOptions off_options = on_options;
  off_options.resolution_aware = false;
  Engine planner_off(off_options);
  Engine oracle = make_engine(false, nullptr);  // per-step, always raw

  constexpr int64_t kFiveMin = 5 * 60 * 1000;
  for (uint64_t seed : {3u, 21u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto store = make_integer_store(seed);
    auto lt = make_ladder_store(*store);
    for (const char* func : funcs) {
      for (const char* metric : {"power_watts", "energy_joules_total"}) {
        for (bool aligned : {true, false}) {
          // Aligned: range, step and start all multiples of the 5m bucket
          // width (offset included). Unaligned: off-grid range and step.
          std::string range = aligned ? "30m" : "7m";
          std::string offset = aligned ? " offset 10m" : " offset 3m";
          int64_t step_ms = aligned ? kFiveMin : 47 * 1000;
          TimestampMs start = aligned ? 45 * 60 * 1000 : 44 * 60 * 1000 + 13;
          std::string query = std::string(func) + "(" + metric + "[" + range +
                              "]" + offset + ")";
          SCOPED_TRACE("query: " + query);
          auto expr = promql::parse(query);

          auto expected = oracle.eval_range(*lt, expr, start, kDataEnd,
                                            step_ms);
          auto off = planner_off.eval_range(*lt, expr, start, kDataEnd,
                                            step_ms);
          uint64_t hits_before = total_level_hits(*lt);
          auto on = planner_on.eval_range(*lt, expr, start, kDataEnd,
                                          step_ms);
          uint64_t hits_after = total_level_hits(*lt);
          expect_bit_identical(expected, off, query + " [planner off]");
          expect_bit_identical(expected, on, query + " [planner on]");
          if (aligned) {
            EXPECT_GT(hits_after, hits_before)
                << query << " should be served from the aggregate ladder";
          } else {
            EXPECT_EQ(hits_after, hits_before)
                << query << " must take the raw fallback";
          }
        }
      }
    }
  }
}

// Top-level instant queries go through the same planner: aligned instants
// hit the ladder, unaligned ones and non-plannable functions fall back.
TEST(PromqlDifferential, ResolutionAwareInstantQueries) {
  auto store = make_integer_store(17);
  auto lt = make_ladder_store(*store);
  EngineOptions on_options;
  on_options.query_cache_capacity = 0;
  Engine planner_on(on_options);
  EngineOptions off_options = on_options;
  off_options.resolution_aware = false;
  Engine planner_off(off_options);

  struct Case {
    const char* query;
    TimestampMs at;
    bool planned;
  };
  const Case cases[] = {
      {"sum by (hostname) (increase(energy_joules_total[1h]))", kDataEnd,
       true},
      {"avg_over_time(power_watts[30m])", kDataEnd - 5 * 60 * 1000, true},
      {"max_over_time(power_watts[2h])", kDataEnd, true},  // 1h level
      {"rate(energy_joules_total[30m])", kDataEnd - 17, false},  // unaligned t
      {"rate(energy_joules_total[17m])", kDataEnd, false},  // unaligned range
      {"last_over_time(power_watts[30m])", kDataEnd, false},  // not plannable
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(std::string("query: ") + c.query);
    auto expr = promql::parse(c.query);
    auto expected = planner_off.eval(*lt, expr, c.at);
    uint64_t hits_before = total_level_hits(*lt);
    auto got = planner_on.eval(*lt, expr, c.at);
    uint64_t hits_after = total_level_hits(*lt);
    ASSERT_EQ(expected.kind, got.kind);
    ASSERT_EQ(expected.vector.size(), got.vector.size());
    for (std::size_t i = 0; i < expected.vector.size(); ++i) {
      EXPECT_EQ(expected.vector[i].labels, got.vector[i].labels);
      EXPECT_EQ(bits(expected.vector[i].value), bits(got.vector[i].value))
          << "series " << expected.vector[i].labels.to_string();
    }
    if (c.planned) {
      EXPECT_GT(hits_after, hits_before);
    } else {
      EXPECT_EQ(hits_after, hits_before);
    }
  }
}

// The coarsest covering level wins: a 2h-range query aligned to the hour
// must be answered from the 1h level, not the 5m one.
TEST(PromqlDifferential, PlannerPrefersCoarsestCoveringLevel) {
  auto store = make_integer_store(29);
  auto lt = make_ladder_store(*store);
  EngineOptions options;
  options.query_cache_capacity = 0;
  Engine engine(options);
  auto before = lt->select_stats();
  auto value =
      engine.eval(*lt, "sum_over_time(power_watts[2h])", kDataEnd);
  auto after = lt->select_stats();
  ASSERT_FALSE(value.vector.empty());
  ASSERT_EQ(after.level_hits.size(), 2u);
  EXPECT_EQ(after.level_hits[0], before.level_hits[0]);  // 5m untouched
  EXPECT_GT(after.level_hits[1], before.level_hits[1]);  // 1h served it
  // And the bucket rows scanned are a sliver of the raw samples.
  EXPECT_GT(after.level_points_scanned[1], before.level_points_scanned[1]);
}

// ---------- decode-count regression ----------

// Each sealed chunk overlapping a streaming range query decodes at most
// once; the per-step oracle re-decodes per step and must sit far above
// that. This is the O(steps x window) -> O(samples) claim, measured.
TEST(PromqlDecodeCount, AtMostOncePerRangeQuery) {
  auto store = std::make_shared<TimeSeriesStore>();
  constexpr int kSeries = 8;
  constexpr int kSamples = 600;  // 5 sealed chunks per series
  for (int s = 0; s < kSeries; ++s) {
    Labels labels = Labels{{"uuid", std::to_string(s)}}.with_name("m");
    for (int i = 0; i < kSamples; ++i) {
      store->append(labels, int64_t{i} * kStep, i * 1.0);
    }
  }
  std::size_t sealed_chunks = 0;
  for (const auto& view :
       store->select({}, 0, int64_t{kSamples} * kStep)) {
    for (const auto& slice : view.slices) {
      if (slice.chunk) ++sealed_chunks;
    }
  }
  ASSERT_GE(sealed_chunks, kSeries * 4u);

  auto expr = promql::parse("sum(rate(m[5m]))");
  constexpr TimestampMs kEnd = int64_t{kSamples} * kStep;

  Engine streaming = make_engine(true, nullptr);
  uint64_t before = chunk_decode_count();
  auto result = streaming.eval_range(*store, expr, 0, kEnd, kStep);
  uint64_t streaming_decodes = chunk_decode_count() - before;
  ASSERT_FALSE(result.empty());
  // One select() pass may decode the two boundary chunks per series inside
  // the store, then the query decodes each distinct chunk at most once.
  EXPECT_LE(streaming_decodes, sealed_chunks + 2 * kSeries);

  Engine oracle = make_engine(false, nullptr);
  before = chunk_decode_count();
  auto oracle_result = oracle.eval_range(*store, expr, 0, kEnd, kStep);
  uint64_t oracle_decodes = chunk_decode_count() - before;
  expect_bit_identical(oracle_result, result, "decode-count query");

  // The headline: >= 5x fewer decodes than the per-step evaluator.
  EXPECT_GE(oracle_decodes, 5 * std::max<uint64_t>(streaming_decodes, 1));
}

// Pooled streaming must hold the same decode bound: the parallel prefill
// decodes each distinct chunk once, and step-chunk evaluators share the
// prepared arrays without touching chunks again.
TEST(PromqlDecodeCount, PooledStreamingSameBound) {
  auto store = std::make_shared<TimeSeriesStore>();
  for (int s = 0; s < 4; ++s) {
    Labels labels = Labels{{"uuid", std::to_string(s)}}.with_name("m");
    for (int i = 0; i < 600; ++i) {
      store->append(labels, int64_t{i} * kStep, i * 1.0);
    }
  }
  std::size_t sealed_chunks = 0;
  for (const auto& view : store->select({}, 0, int64_t{600} * kStep)) {
    for (const auto& slice : view.slices) {
      if (slice.chunk) ++sealed_chunks;
    }
  }
  auto pool = std::make_shared<common::ThreadPool>(4, "decode-test");
  Engine streaming = make_engine(true, pool);
  auto expr = promql::parse("avg_over_time(m[10m])");
  uint64_t before = chunk_decode_count();
  auto result =
      streaming.eval_range(*store, expr, 0, int64_t{600} * kStep, kStep);
  uint64_t decodes = chunk_decode_count() - before;
  ASSERT_FALSE(result.empty());
  EXPECT_LE(decodes, sealed_chunks + 2 * 4);
}

}  // namespace
}  // namespace ceems::tsdb
