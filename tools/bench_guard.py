#!/usr/bin/env python3
"""Benchmark regression guard for deterministic work counters.

Compares the counters a fresh benchmark/soak run emitted against the
committed baseline (BENCH_tsdb.json, BENCH_soak.json) and fails when
either:

  * the fresh run's context says the binary was built without optimisations
    ("library_build_type": "debug") — a debug-recorded baseline once made
    every number in BENCH_tsdb.json meaningless, so this is a hard error
    regardless of counter values; or
  * a guarded counter drifted beyond tolerance from the baseline.

Only *deterministic work counters* are guarded (points scanned, chunks
decoded, bytes per sample, peak bytes, series cardinality, dropped
scrapes) — never wall-clock time, which is hopeless on shared CI runners.
The counters are exact functions of the workload and the code, so drift
means a real behaviour change: e.g. the resolution-aware planner silently
falling back to raw scans shows up as points_scanned_per_query jumping
20x, and a broken retention purge shows up as peak_bytes climbing, far
outside any tolerance.

Benchmarks present in only one file are reported but not fatal (new
benchmarks land before their baseline is re-recorded; retired ones linger
in the baseline until then).

--current/--baseline may be repeated to gate several pairs in one
invocation (pairs are matched by position); the run fails if any pair
fails.

Usage:
  bench_guard.py --current build/bench/BENCH_tsdb_smoke.json \
                 --baseline BENCH_tsdb.json \
                 [--current build/BENCH_soak_fresh.json \
                  --baseline BENCH_soak.json] [--tolerance 0.1]
"""

import argparse
import json
import sys

# Counters that are deterministic functions of workload + code. The first
# group comes from bench_tsdb, the second from the soak harness
# (cli/ceems_soak.cpp). A value of None uses the --tolerance default; a
# float overrides it for that counter. Wall-clock-derived rates are almost
# all deliberately absent; the two exceptions carry a wide explicit
# tolerance and exist to catch order-of-magnitude collapses (e.g. the
# scrape write path silently falling back to strict re-parsing), not to
# police scheduler jitter on shared CI runners.
GUARDED_COUNTERS = {
    "points_scanned_per_query": None,
    "decodes_per_query": None,
    "bytes_per_sample": None,
    "compression_ratio": None,
    "peak_bytes": None,
    "max_series": None,
    "dropped_scrapes": None,
    "samples_ingested": None,
    "points_scanned": None,
    "query_points_p99": None,
    # End-to-end scrape→append path (BM_scrape_ingest_e2e). allocs_per_sample
    # is near-deterministic (chunk seals amortize per sweep) but shifts a
    # little with iteration count; samples_per_second is wall-clock and only
    # guards against the fast path regressing to the legacy one (~8x).
    "allocs_per_sample": 0.50,
    "samples_per_second": 0.75,
}


def load_benchmarks(path):
    with open(path) as f:
        doc = json.load(f)
    runs = {}
    for bench in doc.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev) duplicate counter values;
        # keep plain iterations only.
        if bench.get("run_type") == "aggregate":
            continue
        runs[bench["name"]] = bench
    return doc.get("context", {}), runs


def check_pair(current_path, baseline_path, tolerance):
    """Gates one current/baseline pair. Returns (ok, compared)."""
    context, current = load_benchmarks(current_path)
    build_type = context.get("library_build_type")
    if build_type != "release":
        print(f"FAIL: current run context says library_build_type="
              f"{build_type!r}, expected 'release'. Re-run the benchmark "
              f"from a -DCMAKE_BUILD_TYPE=Release build.")
        return False, 0
    print(f"{current_path} vs {baseline_path} "
          f"(library_build_type: {build_type})")

    baseline_context, baseline = load_benchmarks(baseline_path)
    baseline_build = baseline_context.get("library_build_type")
    if baseline_build != "release":
        print(f"FAIL: committed baseline {baseline_path} was recorded from "
              f"a {baseline_build!r} build; re-record it from a Release "
              f"build.")
        return False, 0

    failures = []
    compared = 0
    for name, bench in sorted(current.items()):
        base = baseline.get(name)
        if base is None:
            print(f"note: {name} has no baseline entry (new benchmark?)")
            continue
        for counter, override in GUARDED_COUNTERS.items():
            if counter not in bench:
                continue
            if counter not in base:
                print(f"note: {name}: baseline lacks counter {counter}")
                continue
            limit = tolerance if override is None else override
            cur_v = float(bench[counter])
            base_v = float(base[counter])
            compared += 1
            if base_v == 0.0:
                drift = 0.0 if cur_v == 0.0 else float("inf")
            else:
                drift = abs(cur_v - base_v) / abs(base_v)
            status = "ok" if drift <= limit else "FAIL"
            print(f"{status}: {name} {counter}: current={cur_v:g} "
                  f"baseline={base_v:g} drift={drift:.1%} "
                  f"(limit {limit:.0%})")
            if drift > limit:
                failures.append((name, counter, cur_v, base_v, limit))

    for name in sorted(baseline):
        if name not in current:
            print(f"note: baseline entry {name} absent from current run "
                  f"(filtered out or retired)")

    if failures:
        print(f"\n{len(failures)} counter(s) drifted beyond tolerance:")
        for name, counter, cur_v, base_v, limit in failures:
            print(f"  {name} {counter}: {base_v:g} -> {cur_v:g} "
                  f"(limit {limit:.0%})")
        return False, compared
    return True, compared


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True, action="append",
                        help="JSON emitted by the fresh run (repeatable)")
    parser.add_argument("--baseline", required=True, action="append",
                        help="committed baseline JSON, one per --current")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="max relative drift per counter (default 0.10)")
    args = parser.parse_args()

    if len(args.current) != len(args.baseline):
        print(f"FAIL: {len(args.current)} --current but "
              f"{len(args.baseline)} --baseline; pairs are positional")
        return 1

    all_ok = True
    total_compared = 0
    for current_path, baseline_path in zip(args.current, args.baseline):
        ok, compared = check_pair(current_path, baseline_path,
                                  args.tolerance)
        all_ok = all_ok and ok
        total_compared += compared
        print()

    if total_compared == 0:
        print("FAIL: no guarded counters compared — wrong file or filter?")
        return 1
    if not all_ok:
        return 1
    print(f"all {total_compared} guarded counters within tolerance "
          f"(default {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
