// Gorilla-style compressed sample chunks — the Prometheus chunk encoding
// analogue. Timestamps are delta-of-delta coded (regular scrape intervals
// cost one bit per sample), values are XOR coded against their predecessor
// (flat or slowly-drifting gauges cost a bit or two). Both codings are
// bit-lossless: decode(encode(samples)) reproduces every int64 timestamp
// and every double bit pattern exactly, including NaN payloads and ±Inf —
// which is what lets the chunked store promise bit-identical query results
// against the old raw-vector representation.
//
// A ChunkedSeries is a run of immutable sealed chunks plus a small mutable
// head of raw samples. Appends go to the head; once the head reaches
// kChunkSamples and a strictly newer sample arrives, it is sealed into a
// compressed chunk. The newest sample therefore lives in the head —
// except right after adopt_sealed() (snapshot restore), when it sits in
// the last sealed chunk and a duplicate-timestamp rewrite re-seals that
// chunk instead of patching the head. Readers hand out
// shared_ptrs to sealed chunks: a SeriesView captured under the shard lock
// stays valid and immutable after the lock is released, and decoding
// happens lazily on the reader's thread.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "metrics/labels.h"

namespace ceems::tsdb {

using common::TimestampMs;

struct SamplePoint {
  TimestampMs t = 0;
  double v = 0;
};

// A fully-materialised time series: the exchange type at API boundaries
// (PromQL matrix values, range-query results, HTTP API rendering).
struct Series {
  metrics::Labels labels;
  std::vector<SamplePoint> samples;  // time-ordered
};

// One sealed, immutable compressed chunk.
class GorillaChunk {
 public:
  // Encodes `count` time-ordered samples. count must be >= 1.
  static std::shared_ptr<const GorillaChunk> encode(const SamplePoint* samples,
                                                    std::size_t count);
  // Reconstructs a chunk from serialized parts (snapshot restore). Returns
  // nullptr when the byte stream does not decode to exactly `count`
  // samples spanning [min_t, max_t] — a corrupt or truncated snapshot.
  static std::shared_ptr<const GorillaChunk> from_parts(
      std::vector<uint8_t> bytes, uint32_t count, TimestampMs min_t,
      TimestampMs max_t);

  // Decodes every sample. Returns nullopt on a malformed byte stream
  // (cannot happen for chunks built by encode()).
  std::optional<std::vector<SamplePoint>> decode() const;

  uint32_t count() const { return count_; }
  TimestampMs min_time() const { return min_t_; }
  TimestampMs max_time() const { return max_t_; }
  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  GorillaChunk(std::vector<uint8_t> bytes, uint32_t count, TimestampMs min_t,
               TimestampMs max_t)
      : bytes_(std::move(bytes)), count_(count), min_t_(min_t), max_t_(max_t) {}

  std::vector<uint8_t> bytes_;
  uint32_t count_;
  TimestampMs min_t_;
  TimestampMs max_t_;
};

using ChunkPtr = std::shared_ptr<const GorillaChunk>;

// Process-wide count of GorillaChunk::decode() calls. The streaming range
// evaluator promises each chunk overlapping a query decodes at most once;
// this counter is how tests and benchmarks observe that invariant.
uint64_t chunk_decode_count();

// Per-query cache of decoded chunks, keyed by chunk identity. One range
// query touches the same sealed chunk from many step windows (and possibly
// from several selectors); routing every decode through this cache bounds
// the work at one decode per chunk per query. Not thread-safe: fill it
// serially (or adopt() pre-decoded chunks produced in parallel) before any
// concurrent readers run.
class DecodedChunkCache {
 public:
  // Returns the decoded samples for `chunk`, decoding on first access. The
  // reference stays valid for the cache's lifetime (clear() invalidates).
  const std::vector<SamplePoint>& decode(const ChunkPtr& chunk);
  // Stores an externally-decoded chunk (parallel prefill).
  void adopt(const ChunkPtr& chunk, std::vector<SamplePoint> samples);
  bool contains(const GorillaChunk* chunk) const {
    return decoded_.count(chunk) != 0;
  }
  std::size_t size() const { return decoded_.size(); }
  void clear() { decoded_.clear(); }

 private:
  std::unordered_map<const GorillaChunk*, std::vector<SamplePoint>> decoded_;
};

// One time-ordered segment of a series view: either a whole sealed chunk
// (kept compressed, decoded lazily) or an owned run of raw points (head
// samples, or the in-range part of a chunk that straddles the range
// boundary).
struct ChunkSlice {
  ChunkPtr chunk;                   // set: every sample is in range
  std::vector<SamplePoint> points;  // otherwise: pre-filtered raw points

  std::size_t count() const { return chunk ? chunk->count() : points.size(); }
  // Time bounds without decoding (0 when the slice is empty; slices built
  // by slices_between are never empty).
  TimestampMs min_time() const {
    return chunk ? chunk->min_time() : (points.empty() ? 0 : points.front().t);
  }
  TimestampMs max_time() const {
    return chunk ? chunk->max_time() : (points.empty() ? 0 : points.back().t);
  }
};

// A chunk-backed view of one series over a time range, as returned by
// Queryable::select(). Copying a view is cheap (label handle + chunk
// refcounts); samples() decodes. Materialise only at the point the full
// sample vector is actually consumed.
struct SeriesView {
  metrics::Labels labels;
  std::vector<ChunkSlice> slices;

  // Exact number of samples in range, without decoding.
  std::size_t sample_count() const;
  // Decodes and concatenates every slice (time-ordered).
  std::vector<SamplePoint> samples() const;
  // Same, but chunk-backed slices decode through `cache` — at most one
  // decode per chunk across every view sharing the cache.
  std::vector<SamplePoint> samples(DecodedChunkCache& cache) const;
  // Last sample in range; decodes at most one chunk.
  std::optional<SamplePoint> last() const;
  Series materialize() const { return {labels, samples()}; }

  // Wraps already-materialised samples (merged/derived series).
  static SeriesView owned(metrics::Labels labels,
                          std::vector<SamplePoint> samples);
};

// Samples-per-chunk seal threshold; 120 matches Prometheus (one chunk per
// hour at a 30s scrape interval).
inline constexpr std::size_t kChunkSamples = 120;

// ---------- multi-resolution aggregate chunks ----------
//
// The Thanos-compactor analogue: pre-aggregated per-bucket columns so
// long-range window queries fold a handful of buckets instead of decoding
// every raw sample. `t` is the bucket END boundary; the bucket covers raw
// samples with timestamps in (t - resolution, t] — left-open exactly like
// PromQL range selectors, so a window aligned to bucket boundaries tiles a
// whole number of buckets. The aggregate columns are computed over the
// bucket's samples with staleness markers filtered out (they feed
// range-function windows, which never see markers); a trailing marker is
// remembered separately in `marker_t` so the last-per-bucket history the
// long-term store synthesises for legacy readers keeps hiding resolved
// series, exactly like the raw tail would.
//
// The column set is what the exactness proofs in DESIGN.md §10 need:
// count/sum/min/max answer the *_over_time family, first/last values and
// timestamps anchor window boundaries and the rate extrapolation, and
// `inc` (the positive-delta fold within the bucket, i.e. Thanos' counter
// aggregate) stitches reset-aware increase/rate across bucket boundaries.
struct AggBucket {
  TimestampMs t = 0;        // bucket end boundary
  uint32_t count = 0;       // non-marker samples aggregated (NaN included)
  double sum = 0;           // left-fold of sample values in time order
  double min = 0;           // min over non-NaN samples (NaN if none)
  double max = 0;           // max over non-NaN samples (NaN if none)
  double first_v = 0;       // first sample value in the bucket
  double last_v = 0;        // last sample value in the bucket
  double inc = 0;           // counter increase within the bucket
  TimestampMs first_t = 0;  // timestamp of the first sample
  TimestampMs last_t = 0;   // timestamp of the last sample
  // When the bucket's chronologically last sample (markers included) is a
  // staleness marker, its timestamp; 0 otherwise. count == 0 with a set
  // marker_t means the bucket held only markers.
  TimestampMs marker_t = 0;
};

// One sealed, immutable compressed run of aggregate buckets. Bucket-end
// timestamps are delta-of-delta coded like raw chunk timestamps;
// first_t/last_t ride as deltas of their offset from the bucket end (zero
// bits per bucket under a regular scrape cadence); the six value columns
// are XOR coded, each against its own predecessor, so slowly-varying
// aggregates cost a few bits per bucket. Bit-lossless, like GorillaChunk.
class AggChunk {
 public:
  // Encodes `count` time-ordered buckets (strictly increasing t, count>=1).
  static std::shared_ptr<const AggChunk> encode(const AggBucket* buckets,
                                                std::size_t count);

  // Decodes every bucket. Returns nullopt on a malformed byte stream
  // (cannot happen for chunks built by encode()).
  std::optional<std::vector<AggBucket>> decode() const;

  uint32_t count() const { return count_; }
  TimestampMs min_time() const { return min_t_; }  // first bucket end
  TimestampMs max_time() const { return max_t_; }  // last bucket end
  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  AggChunk(std::vector<uint8_t> bytes, uint32_t count, TimestampMs min_t,
           TimestampMs max_t)
      : bytes_(std::move(bytes)), count_(count), min_t_(min_t), max_t_(max_t) {}

  std::vector<uint8_t> bytes_;
  uint32_t count_;
  TimestampMs min_t_;
  TimestampMs max_t_;
};

using AggChunkPtr = std::shared_ptr<const AggChunk>;

// A materialised aggregate view of one series at one resolution level, as
// returned by Queryable::select_agg(). Buckets are time-ordered and the
// view is only handed out when the level covers the requested span exactly,
// so an absent bucket means "no raw samples in that bucket".
struct AggSeriesView {
  metrics::Labels labels;
  std::vector<AggBucket> buckets;
};

// Buckets-per-chunk seal threshold. 120 five-minute buckets = 10 h per
// sealed aggregate chunk.
inline constexpr std::size_t kAggChunkBuckets = 120;

// Floor division (round toward -inf), so bucket boundaries are stable
// across t = 0 — C++ integer division truncates toward zero instead.
constexpr int64_t floor_div(int64_t a, int64_t b) {
  return a / b - ((a % b != 0 && (a < 0) != (b < 0)) ? 1 : 0);
}

// Non-negative remainder of a modulo b (b > 0) — the planner's alignment
// checks must treat negative timestamps consistently with floor_div.
constexpr int64_t floor_mod(int64_t a, int64_t b) {
  return a - floor_div(a, b) * b;
}

// End boundary of the bucket containing sample timestamp t at the given
// resolution: the smallest multiple of resolution_ms that is >= t (buckets
// are left-open, so a sample exactly on a boundary belongs to the bucket
// ending there).
constexpr TimestampMs agg_bucket_end(TimestampMs t, int64_t resolution_ms) {
  return floor_div(t - 1, resolution_ms) * resolution_ms + resolution_ms;
}

// Sealed aggregate chunks plus a small mutable head of buckets — the same
// surface shape as ChunkedSeries, at bucket granularity. Appends must carry
// strictly increasing bucket-end timestamps (compaction only ever emits
// complete buckets in time order).
class AggChunkedSeries {
 public:
  // Rejects (returns false) buckets not strictly newer than the last one.
  bool append(const AggBucket& bucket);

  std::size_t num_buckets() const { return total_; }
  bool empty() const { return total_ == 0; }
  TimestampMs min_time() const;
  TimestampMs max_time() const { return last_t_; }

  // Sealed chunk bytes + head capacity, for StorageStats accounting.
  std::size_t approx_bytes() const;

  // Materialised buckets with end timestamps in [min_end, max_end].
  // Straddling chunks decode and filter; fully-covered chunks decode once.
  std::vector<AggBucket> buckets_between(TimestampMs min_end,
                                         TimestampMs max_end) const;

  // Drops buckets with end < cutoff; returns how many were dropped. A
  // chunk straddling the cutoff is decoded, filtered and re-sealed.
  std::size_t drop_before(TimestampMs cutoff);

  const std::vector<AggChunkPtr>& sealed() const { return sealed_; }
  const std::vector<AggBucket>& head() const { return head_; }

 private:
  std::vector<AggChunkPtr> sealed_;
  std::vector<AggBucket> head_;
  TimestampMs last_t_ = 0;
  std::size_t total_ = 0;
};

enum class AppendResult { kRejected, kAppended, kOverwrote };

class ChunkedSeries {
 public:
  // Ordering rules match the old raw-vector store: a timestamp older than
  // the newest sample is rejected, an equal timestamp overwrites the
  // newest sample's value (last write wins), a newer one is appended.
  AppendResult append(TimestampMs t, double v);

  std::size_t num_samples() const { return total_; }
  bool empty() const { return total_ == 0; }
  TimestampMs min_time() const;
  TimestampMs max_time() const { return last_t_; }

  // Sealed chunk bytes + head capacity: the real storage footprint this
  // series contributes to StorageStats::approx_bytes.
  std::size_t approx_bytes() const;

  // Chunk-backed slices covering [min_t, max_t]; boundary chunks are
  // decoded and filtered eagerly (so a view with sample_count() == 0 means
  // "no samples in range" exactly). Fully-covered chunks stay compressed.
  std::vector<ChunkSlice> slices_between(TimestampMs min_t,
                                         TimestampMs max_t) const;
  // Materialised samples in [min_t, max_t] (replication / compaction use).
  std::vector<SamplePoint> samples_between(TimestampMs min_t,
                                           TimestampMs max_t) const;

  // Drops samples with t < cutoff; returns how many were dropped. A chunk
  // straddling the cutoff is decoded, filtered and re-sealed.
  std::size_t drop_before(TimestampMs cutoff);

  const std::vector<ChunkPtr>& sealed() const { return sealed_; }
  const std::vector<SamplePoint>& head() const { return head_; }

  // Snapshot-restore fast path: adopts a sealed chunk wholesale. Only
  // valid when the chunk is strictly newer than everything stored so far.
  bool adopt_sealed(ChunkPtr chunk);

 private:
  std::vector<ChunkPtr> sealed_;
  std::vector<SamplePoint> head_;
  TimestampMs last_t_ = 0;
  std::size_t total_ = 0;
};

}  // namespace ceems::tsdb
