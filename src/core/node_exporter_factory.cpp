#include "core/node_exporter_factory.h"

#include "exporter/cgroup_collector.h"
#include "exporter/ebpf_collector.h"
#include "exporter/gpu_collector.h"
#include "exporter/gpu_map_collector.h"
#include "exporter/ipmi_collector.h"
#include "exporter/node_collector.h"
#include "exporter/rapl_collector.h"

namespace ceems::core {

std::string nodegroup_of(const node::NodeSpec& spec) {
  if (spec.gpus.empty()) {
    return spec.cpu_vendor == node::CpuVendor::kIntel ? "intel-cpu"
                                                      : "amd-cpu";
  }
  return spec.ipmi_includes_gpu ? "gpu-incl" : "gpu-excl";
}

std::unique_ptr<exporter::Exporter> make_ceems_exporter(
    const node::NodeSimPtr& node, common::ClockPtr clock,
    exporter::ExporterConfig config, bool merge_gpu_exporter) {
  auto out = std::make_unique<exporter::Exporter>(std::move(config), clock);
  out->add_collector(std::make_shared<exporter::CgroupCollector>(
      node->fs(), simfs::kSlurmScope));
  out->add_collector(std::make_shared<exporter::NodeCollector>(node->fs()));
  out->add_collector(std::make_shared<exporter::RaplCollector>(node->fs()));
  out->add_collector(std::make_shared<exporter::IpmiCollector>(
      [node] { return node::format_dcmi_output(node->ipmi().read()); }));
  // §IV roadmap collectors (network via eBPF, FLOPS/caching via perf),
  // implemented against the simulator's kernel-side stand-in.
  out->add_collector(std::make_shared<exporter::EbpfCollector>(
      [node] { return node->ebpf_stats(); }));
  if (!node->spec().gpus.empty()) {
    out->add_collector(std::make_shared<exporter::GpuMapCollector>(
        [node] { return node->workloads(); }, node->gpus()));
    if (merge_gpu_exporter) {
      out->add_collector(
          std::make_shared<exporter::GpuCollector>(node->gpus()));
    }
  }
  return out;
}

std::unique_ptr<exporter::Exporter> make_gpu_exporter(
    const node::NodeSimPtr& node, common::ClockPtr clock,
    exporter::ExporterConfig config) {
  config.enable_self_metrics = false;
  auto out = std::make_unique<exporter::Exporter>(std::move(config), clock);
  out->add_collector(std::make_shared<exporter::GpuCollector>(node->gpus()));
  return out;
}

}  // namespace ceems::core
