// HTTP/1.1 server over POSIX sockets: one accept thread plus a fixed worker
// pool. Supports keep-alive, Content-Length bodies, exact and prefix route
// registration, and optional basic auth — everything CEEMS components need
// and nothing more.
//
// The paper notes the exporter "supports basic auth and TLS to protect it
// from DoS/DDoS". Basic auth is implemented here; TLS is replaced by a
// pluggable ConnectionFilter hook (see DESIGN.md substitution table) since
// no crypto stack is available offline. The filter sees the peer before any
// bytes are parsed, which is where a TLS handshake would sit.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/threadpool.h"
#include "faults/fault.h"
#include "http/message.h"

namespace ceems::http {

using Handler = std::function<Response(const Request&)>;

// Returns true to accept the connection. Stands in for the TLS handshake /
// IP allowlists of a production deployment.
using ConnectionFilter = std::function<bool(const std::string& peer_address)>;

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; bound port available via port()
  std::size_t worker_threads = 4;
  std::size_t max_body_bytes = 8 * 1024 * 1024;
  BasicAuthConfig basic_auth;
  ConnectionFilter connection_filter;
  // Chaos injection: consulted per request before routing; an
  // kHttpStatus decision short-circuits into that status. Empty in
  // production.
  faults::FaultHook fault_hook;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Registers a handler for an exact path.
  void handle(const std::string& path, Handler handler);
  // Registers a handler for every path beginning with `prefix`.
  void handle_prefix(const std::string& prefix, Handler handler);
  // Fallback when no route matches (default: 404).
  void set_default_handler(Handler handler);

  // Binds, listens and starts the accept loop. Throws std::runtime_error
  // when the socket cannot be bound.
  void start();
  void stop();

  uint16_t port() const { return port_; }
  std::string base_url() const;
  bool running() const { return running_.load(); }

  // Total requests served (for tests and the LB's least-connection state).
  uint64_t requests_served() const { return requests_served_.load(); }
  // Requests currently being handled.
  int inflight() const { return inflight_.load(); }

 private:
  void accept_loop();
  void serve_connection(int client_fd, const std::string& peer);
  std::optional<Request> read_request(int fd, std::string& buffer,
                                      bool& keep_alive);
  Response dispatch(const Request& request);

  ServerConfig config_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<int> inflight_{0};
  std::thread accept_thread_;
  std::unique_ptr<common::ThreadPool> workers_;

  std::mutex routes_mu_;
  std::vector<std::pair<std::string, Handler>> exact_routes_;
  std::vector<std::pair<std::string, Handler>> prefix_routes_;
  Handler default_handler_;
};

}  // namespace ceems::http
