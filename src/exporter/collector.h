// Collector framework of the CEEMS exporter (§II-B.a): the exporter is an
// HTTP server whose /metrics response is assembled from independent
// collectors, each of which "can be enabled or disabled based on needs".
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "metrics/model.h"

namespace ceems::exporter {

class Collector {
 public:
  virtual ~Collector() = default;
  virtual std::string name() const = 0;
  // Produces the collector's metric families for this scrape. Collectors
  // must be cheap and side-effect free apart from their own cursors; they
  // run on every scrape request.
  virtual std::vector<metrics::MetricFamily> collect(
      common::TimestampMs now) = 0;
};

using CollectorPtr = std::shared_ptr<Collector>;

// Labels every CEEMS compute-unit metric carries (§II-B.b: the API server
// unifies resource managers behind one schema keyed by uuid + manager).
inline constexpr const char* kUuidLabel = "uuid";
inline constexpr const char* kManagerLabel = "manager";

}  // namespace ceems::exporter
