# Empty compiler generated dependencies file for jean_zay.
# This may be replaced when dependencies are built.
