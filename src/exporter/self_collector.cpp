#include "exporter/self_collector.h"

#include <unistd.h>

#include <fstream>
#include <sstream>

namespace ceems::exporter {

using metrics::Labels;
using metrics::MetricFamily;
using metrics::MetricType;

std::size_t process_resident_bytes() {
  std::ifstream statm("/proc/self/statm");
  std::size_t size_pages = 0, resident_pages = 0;
  statm >> size_pages >> resident_pages;
  return resident_pages * static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
}

double process_cpu_seconds() {
  std::ifstream stat("/proc/self/stat");
  std::string token;
  // Fields 14 and 15 are utime/stime in clock ticks; field 2 (comm) may
  // contain spaces but is parenthesized — skip to the closing paren.
  std::string line;
  std::getline(stat, line);
  std::size_t close = line.rfind(')');
  if (close == std::string::npos) return 0;
  std::istringstream rest(line.substr(close + 2));
  long long utime = 0, stime = 0;
  std::string field;
  for (int i = 3; i <= 13; ++i) rest >> field;
  rest >> utime >> stime;
  return static_cast<double>(utime + stime) /
         static_cast<double>(::sysconf(_SC_CLK_TCK));
}

std::vector<metrics::MetricFamily> SelfCollector::collect(
    common::TimestampMs /*now*/) {
  std::vector<MetricFamily> out = registry_->collect();

  MetricFamily rss{"process_resident_memory_bytes",
                   "Resident memory of the exporter process.",
                   MetricType::kGauge,
                   {}};
  rss.add(Labels{}, static_cast<double>(process_resident_bytes()));
  out.push_back(std::move(rss));

  MetricFamily cpu{"process_cpu_seconds_total",
                   "Cumulative CPU time of the exporter process.",
                   MetricType::kCounter,
                   {}};
  cpu.add(Labels{}, process_cpu_seconds());
  out.push_back(std::move(cpu));
  return out;
}

}  // namespace ceems::exporter
