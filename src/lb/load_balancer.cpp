#include "lb/load_balancer.h"

#include <limits>

#include "common/logging.h"

namespace ceems::lb {

const char* circuit_state_name(CircuitState state) {
  switch (state) {
    case CircuitState::kClosed: return "closed";
    case CircuitState::kOpen: return "open";
    case CircuitState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

LoadBalancer::LoadBalancer(LbConfig config,
                           std::vector<std::string> backend_urls,
                           common::ClockPtr clock)
    : config_(std::move(config)),
      clock_(std::move(clock)),
      server_(config_.http) {
  for (auto& url : backend_urls) {
    auto backend = std::make_unique<Backend>();
    backend->base_url = std::move(url);
    backends_.push_back(std::move(backend));
  }
  server_.handle_prefix("/api/v1/", [this](const http::Request& request) {
    return handle_proxy(request);
  });
  server_.handle("/health", [](const http::Request&) {
    return http::Response::json(200, "{\"status\":\"ok\"}");
  });
  server_.handle("/metrics", [this](const http::Request&) {
    return http::Response::text(200, render_metrics());
  });
}

LoadBalancer::~LoadBalancer() { stop(); }

void LoadBalancer::start() { server_.start(); }
void LoadBalancer::stop() { server_.stop(); }

bool LoadBalancer::check_ownership(const std::string& user,
                                   const std::set<std::string>& uuids) {
  if (api_server_) {
    for (const auto& uuid : uuids) {
      if (!api_server_->verify_ownership(user, uuid)) return false;
    }
    return true;
  }
  if (config_.api_server_url.empty()) return false;
  // HTTP fallback (§II-C): ask the API server's verify endpoint.
  std::string url = config_.api_server_url + "/api/v1/units/verify?";
  bool first = true;
  for (const auto& uuid : uuids) {
    if (!first) url += "&";
    first = false;
    url += "uuid=" + http::url_encode(uuid);
  }
  http::Client client;
  http::HeaderMap headers;
  headers[apiserver::kGrafanaUserHeader] = user;
  auto result = client.get(url, headers);
  return result.ok && result.response.status == 200;
}

bool LoadBalancer::selectable(const Backend& backend,
                              common::TimestampMs now) const {
  if (!circuit_enabled()) return true;
  std::lock_guard lock(backend.mu);
  switch (backend.state) {
    case CircuitState::kClosed:
      return true;
    case CircuitState::kOpen:
      return now >= backend.open_until_ms;
    case CircuitState::kHalfOpen:
      return !backend.probe_inflight;
  }
  return true;
}

bool LoadBalancer::try_acquire(Backend& backend, common::TimestampMs now) {
  if (!circuit_enabled()) return true;
  std::lock_guard lock(backend.mu);
  switch (backend.state) {
    case CircuitState::kClosed:
      return true;
    case CircuitState::kOpen:
      if (now < backend.open_until_ms) return false;
      backend.state = CircuitState::kHalfOpen;
      backend.probe_inflight = true;
      return true;
    case CircuitState::kHalfOpen:
      if (backend.probe_inflight) return false;
      backend.probe_inflight = true;
      return true;
  }
  return true;
}

void LoadBalancer::on_result(Backend& backend, bool ok,
                             common::TimestampMs now) {
  if (!circuit_enabled()) return;
  std::lock_guard lock(backend.mu);
  backend.probe_inflight = false;
  if (ok) {
    backend.state = CircuitState::kClosed;
    backend.consecutive_failures = 0;
    return;
  }
  if (backend.state == CircuitState::kHalfOpen) {
    // Failed probe: straight back to open for another cooldown.
    backend.state = CircuitState::kOpen;
    backend.open_until_ms = now + config_.failover_cooldown_ms;
    ++backend.opens_total;
    return;
  }
  if (++backend.consecutive_failures >= config_.circuit_failure_threshold) {
    backend.state = CircuitState::kOpen;
    backend.open_until_ms = now + config_.failover_cooldown_ms;
    backend.consecutive_failures = 0;
    ++backend.opens_total;
  }
}

LoadBalancer::Backend* LoadBalancer::pick_backend(common::TimestampMs now) {
  if (backends_.empty()) return nullptr;
  if (config_.strategy == Strategy::kRoundRobin) {
    // Skip backends whose circuit won't admit a request, up to one
    // rotation; when nothing is selectable the caller answers 503.
    for (std::size_t i = 0; i < backends_.size(); ++i) {
      std::size_t index = round_robin_next_.fetch_add(1) % backends_.size();
      if (selectable(*backends_[index], now)) return backends_[index].get();
    }
    return nullptr;
  }
  // Least connection among selectable backends.
  Backend* best = nullptr;
  int best_inflight = std::numeric_limits<int>::max();
  for (const auto& backend : backends_) {
    if (!selectable(*backend, now)) continue;
    int inflight = backend->inflight.load();
    if (inflight < best_inflight) {
      best_inflight = inflight;
      best = backend.get();
    }
  }
  return best;
}

http::Response LoadBalancer::handle_proxy(const http::Request& request) {
  std::string user =
      request.header(apiserver::kGrafanaUserHeader).value_or("");
  if (user.empty()) {
    ++denied_;
    return http::Response::forbidden("missing X-Grafana-User header");
  }
  bool admin = config_.admin_users.count(user) > 0;

  // Introspect the PromQL query (query endpoints only; /api/v1/series uses
  // match[] selectors which go through the same code).
  std::string path = request.path();
  std::vector<std::string> queries;
  if (path == "/api/v1/query" || path == "/api/v1/query_range") {
    auto params = request.query_params();
    auto it = params.find("query");
    if (it != params.end()) queries.push_back(it->second);
  } else if (path == "/api/v1/series") {
    queries = request.query_param_all("match[]");
  }

  if (!admin) {
    if (queries.empty()) {
      ++denied_;
      return http::Response::forbidden("only query endpoints are allowed");
    }
    std::set<std::string> uuids;
    for (const auto& query : queries) {
      IntrospectResult result = introspect_query(query);
      if (!result.parse_ok) {
        ++denied_;
        return http::Response::bad_request("unparsable query: " +
                                           result.error);
      }
      if (result.has_unverifiable_selector) {
        ++denied_;
        return http::Response::forbidden(
            "query must pin uuid=\"...\" on every selector");
      }
      uuids.insert(result.uuids.begin(), result.uuids.end());
    }
    if (!check_ownership(user, uuids)) {
      ++denied_;
      return http::Response::forbidden("user " + user +
                                       " does not own the queried units");
    }
  }

  http::HeaderMap headers = request.headers;
  headers.erase("Host");
  headers.erase("Content-Length");
  headers.erase("Connection");

  // Failover: a transport failure moves on to the next backend, up to one
  // full rotation. The circuit breaker decides which backends may even be
  // tried; when no circuit admits a request the answer is an immediate
  // 503, which is distinct from 502 (= every admitted backend was probed
  // and failed).
  std::string last_error = "no backends configured";
  bool attempted = false;
  for (std::size_t attempt = 0; attempt < backends_.size(); ++attempt) {
    common::TimestampMs now = clock_->now_ms();
    Backend* backend = pick_backend(now);
    if (!backend) break;
    if (!try_acquire(*backend, now)) continue;
    attempted = true;
    ++backend->inflight;
    ++backend->requests;
    http::FetchResult result;
    faults::FaultDecision fault;
    if (config_.fault_hook) {
      fault = config_.fault_hook("lb.backend", backend->base_url);
    }
    if (fault) {
      result.ok = false;
      result.error = std::string("injected fault: ") +
                     faults::fault_kind_name(fault.kind);
    } else {
      http::Client client;
      result = client.request(request.method,
                              backend->base_url + request.target,
                              request.body, headers);
    }
    --backend->inflight;
    on_result(*backend, result.ok, clock_->now_ms());
    if (result.ok) return result.response;
    ++backend->failures;
    last_error = result.error;
  }
  if (!attempted && !backends_.empty()) {
    return http::Response::json(
        503,
        "{\"status\":\"error\",\"error\":\"all backends circuit-open\"}");
  }
  return http::Response::json(
      502, "{\"status\":\"error\",\"error\":\"backends unreachable: " +
               last_error + "\"}");
}

std::vector<BackendStats> LoadBalancer::backend_stats() const {
  std::vector<BackendStats> out;
  for (const auto& backend : backends_) {
    BackendStats stats;
    stats.base_url = backend->base_url;
    stats.requests = backend->requests.load();
    stats.failures = backend->failures.load();
    stats.inflight = backend->inflight.load();
    {
      std::lock_guard lock(backend->mu);
      stats.circuit = backend->state;
      stats.circuit_opens = backend->opens_total;
    }
    out.push_back(std::move(stats));
  }
  return out;
}

std::string LoadBalancer::render_metrics() const {
  std::string out;
  auto append = [&](const std::string& name, const std::string& backend,
                    uint64_t value) {
    out += name;
    if (!backend.empty()) out += "{backend=\"" + backend + "\"}";
    out += " " + std::to_string(value) + "\n";
  };
  out += "# TYPE ceems_lb_backend_circuit_state gauge\n";
  out += "# TYPE ceems_lb_backend_circuit_opens_total counter\n";
  out += "# TYPE ceems_lb_backend_requests_total counter\n";
  out += "# TYPE ceems_lb_backend_failures_total counter\n";
  for (const auto& stats : backend_stats()) {
    // 0 = closed, 1 = open, 2 = half-open.
    append("ceems_lb_backend_circuit_state", stats.base_url,
           static_cast<uint64_t>(stats.circuit));
    append("ceems_lb_backend_circuit_opens_total", stats.base_url,
           stats.circuit_opens);
    append("ceems_lb_backend_requests_total", stats.base_url, stats.requests);
    append("ceems_lb_backend_failures_total", stats.base_url, stats.failures);
  }
  out += "# TYPE ceems_lb_denied_total counter\n";
  append("ceems_lb_denied_total", "", denied_.load());
  return out;
}

}  // namespace ceems::lb
