// Clock abstraction shared by every CEEMS component.
//
// A monitoring stack is fundamentally about time: scrape intervals, rate()
// windows, retention cutoffs. To make the whole stack deterministic under
// test, no component ever calls std::chrono directly — everything receives a
// Clock. RealClock wraps the system clock; SimClock is a manually advanced
// clock whose sleepers are woken by advance(), which is what lets the
// cluster simulator run "three months of Jean-Zay" in milliseconds.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>

namespace ceems::common {

// All CEEMS timestamps are milliseconds since the Unix epoch, matching the
// Prometheus wire format.
using TimestampMs = int64_t;

constexpr TimestampMs kMillisPerSecond = 1000;
constexpr TimestampMs kMillisPerMinute = 60 * kMillisPerSecond;
constexpr TimestampMs kMillisPerHour = 60 * kMillisPerMinute;
constexpr TimestampMs kMillisPerDay = 24 * kMillisPerHour;

class Clock {
 public:
  virtual ~Clock() = default;

  // Current time in milliseconds since the epoch.
  virtual TimestampMs now_ms() const = 0;

  // Blocks until the clock reaches `deadline_ms` or `interrupt` below is
  // called. Returns false if interrupted before the deadline.
  virtual bool sleep_until(TimestampMs deadline_ms) = 0;

  // Wakes every sleeper immediately (used for component shutdown).
  virtual void interrupt() = 0;

  bool sleep_for(TimestampMs duration_ms) {
    return sleep_until(now_ms() + duration_ms);
  }
};

using ClockPtr = std::shared_ptr<Clock>;

// Wall-clock implementation used by live deployments and the examples.
class RealClock final : public Clock {
 public:
  TimestampMs now_ms() const override;
  bool sleep_until(TimestampMs deadline_ms) override;
  void interrupt() override;

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool interrupted_ = false;
};

// Deterministic clock for tests and the cluster simulator. Time only moves
// when advance()/set() is called; sleepers whose deadline is reached are
// woken in deadline order.
class SimClock final : public Clock {
 public:
  explicit SimClock(TimestampMs start_ms = 0) : now_(start_ms) {}

  TimestampMs now_ms() const override;
  bool sleep_until(TimestampMs deadline_ms) override;
  void interrupt() override;

  // Moves time forward, waking any sleeper whose deadline has passed.
  // Blocks until every such sleeper has actually left sleep_until, so a
  // driver polling sleeper_count() cannot spend two advances on the same
  // sleep when the woken thread has not been scheduled yet.
  void advance(TimestampMs delta_ms);
  void set(TimestampMs now_ms);

  // Number of threads currently blocked in sleep_until. Lets a driver
  // advance time only once all periodic workers are parked.
  int sleeper_count() const;

 private:
  void wait_for_due_sleepers(std::unique_lock<std::mutex>& lock);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  // Signalled each time a sleeper exits sleep_until; advance()/set() wait on
  // it until no sleeper with an expired deadline remains parked.
  std::condition_variable sleeper_exit_cv_;
  TimestampMs now_;
  bool interrupted_ = false;
  int sleepers_ = 0;
  std::multiset<TimestampMs> sleeper_deadlines_;
};

ClockPtr make_real_clock();
std::shared_ptr<SimClock> make_sim_clock(TimestampMs start_ms = 0);

}  // namespace ceems::common
