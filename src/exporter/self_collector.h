// Self-telemetry of the exporter process. E1 (DESIGN.md) checks the
// paper's prose claims — "the exporter consumes 15-20 MB of memory and
// each scrape request takes less than 1 microsecond of CPU time" — so this
// collector reads the REAL /proc/self/statm of the host process plus the
// instrument registry (scrape counts and durations maintained by the
// Exporter).
#pragma once

#include <memory>

#include "exporter/collector.h"
#include "metrics/registry.h"

namespace ceems::exporter {

// Resident set size of the calling process in bytes (real procfs read).
std::size_t process_resident_bytes();
// Cumulative CPU time of the calling process in seconds (utime+stime).
double process_cpu_seconds();

class SelfCollector final : public Collector {
 public:
  explicit SelfCollector(std::shared_ptr<metrics::Registry> registry)
      : registry_(std::move(registry)) {}

  std::string name() const override { return "self"; }
  std::vector<metrics::MetricFamily> collect(common::TimestampMs now) override;

 private:
  std::shared_ptr<metrics::Registry> registry_;
};

}  // namespace ceems::exporter
