file(REMOVE_RECURSE
  "CMakeFiles/simfs_test.dir/simfs_test.cpp.o"
  "CMakeFiles/simfs_test.dir/simfs_test.cpp.o.d"
  "simfs_test"
  "simfs_test.pdb"
  "simfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
