#include <gtest/gtest.h>

#include <string_view>

#include "core/node_exporter_factory.h"
#include "metrics/model.h"
#include "exporter/exporter.h"
#include "http/server.h"
#include "node/node_sim.h"
#include "tsdb/scrape.h"

namespace ceems::tsdb {
namespace {

using common::make_sim_clock;

class ScrapeTest : public ::testing::Test {
 protected:
  ScrapeTest()
      : clock_(make_sim_clock(1000000)),
        store_(std::make_shared<TimeSeriesStore>()) {}

  std::shared_ptr<common::SimClock> clock_;
  StorePtr store_;
};

TEST_F(ScrapeTest, HttpTargetIngestedWithTargetLabels) {
  http::Server server{http::ServerConfig{}};
  server.handle("/metrics", [](const http::Request&) {
    return http::Response::text(200,
                                "# TYPE m counter\nm{mode=\"user\"} 42\n");
  });
  server.start();

  ScrapeManager manager(store_, clock_);
  ScrapeTarget target;
  target.url = server.base_url() + "/metrics";
  target.labels = metrics::Labels{{"hostname", "n1"}};
  manager.add_target(std::move(target));

  ScrapeStats stats = manager.scrape_all_once();
  EXPECT_EQ(stats.scrapes_total, 1u);
  EXPECT_EQ(stats.scrapes_failed, 0u);
  EXPECT_EQ(stats.samples_ingested, 1u);

  auto series = store_->select({{"__name__", metrics::LabelMatcher::Op::kEq,
                                 "m"}},
                               0, clock_->now_ms());
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(*series[0].labels.get("hostname"), "n1");
  EXPECT_EQ(series[0].samples()[0].t, clock_->now_ms());

  auto up = store_->select({{"__name__", metrics::LabelMatcher::Op::kEq,
                             "up"}},
                           0, clock_->now_ms());
  ASSERT_EQ(up.size(), 1u);
  EXPECT_DOUBLE_EQ(up[0].samples()[0].v, 1);
  server.stop();
}

TEST_F(ScrapeTest, DeadTargetRecordsUpZero) {
  ScrapeManager manager(store_, clock_);
  ScrapeTarget target;
  target.url = "http://127.0.0.1:1/metrics";  // nothing listens
  target.labels = metrics::Labels{{"hostname", "dead"}};
  manager.add_target(std::move(target));

  ScrapeStats stats = manager.scrape_all_once();
  EXPECT_EQ(stats.scrapes_failed, 1u);
  auto up = store_->select({{"__name__", metrics::LabelMatcher::Op::kEq,
                             "up"}},
                           0, clock_->now_ms());
  ASSERT_EQ(up.size(), 1u);
  EXPECT_DOUBLE_EQ(up[0].samples()[0].v, 0);
}

TEST_F(ScrapeTest, MalformedExpositionIsScrapeFailure) {
  http::Server server{http::ServerConfig{}};
  server.handle("/metrics", [](const http::Request&) {
    return http::Response::text(200, "9bad{ 1\n");
  });
  server.start();
  ScrapeManager manager(store_, clock_);
  ScrapeTarget target;
  target.url = server.base_url() + "/metrics";
  manager.add_target(std::move(target));
  ScrapeStats stats = manager.scrape_all_once();
  EXPECT_EQ(stats.scrapes_failed, 1u);
  server.stop();
}

TEST_F(ScrapeTest, LocalTransportMatchesHttpPath) {
  ScrapeManager manager(store_, clock_);
  ScrapeTarget target;
  target.local_fetch = [] {
    return std::string("# TYPE g gauge\ng 7\n");
  };
  target.labels = metrics::Labels{{"hostname", "local1"}};
  manager.add_target(std::move(target));
  ScrapeStats stats = manager.scrape_all_once();
  EXPECT_EQ(stats.samples_ingested, 1u);
  auto series = store_->select({{"hostname", metrics::LabelMatcher::Op::kEq,
                                 "local1"}},
                               0, clock_->now_ms());
  // g + up + scrape_duration_seconds + ceems_http_retries_total
  EXPECT_EQ(series.size(), 4u);
}

TEST_F(ScrapeTest, LocalTransportEmptyIsFailure) {
  ScrapeManager manager(store_, clock_);
  ScrapeTarget target;
  target.local_fetch = [] { return std::string(); };
  manager.add_target(std::move(target));
  EXPECT_EQ(manager.scrape_all_once().scrapes_failed, 1u);
}

TEST_F(ScrapeTest, ManyTargetsScrapedInParallel) {
  ScrapeConfig config;
  config.parallelism = 8;
  ScrapeManager manager(store_, clock_, config);
  for (int i = 0; i < 50; ++i) {
    ScrapeTarget target;
    target.local_fetch = [i] {
      return "m{i=\"" + std::to_string(i) + "\"} " + std::to_string(i) + "\n";
    };
    target.labels = metrics::Labels{{"hostname", "n" + std::to_string(i)}};
    manager.add_target(std::move(target));
  }
  ScrapeStats stats = manager.scrape_all_once();
  EXPECT_EQ(stats.scrapes_total, 50u);
  EXPECT_EQ(stats.samples_ingested, 50u);
  // Per target: m + up + scrape_duration_seconds + ceems_http_retries_total.
  EXPECT_EQ(store_->stats().num_series, 200u);
}

TEST_F(ScrapeTest, BasicAuthAgainstExporter) {
  auto node = std::make_shared<node::NodeSim>(
      node::make_intel_cpu_node("n1"), clock_, 1);
  exporter::ExporterConfig config;
  config.http.basic_auth = {"prom", "pw"};
  auto exp = core::make_ceems_exporter(node, clock_, config);
  exp->start();

  // Without credentials: 401 → scrape failure.
  {
    ScrapeManager manager(store_, clock_);
    ScrapeTarget target;
    target.url = exp->metrics_url();
    manager.add_target(std::move(target));
    EXPECT_EQ(manager.scrape_all_once().scrapes_failed, 1u);
  }
  // With credentials: success.
  {
    auto store = std::make_shared<TimeSeriesStore>();
    ScrapeManager manager(store, clock_);
    ScrapeTarget target;
    target.url = exp->metrics_url();
    target.auth = {"prom", "pw"};
    manager.add_target(std::move(target));
    ScrapeStats stats = manager.scrape_all_once();
    EXPECT_EQ(stats.scrapes_failed, 0u);
    EXPECT_GT(stats.samples_ingested, 10u);
  }
  exp->stop();
}

TEST_F(ScrapeTest, RetryRecoversFlakyTargetAndCountsRetries) {
  ScrapeConfig config;
  config.retries = 1;
  // Fail the first fetch attempt of every sweep; the in-sweep retry lands.
  int attempt = 0;
  config.fault_hook = [&](std::string_view, std::string_view) {
    faults::FaultDecision fault;
    if (attempt++ % 2 == 0) fault.kind = faults::FaultKind::kIoTimeout;
    return fault;
  };
  ScrapeManager manager(store_, clock_, config);
  ScrapeTarget target;
  target.local_fetch = [] { return std::string("g 7\n"); };
  target.labels = metrics::Labels{{"instance", "flaky"}};
  manager.add_target(std::move(target));

  ScrapeStats stats = manager.scrape_all_once();
  EXPECT_EQ(stats.scrapes_failed, 0u);
  EXPECT_EQ(stats.retries, 1u);

  auto up = store_->select(
      {{"__name__", metrics::LabelMatcher::Op::kEq, "up"}}, 0,
      clock_->now_ms());
  ASSERT_EQ(up.size(), 1u);
  EXPECT_DOUBLE_EQ(up[0].samples()[0].v, 1);
  auto retries = store_->select(
      {{"__name__", metrics::LabelMatcher::Op::kEq,
        "ceems_http_retries_total"}},
      0, clock_->now_ms());
  ASSERT_EQ(retries.size(), 1u);
  EXPECT_DOUBLE_EQ(retries[0].samples()[0].v, 1);
}

TEST_F(ScrapeTest, FailedScrapeEmitsUpZeroAndStaleMarkers) {
  ScrapeConfig config;
  config.retries = 0;
  bool down = false;
  config.fault_hook = [&](std::string_view, std::string_view) {
    faults::FaultDecision fault;
    if (down) fault.kind = faults::FaultKind::kConnectTimeout;
    return fault;
  };
  ScrapeManager manager(store_, clock_, config);
  ScrapeTarget target;
  target.local_fetch = [] { return std::string("g 7\nh 8\n"); };
  target.labels = metrics::Labels{{"instance", "i1"}};
  manager.add_target(std::move(target));

  manager.scrape_all_once();
  clock_->advance(30000);
  down = true;
  ScrapeStats stats = manager.scrape_all_once();
  EXPECT_EQ(stats.scrapes_failed, 1u);
  EXPECT_EQ(stats.stale_markers, 2u);  // g and h

  auto up = store_->select(
      {{"__name__", metrics::LabelMatcher::Op::kEq, "up"}}, 0,
      clock_->now_ms());
  ASSERT_EQ(up.size(), 1u);
  ASSERT_EQ(up[0].samples().size(), 2u);
  EXPECT_DOUBLE_EQ(up[0].samples()[1].v, 0);

  for (const char* name : {"g", "h"}) {
    auto series = store_->select(
        {{"__name__", metrics::LabelMatcher::Op::kEq, name}}, 0,
        clock_->now_ms());
    ASSERT_EQ(series.size(), 1u) << name;
    ASSERT_EQ(series[0].samples().size(), 2u) << name;
    EXPECT_TRUE(metrics::is_stale_marker(series[0].samples()[1].v)) << name;
  }

  // A third failed sweep appends nothing further: the series are already
  // marked and live_series is empty.
  clock_->advance(30000);
  EXPECT_EQ(manager.scrape_all_once().stale_markers, 0u);
}

TEST_F(ScrapeTest, DisappearingSeriesGetsStaleMarker) {
  ScrapeManager manager(store_, clock_);
  int sweep = 0;
  ScrapeTarget target;
  target.local_fetch = [&] {
    return sweep == 0 ? std::string("g 1\nh 2\n") : std::string("g 1\n");
  };
  target.labels = metrics::Labels{{"instance", "i1"}};
  manager.add_target(std::move(target));

  manager.scrape_all_once();
  sweep = 1;
  clock_->advance(30000);
  ScrapeStats stats = manager.scrape_all_once();
  EXPECT_EQ(stats.scrapes_failed, 0u);
  EXPECT_EQ(stats.stale_markers, 1u);

  auto h = store_->select(
      {{"__name__", metrics::LabelMatcher::Op::kEq, "h"}}, 0,
      clock_->now_ms());
  ASSERT_EQ(h.size(), 1u);
  ASSERT_EQ(h[0].samples().size(), 2u);
  EXPECT_TRUE(metrics::is_stale_marker(h[0].samples()[1].v));
  auto g = store_->select(
      {{"__name__", metrics::LabelMatcher::Op::kEq, "g"}}, 0,
      clock_->now_ms());
  ASSERT_EQ(g.size(), 1u);
  for (const auto& sample : g[0].samples()) {
    EXPECT_FALSE(metrics::is_stale_marker(sample.v));
  }
}

TEST_F(ScrapeTest, BackgroundLoopScrapesOnSimClock) {
  ScrapeConfig config;
  config.interval_ms = 30000;
  ScrapeManager manager(store_, clock_, config);
  ScrapeTarget target;
  target.local_fetch = [] { return std::string("g 1\n"); };
  manager.add_target(std::move(target));

  manager.start();
  for (int i = 0; i < 3; ++i) {
    while (clock_->sleeper_count() == 0) std::this_thread::yield();
    clock_->advance(30000);
  }
  manager.stop();
  EXPECT_GE(manager.stats().scrapes_total, 3u);
}

}  // namespace
}  // namespace ceems::tsdb
