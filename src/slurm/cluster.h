// Cluster topology: named partitions of simulated nodes, as on Jean-Zay
// (Intel CPU partition, AMD CPU partition, V100/A100/H100 GPU partitions).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "node/node_sim.h"

namespace ceems::slurm {

class Cluster {
 public:
  Cluster(std::string name, common::ClockPtr clock, uint64_t seed);

  const std::string& name() const { return name_; }
  common::ClockPtr clock() const { return clock_; }

  // Adds `count` nodes built by `make_spec(hostname)` to `partition`.
  // Hostnames are "<prefix><i>".
  void add_partition(const std::string& partition, const std::string& prefix,
                     int count,
                     node::NodeSpec (*make_spec)(const std::string&));

  node::NodeSimPtr node(const std::string& hostname) const;
  const std::vector<node::NodeSimPtr>& partition_nodes(
      const std::string& partition) const;
  std::vector<std::string> partitions() const;
  std::vector<node::NodeSimPtr> all_nodes() const;
  std::size_t node_count() const { return nodes_by_name_.size(); }

  // Advances the accounting/physics of every node.
  void step_nodes(int64_t dt_ms);

 private:
  std::string name_;
  common::ClockPtr clock_;
  uint64_t seed_;
  std::map<std::string, node::NodeSimPtr> nodes_by_name_;
  std::map<std::string, std::vector<node::NodeSimPtr>> partitions_;
};

}  // namespace ceems::slurm
