#include "common/threadpool.h"

namespace ceems::common {

ThreadPool::ThreadPool(std::size_t num_threads, std::string name)
    : name_(std::move(name)) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(/*drain=*/false); }

bool ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    if (!accepting_) return false;
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
  return true;
}

void ThreadPool::run_all(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  struct Sync {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining;
    std::exception_ptr error;
  };
  auto sync = std::make_shared<Sync>();
  sync->remaining = tasks.size();
  for (auto& task : tasks) {
    auto wrapped = [sync, task = std::move(task)]() mutable {
      std::exception_ptr error;
      try {
        task();
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard lock(sync->mu);
      if (error && !sync->error) sync->error = error;
      if (--sync->remaining == 0) sync->cv.notify_all();
    };
    if (!submit(wrapped)) wrapped();  // shutting down: run inline
  }
  std::unique_lock lock(sync->mu);
  sync->cv.wait(lock, [&] { return sync->remaining == 0; });
  if (sync->error) std::rethrow_exception(sync->error);
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::shutdown(bool drain) {
  {
    std::lock_guard lock(mu_);
    accepting_ = false;
    if (!drain) queue_.clear();
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace ceems::common
