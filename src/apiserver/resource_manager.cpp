#include "apiserver/resource_manager.h"

#include <algorithm>

namespace ceems::apiserver {

Unit SlurmAdapter::to_unit(const slurm::Job& job, const std::string& cluster) {
  Unit unit;
  unit.uuid = std::to_string(job.job_id);
  unit.cluster = cluster;
  unit.resource_manager = "slurm";
  unit.name = job.request.name;
  unit.user = job.request.user;
  unit.project = job.request.account;
  unit.partition = job.request.partition;
  unit.state = std::string(slurm::job_state_name(job.state));
  unit.created_at_ms = job.submit_time_ms;
  unit.started_at_ms = job.start_time_ms;
  unit.ended_at_ms = job.end_time_ms;
  if (job.start_time_ms != 0) {
    unit.elapsed_ms = (job.end_time_ms != 0 ? job.end_time_ms
                                            : job.start_time_ms) -
                      job.start_time_ms;
    if (job.end_time_ms == 0) unit.elapsed_ms = 0;  // running: set by updater
  }
  unit.num_nodes = job.request.num_nodes;
  unit.num_cpus =
      static_cast<int64_t>(job.request.num_nodes) * job.request.cpus_per_node;
  unit.num_gpus =
      static_cast<int64_t>(job.request.num_nodes) * job.request.gpus_per_node;
  return unit;
}

std::vector<Unit> SlurmAdapter::fetch_units_changed_since(
    common::TimestampMs since_ms) {
  std::vector<Unit> units;
  for (const auto& job : dbd_.jobs_changed_since(since_ms)) {
    units.push_back(to_unit(job, cluster_));
  }
  return units;
}

void K8sAdapter::report_pod(const std::string& pod_uid,
                            const std::string& pod_name,
                            const std::string& service_account,
                            const std::string& name_space,
                            double cpu_request_cores,
                            int64_t memory_request_bytes, int gpu_requests,
                            const std::string& phase,
                            common::TimestampMs created_ms,
                            common::TimestampMs started_ms,
                            common::TimestampMs ended_ms) {
  Unit unit;
  unit.uuid = pod_uid;
  unit.cluster = cluster_;
  unit.resource_manager = "k8s";
  unit.name = pod_name;
  unit.user = service_account;
  unit.project = name_space;
  unit.partition = "default";
  unit.state = phase;  // Pending / Running / Succeeded / Failed
  unit.created_at_ms = created_ms;
  unit.started_at_ms = started_ms;
  unit.ended_at_ms = ended_ms;
  unit.num_nodes = 1;
  unit.num_cpus = static_cast<int64_t>(cpu_request_cores + 0.999);
  unit.num_gpus = gpu_requests;
  unit.avg_cpu_mem_bytes = static_cast<double>(memory_request_bytes);
  events_.emplace_back(std::max({created_ms, started_ms, ended_ms}),
                       std::move(unit));
}

std::vector<Unit> K8sAdapter::fetch_units_changed_since(
    common::TimestampMs since_ms) {
  std::vector<Unit> out;
  for (const auto& [changed, unit] : events_) {
    if (changed >= since_ms) out.push_back(unit);
  }
  return out;
}

void OpenstackAdapter::report_vm(const std::string& vm_uuid,
                                 const std::string& user,
                                 const std::string& project, int vcpus,
                                 int64_t memory_bytes, const std::string& state,
                                 common::TimestampMs created_ms,
                                 common::TimestampMs started_ms,
                                 common::TimestampMs ended_ms) {
  Unit unit;
  unit.uuid = vm_uuid;
  unit.cluster = cluster_;
  unit.resource_manager = "openstack";
  unit.name = "vm";
  unit.user = user;
  unit.project = project;
  unit.partition = "nova";
  unit.state = state;
  unit.created_at_ms = created_ms;
  unit.started_at_ms = started_ms;
  unit.ended_at_ms = ended_ms;
  unit.num_nodes = 1;
  unit.num_cpus = vcpus;
  unit.avg_cpu_mem_bytes = static_cast<double>(memory_bytes);
  common::TimestampMs changed =
      std::max({created_ms, started_ms, ended_ms});
  events_.emplace_back(changed, std::move(unit));
}

std::vector<Unit> OpenstackAdapter::fetch_units_changed_since(
    common::TimestampMs since_ms) {
  std::vector<Unit> out;
  for (const auto& [changed, unit] : events_) {
    if (changed >= since_ms) out.push_back(unit);
  }
  return out;
}

}  // namespace ceems::apiserver
