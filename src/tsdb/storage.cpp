#include "tsdb/storage.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>

#include "tsdb/wal.h"

namespace ceems::tsdb {

using metrics::SymbolTable;

const TimeSeriesStore::StoredSeries* TimeSeriesStore::find_series_locked(
    const Shard& shard, const InternedLabels& labels) {
  auto chain_it = shard.by_fp.find(labels.fingerprint());
  if (chain_it == shard.by_fp.end()) return nullptr;
  for (uint64_t id : chain_it->second) {
    const StoredSeries& stored = shard.series.at(id);
    // Fingerprints collide; trust only full label equality (a cheap
    // symbol-vector compare, no strings involved).
    if (stored.ilabels == labels) return &stored;
  }
  return nullptr;
}

TimeSeriesStore::StoredSeries& TimeSeriesStore::get_or_create_locked(
    Shard& shard, const InternedLabels& labels) {
  if (const StoredSeries* found = find_series_locked(shard, labels)) {
    return const_cast<StoredSeries&>(*found);
  }
  uint64_t id = shard.next_series_id++;
  auto [it, inserted] = shard.series.emplace(
      id, StoredSeries{labels, labels.to_labels(), ChunkedSeries{}});
  shard.by_fp[labels.fingerprint()].push_back(id);
  for (const auto& [name_sym, value_sym] : labels.pairs()) {
    shard.index[name_sym][value_sym].insert(id);
  }
  return it->second;
}

void TimeSeriesStore::erase_series_locked(Shard& shard, uint64_t id) {
  auto it = shard.series.find(id);
  if (it == shard.series.end()) return;
  for (const auto& [name_sym, value_sym] : it->second.ilabels.pairs()) {
    auto name_it = shard.index.find(name_sym);
    if (name_it == shard.index.end()) continue;
    auto value_it = name_it->second.find(value_sym);
    if (value_it != name_it->second.end()) value_it->second.erase(id);
  }
  auto chain_it = shard.by_fp.find(it->second.ilabels.fingerprint());
  if (chain_it != shard.by_fp.end()) {
    auto& chain = chain_it->second;
    chain.erase(std::remove(chain.begin(), chain.end(), id), chain.end());
    if (chain.empty()) shard.by_fp.erase(chain_it);
  }
  shard.series.erase(it);
}

bool TimeSeriesStore::append_locked(Shard& shard, const InternedLabels& labels,
                                    TimestampMs t, double v) {
  StoredSeries& stored = get_or_create_locked(shard, labels);
  switch (stored.data.append(t, v)) {
    case AppendResult::kRejected:
      return false;  // out-of-order; Prometheus rejects these too
    case AppendResult::kOverwrote:
      return true;  // duplicate timestamp: last write wins, no new sample
    case AppendResult::kAppended:
      ++shard.num_samples;
      return true;
  }
  return false;
}

void TimeSeriesStore::set_wal(std::shared_ptr<Wal> wal) {
  wal_owner_ = std::move(wal);
  wal_.store(wal_owner_.get(), std::memory_order_release);
}

bool TimeSeriesStore::append(const Labels& labels, TimestampMs t, double v) {
  return append(InternedLabels(labels), t, v);
}

bool TimeSeriesStore::append(const InternedLabels& labels, TimestampMs t,
                             double v) {
  Wal::CommitGuard guard;
  if (Wal* wal = wal_.load(std::memory_order_acquire)) {
    metrics::SampleRef ref{&labels, t, v};
    guard = wal->commit_shared();
    wal->log_batch(&ref, 1);
  }
  Shard& shard = shards_[shard_of(labels.fingerprint())];
  std::unique_lock lock(shard.mu);
  bool accepted = append_locked(shard, labels, t, v);
  if (accepted) shard.version.fetch_add(1, std::memory_order_acq_rel);
  return accepted;
}

std::size_t TimeSeriesStore::append_all(
    const std::vector<metrics::Sample>& samples) {
  // One code path with append_refs: batch appends flow through the same
  // WAL logging and shard bucketing regardless of the caller's sample
  // representation. The ref vector is thread-local scratch, so steady
  // state allocates nothing.
  thread_local std::vector<metrics::SampleRef> refs;
  refs.clear();
  refs.reserve(samples.size());
  for (const auto& sample : samples) {
    refs.push_back({&sample.labels, sample.timestamp_ms, sample.value});
  }
  return append_refs(refs.data(), refs.size());
}

std::size_t TimeSeriesStore::append_refs(const metrics::SampleRef* samples,
                                         std::size_t count) {
  if (count == 0) return 0;
  Wal::CommitGuard guard;
  if (Wal* wal = wal_.load(std::memory_order_acquire)) {
    // Durable before applied: the guard spans log→apply so a checkpoint
    // (which takes the barrier exclusively) always sees both or neither.
    guard = wal->commit_shared();
    wal->log_batch(samples, count);
  }
  return apply_refs(samples, count);
}

std::size_t TimeSeriesStore::apply_refs(const metrics::SampleRef* samples,
                                        std::size_t count) {
  // Bucket by shard first so each shard lock is acquired once per batch.
  // Sample labels arrive interned from the parser, so this reads the
  // precomputed fingerprint instead of hashing label strings. Buckets
  // are thread-local so their capacity persists across batches.
  thread_local std::array<std::vector<const metrics::SampleRef*>,
                          kShardCount>
      buckets;
  for (auto& bucket : buckets) bucket.clear();
  for (std::size_t i = 0; i < count; ++i) {
    buckets[shard_of(samples[i].labels->fingerprint())].push_back(
        &samples[i]);
  }
  std::size_t accepted = 0;
  for (std::size_t s = 0; s < kShardCount; ++s) {
    if (buckets[s].empty()) continue;
    Shard& shard = shards_[s];
    std::unique_lock lock(shard.mu);
    std::size_t shard_accepted = 0;
    for (const metrics::SampleRef* sample : buckets[s]) {
      if (append_locked(shard, *sample->labels, sample->timestamp_ms,
                        sample->value)) {
        ++shard_accepted;
      }
    }
    // One version bump per shard per batch is enough for cache
    // invalidation (entries compare signatures for equality).
    if (shard_accepted > 0)
      shard.version.fetch_add(1, std::memory_order_acq_rel);
    accepted += shard_accepted;
  }
  return accepted;
}

std::vector<uint64_t> TimeSeriesStore::match_ids(
    const Shard& shard, const std::vector<LabelMatcher>& matchers) {
  // Start from the most selective equality matcher via the inverted index,
  // then filter. Index keys are symbol ids: a matcher whose name or value
  // was never interned cannot match any stored series.
  SymbolTable& table = SymbolTable::global();
  std::optional<std::set<uint64_t>> candidates;
  for (const auto& matcher : matchers) {
    if (matcher.op != LabelMatcher::Op::kEq || matcher.value.empty()) continue;
    auto name_sym = table.find(matcher.name);
    auto value_sym = table.find(matcher.value);
    if (!name_sym || !value_sym) return {};
    auto name_it = shard.index.find(*name_sym);
    if (name_it == shard.index.end()) return {};
    auto value_it = name_it->second.find(*value_sym);
    if (value_it == name_it->second.end()) return {};
    if (!candidates) {
      candidates = value_it->second;
    } else {
      std::set<uint64_t> intersection;
      std::set_intersection(
          candidates->begin(), candidates->end(), value_it->second.begin(),
          value_it->second.end(),
          std::inserter(intersection, intersection.begin()));
      candidates = std::move(intersection);
    }
    if (candidates->empty()) return {};
  }

  std::vector<uint64_t> out;
  auto check = [&](uint64_t id, const StoredSeries& stored) {
    for (const auto& matcher : matchers) {
      if (!matcher.matches(stored.ilabels)) return;
    }
    out.push_back(id);
  };
  if (candidates) {
    for (uint64_t id : *candidates) {
      auto it = shard.series.find(id);
      if (it != shard.series.end()) check(id, it->second);
    }
  } else {
    for (const auto& [id, stored] : shard.series) check(id, stored);
  }
  return out;
}

std::vector<SeriesView> TimeSeriesStore::select(
    const std::vector<LabelMatcher>& matchers, TimestampMs min_t,
    TimestampMs max_t) const {
  std::vector<SeriesView> out;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    for (uint64_t id : match_ids(shard, matchers)) {
      const StoredSeries& stored = shard.series.at(id);
      // Boundary chunks are decoded under the lock so emptiness is exact;
      // fully-covered chunks ride along compressed and refcounted.
      auto slices = stored.data.slices_between(min_t, max_t);
      if (slices.empty()) continue;
      out.push_back(SeriesView{stored.labels, std::move(slices)});
    }
  }
  // Deterministic output order.
  std::sort(out.begin(), out.end(),
            [](const SeriesView& a, const SeriesView& b) {
              return a.labels < b.labels;
            });
  return out;
}

std::vector<uint64_t> TimeSeriesStore::version_signature() const {
  std::vector<uint64_t> out;
  out.reserve(kShardCount);
  for (const Shard& shard : shards_) {
    out.push_back(shard.version.load(std::memory_order_acquire));
  }
  return out;
}

std::vector<std::string> TimeSeriesStore::label_values(
    const std::string& label_name) const {
  auto name_sym = SymbolTable::global().find(label_name);
  if (!name_sym) return {};
  std::set<std::string> merged;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    auto it = shard.index.find(*name_sym);
    if (it == shard.index.end()) continue;
    for (const auto& [value_sym, ids] : it->second) {
      if (!ids.empty())
        merged.emplace(SymbolTable::global().text(value_sym));
    }
  }
  return {merged.begin(), merged.end()};
}

std::size_t TimeSeriesStore::purge_before(TimestampMs cutoff) {
  Wal::CommitGuard guard;
  if (Wal* wal = wal_.load(std::memory_order_acquire)) {
    guard = wal->commit_shared();
    wal->log_purge(cutoff);
  }
  std::size_t dropped = 0;
  for (Shard& shard : shards_) {
    std::unique_lock lock(shard.mu);
    std::size_t shard_dropped = 0;
    std::vector<uint64_t> emptied;
    for (auto& [id, stored] : shard.series) {
      shard_dropped += stored.data.drop_before(cutoff);
      if (stored.data.empty()) emptied.push_back(id);
    }
    for (uint64_t id : emptied) erase_series_locked(shard, id);
    if (shard_dropped > 0) {
      shard.num_samples -= shard_dropped;
      shard.version.fetch_add(1, std::memory_order_acq_rel);
    }
    dropped += shard_dropped;
  }
  return dropped;
}

std::size_t TimeSeriesStore::delete_series(
    const std::vector<LabelMatcher>& matchers) {
  Wal::CommitGuard guard;
  if (Wal* wal = wal_.load(std::memory_order_acquire)) {
    guard = wal->commit_shared();
    wal->log_delete(matchers);
  }
  std::size_t deleted = 0;
  for (Shard& shard : shards_) {
    std::unique_lock lock(shard.mu);
    bool mutated = false;
    for (uint64_t id : match_ids(shard, matchers)) {
      auto it = shard.series.find(id);
      if (it == shard.series.end()) continue;
      shard.num_samples -= it->second.data.num_samples();
      erase_series_locked(shard, id);
      ++deleted;
      mutated = true;
    }
    if (mutated) shard.version.fetch_add(1, std::memory_order_acq_rel);
  }
  return deleted;
}

void TimeSeriesStore::clear() {
  for (Shard& shard : shards_) {
    std::unique_lock lock(shard.mu);
    shard.series.clear();
    shard.by_fp.clear();
    shard.index.clear();
    shard.num_samples = 0;
    // Versions keep counting up (never reset) so query-cache entries
    // recorded before the clear can never validate afterwards.
    shard.version.fetch_add(1, std::memory_order_acq_rel);
  }
}

StorageStats TimeSeriesStore::stats() const {
  StorageStats stats;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    stats.num_series += shard.series.size();
    stats.num_samples += shard.num_samples;
    for (const auto& [id, stored] : shard.series) {
      stats.approx_bytes += stored.data.approx_bytes();
      stats.approx_bytes +=
          stored.ilabels.size() * sizeof(InternedLabels::SymbolPair);
    }
  }
  // Label strings live once in the process-wide symbol table, shared by
  // every store in the process: keep them out of approx_bytes (which
  // callers sum across stores) and report them in their own field.
  stats.symbol_bytes = SymbolTable::global().approx_bytes();
  return stats;
}

std::optional<TimestampMs> TimeSeriesStore::max_time() const {
  std::optional<TimestampMs> max_t;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    for (const auto& [id, stored] : shard.series) {
      if (stored.data.empty()) continue;
      if (!max_t || stored.data.max_time() > *max_t)
        max_t = stored.data.max_time();
    }
  }
  return max_t;
}

std::vector<Series> TimeSeriesStore::series_since(TimestampMs since) const {
  std::vector<Series> out;
  constexpr TimestampMs kMax = std::numeric_limits<TimestampMs>::max();
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    for (const auto& [id, stored] : shard.series) {
      if (stored.data.empty() || stored.data.max_time() < since) continue;
      auto samples = stored.data.samples_between(since, kMax);
      if (samples.empty()) continue;
      out.push_back(Series{stored.labels, std::move(samples)});
    }
  }
  return out;
}

namespace {

// v2: sealed chunks written compressed. v1 (raw samples) is still read.
constexpr char kSnapshotMagicV2[] = "CEEMSTSDB2";
constexpr char kSnapshotMagicV1[] = "CEEMSTSDB1";
static_assert(sizeof(kSnapshotMagicV2) == sizeof(kSnapshotMagicV1));

void put_u64(std::ostream& out, uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}
void put_f64(std::ostream& out, double value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}
void put_string(std::ostream& out, const std::string& text) {
  put_u64(out, text.size());
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
}
bool get_u64(std::istream& in, uint64_t& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  return in.good();
}
bool get_f64(std::istream& in, double& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  return in.good();
}
bool get_string(std::istream& in, std::string& text) {
  uint64_t size = 0;
  if (!get_u64(in, size) || size > (1u << 20)) return false;
  text.resize(size);
  in.read(text.data(), static_cast<std::streamsize>(size));
  return in.good();
}

// Reads one label set; false on malformed input.
bool get_labels(std::istream& in, Labels& out) {
  uint64_t num_labels = 0;
  if (!get_u64(in, num_labels) || num_labels > 256) return false;
  std::vector<Labels::Pair> pairs;
  pairs.reserve(num_labels);
  for (uint64_t l = 0; l < num_labels; ++l) {
    std::string name, value;
    if (!get_string(in, name) || !get_string(in, value)) return false;
    pairs.emplace_back(std::move(name), std::move(value));
  }
  out = Labels(std::move(pairs));
  return true;
}

}  // namespace

bool TimeSeriesStore::snapshot_to(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) return false;
  return snapshot_stream(out);
}

std::string TimeSeriesStore::snapshot_bytes() const {
  std::ostringstream out(std::ios::binary);
  snapshot_stream(out);
  return std::move(out).str();
}

bool TimeSeriesStore::snapshot_stream(std::ostream& out) const {
  // Hold every shard lock (in index order, so concurrent snapshots cannot
  // deadlock) for a consistent cut across shards.
  std::vector<std::shared_lock<std::shared_mutex>> locks;
  locks.reserve(kShardCount);
  std::size_t num_series = 0;
  for (const Shard& shard : shards_) {
    locks.emplace_back(shard.mu);
    num_series += shard.series.size();
  }
  out.write(kSnapshotMagicV2, sizeof(kSnapshotMagicV2) - 1);
  put_u64(out, num_series);
  for (const Shard& shard : shards_) {
    for (const auto& [id, stored] : shard.series) {
      put_u64(out, stored.labels.pairs().size());
      for (const auto& [name, value] : stored.labels.pairs()) {
        put_string(out, name);
        put_string(out, value);
      }
      put_u64(out, stored.data.sealed().size());
      for (const ChunkPtr& chunk : stored.data.sealed()) {
        put_u64(out, chunk->count());
        put_u64(out, static_cast<uint64_t>(chunk->min_time()));
        put_u64(out, static_cast<uint64_t>(chunk->max_time()));
        put_u64(out, chunk->bytes().size());
        out.write(reinterpret_cast<const char*>(chunk->bytes().data()),
                  static_cast<std::streamsize>(chunk->bytes().size()));
      }
      put_u64(out, stored.data.head().size());
      for (const auto& sample : stored.data.head()) {
        put_u64(out, static_cast<uint64_t>(sample.t));
        put_f64(out, sample.v);
      }
    }
  }
  return out.good();
}

std::optional<std::size_t> TimeSeriesStore::restore_from(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  return restore_stream(in);
}

std::optional<std::size_t> TimeSeriesStore::restore_from_bytes(
    std::string_view bytes) {
  std::istringstream in(std::string(bytes), std::ios::binary);
  return restore_stream(in);
}

std::optional<std::size_t> TimeSeriesStore::restore_stream(std::istream& in) {
  char magic[sizeof(kSnapshotMagicV2) - 1];
  in.read(magic, sizeof(magic));
  if (!in.good()) return std::nullopt;
  std::string_view version(magic, sizeof(magic));

  // Stage 1: parse and validate the whole file into scratch structures.
  // Nothing touches the shards until the snapshot is known-good, so a
  // corrupt or truncated file can never leave a partial restore applied.
  struct StagedSeries {
    Labels labels;
    std::vector<ChunkPtr> chunks;       // sealed (v2 only)
    std::vector<SamplePoint> samples;   // head (v2) or raw run (v1)
  };
  std::vector<StagedSeries> staged;

  if (version == kSnapshotMagicV1) {
    // Legacy raw-sample format.
    uint64_t num_series = 0;
    if (!get_u64(in, num_series)) return std::nullopt;
    staged.reserve(num_series);
    for (uint64_t s = 0; s < num_series; ++s) {
      StagedSeries entry;
      if (!get_labels(in, entry.labels)) return std::nullopt;
      uint64_t num_samples = 0;
      if (!get_u64(in, num_samples)) return std::nullopt;
      entry.samples.resize(num_samples);
      for (uint64_t i = 0; i < num_samples; ++i) {
        uint64_t t = 0;
        if (!get_u64(in, t) || !get_f64(in, entry.samples[i].v))
          return std::nullopt;
        entry.samples[i].t = static_cast<TimestampMs>(t);
      }
      staged.push_back(std::move(entry));
    }
  } else if (version == kSnapshotMagicV2) {
    uint64_t num_series = 0;
    if (!get_u64(in, num_series)) return std::nullopt;
    staged.reserve(num_series);
    for (uint64_t s = 0; s < num_series; ++s) {
      StagedSeries entry;
      if (!get_labels(in, entry.labels)) return std::nullopt;
      uint64_t num_sealed = 0;
      if (!get_u64(in, num_sealed) || num_sealed > (1u << 24))
        return std::nullopt;
      entry.chunks.reserve(num_sealed);
      for (uint64_t c = 0; c < num_sealed; ++c) {
        uint64_t count = 0, min_t = 0, max_t = 0, nbytes = 0;
        if (!get_u64(in, count) || !get_u64(in, min_t) ||
            !get_u64(in, max_t) || !get_u64(in, nbytes)) {
          return std::nullopt;
        }
        // Sanity caps: a chunk never exceeds the seal threshold by much,
        // and its payload is bounded by ~17 bytes/sample worst case.
        if (count == 0 || count > (1u << 20) || nbytes > (1u << 26))
          return std::nullopt;
        std::vector<uint8_t> bytes(nbytes);
        in.read(reinterpret_cast<char*>(bytes.data()),
                static_cast<std::streamsize>(nbytes));
        if (!in.good()) return std::nullopt;
        ChunkPtr chunk = GorillaChunk::from_parts(
            std::move(bytes), static_cast<uint32_t>(count),
            static_cast<TimestampMs>(min_t), static_cast<TimestampMs>(max_t));
        if (!chunk) return std::nullopt;  // corrupt: header/body mismatch
        entry.chunks.push_back(std::move(chunk));
      }
      uint64_t num_head = 0;
      if (!get_u64(in, num_head) || num_head > (1u << 24)) return std::nullopt;
      entry.samples.resize(num_head);
      for (uint64_t i = 0; i < num_head; ++i) {
        uint64_t t = 0;
        if (!get_u64(in, t) || !get_f64(in, entry.samples[i].v))
          return std::nullopt;
        entry.samples[i].t = static_cast<TimestampMs>(t);
      }
      staged.push_back(std::move(entry));
    }
  } else {
    return std::nullopt;
  }

  // Stage 2: commit. Only counted appends (kAppended) bump num_samples;
  // duplicates merging into existing data overwrite without counting.
  std::size_t restored = 0;
  for (StagedSeries& entry : staged) {
    // Intern once per series; every sample below reuses the fingerprint.
    InternedLabels interned(entry.labels);
    Shard& shard = shards_[shard_of(interned.fingerprint())];
    std::unique_lock lock(shard.mu);
    StoredSeries& stored = get_or_create_locked(shard, interned);
    std::size_t series_restored = 0;
    for (ChunkPtr& chunk : entry.chunks) {
      if (stored.data.adopt_sealed(chunk)) {
        // Empty-store fast path: the compressed chunk is adopted verbatim,
        // no re-encode.
        series_restored += chunk->count();
      } else {
        // Merging into existing data: replay samples individually. The
        // chunk was decode-validated by from_parts, so decode succeeds.
        auto decoded = chunk->decode();
        if (!decoded) continue;
        for (const auto& sp : *decoded) {
          if (stored.data.append(sp.t, sp.v) == AppendResult::kAppended)
            ++series_restored;
        }
      }
    }
    for (const auto& sp : entry.samples) {
      if (stored.data.append(sp.t, sp.v) == AppendResult::kAppended)
        ++series_restored;
    }
    if (series_restored > 0) {
      shard.num_samples += series_restored;
      shard.version.fetch_add(1, std::memory_order_acq_rel);
      restored += series_restored;
    }
  }
  return restored;
}

}  // namespace ceems::tsdb
