#include "lb/load_balancer.h"

#include <limits>

#include "common/logging.h"

namespace ceems::lb {

LoadBalancer::LoadBalancer(LbConfig config,
                           std::vector<std::string> backend_urls,
                           common::ClockPtr clock)
    : config_(std::move(config)),
      clock_(std::move(clock)),
      server_(config_.http) {
  for (auto& url : backend_urls) {
    auto backend = std::make_unique<Backend>();
    backend->base_url = std::move(url);
    backends_.push_back(std::move(backend));
  }
  server_.handle_prefix("/api/v1/", [this](const http::Request& request) {
    return handle_proxy(request);
  });
  server_.handle("/health", [](const http::Request&) {
    return http::Response::json(200, "{\"status\":\"ok\"}");
  });
}

LoadBalancer::~LoadBalancer() { stop(); }

void LoadBalancer::start() { server_.start(); }
void LoadBalancer::stop() { server_.stop(); }

bool LoadBalancer::check_ownership(const std::string& user,
                                   const std::set<std::string>& uuids) {
  if (api_server_) {
    for (const auto& uuid : uuids) {
      if (!api_server_->verify_ownership(user, uuid)) return false;
    }
    return true;
  }
  if (config_.api_server_url.empty()) return false;
  // HTTP fallback (§II-C): ask the API server's verify endpoint.
  std::string url = config_.api_server_url + "/api/v1/units/verify?";
  bool first = true;
  for (const auto& uuid : uuids) {
    if (!first) url += "&";
    first = false;
    url += "uuid=" + http::url_encode(uuid);
  }
  http::Client client;
  http::HeaderMap headers;
  headers[apiserver::kGrafanaUserHeader] = user;
  auto result = client.get(url, headers);
  return result.ok && result.response.status == 200;
}

LoadBalancer::Backend* LoadBalancer::pick_backend(common::TimestampMs now) {
  if (backends_.empty()) return nullptr;
  auto available = [&](const Backend& backend) {
    return backend.down_until_ms.load(std::memory_order_acquire) <= now;
  };
  if (config_.strategy == Strategy::kRoundRobin) {
    // Skip backends inside their failure cooldown, up to one rotation;
    // if everything is down, fall through and probe anyway.
    for (std::size_t i = 0; i < backends_.size(); ++i) {
      std::size_t index = round_robin_next_.fetch_add(1) % backends_.size();
      if (available(*backends_[index])) return backends_[index].get();
    }
    return backends_[round_robin_next_.fetch_add(1) % backends_.size()].get();
  }
  // Least connection, preferring backends outside their cooldown.
  Backend* best = nullptr;
  int best_inflight = std::numeric_limits<int>::max();
  for (int pass = 0; pass < 2 && !best; ++pass) {
    for (const auto& backend : backends_) {
      if (pass == 0 && !available(*backend)) continue;
      int inflight = backend->inflight.load();
      if (inflight < best_inflight) {
        best_inflight = inflight;
        best = backend.get();
      }
    }
  }
  return best;
}

http::Response LoadBalancer::handle_proxy(const http::Request& request) {
  std::string user =
      request.header(apiserver::kGrafanaUserHeader).value_or("");
  if (user.empty()) {
    ++denied_;
    return http::Response::forbidden("missing X-Grafana-User header");
  }
  bool admin = config_.admin_users.count(user) > 0;

  // Introspect the PromQL query (query endpoints only; /api/v1/series uses
  // match[] selectors which go through the same code).
  std::string path = request.path();
  std::vector<std::string> queries;
  if (path == "/api/v1/query" || path == "/api/v1/query_range") {
    auto params = request.query_params();
    auto it = params.find("query");
    if (it != params.end()) queries.push_back(it->second);
  } else if (path == "/api/v1/series") {
    queries = request.query_param_all("match[]");
  }

  if (!admin) {
    if (queries.empty()) {
      ++denied_;
      return http::Response::forbidden("only query endpoints are allowed");
    }
    std::set<std::string> uuids;
    for (const auto& query : queries) {
      IntrospectResult result = introspect_query(query);
      if (!result.parse_ok) {
        ++denied_;
        return http::Response::bad_request("unparsable query: " +
                                           result.error);
      }
      if (result.has_unverifiable_selector) {
        ++denied_;
        return http::Response::forbidden(
            "query must pin uuid=\"...\" on every selector");
      }
      uuids.insert(result.uuids.begin(), result.uuids.end());
    }
    if (!check_ownership(user, uuids)) {
      ++denied_;
      return http::Response::forbidden("user " + user +
                                       " does not own the queried units");
    }
  }

  http::HeaderMap headers = request.headers;
  headers.erase("Host");
  headers.erase("Content-Length");
  headers.erase("Connection");

  // Failover: a backend that fails at the transport level is skipped and
  // the request retried on the next one, up to one full rotation. Failed
  // backends enter a cooldown so later requests don't re-probe them on
  // every rotation.
  std::string last_error = "no backends configured";
  for (std::size_t attempt = 0; attempt < backends_.size(); ++attempt) {
    common::TimestampMs now = clock_->now_ms();
    Backend* backend = pick_backend(now);
    if (!backend) break;
    ++backend->inflight;
    ++backend->requests;
    http::Client client;
    auto result = client.request(request.method,
                                 backend->base_url + request.target,
                                 request.body, headers);
    --backend->inflight;
    if (result.ok) {
      backend->down_until_ms.store(0, std::memory_order_release);
      return result.response;
    }
    ++backend->failures;
    if (config_.failover_cooldown_ms > 0) {
      backend->down_until_ms.store(now + config_.failover_cooldown_ms,
                                   std::memory_order_release);
    }
    last_error = result.error;
  }
  return http::Response::json(
      502, "{\"status\":\"error\",\"error\":\"backends unreachable: " +
               last_error + "\"}");
}

std::vector<BackendStats> LoadBalancer::backend_stats() const {
  std::vector<BackendStats> out;
  for (const auto& backend : backends_) {
    BackendStats stats;
    stats.base_url = backend->base_url;
    stats.requests = backend->requests.load();
    stats.failures = backend->failures.load();
    stats.inflight = backend->inflight.load();
    out.push_back(std::move(stats));
  }
  return out;
}

}  // namespace ceems::lb
