// PromQL evaluator over any Queryable. Instant queries produce a scalar or
// an instant vector; range queries evaluate the instant expression at each
// step (exactly Prometheus' model).
//
// Known deviations from upstream Prometheus, chosen deliberately:
//   * rate()/increase() compute the slope over the observed sample span
//     without boundary extrapolation — sums of increase() then equal the
//     raw counter deltas, which the energy-accounting tests rely on;
//   * regex matchers use std::regex ECMAScript syntax (anchored like
//     PromQL);
//   * staleness markers (metrics::stale_marker(), written by the scrape
//     manager on failed scrapes and disappearing series) end a series
//     immediately: an instant selector whose newest in-window sample is a
//     marker drops the series, and range windows filter markers out
//     before rate()/*_over_time() fold them. Without a marker, the
//     lookback window (default 5 min) alone decides sample visibility.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/threadpool.h"
#include "tsdb/promql_ast.h"
#include "tsdb/query_cache.h"
#include "tsdb/storage.h"

namespace ceems::tsdb::promql {

struct EvalError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// One element of an instant vector.
struct VectorSample {
  Labels labels;
  double value = 0;
};
using InstantVector = std::vector<VectorSample>;

struct Value {
  enum class Kind { kScalar, kVector, kString, kMatrix };
  Kind kind = Kind::kScalar;
  double scalar = 0;
  InstantVector vector;
  std::string string_value;
  std::vector<Series> matrix;  // only produced by matrix selectors
};

struct EngineOptions {
  int64_t lookback_ms = 5 * common::kMillisPerMinute;
  // Worker pool for range queries: evaluation steps are chunked across the
  // pool and merged in step order, so results are bit-identical to the
  // serial evaluator. nullptr (the default) keeps evaluation serial.
  std::shared_ptr<common::ThreadPool> pool;
  // Range queries with fewer steps than this stay serial even with a pool
  // (chunking overhead would dominate).
  int64_t min_parallel_steps = 8;
  // Capacity of the bounded LRU result cache for string-form range
  // queries, keyed on (query, start, end, step) and invalidated through
  // the source's per-shard version signature. 0 disables caching.
  std::size_t query_cache_capacity = 128;
  // Streaming range evaluation: select() each selector's full
  // [start - max(range, lookback), end] span once, decode every chunk at
  // most once per query, and slide per-series window cursors across the
  // steps with incremental window aggregation. Bit-identical to the
  // per-step path (which remains as the differential oracle when this is
  // false) — see DESIGN.md "Streaming range queries".
  bool streaming_range = true;
  // Resolution-aware planning: when the source maintains pre-aggregated
  // resolution levels (Queryable::agg_resolutions), window functions whose
  // windows align to bucket boundaries (sum/avg/min/max/count_over_time,
  // rate, increase — see DESIGN.md §10 for the exactness conditions) are
  // answered from the coarsest level that covers the span, folding a
  // handful of bucket rows instead of every raw sample. Everything else —
  // unaligned windows, other functions, vector selectors, spans the
  // ladder does not cover — falls back to the raw path unchanged. Applies
  // to streaming range queries and top-level instant queries; the
  // per-step oracle (streaming_range = false) always evaluates raw.
  bool resolution_aware = true;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {})
      : options_(std::move(options)),
        cache_(options_.query_cache_capacity > 0
                   ? std::make_shared<QueryCache>(
                         options_.query_cache_capacity)
                   : nullptr) {}

  // Evaluates `expr` at instant `t`.
  Value eval(const Queryable& source, const ExprPtr& expr,
             TimestampMs t) const;
  Value eval(const Queryable& source, const std::string& expr,
             TimestampMs t) const;

  // Evaluates at every step in [start, end]; returns one series per result
  // label set.
  std::vector<Series> eval_range(const Queryable& source, const ExprPtr& expr,
                                 TimestampMs start, TimestampMs end,
                                 int64_t step_ms) const;
  std::vector<Series> eval_range(const Queryable& source,
                                 const std::string& expr, TimestampMs start,
                                 TimestampMs end, int64_t step_ms) const;

  // Result-cache counters (zeroed stats when caching is disabled).
  QueryCacheStats cache_stats() const;

 private:
  // Evaluates the steps start, start+step, ... <= end into a
  // fingerprint-keyed accumulator (samples in step order).
  std::map<uint64_t, Series> eval_range_steps(const Queryable& source,
                                              const ExprPtr& expr,
                                              TimestampMs start,
                                              TimestampMs end,
                                              int64_t step_ms) const;

  EngineOptions options_;
  // Shared (not unique) so Engine stays copyable; copies share the cache.
  std::shared_ptr<QueryCache> cache_;
};

}  // namespace ceems::tsdb::promql
