// YAML-subset parser for the single CEEMS configuration file. The paper's
// stack reads one YAML file where every component picks its own section;
// this parser supports the subset that configuration needs:
//   - nested maps via 2-space indentation
//   - block lists ("- item" / "- key: value" maps)
//   - scalars: strings (bare or quoted), ints, floats, bools, null
//   - inline lists [a, b, c]
//   - comments (# to end of line)
// Anchors, multi-line strings and flow maps are intentionally unsupported.
// The parse result is a common::Json tree so downstream code has one value
// model for both YAML config and JSON APIs.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "common/json.h"

namespace ceems::common {

class YamlParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Parses YAML text into a Json tree. Throws YamlParseError on bad input.
Json parse_yaml(std::string_view text);

}  // namespace ceems::common
