// Write-ahead log for the embedded store: every mutation is appended as a
// JSON line before being applied. Replaying the log reconstructs the
// database (crash recovery); shipping its tail to another Database is the
// Litestream-style continuous replication of Fig. 1.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "reldb/value.h"

namespace ceems::reldb {

struct WalEntry {
  enum class Op { kCreateTable, kUpsert, kErase };
  uint64_t seq = 0;
  Op op = Op::kUpsert;
  std::string table;
  // kCreateTable: schema; kUpsert: row; kErase: primary key.
  Schema schema;
  Row row;
  Value primary_key;
};

common::Json value_to_json(const Value& value);
Value value_from_json(const common::Json& json);

std::string encode_wal_entry(const WalEntry& entry);
// Returns nullopt on a truncated/corrupt line (recovery stops there, like
// SQLite WAL recovery at the first bad frame).
std::optional<WalEntry> decode_wal_entry(const std::string& line);

}  // namespace ceems::reldb
