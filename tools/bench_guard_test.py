#!/usr/bin/env python3
"""Unit tests for tools/bench_guard.py (run in CI by the soak-smoke job:
`python3 tools/bench_guard_test.py`). Covers the gate's contract: release
builds only, drift within tolerance, zero-baseline handling, multiple
--current/--baseline pairs, and the soak counters."""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_guard  # noqa: E402


def doc(build_type="release", benchmarks=None):
    return {
        "context": {"library_build_type": build_type},
        "benchmarks": benchmarks if benchmarks is not None else [],
    }


def bench(name, run_type="iteration", **counters):
    entry = {"name": name, "run_type": run_type}
    entry.update(counters)
    return entry


class BenchGuardTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)
        self.n = 0

    def write(self, document):
        self.n += 1
        path = os.path.join(self.tmp.name, f"bench{self.n}.json")
        with open(path, "w") as f:
            json.dump(document, f)
        return path

    def run_main(self, argv):
        old_argv = sys.argv
        sys.argv = ["bench_guard.py"] + argv
        try:
            return bench_guard.main()
        finally:
            sys.argv = old_argv

    def guard(self, current, baseline, tolerance=0.10):
        return self.run_main([
            "--current", self.write(current),
            "--baseline", self.write(baseline),
            "--tolerance", str(tolerance),
        ])

    def test_identical_counters_pass(self):
        d = doc(benchmarks=[bench("soak/smoke/seed11", peak_bytes=1000,
                                  max_series=50, dropped_scrapes=7)])
        self.assertEqual(self.guard(d, d), 0)

    def test_small_drift_within_tolerance_passes(self):
        cur = doc(benchmarks=[bench("b", points_scanned=105)])
        base = doc(benchmarks=[bench("b", points_scanned=100)])
        self.assertEqual(self.guard(cur, base, tolerance=0.10), 0)

    def test_drift_beyond_tolerance_fails(self):
        cur = doc(benchmarks=[bench("b", peak_bytes=200)])
        base = doc(benchmarks=[bench("b", peak_bytes=100)])
        self.assertEqual(self.guard(cur, base, tolerance=0.10), 1)

    def test_debug_current_build_is_fatal(self):
        d = doc("debug", [bench("b", peak_bytes=1)])
        self.assertEqual(self.guard(d, doc(benchmarks=[bench("b",
                                                             peak_bytes=1)])),
                         1)

    def test_debug_baseline_is_fatal(self):
        good = doc(benchmarks=[bench("b", peak_bytes=1)])
        bad = doc("debug", [bench("b", peak_bytes=1)])
        self.assertEqual(self.guard(good, bad), 1)

    def test_nothing_compared_is_fatal(self):
        # Counter names outside GUARDED_COUNTERS never gate.
        cur = doc(benchmarks=[bench("b", wall_time_ns=123)])
        base = doc(benchmarks=[bench("b", wall_time_ns=456)])
        self.assertEqual(self.guard(cur, base), 1)

    def test_zero_baseline_zero_current_passes(self):
        d = doc(benchmarks=[bench("b", dropped_scrapes=0)])
        self.assertEqual(self.guard(d, d), 0)

    def test_zero_baseline_nonzero_current_fails(self):
        cur = doc(benchmarks=[bench("b", dropped_scrapes=3)])
        base = doc(benchmarks=[bench("b", dropped_scrapes=0)])
        self.assertEqual(self.guard(cur, base), 1)

    def test_missing_baseline_entry_is_note_not_failure(self):
        cur = doc(benchmarks=[bench("new", peak_bytes=5),
                              bench("old", peak_bytes=5)])
        base = doc(benchmarks=[bench("old", peak_bytes=5)])
        self.assertEqual(self.guard(cur, base), 0)

    def test_aggregate_rows_are_skipped(self):
        cur = doc(benchmarks=[bench("b", peak_bytes=100),
                              bench("b_mean", run_type="aggregate",
                                    peak_bytes=999999)])
        base = doc(benchmarks=[bench("b", peak_bytes=100)])
        self.assertEqual(self.guard(cur, base), 0)

    def test_soak_counters_are_guarded(self):
        for counter in ("peak_bytes", "max_series", "dropped_scrapes",
                        "samples_ingested", "points_scanned",
                        "query_points_p99"):
            self.assertIn(counter, bench_guard.GUARDED_COUNTERS)
            cur = doc(benchmarks=[bench("b", **{counter: 300})])
            base = doc(benchmarks=[bench("b", **{counter: 100})])
            self.assertEqual(self.guard(cur, base), 1, counter)

    def test_multiple_pairs_all_pass(self):
        tsdb = doc(benchmarks=[bench("t", points_scanned_per_query=10)])
        soak = doc(benchmarks=[bench("s", peak_bytes=10)])
        code = self.run_main([
            "--current", self.write(tsdb), "--baseline", self.write(tsdb),
            "--current", self.write(soak), "--baseline", self.write(soak),
        ])
        self.assertEqual(code, 0)

    def test_multiple_pairs_one_failing_fails(self):
        ok = doc(benchmarks=[bench("t", points_scanned_per_query=10)])
        cur = doc(benchmarks=[bench("s", peak_bytes=500)])
        base = doc(benchmarks=[bench("s", peak_bytes=100)])
        code = self.run_main([
            "--current", self.write(ok), "--baseline", self.write(ok),
            "--current", self.write(cur), "--baseline", self.write(base),
        ])
        self.assertEqual(code, 1)

    def test_mismatched_pair_counts_fail(self):
        d = self.write(doc(benchmarks=[bench("b", peak_bytes=1)]))
        code = self.run_main(["--current", d, "--current", d,
                              "--baseline", d])
        self.assertEqual(code, 1)


if __name__ == "__main__":
    unittest.main()
