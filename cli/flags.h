// Tiny --flag=value / --flag value parser shared by the CLI binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/strutil.h"

namespace ceems::cli {

class Flags {
 public:
  Flags(int argc, char** argv, std::string usage)
      : program_(argv[0]), usage_(std::move(usage)) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "-h" || arg == "--help") {
        print_usage();
        std::exit(0);
      }
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(arg);
        continue;
      }
      std::string name = arg.substr(2);
      std::size_t eq = name.find('=');
      if (eq != std::string::npos) {
        values_[name.substr(0, eq)] = name.substr(eq + 1);
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        values_[name] = argv[++i];
      } else {
        values_[name] = "true";  // bare boolean flag
      }
    }
  }

  std::string get(const std::string& name, const std::string& fallback = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  int64_t get_int(const std::string& name, int64_t fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return common::parse_int64(it->second).value_or(fallback);
  }
  double get_double(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return common::parse_double(it->second).value_or(fallback);
  }
  bool get_bool(const std::string& name) const {
    auto it = values_.find(name);
    return it != values_.end() && it->second != "false";
  }
  const std::vector<std::string>& positional() const { return positional_; }

  void print_usage() const {
    std::fprintf(stderr, "usage: %s %s\n", program_.c_str(), usage_.c_str());
  }

 private:
  std::string program_;
  std::string usage_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ceems::cli
