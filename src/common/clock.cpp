#include "common/clock.h"

#include <chrono>

namespace ceems::common {

TimestampMs RealClock::now_ms() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

bool RealClock::sleep_until(TimestampMs deadline_ms) {
  std::unique_lock lock(mu_);
  for (;;) {
    if (interrupted_) return false;
    TimestampMs now = now_ms();
    if (now >= deadline_ms) return true;
    cv_.wait_for(lock, std::chrono::milliseconds(deadline_ms - now));
  }
}

void RealClock::interrupt() {
  {
    std::lock_guard lock(mu_);
    interrupted_ = true;
  }
  cv_.notify_all();
}

TimestampMs SimClock::now_ms() const {
  std::lock_guard lock(mu_);
  return now_;
}

bool SimClock::sleep_until(TimestampMs deadline_ms) {
  std::unique_lock lock(mu_);
  ++sleepers_;
  cv_.wait(lock, [&] { return interrupted_ || now_ >= deadline_ms; });
  --sleepers_;
  return !interrupted_;
}

void SimClock::interrupt() {
  {
    std::lock_guard lock(mu_);
    interrupted_ = true;
  }
  cv_.notify_all();
}

void SimClock::advance(TimestampMs delta_ms) {
  {
    std::lock_guard lock(mu_);
    now_ += delta_ms;
  }
  cv_.notify_all();
}

void SimClock::set(TimestampMs now_ms) {
  {
    std::lock_guard lock(mu_);
    now_ = now_ms;
  }
  cv_.notify_all();
}

int SimClock::sleeper_count() const {
  std::lock_guard lock(mu_);
  return sleepers_;
}

ClockPtr make_real_clock() { return std::make_shared<RealClock>(); }

std::shared_ptr<SimClock> make_sim_clock(TimestampMs start_ms) {
  return std::make_shared<SimClock>(start_ms);
}

}  // namespace ceems::common
