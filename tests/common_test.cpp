#include <gtest/gtest.h>

#include <cmath>

#include <atomic>
#include <thread>

#include "common/clock.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/strutil.h"
#include "common/threadpool.h"
#include "common/yamlconf.h"

namespace ceems::common {
namespace {

// ---------- clock ----------

TEST(SimClock, StartsAtGivenTime) {
  SimClock clock(1000);
  EXPECT_EQ(clock.now_ms(), 1000);
}

TEST(SimClock, AdvanceMovesTime) {
  SimClock clock(0);
  clock.advance(250);
  clock.advance(750);
  EXPECT_EQ(clock.now_ms(), 1000);
}

TEST(SimClock, SleeperWokenByAdvance) {
  SimClock clock(0);
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    EXPECT_TRUE(clock.sleep_until(500));
    woke.store(true);
  });
  while (clock.sleeper_count() == 0) std::this_thread::yield();
  EXPECT_FALSE(woke.load());
  clock.advance(499);
  EXPECT_FALSE(woke.load());
  clock.advance(1);
  sleeper.join();
  EXPECT_TRUE(woke.load());
}

TEST(SimClock, InterruptReturnsFalse) {
  SimClock clock(0);
  std::thread sleeper([&] { EXPECT_FALSE(clock.sleep_until(1000)); });
  while (clock.sleeper_count() == 0) std::this_thread::yield();
  clock.interrupt();
  sleeper.join();
}

TEST(RealClock, NowIsReasonable) {
  RealClock clock;
  // After 2020-01-01 and before 2100.
  EXPECT_GT(clock.now_ms(), 1577836800000LL);
  EXPECT_LT(clock.now_ms(), 4102444800000LL);
}

TEST(RealClock, SleepUntilPastReturnsImmediately) {
  RealClock clock;
  EXPECT_TRUE(clock.sleep_until(clock.now_ms() - 1000));
}

// ---------- strutil ----------

TEST(StrUtil, SplitBasic) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StrUtil, SplitFieldsCollapsesWhitespace) {
  auto fields = split_fields("  cpu   123\t456  ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "cpu");
  EXPECT_EQ(fields[2], "456");
}

TEST(StrUtil, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
}

TEST(StrUtil, ParseInt64) {
  EXPECT_EQ(parse_int64("42"), 42);
  EXPECT_EQ(parse_int64("-7"), -7);
  EXPECT_EQ(parse_int64(" 13 "), 13);
  EXPECT_FALSE(parse_int64("12x").has_value());
  EXPECT_FALSE(parse_int64("").has_value());
}

TEST(StrUtil, ParseDoubleSpecials) {
  EXPECT_TRUE(std::isinf(*parse_double("+Inf")));
  EXPECT_TRUE(std::isnan(*parse_double("NaN")));
  EXPECT_DOUBLE_EQ(*parse_double("2.5e3"), 2500.0);
  EXPECT_FALSE(parse_double("abc").has_value());
}

TEST(StrUtil, FormatDoubleRoundTrips) {
  for (double value : {0.0, 1.0, -2.5, 3.14159265358979, 1e300, 1.0 / 3.0}) {
    EXPECT_DOUBLE_EQ(*parse_double(format_double(value)), value);
  }
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "+Inf");
}

TEST(StrUtil, ParseDurations) {
  EXPECT_EQ(parse_duration_ms("30s"), 30000);
  EXPECT_EQ(parse_duration_ms("5m"), 300000);
  EXPECT_EQ(parse_duration_ms("1h30m"), 5400000);
  EXPECT_EQ(parse_duration_ms("250ms"), 250);
  EXPECT_EQ(parse_duration_ms("2d"), 2 * 86400000LL);
  EXPECT_FALSE(parse_duration_ms("abc").has_value());
  EXPECT_FALSE(parse_duration_ms("5x").has_value());
}

TEST(StrUtil, FormatDurationPicksLargestUnit) {
  EXPECT_EQ(format_duration_ms(30000), "30s");
  EXPECT_EQ(format_duration_ms(120000), "2m");
  EXPECT_EQ(format_duration_ms(3600000), "1h");
  EXPECT_EQ(format_duration_ms(86400000), "1d");
  EXPECT_EQ(format_duration_ms(1500), "1500ms");
}

// ---------- json ----------

TEST(Json, ParsePrimitives) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_DOUBLE_EQ(Json::parse("-3.5").as_number(), -3.5);
  EXPECT_EQ(Json::parse("\"hi\\n\"").as_string(), "hi\n");
}

TEST(Json, ParseNested) {
  Json value = Json::parse(R"({"a":[1,2,{"b":"c"}],"d":{"e":null}})");
  EXPECT_EQ(value.at("a").as_array()[2].at("b").as_string(), "c");
  EXPECT_TRUE(value.at("d").at("e").is_null());
}

TEST(Json, DumpRoundTrips) {
  Json object = Json::object();
  object["x"] = Json(1.5);
  object["y"] = Json("a \"quote\"");
  object["z"] = Json(JsonArray{Json(true), Json(nullptr)});
  Json reparsed = Json::parse(object.dump());
  EXPECT_TRUE(reparsed == object);
}

TEST(Json, IntegerFormattingHasNoDecimalPoint) {
  EXPECT_EQ(Json(static_cast<int64_t>(42)).dump(), "42");
  EXPECT_EQ(Json(1e15).dump().find('.'), std::string::npos);
}

TEST(Json, ParseErrorsThrow) {
  EXPECT_THROW(Json::parse("{"), JsonParseError);
  EXPECT_THROW(Json::parse("[1,]2"), JsonParseError);
  EXPECT_THROW(Json::parse("tru"), JsonParseError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonParseError);
}

TEST(Json, UnicodeEscapes) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xC3\xA9");  // é
}

TEST(Json, TypedGettersWithFallback) {
  Json object = Json::parse(R"({"s":"x","n":3})");
  EXPECT_EQ(object.get_string("s"), "x");
  EXPECT_EQ(object.get_string("missing", "fb"), "fb");
  EXPECT_EQ(object.get_int("n"), 3);
  EXPECT_EQ(object.get_int("s", -1), -1);  // wrong type -> fallback
}

// ---------- yaml ----------

TEST(Yaml, NestedMapsAndScalars) {
  Json root = parse_yaml(
      "ceems:\n"
      "  scrape:\n"
      "    interval: 30s\n"
      "    count: 8\n"
      "  enabled: true\n");
  EXPECT_EQ(root.at("ceems").at("scrape").get_string("interval"), "30s");
  EXPECT_EQ(root.at("ceems").at("scrape").get_int("count"), 8);
  EXPECT_TRUE(root.at("ceems").get_bool("enabled"));
}

TEST(Yaml, BlockLists) {
  Json root = parse_yaml(
      "groups:\n"
      "  - name: g1\n"
      "    interval: 15s\n"
      "  - name: g2\n");
  const auto& groups = root.at("groups").as_array();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].get_string("name"), "g1");
  EXPECT_EQ(groups[0].get_string("interval"), "15s");
  EXPECT_EQ(groups[1].get_string("name"), "g2");
}

TEST(Yaml, InlineLists) {
  Json root = parse_yaml("admins: [alice, bob, \"c d\"]\n");
  const auto& admins = root.at("admins").as_array();
  ASSERT_EQ(admins.size(), 3u);
  EXPECT_EQ(admins[2].as_string(), "c d");
}

TEST(Yaml, CommentsIgnored) {
  Json root = parse_yaml(
      "# header comment\n"
      "key: value  # trailing\n"
      "other: 'has # inside'\n");
  EXPECT_EQ(root.get_string("key"), "value");
  EXPECT_EQ(root.get_string("other"), "has # inside");
}

TEST(Yaml, ScalarTypes) {
  Json root = parse_yaml(
      "a: 42\nb: 2.5\nc: yes\nd: ~\ne: \"42\"\n");
  EXPECT_TRUE(root.at("a").is_number());
  EXPECT_DOUBLE_EQ(root.at("b").as_number(), 2.5);
  EXPECT_TRUE(root.at("c").as_bool());
  EXPECT_TRUE(root.at("d").is_null());
  EXPECT_EQ(root.at("e").as_string(), "42");
}

TEST(Yaml, TabsRejected) {
  EXPECT_THROW(parse_yaml("a:\n\tb: 1\n"), YamlParseError);
}

// ---------- threadpool ----------

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.submit([&] { ++count; }));
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ShutdownDrainsQueue) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { ++count; });
  }
  pool.shutdown(/*drain=*/true);
  EXPECT_EQ(count.load(), 50);
  EXPECT_FALSE(pool.submit([&] { ++count; }));
}

// ---------- rng ----------

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double value = rng.uniform(2.0, 5.0);
    EXPECT_GE(value, 2.0);
    EXPECT_LT(value, 5.0);
    int64_t integer = rng.uniform_int(-3, 3);
    EXPECT_GE(integer, -3);
    EXPECT_LE(integer, 3);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(99);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double value = rng.normal(10.0, 2.0);
    sum += value;
    sum_sq += value * value;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ExponentialMean) {
  Rng rng(5);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, ForkGivesIndependentStream) {
  Rng parent(11);
  Rng child = parent.fork();
  EXPECT_NE(parent.next_u64(), child.next_u64());
}

}  // namespace
}  // namespace ceems::common
