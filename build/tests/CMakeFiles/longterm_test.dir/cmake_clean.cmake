file(REMOVE_RECURSE
  "CMakeFiles/longterm_test.dir/longterm_test.cpp.o"
  "CMakeFiles/longterm_test.dir/longterm_test.cpp.o.d"
  "longterm_test"
  "longterm_test.pdb"
  "longterm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longterm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
