// Fault-injection primitives shared by every injection site. A site
// (http client/server, scrape target, emissions provider, simfs read)
// holds a FaultHook; before an operation it asks the hook what should go
// wrong, and implements the returned decision with its own machinery —
// the hook never touches sockets or files itself. Production code leaves
// the hook empty, which costs one branch per operation.
//
// The standard hook implementation is faults::FaultPlan (plan.h): a
// deterministic, seed-driven decision stream, so any chaos run is
// reproducible from a single uint64 seed.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

namespace ceems::faults {

enum class FaultKind : uint8_t {
  kNone = 0,
  kConnectTimeout,  // connection never establishes within the timeout
  kIoTimeout,       // connection established, response never arrives
  kHttpStatus,      // server answers with `http_status` (5xx / 429)
  kSlowResponse,    // response delayed by `delay_ms` (may exceed timeout)
  kTruncateBody,    // connection drops mid-body; `keep_fraction` arrives
  kUnavailable,     // hard refusal: connect refused / provider outage
  kReadError,       // filesystem read fails (simfs)
};

const char* fault_kind_name(FaultKind kind);

struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  int http_status = 500;      // kHttpStatus
  int delay_ms = 0;           // kSlowResponse
  double keep_fraction = 0.5; // kTruncateBody: fraction of body delivered

  bool none() const { return kind == FaultKind::kNone; }
  explicit operator bool() const { return kind != FaultKind::kNone; }
};

// site: stable identifier of the injection point ("http.client",
// "scrape.target", "emissions.provider", "simfs.read", "lb.backend").
// key: the specific entity at the site (url, instance, provider/zone,
// path) — each (site, key) pair gets an independent decision stream.
using FaultHook =
    std::function<FaultDecision(std::string_view site, std::string_view key)>;

}  // namespace ceems::faults
