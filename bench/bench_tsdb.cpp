// TSDB microbenchmarks: ingestion throughput, selector evaluation, and the
// PromQL operations the CEEMS pipeline leans on (rate over a window, Eq. 1
// style group_left joins, sum by aggregation). These underpin E4's scaling
// headroom numbers.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "tsdb/promql_eval.h"

using namespace ceems;
using tsdb::TimeSeriesStore;

namespace {

// Builds a store with `hosts`×`series_per_host` series × `samples` each.
std::shared_ptr<TimeSeriesStore> make_store(int hosts, int series_per_host,
                                            int samples) {
  auto store = std::make_shared<TimeSeriesStore>();
  for (int h = 0; h < hosts; ++h) {
    for (int s = 0; s < series_per_host; ++s) {
      metrics::Labels labels =
          metrics::Labels{{"hostname", "n" + std::to_string(h)},
                          {"uuid", std::to_string(s)}}
              .with_name("m");
      for (int i = 0; i < samples; ++i) {
        store->append(labels, i * 30000, i * 10.0);
      }
    }
  }
  return store;
}

void BM_append(benchmark::State& state) {
  TimeSeriesStore store;
  common::Rng rng(1);
  std::vector<metrics::Labels> labels;
  for (int s = 0; s < 1000; ++s) {
    labels.push_back(metrics::Labels{{"uuid", std::to_string(s)}}
                         .with_name("m"));
  }
  int64_t t = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    store.append(labels[i % labels.size()], t, 1.0);
    if (++i % labels.size() == 0) t += 30000;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_append);

void BM_select_by_equality(benchmark::State& state) {
  auto store = make_store(static_cast<int>(state.range(0)), 20, 120);
  for (auto _ : state) {
    auto result = store->select(
        {{"hostname", metrics::LabelMatcher::Op::kEq, "n0"}}, 0,
        120 * 30000);
    benchmark::DoNotOptimize(result);
  }
  state.counters["total_series"] = static_cast<double>(state.range(0) * 20);
}
BENCHMARK(BM_select_by_equality)->Arg(10)->Arg(100)->Arg(1000);

void BM_rate_over_window(benchmark::State& state) {
  auto store = make_store(static_cast<int>(state.range(0)), 10, 120);
  tsdb::promql::Engine engine;
  auto expr = tsdb::promql::parse("sum by (hostname) (rate(m[2m]))");
  for (auto _ : state) {
    auto value = engine.eval(*store, expr, 120 * 30000);
    benchmark::DoNotOptimize(value);
  }
  state.counters["series"] = static_cast<double>(state.range(0) * 10);
}
BENCHMARK(BM_rate_over_window)->Arg(10)->Arg(100)->Arg(400);

void BM_group_left_join(benchmark::State& state) {
  // The Eq. 1 shape: per-uuid series joined onto per-host series.
  auto store = std::make_shared<TimeSeriesStore>();
  int hosts = static_cast<int>(state.range(0));
  for (int h = 0; h < hosts; ++h) {
    std::string host = "n" + std::to_string(h);
    store->append(metrics::Labels{{"hostname", host}}.with_name("node_w"),
                  30000, 300.0);
    for (int u = 0; u < 8; ++u) {
      store->append(metrics::Labels{{"hostname", host},
                                    {"uuid", std::to_string(u)}}
                        .with_name("job_share"),
                    30000, 0.125);
    }
  }
  tsdb::promql::Engine engine;
  auto expr = tsdb::promql::parse(
      "job_share * on(hostname) group_left() node_w");
  for (auto _ : state) {
    auto value = engine.eval(*store, expr, 30000);
    benchmark::DoNotOptimize(value);
  }
  state.counters["result_samples"] = static_cast<double>(hosts * 8);
}
BENCHMARK(BM_group_left_join)->Arg(10)->Arg(100)->Arg(1000);

void BM_range_query(benchmark::State& state) {
  auto store = make_store(20, 10, 240);  // 2 h of data
  tsdb::promql::Engine engine;
  auto expr = tsdb::promql::parse("sum by (hostname) (rate(m[2m]))");
  for (auto _ : state) {
    auto matrix = engine.eval_range(*store, expr, 0, 240 * 30000, 60000);
    benchmark::DoNotOptimize(matrix);
  }
}
BENCHMARK(BM_range_query);

void BM_purge(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto store = make_store(50, 20, 120);
    state.ResumeTiming();
    benchmark::DoNotOptimize(store->purge_before(60 * 30000));
  }
}
BENCHMARK(BM_purge);

}  // namespace

BENCHMARK_MAIN();
