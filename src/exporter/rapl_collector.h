// RAPL collector (§II-A.b): reads the powercap sysfs counters and exports
// cumulative joules per domain. The raw hardware counter wraps at
// max_energy_range_uj; the collector carries a software accumulator across
// scrapes so the exported counter never wraps — the same wrap-healing the
// Go exporter does.
#pragma once

#include <map>

#include "exporter/collector.h"
#include "node/rapl.h"

namespace ceems::exporter {

class RaplCollector final : public Collector {
 public:
  explicit RaplCollector(simfs::FsPtr fs) : fs_(std::move(fs)) {}

  std::string name() const override { return "rapl"; }
  std::vector<metrics::MetricFamily> collect(common::TimestampMs now) override;

 private:
  struct DomainState {
    int64_t last_uj = -1;
    double joules_total = 0;
  };
  simfs::FsPtr fs_;
  std::map<std::string, DomainState> state_;  // key: domain + index
};

}  // namespace ceems::exporter
