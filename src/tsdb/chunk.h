// Gorilla-style compressed sample chunks — the Prometheus chunk encoding
// analogue. Timestamps are delta-of-delta coded (regular scrape intervals
// cost one bit per sample), values are XOR coded against their predecessor
// (flat or slowly-drifting gauges cost a bit or two). Both codings are
// bit-lossless: decode(encode(samples)) reproduces every int64 timestamp
// and every double bit pattern exactly, including NaN payloads and ±Inf —
// which is what lets the chunked store promise bit-identical query results
// against the old raw-vector representation.
//
// A ChunkedSeries is a run of immutable sealed chunks plus a small mutable
// head of raw samples. Appends go to the head; once the head reaches
// kChunkSamples and a strictly newer sample arrives, it is sealed into a
// compressed chunk. The newest sample therefore lives in the head —
// except right after adopt_sealed() (snapshot restore), when it sits in
// the last sealed chunk and a duplicate-timestamp rewrite re-seals that
// chunk instead of patching the head. Readers hand out
// shared_ptrs to sealed chunks: a SeriesView captured under the shard lock
// stays valid and immutable after the lock is released, and decoding
// happens lazily on the reader's thread.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "metrics/labels.h"

namespace ceems::tsdb {

using common::TimestampMs;

struct SamplePoint {
  TimestampMs t = 0;
  double v = 0;
};

// A fully-materialised time series: the exchange type at API boundaries
// (PromQL matrix values, range-query results, HTTP API rendering).
struct Series {
  metrics::Labels labels;
  std::vector<SamplePoint> samples;  // time-ordered
};

// One sealed, immutable compressed chunk.
class GorillaChunk {
 public:
  // Encodes `count` time-ordered samples. count must be >= 1.
  static std::shared_ptr<const GorillaChunk> encode(const SamplePoint* samples,
                                                    std::size_t count);
  // Reconstructs a chunk from serialized parts (snapshot restore). Returns
  // nullptr when the byte stream does not decode to exactly `count`
  // samples spanning [min_t, max_t] — a corrupt or truncated snapshot.
  static std::shared_ptr<const GorillaChunk> from_parts(
      std::vector<uint8_t> bytes, uint32_t count, TimestampMs min_t,
      TimestampMs max_t);

  // Decodes every sample. Returns nullopt on a malformed byte stream
  // (cannot happen for chunks built by encode()).
  std::optional<std::vector<SamplePoint>> decode() const;

  uint32_t count() const { return count_; }
  TimestampMs min_time() const { return min_t_; }
  TimestampMs max_time() const { return max_t_; }
  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  GorillaChunk(std::vector<uint8_t> bytes, uint32_t count, TimestampMs min_t,
               TimestampMs max_t)
      : bytes_(std::move(bytes)), count_(count), min_t_(min_t), max_t_(max_t) {}

  std::vector<uint8_t> bytes_;
  uint32_t count_;
  TimestampMs min_t_;
  TimestampMs max_t_;
};

using ChunkPtr = std::shared_ptr<const GorillaChunk>;

// Process-wide count of GorillaChunk::decode() calls. The streaming range
// evaluator promises each chunk overlapping a query decodes at most once;
// this counter is how tests and benchmarks observe that invariant.
uint64_t chunk_decode_count();

// Per-query cache of decoded chunks, keyed by chunk identity. One range
// query touches the same sealed chunk from many step windows (and possibly
// from several selectors); routing every decode through this cache bounds
// the work at one decode per chunk per query. Not thread-safe: fill it
// serially (or adopt() pre-decoded chunks produced in parallel) before any
// concurrent readers run.
class DecodedChunkCache {
 public:
  // Returns the decoded samples for `chunk`, decoding on first access. The
  // reference stays valid for the cache's lifetime (clear() invalidates).
  const std::vector<SamplePoint>& decode(const ChunkPtr& chunk);
  // Stores an externally-decoded chunk (parallel prefill).
  void adopt(const ChunkPtr& chunk, std::vector<SamplePoint> samples);
  bool contains(const GorillaChunk* chunk) const {
    return decoded_.count(chunk) != 0;
  }
  std::size_t size() const { return decoded_.size(); }
  void clear() { decoded_.clear(); }

 private:
  std::unordered_map<const GorillaChunk*, std::vector<SamplePoint>> decoded_;
};

// One time-ordered segment of a series view: either a whole sealed chunk
// (kept compressed, decoded lazily) or an owned run of raw points (head
// samples, or the in-range part of a chunk that straddles the range
// boundary).
struct ChunkSlice {
  ChunkPtr chunk;                   // set: every sample is in range
  std::vector<SamplePoint> points;  // otherwise: pre-filtered raw points

  std::size_t count() const { return chunk ? chunk->count() : points.size(); }
  // Time bounds without decoding (0 when the slice is empty; slices built
  // by slices_between are never empty).
  TimestampMs min_time() const {
    return chunk ? chunk->min_time() : (points.empty() ? 0 : points.front().t);
  }
  TimestampMs max_time() const {
    return chunk ? chunk->max_time() : (points.empty() ? 0 : points.back().t);
  }
};

// A chunk-backed view of one series over a time range, as returned by
// Queryable::select(). Copying a view is cheap (label handle + chunk
// refcounts); samples() decodes. Materialise only at the point the full
// sample vector is actually consumed.
struct SeriesView {
  metrics::Labels labels;
  std::vector<ChunkSlice> slices;

  // Exact number of samples in range, without decoding.
  std::size_t sample_count() const;
  // Decodes and concatenates every slice (time-ordered).
  std::vector<SamplePoint> samples() const;
  // Same, but chunk-backed slices decode through `cache` — at most one
  // decode per chunk across every view sharing the cache.
  std::vector<SamplePoint> samples(DecodedChunkCache& cache) const;
  // Last sample in range; decodes at most one chunk.
  std::optional<SamplePoint> last() const;
  Series materialize() const { return {labels, samples()}; }

  // Wraps already-materialised samples (merged/derived series).
  static SeriesView owned(metrics::Labels labels,
                          std::vector<SamplePoint> samples);
};

// Samples-per-chunk seal threshold; 120 matches Prometheus (one chunk per
// hour at a 30s scrape interval).
inline constexpr std::size_t kChunkSamples = 120;

enum class AppendResult { kRejected, kAppended, kOverwrote };

class ChunkedSeries {
 public:
  // Ordering rules match the old raw-vector store: a timestamp older than
  // the newest sample is rejected, an equal timestamp overwrites the
  // newest sample's value (last write wins), a newer one is appended.
  AppendResult append(TimestampMs t, double v);

  std::size_t num_samples() const { return total_; }
  bool empty() const { return total_ == 0; }
  TimestampMs min_time() const;
  TimestampMs max_time() const { return last_t_; }

  // Sealed chunk bytes + head capacity: the real storage footprint this
  // series contributes to StorageStats::approx_bytes.
  std::size_t approx_bytes() const;

  // Chunk-backed slices covering [min_t, max_t]; boundary chunks are
  // decoded and filtered eagerly (so a view with sample_count() == 0 means
  // "no samples in range" exactly). Fully-covered chunks stay compressed.
  std::vector<ChunkSlice> slices_between(TimestampMs min_t,
                                         TimestampMs max_t) const;
  // Materialised samples in [min_t, max_t] (replication / compaction use).
  std::vector<SamplePoint> samples_between(TimestampMs min_t,
                                           TimestampMs max_t) const;

  // Drops samples with t < cutoff; returns how many were dropped. A chunk
  // straddling the cutoff is decoded, filtered and re-sealed.
  std::size_t drop_before(TimestampMs cutoff);

  const std::vector<ChunkPtr>& sealed() const { return sealed_; }
  const std::vector<SamplePoint>& head() const { return head_; }

  // Snapshot-restore fast path: adopts a sealed chunk wholesale. Only
  // valid when the chunk is strictly newer than everything stored so far.
  bool adopt_sealed(ChunkPtr chunk);

 private:
  std::vector<ChunkPtr> sealed_;
  std::vector<SamplePoint> head_;
  TimestampMs last_t_ = 0;
  std::size_t total_ = 0;
};

}  // namespace ceems::tsdb
