#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <thread>

#include "reldb/database.h"

namespace ceems::reldb {
namespace {

Schema jobs_schema() {
  Schema schema;
  schema.columns = {{"id", ColumnType::kInt},
                    {"user", ColumnType::kText},
                    {"energy", ColumnType::kReal}};
  schema.primary_key = "id";
  return schema;
}

// ---------- values ----------

TEST(Value, TypedAccessAndCoercion) {
  EXPECT_EQ(Value(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Value(42).as_real(), 42.0);
  EXPECT_DOUBLE_EQ(Value(2.5).as_real(), 2.5);
  EXPECT_EQ(Value("x").as_text(), "x");
  EXPECT_EQ(Value("17").as_int(), 17);
  EXPECT_TRUE(Value().is_null());
}

TEST(Value, TotalOrder) {
  EXPECT_TRUE(Value() < Value(0));          // null < numbers
  EXPECT_TRUE(Value(5) < Value("a"));       // numbers < text
  EXPECT_TRUE(Value(2) < Value(2.5));       // numeric comparison across types
  EXPECT_TRUE(Value(2) == Value(2.0));
  EXPECT_FALSE(Value("2") == Value(2));     // text vs number differ
}

// ---------- table ----------

TEST(Table, InsertUpsertEraseGet) {
  Table table(jobs_schema());
  EXPECT_TRUE(table.insert({Value(1), Value("alice"), Value(10.0)}));
  EXPECT_FALSE(table.insert({Value(1), Value("bob"), Value(0.0)}));
  EXPECT_EQ((*table.get(Value(1)))[1].as_text(), "alice");

  table.upsert({Value(1), Value("bob"), Value(20.0)});
  EXPECT_EQ((*table.get(Value(1)))[1].as_text(), "bob");
  EXPECT_EQ(table.size(), 1u);

  EXPECT_TRUE(table.erase(Value(1)));
  EXPECT_FALSE(table.erase(Value(1)));
  EXPECT_FALSE(table.get(Value(1)).has_value());
}

TEST(Table, EraseKeepsOtherRowsFindable) {
  Table table(jobs_schema());
  table.create_index("user");
  for (int i = 0; i < 10; ++i) {
    table.insert({Value(i), Value("u" + std::to_string(i % 3)),
                  Value(static_cast<double>(i))});
  }
  table.erase(Value(0));
  table.erase(Value(5));
  // Swap-with-last on erase must keep the pk map and index consistent.
  for (int i : {1, 2, 3, 4, 6, 7, 8, 9}) {
    ASSERT_TRUE(table.get(Value(i)).has_value()) << i;
  }
  Query query;
  query.where = {{"user", Predicate::Op::kEq, Value("u1")}};
  EXPECT_EQ(table.execute(query).rows.size(), 3u);  // ids 1, 4, 7 (untouched)
}

TEST(Table, WhereOperators) {
  Table table(jobs_schema());
  for (int i = 0; i < 10; ++i) {
    table.insert({Value(i), Value("u"), Value(static_cast<double>(i))});
  }
  auto count = [&](Predicate::Op op, double v) {
    Query query;
    query.where = {{"energy", op, Value(v)}};
    return table.execute(query).rows.size();
  };
  EXPECT_EQ(count(Predicate::Op::kEq, 5), 1u);
  EXPECT_EQ(count(Predicate::Op::kNe, 5), 9u);
  EXPECT_EQ(count(Predicate::Op::kLt, 5), 5u);
  EXPECT_EQ(count(Predicate::Op::kLe, 5), 6u);
  EXPECT_EQ(count(Predicate::Op::kGt, 5), 4u);
  EXPECT_EQ(count(Predicate::Op::kGe, 5), 5u);
}

TEST(Table, GroupByWithAggregates) {
  Table table(jobs_schema());
  table.insert({Value(1), Value("alice"), Value(10.0)});
  table.insert({Value(2), Value("alice"), Value(30.0)});
  table.insert({Value(3), Value("bob"), Value(5.0)});

  Query query;
  query.group_by = {"user"};
  query.aggregates = {{AggFn::kSum, "energy", "total"},
                      {AggFn::kAvg, "energy", "mean"},
                      {AggFn::kMin, "energy", "lo"},
                      {AggFn::kMax, "energy", "hi"},
                      {AggFn::kCount, "", "n"}};
  query.order_by = "user";
  ResultSet result = table.execute(query);
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(result.at(0, "total").as_real(), 40.0);
  EXPECT_DOUBLE_EQ(result.at(0, "mean").as_real(), 20.0);
  EXPECT_DOUBLE_EQ(result.at(0, "lo").as_real(), 10.0);
  EXPECT_DOUBLE_EQ(result.at(0, "hi").as_real(), 30.0);
  EXPECT_EQ(result.at(0, "n").as_int(), 2);
  EXPECT_DOUBLE_EQ(result.at(1, "total").as_real(), 5.0);
}

TEST(Table, OrderByDescendingAndLimit) {
  Table table(jobs_schema());
  for (int i = 0; i < 10; ++i) {
    table.insert({Value(i), Value("u"), Value(static_cast<double>(i))});
  }
  Query query;
  query.order_by = "energy";
  query.descending = true;
  query.limit = 3;
  ResultSet result = table.execute(query);
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_DOUBLE_EQ(result.at(0, "energy").as_real(), 9.0);
  EXPECT_DOUBLE_EQ(result.at(2, "energy").as_real(), 7.0);
}

TEST(Table, ProjectionSelectsColumns) {
  Table table(jobs_schema());
  table.insert({Value(1), Value("alice"), Value(10.0)});
  Query query;
  query.select = {"user"};
  ResultSet result = table.execute(query);
  ASSERT_EQ(result.columns.size(), 1u);
  EXPECT_EQ(result.at(0, "user").as_text(), "alice");
  EXPECT_THROW(result.at(0, "energy"), std::out_of_range);
}

TEST(Table, IndexedEqualityFastPathGivesSameAnswer) {
  Table indexed(jobs_schema());
  Table plain(jobs_schema());
  indexed.create_index("user");
  for (int i = 0; i < 100; ++i) {
    Row row = {Value(i), Value("u" + std::to_string(i % 7)),
               Value(static_cast<double>(i))};
    indexed.insert(row);
    plain.insert(row);
  }
  Query query;
  query.where = {{"user", Predicate::Op::kEq, Value("u3")},
                 {"energy", Predicate::Op::kGt, Value(50.0)}};
  EXPECT_EQ(indexed.execute(query).rows.size(),
            plain.execute(query).rows.size());
}

TEST(Table, SchemaErrors) {
  EXPECT_THROW(Table(Schema{{{"a", ColumnType::kInt}}, "missing"}),
               std::invalid_argument);
  Table table(jobs_schema());
  EXPECT_THROW(table.insert({Value(1)}), std::invalid_argument);
  Query bad;
  bad.select = {"nope"};
  EXPECT_THROW(table.execute(bad), std::invalid_argument);
}

// ---------- wal ----------

TEST(Wal, EntryRoundTrip) {
  WalEntry entry;
  entry.seq = 7;
  entry.op = WalEntry::Op::kUpsert;
  entry.table = "units";
  entry.row = {Value(1), Value("alice"), Value(2.5)};
  auto decoded = decode_wal_entry(encode_wal_entry(entry));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seq, 7u);
  EXPECT_EQ(decoded->table, "units");
  ASSERT_EQ(decoded->row.size(), 3u);
  EXPECT_EQ(decoded->row[1].as_text(), "alice");
}

TEST(Wal, CorruptLineRejected) {
  EXPECT_FALSE(decode_wal_entry("{not json").has_value());
  EXPECT_FALSE(decode_wal_entry("{\"op\":\"who\"}").has_value());
}

// ---------- database ----------

class DatabaseFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "ceems_reldb_test_" +
            std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".wal";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(DatabaseFileTest, WalReplayRestoresState) {
  {
    Database db(path_);
    db.create_table("jobs", jobs_schema());
    db.upsert("jobs", {Value(1), Value("alice"), Value(10.0)});
    db.upsert("jobs", {Value(2), Value("bob"), Value(20.0)});
    db.upsert("jobs", {Value(1), Value("alice"), Value(15.0)});
    db.erase("jobs", Value(2));
  }
  auto reopened = Database::open(path_);
  EXPECT_EQ(reopened->table_size("jobs"), 1u);
  EXPECT_DOUBLE_EQ((*reopened->get("jobs", Value(1)))[2].as_real(), 15.0);
}

TEST_F(DatabaseFileTest, TruncatedWalTailRecoversPrefix) {
  {
    Database db(path_);
    db.create_table("jobs", jobs_schema());
    db.upsert("jobs", {Value(1), Value("a"), Value(1.0)});
    db.upsert("jobs", {Value(2), Value("b"), Value(2.0)});
  }
  // Corrupt the last line (torn write).
  std::ifstream in(path_);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::trunc);
  out << content.substr(0, content.size() - 15) << "\n";
  out.close();

  auto recovered = Database::open(path_);
  EXPECT_EQ(recovered->table_size("jobs"), 1u);
  EXPECT_TRUE(recovered->get("jobs", Value(1)).has_value());
}

TEST_F(DatabaseFileTest, BackupAndRestore) {
  Database db;  // in-memory primary
  db.create_table("jobs", jobs_schema());
  for (int i = 0; i < 20; ++i) {
    db.upsert("jobs", {Value(i), Value("u"), Value(static_cast<double>(i))});
  }
  db.backup_to(path_);
  auto restored = Database::open(path_);
  EXPECT_EQ(restored->table_size("jobs"), 20u);
  EXPECT_DOUBLE_EQ((*restored->get("jobs", Value(7)))[2].as_real(), 7.0);
}

TEST(Database, ReplicatorShipsIncrementally) {
  Database primary, replica;
  Replicator replicator(primary, replica);
  primary.create_table("jobs", jobs_schema());
  primary.upsert("jobs", {Value(1), Value("a"), Value(1.0)});
  EXPECT_EQ(replicator.sync(), 2u);  // create + upsert
  EXPECT_EQ(replica.table_size("jobs"), 1u);

  primary.upsert("jobs", {Value(2), Value("b"), Value(2.0)});
  primary.erase("jobs", Value(1));
  EXPECT_EQ(replicator.sync(), 2u);
  EXPECT_EQ(replicator.sync(), 0u);  // idempotent
  EXPECT_EQ(replica.table_size("jobs"), 1u);
  EXPECT_TRUE(replica.get("jobs", Value(2)).has_value());
}

TEST(Database, ConcurrentReadersWithSingleWriter) {
  Database db;
  db.create_table("jobs", jobs_schema());
  std::thread writer([&] {
    for (int i = 0; i < 3000; ++i) {
      db.upsert("jobs", {Value(i % 50), Value("u" + std::to_string(i % 5)),
                         Value(static_cast<double>(i))});
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        Query query;
        query.group_by = {"user"};
        query.aggregates = {{AggFn::kSum, "energy", "total"}};
        auto result = db.query("jobs", query);
        EXPECT_LE(result.rows.size(), 5u);
      }
    });
  }
  writer.join();
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(db.table_size("jobs"), 50u);
}

TEST(Database, UnknownTableThrows) {
  Database db;
  EXPECT_THROW(db.upsert("nope", {}), std::invalid_argument);
  EXPECT_THROW(db.query("nope", Query{}), std::invalid_argument);
}

}  // namespace
}  // namespace ceems::reldb
