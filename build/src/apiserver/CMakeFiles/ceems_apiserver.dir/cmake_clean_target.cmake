file(REMOVE_RECURSE
  "libceems_apiserver.a"
)
