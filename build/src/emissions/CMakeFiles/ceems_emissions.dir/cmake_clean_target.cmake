file(REMOVE_RECURSE
  "libceems_emissions.a"
)
