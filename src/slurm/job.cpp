#include "slurm/job.h"

namespace ceems::slurm {

std::string_view job_state_name(JobState state) {
  switch (state) {
    case JobState::kPending: return "PENDING";
    case JobState::kRunning: return "RUNNING";
    case JobState::kCompleted: return "COMPLETED";
    case JobState::kFailed: return "FAILED";
    case JobState::kTimeout: return "TIMEOUT";
    case JobState::kCancelled: return "CANCELLED";
  }
  return "UNKNOWN";
}

}  // namespace ceems::slurm
