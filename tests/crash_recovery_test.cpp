// Crash-recovery differential: a deterministic scrape-shaped workload
// runs against a WAL-backed store while an oracle digest is recorded
// after every logged mutation. The process is then "killed" by cutting
// the durable WAL at an arbitrary byte offset; recovery must produce a
// store BIT-IDENTICAL to the oracle at the longest record prefix that
// survived the cut — never a partial record, never a reordering, and
// at most the final un-flushed group lost.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>

#include "metrics/model.h"
#include "simfs/durable_dir.h"
#include "tsdb/storage.h"
#include "tsdb/wal.h"

namespace ceems::tsdb {
namespace {

using metrics::InternedLabels;
using metrics::Labels;
using metrics::SampleRef;

std::string digest(const TimeSeriesStore& store) {
  auto all = store.series_since(std::numeric_limits<TimestampMs>::min());
  std::vector<std::pair<std::string, const Series*>> sorted;
  sorted.reserve(all.size());
  for (const auto& series : all) {
    sorted.emplace_back(series.labels.to_string(), &series);
  }
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& [key, series] : sorted) {
    out += key;
    out += '\n';
    for (const auto& sample : series->samples) {
      uint64_t bits = 0;
      std::memcpy(&bits, &sample.v, sizeof(bits));
      out += "  " + std::to_string(sample.t) + " " + std::to_string(bits) +
             "\n";
    }
  }
  return out;
}

constexpr std::size_t kWalHeaderLen = 8 + 1 + 8;

// The deterministic workload: `sweeps` scrape rounds over a small fleet,
// each target contributing one batch record per sweep, with periodic
// retention purges and cardinality deletions — every mutation kind the
// WAL logs. Records the store digest after every mutation; trace[k] is
// the exact expected state once k records have been applied.
struct Workload {
  std::shared_ptr<simfs::SimDurableDir> dir;
  StorePtr store;
  std::unique_ptr<DurableTsdb> durable;
  std::vector<std::string> trace;     // trace[k]: after k logged records
  std::size_t checkpoint_base = 0;    // records folded into the snapshot
};

Workload run_workload(uint64_t seed, int sweeps, int checkpoint_at_sweep) {
  Workload w;
  w.dir = std::make_shared<simfs::SimDurableDir>();
  w.store = std::make_shared<TimeSeriesStore>();
  WalOptions options;
  options.segment_bytes = 1u << 12;  // several rotations per run
  w.durable = std::make_unique<DurableTsdb>(w.store, w.dir, options);
  w.durable->open();
  w.trace.push_back(digest(*w.store));  // trace[0]: empty

  std::mt19937_64 rng(seed);
  constexpr int kTargets = 6;
  constexpr int kSeriesPerTarget = 8;
  std::vector<std::vector<InternedLabels>> fleet(kTargets);
  for (int target = 0; target < kTargets; ++target) {
    for (int s = 0; s < kSeriesPerTarget; ++s) {
      fleet[target].push_back(InternedLabels(
          Labels{{"instance", "node" + std::to_string(target)},
                 {"uuid", std::to_string(s)}}
              .with_name("ceems_job_power_watts")));
    }
  }

  auto record = [&] { w.trace.push_back(digest(*w.store)); };

  for (int sweep = 0; sweep < sweeps; ++sweep) {
    int64_t now = sweep * 30000;
    for (int target = 0; target < kTargets; ++target) {
      std::vector<SampleRef> batch;
      for (const auto& labels : fleet[target]) {
        if (rng() % 10 == 0) continue;  // series missing this scrape
        batch.push_back({&labels, now, std::round(100.0 * (1 + target)) +
                                           static_cast<double>(rng() % 50)});
      }
      if (batch.empty()) continue;  // nothing logged, no record
      w.store->append_refs(batch.data(), batch.size());
      record();
    }
    if (sweep > 0 && sweep % 5 == 0) {
      w.store->purge_before(now - 120000);
      record();
    }
    if (sweep > 0 && sweep % 7 == 0) {
      w.store->delete_series({{"uuid", metrics::LabelMatcher::Op::kEq,
                               std::to_string(rng() % kSeriesPerTarget)}});
      record();
    }
    if (sweep == checkpoint_at_sweep) {
      EXPECT_TRUE(w.durable->checkpoint());
      // Everything so far is folded into the snapshot; the WAL restarts
      // empty, so surviving-record counting restarts here too.
      w.checkpoint_base = w.trace.size() - 1;
    }
  }
  return w;
}

// Counts complete, contiguous records across the durable segments in
// sequence order, stopping at the first torn/short one — exactly the
// prefix replay is allowed (and required) to apply.
std::size_t surviving_records(simfs::SimDurableDir& dir) {
  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const auto& name : dir.list()) {
    if (auto seq = Wal::parse_segment_name(name)) {
      segments.emplace_back(*seq, name);
    }
  }
  std::sort(segments.begin(), segments.end());
  std::size_t records = 0;
  for (const auto& [seq, name] : segments) {
    auto bytes = dir.read(name);
    if (!bytes || bytes->size() < kWalHeaderLen) return records;
    std::size_t offset = kWalHeaderLen;
    while (bytes->size() - offset >= 8) {
      uint32_t len = 0;
      std::memcpy(&len, bytes->data() + offset, 4);
      if (bytes->size() - offset - 8 < len) return records;
      offset += 8 + len;
      ++records;
    }
    if (offset != bytes->size()) return records;  // trailing garbage
  }
  return records;
}

// Total durable WAL bytes, and the (segment, local offset) a global cut
// position falls into — segments in sequence order.
struct CutPoint {
  std::string segment;
  std::size_t offset;
};

CutPoint locate_cut(simfs::SimDurableDir& dir, std::size_t global) {
  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const auto& name : dir.list()) {
    if (auto seq = Wal::parse_segment_name(name)) {
      segments.emplace_back(*seq, name);
    }
  }
  std::sort(segments.begin(), segments.end());
  for (const auto& [seq, name] : segments) {
    std::size_t size = dir.read(name)->size();
    if (global < size) return {name, global};
    global -= size;
  }
  return {segments.back().second, dir.read(segments.back().second)->size()};
}

std::size_t total_wal_bytes(simfs::SimDurableDir& dir) {
  std::size_t total = 0;
  for (const auto& name : dir.list()) {
    if (Wal::parse_segment_name(name)) total += dir.read(name)->size();
  }
  return total;
}

// One seed, one random cut: run the workload, cut the WAL at a random
// byte, recover, and compare against the oracle trace entry for the
// surviving prefix.
void crash_at_random_offset(uint64_t seed, int checkpoint_at_sweep) {
  Workload w = run_workload(seed, 20, checkpoint_at_sweep);
  std::size_t logged = w.trace.size() - 1;
  ASSERT_GT(logged, w.checkpoint_base);

  std::mt19937_64 rng(seed ^ 0x9E3779B97F4A7C15ULL);
  std::size_t total = total_wal_bytes(*w.dir);
  ASSERT_GT(total, 0u);
  CutPoint cut = locate_cut(*w.dir, rng() % total);

  // Kill the process at that byte: everything after the cut in that
  // segment is gone, and any LATER segment is gone entirely (a real
  // torn write hits the newest segment; earlier cuts model lost
  // storage, which replay must also survive by stopping cleanly).
  w.dir->crash();  // drop unsynced bytes first (there are none)
  w.dir->truncate_durable(cut.segment, cut.offset);
  if (auto cut_seq = Wal::parse_segment_name(cut.segment)) {
    for (const auto& name : w.dir->list()) {
      auto seq = Wal::parse_segment_name(name);
      if (seq && *seq > *cut_seq) w.dir->remove(name);
    }
  }

  std::size_t k = w.checkpoint_base + surviving_records(*w.dir);

  // Recover into a brand-new store over the damaged dir — the cold
  // restart path.
  auto fresh = std::make_shared<TimeSeriesStore>();
  DurableTsdb recovered(fresh, w.dir);
  auto result = recovered.open();
  EXPECT_TRUE(result.replay.error.empty()) << "seed " << seed;
  ASSERT_LT(k, w.trace.size());
  EXPECT_EQ(digest(*fresh), w.trace[k])
      << "seed " << seed << " cut " << cut.segment << "@" << cut.offset
      << " k=" << k;

  // Recovery is stable: a second cold open lands on the same state.
  auto fresh2 = std::make_shared<TimeSeriesStore>();
  DurableTsdb recovered2(fresh2, w.dir);
  auto second = recovered2.open();
  EXPECT_FALSE(second.replay.torn_tail) << "seed " << seed;
  EXPECT_EQ(digest(*fresh2), w.trace[k]) << "seed " << seed;
}

TEST(CrashRecovery, RandomCutMatchesOracleAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    crash_at_random_offset(seed, /*checkpoint_at_sweep=*/-1);
  }
}

TEST(CrashRecovery, RandomCutAfterCheckpointMatchesOracle) {
  for (uint64_t seed = 101; seed <= 112; ++seed) {
    crash_at_random_offset(seed, /*checkpoint_at_sweep=*/10);
  }
}

TEST(CrashRecovery, CleanCrashLosesNothing) {
  // No torn bytes: a crash right after a quiescent point recovers the
  // exact final state — group commit made every record durable before
  // its apply returned.
  for (uint64_t seed = 201; seed <= 210; ++seed) {
    Workload w = run_workload(seed, 15, seed % 2 == 0 ? 7 : -1);
    std::string final_digest = w.trace.back();
    w.dir->crash();

    auto fresh = std::make_shared<TimeSeriesStore>();
    DurableTsdb recovered(fresh, w.dir);
    auto result = recovered.open();
    EXPECT_FALSE(result.replay.torn_tail) << "seed " << seed;
    EXPECT_EQ(digest(*fresh), final_digest) << "seed " << seed;
  }
}

TEST(CrashRecovery, InPlaceRecoveryOnLiveStorePtr) {
  // The soak / stack path: recover into the SAME StorePtr the scraper
  // and rule engine hold, not a fresh one.
  Workload w = run_workload(42, 12, 6);
  std::string final_digest = w.trace.back();
  w.dir->crash();
  auto result = w.durable->open();
  EXPECT_FALSE(result.replay.torn_tail);
  EXPECT_EQ(digest(*w.store), final_digest);

  // And the recovered store keeps accepting writes through a fresh WAL
  // generation.
  auto labels = InternedLabels(Labels{{"uuid", "x"}}.with_name("m"));
  SampleRef ref{&labels, 1'000'000'000, 7.0};
  EXPECT_EQ(w.store->append_refs(&ref, 1), 1u);
}

}  // namespace
}  // namespace ceems::tsdb
