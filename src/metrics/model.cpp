#include "metrics/model.h"

#include <cctype>
#include <cstring>

namespace ceems::metrics {

double stale_marker() {
  double value;
  static_assert(sizeof(value) == sizeof(kStaleNaNBits));
  std::memcpy(&value, &kStaleNaNBits, sizeof(value));
  return value;
}

bool is_stale_marker(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits == kStaleNaNBits;
}

std::string_view metric_type_name(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kUntyped: return "untyped";
  }
  return "untyped";
}

namespace {
bool is_name_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool is_name_char(char c) {
  return is_name_start(c) || std::isdigit(static_cast<unsigned char>(c));
}
}  // namespace

bool is_valid_metric_name(std::string_view name) {
  if (name.empty() || !is_name_start(name[0])) return false;
  for (char c : name) {
    if (!is_name_char(c)) return false;
  }
  return true;
}

bool is_valid_label_name(std::string_view name) {
  if (name.empty()) return false;
  char first = name[0];
  if (!(std::isalpha(static_cast<unsigned char>(first)) || first == '_'))
    return false;
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_'))
      return false;
  }
  return true;
}

}  // namespace ceems::metrics
