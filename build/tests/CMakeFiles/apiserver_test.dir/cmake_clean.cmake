file(REMOVE_RECURSE
  "CMakeFiles/apiserver_test.dir/apiserver_test.cpp.o"
  "CMakeFiles/apiserver_test.dir/apiserver_test.cpp.o.d"
  "apiserver_test"
  "apiserver_test.pdb"
  "apiserver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apiserver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
