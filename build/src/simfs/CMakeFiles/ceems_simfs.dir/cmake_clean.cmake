file(REMOVE_RECURSE
  "CMakeFiles/ceems_simfs.dir/cgroup.cpp.o"
  "CMakeFiles/ceems_simfs.dir/cgroup.cpp.o.d"
  "CMakeFiles/ceems_simfs.dir/procfs.cpp.o"
  "CMakeFiles/ceems_simfs.dir/procfs.cpp.o.d"
  "CMakeFiles/ceems_simfs.dir/pseudo_fs.cpp.o"
  "CMakeFiles/ceems_simfs.dir/pseudo_fs.cpp.o.d"
  "CMakeFiles/ceems_simfs.dir/real_fs.cpp.o"
  "CMakeFiles/ceems_simfs.dir/real_fs.cpp.o.d"
  "libceems_simfs.a"
  "libceems_simfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceems_simfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
