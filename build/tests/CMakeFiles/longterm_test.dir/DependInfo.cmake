
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/longterm_test.cpp" "tests/CMakeFiles/longterm_test.dir/longterm_test.cpp.o" "gcc" "tests/CMakeFiles/longterm_test.dir/longterm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tsdb/CMakeFiles/ceems_tsdb.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ceems_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/ceems_http.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ceems_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
