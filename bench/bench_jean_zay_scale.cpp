// E4 — Jean-Zay scale (paper §III: "capable of monitoring more than 1400
// nodes that have a daily job churn rate of around [thousands]").
//
// Measures the cost of one full monitoring sweep — scrape every node's
// exporter, ingest, evaluate all recording rules — as the node count grows
// toward the paper's 1400, plus the API-server update cycle. Exporters use
// the local transport (identical parse path, no sockets) so a single
// process can host the whole cluster; E1/bench_lb cover per-request HTTP
// costs.
//
// Expected shape: sweep time linear in node count, with a 1400-node sweep
// costing low single-digit seconds — far under the 30 s scrape interval,
// i.e. the paper's deployment size has comfortable headroom.
#include <benchmark/benchmark.h>

#include "common/logging.h"

#include <cstdio>

#include "core/stack.h"

using namespace ceems;

namespace {

struct Deployment {
  std::shared_ptr<common::SimClock> clock;
  std::unique_ptr<slurm::ClusterSim> sim;
  std::unique_ptr<core::CeemsStack> stack;
};

Deployment make_deployment(double scale_factor, double jobs_per_day) {
  Deployment d;
  d.clock = common::make_sim_clock(1700000000000LL);
  slurm::JeanZayScale scale = slurm::JeanZayScale{}.scaled(scale_factor);
  auto gen = slurm::make_jean_zay_workload_config(scale, jobs_per_day);
  d.sim = std::make_unique<slurm::ClusterSim>(
      d.clock, slurm::make_jean_zay_cluster(d.clock, scale, 42), gen, 42);
  core::StackConfig config;
  config.http_exporter_count = 0;
  d.stack = std::make_unique<core::CeemsStack>(*d.sim, config);
  // Warm up: populate jobs and two scrape generations so rate() works.
  d.sim->run_for(2 * common::kMillisPerMinute, 30000,
                 [&](common::TimestampMs) {
                   d.stack->pipeline_step_forced();
                 });
  return d;
}

void BM_full_sweep(benchmark::State& state) {
  double scale_factor = static_cast<double>(state.range(0)) / 1400.0;
  Deployment d = make_deployment(scale_factor, 3000.0 * scale_factor / 0.02);
  for (auto _ : state) {
    // One monitoring generation: sim step + scrape + rules + replication.
    d.sim->step(30000);
    d.stack->pipeline_step_forced();
  }
  state.counters["nodes"] = static_cast<double>(d.sim->cluster().node_count());
  state.counters["series"] =
      static_cast<double>(d.stack->hot_store()->stats().num_series);
  state.counters["samples_per_sweep"] = benchmark::Counter(
      static_cast<double>(d.stack->scraper().stats().samples_ingested) /
          static_cast<double>(d.stack->scraper().stats().scrapes_total) *
          static_cast<double>(d.sim->cluster().node_count()),
      benchmark::Counter::kDefaults);
}
BENCHMARK(BM_full_sweep)
    ->Unit(benchmark::kMillisecond)
    ->Arg(35)    // 2.5% slice
    ->Arg(140)   // 10%
    ->Arg(350)   // 25%
    ->Arg(700)   // 50%
    ->Arg(1400)  // the paper's deployment
    ->Iterations(4)
    ->MeasureProcessCPUTime();

void BM_api_update_cycle(benchmark::State& state) {
  double scale_factor = static_cast<double>(state.range(0)) / 1400.0;
  Deployment d = make_deployment(scale_factor, 6000.0 * scale_factor / 0.02);
  // Accumulate 10 minutes of running jobs first.
  common::TimestampMs next = d.clock->now_ms();
  d.sim->run_for(10 * common::kMillisPerMinute, 30000,
                 [&](common::TimestampMs now) {
                   d.stack->pipeline_step_forced();
                   if (now >= next) {
                     d.stack->update_api();
                     next = now + 60000;
                   }
                 });
  for (auto _ : state) {
    d.sim->step(30000);
    d.stack->pipeline_step_forced();
    d.sim->step(30000);
    d.stack->pipeline_step_forced();
    auto stats = d.stack->update_api();
    benchmark::DoNotOptimize(stats);
  }
  state.counters["nodes"] = static_cast<double>(d.sim->cluster().node_count());
  state.counters["units"] = static_cast<double>(
      d.stack->db().table_size(apiserver::kUnitsTable));
}
BENCHMARK(BM_api_update_cycle)
    ->Unit(benchmark::kMillisecond)
    ->Arg(35)
    ->Arg(140)
    ->Arg(350)
    ->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  common::set_log_level(common::LogLevel::kError);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\nE4: a sweep is one 30s scrape generation for the whole "
              "cluster; headroom = 30s / sweep time.\n");
  return 0;
}
