// Fixed-size worker pool used by the HTTP server, scrape manager and
// simulator. Tasks are plain std::function thunks; shutdown drains the queue
// unless drain=false.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ceems::common {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads, std::string name = "pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Returns false if the pool is shutting down.
  bool submit(std::function<void()> task);

  // Runs every task and blocks until *these* tasks have finished — unlike
  // wait_idle(), this is safe on a pool shared with other submitters. If
  // the pool is shutting down the remaining tasks run on the caller's
  // thread. The first exception thrown by any task is rethrown here after
  // all tasks have completed.
  void run_all(std::vector<std::function<void()>> tasks);

  // Blocks until every queued and running task has finished.
  void wait_idle();

  // Stops the workers. If drain is true, queued tasks run first.
  void shutdown(bool drain = true);

  std::size_t size() const { return workers_.size(); }
  std::size_t pending() const;

 private:
  void worker_loop();

  std::string name_;
  mutable std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  bool accepting_ = true;
};

}  // namespace ceems::common
