// Shared fixture: a small Jean-Zay-like cluster with the complete CEEMS
// stack on top, driven deterministically on a SimClock. Used by the API
// server, LB, dashboard and integration tests.
#pragma once

#include <gtest/gtest.h>

#include "core/stack.h"

namespace ceems::testing {

struct MiniStackOptions {
  double cluster_scale = 0.004;   // ~6 nodes
  double jobs_per_day = 4000;     // busy enough to land jobs everywhere
  uint64_t seed = 42;
  core::StackConfig stack;
};

class MiniStack {
 public:
  explicit MiniStack(MiniStackOptions options = {}) {
    clock_ = common::make_sim_clock(1000000);
    slurm::JeanZayScale scale =
        slurm::JeanZayScale{}.scaled(options.cluster_scale);
    auto gen_config =
        slurm::make_jean_zay_workload_config(scale, options.jobs_per_day);
    gen_config.seed = options.seed;
    sim_ = std::make_unique<slurm::ClusterSim>(
        clock_, slurm::make_jean_zay_cluster(clock_, scale, options.seed),
        gen_config, options.seed);
    options.stack.scrape_interval_ms = 30000;
    options.stack.http_exporter_count = 0;  // local transport in tests
    stack_ = std::make_unique<core::CeemsStack>(*sim_, options.stack);
  }

  // Advances simulated time, scraping + evaluating rules every 30 s and
  // updating the API server every 60 s.
  void run(int64_t duration_ms) {
    int64_t step_ms = 10000;
    int64_t next_update = clock_->now_ms();
    sim_->run_for(duration_ms, step_ms, [&](common::TimestampMs now) {
      stack_->pipeline_step();
      if (now >= next_update) {
        stack_->update_api();
        next_update = now + 60000;
      }
    });
    stack_->update_api();  // catch units from the final partial window
  }

  slurm::ClusterSim& sim() { return *sim_; }
  core::CeemsStack& stack() { return *stack_; }
  std::shared_ptr<common::SimClock> clock() { return clock_; }

  // First job in the accounting DB in a given state, if any.
  std::optional<slurm::Job> any_job(slurm::JobState state) {
    for (const auto& job : sim_->dbd().all_jobs()) {
      if (job.state == state) return job;
    }
    return std::nullopt;
  }

 private:
  std::shared_ptr<common::SimClock> clock_;
  std::unique_ptr<slurm::ClusterSim> sim_;
  std::unique_ptr<core::CeemsStack> stack_;
};

}  // namespace ceems::testing
