# Empty dependencies file for cli_ceems_lb.
# This may be replaced when dependencies are built.
