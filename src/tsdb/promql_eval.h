// PromQL evaluator over any Queryable. Instant queries produce a scalar or
// an instant vector; range queries evaluate the instant expression at each
// step (exactly Prometheus' model).
//
// Known deviations from upstream Prometheus, chosen deliberately:
//   * rate()/increase() compute the slope over the observed sample span
//     without boundary extrapolation — sums of increase() then equal the
//     raw counter deltas, which the energy-accounting tests rely on;
//   * regex matchers use std::regex ECMAScript syntax (anchored like
//     PromQL);
//   * staleness markers are not implemented; the lookback window (default
//     5 min) alone decides sample visibility.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "tsdb/promql_ast.h"
#include "tsdb/storage.h"

namespace ceems::tsdb::promql {

struct EvalError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// One element of an instant vector.
struct VectorSample {
  Labels labels;
  double value = 0;
};
using InstantVector = std::vector<VectorSample>;

struct Value {
  enum class Kind { kScalar, kVector, kString, kMatrix };
  Kind kind = Kind::kScalar;
  double scalar = 0;
  InstantVector vector;
  std::string string_value;
  std::vector<Series> matrix;  // only produced by matrix selectors
};

struct EngineOptions {
  int64_t lookback_ms = 5 * common::kMillisPerMinute;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {}) : options_(options) {}

  // Evaluates `expr` at instant `t`.
  Value eval(const Queryable& source, const ExprPtr& expr,
             TimestampMs t) const;
  Value eval(const Queryable& source, const std::string& expr,
             TimestampMs t) const;

  // Evaluates at every step in [start, end]; returns one series per result
  // label set.
  std::vector<Series> eval_range(const Queryable& source, const ExprPtr& expr,
                                 TimestampMs start, TimestampMs end,
                                 int64_t step_ms) const;
  std::vector<Series> eval_range(const Queryable& source,
                                 const std::string& expr, TimestampMs start,
                                 TimestampMs end, int64_t step_ms) const;

 private:
  EngineOptions options_;
};

}  // namespace ceems::tsdb::promql
