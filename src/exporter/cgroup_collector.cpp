#include "exporter/cgroup_collector.h"

#include "common/strutil.h"

namespace ceems::exporter {

using metrics::Labels;
using metrics::MetricFamily;
using metrics::MetricType;

CgroupCollector::CgroupCollector(simfs::FsPtr fs, std::string scope,
                                 std::string child_prefix, std::string manager)
    : fs_(std::move(fs)),
      scope_(std::move(scope)),
      child_prefix_(std::move(child_prefix)),
      manager_(std::move(manager)) {}

std::vector<metrics::MetricFamily> CgroupCollector::collect(
    common::TimestampMs /*now*/) {
  MetricFamily cpu{"ceems_compute_unit_cpu_usage_seconds_total",
                   "Cumulative CPU time of the compute unit by mode.",
                   MetricType::kCounter,
                   {}};
  MetricFamily mem_current{"ceems_compute_unit_memory_current_bytes",
                           "Resident memory of the compute unit.",
                           MetricType::kGauge,
                           {}};
  MetricFamily mem_peak{"ceems_compute_unit_memory_peak_bytes",
                        "Peak resident memory of the compute unit.",
                        MetricType::kGauge,
                        {}};
  MetricFamily mem_limit{"ceems_compute_unit_memory_limit_bytes",
                         "Memory limit of the compute unit (-1 = none).",
                         MetricType::kGauge,
                         {}};
  MetricFamily io_read{"ceems_compute_unit_io_read_bytes_total",
                       "Bytes read by the compute unit.",
                       MetricType::kCounter,
                       {}};
  MetricFamily io_write{"ceems_compute_unit_io_write_bytes_total",
                        "Bytes written by the compute unit.",
                        MetricType::kCounter,
                        {}};
  MetricFamily procs{"ceems_compute_unit_procs",
                     "Processes in the compute unit's cgroup.",
                     MetricType::kGauge,
                     {}};
  MetricFamily units{"ceems_compute_units",
                     "Number of compute units on this node.",
                     MetricType::kGauge,
                     {}};

  int64_t unit_count = 0;
  for (const auto& child : simfs::list_child_cgroups(*fs_, scope_)) {
    if (!common::starts_with(child, child_prefix_)) continue;
    std::string uuid = child.substr(child_prefix_.size());
    auto stats = simfs::read_cgroup(*fs_, scope_ + "/" + child);
    if (!stats) continue;  // job exited between listing and reading
    ++unit_count;
    Labels base{{kUuidLabel, uuid}, {kManagerLabel, manager_}};
    cpu.add(base.with("mode", "user"),
            static_cast<double>(stats->cpu.user_usec) * 1e-6);
    cpu.add(base.with("mode", "system"),
            static_cast<double>(stats->cpu.system_usec) * 1e-6);
    mem_current.add(base, static_cast<double>(stats->memory.current_bytes));
    mem_peak.add(base, static_cast<double>(stats->memory.peak_bytes));
    mem_limit.add(base, static_cast<double>(stats->memory.max_bytes));
    io_read.add(base, static_cast<double>(stats->io.rbytes));
    io_write.add(base, static_cast<double>(stats->io.wbytes));
    procs.add(base, static_cast<double>(stats->procs.size()));
  }
  units.add(Labels{{kManagerLabel, manager_}},
            static_cast<double>(unit_count));

  return {cpu,     mem_current, mem_peak, mem_limit,
          io_read, io_write,    procs,    units};
}

}  // namespace ceems::exporter
