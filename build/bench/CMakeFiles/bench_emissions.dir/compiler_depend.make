# Empty compiler generated dependencies file for bench_emissions.
# This may be replaced when dependencies are built.
