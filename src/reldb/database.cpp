#include "reldb/database.h"

#include <fstream>
#include <mutex>
#include <stdexcept>

#include "common/logging.h"

namespace ceems::reldb {

Database::Database(std::string wal_path) : wal_path_(std::move(wal_path)) {}

std::unique_ptr<Database> Database::open(const std::string& wal_path) {
  auto db = std::make_unique<Database>(wal_path);
  std::ifstream in(wal_path);
  std::string line;
  std::size_t applied = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto entry = decode_wal_entry(line);
    if (!entry) {
      // Torn tail: stop replay at the first corrupt frame.
      CEEMS_LOG_WARN("reldb") << "WAL replay stopped at corrupt frame "
                              << applied;
      break;
    }
    db->apply(*entry, /*log=*/false);
    db->wal_.push_back(*entry);
    db->seq_ = entry->seq;
    ++applied;
  }
  return db;
}

Table& Database::table_ref(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end())
    throw std::invalid_argument("no table '" + name + "'");
  return it->second;
}

const Table& Database::table_ref(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end())
    throw std::invalid_argument("no table '" + name + "'");
  return it->second;
}

void Database::apply(const WalEntry& entry, bool log) {
  switch (entry.op) {
    case WalEntry::Op::kCreateTable:
      tables_.emplace(entry.table, Table(entry.schema));
      break;
    case WalEntry::Op::kUpsert:
      table_ref(entry.table).upsert(entry.row);
      break;
    case WalEntry::Op::kErase:
      table_ref(entry.table).erase(entry.primary_key);
      break;
  }
  if (log && !wal_path_.empty()) {
    std::ofstream out(wal_path_, std::ios::app);
    out << encode_wal_entry(entry) << "\n";
  }
}

void Database::create_table(const std::string& name, Schema schema) {
  std::unique_lock lock(mu_);
  if (tables_.count(name)) return;  // idempotent, helps WAL replay + reopen
  WalEntry entry;
  entry.seq = ++seq_;
  entry.op = WalEntry::Op::kCreateTable;
  entry.table = name;
  entry.schema = std::move(schema);
  apply(entry, /*log=*/true);
  wal_.push_back(std::move(entry));
}

bool Database::has_table(const std::string& name) const {
  std::shared_lock lock(mu_);
  return tables_.count(name) > 0;
}

void Database::upsert(const std::string& table, Row row) {
  std::unique_lock lock(mu_);
  WalEntry entry;
  entry.seq = ++seq_;
  entry.op = WalEntry::Op::kUpsert;
  entry.table = table;
  entry.row = std::move(row);
  apply(entry, /*log=*/true);
  wal_.push_back(std::move(entry));
}

bool Database::erase(const std::string& table, const Value& primary_key) {
  std::unique_lock lock(mu_);
  if (!table_ref(table).get(primary_key)) return false;
  WalEntry entry;
  entry.seq = ++seq_;
  entry.op = WalEntry::Op::kErase;
  entry.table = table;
  entry.primary_key = primary_key;
  apply(entry, /*log=*/true);
  wal_.push_back(std::move(entry));
  return true;
}

std::optional<Row> Database::get(const std::string& table,
                                 const Value& primary_key) const {
  std::shared_lock lock(mu_);
  return table_ref(table).get(primary_key);
}

ResultSet Database::query(const std::string& table, const Query& query) const {
  std::shared_lock lock(mu_);
  return table_ref(table).execute(query);
}

std::size_t Database::table_size(const std::string& table) const {
  std::shared_lock lock(mu_);
  return table_ref(table).size();
}

const Schema* Database::table_schema(const std::string& table) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(table);
  return it == tables_.end() ? nullptr : &it->second.schema();
}

void Database::create_index(const std::string& table,
                            const std::string& column) {
  std::unique_lock lock(mu_);
  table_ref(table).create_index(column);
}

void Database::backup_to(const std::string& path) const {
  std::shared_lock lock(mu_);
  std::ofstream out(path, std::ios::trunc);
  // A backup is a compacted WAL: schema then current rows, renumbered.
  uint64_t seq = 0;
  for (const auto& [name, table] : tables_) {
    WalEntry create;
    create.seq = ++seq;
    create.op = WalEntry::Op::kCreateTable;
    create.table = name;
    create.schema = table.schema();
    out << encode_wal_entry(create) << "\n";
  }
  for (const auto& [name, table] : tables_) {
    table.for_each([&](const Row& row) {
      WalEntry entry;
      entry.seq = ++seq;
      entry.op = WalEntry::Op::kUpsert;
      entry.table = name;
      entry.row = row;
      out << encode_wal_entry(entry) << "\n";
    });
  }
}

uint64_t Database::last_seq() const {
  std::shared_lock lock(mu_);
  return seq_;
}

std::vector<WalEntry> Database::entries_since(uint64_t after) const {
  std::shared_lock lock(mu_);
  std::vector<WalEntry> out;
  for (const auto& entry : wal_) {
    if (entry.seq > after) out.push_back(entry);
  }
  return out;
}

std::size_t Replicator::sync() {
  std::size_t shipped = 0;
  for (const auto& entry : primary_.entries_since(shipped_)) {
    switch (entry.op) {
      case WalEntry::Op::kCreateTable:
        replica_.create_table(entry.table, entry.schema);
        break;
      case WalEntry::Op::kUpsert:
        replica_.upsert(entry.table, entry.row);
        break;
      case WalEntry::Op::kErase:
        replica_.erase(entry.table, entry.primary_key);
        break;
    }
    shipped_ = entry.seq;
    ++shipped;
  }
  return shipped;
}

}  // namespace ceems::reldb
