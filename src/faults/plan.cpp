#include "faults/plan.h"

#include "common/rng.h"

namespace ceems::faults {

namespace {

uint64_t fnv1a64(std::string_view text) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (char c : text) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

// Uniform [0,1) from (seed, stream hash, index, salt) — one SplitMix64
// draw, so a decision never depends on other streams.
double draw(uint64_t seed, uint64_t stream, uint64_t index, uint64_t salt) {
  common::Rng rng(seed ^ (stream * 0x9E3779B97F4A7C15ULL) ^
                  (index * 0xD1B54A32D192ED03ULL) ^ salt);
  return rng.next_double();
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kConnectTimeout: return "connect_timeout";
    case FaultKind::kIoTimeout: return "io_timeout";
    case FaultKind::kHttpStatus: return "http_status";
    case FaultKind::kSlowResponse: return "slow_response";
    case FaultKind::kTruncateBody: return "truncate_body";
    case FaultKind::kUnavailable: return "unavailable";
    case FaultKind::kReadError: return "read_error";
  }
  return "unknown";
}

FaultPlan::FaultPlan(uint64_t seed) : seed_(seed) {}

void FaultPlan::set_clock(common::ClockPtr clock) {
  std::lock_guard lock(mu_);
  clock_ = std::move(clock);
}

void FaultPlan::configure(const std::string& site, SiteFaults faults) {
  std::lock_guard lock(mu_);
  sites_[site] = faults;
}

void FaultPlan::clear(const std::string& site) {
  std::lock_guard lock(mu_);
  sites_.erase(site);
}

FaultDecision FaultPlan::decide(std::string_view site, std::string_view key) {
  std::lock_guard lock(mu_);
  auto site_it = sites_.find(site);
  if (site_it == sites_.end()) return {};
  const SiteFaults& faults = site_it->second;

  std::string stream_key;
  stream_key.reserve(site.size() + key.size() + 1);
  stream_key.append(site).push_back('\x1f');
  stream_key.append(key);
  uint64_t stream_hash = fnv1a64(stream_key);

  auto [stream_it, inserted] = streams_.try_emplace(std::move(stream_key));
  Stream& stream = stream_it->second;
  if (inserted && faults.flap > 0) {
    stream.flapper = draw(seed_, stream_hash, 0, 0xF1A9) < faults.flap;
  }
  uint64_t n = stream.counter++;
  ++stats_.decisions;

  auto record = [&](FaultDecision decision) {
    ++stats_.faults;
    ++stats_.by_kind[fault_kind_name(decision.kind)];
    return decision;
  };

  if (stream.flapper) {
    bool dark;
    if (clock_) {
      // Key-phased square wave over simulated time, so flappers don't all
      // go dark in lockstep.
      int64_t phase = static_cast<int64_t>(stream_hash % static_cast<uint64_t>(
                                               faults.flap_period_ms));
      int64_t t = clock_->now_ms() + phase;
      dark = t % faults.flap_period_ms < faults.flap_down_ms;
    } else {
      dark = static_cast<int64_t>(n % static_cast<uint64_t>(
                                      faults.flap_period)) < faults.flap_down;
    }
    if (dark) return record({FaultKind::kUnavailable});
    return {};
  }

  double u = draw(seed_, stream_hash, n + 1, 0xDEC1DE);
  auto hit = [&](double p) {
    if (u < p) return true;
    u -= p;
    return false;
  };
  if (hit(faults.connect_timeout)) return record({FaultKind::kConnectTimeout});
  if (hit(faults.io_timeout)) return record({FaultKind::kIoTimeout});
  if (hit(faults.http_5xx)) {
    FaultDecision decision{FaultKind::kHttpStatus};
    static constexpr int kStatuses[] = {500, 502, 503};
    decision.http_status =
        kStatuses[static_cast<int>(draw(seed_, stream_hash, n + 1, 0x5555) * 3)
                      % 3];
    return record(decision);
  }
  if (hit(faults.http_429)) {
    FaultDecision decision{FaultKind::kHttpStatus};
    decision.http_status = 429;
    return record(decision);
  }
  if (hit(faults.slow)) {
    FaultDecision decision{FaultKind::kSlowResponse};
    decision.delay_ms = faults.slow_delay_ms;
    return record(decision);
  }
  if (hit(faults.truncate)) {
    FaultDecision decision{FaultKind::kTruncateBody};
    decision.keep_fraction = draw(seed_, stream_hash, n + 1, 0x7234) * 0.9;
    return record(decision);
  }
  if (hit(faults.unavailable)) return record({FaultKind::kUnavailable});
  if (hit(faults.read_error)) return record({FaultKind::kReadError});
  return {};
}

FaultPlan::Stats FaultPlan::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace ceems::faults
