// Hard invariants for soak runs (DESIGN.md §11). The checker is fed by
// the SoakRunner at every checkpoint and once more after the recovery
// tail; every breach is recorded as a human-readable violation carrying
// the simulated timestamp, so a red soak run names exactly which
// invariant broke and when. All checks are functions of deterministic
// state (approx_bytes, sample timestamps, circuit states, points-scanned
// counters), never wall-clock time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/stack.h"
#include "soak/scenario.h"

namespace ceems::soak {

class InvariantChecker {
 public:
  InvariantChecker(const Scenario& scenario, int node_count,
                   std::size_t target_count);

  // Continuous invariants, every checkpoint: memory ceiling, bounded
  // ingest lag, full `up` coverage (every target has an up series — a
  // flapping target reports up==0, it never vanishes).
  void at_checkpoint(core::CeemsStack& stack, common::TimestampMs now);

  // Per-canonical-query deterministic work (points scanned); the p99
  // budget is asserted in finish().
  void record_query_points(uint64_t points);

  // One-shot, shortly after a cardinality storm ends: the storm series
  // must be invisible to instant queries (stale-marked), while the raw
  // store still holds them — proof the markers, not retention, ended
  // them.
  void after_cardinality_storm(core::CeemsStack& stack,
                               common::TimestampMs now);

  // Recovery invariants, after the clean tail: every up series back to 1,
  // emissions factors fresh again, every LB circuit closed (when the LB
  // ran), and no staleness-marker leak on live targets.
  void at_recovery_end(core::CeemsStack& stack, common::TimestampMs now,
                       bool lb_running);

  // Evaluates end-of-run budgets (query p99). Returns true when no
  // invariant was violated anywhere in the run.
  bool finish();

  const std::vector<std::string>& violations() const { return violations_; }

  // Deterministic observables, tracked across checkpoints.
  std::size_t peak_bytes() const { return peak_bytes_; }
  std::size_t max_series() const { return max_series_; }
  uint64_t query_points_p99() const { return query_points_p99_; }
  uint64_t queries_run() const { return query_points_.size(); }

 private:
  void violate(common::TimestampMs now, const std::string& what);

  Scenario scenario_;
  int node_count_;
  std::size_t target_count_;
  std::size_t bytes_ceiling_;
  int64_t ingest_lag_budget_ms_;

  std::vector<std::string> violations_;
  std::vector<uint64_t> query_points_;
  std::size_t peak_bytes_ = 0;
  std::size_t max_series_ = 0;
  uint64_t query_points_p99_ = 0;
};

}  // namespace ceems::soak
