#include "metrics/labels.h"

#include <algorithm>
#include <regex>

#include "metrics/regex_cache.h"

namespace ceems::metrics {

Labels::Labels(std::initializer_list<Pair> pairs) : pairs_(pairs) {
  normalize();
}

Labels::Labels(std::vector<Pair> pairs) : pairs_(std::move(pairs)) {
  normalize();
}

void Labels::normalize() {
  std::sort(pairs_.begin(), pairs_.end());
  // Later duplicates win (matches with() semantics); drop earlier ones.
  auto last = std::unique(
      pairs_.rbegin(), pairs_.rend(),
      [](const Pair& a, const Pair& b) { return a.first == b.first; });
  pairs_.erase(pairs_.begin(), last.base());
}

std::optional<std::string_view> Labels::get(std::string_view name) const {
  auto it = std::lower_bound(
      pairs_.begin(), pairs_.end(), name,
      [](const Pair& pair, std::string_view n) { return pair.first < n; });
  if (it != pairs_.end() && it->first == name) return it->second;
  return std::nullopt;
}

Labels Labels::with(std::string_view name, std::string_view value) const {
  std::vector<Pair> pairs = pairs_;
  auto it = std::find_if(pairs.begin(), pairs.end(),
                         [&](const Pair& p) { return p.first == name; });
  if (it != pairs.end()) {
    it->second = std::string(value);
  } else {
    pairs.emplace_back(std::string(name), std::string(value));
  }
  return Labels(std::move(pairs));
}

Labels Labels::without(std::string_view name) const {
  std::vector<Pair> pairs;
  pairs.reserve(pairs_.size());
  for (const auto& pair : pairs_) {
    if (pair.first != name) pairs.push_back(pair);
  }
  return Labels(std::move(pairs));
}

Labels Labels::keep_only(const std::vector<std::string>& names) const {
  std::vector<Pair> pairs;
  for (const auto& pair : pairs_) {
    if (std::find(names.begin(), names.end(), pair.first) != names.end())
      pairs.push_back(pair);
  }
  return Labels(std::move(pairs));
}

Labels Labels::drop(const std::vector<std::string>& names) const {
  std::vector<Pair> pairs;
  for (const auto& pair : pairs_) {
    if (std::find(names.begin(), names.end(), pair.first) == names.end())
      pairs.push_back(pair);
  }
  return Labels(std::move(pairs));
}

std::string_view Labels::name() const {
  auto value = get(kMetricNameLabel);
  return value ? *value : std::string_view{};
}

uint64_t Labels::fingerprint() const {
  // FNV-1a with separators so {"ab","c"} != {"a","bc"}.
  uint64_t hash = 0xcbf29ce484222325ULL;
  auto mix = [&hash](std::string_view text) {
    for (char c : text) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 0x100000001b3ULL;
    }
    hash ^= 0xff;
    hash *= 0x100000001b3ULL;
  };
  for (const auto& [name, value] : pairs_) {
    mix(name);
    mix(value);
  }
  return hash;
}

std::string Labels::to_string() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : pairs_) {
    if (!first) out += ",";
    first = false;
    out += name;
    out += "=\"";
    out += value;
    out += "\"";
  }
  out += "}";
  return out;
}

bool LabelMatcher::matches(const Labels& labels) const {
  auto actual = labels.get(name);
  std::string_view value_view = actual.value_or(std::string_view{});
  switch (op) {
    case Op::kEq:
      return value_view == value;
    case Op::kNe:
      return value_view != value;
    case Op::kRegexMatch:
    case Op::kRegexNoMatch: {
      // PromQL regexes are fully anchored; the compile is cached per
      // pattern so per-series matching doesn't pay it again.
      auto re = compiled_anchored_regex(value);
      bool match = std::regex_search(std::string(value_view), *re);
      return op == Op::kRegexMatch ? match : !match;
    }
  }
  return false;
}

}  // namespace ceems::metrics
