#include <gtest/gtest.h>

#include "tsdb/longterm.h"
#include "tsdb/promql_eval.h"

namespace ceems::tsdb {
namespace {

using common::kMillisPerHour;
using common::kMillisPerMinute;

Labels named(const std::string& name, const std::string& host) {
  return Labels{{"hostname", host}}.with_name(name);
}

TEST(LongTerm, SyncPullsOnlyNewSamples) {
  TimeSeriesStore hot;
  LongTermStore lt;
  hot.append(named("m", "n1"), 1000, 1);
  hot.append(named("m", "n1"), 2000, 2);
  EXPECT_EQ(lt.sync_from(hot), 2u);
  hot.append(named("m", "n1"), 3000, 3);
  EXPECT_EQ(lt.sync_from(hot), 1u);  // incremental
  EXPECT_EQ(lt.sync_from(hot), 0u);  // idempotent

  auto series = lt.select({}, 0, 10000);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].samples().size(), 3u);
}

TEST(LongTerm, HotRetentionSurvivesInLongTerm) {
  // The hot TSDB can purge aggressively once data is replicated (Fig. 1).
  TimeSeriesStore hot;
  LongTermStore lt;
  for (int i = 0; i < 10; ++i) {
    hot.append(named("m", "n1"), i * 1000, i);
  }
  lt.sync_from(hot);
  hot.purge_before(8000);
  EXPECT_EQ(hot.stats().num_samples, 2u);
  EXPECT_EQ(lt.select({}, 0, 20000)[0].samples().size(), 10u);
}

TEST(LongTerm, CompactionDownsamplesOldData) {
  LongTermConfig config;
  config.downsample_after_ms = kMillisPerHour;
  config.resolution_ms = 5 * kMillisPerMinute;
  LongTermStore lt(config);
  TimeSeriesStore hot;
  // 2 h of 30 s samples.
  for (int i = 0; i < 240; ++i) {
    hot.append(named("m", "n1"), i * 30000, i);
  }
  lt.sync_from(hot);
  lt.compact(2 * kMillisPerHour);

  // First hour: 12 downsampled points (one per 5 min); second hour: raw.
  auto series = lt.select({}, 0, 2 * kMillisPerHour);
  ASSERT_EQ(series.size(), 1u);
  std::size_t old_points = 0;
  for (const auto& sample : series[0].samples()) {
    if (sample.t < kMillisPerHour) ++old_points;
  }
  EXPECT_EQ(old_points, 12u);
  EXPECT_EQ(series[0].samples().size(), 12u + 120u);
  // Last-per-bucket keeps counter semantics: value at bucket end.
  EXPECT_DOUBLE_EQ(series[0].samples()[0].v, 9);  // t=270000, sample #9
}

TEST(LongTerm, CompactionPreservesCounterIncrease) {
  LongTermConfig config;
  config.downsample_after_ms = kMillisPerHour;
  config.resolution_ms = 5 * kMillisPerMinute;
  LongTermStore lt(config);
  TimeSeriesStore hot;
  for (int i = 0; i < 240; ++i) {
    hot.append(named("joules", "n1"), i * 30000, i * 300.0);  // 10 W
  }
  lt.sync_from(hot);

  promql::Engine engine;
  auto before = engine.eval(lt, "increase(joules[1h])", 2 * kMillisPerHour);
  lt.compact(2 * kMillisPerHour);
  auto after = engine.eval(lt, "increase(joules[1h])", 2 * kMillisPerHour);
  ASSERT_EQ(before.vector.size(), 1u);
  ASSERT_EQ(after.vector.size(), 1u);
  EXPECT_NEAR(before.vector[0].value, after.vector[0].value, 1e-9);

  // Increase over the downsampled epoch is also intact (coarser grid, same
  // cumulative counter).
  // 10 J/s counter; the 5-min grid trims the observed span to ~50.5 min.
  auto old_epoch = engine.eval(lt, "increase(joules[55m])", kMillisPerHour);
  ASSERT_EQ(old_epoch.vector.size(), 1u);
  EXPECT_GT(old_epoch.vector[0].value, 28000.0);
  EXPECT_LT(old_epoch.vector[0].value, 33000.0);
}

TEST(LongTerm, RetentionDropsAncientData) {
  LongTermConfig config;
  config.downsample_after_ms = kMillisPerHour;
  config.resolution_ms = 5 * kMillisPerMinute;
  config.retention_ms = 24 * kMillisPerHour;
  LongTermStore lt(config);
  TimeSeriesStore hot;
  hot.append(named("m", "n1"), 0, 1);
  hot.append(named("m", "n1"), 30 * kMillisPerHour, 2);
  lt.sync_from(hot);
  lt.compact(30 * kMillisPerHour);
  auto series = lt.select({}, 0, 40 * kMillisPerHour);
  ASSERT_EQ(series.size(), 1u);
  // Sample at t=0 is beyond 24 h retention at t=30 h.
  EXPECT_EQ(series[0].samples().size(), 1u);
  EXPECT_EQ(series[0].samples()[0].t, 30 * kMillisPerHour);
}

TEST(LongTerm, SelectMergesAcrossEpochBoundary) {
  LongTermConfig config;
  config.downsample_after_ms = kMillisPerHour;
  config.resolution_ms = 10 * kMillisPerMinute;
  LongTermStore lt(config);
  TimeSeriesStore hot;
  for (int i = 0; i < 240; ++i) {
    hot.append(named("m", "n1"), i * 30000, i);
  }
  lt.sync_from(hot);
  lt.compact(2 * kMillisPerHour);
  auto series = lt.select({}, 0, 3 * kMillisPerHour);
  ASSERT_EQ(series.size(), 1u);
  // Strictly increasing timestamps across the merge.
  for (std::size_t i = 1; i < series[0].samples().size(); ++i) {
    EXPECT_GT(series[0].samples()[i].t, series[0].samples()[i - 1].t);
  }
}

TEST(LongTerm, StatsReflectBothTiers) {
  LongTermConfig config;
  config.downsample_after_ms = kMillisPerHour;
  LongTermStore lt(config);
  TimeSeriesStore hot;
  for (int i = 0; i < 240; ++i) {
    hot.append(named("m", "n1"), i * 30000, i);
  }
  lt.sync_from(hot);
  StorageStats before = lt.stats();
  lt.compact(2 * kMillisPerHour);
  StorageStats after = lt.stats();
  EXPECT_EQ(before.num_samples, 240u);
  EXPECT_LT(after.num_samples, before.num_samples);  // downsampling shrank it
  EXPECT_GT(lt.downsampled_stats().num_samples, 0u);
}

}  // namespace
}  // namespace ceems::tsdb
