# Empty dependencies file for ceems_tsdb.
# This may be replaced when dependencies are built.
