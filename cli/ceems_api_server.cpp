// ceems_api_server — standalone CEEMS API server over a WAL-backed units
// database. Serves the JSON API (units, usage, verify) from an existing
// database file; useful for inspecting a DB produced by ceems_stack or by
// the examples (Database::backup_to / db_path config).
//
//   ceems_api_server --db PATH [--port N] [--admins a,b]
#include <csignal>
#include <cstdio>
#include <thread>

#include "apiserver/api_server.h"
#include "cli/flags.h"
#include "common/logging.h"

using namespace ceems;

namespace {
volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  cli::Flags flags(argc, argv, "--db PATH [--port N] [--admins a,b]");
  common::set_log_level(common::LogLevel::kInfo);

  std::string db_path = flags.get("db");
  if (db_path.empty()) {
    flags.print_usage();
    return 1;
  }
  auto db = reldb::Database::open(db_path);
  apiserver::create_ceems_tables(*db);
  std::fprintf(stderr, "opened %s: %zu units\n", db_path.c_str(),
               db->table_size(apiserver::kUnitsTable));

  apiserver::ApiServerConfig config;
  config.http.port = static_cast<uint16_t>(flags.get_int("port", 9020));
  for (const auto& admin : common::split(flags.get("admins", "admin"), ',')) {
    if (!admin.empty()) config.admin_users.insert(admin);
  }

  auto clock = common::make_real_clock();
  apiserver::ApiServer server(config, *db, clock);
  server.start();
  std::fprintf(stderr, "listening on %s\n", server.base_url().c_str());

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (!g_stop) std::this_thread::sleep_for(std::chrono::seconds(1));
  server.stop();
  return 0;
}
