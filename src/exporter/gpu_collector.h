// GPU telemetry collector (§II-A.d). CEEMS itself does not read GPUs; it
// relies on the NVIDIA DCGM exporter or the AMD SMI exporter deployed
// alongside. This collector reproduces both exporters' metric names from
// the simulated GpuBank so the recording rules look exactly like the ones
// written against the production exporters:
//   NVIDIA: DCGM_FI_DEV_POWER_USAGE{gpu,UUID,modelName},
//           DCGM_FI_DEV_GPU_UTIL, DCGM_FI_DEV_FB_USED,
//           DCGM_FI_DEV_TOTAL_ENERGY_CONSUMPTION (mJ counter)
//   AMD:    amd_gpu_power{gpu_id} (µW), amd_gpu_use_percent{gpu_id}
#pragma once

#include "exporter/collector.h"
#include "node/gpu.h"

namespace ceems::exporter {

class GpuCollector final : public Collector {
 public:
  explicit GpuCollector(const node::GpuBank& bank) : bank_(bank) {}

  std::string name() const override { return "gpu"; }
  std::vector<metrics::MetricFamily> collect(common::TimestampMs now) override;

 private:
  const node::GpuBank& bank_;
};

}  // namespace ceems::exporter
