// Instrument registry for a process's own metrics (the exporter's
// self-telemetry: scrape counters, request durations, build info). Modeled
// after prometheus/client_golang: named families with per-labelset child
// instruments, collected into MetricFamily snapshots at scrape time.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "metrics/model.h"

namespace ceems::metrics {

// Monotonic counter. Thread-safe.
class Counter {
 public:
  void inc(double delta = 1.0);
  double value() const;

 private:
  mutable std::mutex mu_;
  double value_ = 0;
};

// Settable gauge. Thread-safe.
class Gauge {
 public:
  void set(double value);
  void add(double delta);
  double value() const;

 private:
  mutable std::mutex mu_;
  double value_ = 0;
};

class Registry {
 public:
  // Returns the child instrument for (name, labels), creating family and
  // child on first use. The returned pointers stay valid for the lifetime
  // of the registry.
  std::shared_ptr<Counter> counter(const std::string& name,
                                   const std::string& help,
                                   const Labels& labels = {});
  std::shared_ptr<Gauge> gauge(const std::string& name,
                               const std::string& help,
                               const Labels& labels = {});

  // Snapshot of all instruments as metric families.
  std::vector<MetricFamily> collect() const;

 private:
  // Children are keyed by interned label sets: the incoming Labels are
  // resolved to symbol ids once per call, so repeated lookups of the same
  // child hash a fingerprint instead of re-hashing label strings, and the
  // registry holds one copy of each label string process-wide.
  struct Family {
    std::string help;
    MetricType type;
    std::unordered_map<InternedLabels, std::shared_ptr<Counter>,
                       InternedLabelsHash>
        counters;
    std::unordered_map<InternedLabels, std::shared_ptr<Gauge>,
                       InternedLabelsHash>
        gauges;
  };
  mutable std::mutex mu_;
  std::unordered_map<std::string, Family> families_;
};

}  // namespace ceems::metrics
