// In-memory pseudo-filesystem standing in for /sys/fs/cgroup, /proc and
// /sys on a compute node. The node simulator writes accounting files into
// it with exactly the kernel's text formats; the CEEMS exporter collectors
// read them back the same way they would read the real files. Keeping the
// file layer real (paths + text contents, not structs) is what makes the
// collectors faithful to the paper: they parse cpu.stat, memory.current and
// /proc/stat exactly as on a live node.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "faults/fault.h"

namespace ceems::simfs {

// Read-side filesystem abstraction. Collectors only ever read, so they
// take an Fs: PseudoFs serves the simulator, RealFs (real_fs.h) serves an
// actual Linux host — which is how the CLI exporter can export genuine
// /proc and cgroup metrics of the machine it runs on.
class Fs {
 public:
  virtual ~Fs() = default;
  virtual std::optional<std::string> read(const std::string& path) const = 0;
  virtual bool exists(const std::string& path) const = 0;
  virtual bool is_dir(const std::string& path) const = 0;
  virtual std::vector<std::string> list_dir(const std::string& path) const = 0;
};

using FsPtr = std::shared_ptr<const Fs>;

class PseudoFs final : public Fs {
 public:
  // Writes (creates or replaces) a file. Parent directories are implicit.
  void write(const std::string& path, std::string content);

  // Registers a dynamic file whose content is produced on every read —
  // mirrors how kernel pseudo-files are generated on open().
  void write_dynamic(const std::string& path,
                     std::function<std::string()> generator);

  // Returns file content, or nullopt if the path does not exist or is a
  // directory.
  std::optional<std::string> read(const std::string& path) const override;

  bool exists(const std::string& path) const override;
  bool is_dir(const std::string& path) const override;

  // Immediate children names (files and subdirectories) of a directory.
  std::vector<std::string> list_dir(const std::string& path) const override;

  // Removes a file or directory subtree (cgroup removal on job exit).
  void remove(const std::string& path);

  std::size_t file_count() const;

  // Chaos injection on reads (site "simfs.read", key = normalized path):
  // any fault decision makes read() return nullopt, the same signal a
  // vanished kernel pseudo-file produces, so collectors exercise their
  // missing-file paths. Install before handing the fs to collectors.
  void set_fault_hook(faults::FaultHook hook);

 private:
  static std::string normalize(const std::string& path);

  mutable std::shared_mutex mu_;
  // Sorted map of normalized absolute path -> content generator. A path is
  // a directory iff some other path has it as a proper prefix component.
  std::map<std::string, std::function<std::string()>> files_;
  faults::FaultHook fault_hook_;
};

using PseudoFsPtr = std::shared_ptr<PseudoFs>;

// Parses "key value" lines (cpu.stat, memory.stat format) into a map.
std::map<std::string, int64_t> parse_flat_keyed(const std::string& content);

}  // namespace ceems::simfs
