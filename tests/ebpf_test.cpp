// Tests for the §IV-roadmap features: eBPF-style network/perf accounting,
// the collector exporting it, and the refined network-share power rule.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rules_library.h"
#include "exporter/ebpf_collector.h"
#include "node/node_sim.h"
#include "tsdb/rules.h"

namespace ceems {
namespace {

using common::make_sim_clock;

node::WorkloadPlacement placement_for(int64_t id, int cpus) {
  node::WorkloadPlacement placement;
  placement.job_id = id;
  placement.user = "u";
  placement.alloc_cpus = cpus;
  placement.memory_limit_bytes = 8LL << 30;
  return placement;
}

TEST(Ebpf, NodeSimAccumulatesNetworkAndPerfCounters) {
  auto clock = make_sim_clock(0);
  node::NodeSim sim(node::make_intel_cpu_node("n1"), clock, 1);
  node::WorkloadBehavior behavior;
  behavior.cpu_util_mean = 1.0;
  behavior.cpu_util_jitter = 0;
  behavior.net_tx_bytes_per_sec = 100e6;
  behavior.net_rx_bytes_per_sec = 50e6;
  behavior.instructions_per_cpu_sec = 2e9;
  behavior.flop_fraction = 0.25;
  behavior.cache_miss_rate = 0.01;
  sim.add_workload(placement_for(1, 10), behavior);
  for (int i = 0; i < 10; ++i) sim.step(1000);

  auto stats = sim.ebpf_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_NEAR(static_cast<double>(stats[0].net_tx_bytes), 1e9, 1e7);
  EXPECT_NEAR(static_cast<double>(stats[0].net_rx_bytes), 5e8, 1e7);
  EXPECT_GT(stats[0].net_tx_packets, stats[0].net_rx_packets);
  // 10 cpus × 10 s × 2e9 instr/s = 2e11 instructions, 25% FLOPs.
  EXPECT_NEAR(static_cast<double>(stats[0].instructions), 2e11, 4e9);
  EXPECT_NEAR(static_cast<double>(stats[0].flops),
              static_cast<double>(stats[0].instructions) * 0.25,
              static_cast<double>(stats[0].instructions) * 0.01);
  EXPECT_NEAR(static_cast<double>(stats[0].cache_misses),
              static_cast<double>(stats[0].instructions) * 0.01,
              static_cast<double>(stats[0].instructions) * 0.001);
}

TEST(Ebpf, CountersMonotoneAndPerJob) {
  auto clock = make_sim_clock(0);
  node::NodeSim sim(node::make_intel_cpu_node("n1"), clock, 1);
  node::WorkloadBehavior chatty;
  chatty.net_tx_bytes_per_sec = 10e6;
  node::WorkloadBehavior silent;  // no network
  sim.add_workload(placement_for(1, 4), chatty);
  sim.add_workload(placement_for(2, 4), silent);

  int64_t last_tx = 0;
  for (int i = 0; i < 5; ++i) {
    sim.step(1000);
    for (const auto& stats : sim.ebpf_stats()) {
      if (stats.job_id == 1) {
        EXPECT_GT(stats.net_tx_bytes, last_tx);
        last_tx = stats.net_tx_bytes;
      } else {
        EXPECT_EQ(stats.net_tx_bytes, 0);
      }
    }
  }
}

TEST(Ebpf, CollectorExportsAllFamilies) {
  auto clock = make_sim_clock(0);
  auto sim = std::make_shared<node::NodeSim>(
      node::make_intel_cpu_node("n1"), clock, 1);
  node::WorkloadBehavior behavior;
  behavior.net_tx_bytes_per_sec = 1e6;
  sim->add_workload(placement_for(7, 4), behavior);
  sim->step(2000);

  exporter::EbpfCollector collector([sim] { return sim->ebpf_stats(); });
  auto families = collector.collect(0);
  std::set<std::string> names;
  for (const auto& family : families) names.insert(family.name);
  EXPECT_TRUE(names.count("ceems_compute_unit_network_tx_bytes_total"));
  EXPECT_TRUE(names.count("ceems_compute_unit_network_rx_bytes_total"));
  EXPECT_TRUE(names.count("ceems_compute_unit_perf_instructions_total"));
  EXPECT_TRUE(names.count("ceems_compute_unit_perf_flops_total"));
  EXPECT_TRUE(names.count("ceems_compute_unit_perf_cache_misses_total"));
  EXPECT_TRUE(names.count("node_network_transmit_bytes_total"));
  for (const auto& family : families) {
    if (family.name == "ceems_compute_unit_network_tx_bytes_total") {
      ASSERT_EQ(family.metrics.size(), 1u);
      EXPECT_EQ(*family.metrics[0].labels.get("uuid"), "7");
      EXPECT_NEAR(family.metrics[0].value, 2e6, 1e4);
    }
  }
}

// The refined network rule: traffic share decides the 10% budget instead
// of the equal split.
TEST(Ebpf, NetworkShareRuleBeatsEqualSplitForSkewedTraffic) {
  auto store = std::make_shared<tsdb::TimeSeriesStore>();
  tsdb::RuleEngine engine(store);
  for (auto& group : core::jean_zay_rule_groups()) {
    engine.add_group(std::move(group));
  }
  for (auto& group : core::ebpf_network_rules()) {
    engine.add_group(std::move(group));
  }

  auto put = [&](const std::string& name,
                 std::initializer_list<metrics::Labels::Pair> pairs,
                 common::TimestampMs t, double v) {
    store->append(metrics::Labels(pairs).with_name(name), t, v);
  };
  metrics::Labels::Pair host{"hostname", "n1"};
  metrics::Labels::Pair group{"nodegroup", "amd-cpu"};
  for (int i = 0; i <= 4; ++i) {
    common::TimestampMs t = i * 30000;
    double sec = i * 30.0;
    put("ceems_ipmi_dcmi_current_watts", {host, group}, t, 500);
    put("ceems_rapl_package_joules_total", {host, group}, t, sec * 300);
    put("node_cpu_seconds_total", {host, group, {"mode", "user"}}, t,
        sec * 10);
    put("node_cpu_seconds_total", {host, group, {"mode", "idle"}}, t,
        sec * 100);
    put("node_memory_MemTotal_bytes", {host, group}, t, 100e9);
    put("node_memory_MemAvailable_bytes", {host, group}, t, 50e9);
    put("ceems_compute_units", {host, group}, t, 2);
    // Two jobs with identical CPU but wildly different network use.
    for (const char* uuid : {"1", "2"}) {
      put("ceems_compute_unit_cpu_usage_seconds_total",
          {host, group, {"uuid", uuid}, {"mode", "user"}}, t, sec * 5);
      put("ceems_compute_unit_memory_current_bytes",
          {host, group, {"uuid", uuid}}, t, 25e9);
    }
    put("ceems_compute_unit_network_tx_bytes_total",
        {host, group, {"uuid", "1"}}, t, sec * 90e6);  // MPI-heavy
    put("ceems_compute_unit_network_rx_bytes_total",
        {host, group, {"uuid", "1"}}, t, sec * 90e6);
    put("ceems_compute_unit_network_tx_bytes_total",
        {host, group, {"uuid", "2"}}, t, sec * 1e6);  // almost silent
    put("ceems_compute_unit_network_rx_bytes_total",
        {host, group, {"uuid", "2"}}, t, sec * 1e6);
  }
  auto stats = engine.evaluate_all(120000);
  EXPECT_EQ(stats.rule_failures, 0u);

  auto series = [&](const std::string& name, const std::string& uuid) {
    auto result = store->select(
        {{"__name__", metrics::LabelMatcher::Op::kEq, name},
         {"uuid", metrics::LabelMatcher::Op::kEq, uuid}},
        120000, 120000);
    return result.empty() ? std::nan("") : result[0].samples().back().v;
  };
  // Equal split gives both jobs 25 W of network budget (0.1×500/2);
  double equal_1 = series("ceems_job_power_watts", "1") -
                   series("ceems_job_power_watts_netshare", "1");
  double equal_2 = series("ceems_job_power_watts", "2") -
                   series("ceems_job_power_watts_netshare", "2");
  // the refined rule gives nearly the whole 50 W to the MPI-heavy job.
  double net_1 = series("ceems_job_net_power_watts", "1");
  double net_2 = series("ceems_job_net_power_watts", "2");
  EXPECT_NEAR(net_1 + net_2, 50.0, 0.5);
  EXPECT_GT(net_1, 48.0);
  EXPECT_LT(net_2, 2.0);
  // And the difference between the two full estimates is exactly the
  // reallocation of the network term.
  EXPECT_NEAR(equal_1, 25.0 - net_1, 0.5);
  EXPECT_NEAR(equal_2, 25.0 - net_2, 0.5);
}

}  // namespace
}  // namespace ceems
