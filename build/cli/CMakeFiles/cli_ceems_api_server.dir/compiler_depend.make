# Empty compiler generated dependencies file for cli_ceems_api_server.
# This may be replaced when dependencies are built.
