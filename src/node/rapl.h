// RAPL (Running Average Power Limit) counter simulation, exposed through
// the powercap sysfs layout the CEEMS exporter reads on real nodes:
//
//   /sys/class/powercap/intel-rapl:0/name                "package-0"
//   /sys/class/powercap/intel-rapl:0/energy_uj           cumulative µJ
//   /sys/class/powercap/intel-rapl:0/max_energy_range_uj wrap point
//   /sys/class/powercap/intel-rapl:0:0/name              "dram"
//
// Key semantics preserved: counters are cumulative microjoules, wrap at
// max_energy_range_uj (the kernel's 32-bit energy-status register scaled by
// the energy unit), and exist per package — with the DRAM subdomain only on
// Intel parts (§III-A of the paper).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "node/spec.h"
#include "simfs/pseudo_fs.h"

namespace ceems::node {

class RaplDomain {
 public:
  RaplDomain(std::string name, int64_t max_energy_range_uj)
      : name_(std::move(name)), max_range_uj_(max_energy_range_uj) {}

  const std::string& name() const { return name_; }
  int64_t max_energy_range_uj() const { return max_range_uj_; }

  // Accumulates energy, wrapping as the hardware register does.
  void add_energy_uj(int64_t delta_uj);
  int64_t energy_uj() const { return energy_uj_; }

  // Lifetime energy without wrap (simulation ground truth only).
  double lifetime_joules() const { return lifetime_uj_ * 1e-6; }

 private:
  std::string name_;
  int64_t max_range_uj_;
  int64_t energy_uj_ = 0;
  double lifetime_uj_ = 0;
};

// All RAPL domains of one node, materialized into the pseudo-filesystem.
class RaplBank {
 public:
  RaplBank(simfs::PseudoFsPtr fs, const NodeSpec& spec);

  // Splits `pkg_w`/`dram_w` evenly across sockets and integrates over
  // `dt_ms`. DRAM domains exist only when the spec has them.
  void integrate(double pkg_w, double dram_w, int64_t dt_ms);

  const std::vector<RaplDomain>& packages() const { return packages_; }
  const std::vector<RaplDomain>& dram() const { return dram_; }

 private:
  void publish();

  simfs::PseudoFsPtr fs_;
  bool has_dram_;
  std::vector<RaplDomain> packages_;
  std::vector<RaplDomain> dram_;
};

// Reader used by the exporter's RAPL collector: walks the powercap tree.
struct RaplReading {
  std::string domain;  // "package-0", "dram", ...
  int index = 0;       // socket index
  int64_t energy_uj = 0;
  int64_t max_energy_range_uj = 0;
};
std::vector<RaplReading> read_rapl(const simfs::Fs& fs);

// Rate helper handling one counter wrap between two readings.
double rapl_joules_between(int64_t before_uj, int64_t after_uj,
                           int64_t max_range_uj);

}  // namespace ceems::node
