# Empty compiler generated dependencies file for ceems_core.
# This may be replaced when dependencies are built.
