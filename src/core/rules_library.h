// The canonical recording rules of the Jean-Zay deployment (§III-A): the
// paper's Eq. (1) and its per-node-group variants, written as PromQL
// recording rules — NOT hard-coded estimation — to reproduce the
// extensibility claim (operators customize energy estimation per hardware
// group purely in rule files; see etc/prometheus in the CEEMS repo).
//
// Node groups, selected by the `nodegroup` scrape label:
//   intel-cpu  RAPL package+dram → full Eq. (1)
//   amd-cpu    RAPL package only → whole 0.9·P_ipmi budget follows CPU time
//   gpu-incl   BMC reading includes GPU power → host budget is
//              0.9·(P_ipmi − ΣP_gpu); GPU power attributed via the binding
//              map
//   gpu-excl   BMC reading excludes GPU power → host budget is 0.9·P_ipmi
//
// Rule outputs consumed downstream:
//   ceems_job_power_watts      per (hostname, uuid): CPU+DRAM+network share
//   ceems_job_gpu_power_watts  per (hostname, uuid): bound-GPU power
//   ceems_job_gpu_util         per (hostname, uuid): mean bound-GPU util 0..1
//   ceems_job_emissions_g_per_hour
#pragma once

#include <vector>

#include "tsdb/rules.h"

namespace ceems::core {

// `rate_window` must cover >= 2 scrape intervals.
std::vector<tsdb::RuleGroup> jean_zay_rule_groups(
    const std::string& rate_window = "2m",
    const std::string& emission_provider = "rte");

// Baseline estimator for the E2 ablation: node power divided equally among
// the jobs on the node, ignoring per-job activity (what you get without
// CEEMS' CPU-time weighting). Produces ceems_job_power_watts_equalsplit.
std::vector<tsdb::RuleGroup> equal_split_baseline_rules(
    const std::string& rate_window = "2m");

// §IV-roadmap refinement: once the eBPF collector exports per-unit network
// traffic, the 10% network budget of Eq. (1) can follow actual bytes
// instead of being split equally among resident jobs. Produces
// ceems_job_net_power_watts (the refined last term) and
// ceems_job_power_watts_netshare (full Eq. 1 with the refined term).
// Requires jean_zay_rule_groups to be loaded first (reuses its budgets).
std::vector<tsdb::RuleGroup> ebpf_network_rules(
    const std::string& rate_window = "2m");

// Operational alerts a CEEMS deployment runs alongside the recording
// rules: dead exporters, implausible BMC power readings, missing emission
// data. Surfaced via RuleEngine::active_alerts() and the ALERTS series.
std::vector<tsdb::RuleGroup> ceems_alert_rules(
    double node_power_ceiling_watts = 5000);

// Long-range reporting rules evaluated against the long-term store: mean/
// peak per-job power, per-node energy and the mean emission factor over
// `aligned_window`. Window length equals the group interval, so every
// evaluation uses a whole-window range on a fixed grid — when the window
// is a multiple of the store's aggregate-ladder resolution, the
// resolution-aware planner answers these from bucket columns instead of
// scanning a window's worth of raw samples per rule (DESIGN.md §10).
// `aligned_window` must parse as a duration (default one hour).
std::vector<tsdb::RuleGroup> long_range_report_rules(
    const std::string& aligned_window = "1h");

}  // namespace ceems::core
