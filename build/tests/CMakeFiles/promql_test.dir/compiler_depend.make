# Empty compiler generated dependencies file for promql_test.
# This may be replaced when dependencies are built.
