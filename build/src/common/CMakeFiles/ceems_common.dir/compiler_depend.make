# Empty compiler generated dependencies file for ceems_common.
# This may be replaced when dependencies are built.
