#include <gtest/gtest.h>

#include "node/node_sim.h"

namespace ceems::node {
namespace {

using common::make_sim_clock;

// ---------- power model ----------

TEST(PowerModel, IdleNodeDrawsIdlePower) {
  PowerModel model(make_intel_cpu_node("n1"));
  PowerBreakdown power = model.node_power({});
  EXPECT_DOUBLE_EQ(power.cpu_pkg_w, model.spec().cpu_idle_w());
  EXPECT_GT(power.ipmi_w, power.node_dc_w);  // PSU overhead applied
}

TEST(PowerModel, FullLoadApproachesTdp) {
  NodeSpec spec = make_intel_cpu_node("n1");
  PowerModel model(spec);
  WorkloadUsage usage;
  usage.job_id = 1;
  usage.alloc_cpus = spec.total_cpus();
  usage.cpu_util = 1.0;
  PowerBreakdown power = model.node_power({usage});
  EXPECT_NEAR(power.cpu_pkg_w, spec.cpu_tdp_w(), 1e-6);
}

TEST(PowerModel, MonotoneInUtilization) {
  PowerModel model(make_amd_cpu_node("n1"));
  double last = 0;
  for (double util : {0.0, 0.2, 0.5, 0.8, 1.0}) {
    WorkloadUsage usage;
    usage.job_id = 1;
    usage.alloc_cpus = model.spec().total_cpus();
    usage.cpu_util = util;
    double watts = model.node_power({usage}).cpu_pkg_w;
    EXPECT_GE(watts, last);
    last = watts;
  }
}

TEST(PowerModel, IpmiExcludesGpusOnSecondServerType) {
  NodeSpec incl = make_v100_node("v");
  NodeSpec excl = make_a100_node("a");
  ASSERT_TRUE(incl.ipmi_includes_gpu);
  ASSERT_FALSE(excl.ipmi_includes_gpu);

  PowerModel model_incl(incl), model_excl(excl);
  PowerBreakdown p_incl = model_incl.node_power({});
  PowerBreakdown p_excl = model_excl.node_power({});
  // incl: IPMI covers GPU idle draw; excl: it does not.
  EXPECT_NEAR(p_incl.ipmi_w,
              p_incl.node_dc_w * incl.psu_overhead_factor, 1e-9);
  EXPECT_NEAR(p_excl.ipmi_w,
              (p_excl.node_dc_w - p_excl.gpus_w) * excl.psu_overhead_factor,
              1e-9);
}

TEST(PowerModel, AttributionConservesPower) {
  NodeSpec spec = make_v100_node("n1");
  PowerModel model(spec);
  std::vector<WorkloadUsage> usages;
  for (int i = 0; i < 3; ++i) {
    WorkloadUsage usage;
    usage.job_id = i + 1;
    usage.alloc_cpus = 10;
    usage.cpu_util = 0.3 + 0.2 * i;
    usage.memory_bytes = (20LL + 10 * i) << 30;
    usage.memory_activity = 0.5;
    if (i == 0) {
      usage.gpu_ordinals = {0, 1};
      usage.gpu_util = 0.9;
    }
    usages.push_back(usage);
  }
  PowerBreakdown total = model.node_power(usages);
  double attributed = 0;
  for (const auto& truth : model.attribute(usages)) {
    attributed += truth.total_w();
  }
  // Attributed power ≈ node power minus unbound-GPU idle draw (2 of 4
  // bound) — conservation within 2%.
  double unbound_gpu_idle = 2 * spec.gpus[0].idle_power_w;
  EXPECT_NEAR(attributed, total.node_dc_w - unbound_gpu_idle,
              0.02 * total.node_dc_w);
}

TEST(PowerModel, GpuJobOwnsItsGpuPower) {
  NodeSpec spec = make_a100_node("n1");
  PowerModel model(spec);
  WorkloadUsage usage;
  usage.job_id = 1;
  usage.alloc_cpus = 16;
  usage.cpu_util = 0.5;
  usage.gpu_ordinals = {0};
  usage.gpu_util = 1.0;
  auto truths = model.attribute({usage});
  ASSERT_EQ(truths.size(), 1u);
  EXPECT_NEAR(truths[0].gpu_w, spec.gpus[0].max_power_w, 1e-9);
}

// ---------- RAPL ----------

TEST(Rapl, CountersAccumulateEnergy) {
  auto fs = std::make_shared<simfs::PseudoFs>();
  NodeSpec spec = make_intel_cpu_node("n1");
  RaplBank bank(fs, spec);
  bank.integrate(/*pkg_w=*/200, /*dram_w=*/50, /*dt_ms=*/1000);

  auto readings = read_rapl(*fs);
  // 2 sockets × (package + dram).
  ASSERT_EQ(readings.size(), 4u);
  double pkg_total = 0, dram_total = 0;
  for (const auto& reading : readings) {
    if (reading.domain.rfind("package", 0) == 0)
      pkg_total += static_cast<double>(reading.energy_uj) * 1e-6;
    else
      dram_total += static_cast<double>(reading.energy_uj) * 1e-6;
  }
  EXPECT_NEAR(pkg_total, 200.0, 0.001);  // 200 W × 1 s = 200 J
  EXPECT_NEAR(dram_total, 50.0, 0.001);
}

TEST(Rapl, AmdHasNoDramDomain) {
  auto fs = std::make_shared<simfs::PseudoFs>();
  RaplBank bank(fs, make_amd_cpu_node("n1"));
  for (const auto& reading : read_rapl(*fs)) {
    EXPECT_NE(reading.domain, "dram");
  }
}

TEST(Rapl, CounterWrapsAtMaxRange) {
  RaplDomain domain("package-0", /*max_energy_range_uj=*/1000000);
  domain.add_energy_uj(900000);
  domain.add_energy_uj(300000);  // wraps past 1e6
  EXPECT_EQ(domain.energy_uj(), 200000);
  EXPECT_NEAR(domain.lifetime_joules(), 1.2, 1e-9);
}

TEST(Rapl, JoulesBetweenHandlesWrap) {
  EXPECT_DOUBLE_EQ(rapl_joules_between(100, 300, 1000000), 200e-6);
  EXPECT_DOUBLE_EQ(rapl_joules_between(900000, 100000, 1000000), 0.2);
}

// ---------- IPMI ----------

TEST(Ipmi, RefreshesOnlyAtInterval) {
  auto clock = make_sim_clock(0);
  IpmiDcmi ipmi(clock, /*update_interval_ms=*/5000);
  ipmi.offer_power(100);
  EXPECT_EQ(ipmi.read().watts, 100);
  clock->advance(1000);
  ipmi.offer_power(500);  // too soon: BMC keeps the old sample
  EXPECT_EQ(ipmi.read().watts, 100);
  clock->advance(4000);
  ipmi.offer_power(500);
  EXPECT_EQ(ipmi.read().watts, 500);
}

TEST(Ipmi, TracksMinMaxAvg) {
  auto clock = make_sim_clock(0);
  IpmiDcmi ipmi(clock, 1000);
  for (int64_t watts : {100, 300, 200}) {
    ipmi.offer_power(static_cast<double>(watts));
    clock->advance(1000);
  }
  auto reading = ipmi.read();
  EXPECT_EQ(reading.min_watts, 100);
  EXPECT_EQ(reading.max_watts, 300);
  EXPECT_EQ(reading.avg_watts, 200);
}

TEST(Ipmi, DcmiOutputFormatRoundTrips) {
  DcmiPowerReading reading{213, 180, 250, 210, 0};
  auto parsed = parse_dcmi_output(format_dcmi_output(reading));
  EXPECT_EQ(parsed.watts, 213);
  EXPECT_EQ(parsed.min_watts, 180);
  EXPECT_EQ(parsed.max_watts, 250);
  EXPECT_EQ(parsed.avg_watts, 210);
}

// ---------- GPU bank ----------

TEST(Gpu, DeterministicUuids) {
  EXPECT_EQ(make_gpu_uuid("node1", 0), make_gpu_uuid("node1", 0));
  EXPECT_NE(make_gpu_uuid("node1", 0), make_gpu_uuid("node1", 1));
  EXPECT_NE(make_gpu_uuid("node1", 0), make_gpu_uuid("node2", 0));
  EXPECT_EQ(make_gpu_uuid("n", 0).rfind("GPU-", 0), 0u);
}

TEST(Gpu, BankAccumulatesEnergy) {
  NodeSpec spec = make_v100_node("n1");
  GpuBank bank(spec, "n1");
  ASSERT_EQ(bank.size(), 4u);
  bank.update({100, 200, 25, 25}, {0.5, 1.0, 0, 0}, {1 << 30, 2 << 30, 0, 0},
              2000);
  auto device = bank.device(1);
  ASSERT_TRUE(device.has_value());
  EXPECT_DOUBLE_EQ(device->power_w, 200);
  EXPECT_DOUBLE_EQ(device->utilization, 1.0);
  EXPECT_NEAR(device->lifetime_energy_j, 400, 1e-9);  // 200 W × 2 s
  EXPECT_FALSE(bank.device(7).has_value());
}

// ---------- NodeSim ----------

class NodeSimTest : public ::testing::Test {
 protected:
  NodeSimTest()
      : clock_(make_sim_clock(0)),
        sim_(make_intel_cpu_node("node1"), clock_, 42) {}

  void add_job(int64_t id, int cpus, double util) {
    WorkloadPlacement placement;
    placement.job_id = id;
    placement.user = "alice";
    placement.alloc_cpus = cpus;
    placement.memory_limit_bytes = 8LL << 30;
    WorkloadBehavior behavior;
    behavior.cpu_util_mean = util;
    behavior.cpu_util_jitter = 0;
    behavior.memory_ramp_seconds = 0;
    sim_.add_workload(placement, behavior);
  }

  void step(int64_t dt_ms) {
    sim_.step(dt_ms);
    clock_->advance(dt_ms);
  }

  std::shared_ptr<common::SimClock> clock_;
  NodeSim sim_;
};

TEST_F(NodeSimTest, CgroupAccountingTracksUtilization) {
  add_job(100, 10, 0.8);
  for (int i = 0; i < 10; ++i) step(1000);
  auto stats = simfs::read_cgroup(
      *sim_.fs(), std::string(simfs::kSlurmScope) + "/job_100");
  ASSERT_TRUE(stats.has_value());
  // 0.8 util × 10 cpus × 10 s = 80 cpu-seconds.
  EXPECT_NEAR(static_cast<double>(stats->cpu.usage_usec) * 1e-6, 80.0, 2.0);
}

TEST_F(NodeSimTest, ProcStatConsistentWithCgroups) {
  add_job(100, 10, 0.5);
  add_job(101, 20, 1.0);
  for (int i = 0; i < 5; ++i) step(1000);
  auto stat = simfs::read_proc_stat(*sim_.fs());
  ASSERT_TRUE(stat.has_value());
  // Busy jiffies ≈ (0.5×10 + 1.0×20) cpu-seconds × 100 Hz over 5 s.
  EXPECT_NEAR(static_cast<double>(stat->aggregate.busy()), 25.0 * 5 * 100,
              300.0);
  // Total jiffies = ncpus × 5 s × 100 Hz.
  EXPECT_NEAR(static_cast<double>(stat->aggregate.total()),
              sim_.spec().total_cpus() * 500.0, 100.0);
}

TEST_F(NodeSimTest, GroundTruthEnergyMatchesNodeEnergy) {
  add_job(100, 20, 0.9);
  add_job(101, 20, 0.4);
  for (int i = 0; i < 60; ++i) step(1000);
  double truth_total = 0;
  for (const auto& [id, truth] : sim_.all_energy_truth()) {
    truth_total += truth.total_j();
  }
  EXPECT_NEAR(truth_total, sim_.lifetime_node_energy_j(),
              0.02 * sim_.lifetime_node_energy_j());
}

TEST_F(NodeSimTest, RemoveWorkloadDestroysCgroupKeepsTruth) {
  add_job(100, 10, 0.8);
  step(5000);
  double energy = sim_.job_energy_truth(100).total_j();
  EXPECT_GT(energy, 0);
  sim_.remove_workload(100);
  EXPECT_FALSE(simfs::read_cgroup(
                   *sim_.fs(), std::string(simfs::kSlurmScope) + "/job_100")
                   .has_value());
  EXPECT_DOUBLE_EQ(sim_.job_energy_truth(100).total_j(), energy);
}

TEST_F(NodeSimTest, DuplicateJobThrows) {
  add_job(100, 4, 0.5);
  EXPECT_THROW(add_job(100, 4, 0.5), std::invalid_argument);
}

TEST_F(NodeSimTest, GpuOrdinalValidation) {
  WorkloadPlacement placement;
  placement.job_id = 200;
  placement.alloc_cpus = 4;
  placement.gpu_ordinals = {3};  // CPU node has no GPUs
  EXPECT_THROW(sim_.add_workload(placement, {}), std::invalid_argument);
}

TEST_F(NodeSimTest, AllocatedCpusTracked) {
  EXPECT_EQ(sim_.allocated_cpus(), 0);
  add_job(100, 10, 0.5);
  add_job(101, 6, 0.5);
  EXPECT_EQ(sim_.allocated_cpus(), 16);
  sim_.remove_workload(100);
  EXPECT_EQ(sim_.allocated_cpus(), 6);
}

TEST(NodeSimGpu, BoundGpusShowUtilization) {
  auto clock = make_sim_clock(0);
  NodeSim sim(make_v100_node("g1"), clock, 7);
  WorkloadPlacement placement;
  placement.job_id = 300;
  placement.alloc_cpus = 8;
  placement.memory_limit_bytes = 32LL << 30;
  placement.gpu_ordinals = {1, 2};
  WorkloadBehavior behavior;
  behavior.gpu_util_mean = 0.9;
  behavior.gpu_util_jitter = 0;
  sim.add_workload(placement, behavior);
  sim.step(1000);
  auto telemetry = sim.gpus().snapshot();
  EXPECT_DOUBLE_EQ(telemetry[0].utilization, 0);
  EXPECT_NEAR(telemetry[1].utilization, 0.9, 1e-9);
  EXPECT_GT(telemetry[1].power_w, telemetry[0].power_w);
}

}  // namespace
}  // namespace ceems::node
