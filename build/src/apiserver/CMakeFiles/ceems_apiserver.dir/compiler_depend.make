# Empty compiler generated dependencies file for ceems_apiserver.
# This may be replaced when dependencies are built.
