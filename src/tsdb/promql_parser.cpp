#include "common/strutil.h"
#include <algorithm>
#include <set>

#include "tsdb/promql_lexer.h"

namespace ceems::tsdb::promql {

namespace {

const std::set<std::string> kAggregators = {
    "sum",  "avg",    "min",     "max",      "count",
    "topk", "bottomk", "stddev", "quantile", "group",
};

// Binary operator precedence, low to high. ^ is right-associative.
int precedence(const std::string& op) {
  if (op == "or") return 1;
  if (op == "and" || op == "unless") return 2;
  if (op == "==" || op == "!=" || op == "<" || op == ">" || op == "<=" ||
      op == ">=")
    return 3;
  if (op == "+" || op == "-") return 4;
  if (op == "*" || op == "/" || op == "%") return 5;
  if (op == "^") return 6;
  return -1;
}

class Parser {
 public:
  explicit Parser(std::string_view input) : tokens_(lex(input)) {}

  ExprPtr parse() {
    ExprPtr expr = parse_expr(0);
    expect(TokenType::kEof, "end of expression");
    return expr;
  }

 private:
  const Token& peek(int ahead = 0) const {
    std::size_t index = std::min(pos_ + static_cast<std::size_t>(ahead),
                                 tokens_.size() - 1);
    return tokens_[index];
  }
  Token next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("promql parse error at offset " +
                     std::to_string(peek().pos) + ": " + message);
  }

  void expect(TokenType type, const std::string& what) {
    if (peek().type != type) fail("expected " + what);
    next();
  }

  bool peek_op(const std::string& text) const {
    const Token& token = peek();
    return (token.type == TokenType::kOp && token.text == text) ||
           (token.type == TokenType::kIdentifier && token.text == text);
  }

  // Is the current identifier a binary operator keyword?
  bool is_binop_token() const {
    const Token& token = peek();
    if (token.type == TokenType::kOp) return precedence(token.text) > 0;
    if (token.type == TokenType::kIdentifier)
      return token.text == "and" || token.text == "or" ||
             token.text == "unless";
    return false;
  }

  ExprPtr parse_expr(int min_precedence) {
    ExprPtr lhs = parse_unary();
    for (;;) {
      if (!is_binop_token()) return lhs;
      std::string op = peek().text;
      int prec = precedence(op);
      if (prec < min_precedence) return lhs;
      next();

      auto binary = std::make_shared<Expr>();
      binary->kind = Expr::Kind::kBinary;
      binary->op = op;
      binary->lhs = lhs;

      if (peek_op("bool")) {
        next();
        binary->bool_modifier = true;
      }
      // on(...) / ignoring(...)
      if (peek().type == TokenType::kIdentifier &&
          (peek().text == "on" || peek().text == "ignoring")) {
        binary->matching.is_on = peek().text == "on";
        next();
        binary->matching.labels = parse_label_list();
        if (peek().type == TokenType::kIdentifier &&
            (peek().text == "group_left" || peek().text == "group_right")) {
          binary->matching.group = peek().text == "group_left"
                                       ? VectorMatching::Group::kLeft
                                       : VectorMatching::Group::kRight;
          next();
          if (peek().type == TokenType::kLParen) {
            binary->matching.include = parse_label_list();
          }
        }
      } else if (binary->matching.labels.empty() &&
                 (op == "and" || op == "or" || op == "unless")) {
        // Set ops match on full label sets by default (ignoring nothing).
      }

      // Right-assoc for ^, left-assoc otherwise.
      binary->rhs = parse_expr(op == "^" ? prec : prec + 1);
      lhs = binary;
    }
  }

  ExprPtr parse_unary() {
    if (peek_op("-") || peek_op("+")) {
      std::string op = next().text;
      auto unary = std::make_shared<Expr>();
      unary->kind = Expr::Kind::kUnary;
      unary->op = op;
      unary->lhs = parse_unary();
      return unary;
    }
    return parse_postfix(parse_atom());
  }

  // Attaches [range] and offset to a selector expression.
  ExprPtr parse_postfix(ExprPtr expr) {
    if (peek().type == TokenType::kLBracket) {
      if (expr->kind != Expr::Kind::kVectorSelector)
        fail("range selector on non-selector expression");
      next();
      if (peek().type != TokenType::kDuration) fail("expected duration");
      expr->range_ms = next().duration_ms;
      expect(TokenType::kRBracket, "']'");
      expr->kind = Expr::Kind::kMatrixSelector;
    }
    if (peek().type == TokenType::kIdentifier && peek().text == "offset") {
      next();
      if (peek().type != TokenType::kDuration) fail("expected duration");
      expr->offset_ms = next().duration_ms;
    }
    return expr;
  }

  std::vector<std::string> parse_label_list() {
    std::vector<std::string> labels;
    expect(TokenType::kLParen, "'('");
    while (peek().type != TokenType::kRParen) {
      if (peek().type != TokenType::kIdentifier) fail("expected label name");
      labels.push_back(next().text);
      if (peek().type == TokenType::kComma) next();
    }
    next();  // ')'
    return labels;
  }

  std::vector<metrics::LabelMatcher> parse_matchers() {
    std::vector<metrics::LabelMatcher> matchers;
    expect(TokenType::kLBrace, "'{'");
    while (peek().type != TokenType::kRBrace) {
      if (peek().type != TokenType::kIdentifier) fail("expected label name");
      metrics::LabelMatcher matcher;
      matcher.name = next().text;
      if (peek().type != TokenType::kOp) fail("expected matcher operator");
      std::string op = next().text;
      if (op == "=") matcher.op = metrics::LabelMatcher::Op::kEq;
      else if (op == "!=") matcher.op = metrics::LabelMatcher::Op::kNe;
      else if (op == "=~") matcher.op = metrics::LabelMatcher::Op::kRegexMatch;
      else if (op == "!~") matcher.op = metrics::LabelMatcher::Op::kRegexNoMatch;
      else fail("bad matcher operator " + op);
      if (peek().type != TokenType::kString) fail("expected quoted value");
      matcher.value = next().text;
      matchers.push_back(std::move(matcher));
      if (peek().type == TokenType::kComma) next();
    }
    next();  // '}'
    return matchers;
  }

  ExprPtr parse_atom() {
    const Token& token = peek();
    if (token.type == TokenType::kNumber) {
      auto expr = make_number(next().number);
      return expr;
    }
    if (token.type == TokenType::kString) {
      auto expr = std::make_shared<Expr>();
      expr->kind = Expr::Kind::kString;
      expr->string_value = next().text;
      return expr;
    }
    if (token.type == TokenType::kLParen) {
      next();
      ExprPtr inner = parse_expr(0);
      expect(TokenType::kRParen, "')'");
      return inner;
    }
    if (token.type == TokenType::kLBrace) {
      // Nameless selector {job="x"}.
      auto expr = std::make_shared<Expr>();
      expr->kind = Expr::Kind::kVectorSelector;
      expr->matchers = parse_matchers();
      if (expr->matchers.empty()) fail("empty selector");
      return expr;
    }
    if (token.type != TokenType::kIdentifier) fail("expected expression");

    std::string name = next().text;

    // Aggregation?
    if (kAggregators.count(name)) {
      auto agg = std::make_shared<Expr>();
      agg->kind = Expr::Kind::kAggregate;
      agg->agg_op = name;
      // Leading by/without clause.
      if (peek().type == TokenType::kIdentifier &&
          (peek().text == "by" || peek().text == "without")) {
        agg->agg_by = peek().text == "by";
        agg->agg_grouped = true;
        next();
        agg->grouping = parse_label_list();
      }
      expect(TokenType::kLParen, "'(' after aggregator");
      ExprPtr first = parse_expr(0);
      if (peek().type == TokenType::kComma) {
        next();
        agg->agg_param = first;
        agg->agg_expr = parse_expr(0);
      } else {
        agg->agg_expr = first;
      }
      expect(TokenType::kRParen, "')'");
      // Trailing by/without clause.
      if (!agg->agg_grouped && peek().type == TokenType::kIdentifier &&
          (peek().text == "by" || peek().text == "without")) {
        agg->agg_by = peek().text == "by";
        agg->agg_grouped = true;
        next();
        agg->grouping = parse_label_list();
      }
      return agg;
    }

    // Function call?
    if (peek().type == TokenType::kLParen) {
      auto call = std::make_shared<Expr>();
      call->kind = Expr::Kind::kCall;
      call->func = name;
      next();  // '('
      while (peek().type != TokenType::kRParen) {
        call->args.push_back(parse_expr(0));
        if (peek().type == TokenType::kComma) next();
      }
      next();  // ')'
      return call;
    }

    // Vector selector.
    auto selector = std::make_shared<Expr>();
    selector->kind = Expr::Kind::kVectorSelector;
    selector->metric_name = name;
    if (peek().type == TokenType::kLBrace) {
      selector->matchers = parse_matchers();
    }
    return selector;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

ExprPtr make_number(double value) {
  auto expr = std::make_shared<Expr>();
  expr->kind = Expr::Kind::kNumber;
  expr->number = value;
  return expr;
}

ExprPtr parse(std::string_view input) { return Parser(input).parse(); }

std::string Expr::to_string() const {
  switch (kind) {
    case Kind::kNumber: return common::format_double(number);
    case Kind::kString: return "\"" + string_value + "\"";
    case Kind::kVectorSelector:
    case Kind::kMatrixSelector: {
      std::string out = metric_name;
      if (!matchers.empty()) {
        out += "{";
        bool first = true;
        for (const auto& matcher : matchers) {
          if (!first) out += ",";
          first = false;
          out += matcher.name + "=\"" + matcher.value + "\"";
        }
        out += "}";
      }
      if (kind == Kind::kMatrixSelector)
        out += "[" + common::format_duration_ms(range_ms) + "]";
      if (offset_ms != 0)
        out += " offset " + common::format_duration_ms(offset_ms);
      return out;
    }
    case Kind::kCall: {
      std::string out = func + "(";
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->to_string();
      }
      return out + ")";
    }
    case Kind::kBinary:
      return "(" + lhs->to_string() + " " + op + " " + rhs->to_string() + ")";
    case Kind::kUnary:
      return op + lhs->to_string();
    case Kind::kAggregate: {
      std::string out = agg_op;
      if (agg_grouped) {
        out += agg_by ? " by (" : " without (";
        for (std::size_t i = 0; i < grouping.size(); ++i) {
          if (i > 0) out += ", ";
          out += grouping[i];
        }
        out += ")";
      }
      out += "(";
      if (agg_param) out += agg_param->to_string() + ", ";
      return out + agg_expr->to_string() + ")";
    }
  }
  return "?";
}

}  // namespace ceems::tsdb::promql
