#include "exporter/emissions_collector.h"

namespace ceems::exporter {

using metrics::Labels;
using metrics::MetricFamily;
using metrics::MetricType;

std::vector<metrics::MetricFamily> EmissionsCollector::collect(
    common::TimestampMs now) {
  MetricFamily factor{"ceems_emissions_gCo2_kWh",
                      "Current emission factor in gCO2e per kWh.",
                      MetricType::kGauge,
                      {}};
  for (const auto& provider : providers_) {
    auto result = provider->factor(country_code_, now);
    if (!result) continue;  // provider down / rate-limited: series goes stale
    factor.add(Labels{{"provider", result->provider},
                      {"country_code", country_code_}},
               result->gco2_per_kwh);
  }
  return {factor};
}

}  // namespace ceems::exporter
