// The three Fig. 2 dashboards, rebuilt against the CEEMS data sources:
//   Fig. 2a — aggregate usage of a user over a period (CPU/GPU usage,
//             memory, energy, emissions stat tiles);
//   Fig. 2b — the user's compute units with per-unit aggregates;
//   Fig. 2c — time-series CPU metrics of one unit (queried through the LB,
//             so access control applies).
#pragma once

#include "dashboard/grafana_client.h"
#include "dashboard/panels.h"

namespace ceems::dashboard {

// Fig. 2a.
std::string render_user_aggregate_dashboard(GrafanaClient& client,
                                            common::TimestampMs from_ms,
                                            common::TimestampMs to_ms);

// Fig. 2b.
std::string render_user_job_list(GrafanaClient& client,
                                 common::TimestampMs from_ms,
                                 common::TimestampMs to_ms,
                                 std::size_t limit = 20);

// Fig. 2c.
std::string render_job_timeseries(GrafanaClient& client,
                                  const std::string& uuid,
                                  common::TimestampMs from_ms,
                                  common::TimestampMs to_ms, int64_t step_ms);

}  // namespace ceems::dashboard
