file(REMOVE_RECURSE
  "CMakeFiles/user_dashboard.dir/user_dashboard.cpp.o"
  "CMakeFiles/user_dashboard.dir/user_dashboard.cpp.o.d"
  "user_dashboard"
  "user_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/user_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
