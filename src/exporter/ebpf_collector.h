// eBPF/perf collector — the paper's §IV roadmap items ("adding network and
// IO stats to CEEMS exporter using extended Berkley Packet Filtering
// (eBPF) framework and adding performance metrics like FLOPS, caching, and
// memory IO bandwidth ... from Linux's perf framework"), implemented
// against the simulator's kernel-side stand-in (NodeSim::ebpf_stats).
//
// Exported per compute unit:
//   ceems_compute_unit_network_tx_bytes_total / _rx_bytes_total
//   ceems_compute_unit_network_tx_packets_total / _rx_packets_total
//   ceems_compute_unit_perf_instructions_total
//   ceems_compute_unit_perf_flops_total
//   ceems_compute_unit_perf_cache_misses_total
// plus node-level NIC totals for the extended (per-job-share) network
// power rule.
#pragma once

#include <functional>

#include "exporter/collector.h"
#include "node/node_sim.h"

namespace ceems::exporter {

class EbpfCollector final : public Collector {
 public:
  using StatsSource = std::function<std::vector<node::EbpfWorkloadStats>()>;

  explicit EbpfCollector(StatsSource source, std::string manager = "slurm")
      : source_(std::move(source)), manager_(std::move(manager)) {}

  std::string name() const override { return "ebpf"; }
  std::vector<metrics::MetricFamily> collect(common::TimestampMs now) override;

 private:
  StatsSource source_;
  std::string manager_;
};

}  // namespace ceems::exporter
