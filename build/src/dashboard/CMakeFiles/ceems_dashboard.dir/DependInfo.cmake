
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dashboard/ceems_dashboards.cpp" "src/dashboard/CMakeFiles/ceems_dashboard.dir/ceems_dashboards.cpp.o" "gcc" "src/dashboard/CMakeFiles/ceems_dashboard.dir/ceems_dashboards.cpp.o.d"
  "/root/repo/src/dashboard/grafana_client.cpp" "src/dashboard/CMakeFiles/ceems_dashboard.dir/grafana_client.cpp.o" "gcc" "src/dashboard/CMakeFiles/ceems_dashboard.dir/grafana_client.cpp.o.d"
  "/root/repo/src/dashboard/grafana_export.cpp" "src/dashboard/CMakeFiles/ceems_dashboard.dir/grafana_export.cpp.o" "gcc" "src/dashboard/CMakeFiles/ceems_dashboard.dir/grafana_export.cpp.o.d"
  "/root/repo/src/dashboard/panels.cpp" "src/dashboard/CMakeFiles/ceems_dashboard.dir/panels.cpp.o" "gcc" "src/dashboard/CMakeFiles/ceems_dashboard.dir/panels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ceems_common.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/ceems_http.dir/DependInfo.cmake"
  "/root/repo/build/src/tsdb/CMakeFiles/ceems_tsdb.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ceems_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
