// The CEEMS exporter (§II-B.a): an HTTP server on each compute node that
// renders all enabled collectors into the Prometheus text format on every
// GET /metrics. Supports basic auth (the paper's DoS protection; TLS is a
// connection-filter hook, see http::ServerConfig) and tracks its own
// scrape statistics for the E1 benchmark.
#pragma once

#include <memory>
#include <vector>

#include "exporter/collector.h"
#include "exporter/self_collector.h"
#include "http/server.h"
#include "metrics/registry.h"

namespace ceems::exporter {

struct ExporterConfig {
  http::ServerConfig http;
  bool enable_self_metrics = true;
};

class Exporter {
 public:
  Exporter(ExporterConfig config, common::ClockPtr clock);
  ~Exporter();

  // Collectors run in registration order on each scrape.
  void add_collector(CollectorPtr collector);

  void start();
  void stop();
  uint16_t port() const { return server_.port(); }
  std::string metrics_url() const {
    return server_.base_url() + "/metrics";
  }

  // Renders the metrics payload directly (no HTTP) — used by unit tests
  // and the E1 bench to measure pure scrape cost.
  std::string render(common::TimestampMs now);

  uint64_t scrapes_total() const;

 private:
  http::Response handle_metrics(const http::Request& request);

  ExporterConfig config_;
  common::ClockPtr clock_;
  http::Server server_;
  std::vector<CollectorPtr> collectors_;
  std::shared_ptr<metrics::Registry> registry_;
  std::shared_ptr<metrics::Counter> scrapes_;
  std::shared_ptr<metrics::Gauge> last_duration_;
};

}  // namespace ceems::exporter
